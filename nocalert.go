// Package nocalert is a from-scratch reproduction of "NoCAlert: An
// On-Line and Real-Time Fault Detection Mechanism for Network-on-Chip
// Architectures" (Prodromou, Panteli, Nicopoulos & Sazeides, MICRO
// 2012).
//
// It bundles, behind one import:
//
//   - a cycle-accurate simulator of the paper's baseline NoC: a 2D mesh
//     of five-stage pipelined, wormhole-switched, credit-flow-controlled
//     virtual-channel routers (the role GARNET plays in the paper);
//   - the NoCAlert mechanism itself: the 32 invariance checkers of the
//     paper's Table 1, running concurrently with — and never perturbing
//     — network operation;
//   - the paper's single-bit fault model with per-signal fault sites at
//     every control-module boundary, plus permanent and intermittent
//     extensions;
//   - the Golden Reference methodology classifying every injected fault
//     as a true/false positive/negative;
//   - the ForEVeR baseline (checker network + epochs + Allocation
//     Comparator) NoCAlert is compared against;
//   - an analytical gate-equivalent hardware model standing in for the
//     paper's 65 nm synthesis flow (Figure 10);
//   - a campaign orchestrator regenerating Figures 6–9 and
//     Observations 1–5.
//
// # Quick start
//
//	mesh := nocalert.NewMesh(8, 8)
//	cfg := nocalert.SimConfig{
//		Router:        nocalert.DefaultRouterConfig(mesh),
//		InjectionRate: 0.1,
//		Seed:          1,
//	}
//	n := nocalert.MustNewNetwork(cfg, nil)
//	eng := nocalert.NewEngine(n.RouterConfig(), nocalert.EngineOptions{})
//	n.AttachMonitor(eng)
//	n.Run(10000)
//	fmt.Println("assertions:", eng.Detected())
//
// See the examples/ directory for runnable scenarios, cmd/ for the
// experiment drivers, and DESIGN.md for the full system inventory.
package nocalert

import (
	"fmt"
	"io"
	"strings"
	"time"

	"nocalert/internal/campaign"
	"nocalert/internal/core"
	"nocalert/internal/diagnose"
	"nocalert/internal/fault"
	"nocalert/internal/forever"
	"nocalert/internal/golden"
	"nocalert/internal/hwmodel"
	"nocalert/internal/metrics"
	"nocalert/internal/obs"
	"nocalert/internal/recovery"
	"nocalert/internal/router"
	"nocalert/internal/routing"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
	"nocalert/internal/trace"
	"nocalert/internal/traffic"
)

// ---- Topology ----

// Mesh is a W×H 2D mesh; node ids are row-major from the bottom-left
// corner.
type Mesh = topology.Mesh

// Direction identifies a router port (North, South, East, West, Local).
type Direction = topology.Direction

// Port directions, re-exported from the topology package.
const (
	North = topology.North
	South = topology.South
	East  = topology.East
	West  = topology.West
	Local = topology.Local
)

// NewMesh returns a W×H mesh; it panics if either dimension is < 1.
func NewMesh(w, h int) Mesh { return topology.NewMesh(w, h) }

// ParseMesh parses a "WxH" mesh specification (e.g. "8x8").
func ParseMesh(s string) (Mesh, error) {
	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(strings.TrimSpace(s)), "%dx%d", &w, &h); err != nil {
		return Mesh{}, fmt.Errorf("nocalert: invalid mesh %q (want WxH)", s)
	}
	if w < 1 || h < 1 {
		return Mesh{}, fmt.Errorf("nocalert: invalid mesh dimensions %dx%d", w, h)
	}
	return NewMesh(w, h), nil
}

// ---- Router micro-architecture ----

// RouterConfig fixes the router micro-architecture: VCs, buffer depth,
// message classes, routing algorithm, buffer atomicity and speculation.
type RouterConfig = router.Config

// Signals is the per-router, per-cycle control-signal record — the
// probe surface shared by the checkers and the fault plane.
type Signals = router.Signals

// Router is one five-stage pipelined NoC router.
type Router = router.Router

// DefaultRouterConfig returns the paper's evaluation configuration:
// 4 VCs per port, 5-flit atomic buffers, one 5-flit message class, XY
// routing.
func DefaultRouterConfig(m Mesh) RouterConfig { return router.Default(m) }

// RoutingAlgorithm is a routing function plus the functional rules the
// RC checkers assert.
type RoutingAlgorithm = routing.Algorithm

// NewRoutingAlgorithm returns the algorithm registered under name:
// "xy", "westfirst" or "adaptive".
func NewRoutingAlgorithm(name string) (RoutingAlgorithm, error) { return routing.New(name) }

// Routing algorithms.
var (
	// XYRouting is deterministic dimension-ordered routing (the paper's
	// baseline).
	XYRouting RoutingAlgorithm = routing.XY{}
	// WestFirstRouting is the west-first turn model.
	WestFirstRouting RoutingAlgorithm = routing.WestFirst{}
	// AdaptiveRouting is minimal adaptive routing with an XY escape VC.
	AdaptiveRouting RoutingAlgorithm = routing.Adaptive{}
)

// ---- Simulation ----

// SimConfig describes a simulation: micro-architecture, workload, seed.
type SimConfig = sim.Config

// Network is a mesh NoC under cycle-accurate simulation.
type Network = sim.Network

// Ejection is one flit delivered to a node's NI.
type Ejection = sim.Ejection

// Monitor observes the network without perturbing it.
type Monitor = sim.Monitor

// BaseMonitor is a no-op Monitor for embedding.
type BaseMonitor = sim.BaseMonitor

// NewNetwork builds a network; the fault plane may be nil for
// fault-free operation.
func NewNetwork(cfg SimConfig, plane *FaultPlane) (*Network, error) { return sim.New(cfg, plane) }

// MustNewNetwork is NewNetwork that panics on error.
func MustNewNetwork(cfg SimConfig, plane *FaultPlane) *Network { return sim.MustNew(cfg, plane) }

// ---- Traffic ----

// TrafficPattern maps packet sources to destinations.
type TrafficPattern = traffic.Pattern

// NewTrafficPattern returns the pattern registered under name:
// "uniform", "transpose", "bitcomplement", "bitreverse", "shuffle",
// "neighbor" or "hotspot".
func NewTrafficPattern(name string) (TrafficPattern, error) { return traffic.New(name) }

// UniformTraffic is the paper's stimulus: uniformly random
// destinations.
var UniformTraffic TrafficPattern = traffic.Uniform{}

// ---- NoCAlert (the paper's contribution) ----

// CheckerID numbers the 32 invariances of the paper's Table 1.
type CheckerID = core.CheckerID

// NumCheckers is the number of invariance checkers (32).
const NumCheckers = core.NumCheckers

// Violation is one assertion raised by a checker.
type Violation = core.Violation

// Engine is the NoCAlert checker fabric; attach it to a Network with
// AttachMonitor.
type Engine = core.Engine

// EngineOptions configures an Engine (ablation, violation retention).
type EngineOptions = core.Options

// NewEngine returns a checker engine for networks built on cfg.
func NewEngine(cfg *RouterConfig, opts EngineOptions) *Engine { return core.NewEngine(cfg, opts) }

// ---- Fault model ----

// FaultSite is one multi-bit fault location (a signal at a module
// boundary).
type FaultSite = fault.Site

// Fault is a single-bit fault bound to a site.
type Fault = fault.Fault

// FaultPlane is the injection surface the routers consult.
type FaultPlane = fault.Plane

// FaultParams describes the micro-architecture dimensions for site
// enumeration.
type FaultParams = fault.Params

// Fault temporal behaviours.
const (
	TransientFault    = fault.Transient
	PermanentFault    = fault.Permanent
	IntermittentFault = fault.Intermittent
)

// FaultKind identifies the signal class of a fault site.
type FaultKind = fault.Kind

// Fault-site signal classes (module boundaries of the router's control
// logic).
const (
	FaultRCInDestX      = fault.RCInDestX
	FaultRCInDestY      = fault.RCInDestY
	FaultRCOutDir       = fault.RCOutDir
	FaultVA1Req         = fault.VA1Req
	FaultVA1Gnt         = fault.VA1Gnt
	FaultVA2Req         = fault.VA2Req
	FaultVA2Gnt         = fault.VA2Gnt
	FaultVA2OutVC       = fault.VA2OutVC
	FaultSA1Req         = fault.SA1Req
	FaultSA1Gnt         = fault.SA1Gnt
	FaultSA2Req         = fault.SA2Req
	FaultSA2Gnt         = fault.SA2Gnt
	FaultXbarSel        = fault.XbarSel
	FaultBufRead        = fault.BufRead
	FaultBufWrite       = fault.BufWrite
	FaultFlitKindIn     = fault.FlitKindIn
	FaultFlitVCIn       = fault.FlitVCIn
	FaultVCStateReg     = fault.VCStateReg
	FaultVCRouteReg     = fault.VCRouteReg
	FaultVCOutVCReg     = fault.VCOutVCReg
	FaultCreditSig      = fault.CreditSig
	FaultCreditCountReg = fault.CreditCountReg
)

// NewFaultPlane returns a plane injecting the given faults.
func NewFaultPlane(faults ...Fault) *FaultPlane { return fault.NewPlane(faults...) }

// FaultParamsFor derives site-enumeration parameters from a simulation
// configuration.
func FaultParamsFor(cfg *RouterConfig) FaultParams {
	return fault.Params{Mesh: cfg.Mesh, VCs: cfg.VCs, BufDepth: cfg.BufDepth}
}

// ---- Golden reference ----

// GoldenLog is an indexed ejection log.
type GoldenLog = golden.Log

// Verdict is the network-correctness judgment for one faulty run.
type Verdict = golden.Verdict

// NewGoldenLog indexes a simulation's ejection log from the given
// cycle onward.
func NewGoldenLog(ejs []Ejection, since int64) *GoldenLog { return golden.FromEjections(ejs, since) }

// CompareToGolden judges a faulty run against the golden reference.
func CompareToGolden(goldenLog, faulty *GoldenLog, faultyDrained bool) Verdict {
	return golden.Compare(goldenLog, faulty, faultyDrained)
}

// ---- ForEVeR baseline ----

// ForeverOptions tunes the ForEVeR baseline (epoch length, checker-
// network hop latency, Allocation Comparator).
type ForeverOptions = forever.Options

// ForeverMonitor is the ForEVeR detection fabric.
type ForeverMonitor = forever.Monitor

// NewForeverMonitor returns a ForEVeR monitor for networks built on
// cfg.
func NewForeverMonitor(cfg *RouterConfig, opts ForeverOptions) *ForeverMonitor {
	return forever.NewMonitor(cfg, opts)
}

// ---- Campaign ----

// CampaignOptions configures a fault-injection campaign.
type CampaignOptions = campaign.Options

// CampaignReport is the aggregated campaign output; its Write* methods
// regenerate the paper's Figures 6–9 and Observation tables.
type CampaignReport = campaign.Report

// CampaignResult is the outcome of one fault-injected run.
type CampaignResult = campaign.RunResult

// Outcome classifies one mechanism's behaviour on one fault.
type Outcome = campaign.Outcome

// Outcomes.
const (
	TruePositive  = campaign.TruePositive
	FalsePositive = campaign.FalsePositive
	TrueNegative  = campaign.TrueNegative
	FalseNegative = campaign.FalseNegative
)

// Mechanism selects whose outcomes a report aggregates.
type Mechanism = campaign.Mechanism

// Mechanisms.
const (
	MechanismNoCAlert = campaign.NoCAlert
	MechanismCautious = campaign.Cautious
	MechanismForEVeR  = campaign.ForEVeR
)

// CampaignExitPath identifies how a run reached its result (full
// simulation, fast-path early exit, or golden-state reconvergence).
type CampaignExitPath = campaign.ExitPath

// Exit paths.
const (
	CampaignExitFull        = campaign.ExitFull
	CampaignExitFastPath    = campaign.ExitFastPath
	CampaignExitReconverged = campaign.ExitReconverged
)

// RunCampaign executes a fault-injection campaign.
func RunCampaign(opts CampaignOptions) (*CampaignReport, error) { return campaign.Run(opts) }

// SampleFaults draws n distinct single-bit transient faults injecting
// at cycle, uniformly over every fault location of the mesh (all of
// them when n is 0). The draw is deterministic in seed.
func SampleFaults(p FaultParams, n int, seed uint64, cycle int64) []Fault {
	return campaign.SampleFaults(p, n, seed, cycle)
}

// ---- Sharded, resumable campaigns ----

// CampaignSpec is the complete serializable description of a campaign;
// equal specs derive identical fault universes and run records.
type CampaignSpec = campaign.Spec

// CampaignShard is one planned slice of a campaign's fault universe.
type CampaignShard = campaign.Shard

// CampaignShardRunOptions are RunCampaignShard's execution knobs.
type CampaignShardRunOptions = campaign.ShardRunOptions

// CampaignShardRunStats summarizes one shard execution (resumed,
// verified and newly executed run counts).
type CampaignShardRunStats = campaign.ShardRunStats

// MergedCampaign is a validated, folded set of shard checkpoints.
type MergedCampaign = campaign.Merged

// CampaignFixture is a committed per-fault classification snapshot
// (the golden-fixture format under testdata/).
type CampaignFixture = campaign.Fixture

// PlanCampaignShard deterministically plans shard i of n: shard ranges
// tile the spec's fault universe with no overlap and no gaps for any n.
func PlanCampaignShard(spec CampaignSpec, i, n int) (*CampaignShard, error) {
	return campaign.PlanShard(spec, i, n)
}

// RunCampaignShard executes a shard, streaming completed runs into the
// checkpoint; already-recorded runs are skipped after validation and a
// deterministic re-execution sample.
func RunCampaignShard(sh *CampaignShard, cp *Checkpoint, completed []RunTraceRecord, o CampaignShardRunOptions) (*CampaignShardRunStats, error) {
	return campaign.RunShard(sh, cp, completed, o)
}

// MergeCampaignShards validates a complete shard set and folds it into
// one campaign whose records match the unsharded run bit for bit.
func MergeCampaignShards(shards []*CheckpointData) (*MergedCampaign, error) {
	return campaign.MergeShards(shards)
}

// CampaignReportFromRecords rebuilds the aggregated report from a
// complete record set; its WriteJSON output is byte-identical to the
// live report of the equivalent run.
func CampaignReportFromRecords(spec CampaignSpec, recs []RunTraceRecord) (*CampaignReport, error) {
	return campaign.ReportFromRecords(spec, recs)
}

// NewCampaignFixture canonicalizes records into a fixture (sorted by
// index, wall times zeroed).
func NewCampaignFixture(spec CampaignSpec, recs []RunTraceRecord) *CampaignFixture {
	return campaign.NewFixture(spec, recs)
}

// ReadCampaignFixture parses a committed fixture.
func ReadCampaignFixture(r io.Reader) (*CampaignFixture, error) { return campaign.ReadFixture(r) }

// CampaignRunRecord flattens one campaign result into the NDJSON
// record schema shared by run traces, checkpoints and fixtures.
func CampaignRunRecord(i int, res *CampaignResult, wall time.Duration, fastPath bool) RunTraceRecord {
	return campaign.RecordFor(i, res, wall, fastPath)
}

// ---- Recovery (extension: detection → retransmission) ----

// RecoveryController retransmits end-to-end-unconfirmed packets once
// the NoCAlert alarm is armed — the minimal recovery back-end the paper
// positions NoCAlert in front of. Construct with NewRecoveryController
// and attach to the same network as the engine.
type RecoveryController = recovery.Controller

// RecoveryOptions tunes the retransmission timeout and retry budget.
type RecoveryOptions = recovery.Options

// RecoveryStats summarizes a controller's delivery accounting.
type RecoveryStats = recovery.Stats

// NewRecoveryController builds a recovery back-end for net, armed by
// eng's detections.
func NewRecoveryController(net *Network, eng *Engine, opts RecoveryOptions) *RecoveryController {
	return recovery.NewController(net, eng, opts)
}

// ---- Tracing ----

// PathMonitor records, per packet, the router hops its header takes;
// attach with AttachMonitor and validate with ValidatePath.
type PathMonitor = trace.PathMonitor

// Hop is one recorded router traversal.
type Hop = trace.Hop

// NewPathMonitor returns an empty path recorder.
func NewPathMonitor() *PathMonitor { return trace.NewPathMonitor() }

// ValidatePath checks a recorded path against the mesh topology and a
// source/destination pair.
func ValidatePath(m Mesh, hops []Hop, src, dest int) error {
	return trace.ValidatePath(m, hops, src, dest)
}

// ---- Telemetry ----

// MetricsRegistry is a concurrency-safe registry of counters, gauges
// and histograms; snapshot it with Snapshot, WriteJSON or WriteText.
type MetricsRegistry = metrics.Registry

// MetricsCounter is a monotonically increasing counter.
type MetricsCounter = metrics.Counter

// MetricsGauge is a last-value float64 gauge.
type MetricsGauge = metrics.Gauge

// MetricsHistogram is a fixed-bucket histogram.
type MetricsHistogram = metrics.Histogram

// MetricsSnapshot is a point-in-time, deterministically ordered copy of
// a registry's instruments.
type MetricsSnapshot = metrics.Snapshot

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MetricsMonitor publishes per-cycle simulator telemetry (link
// utilization, buffer occupancy, allocator stalls, checker assertions)
// into a registry; attach it with AttachMonitor. It survives network
// clones.
type MetricsMonitor = metrics.Monitor

// NewMetricsMonitor returns a simulator telemetry monitor for networks
// built on cfg, publishing into reg.
func NewMetricsMonitor(reg *MetricsRegistry, cfg *RouterConfig) *MetricsMonitor {
	return metrics.NewMonitor(reg, cfg)
}

// Campaign metric names published when CampaignOptions.Metrics is set
// (the full list lives beside the campaign engine).
const (
	MetricCampaignRuns                = campaign.MetricRuns
	MetricCampaignFaultsPerSec        = campaign.MetricFaultsPerSec
	MetricCampaignFastPathHits        = campaign.MetricFastPathHits
	MetricCampaignRunSeconds          = campaign.MetricRunSeconds
	MetricCampaignReconvergenceHits   = campaign.MetricReconvergenceHits
	MetricCampaignFullSimRuns         = campaign.MetricFullSimRuns
	MetricCampaignReconvergenceCycles = campaign.MetricReconvergenceCycles
	MetricCampaignForkedRuns          = campaign.MetricForkedRuns
	MetricCampaignWarmstartSaved      = campaign.MetricWarmstartSaved
	MetricCampaignSnapshotBytes       = campaign.MetricSnapshotBytes
	MetricCampaignSimulatedCycles     = campaign.MetricSimulatedCycles
	MetricCampaignSynthesizedCycles   = campaign.MetricSynthesizedCycles
	MetricCampaignSimCyclesPerSec     = campaign.MetricSimCyclesPerSec
)

// OpenMetricsContentType is the Content-Type of
// MetricsRegistry.WriteOpenMetrics' Prometheus/OpenMetrics exposition.
const OpenMetricsContentType = metrics.OpenMetricsContentType

// ---- Observability ----

// Tracer streams hierarchical campaign spans — campaign → shard → run
// → phase — as NDJSON with deterministic run sampling and optional
// OTLP/JSON export; attach it via CampaignOptions.Tracer. Nil-safe: a
// nil *Tracer records nothing.
type Tracer = obs.Tracer

// TracerOptions configures NewTracer.
type TracerOptions = obs.Options

// Span is one live span; SpanRecord is its serialized stream form.
type Span = obs.Span

// SpanRecord is one record of the span NDJSON stream.
type SpanRecord = obs.SpanRecord

// NewTracer returns a tracer with a fresh random trace ID.
func NewTracer(o TracerOptions) *Tracer { return obs.New(o) }

// ReadSpans decodes a span NDJSON stream, silently dropping a torn
// trailing line (a killed process loses at most one record).
func ReadSpans(r io.Reader) ([]SpanRecord, error) { return obs.ReadSpans(r) }

// FlightRecorder is the bounded anomaly black box: recent campaign
// events (fork verifications, fingerprint probes, detections) in a
// ring that auto-dumps to its sink on anomalies such as fork-verify
// mismatches or missed-detection verdicts. Attach it via
// CampaignOptions.FlightRecorder. Nil-safe.
type FlightRecorder = obs.FlightRecorder

// FlightEvent is one flight-recorder ring entry.
type FlightEvent = obs.Event

// FlightDump is one dumped ring with the anomaly that triggered it.
type FlightDump = obs.Dump

// NewFlightRecorder returns a recorder holding the most recent
// capacity events (0 = a sensible default), dumping to sink.
func NewFlightRecorder(capacity int, sink io.Writer) *FlightRecorder {
	return obs.NewFlightRecorder(capacity, sink)
}

// ReadFlightDumps decodes a flight-recorder dump stream, tolerating a
// torn trailing line.
func ReadFlightDumps(r io.Reader) ([]FlightDump, error) { return obs.ReadDumps(r) }

// CampaignETA converts a live faults/sec reading into the expected
// time to finish the remaining runs; ok is false when the rate is
// degenerate (zero, negative, NaN or ±Inf — e.g. a throughput gauge
// read before the first locally completed run of a resumed shard) and
// no meaningful estimate exists.
func CampaignETA(remaining int, faultsPerSec float64) (time.Duration, bool) {
	return campaign.EstimateETA(remaining, faultsPerSec)
}

// RunTraceRecord is one NDJSON line of a campaign run trace (the
// faultcampaign -trace format).
type RunTraceRecord = trace.RunRecord

// RunTraceWriter streams RunTraceRecords as NDJSON.
type RunTraceWriter = trace.RunWriter

// NewRunTraceWriter returns a writer streaming NDJSON records to w.
func NewRunTraceWriter(w io.Writer) *RunTraceWriter { return trace.NewRunWriter(w) }

// ReadRunTrace parses an NDJSON run trace, tolerating a truncated final
// line (the shape an interrupted campaign leaves behind).
func ReadRunTrace(r io.Reader) ([]RunTraceRecord, error) { return trace.ReadRunRecords(r) }

// ---- Checkpoints (sharded campaign persistence) ----

// Checkpoint is an appendable shard checkpoint file: a manifest line,
// one RunTraceRecord per completed run, and an integrity footer once
// finalized.
type Checkpoint = trace.Checkpoint

// CheckpointManifest is the self-describing first line of a checkpoint.
type CheckpointManifest = trace.Manifest

// CheckpointFooter seals a finalized checkpoint with a record count
// and an order-independent checksum.
type CheckpointFooter = trace.Footer

// CheckpointData is a fully parsed checkpoint file.
type CheckpointData = trace.CheckpointData

// CreateCheckpoint starts a fresh checkpoint at path.
func CreateCheckpoint(path string, m *CheckpointManifest) (*Checkpoint, error) {
	return trace.CreateCheckpoint(path, m)
}

// ResumeCheckpoint opens (or creates) the checkpoint at path, returning
// the writer and the records recovered from a previous execution. A
// torn trailing line — the signature of a killed shard — is dropped and
// truncated; a manifest incompatible with m is an error.
func ResumeCheckpoint(path string, m *CheckpointManifest) (*Checkpoint, []RunTraceRecord, error) {
	return trace.ResumeCheckpoint(path, m)
}

// ReadCheckpointFile parses and integrity-checks a checkpoint file.
func ReadCheckpointFile(path string) (*CheckpointData, error) { return trace.ReadCheckpointFile(path) }

// SumRunRecords is the checkpoint checksum: an order- and wall-time-
// independent fold over the records' canonical bytes.
func SumRunRecords(recs []RunTraceRecord) string { return trace.SumRecords(recs) }

// ---- Diagnosis (extension: detection → localization) ----

// Suspect is one candidate fault location produced by Localize.
type Suspect = diagnose.Suspect

// LocalizationAccuracy scores a suspect ranking against the true
// fault location.
type LocalizationAccuracy = diagnose.Accuracy

// Localize ranks routers by assertion evidence; the engine must have
// been run with EngineOptions.KeepViolations.
func Localize(violations []Violation) []Suspect { return diagnose.Localize(violations) }

// EvaluateLocalization scores a ranking against the router that hosted
// the fault.
func EvaluateLocalization(m Mesh, suspects []Suspect, actual int) LocalizationAccuracy {
	return diagnose.Evaluate(m, suspects, actual)
}

// ---- Hardware model ----

// HWParams fixes router dimensions for the hardware model.
type HWParams = hwmodel.Params

// HWOverhead is one Figure 10 data point.
type HWOverhead = hwmodel.Overhead

// HWDefault returns the paper's hardware evaluation point with the
// given VC count.
func HWDefault(vcs int) HWParams { return hwmodel.Default(vcs) }

// AreaOverhead computes the Figure 10 point for the given parameters.
func AreaOverhead(p HWParams) HWOverhead { return hwmodel.AreaOverhead(p) }

// Fig10Sweep evaluates the Figure 10 VC sweep (2, 4, 6, 8 by default).
func Fig10Sweep(vcs []int) []HWOverhead { return hwmodel.Fig10Sweep(vcs) }

// PowerOverhead estimates the checker fabric's power overhead.
func PowerOverhead(p HWParams) (routerPower, checkerPower, overheadPct float64) {
	return hwmodel.Power(p)
}

// CriticalPathOverhead estimates the checker taps' critical-path
// impact.
func CriticalPathOverhead(p HWParams) (baseLevels, withCheckers, overheadPct float64) {
	return hwmodel.CriticalPath(p)
}
