// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§5) at test scale, plus micro-benchmarks and ablations.
//
//	go test -bench=. -benchmem
//
// Figure-level benchmarks run one scaled-down campaign (cached across
// benchmarks) and publish the scientific quantities as benchmark
// metrics, so `-bench` output doubles as a results table:
//
//	Fig6:  TP/FP/TN/FN percentages per mechanism
//	Fig7:  same-cycle share and latency percentiles
//	Fig8:  per-checker shares
//	Fig9:  simultaneity distribution
//	Fig10: area/power/critical-path overheads
//
// The full-scale (8×8, paper parameters) regeneration lives in
// cmd/faultcampaign and cmd/hwcost; EXPERIMENTS.md records those runs.
package nocalert_test

import (
	"runtime"
	"sync"
	"testing"

	"nocalert"
)

const (
	benchInject = 300
	benchFaults = 160
)

var (
	benchOnce sync.Once
	benchRep  *nocalert.CampaignReport
)

func benchCampaign(b *testing.B) *nocalert.CampaignReport {
	b.Helper()
	benchOnce.Do(func() {
		mesh := nocalert.NewMesh(4, 4)
		rc := nocalert.DefaultRouterConfig(mesh)
		params := nocalert.FaultParamsFor(&rc)
		rep, err := nocalert.RunCampaign(nocalert.CampaignOptions{
			Sim:           nocalert.SimConfig{Router: rc, InjectionRate: 0.12, Seed: 3},
			InjectCycle:   benchInject,
			PostInjectRun: 400,
			DrainDeadline: 5000,
			Forever:       nocalert.ForeverOptions{Epoch: 400, HopLatency: 1},
			Faults:        nocalert.SampleFaults(params, benchFaults, 5, benchInject),
		})
		if err != nil {
			panic(err)
		}
		benchRep = rep
	})
	return benchRep
}

// BenchmarkFig6CoverageBreakdown regenerates the Figure 6 bars.
func BenchmarkFig6CoverageBreakdown(b *testing.B) {
	rep := benchCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rep.Coverage(nocalert.MechanismNoCAlert)
		_ = rep.Coverage(nocalert.MechanismCautious)
		_ = rep.Coverage(nocalert.MechanismForEVeR)
	}
	b.StopTimer()
	for _, m := range []nocalert.Mechanism{nocalert.MechanismNoCAlert, nocalert.MechanismCautious, nocalert.MechanismForEVeR} {
		cov := rep.Coverage(m)
		prefix := map[nocalert.Mechanism]string{
			nocalert.MechanismNoCAlert: "nocalert",
			nocalert.MechanismCautious: "cautious",
			nocalert.MechanismForEVeR:  "forever",
		}[m]
		b.ReportMetric(cov.TPPct, prefix+"_TP_%")
		b.ReportMetric(cov.FPPct, prefix+"_FP_%")
		b.ReportMetric(cov.FNPct, prefix+"_FN_%")
	}
}

// BenchmarkFig7DetectionLatency regenerates the Figure 7 CDF milestones.
func BenchmarkFig7DetectionLatency(b *testing.B) {
	rep := benchCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rep.LatencyCDF(nocalert.MechanismNoCAlert)
		_ = rep.LatencyCDF(nocalert.MechanismForEVeR)
	}
	b.StopTimer()
	na := rep.LatencyCDF(nocalert.MechanismNoCAlert)
	fv := rep.LatencyCDF(nocalert.MechanismForEVeR)
	if na.N() > 0 {
		b.ReportMetric(100*na.AtOrBelow(0), "nocalert_samecycle_%")
		b.ReportMetric(float64(na.Max()), "nocalert_p100_cycles")
	}
	if fv.N() > 0 {
		b.ReportMetric(fv.Mean(), "forever_mean_cycles")
		b.ReportMetric(float64(fv.Max()), "forever_p100_cycles")
	}
}

// BenchmarkFig8PerCheckerShare regenerates the Figure 8 attribution.
func BenchmarkFig8PerCheckerShare(b *testing.B) {
	rep := benchCampaign(b)
	b.ResetTimer()
	var shares int
	for i := 0; i < b.N; i++ {
		shares = len(rep.CheckerShares())
	}
	b.StopTimer()
	active := 0
	for _, s := range rep.CheckerShares() {
		if s.FiredRuns > 0 {
			active++
		}
	}
	b.ReportMetric(float64(active), "checkers_active")
	_ = shares
}

// BenchmarkFig9SimultaneousCheckers regenerates the Figure 9
// distribution.
func BenchmarkFig9SimultaneousCheckers(b *testing.B) {
	rep := benchCampaign(b)
	b.ResetTimer()
	var hist []int64
	for i := 0; i < b.N; i++ {
		hist = rep.SimultaneityDistribution()
	}
	b.StopTimer()
	maxK, modeK := 0, 0
	var modeCount int64
	for k := 1; k < len(hist); k++ {
		if hist[k] > 0 {
			maxK = k
		}
		if hist[k] > modeCount {
			modeCount, modeK = hist[k], k
		}
	}
	b.ReportMetric(float64(maxK), "max_simultaneous")
	b.ReportMetric(float64(modeK), "mode_simultaneous")
}

// BenchmarkObs5NonInstantFaults regenerates the Observation 5 counts.
func BenchmarkObs5NonInstantFaults(b *testing.B) {
	rep := benchCampaign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rep.Observation5()
	}
	b.StopTimer()
	obs := rep.Observation5()
	b.ReportMetric(float64(obs.NeverViolated), "never_violated")
	b.ReportMetric(float64(obs.NeverViolatedBenign), "never_violated_benign")
	b.ReportMetric(float64(rep.FalseNegatives(nocalert.MechanismNoCAlert)), "false_negatives")
}

// BenchmarkFig10AreaOverhead regenerates the Figure 10 sweep.
func BenchmarkFig10AreaOverhead(b *testing.B) {
	var sweep []nocalert.HWOverhead
	for i := 0; i < b.N; i++ {
		sweep = nocalert.Fig10Sweep(nil)
	}
	b.StopTimer()
	for _, o := range sweep {
		switch o.Params.VCs {
		case 2:
			b.ReportMetric(o.NoCAlertPct, "nocalert_2vc_%")
			b.ReportMetric(o.DMRPct, "dmr_2vc_%")
		case 8:
			b.ReportMetric(o.NoCAlertPct, "nocalert_8vc_%")
			b.ReportMetric(o.DMRPct, "dmr_8vc_%")
		}
	}
}

// BenchmarkPowerTimingOverhead regenerates the §5.5 power and
// critical-path numbers.
func BenchmarkPowerTimingOverhead(b *testing.B) {
	var pw, cp float64
	for i := 0; i < b.N; i++ {
		_, _, pw = nocalert.PowerOverhead(nocalert.HWDefault(4))
		_, _, cp = nocalert.CriticalPathOverhead(nocalert.HWDefault(4))
	}
	b.StopTimer()
	b.ReportMetric(pw, "power_overhead_%")
	b.ReportMetric(cp, "cpath_overhead_%")
}

// BenchmarkAblationForeverEpoch sweeps ForEVeR's epoch length on a
// fault-free network — the tuning trade-off the paper cites for
// choosing 1,500 cycles.
func BenchmarkAblationForeverEpoch(b *testing.B) {
	falsePositives := 0
	epochs := []int64{50, 100, 200, 400}
	for i := 0; i < b.N; i++ {
		falsePositives = 0
		for _, epoch := range epochs {
			mesh := nocalert.NewMesh(4, 4)
			cfg := nocalert.SimConfig{Router: nocalert.DefaultRouterConfig(mesh), InjectionRate: 0.3, Seed: 3}
			n := nocalert.MustNewNetwork(cfg, nil)
			fv := nocalert.NewForeverMonitor(n.RouterConfig(), nocalert.ForeverOptions{Epoch: epoch})
			n.AttachMonitor(fv)
			n.Run(1500)
			if fv.Detected() {
				falsePositives++
			}
		}
	}
	b.ReportMetric(float64(falsePositives), "epochs_with_faultfree_FP")
}

// BenchmarkCampaignRun measures end-to-end campaign throughput on the
// 4×4/160-fault bench campaign: one full Run (golden warmup + one
// forked run per fault) per iteration. The custom metrics are the
// repo's campaign-performance baseline (EXPERIMENTS.md, "Campaign
// performance"): faults/sec and ns/fault are wall-clock throughput,
// allocs/fault is the per-fork allocation bill the clone arenas keep
// flat.
func BenchmarkCampaignRun(b *testing.B) {
	mesh := nocalert.NewMesh(4, 4)
	rc := nocalert.DefaultRouterConfig(mesh)
	params := nocalert.FaultParamsFor(&rc)
	faults := nocalert.SampleFaults(params, benchFaults, 5, benchInject)
	opts := nocalert.CampaignOptions{
		Sim:           nocalert.SimConfig{Router: rc, InjectionRate: 0.12, Seed: 3},
		InjectCycle:   benchInject,
		PostInjectRun: 400,
		DrainDeadline: 5000,
		Forever:       nocalert.ForeverOptions{Epoch: 400, HopLatency: 1},
		Faults:        faults,
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nocalert.RunCampaign(opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	total := float64(b.N * len(faults))
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(total/sec, "faults/sec")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/fault")
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/total, "allocs/fault")
}

// --- micro-benchmarks of the substrate ---

// BenchmarkNetworkStep8x8 measures one cycle of the paper-scale mesh at
// the evaluation load, fault-free, without monitors.
func BenchmarkNetworkStep8x8(b *testing.B) {
	mesh := nocalert.NewMesh(8, 8)
	cfg := nocalert.SimConfig{Router: nocalert.DefaultRouterConfig(mesh), InjectionRate: 0.1, Seed: 1}
	n := nocalert.MustNewNetwork(cfg, nil)
	n.Run(2000) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

// BenchmarkNetworkStepWithCheckers measures the same cycle with the
// full NoCAlert engine attached — the simulation-side analogue of the
// paper's "checkers are transparent to operation" claim.
func BenchmarkNetworkStepWithCheckers(b *testing.B) {
	mesh := nocalert.NewMesh(8, 8)
	cfg := nocalert.SimConfig{Router: nocalert.DefaultRouterConfig(mesh), InjectionRate: 0.1, Seed: 1}
	n := nocalert.MustNewNetwork(cfg, nil)
	n.AttachMonitor(nocalert.NewEngine(n.RouterConfig(), nocalert.EngineOptions{}))
	n.Run(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

// BenchmarkNetworkClone measures the campaign's fork primitive.
func BenchmarkNetworkClone(b *testing.B) {
	mesh := nocalert.NewMesh(8, 8)
	cfg := nocalert.SimConfig{Router: nocalert.DefaultRouterConfig(mesh), InjectionRate: 0.1, Seed: 1}
	n := nocalert.MustNewNetwork(cfg, nil)
	n.Run(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.Clone(nil)
	}
}

// BenchmarkGoldenCompare measures the classification step.
func BenchmarkGoldenCompare(b *testing.B) {
	mesh := nocalert.NewMesh(4, 4)
	cfg := nocalert.SimConfig{Router: nocalert.DefaultRouterConfig(mesh), InjectionRate: 0.15, Seed: 1}
	n := nocalert.MustNewNetwork(cfg, nil)
	n.Run(2000)
	n.Drain(8000)
	g := nocalert.NewGoldenLog(n.Ejections(), 0)
	f := nocalert.NewGoldenLog(n.Ejections(), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := nocalert.CompareToGolden(g, f, true)
		if !v.OK() {
			b.Fatal("identical logs judged malicious")
		}
	}
}

// BenchmarkFaultSiteEnumeration measures the fault-model enumerator at
// paper scale.
func BenchmarkFaultSiteEnumeration(b *testing.B) {
	rc := nocalert.DefaultRouterConfig(nocalert.NewMesh(8, 8))
	params := nocalert.FaultParamsFor(&rc)
	for i := 0; i < b.N; i++ {
		_ = params.EnumerateSites()
	}
}
