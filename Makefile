# Convenience targets for the checks CI (and pre-commit hands) should
# run. `make ci` is the full gate; the individual targets exist so a
# quick edit-compile loop doesn't have to pay for the race campaigns.

GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# test also vets and race-checks the telemetry packages — they are
# quick under -race, unlike the full campaign suite (see race).
test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/metrics ./internal/trace

# The campaign, simulator, metrics and trace packages are the
# concurrent ones (worker pools forking clones, lock-free instrument
# updates, NDJSON writers); run them under the race detector. The
# campaign package takes several minutes race-enabled.
race:
	$(GO) test -race ./internal/campaign ./internal/sim ./internal/metrics ./internal/trace

# Campaign throughput baseline (faults/sec, ns/fault, allocs/fault),
# plus a timestamped record appended to BENCH_4x4.json so the perf
# trajectory accumulates across revisions.
bench:
	$(GO) test -run '^$$' -bench BenchmarkCampaignRun -benchtime 3x .
	$(GO) run ./cmd/faultcampaign -mesh 4x4 -rate 0.12 -inject 300 -post 400 \
		-drain 5000 -epoch 400 -faults 160 -seed 3 -fig none \
		-progress=false -benchjson BENCH_4x4.json

ci: vet build test race
