# Convenience targets for the checks CI (and pre-commit hands) should
# run. `make ci` is the full gate; the individual targets exist so a
# quick edit-compile loop doesn't have to pay for the race campaigns.

GO ?= go

.PHONY: all build vet test race bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The campaign and simulator packages are the concurrent ones (worker
# pools forking clones); run them under the race detector. The campaign
# package takes several minutes race-enabled.
race:
	$(GO) test -race ./internal/campaign ./internal/sim

# Campaign throughput baseline (faults/sec, ns/fault, allocs/fault).
bench:
	$(GO) test -run '^$$' -bench BenchmarkCampaignRun -benchtime 3x .

ci: vet build test race
