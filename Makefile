# Convenience targets for the checks CI (and pre-commit hands) should
# run. `make ci` is the full gate; the individual targets exist so a
# quick edit-compile loop doesn't have to pay for the race campaigns.

GO ?= go

# The golden campaign: the spec behind testdata/golden_4x4_seed3.json,
# the CI shard matrix and `make shardcheck`. Keep all four in sync.
GOLDEN_FLAGS = -mesh 4x4 -vcs 4 -rate 0.12 -seed 3 -inject 300 -post 400 \
	-drain 5000 -epoch 400 -faults 96

.PHONY: all build fmt vet lint test race bench ci golden shardcheck

all: ci

build:
	$(GO) build ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint = formatting + vet, plus staticcheck when it is installed (the
# CI image may not carry it; the gate must not depend on a download).
lint: fmt vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (go vet ran)"; fi

# test also vets and race-checks the telemetry packages — they are
# quick under -race, unlike the full campaign suite (see race).
test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/metrics ./internal/trace

# The campaign, simulator, metrics and trace packages are the
# concurrent ones (worker pools forking clones, lock-free instrument
# updates, NDJSON writers); run them under the race detector. The
# campaign package takes several minutes race-enabled.
race:
	$(GO) test -race ./internal/campaign ./internal/sim ./internal/metrics ./internal/trace

# Campaign throughput baseline (faults/sec, ns/fault, allocs/fault),
# plus a timestamped record appended to BENCH_4x4.json so the perf
# trajectory accumulates across revisions (the file is created on
# first run — a fresh clone works). Format: see EXPERIMENTS.md.
bench:
	$(GO) test -run '^$$' -bench BenchmarkCampaignRun -benchtime 3x .
	$(GO) run ./cmd/faultcampaign -mesh 4x4 -rate 0.12 -inject 300 -post 400 \
		-drain 5000 -epoch 400 -faults 160 -seed 3 -fig none \
		-progress=false -benchjson BENCH_4x4.json

# golden regenerates testdata/golden_4x4_seed3.json after an
# intentional behaviour change; commit the diff it produces.
golden:
	$(GO) test ./internal/campaign -run TestGoldenFixture -update-golden -v

# shardcheck reproduces the CI merge gate locally: run the golden
# campaign as 4 independent shards, merge the checkpoints, and require
# the result to be bit-identical to the committed fixture.
shardcheck:
	rm -rf .shardcheck && mkdir -p .shardcheck
	for i in 0 1 2 3; do \
		$(GO) run ./cmd/faultcampaign $(GOLDEN_FLAGS) -progress=false \
			-shard $$i/4 -checkpoint .shardcheck/shard$$i.ndjson || exit 1; \
	done
	$(GO) run ./cmd/faultcampaign merge -fig none \
		-golden testdata/golden_4x4_seed3.json .shardcheck/shard*.ndjson
	rm -rf .shardcheck

ci: lint build test race
