# Convenience targets for the checks CI (and pre-commit hands) should
# run. `make ci` is the full gate; the individual targets exist so a
# quick edit-compile loop doesn't have to pay for the race campaigns.

GO ?= go

# The golden campaign: the spec behind testdata/golden_4x4_seed3.json,
# the CI shard matrix and `make shardcheck`. Keep all four in sync.
GOLDEN_FLAGS = -mesh 4x4 -vcs 4 -rate 0.12 -seed 3 -inject 300 -post 400 \
	-drain 5000 -epoch 400 -faults 96

# Coverage floor for `make cover` (percent of statements across
# ./internal/...). Raise it when coverage rises; never lower it to
# merge — add tests instead.
COVER_FLOOR = 85.0

.PHONY: all build fmt vet lint test race cover e2e bench benchcheck benchdelta ci golden shardcheck soa-identity frontier-identity build386

all: ci

build:
	$(GO) build ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# lint = formatting + vet, plus staticcheck and govulncheck when they
# are installed (the CI lint job installs both; the local gate must
# not depend on a download).
lint: fmt vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (go vet ran)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipped"; fi

# test also vets and race-checks the telemetry packages — they are
# quick under -race, unlike the full campaign suite (see race).
test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/metrics ./internal/trace

# The campaign, simulator, metrics, trace and server packages are the
# concurrent ones (worker pools forking clones, lock-free instrument
# updates, NDJSON writers, the daemon's queue/worker/event fan-out);
# run them under the race detector, plus the step-loop packages (core,
# router, soa) whose shared-array state campaign workers mutate in
# parallel. The campaign package takes several minutes race-enabled.
race:
	$(GO) test -race ./internal/campaign ./internal/sim ./internal/metrics \
		./internal/trace ./internal/server ./internal/obs ./internal/coordinator \
		./internal/core ./internal/router ./internal/soa

# cover enforces the coverage floor over ./internal/... and leaves the
# profile in cover.out for inspection (`go tool cover -html=cover.out`).
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./internal/...
	@total="$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}')"; \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { if (t+0 < f+0) exit 1 }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# e2e builds the real nocalertd binary, SIGKILLs it mid-campaign over
# HTTP, restarts it, and requires the resumed job's report to be
# byte-identical to an uninterrupted run's (see e2e/restart_test.go).
e2e:
	$(GO) test -tags e2e ./e2e -v -timeout 20m

# e2e-dist is the distributed gate alone: a coordinator dispatching the
# golden campaign to a local 3-worker fleet, one worker SIGKILLed
# mid-flight, merged report byte-identical to the unsharded run and the
# committed fixture (see e2e/distributed_test.go).
e2e-dist:
	$(GO) test -tags e2e ./e2e -run TestDistributed -v -timeout 20m

# Campaign throughput baseline (faults/sec, ns/fault, allocs/fault),
# plus timestamped records appended to BENCH_4x4.json so the perf
# trajectory accumulates across revisions (the file is created on
# first run — a fresh clone works): one serial row ("campaign"), one
# with the worker pool at GOMAXPROCS ("campaign-parallel"), and one
# serial row with span tracing and the flight recorder armed
# ("campaign-traced") — the committed evidence that observability costs
# <5% throughput. Format: see EXPERIMENTS.md.
BENCH_FLAGS = -mesh 4x4 -rate 0.12 -inject 300 -post 400 \
	-drain 5000 -epoch 400 -faults 160 -seed 3 -fig none -progress=false

# The 8x8 throughput rows (BENCH_8x8.json): the paper-scale mesh at its
# 0.05 injection rate, serial, so the trajectory tracks algorithmic
# wins (forking, fast-forward, reconvergence, frontier stepping) rather
# than core count. Each row pins its sweep engine explicitly — rows are
# only comparable within one engine (the "engine" field in the record).
BENCH_8X8_FLAGS = -mesh 8x8 -rate 0.05 -inject 300 -post 500 \
	-drain 10000 -epoch 1500 -faults 64 -seed 3 -fig none -progress=false

# The gated 16x16 throughput row (BENCH_16x16.json): a small universe
# on the 16×16 mesh, where the cone-of-influence win is largest. Run
# via `make bench BENCH_16X16=1` (or the bench CI job, which sets it) —
# the row is gated because the -no-frontier half takes a while on
# laptops.
BENCH_16X16_FLAGS = -mesh 16x16 -rate 0.02 -inject 300 -post 500 \
	-drain 10000 -epoch 1500 -faults 32 -seed 3 -fig none -progress=false

bench:
	$(GO) test -run '^$$' -bench BenchmarkCampaignRun -benchtime 3x .
	$(GO) run ./cmd/faultcampaign $(BENCH_FLAGS) -workers 1 \
		-benchjson BENCH_4x4.json
	$(GO) run ./cmd/faultcampaign $(BENCH_FLAGS) -workers 0 \
		-benchname campaign-parallel -benchjson BENCH_4x4.json
	$(GO) run ./cmd/faultcampaign $(BENCH_FLAGS) -workers 1 \
		-trace-spans .bench-spans.ndjson -flight-recorder .bench-flight.ndjson \
		-benchname campaign-traced -benchjson BENCH_4x4.json
	rm -f .bench-spans.ndjson .bench-flight.ndjson
	$(GO) run ./cmd/faultcampaign $(BENCH_8X8_FLAGS) -workers 1 -no-soa -no-frontier \
		-benchname campaign-8x8 -benchjson BENCH_8x8.json
	$(GO) run ./cmd/faultcampaign $(BENCH_8X8_FLAGS) -workers 1 -no-frontier \
		-benchname campaign-8x8-soa -benchjson BENCH_8x8.json
	$(GO) run ./cmd/faultcampaign $(BENCH_8X8_FLAGS) -workers 1 \
		-benchname campaign-8x8-frontier -benchjson BENCH_8x8.json
	@if [ -n "$(BENCH_16X16)" ]; then \
		$(GO) run ./cmd/faultcampaign $(BENCH_16X16_FLAGS) -workers 1 -no-frontier \
			-benchname campaign-16x16-soa -benchjson BENCH_16x16.json && \
		$(GO) run ./cmd/faultcampaign $(BENCH_16X16_FLAGS) -workers 1 \
			-benchname campaign-16x16-frontier -benchjson BENCH_16x16.json; \
	else echo "16x16 rows skipped (set BENCH_16X16=1 to run)"; fi

# benchcheck is the perf regression gate: re-run the serial benchmark
# campaigns and fail if their faults/sec land >30% below the latest
# committed like-engined row in BENCH_4x4.json (resp. the "campaign-8x8*"
# rows in BENCH_8x8.json). The campaign-8x8 row keeps measuring the
# reference engine for trajectory continuity, campaign-8x8-soa gates the
# structure-of-arrays step loop, and campaign-8x8-frontier gates the
# divergence-frontier delta engine. Nothing is appended.
benchcheck:
	$(GO) run ./cmd/faultcampaign $(BENCH_FLAGS) -workers 1 \
		-benchbaseline BENCH_4x4.json
	$(GO) run ./cmd/faultcampaign $(BENCH_8X8_FLAGS) -workers 1 -no-soa -no-frontier \
		-benchname campaign-8x8 -benchbaseline BENCH_8x8.json
	$(GO) run ./cmd/faultcampaign $(BENCH_8X8_FLAGS) -workers 1 -no-frontier \
		-benchname campaign-8x8-soa -benchbaseline BENCH_8x8.json
	$(GO) run ./cmd/faultcampaign $(BENCH_8X8_FLAGS) -workers 1 \
		-benchname campaign-8x8-frontier -benchbaseline BENCH_8x8.json

# benchdelta renders a per-(name, engine) throughput comparison between
# the committed bench trajectories (HEAD) and the working copies —
# typically right after `make bench`. Report-only; benchcheck is the
# gate.
benchdelta:
	@mkdir -p .benchdelta
	@for f in BENCH_4x4.json BENCH_8x8.json BENCH_16x16.json; do \
		if git show HEAD:$$f > .benchdelta/$$f 2>/dev/null && [ -f $$f ]; then \
			$(GO) run ./cmd/faultcampaign benchdelta -baseline .benchdelta/$$f -current $$f; \
		fi; \
	done
	@rm -rf .benchdelta

# golden regenerates the committed fixtures — the 4×4 and 8×8 record
# fixtures and the full JSON report fixtures the soa-identity gate
# compares against — after an intentional behaviour change; commit the
# diff it produces.
golden:
	$(GO) test ./internal/campaign -run TestGoldenFixture -update-golden -v
	$(GO) run ./cmd/faultcampaign $(GOLDEN_FLAGS) -fig none -progress=false \
		-json testdata/report_4x4_seed3.json
	$(GO) run ./cmd/faultcampaign $(BENCH_8X8_FLAGS) \
		-json testdata/report_8x8_seed3.json

# soa-identity proves the two sweep engines interchangeable: the golden
# 4×4 and paper-scale 8×8 campaigns run once with the default
# structure-of-arrays engine and once with -no-soa, and all four JSON
# reports must be byte-identical to each other and to the committed
# fixtures. Any sweep-order, skip-condition or mask-maintenance bug
# fails the cmp.
soa-identity:
	rm -rf .soaid && mkdir -p .soaid
	$(GO) run ./cmd/faultcampaign $(GOLDEN_FLAGS) -fig none -progress=false \
		-json .soaid/4x4-soa.json
	$(GO) run ./cmd/faultcampaign $(GOLDEN_FLAGS) -fig none -progress=false \
		-no-soa -json .soaid/4x4-ref.json
	cmp .soaid/4x4-soa.json .soaid/4x4-ref.json
	cmp .soaid/4x4-soa.json testdata/report_4x4_seed3.json
	$(GO) run ./cmd/faultcampaign $(BENCH_8X8_FLAGS) -json .soaid/8x8-soa.json
	$(GO) run ./cmd/faultcampaign $(BENCH_8X8_FLAGS) -no-soa -json .soaid/8x8-ref.json
	cmp .soaid/8x8-soa.json .soaid/8x8-ref.json
	cmp .soaid/8x8-soa.json testdata/report_8x8_seed3.json
	rm -rf .soaid

# frontier-identity proves divergence-frontier delta stepping exact:
# the golden 4×4 and paper-scale 8×8 campaigns run once with the
# default frontier engine and once with -no-frontier (full-mesh
# stepping, PR-5 fingerprint probe), and all four JSON reports must be
# byte-identical to each other and to the committed fixtures. Any
# missed join, replay-order or materialization bug fails the cmp.
frontier-identity:
	rm -rf .frontid && mkdir -p .frontid
	$(GO) run ./cmd/faultcampaign $(GOLDEN_FLAGS) -fig none -progress=false \
		-json .frontid/4x4-frontier.json
	$(GO) run ./cmd/faultcampaign $(GOLDEN_FLAGS) -fig none -progress=false \
		-no-frontier -json .frontid/4x4-full.json
	cmp .frontid/4x4-frontier.json .frontid/4x4-full.json
	cmp .frontid/4x4-frontier.json testdata/report_4x4_seed3.json
	$(GO) run ./cmd/faultcampaign $(BENCH_8X8_FLAGS) -json .frontid/8x8-frontier.json
	$(GO) run ./cmd/faultcampaign $(BENCH_8X8_FLAGS) -no-frontier -json .frontid/8x8-full.json
	cmp .frontid/8x8-frontier.json .frontid/8x8-full.json
	cmp .frontid/8x8-frontier.json testdata/report_8x8_seed3.json
	rm -rf .frontid

# build386 is a build-only cross-compile of the whole module for a
# 32-bit target: the SoA state uses explicitly sized element types
# (int32/uint32/uint64), and this catches any accidental dependence on
# 64-bit int.
build386:
	GOARCH=386 $(GO) build ./...

# shardcheck reproduces the CI merge gate locally: run the golden
# campaign as 4 independent shards, merge the checkpoints, and require
# the result to be bit-identical to the committed fixture.
shardcheck:
	rm -rf .shardcheck && mkdir -p .shardcheck
	for i in 0 1 2 3; do \
		$(GO) run ./cmd/faultcampaign $(GOLDEN_FLAGS) -progress=false \
			-shard $$i/4 -checkpoint .shardcheck/shard$$i.ndjson || exit 1; \
	done
	$(GO) run ./cmd/faultcampaign merge -fig none \
		-golden testdata/golden_4x4_seed3.json .shardcheck/shard*.ndjson
	rm -rf .shardcheck

ci: lint build test race cover
