package nocalert_test

import (
	"testing"

	"nocalert"
)

// TestPublicAPIQuickstart exercises the documented quickstart flow
// through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	mesh := nocalert.NewMesh(4, 4)
	cfg := nocalert.SimConfig{
		Router:        nocalert.DefaultRouterConfig(mesh),
		InjectionRate: 0.1,
		Seed:          1,
	}
	n, err := nocalert.NewNetwork(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := nocalert.NewEngine(n.RouterConfig(), nocalert.EngineOptions{KeepViolations: true})
	n.AttachMonitor(eng)
	n.Run(1500)
	if eng.Detected() {
		t.Fatalf("fault-free assertions: %v", eng.Violations())
	}
	if n.FlitsEjected() == 0 {
		t.Fatal("no traffic")
	}
}

// TestPublicAPIFaultInjection drives the fault plane through the
// facade.
func TestPublicAPIFaultInjection(t *testing.T) {
	mesh := nocalert.NewMesh(4, 4)
	cfg := nocalert.SimConfig{
		Router:        nocalert.DefaultRouterConfig(mesh),
		InjectionRate: 0.15,
		Seed:          2,
	}
	site := nocalert.FaultSite{
		Router: 5,
		Kind:   nocalert.FaultSA1Gnt,
		Port:   int(nocalert.Local),
		VC:     -1,
		Width:  4,
	}
	f := nocalert.Fault{Site: site, Bit: 0, Cycle: 400, Type: nocalert.PermanentFault}
	n := nocalert.MustNewNetwork(cfg, nocalert.NewFaultPlane(f))
	eng := nocalert.NewEngine(n.RouterConfig(), nocalert.EngineOptions{})
	n.AttachMonitor(eng)
	n.Run(1500)
	if !eng.Detected() {
		t.Fatal("permanent arbiter fault not detected")
	}
	if eng.FirstDetection() < 400 {
		t.Fatalf("detection at %d precedes injection", eng.FirstDetection())
	}
}

// TestPublicAPIRegistries exercises the name-based constructors.
func TestPublicAPIRegistries(t *testing.T) {
	if _, err := nocalert.NewRoutingAlgorithm("adaptive"); err != nil {
		t.Fatal(err)
	}
	if _, err := nocalert.NewRoutingAlgorithm("nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := nocalert.NewTrafficPattern("transpose"); err != nil {
		t.Fatal(err)
	}
	if _, err := nocalert.NewTrafficPattern("nope"); err == nil {
		t.Fatal("unknown pattern accepted")
	}
	if nocalert.XYRouting.Name() != "xy" || nocalert.UniformTraffic.Name() != "uniform" {
		t.Fatal("canonical instances misnamed")
	}
}

// TestPublicAPIGoldenFlow runs the golden-reference comparison through
// the facade.
func TestPublicAPIGoldenFlow(t *testing.T) {
	mesh := nocalert.NewMesh(4, 4)
	cfg := nocalert.SimConfig{Router: nocalert.DefaultRouterConfig(mesh), InjectionRate: 0.1, Seed: 3}
	n := nocalert.MustNewNetwork(cfg, nil)
	n.Run(800)
	n.Drain(5000)
	g := nocalert.NewGoldenLog(n.Ejections(), 0)
	v := nocalert.CompareToGolden(g, g, true)
	if !v.OK() {
		t.Fatalf("self-comparison judged %s", v.String())
	}
}

// TestPublicAPIHWModel sanity-checks the hardware-model facade.
func TestPublicAPIHWModel(t *testing.T) {
	o := nocalert.AreaOverhead(nocalert.HWDefault(4))
	if o.NoCAlertPct <= 0 || o.DMRPct <= o.NoCAlertPct {
		t.Fatalf("implausible overheads: %+v", o)
	}
	if _, _, pw := nocalert.PowerOverhead(nocalert.HWDefault(4)); pw <= 0 {
		t.Fatal("power overhead must be positive")
	}
}

// TestParseMesh covers the "WxH" specification parser.
func TestParseMesh(t *testing.T) {
	m, err := nocalert.ParseMesh("8x8")
	if err != nil || m.W != 8 || m.H != 8 {
		t.Fatalf("ParseMesh(8x8) = %v, %v", m, err)
	}
	if m, err := nocalert.ParseMesh(" 4X2 "); err != nil || m.W != 4 || m.H != 2 {
		t.Fatalf("ParseMesh with case/space = %v, %v", m, err)
	}
	for _, bad := range []string{"", "8", "8x", "x8", "0x4", "ax b"} {
		if _, err := nocalert.ParseMesh(bad); err == nil {
			t.Errorf("ParseMesh(%q) accepted", bad)
		}
	}
}

// TestCheckerConstantsExported pins facade constants against the core
// definitions.
func TestCheckerConstantsExported(t *testing.T) {
	if nocalert.NumCheckers != 32 {
		t.Fatalf("NumCheckers = %d", nocalert.NumCheckers)
	}
	if nocalert.North.String() != "N" || nocalert.Local.String() != "L" {
		t.Fatal("direction constants broken")
	}
}
