// Router micro-architecture variations (paper §4.4): the invariance
// concept follows the micro-architecture, so changing the router
// changes the checker set — but never the method. This example runs
// the same fault on four router variants and shows how the active
// checker set adapts:
//
//   - baseline: atomic VC buffers, deterministic XY;
//   - non-atomic buffers: invariance 26 retires, 27 takes over;
//   - speculative VA/SA: invariance 17's SA-after-VA clause relaxes;
//   - minimal-adaptive routing with an XY escape VC: turn rules widen,
//     minimality is still asserted.
//
// Every variant stays silent on a healthy network — the checkers adapt
// rather than false-alarm — and still catches the injected fault.
package main

import (
	"fmt"
	"log"

	"nocalert"
)

func main() {
	log.SetFlags(0)

	mesh := nocalert.NewMesh(4, 4)
	variants := []struct {
		name string
		mut  func(*nocalert.RouterConfig)
	}{
		{"baseline (atomic, XY)", func(c *nocalert.RouterConfig) {}},
		{"non-atomic buffers", func(c *nocalert.RouterConfig) { c.AtomicVC = false }},
		{"speculative VA/SA", func(c *nocalert.RouterConfig) { c.Speculative = true }},
		{"minimal adaptive + escape VC", func(c *nocalert.RouterConfig) { c.Alg = nocalert.AdaptiveRouting }},
	}

	// The same single-bit upset for every variant: a phantom grant bit
	// in a switch arbiter mid-mesh.
	site := nocalert.FaultSite{
		Router: 5, Kind: nocalert.FaultSA1Gnt, Port: int(nocalert.East), VC: -1, Width: 4,
	}

	for _, v := range variants {
		rc := nocalert.DefaultRouterConfig(mesh)
		v.mut(&rc)
		cfg := nocalert.SimConfig{Router: rc, InjectionRate: 0.15, Seed: 51}

		// Healthy run: must be silent.
		n := nocalert.MustNewNetwork(cfg, nil)
		eng := nocalert.NewEngine(n.RouterConfig(), nocalert.EngineOptions{})
		n.AttachMonitor(eng)
		n.Run(2000)
		if eng.Detected() {
			log.Fatalf("%s: false alarm on a healthy network", v.name)
		}

		// Faulted run.
		f := nocalert.Fault{Site: site, Bit: 2, Cycle: 700, Type: nocalert.PermanentFault}
		nf := nocalert.MustNewNetwork(cfg, nocalert.NewFaultPlane(f))
		engF := nocalert.NewEngine(nf.RouterConfig(), nocalert.EngineOptions{})
		nf.AttachMonitor(engF)
		nf.Run(2000)

		fmt.Printf("%-30s  26 enabled: %-5v  27 enabled: %-5v\n",
			v.name,
			engF.Enabled(nocalert.CheckerID(26)),
			engF.Enabled(nocalert.CheckerID(27)))
		if engF.Detected() {
			fmt.Printf("%-30s  fault detected, latency %d cycles, checkers %v\n\n",
				"", engF.FirstDetection()-f.Cycle, engF.FiredCheckers())
		} else {
			fmt.Printf("%-30s  fault NOT detected (wire idle in this variant)\n\n", "")
		}
	}
}
