// Fault injection walkthrough: reproduce, on a small mesh, the paper's
// per-fault methodology end to end — golden run, fault-injected fork,
// golden-reference verdict and NoCAlert/ForEVeR detection — for a
// handful of hand-picked, qualitatively different faults:
//
//   - an RC output fault that misroutes a packet (caught by the illegal
//     turn / non-minimal checkers, sometimes benign at network level);
//   - a buffer write-strobe fault that duplicates a flit (new-flit
//     generation);
//   - a flit-kind fault that corrupts a packet's framing (atomicity
//     violation and packet mixing);
//   - a permanent arbiter fault that starves a port into deadlock (the
//     paper's Observation 3 scenario).
//
// A transient fault only matters if its wire is busy in the injection
// cycle, so the example first runs a fault-free probe with a custom
// Monitor to find a cycle in which the targeted module is active —
// exactly how a campaign aims at "network states" in the paper.
package main

import (
	"fmt"
	"log"

	"nocalert"
)

// activityProbe is a sim.Monitor that records, per (router, port), the
// cycles at which the RC unit executed, a flit arrived, and SA1
// granted — the activity conditions for the example's fault targets.
type activityProbe struct {
	nocalert.BaseMonitor
	since                int64
	rcAt, arriveAt, saAt map[[2]int]int64
}

func newActivityProbe(since int64) *activityProbe {
	return &activityProbe{
		since:    since,
		rcAt:     map[[2]int]int64{},
		arriveAt: map[[2]int]int64{},
		saAt:     map[[2]int]int64{},
	}
}

func (p *activityProbe) RouterCycle(r *nocalert.Router, s *nocalert.Signals) {
	if s.Cycle < p.since {
		return
	}
	note := func(m map[[2]int]int64, port int) {
		k := [2]int{s.Router, port}
		if _, ok := m[k]; !ok {
			m[k] = s.Cycle
		}
	}
	for _, x := range s.RCExecs {
		note(p.rcAt, x.Port)
	}
	for _, a := range s.Arrivals {
		note(p.arriveAt, a.Port)
	}
	for port := 0; port < 5; port++ {
		if !s.SA1[port].Gnt.IsZero() {
			note(p.saAt, port)
		}
	}
}

func main() {
	log.SetFlags(0)

	mesh := nocalert.NewMesh(4, 4)
	rc := nocalert.DefaultRouterConfig(mesh)
	simCfg := nocalert.SimConfig{Router: rc, InjectionRate: 0.15, Seed: 11}

	// Probe for module activity after warmup.
	probe := newActivityProbe(400)
	pn := nocalert.MustNewNetwork(simCfg, nil)
	pn.AttachMonitor(probe)
	pn.Run(1200)

	pick := func(m map[[2]int]int64, router, port int) int64 {
		if c, ok := m[[2]int{router, port}]; ok {
			return c
		}
		log.Fatalf("no activity observed at router %d port %d; raise the probe window", router, port)
		return 0
	}

	cases := []struct {
		name  string
		fault nocalert.Fault
	}{
		{
			name: "RC misdirection (router 5, South input)",
			fault: nocalert.Fault{
				Site: nocalert.FaultSite{Router: 5, Kind: nocalert.FaultRCOutDir,
					Port: int(nocalert.South), VC: -1, Width: 3},
				Bit: 1, Cycle: pick(probe.rcAt, 5, int(nocalert.South)), Type: nocalert.TransientFault,
			},
		},
		{
			name: "buffer write-strobe duplication (router 9, West input)",
			fault: nocalert.Fault{
				Site: nocalert.FaultSite{Router: 9, Kind: nocalert.FaultBufWrite,
					Port: int(nocalert.West), VC: -1, Width: 4},
				Bit: 3, Cycle: pick(probe.arriveAt, 9, int(nocalert.West)), Type: nocalert.TransientFault,
			},
		},
		{
			name: "flit kind corruption (router 10, East input)",
			fault: nocalert.Fault{
				Site: nocalert.FaultSite{Router: 10, Kind: nocalert.FaultFlitKindIn,
					Port: int(nocalert.East), VC: -1, Width: 2},
				Bit: 1, Cycle: pick(probe.arriveAt, 10, int(nocalert.East)), Type: nocalert.TransientFault,
			},
		},
		{
			name: "permanent SA1 grant fault (router 6, North input)",
			fault: nocalert.Fault{
				Site: nocalert.FaultSite{Router: 6, Kind: nocalert.FaultSA1Gnt,
					Port: int(nocalert.North), VC: -1, Width: 4},
				Bit: 0, Cycle: pick(probe.saAt, 6, int(nocalert.North)), Type: nocalert.PermanentFault,
			},
		},
	}

	for _, c := range cases {
		rep, err := nocalert.RunCampaign(nocalert.CampaignOptions{
			Sim:           simCfg,
			InjectCycle:   c.fault.Cycle,
			PostInjectRun: 400,
			DrainDeadline: 5000,
			Forever:       nocalert.ForeverOptions{Epoch: 300, HopLatency: 1},
			Faults:        []nocalert.Fault{c.fault},
		})
		if err != nil {
			log.Fatal(err)
		}
		r := rep.Results[0]
		fmt.Printf("%s\n", c.name)
		fmt.Printf("  fault:    %s\n", r.Fault.String())
		fmt.Printf("  fired:    %v\n", r.Fired)
		fmt.Printf("  verdict:  %s\n", r.Verdict.String())
		for i, why := range r.Verdict.Reasons {
			if i == 3 {
				fmt.Printf("            - ...\n")
				break
			}
			fmt.Printf("            - %s\n", why)
		}
		fmt.Printf("  NoCAlert: %s (latency %d cycles, checkers %v)\n",
			r.Outcome, r.Latency, r.CheckersFired)
		fmt.Printf("  ForEVeR:  %s (latency %d cycles)\n\n", r.ForeverOutcome, r.ForeverLatency)
	}
}
