// Diagnosis: from detection to localization. NoCAlert's checkers are
// physically distributed — each taps one module of one router — so the
// assertion pattern pinpoints the fault. This example injects permanent
// faults at randomly chosen routers and shows the diagnosis engine
// recovering the faulted router from the violation log, the information
// a recovery/reconfiguration back-end (the paper's intended consumer)
// needs.
package main

import (
	"fmt"
	"log"

	"nocalert"
)

func main() {
	log.SetFlags(0)

	mesh := nocalert.NewMesh(6, 6)
	rc := nocalert.DefaultRouterConfig(mesh)
	params := nocalert.FaultParamsFor(&rc)

	var targets []nocalert.FaultSite
	for _, s := range params.EnumerateSites() {
		if s.Kind == nocalert.FaultSA1Gnt || s.Kind == nocalert.FaultVA1Gnt {
			targets = append(targets, s)
		}
	}

	total, top1, withinOne := 0, 0, 0
	fmt.Println("injecting permanent arbiter faults and localizing them from the assertion pattern:")
	for i := 0; i < len(targets); i += 17 { // a spread of routers/ports
		site := targets[i]
		f := nocalert.Fault{Site: site, Bit: 0, Cycle: 400, Type: nocalert.PermanentFault}
		n := nocalert.MustNewNetwork(nocalert.SimConfig{
			Router: rc, InjectionRate: 0.15, Seed: 101,
		}, nocalert.NewFaultPlane(f))
		eng := nocalert.NewEngine(n.RouterConfig(), nocalert.EngineOptions{
			KeepViolations: true, MaxViolations: 300,
		})
		n.AttachMonitor(eng)
		n.Run(900)
		if !eng.Detected() {
			continue
		}
		suspects := nocalert.Localize(eng.Violations())
		acc := nocalert.EvaluateLocalization(mesh, suspects, site.Router)
		total++
		if acc.Rank == 1 {
			top1++
		}
		if acc.Distance >= 0 && acc.Distance <= 1 {
			withinOne++
		}
		if total <= 8 {
			fmt.Printf("  fault at router %-2d (%s): top suspect router %-2d (score %.2f, checkers %v)\n",
				site.Router, site.Kind, suspects[0].Router, suspects[0].Score, suspects[0].Checkers)
		}
	}
	fmt.Printf("\nlocalization over %d detected faults: top-1 %.0f%%, within one hop %.0f%%\n",
		total, 100*float64(top1)/float64(total), 100*float64(withinOne)/float64(total))
}
