// ForEVeR comparison: a condensed version of the paper's Figure 6/7
// head-to-head between NoCAlert and the epoch-based ForEVeR baseline,
// plus the epoch-length sensitivity study the paper alludes to ("if the
// epoch duration is not carefully chosen, the mechanism may give rise
// to false positives even in a fault-free environment").
package main

import (
	"fmt"
	"log"
	"os"

	"nocalert"
)

func main() {
	log.SetFlags(0)

	mesh := nocalert.NewMesh(4, 4)
	rc := nocalert.DefaultRouterConfig(mesh)
	simCfg := nocalert.SimConfig{Router: rc, InjectionRate: 0.12, Seed: 3}
	params := nocalert.FaultParamsFor(&rc)
	const inject = 400

	// Head-to-head on a random fault sample.
	faults := nocalert.SampleFaults(params, 250, 5, inject)
	rep, err := nocalert.RunCampaign(nocalert.CampaignOptions{
		Sim:           simCfg,
		InjectCycle:   inject,
		PostInjectRun: 400,
		DrainDeadline: 5000,
		Forever:       nocalert.ForeverOptions{Epoch: 400, HopLatency: 1},
		Faults:        faults,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep.WriteFig6(os.Stdout)
	fmt.Println()
	rep.WriteFig7(os.Stdout)

	na := rep.LatencyCDF(nocalert.MechanismNoCAlert)
	fv := rep.LatencyCDF(nocalert.MechanismForEVeR)
	if na.N() > 0 && fv.N() > 0 && na.Mean() > 0 {
		fmt.Printf("\nmean detection latency: NoCAlert %.1f cycles, ForEVeR %.1f cycles (%.0fx)\n",
			na.Mean(), fv.Mean(), fv.Mean()/na.Mean())
	} else if na.N() > 0 && fv.N() > 0 {
		fmt.Printf("\nmean detection latency: NoCAlert %.1f cycles, ForEVeR %.1f cycles\n",
			na.Mean(), fv.Mean())
	}

	// Epoch sensitivity: how short can ForEVeR's epoch get before the
	// fault-free network itself trips the end-to-end counters?
	fmt.Println("\nForEVeR epoch-length sensitivity (fault-free network):")
	for _, epoch := range []int64{50, 100, 200, 400, 800, 1500} {
		n := nocalert.MustNewNetwork(simCfg, nil)
		fv := nocalert.NewForeverMonitor(n.RouterConfig(), nocalert.ForeverOptions{Epoch: epoch, HopLatency: 1})
		n.AttachMonitor(fv)
		n.Run(6000)
		n.Drain(10000)
		fp := "ok"
		if fv.Detected() {
			fp = fmt.Sprintf("FALSE POSITIVE at cycle %d", fv.FirstDetection())
		}
		fmt.Printf("  epoch %5d cycles: %s\n", epoch, fp)
	}
	fmt.Println("\n(NoCAlert has no epoch to tune: its checkers are combinational and always-on.)")
}
