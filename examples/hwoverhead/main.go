// Hardware overhead study: regenerate the paper's Figure 10 with the
// analytical gate-equivalent model and explore how the NoCAlert-vs-DMR
// gap responds to the design parameters the paper holds fixed (flit
// width, buffer depth) — the point being that DMR tracks the control
// logic's super-linear growth while the checkers stay linear.
package main

import (
	"fmt"
	"log"

	"nocalert"
)

func main() {
	log.SetFlags(0)

	fmt.Println("Figure 10 — area overhead vs VCs per port:")
	fmt.Printf("%4s  %12s  %10s  %8s\n", "VCs", "router GE", "NoCAlert%", "DMR-CL%")
	for _, o := range nocalert.Fig10Sweep(nil) {
		fmt.Printf("%4d  %12.0f  %9.2f%%  %7.2f%%\n",
			o.Params.VCs, o.RouterGE, o.NoCAlertPct, o.DMRPct)
	}

	fmt.Println("\nSensitivity: narrower links shrink the datapath, so both")
	fmt.Println("overheads rise — but their ratio stays put:")
	fmt.Printf("%8s  %10s  %8s  %6s\n", "width", "NoCAlert%", "DMR-CL%", "ratio")
	for _, w := range []int{32, 64, 128, 256} {
		p := nocalert.HWParams{Ports: 5, VCs: 4, BufDepth: 5, FlitWidth: w}
		o := nocalert.AreaOverhead(p)
		fmt.Printf("%7db  %9.2f%%  %7.2f%%  %6.1f\n",
			w, o.NoCAlertPct, o.DMRPct, o.DMRPct/o.NoCAlertPct)
	}

	fmt.Println("\nPower and critical path at the paper's design point:")
	for _, v := range []int{2, 4, 6, 8} {
		p := nocalert.HWDefault(v)
		_, _, pw := nocalert.PowerOverhead(p)
		base, with, cp := nocalert.CriticalPathOverhead(p)
		fmt.Printf("  %d VCs: power +%.2f%%, critical path %.1f -> %.1f gate levels (+%.2f%%)\n",
			v, pw, base, with, cp)
	}
}
