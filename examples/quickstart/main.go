// Quickstart: build a mesh NoC, attach the NoCAlert checker fabric,
// run healthy traffic (the checkers stay silent), then flip a single
// control bit and watch the assertion fire in the very cycle of the
// upset.
package main

import (
	"fmt"
	"log"

	"nocalert"
)

func main() {
	log.SetFlags(0)

	// An 8×8 mesh with the paper's baseline router: 4 VCs per port,
	// 5-flit atomic buffers, XY routing, 5-flit packets.
	mesh := nocalert.NewMesh(8, 8)
	cfg := nocalert.SimConfig{
		Router:        nocalert.DefaultRouterConfig(mesh),
		InjectionRate: 0.10, // flits per node per cycle
		Seed:          1,
	}

	// --- Healthy network: NoCAlert never says a word. ---
	n := nocalert.MustNewNetwork(cfg, nil)
	eng := nocalert.NewEngine(n.RouterConfig(), nocalert.EngineOptions{KeepViolations: true})
	n.AttachMonitor(eng)
	n.Run(5000)
	fmt.Printf("fault-free: %d flits delivered, checker assertions: %d\n",
		n.FlitsEjected(), len(eng.Violations()))

	// --- Now corrupt one wire for one cycle. ---
	// Bit 0 of the SA1 grant vector of router 27's East input port
	// flips at cycle 1000: the switch arbiter "grants" a VC that never
	// requested.
	site := nocalert.FaultSite{
		Router: 27,
		Kind:   nocalert.FaultSA1Gnt,
		Port:   int(nocalert.East),
		VC:     -1,
		Width:  4,
	}
	f := nocalert.Fault{Site: site, Bit: 0, Cycle: 1000, Type: nocalert.TransientFault}

	n2 := nocalert.MustNewNetwork(cfg, nocalert.NewFaultPlane(f))
	eng2 := nocalert.NewEngine(n2.RouterConfig(), nocalert.EngineOptions{KeepViolations: true, MaxViolations: 5})
	n2.AttachMonitor(eng2)
	n2.Run(5000)

	if !eng2.Detected() {
		log.Fatal("expected the fault to be detected")
	}
	fmt.Printf("faulty: first assertion at cycle %d (injected at %d, latency %d cycles)\n",
		eng2.FirstDetection(), f.Cycle, eng2.FirstDetection()-f.Cycle)
	for _, v := range eng2.Violations() {
		fmt.Println("  ", v)
	}
}
