// Command nocalertd is the long-running campaign service: submit
// fault-injection campaigns (campaign.Spec JSON) over HTTP, watch
// their progress as an NDJSON/SSE event stream, and fetch final
// reports that are byte-identical to the equivalent unsharded
// `faultcampaign -json` output.
//
// Every job is durable. Submissions are persisted as a job manifest
// plus a resumable shard checkpoint in the state directory before the
// 201 response is written, so a daemon killed at any instant — SIGKILL
// included — restarts with its whole job table and resumes every
// unfinished campaign from its checkpoint, re-verifying a sample of
// the recorded runs instead of re-executing them.
//
// Usage:
//
//	nocalertd -addr localhost:8377 -dir /var/lib/nocalertd
//
// Endpoints:
//
//	POST   /v1/jobs             submit a spec (429 when the queue is full)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/events NDJSON progress stream (SSE with
//	                            Accept: text/event-stream)
//	GET    /v1/jobs/{id}/report final aggregated report
//	DELETE /v1/jobs/{id}        cancel
//	GET    /metrics             OpenMetrics/Prometheus exposition
//	GET    /healthz /metricsz /debug/pprof/ /debug/vars
//
// Observability: job transitions log through log/slog (text by
// default, `-log-json` for machine-readable records), every record
// carrying the job ID. `-trace-spans` streams the job → shard → run
// span hierarchy as NDJSON, `-flight-recorder` arms the anomaly black
// box, and /metrics serves the whole registry to standard scrapers.
//
// SIGTERM/SIGINT drain gracefully: the listener closes, running
// campaigns stop after their in-flight faults (every completed run is
// already on disk), queued jobs stay queued, and the next start
// resumes all of it. A second signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nocalert/internal/metrics"
	"nocalert/internal/obs"
	"nocalert/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:8377", "HTTP listen address (host:0 picks a free port)")
		dir       = flag.String("dir", "nocalertd-state", "state directory: job manifests, checkpoints and reports")
		queue     = flag.Int("queue", 16, "submission queue bound; beyond it POST /v1/jobs returns 429")
		jobs      = flag.Int("jobs", 1, "jobs running concurrently (each job is internally parallel)")
		workers   = flag.Int("workers", 0, "per-campaign worker pool size (0 = GOMAXPROCS)")
		verifyN   = flag.Int("verify-resumed", 0, "recorded runs to re-execute and compare when resuming a checkpoint (0 = default sample, -1 = none)")
		drainFor  = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight runs before giving up")
		logJSON   = flag.Bool("log-json", false, "emit log records as JSON instead of text")
		spanFile  = flag.String("trace-spans", "", "stream job/shard/run/phase spans as NDJSON to this file")
		spanN     = flag.Int("span-sample", 1, "sample every Nth run span (campaign-level spans always recorded)")
		frFile    = flag.String("flight-recorder", "", "arm the anomaly flight recorder, dumping its ring to this file")
		auth      = flag.String("auth", "", "comma-separated tenant=token pairs; when set, POST/DELETE require a matching bearer token (read endpoints stay open)")
		quota     = flag.Int("tenant-quota", 0, "max active (queued+running) jobs per tenant; 0 = unlimited")
		rateLim   = flag.Float64("rate-limit", 0, "mutating requests/second per tenant (token bucket); 0 = off")
		rateBurst = flag.Int("rate-burst", 0, "token-bucket burst headroom (default 5 when -rate-limit is set)")
	)
	flag.Parse()

	authTokens, err := parseAuthFlag(*auth)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocalertd:", err)
		os.Exit(1)
	}

	var h slog.Handler
	if *logJSON {
		h = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		h = slog.NewTextHandler(os.Stderr, nil)
	}
	logger := slog.New(h).With("service", "nocalertd")
	fatal := func(msg string, err error) {
		logger.Error(msg, "error", err)
		os.Exit(1)
	}

	reg := metrics.NewRegistry()
	var tracer *obs.Tracer
	if *spanFile != "" {
		f, err := os.Create(*spanFile)
		if err != nil {
			fatal("trace-spans open", err)
		}
		defer f.Close()
		tracer = obs.New(obs.Options{Writer: f, SampleEvery: *spanN, Service: "nocalertd", Metrics: reg})
		defer tracer.Close()
		logger = logger.With("trace_id", tracer.TraceID())
	}
	var fr *obs.FlightRecorder
	if *frFile != "" {
		f, err := os.Create(*frFile)
		if err != nil {
			fatal("flight-recorder open", err)
		}
		defer f.Close()
		fr = obs.NewFlightRecorder(0, f)
	}

	srv, err := server.New(server.Config{
		Dir:             *dir,
		QueueSize:       *queue,
		Concurrency:     *jobs,
		CampaignWorkers: *workers,
		VerifyResumed:   *verifyN,
		Registry:        reg,
		Logger:          logger,
		Tracer:          tracer,
		FlightRecorder:  fr,
		AuthTokens:      authTokens,
		TenantQuota:     *quota,
		RateLimit:       *rateLim,
		RateBurst:       *rateBurst,
	})
	if err != nil {
		fatal("startup", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// The e2e harness parses this line to find the bound port.
	fmt.Printf("nocalertd: listening on %s (state dir %s)\n", ln.Addr(), *dir)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		logger.Info("draining (in-flight runs finish, checkpoints stay resumable; again to force exit)", "signal", sig.String())
	case err := <-serveErr:
		fatal("serve", err)
	}

	go func() {
		<-sigs
		logger.Warn("second signal: exiting now (checkpoints are append-only and survive this too)")
		os.Exit(1)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Error("http shutdown", "error", err)
	}
	if err := srv.Stop(ctx); err != nil {
		logger.Error("drain", "error", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("serve", "error", err)
	}
	logger.Info("drained; state is resumable on next start")
}

// parseAuthFlag parses "-auth tenant=token,tenant2=token2" into the
// token → tenant table server.Config wants.
func parseAuthFlag(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	tokens := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		tenant, token, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || tenant == "" || token == "" {
			return nil, fmt.Errorf("invalid -auth entry %q (want tenant=token)", pair)
		}
		if _, dup := tokens[token]; dup {
			return nil, fmt.Errorf("-auth token for %q reused; tokens must be unique", tenant)
		}
		tokens[token] = tenant
	}
	return tokens, nil
}
