// Command faultcampaign runs the paper's fault-injection campaign
// (§5.2–5.4) and regenerates the evaluation figures:
//
//	Figure 6 — fault coverage breakdown (TP/FP/TN/FN) for NoCAlert,
//	           NoCAlert Cautious and ForEVeR;
//	Figure 7 — cumulative fault-detection delay distribution;
//	Figure 8 — share of violations per invariance checker;
//	Figure 9 — simultaneously asserted checkers per fault;
//	Obs. 3  — transient vs permanent behaviour of invariance 5;
//	Obs. 5  — the fate of faults with no same-cycle assertion.
//
// Usage:
//
//	faultcampaign -mesh 8x8 -rate 0.05 -inject 32000 -faults 2000
//	faultcampaign -mesh 4x4 -inject 0 -faults 500 -fig 6,7
//
// The paper evaluates its full fault population (11,808 locations at
// its RTL granularity; this model enumerates 32,256 bit-level locations
// for the same 8×8 mesh); pass -faults 0 to do the same (hours of CPU),
// or a sample size for a quicker statistically representative run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	_ "expvar" // registers /debug/vars on the telemetry server
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the telemetry server
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nocalert"
	"nocalert/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultcampaign: ")
	if len(os.Args) > 1 && os.Args[1] == "merge" {
		mergeMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "dispatch" {
		dispatchMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "benchdelta" {
		benchDeltaMain(os.Args[2:])
		return
	}
	var (
		meshSpec   = flag.String("mesh", "8x8", "mesh dimensions WxH")
		vcs        = flag.Int("vcs", 4, "virtual channels per port")
		rate       = flag.Float64("rate", 0.05, "injection rate (flits/node/cycle)")
		inject     = flag.String("inject", "0", "fault-injection cycle, or a comma list (e.g. 0,16000,32000) spread round-robin over the sample (paper: 0 and 32000)")
		nFaults    = flag.Int("faults", 1000, "fault sample size (0 = all locations)")
		seed       = flag.Uint64("seed", 1, "random seed")
		epoch      = flag.Int64("epoch", 1500, "ForEVeR epoch length in cycles")
		post       = flag.Int64("post", 500, "cycles of continued injection after the fault")
		drain      = flag.Int64("drain", 10000, "drain deadline in cycles")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		figs       = flag.String("fig", "all", "figures to print: comma list of 6,7,8,9,obs3,obs5 or 'all'")
		jsonPath   = flag.String("json", "", "also export the aggregated results as JSON to this file")
		benchOut   = flag.String("benchjson", "", "write a campaign throughput record (faults/sec) as JSON to this file")
		benchName  = flag.String("benchname", "campaign", "name for the -benchjson record (e.g. campaign-parallel)")
		benchBase  = flag.String("benchbaseline", "", "compare this run's faults/sec against the latest matching record in FILE; exit non-zero on a >30% regression")
		noFast     = flag.Bool("nofastpath", false, "disable the early-exit fast path for non-firing faults")
		noReconv   = flag.Bool("no-reconverge", false, "disable golden-state reconvergence detection (fired faults always simulate their full window)")
		noFork     = flag.Bool("no-fork", false, "disable injection-point forking (every run simulates its full [0,injection) prefix)")
		snapInt    = flag.Int64("snapshot-interval", 0, "golden snapshot spacing in cycles (0 = adaptive from the universe's injection-cycle histogram)")
		noFF       = flag.Bool("no-fastforward", false, "disable frozen-state fast-forwarding of deadlocked drains and idle ForEVeR horizons")
		noSoA      = flag.Bool("no-soa", false, "use the reference sweep engine (full-range VC sweeps, no inert-router skip); results are byte-identical to the default structure-of-arrays engine")
		noFrontier = flag.Bool("no-frontier", false, "disable divergence-frontier delta stepping (fired faults step the full mesh every window cycle); results are byte-identical to the default frontier engine")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		progress   = flag.Bool("progress", true, "print campaign progress to stderr")
		telAddr    = flag.String("telemetry", "", "serve live telemetry on this address (pprof at /debug/pprof/, expvar at /debug/vars, metrics at /metricsz, OpenMetrics at /metrics)")
		traceOut   = flag.String("trace", "", "stream one NDJSON record per completed fault run to this file")
		spanOut    = flag.String("trace-spans", "", "stream campaign/run/phase spans as NDJSON to this file")
		otlpOut    = flag.String("spans-otlp", "", "write the completed spans as an OTLP/JSON dump to this file (implies span retention)")
		spanN      = flag.Int("span-sample", 1, "record every Nth run's spans (campaign-level spans are always recorded)")
		frOut      = flag.String("flight-recorder", "", "record recent campaign events in a bounded ring, dumped to this file on anomalies and at campaign end")
		shardStr   = flag.String("shard", "", "run only shard i/N of the campaign (0-based, e.g. 0/4) against a resumable checkpoint; requires -checkpoint")
		ckptPath   = flag.String("checkpoint", "", "shard checkpoint file (NDJSON); an existing one is resumed, a finished one is a no-op")
		verifyN    = flag.Int("verify-resumed", 0, "recorded runs to re-execute and compare when resuming a checkpoint (0 = default sample, -1 = none)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the campaign cooperatively: in-flight runs
	// finish, then RunCampaign returns context.Canceled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	mesh, err := nocalert.ParseMesh(*meshSpec)
	if err != nil {
		log.Fatal(err)
	}
	cycles, err := parseInjectCycles(*inject)
	if err != nil {
		log.Fatal(err)
	}
	rc := nocalert.DefaultRouterConfig(mesh)
	rc.VCs = *vcs
	simCfg := nocalert.SimConfig{Router: rc, InjectionRate: *rate, Seed: *seed, DisableSoA: *noSoA}
	params := nocalert.FaultParamsFor(&rc)

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	all := want["all"]

	faults := nocalert.SampleFaults(params, *nFaults, *seed, cycles[0])
	if len(cycles) > 1 {
		// Round-robin restamp, mirroring CampaignSpec.Universe: the set
		// of sampled locations stays independent of the cycle spread.
		for i := range faults {
			faults[i].Cycle = cycles[i%len(cycles)]
		}
	}
	fmt.Printf("fault population: %d single-bit locations (%d sites); injecting %d at cycle(s) %s\n",
		totalBits(params), len(params.EnumerateSites()), len(faults), *inject)

	// Telemetry: one registry feeds the progress line's ETA, the
	// /metricsz endpoint and the live faults/sec gauge. It stays nil —
	// zero cost — when neither consumer is active.
	var reg *nocalert.MetricsRegistry
	if *progress || *telAddr != "" {
		reg = nocalert.NewMetricsRegistry()
	}
	if *telAddr != "" {
		addr, err := serveTelemetry(*telAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry: http://%s/metricsz (OpenMetrics /metrics, pprof /debug/pprof/, expvar /debug/vars)\n", addr)
	}

	// Span tracing and the anomaly flight recorder: both are
	// result-invisible (the traced report is byte-identical) and both
	// work in shard mode too, so they are wired before the mode split.
	var tracer *nocalert.Tracer
	var spanFile *os.File
	if *spanOut != "" || *otlpOut != "" {
		topts := nocalert.TracerOptions{SampleEvery: *spanN, Retain: *otlpOut != "", Service: "faultcampaign", Metrics: reg}
		if *spanOut != "" {
			spanFile, err = os.Create(*spanOut)
			if err != nil {
				log.Fatal(err)
			}
			topts.Writer = spanFile
		}
		tracer = nocalert.NewTracer(topts)
	}
	var flightRec *nocalert.FlightRecorder
	var frFile *os.File
	if *frOut != "" {
		frFile, err = os.Create(*frOut)
		if err != nil {
			log.Fatal(err)
		}
		flightRec = nocalert.NewFlightRecorder(0, frFile)
	}
	// closeObs finishes the observability sinks after the campaign (or
	// shard) completes: flush and close the span stream, render the OTLP
	// dump from the retained spans, and dump the flight-recorder ring one
	// final time so the file explains the run even without anomalies.
	closeObs := func() {
		if flightRec != nil {
			flightRec.Dump("campaign end")
			if err := flightRec.Err(); err != nil {
				log.Fatalf("flight-recorder: %v", err)
			}
			if err := frFile.Close(); err != nil {
				log.Fatal(err)
			}
		}
		if tracer == nil {
			return
		}
		if err := tracer.Close(); err != nil {
			log.Fatalf("trace-spans: %v", err)
		}
		if spanFile != nil {
			if err := spanFile.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("span stream: %d spans (trace %s) written to %s\n", tracer.Spans(), tracer.TraceID(), *spanOut)
		}
		if *otlpOut != "" {
			f, err := os.Create(*otlpOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := tracer.WriteOTLP(f); err != nil {
				log.Fatalf("spans-otlp: %v", err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("OTLP span dump written to %s\n", *otlpOut)
		}
	}

	if *shardStr != "" {
		if *ckptPath == "" {
			log.Fatal("-shard requires -checkpoint FILE")
		}
		if *traceOut != "" || *jsonPath != "" || *benchOut != "" {
			log.Fatal("-shard is incompatible with -trace, -json and -benchjson; finalize the shards and use `faultcampaign merge`")
		}
		spec := nocalert.CampaignSpec{
			MeshW: mesh.W, MeshH: mesh.H, VCs: *vcs,
			InjectionRate: *rate,
			Seed:          *seed,
			InjectCycle:   cycles[0],
			PostInjectRun: *post,
			DrainDeadline: *drain,
			Epoch:         *epoch,
			HopLatency:    1,
			NumFaults:     *nFaults,
		}
		if len(cycles) > 1 {
			spec.InjectCycles = cycles
		}
		sro := nocalert.CampaignShardRunOptions{
			Workers:              *workers,
			DisableFastPath:      *noFast,
			DisableReconvergence: *noReconv,
			DisableFork:          *noFork,
			SnapshotInterval:     *snapInt,
			DisableFastForward:   *noFF,
			DisableSoA:           *noSoA,
			DisableFrontier:      *noFrontier,
			VerifyResumed:        *verifyN,
			Tracer:               tracer,
			FlightRecorder:       flightRec,
		}
		if err := runShardMode(ctx, spec, *shardStr, *ckptPath, sro, *progress, reg); err != nil {
			log.Fatal(err)
		}
		closeObs()
		return
	}
	if *ckptPath != "" {
		log.Fatal("-checkpoint requires -shard i/N (use -shard 0/1 to checkpoint a whole campaign)")
	}

	var onResult func(i int, res *nocalert.CampaignResult, wall time.Duration, exit nocalert.CampaignExitPath)
	var tw *nocalert.RunTraceWriter
	var traceFile *os.File
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		tw = nocalert.NewRunTraceWriter(traceFile)
		onResult = func(i int, res *nocalert.CampaignResult, wall time.Duration, exit nocalert.CampaignExitPath) {
			rec := nocalert.CampaignRunRecord(i, res, wall, exit == nocalert.CampaignExitFastPath)
			if err := tw.Write(&rec); err != nil {
				log.Fatalf("trace: %v", err)
			}
		}
	}

	var report func(done, total int)
	if *progress {
		report = progressPrinter(os.Stderr, "campaign", reg)
		report(0, len(faults)) // the 0% line must appear before the first run completes
	}
	start := time.Now()
	rep, err := nocalert.RunCampaign(nocalert.CampaignOptions{
		Sim:                  simCfg,
		InjectCycle:          cycles[0],
		PostInjectRun:        *post,
		DrainDeadline:        *drain,
		Forever:              nocalert.ForeverOptions{Epoch: *epoch, HopLatency: 1},
		Faults:               faults,
		Workers:              *workers,
		DisableFastPath:      *noFast,
		DisableReconvergence: *noReconv,
		DisableFork:          *noFork,
		SnapshotInterval:     *snapInt,
		DisableFastForward:   *noFF,
		DisableFrontier:      *noFrontier,
		Progress:             report,
		Metrics:              reg,
		OnResult:             onResult,
		Context:              ctx,
		Tracer:               tracer,
		FlightRecorder:       flightRec,
	})
	if err != nil {
		log.Fatal(err)
	}
	if tw != nil {
		if err := tw.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run trace: %d NDJSON records written to %s\n", tw.Records(), *traceOut)
	}
	closeObs()
	wall := time.Since(start)
	fmt.Printf("campaign: %d runs in %v; %d faults fired, %d caused network-correctness violations, %d fast-path exits, %d reconverged, %d forked (%d prefix cycles skipped, %d synthesized)\n\n",
		len(rep.Results), wall.Round(time.Millisecond), rep.FiredCount(), rep.MaliciousCount(), rep.FastPathHits, rep.ReconvergedHits,
		rep.ForkedRuns, rep.WarmstartCyclesSaved, rep.SynthesizedCycles)

	engine := engineName(*noSoA, *noFrontier || *noFast || *noReconv)
	if *benchOut != "" {
		if err := writeBenchRecord(*benchOut, *benchName, engine, *meshSpec, rep, *workers, wall); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("throughput record appended to %s\n\n", *benchOut)
	}
	if *benchBase != "" {
		if err := checkBenchBaseline(*benchBase, *benchName, engine, len(rep.Results), wall); err != nil {
			log.Fatal(err)
		}
	}

	printFigures(rep, *figs)
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("JSON results written to %s\n\n", *jsonPath)
	}
	if all || want["obs3"] {
		obs3(simCfg, params, cycles[0], *post, *drain, *epoch, *seed)
	}

	// Observation 1: zero false negatives.
	fn := rep.FalseNegatives(nocalert.MechanismNoCAlert)
	fmt.Printf("Observation 1 — NoCAlert false negatives: %d (ForEVeR: %d)\n",
		fn, rep.FalseNegatives(nocalert.MechanismForEVeR))
	if fn != 0 {
		os.Exit(1)
	}
}

// writeFig7CDF prints the full detection-delay CDF curves as plottable
// (delay, cumulative%) series.
func writeFig7CDF(rep *nocalert.CampaignReport) {
	milestones := []int64{0, 1, 2, 4, 9, 16, 28, 64, 128, 256, 512, 1024, 1500, 3000, 6000, 12000}
	t := stats.NewTable("Figure 7 — CDF series (cumulative % of true positives detected within N cycles)",
		"Delay (cycles)", "NoCAlert", "ForEVeR")
	na := rep.LatencyCDF(nocalert.MechanismNoCAlert)
	fv := rep.LatencyCDF(nocalert.MechanismForEVeR)
	for _, m := range milestones {
		t.AddRow(m, 100*na.AtOrBelow(m), 100*fv.AtOrBelow(m))
	}
	t.Render(os.Stdout)
}

// obs3 contrasts transient and permanent faults on the same arbiter
// grant signals: a transient "grant to nobody" is a one-cycle NOP
// (benign), a permanent one starves the port into a protocol deadlock
// (paper Observation 3).
func obs3(simCfg nocalert.SimConfig, params nocalert.FaultParams, inject, post, drain, epoch int64, seed uint64) {
	var tr, pm []nocalert.Fault
	for _, s := range params.EnumerateSites() {
		if s.Kind != nocalert.FaultSA1Gnt {
			continue
		}
		for b := 0; b < s.Width; b++ {
			tr = append(tr, nocalert.Fault{Site: s, Bit: b, Cycle: inject, Type: nocalert.TransientFault})
			pm = append(pm, nocalert.Fault{Site: s, Bit: b, Cycle: inject, Type: nocalert.PermanentFault})
		}
		if len(tr) >= 40 {
			break
		}
	}
	t := stats.NewTable("Observation 3 — invariance 5 under transient vs permanent faults (SA1 grant signals)",
		"Fault type", "Runs", "Detected%", "Malicious%", "Deadlocked%")
	for _, c := range []struct {
		name   string
		faults []nocalert.Fault
	}{{"transient", tr}, {"permanent", pm}} {
		rep, err := nocalert.RunCampaign(nocalert.CampaignOptions{
			Sim:           simCfg,
			InjectCycle:   inject,
			PostInjectRun: post,
			DrainDeadline: drain,
			Forever:       nocalert.ForeverOptions{Epoch: epoch, HopLatency: 1},
			Faults:        c.faults,
		})
		if err != nil {
			log.Fatal(err)
		}
		var det, mal, dead int
		for _, r := range rep.Results {
			if r.Detected {
				det++
			}
			if !r.Verdict.OK() {
				mal++
			}
			if r.Verdict.Unbounded {
				dead++
			}
		}
		n := int64(len(rep.Results))
		t.AddRow(c.name, n, stats.Pct(int64(det), n), stats.Pct(int64(mal), n), stats.Pct(int64(dead), n))
	}
	t.Render(os.Stdout)
	fmt.Println()
}

// serveTelemetry starts the live-profiling HTTP server: /metricsz
// (JSON registry snapshot; ?format=text for the plain rendering),
// /metrics (the OpenMetrics/Prometheus exposition standard scrapers
// consume) plus whatever the expvar and net/http/pprof imports
// registered on the default mux. It returns the bound address
// ("localhost:0" picks a port).
func serveTelemetry(addr string, reg *nocalert.MetricsRegistry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	http.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			reg.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", nocalert.OpenMetricsContentType)
		reg.WriteOpenMetrics(w)
	})
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			log.Printf("telemetry server: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}

// engineName names the sweep engine a run's flag combination resolves
// to, for tagging -benchjson rows: the frontier rides on the fast path
// and reconvergence machinery, so disabling either demotes the run to
// the plain per-cycle engine (soa or reference per the -no-soa flag).
func engineName(noSoA, frontierOff bool) string {
	switch {
	case frontierOff && noSoA:
		return "reference"
	case frontierOff:
		return "soa"
	default:
		return "frontier"
	}
}

// benchRecord is the throughput measurement -benchjson emits, so perf
// runs can be tracked across revisions. Engine names the sweep engine
// that produced the row (reference/soa/frontier); rows are only
// comparable within one engine, which is how checkBenchBaseline matches
// them.
type benchRecord struct {
	Name         string  `json:"name"`
	Engine       string  `json:"engine"`
	Timestamp    string  `json:"timestamp"`
	Mesh         string  `json:"mesh"`
	Faults       int     `json:"faults"`
	FastPathHits int     `json:"fast_path_hits"`
	Reconverged  int     `json:"reconverged"`
	Forked       int     `json:"forked"`
	Workers      int     `json:"workers"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	WallSeconds  float64 `json:"wall_seconds"`
	FaultsPerSec float64 `json:"faults_per_sec"`
}

// decodeBenchRecords parses a bench trajectory file: a JSON array of
// records, or the legacy shape of one or more concatenated JSON
// objects.
func decodeBenchRecords(data []byte, path string) ([]benchRecord, error) {
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, nil
	}
	var records []benchRecord
	if json.Unmarshal(data, &records) == nil {
		return records, nil
	}
	records = records[:0]
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		var r benchRecord
		if err := dec.Decode(&r); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("cannot parse %s: %v", path, err)
		}
		records = append(records, r)
	}
	return records, nil
}

// writeBenchRecord appends a timestamped throughput record to path, so
// repeated runs accumulate a perf trajectory. Existing files are kept:
// a JSON array is extended in place, and the legacy shape (one or more
// concatenated JSON objects) is absorbed into the array form.
func writeBenchRecord(path, name, engine, mesh string, rep *nocalert.CampaignReport, workers int, wall time.Duration) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := benchRecord{
		Name:         name,
		Engine:       engine,
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		Mesh:         mesh,
		Faults:       len(rep.Results),
		FastPathHits: rep.FastPathHits,
		Reconverged:  rep.ReconvergedHits,
		Forked:       rep.ForkedRuns,
		Workers:      workers,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		WallSeconds:  wall.Seconds(),
	}
	if s := wall.Seconds(); s > 0 {
		r.FaultsPerSec = float64(r.Faults) / s
	}
	var records []json.RawMessage
	if data, err := os.ReadFile(path); err == nil && len(bytes.TrimSpace(data)) > 0 {
		if json.Unmarshal(data, &records) != nil {
			records = records[:0]
			dec := json.NewDecoder(bytes.NewReader(data))
			for {
				var raw json.RawMessage
				if err := dec.Decode(&raw); err == io.EOF {
					break
				} else if err != nil {
					return fmt.Errorf("benchjson: cannot parse existing %s: %v", path, err)
				}
				records = append(records, raw)
			}
		}
	}
	raw, err := json.Marshal(&r)
	if err != nil {
		return err
	}
	records = append(records, raw)
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// checkBenchBaseline compares this run's throughput against the latest
// like-engined record named name in the baseline trajectory file and
// fails on a >30% regression — the `make benchcheck` gate. Rows from a
// different engine are never compared (a frontier run outpacing the soa
// baseline says nothing about either); legacy rows without an engine
// tag match any engine.
func checkBenchBaseline(path, name, engine string, faults int, wall time.Duration) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchbaseline: %v", err)
	}
	records, err := decodeBenchRecords(data, path)
	if err != nil {
		return fmt.Errorf("benchbaseline: %v", err)
	}
	var base *benchRecord
	for i := range records {
		if records[i].Name == name && (records[i].Engine == "" || records[i].Engine == engine) {
			base = &records[i]
		}
	}
	if base == nil {
		return fmt.Errorf("benchbaseline: %s has no record named %q for engine %q", path, name, engine)
	}
	got := 0.0
	if s := wall.Seconds(); s > 0 {
		got = float64(faults) / s
	}
	floor := 0.7 * base.FaultsPerSec
	fmt.Printf("benchcheck: %.1f faults/sec vs baseline %.1f (%s/%s, %s); floor %.1f\n",
		got, base.FaultsPerSec, base.Name, engine, base.Timestamp, floor)
	if got < floor {
		return fmt.Errorf("benchbaseline: throughput %.1f faults/sec is >30%% below the committed baseline %.1f (%s)",
			got, base.FaultsPerSec, path)
	}
	return nil
}

// parseInjectCycles parses the -inject flag: a single cycle or a comma
// list, each non-negative.
func parseInjectCycles(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || c < 0 {
			return nil, fmt.Errorf("invalid -inject %q: cycles must be non-negative integers", s)
		}
		out = append(out, c)
	}
	return out, nil
}

func totalBits(p nocalert.FaultParams) int {
	n := 0
	for _, s := range p.EnumerateSites() {
		n += s.Width
	}
	return n
}
