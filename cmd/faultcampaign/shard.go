package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"nocalert"
	"nocalert/internal/stats"
)

// parseShardFlag parses "-shard i/N" (0-based index).
func parseShardFlag(s string) (i, n int, err error) {
	if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("invalid -shard %q (want i/N, e.g. 0/4)", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("invalid -shard %d/%d (index must be 0-based and < N)", i, n)
	}
	return i, n, nil
}

// runShardMode executes one shard of the campaign against a resumable
// checkpoint file. Figures are not printed here — a shard is a partial
// campaign; fold the finalized checkpoints with `faultcampaign merge`.
// sro carries the execution knobs; its Progress, Metrics and Context
// fields are filled in here.
func runShardMode(ctx context.Context, spec nocalert.CampaignSpec, shard, path string, sro nocalert.CampaignShardRunOptions, progress bool, reg *nocalert.MetricsRegistry) error {
	idx, n, err := parseShardFlag(shard)
	if err != nil {
		return err
	}
	sh, err := nocalert.PlanCampaignShard(spec, idx, n)
	if err != nil {
		return err
	}
	m, err := sh.Manifest()
	if err != nil {
		return err
	}
	cp, completed, err := nocalert.ResumeCheckpoint(path, m)
	if err != nil {
		return err
	}
	defer cp.Close()
	fmt.Printf("shard %d/%d: fault indices [%d,%d) of the %d-fault universe; checkpoint %s holds %d recorded runs\n",
		idx, n, sh.Start, sh.End, len(spec.Universe()), path, len(completed))

	var report func(done, total int)
	if progress {
		report = progressPrinter(os.Stderr, fmt.Sprintf("shard %d/%d", idx, n), reg)
		sro.Progress = func(done, total int, _ nocalert.CampaignShardRunStats) {
			report(done, total)
		}
	}

	start := time.Now()
	sro.Metrics = reg
	sro.Context = ctx
	st, err := nocalert.RunCampaignShard(sh, cp, completed, sro)
	if progress && report != nil {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		return fmt.Errorf("shard %d/%d: %w (checkpoint %s keeps the %d completed runs)", idx, n, err, path, st.Resumed+st.Executed)
	}
	fmt.Printf("shard %d/%d: %d/%d runs in %v (%d resumed from checkpoint, %d of those re-executed and verified, %d newly executed, %d fast-path exits, %d reconverged, %d full-sim, %d forked)\n",
		idx, n, st.Resumed+st.Executed, st.Total, time.Since(start).Round(time.Millisecond),
		st.Resumed, st.Verified, st.Executed, st.FastPathHits, st.Reconverged, st.FullSim, st.Forked)
	if !st.Complete {
		return fmt.Errorf("shard %d/%d did not complete", idx, n)
	}
	if err := cp.Close(); err != nil {
		return err
	}
	fmt.Printf("checkpoint finalized: %s\n", path)
	return nil
}

// mergeMain is the `faultcampaign merge` subcommand: fold finalized
// shard checkpoints into the aggregated campaign report.
func mergeMain(args []string) {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	var (
		out        = fs.String("out", "", "write the merged aggregated report as JSON to this file")
		goldenPath = fs.String("golden", "", "compare the merged records against this committed fixture; exit non-zero on drift")
		figs       = fs.String("fig", "all", "figures to print: comma list of 6,7,8,9,obs5 or 'all' or 'none'")
		frPath     = fs.String("flight-recorder", "", "record per-shard manifest events to this file, with an anomaly dump on merge or golden divergence")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: faultcampaign merge [flags] shard0.ndjson shard1.ndjson ...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		os.Exit(2)
	}

	var fr *nocalert.FlightRecorder
	if *frPath != "" {
		f, err := os.Create(*frPath)
		if err != nil {
			log.Fatalf("merge: flight-recorder: %v", err)
		}
		defer f.Close()
		fr = nocalert.NewFlightRecorder(0, f)
		// The deferred final dump leaves the shard manifests on disk even
		// on the happy path, so a merge is explainable after the fact.
		defer fr.Dump("merge end")
	}

	var shards []*nocalert.CheckpointData
	for _, p := range paths {
		cd, err := nocalert.ReadCheckpointFile(p)
		if err != nil {
			fr.Anomaly("merge divergence", nocalert.FlightEvent{
				Kind: "shard_manifest", Detail: fmt.Sprintf("%s: %v", p, err)})
			log.Fatalf("merge: %s: %v", p, err)
		}
		fr.Record(nocalert.FlightEvent{
			Kind:   "shard_manifest",
			Run:    cd.Manifest.Shard,
			Detail: p,
			Attrs: map[string]any{
				"shards":  cd.Manifest.Shards,
				"start":   cd.Manifest.Start,
				"end":     cd.Manifest.End,
				"records": len(cd.Records),
			},
		})
		shards = append(shards, cd)
	}
	merged, err := nocalert.MergeCampaignShards(shards)
	if err != nil {
		fr.Anomaly("merge divergence", nocalert.FlightEvent{Kind: "shard_manifest", Detail: err.Error()})
		log.Fatalf("merge: %v", err)
	}
	fmt.Printf("merged %d shards: %d records, checksum %s\n\n",
		merged.Shards, len(merged.Records), nocalert.SumRunRecords(merged.Records))
	writeShardSummary(shards)

	rep, err := merged.Report()
	if err != nil {
		log.Fatalf("merge: %v", err)
	}
	printFigures(rep, *figs)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("JSON results written to %s\n\n", *out)
	}
	if *goldenPath != "" {
		data, err := os.ReadFile(*goldenPath)
		if err != nil {
			log.Fatalf("merge: golden fixture: %v", err)
		}
		golden, err := nocalert.ReadCampaignFixture(bytes.NewReader(data))
		if err != nil {
			log.Fatalf("merge: %s: %v", *goldenPath, err)
		}
		got := nocalert.NewCampaignFixture(merged.Spec, merged.Records)
		if diffs := golden.Diff(got); len(diffs) != 0 {
			for _, d := range diffs {
				fmt.Fprintln(os.Stderr, d)
			}
			fr.Anomaly("merge divergence from golden fixture", nocalert.FlightEvent{
				Kind: "shard_manifest", Detail: fmt.Sprintf("%s: %d diff(s), first: %s", *goldenPath, len(diffs), diffs[0])})
			log.Fatalf("merge: merged output diverges from golden fixture %s (%d diff(s))", *goldenPath, len(diffs))
		}
		fmt.Printf("golden check: merged records are bit-identical to %s\n", *goldenPath)
	}
}

// writeShardSummary prints the per-shard outcome breakdown and folds
// the per-shard accumulators (tallies, latency CDFs) into campaign
// totals with the mergeable reducers the merge gate relies on.
func writeShardSummary(shards []*nocalert.CheckpointData) {
	t := stats.NewTable("Per-shard summary (NoCAlert outcomes)",
		"Shard", "Faults", "TP", "FP", "TN", "FN", "Fast-path", "Wall (s)")
	var total stats.Tally
	var cdfs []*stats.CDF
	var totalFast int
	var totalWall float64
	for _, sd := range shards {
		var tl stats.Tally
		var lat []int64
		fast := 0
		wall := 0.0
		for i := range sd.Records {
			rec := &sd.Records[i]
			tl.Add(rec.Outcome, 1)
			if rec.Outcome == "TP" {
				lat = append(lat, rec.Latency)
			}
			if rec.FastPath {
				fast++
			}
			wall += rec.WallSeconds
		}
		t.AddRow(fmt.Sprintf("%d/%d [%d,%d)", sd.Manifest.Shard, sd.Manifest.Shards, sd.Manifest.Start, sd.Manifest.End),
			int64(len(sd.Records)), tl.Get("TP"), tl.Get("FP"), tl.Get("TN"), tl.Get("FN"),
			int64(fast), fmt.Sprintf("%.2f", wall))
		total.Merge(&tl)
		cdfs = append(cdfs, stats.NewCDF(lat))
		totalFast += fast
		totalWall += wall
	}
	t.AddRow("merged", total.Total(), total.Get("TP"), total.Get("FP"), total.Get("TN"), total.Get("FN"),
		int64(totalFast), fmt.Sprintf("%.2f", totalWall))
	t.Render(os.Stdout)
	if cdf := stats.MergeCDFs(cdfs...); cdf.N() > 0 {
		fmt.Printf("NoCAlert detection latency over %d true positives: p50=%d p95=%d max=%d cycles\n",
			cdf.N(), cdf.Percentile(0.50), cdf.Percentile(0.95), cdf.Max())
	}
	fmt.Println()
}

// printFigures renders the figure selection against a report (shared
// by the unsharded path and the merge subcommand).
func printFigures(rep *nocalert.CampaignReport, figs string) {
	want := map[string]bool{}
	for _, f := range strings.Split(figs, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	if want["none"] {
		return
	}
	all := want["all"]
	if all || want["6"] {
		rep.WriteFig6(os.Stdout)
		fmt.Println()
	}
	if all || want["7"] {
		rep.WriteFig7(os.Stdout)
		writeFig7CDF(rep)
		fmt.Println()
	}
	if all || want["8"] {
		rep.WriteFig8(os.Stdout)
		fmt.Println()
	}
	if all || want["9"] {
		rep.WriteFig9(os.Stdout)
		fmt.Println()
	}
	if all || want["obs5"] {
		rep.WriteObs5(os.Stdout)
		fmt.Println()
	}
	if all || want["recovery"] {
		rep.WriteRecoveryExposure(os.Stdout)
		fmt.Println()
	}
	if want["heatmap"] {
		rep.WriteHeatmaps(os.Stdout)
		fmt.Println()
	}
}
