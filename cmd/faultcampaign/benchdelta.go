package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
)

// benchDeltaMain implements `faultcampaign benchdelta`: a per-(name,
// engine) throughput comparison between two bench trajectory files —
// typically the committed BENCH_*.json baseline and the rows a fresh
// `make bench` just appended. The summary is what the CI bench job
// uploads as its bench-delta artifact, so a perf regression (or win)
// is readable from the job page without diffing JSON by hand.
//
// Usage:
//
//	faultcampaign benchdelta -baseline OLD.json -current NEW.json [-o OUT]
//
// Exit status is always zero: the regression *gate* is `-benchbaseline`
// (make benchcheck); benchdelta only reports.
func benchDeltaMain(args []string) {
	fs := flag.NewFlagSet("benchdelta", flag.ExitOnError)
	basePath := fs.String("baseline", "", "baseline trajectory file (e.g. the committed BENCH_8x8.json)")
	curPath := fs.String("current", "", "current trajectory file (after a fresh make bench run)")
	outPath := fs.String("o", "", "write the summary to this file instead of stdout")
	fs.Parse(args)
	if *basePath == "" || *curPath == "" {
		log.Fatal("benchdelta: -baseline and -current are required")
	}
	summary, err := benchDelta(*basePath, *curPath)
	if err != nil {
		log.Fatal(err)
	}
	if *outPath == "" {
		fmt.Print(summary)
		return
	}
	if err := os.WriteFile(*outPath, []byte(summary), 0o644); err != nil {
		log.Fatal(err)
	}
}

// benchDelta renders the latest-row comparison between two trajectory
// files, one line per (name, engine) pair present in either file.
func benchDelta(basePath, curPath string) (string, error) {
	base, err := latestByKey(basePath)
	if err != nil {
		return "", err
	}
	cur, err := latestByKey(curPath)
	if err != nil {
		return "", err
	}
	keys := make([]string, 0, len(base)+len(cur))
	seen := map[string]bool{}
	for k := range base {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range cur {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := fmt.Sprintf("bench delta: %s -> %s\n", basePath, curPath)
	for _, k := range keys {
		b, haveBase := base[k]
		c, haveCur := cur[k]
		switch {
		case !haveCur:
			out += fmt.Sprintf("  %-40s baseline %8.1f f/s, no current row\n", k, b.FaultsPerSec)
		case !haveBase:
			out += fmt.Sprintf("  %-40s current %8.1f f/s, no baseline row\n", k, c.FaultsPerSec)
		default:
			delta := 0.0
			if b.FaultsPerSec > 0 {
				delta = (c.FaultsPerSec - b.FaultsPerSec) / b.FaultsPerSec * 100
			}
			out += fmt.Sprintf("  %-40s %8.1f -> %8.1f f/s  (%+.1f%%)\n", k, b.FaultsPerSec, c.FaultsPerSec, delta)
		}
	}
	return out, nil
}

// latestByKey reads a trajectory file and keeps the last row per
// (name, engine) key — the trajectory is append-only, so the last row
// is the most recent measurement.
func latestByKey(path string) (map[string]benchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchdelta: %v", err)
	}
	records, err := decodeBenchRecords(data, path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]benchRecord, len(records))
	for _, r := range records {
		eng := r.Engine
		if eng == "" {
			eng = "untagged"
		}
		out[r.Name+"/"+eng] = r
	}
	return out, nil
}
