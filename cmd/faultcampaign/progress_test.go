package main

import (
	"math"
	"strings"
	"testing"

	"nocalert"
)

// TestProgressPrinterETAGuards pins the resumed-shard regression: the
// first progress callback of a resumed shard arrives with the
// checkpoint's completed runs already counted, at a moment when the
// faults/sec gauge holds no throughput measured by this process (zero,
// a stale positive value from an earlier campaign in the same process,
// or ±Inf). No ETA may be printed until a run completes locally.
func TestProgressPrinterETAGuards(t *testing.T) {
	t.Run("resumed baseline with stale gauge", func(t *testing.T) {
		reg := nocalert.NewMetricsRegistry()
		// A previous campaign in this process left a plausible rate
		// behind; it measured nothing about the resumed shard.
		reg.Gauge(nocalert.MetricCampaignFaultsPerSec).Set(42.0)
		var sb strings.Builder
		report := progressPrinter(&sb, "shard 0/2", reg)
		report(60, 96) // first callback: 60 resumed runs, zero local ones
		if out := sb.String(); strings.Contains(out, "ETA") {
			t.Fatalf("ETA printed before any local completion: %q", out)
		}
		// One locally completed run later the gauge is live again.
		reg.Gauge(nocalert.MetricCampaignFaultsPerSec).Set(20.0)
		report(65, 96)
		if out := sb.String(); !strings.Contains(out, "ETA") {
			t.Fatalf("ETA missing after local completions: %q", out)
		}
	})

	t.Run("degenerate rates never print", func(t *testing.T) {
		for _, fps := range []float64{0, -1, math.NaN(), math.Inf(1)} {
			reg := nocalert.NewMetricsRegistry()
			reg.Gauge(nocalert.MetricCampaignFaultsPerSec).Set(fps)
			var sb strings.Builder
			report := progressPrinter(&sb, "campaign", reg)
			report(0, 96)
			report(10, 96)
			if out := sb.String(); strings.Contains(out, "ETA") {
				t.Fatalf("fps=%v: nonsense ETA printed: %q", fps, out)
			}
		}
	})

	t.Run("completion line has no ETA and ends the line", func(t *testing.T) {
		reg := nocalert.NewMetricsRegistry()
		reg.Gauge(nocalert.MetricCampaignFaultsPerSec).Set(30)
		var sb strings.Builder
		report := progressPrinter(&sb, "campaign", reg)
		report(0, 96)
		report(96, 96)
		out := sb.String()
		if strings.Contains(out, "ETA") {
			t.Fatalf("ETA printed at completion: %q", out)
		}
		if !strings.HasSuffix(out, "\n") {
			t.Fatalf("completion did not end the progress line: %q", out)
		}
		if !strings.Contains(out, "96/96 runs (100%)") {
			t.Fatalf("final line missing: %q", out)
		}
	})

	t.Run("nil registry prints plain progress", func(t *testing.T) {
		var sb strings.Builder
		report := progressPrinter(&sb, "campaign", nil)
		report(0, 10)
		report(5, 10)
		out := sb.String()
		if !strings.Contains(out, "5/10 runs (50%)") || strings.Contains(out, "ETA") {
			t.Fatalf("unexpected output: %q", out)
		}
	})
}
