package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nocalert"
	"nocalert/internal/campaign"
	"nocalert/internal/coordinator"
	"nocalert/internal/metrics"
	"nocalert/internal/obs"
)

// dispatchMain is the `faultcampaign dispatch` subcommand: run one
// campaign across a fleet of nocalertd workers and print the same
// figures (and pass the same golden gate) a single-machine run would —
// the merged report is byte-identical or the merge gate refuses.
func dispatchMain(args []string) {
	fs := flag.NewFlagSet("dispatch", flag.ExitOnError)
	var (
		workersFlag = fs.String("workers", "", "comma-separated nocalertd base URLs (e.g. http://a:8377,http://b:8377); required")
		token       = fs.String("token", "", "bearer token presented to every worker (when the fleet requires auth)")
		shards      = fs.Int("shards", 0, "shards to plan across the fleet (0 = one per worker)")
		inflight    = fs.Int("max-inflight", 2, "concurrently dispatched shards per worker")
		lease       = fs.Duration("lease", 30*time.Second, "requeue a shard after this long without a progress event from its worker")
		attempts    = fs.Int("max-attempts", 6, "dispatch attempts per shard before the run fails")

		meshSpec = fs.String("mesh", "8x8", "mesh dimensions WxH")
		vcs      = fs.Int("vcs", 4, "virtual channels per port")
		rate     = fs.Float64("rate", 0.05, "injection rate (flits/node/cycle)")
		inject   = fs.String("inject", "0", "fault-injection cycle, or a comma list spread round-robin over the sample")
		nFaults  = fs.Int("faults", 1000, "fault sample size (0 = all locations)")
		seed     = fs.Uint64("seed", 1, "random seed")
		epoch    = fs.Int64("epoch", 1500, "ForEVeR epoch length in cycles")
		post     = fs.Int64("post", 500, "cycles of continued injection after the fault")
		drain    = fs.Int64("drain", 10000, "drain deadline in cycles")

		figs       = fs.String("fig", "all", "figures to print: comma list of 6,7,8,9,obs5 or 'all' or 'none'")
		out        = fs.String("out", "", "write the merged aggregated report as JSON to this file")
		goldenPath = fs.String("golden", "", "compare the merged records against this committed fixture; exit non-zero on drift")
		progress   = fs.Bool("progress", true, "print fleet progress to stderr")
		verbose    = fs.Bool("v", false, "log every dispatch decision to stderr")
		spanOut    = fs.String("trace-spans", "", "stream coordinator/dispatch spans as NDJSON to this file")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: faultcampaign dispatch -workers URL,URL,... [flags]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	fleet := strings.Split(*workersFlag, ",")
	if *workersFlag == "" || len(fleet) == 0 {
		fs.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	mesh, err := nocalert.ParseMesh(*meshSpec)
	if err != nil {
		log.Fatal(err)
	}
	cycles, err := parseInjectCycles(*inject)
	if err != nil {
		log.Fatal(err)
	}
	spec := campaign.Spec{
		MeshW: mesh.W, MeshH: mesh.H, VCs: *vcs,
		InjectionRate: *rate,
		Seed:          *seed,
		InjectCycle:   cycles[0],
		PostInjectRun: *post,
		DrainDeadline: *drain,
		Epoch:         *epoch,
		HopLatency:    1,
		NumFaults:     *nFaults,
	}
	if len(cycles) > 1 {
		spec.InjectCycles = cycles
	}

	reg := metrics.NewRegistry()
	var tracer *obs.Tracer
	if *spanOut != "" {
		f, err := os.Create(*spanOut)
		if err != nil {
			log.Fatalf("dispatch: trace-spans: %v", err)
		}
		defer f.Close()
		tracer = obs.New(obs.Options{Writer: f, Service: "faultcampaign-dispatch", Metrics: reg})
		defer tracer.Close()
	}

	cfg := coordinator.Config{
		Workers:      fleet,
		Token:        *token,
		Shards:       *shards,
		MaxInFlight:  *inflight,
		LeaseTimeout: *lease,
		MaxAttempts:  *attempts,
		Metrics:      reg,
		Tracer:       tracer,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	if *progress {
		last := time.Now()
		cfg.Progress = func(p coordinator.ProgressUpdate) {
			// Throttle to ~5 lines/sec; terminal shard completions
			// always print.
			if time.Since(last) < 200*time.Millisecond && p.ShardsDone < p.Shards {
				return
			}
			last = time.Now()
			eta := "--"
			if p.ETAOK {
				eta = p.ETA.Round(time.Second).String()
			}
			fmt.Fprintf(os.Stderr, "\rfleet: %d/%d runs, %d/%d shards, %.1f faults/sec, ETA %s   ",
				p.Done, p.Total, p.ShardsDone, p.Shards, p.Rate, eta)
		}
	}

	fmt.Printf("dispatching %d shards over %d workers\n", func() int {
		if *shards > 0 {
			return *shards
		}
		return len(fleet)
	}(), len(fleet))

	start := time.Now()
	res, err := coordinator.Run(ctx, spec, cfg)
	if *progress {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		log.Fatalf("dispatch: %v", err)
	}
	elapsed := time.Since(start)

	st := res.Stats
	fmt.Printf("fleet campaign: %d runs in %v (%.1f faults/sec aggregate); %d shards, %d requeued, %d retries, %d workers died\n",
		len(res.Merged.Records), elapsed.Round(time.Millisecond),
		float64(len(res.Merged.Records))/elapsed.Seconds(),
		st.Shards, st.Requeued, st.Retries, st.WorkersDead)
	for i, w := range st.PerWorker {
		note := ""
		if w.Dead {
			note = " (died)"
		}
		fmt.Printf("  worker %d %s: %d shards%s\n", i, w.URL, w.ShardsDone, note)
	}

	printFigures(res.Report, *figs)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Report.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("JSON results written to %s\n\n", *out)
	}
	if *goldenPath != "" {
		data, err := os.ReadFile(*goldenPath)
		if err != nil {
			log.Fatalf("dispatch: golden fixture: %v", err)
		}
		golden, err := campaign.ReadFixture(bytes.NewReader(data))
		if err != nil {
			log.Fatalf("dispatch: %s: %v", *goldenPath, err)
		}
		got := campaign.NewFixture(res.Merged.Spec, res.Merged.Records)
		if diffs := golden.Diff(got); len(diffs) != 0 {
			for _, d := range diffs {
				fmt.Fprintln(os.Stderr, d)
			}
			log.Fatalf("dispatch: merged output diverges from golden fixture %s (%d diff(s))", *goldenPath, len(diffs))
		}
		fmt.Printf("golden check: merged records are bit-identical to %s\n", *goldenPath)
	}
}
