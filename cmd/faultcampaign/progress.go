package main

import (
	"fmt"
	"io"
	"time"

	"nocalert"
)

// progressPrinter returns the Progress callback both campaign modes
// share: a \r-rewritten status line emitted on every new 5% bucket
// (and at completion), with a live faults/sec + ETA suffix once a
// trustworthy throughput sample exists.
//
// The ETA is deliberately withheld until this process has completed at
// least one run beyond the first callback's baseline. On a resumed
// shard the first callback already carries the checkpoint's completed
// runs, and the throughput gauge at that instant is whatever the
// registry last held — zero, a stale value from an earlier campaign in
// the same process, or +Inf from a microsecond fast-path burst — so an
// ETA printed before a local completion divides the remaining work by
// a rate that measured nothing. nocalert.CampaignETA screens the
// degenerate rates; the baseline check screens the stale ones.
func progressPrinter(w io.Writer, label string, reg *nocalert.MetricsRegistry) func(done, total int) {
	lastBucket := -1
	baseline := -1 // done at the first callback: resumed runs, not local progress
	return func(done, total int) {
		if baseline < 0 {
			baseline = done
		}
		pct := 0
		if total > 0 {
			pct = done * 100 / total
		}
		bucket := pct / 5
		if bucket <= lastBucket && done != total {
			return
		}
		lastBucket = bucket
		line := fmt.Sprintf("\r%s: %d/%d runs (%d%%)", label, done, total, pct)
		if done > baseline && done < total && reg != nil {
			fps := reg.Gauge(nocalert.MetricCampaignFaultsPerSec).Value()
			if eta, ok := nocalert.CampaignETA(total-done, fps); ok {
				line += fmt.Sprintf(" | %.1f faults/sec, ETA %s", fps, eta.Round(time.Second))
			}
		}
		fmt.Fprint(w, line)
		if done == total {
			fmt.Fprintln(w)
		}
	}
}
