// Command omlint validates an OpenMetrics text exposition — the format
// nocalertd and `faultcampaign -telemetry` serve at /metrics — against
// the subset of the OpenMetrics 1.0 spec the exporter emits: metric
// name and label syntax, family/TYPE interleaving, sample-suffix
// membership per type, cumulative histogram buckets with a +Inf bound,
// counter monotonicity and the terminal `# EOF` marker.
//
// Usage:
//
//	curl -s http://localhost:8377/metrics | omlint
//	omlint scrape.txt
//
// Exit status 0 when the exposition is clean; 1 with the first
// violation on stderr otherwise. CI scrapes a live daemon through this
// to keep /metrics consumable by standard Prometheus scrapers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nocalert/internal/metrics"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: omlint [file]  (reads stdin without a file argument)")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "omlint: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	st, err := metrics.ValidateOpenMetrics(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "omlint: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("omlint: %s: OK (%d metric families, %d samples)\n", name, st.Families, st.Samples)
}
