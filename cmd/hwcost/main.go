// Command hwcost evaluates the hardware cost of the NoCAlert checker
// fabric with the analytical gate-equivalent model that stands in for
// the paper's 65 nm synthesis flow (§5.5): Figure 10's area-overhead
// sweep over VC counts, the power overhead, and the critical-path
// impact.
//
// Usage:
//
//	hwcost
//	hwcost -vcs 2,4,6,8 -width 128 -depth 5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"nocalert"
	"nocalert/internal/hwmodel"
	"nocalert/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hwcost: ")
	var (
		vcsList = flag.String("vcs", "2,4,6,8", "comma-separated VC counts to sweep")
		width   = flag.Int("width", 128, "flit width in bits")
		depth   = flag.Int("depth", 5, "buffer depth in flits")
		ports   = flag.Int("ports", 5, "router radix")
	)
	flag.Parse()

	var vcs []int
	for _, s := range strings.Split(*vcsList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			log.Fatalf("invalid VC count %q", s)
		}
		vcs = append(vcs, v)
	}

	t := stats.NewTable("Figure 10 — area overhead vs VCs per port (gate equivalents)",
		"VCs", "Router GE", "NoCAlert GE", "NoCAlert %", "DMR-CL GE", "DMR-CL %")
	sumNA, sumDMR := 0.0, 0.0
	for _, v := range vcs {
		p := nocalert.HWParams{Ports: *ports, VCs: v, BufDepth: *depth, FlitWidth: *width}
		if err := p.Validate(); err != nil {
			log.Fatal(err)
		}
		o := nocalert.AreaOverhead(p)
		t.AddRow(v, fmt.Sprintf("%.0f", o.RouterGE), fmt.Sprintf("%.0f", o.CheckerGE),
			o.NoCAlertPct, fmt.Sprintf("%.0f", o.DMRGE), o.DMRPct)
		sumNA += o.NoCAlertPct
		sumDMR += o.DMRPct
	}
	t.Render(os.Stdout)
	fmt.Printf("average overhead: NoCAlert %.2f%%, DMR-CL %.2f%% (paper: ~3%% vs 5.41–31.32%%)\n\n",
		sumNA/float64(len(vcs)), sumDMR/float64(len(vcs)))

	pt := stats.NewTable("§5.5 — power and critical-path overhead",
		"VCs", "Power %", "Critical path %", "Checker area breakdown (GE)")
	for _, v := range vcs {
		p := nocalert.HWParams{Ports: *ports, VCs: v, BufDepth: *depth, FlitWidth: *width}
		_, _, pw := nocalert.PowerOverhead(p)
		_, _, cp := nocalert.CriticalPathOverhead(p)
		chk := hwmodel.Checkers(p)
		pt.AddRow(v, pw, cp,
			fmt.Sprintf("rc=%.0f arb=%.0f xbar=%.0f state=%.0f port=%.0f e2e=%.0f",
				chk.RCCheckers, chk.ArbiterCheckers, chk.XbarCheckers,
				chk.StateCheckers, chk.PortCheckers, chk.E2ECheckers))
	}
	pt.Render(os.Stdout)
	fmt.Println("\npaper reference: power 0.3–1.2% (avg 0.7%), critical path <=3% (avg ~1%)")
}
