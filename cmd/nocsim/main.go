// Command nocsim runs a fault-free traffic simulation on the mesh NoC
// and reports latency/throughput, optionally with the NoCAlert engine
// attached to demonstrate its silence during healthy operation.
//
// Usage:
//
//	nocsim -mesh 8x8 -vcs 4 -rate 0.10 -pattern uniform -cycles 20000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nocalert"
	"nocalert/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocsim: ")
	var (
		meshSpec = flag.String("mesh", "8x8", "mesh dimensions WxH")
		vcs      = flag.Int("vcs", 4, "virtual channels per port")
		depth    = flag.Int("depth", 5, "buffer depth in flits")
		rate     = flag.Float64("rate", 0.10, "injection rate (flits/node/cycle)")
		pattern  = flag.String("pattern", "uniform", "traffic pattern")
		alg      = flag.String("routing", "xy", "routing algorithm (xy, westfirst, adaptive)")
		cycles   = flag.Int64("cycles", 20000, "cycles to simulate before draining")
		seed     = flag.Uint64("seed", 1, "random seed")
		monitor  = flag.Bool("monitor", true, "attach the NoCAlert engine and report assertions")
		sweep    = flag.Bool("sweep", false, "sweep injection rates and print the load-latency curve instead")
	)
	flag.Parse()

	mesh, err := nocalert.ParseMesh(*meshSpec)
	if err != nil {
		log.Fatal(err)
	}
	pat, err := nocalert.NewTrafficPattern(*pattern)
	if err != nil {
		log.Fatal(err)
	}
	algo, err := nocalert.NewRoutingAlgorithm(*alg)
	if err != nil {
		log.Fatal(err)
	}
	rc := nocalert.DefaultRouterConfig(mesh)
	rc.VCs = *vcs
	rc.BufDepth = *depth
	rc.Alg = algo

	if *sweep {
		runSweep(mesh, rc, pat, *cycles, *seed)
		return
	}

	n, err := nocalert.NewNetwork(nocalert.SimConfig{
		Router:        rc,
		Pattern:       pat,
		InjectionRate: *rate,
		Seed:          *seed,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	var eng *nocalert.Engine
	if *monitor {
		eng = nocalert.NewEngine(n.RouterConfig(), nocalert.EngineOptions{KeepViolations: true, MaxViolations: 10})
		n.AttachMonitor(eng)
	}

	n.Run(*cycles)
	drained := n.Drain(20 * *cycles)

	// Packet latency: tail-flit ejection cycle minus injection cycle.
	var latencies []int64
	for _, e := range n.Ejections() {
		if e.Flit.Kind.IsTail() {
			latencies = append(latencies, e.Cycle-e.Flit.InjectedAt)
		}
	}
	cdf := stats.NewCDF(latencies)

	t := stats.NewTable(fmt.Sprintf("nocsim — %s mesh, %d VCs, %s traffic at %.3f flits/node/cycle",
		*meshSpec, *vcs, *pattern, *rate),
		"Metric", "Value")
	t.AddRow("cycles simulated", n.Cycle())
	t.AddRow("packets offered", n.PacketsOffered())
	t.AddRow("flits injected", n.FlitsInjected())
	t.AddRow("flits ejected", n.FlitsEjected())
	t.AddRow("drained", drained)
	t.AddRow("throughput (flits/node/cycle)",
		fmt.Sprintf("%.4f", float64(n.FlitsEjected())/float64(n.Cycle())/float64(mesh.Nodes())))
	if cdf.N() > 0 {
		t.AddRow("avg packet latency (cycles)", fmt.Sprintf("%.1f", cdf.Mean()))
		t.AddRow("p50 packet latency", cdf.Percentile(0.50))
		t.AddRow("p99 packet latency", cdf.Percentile(0.99))
		t.AddRow("max packet latency", cdf.Max())
	}
	if eng != nil {
		t.AddRow("NoCAlert assertions (must be 0)", len(eng.Violations()))
	}
	t.Render(os.Stdout)
	if eng != nil && eng.Detected() {
		log.Fatalf("checker assertions in a fault-free run: %v", eng.Violations())
	}
}

// runSweep prints the classic load-latency curve: average packet
// latency as the offered load climbs toward saturation. The knee of
// the curve is the network's saturation throughput — the first sanity
// check of any NoC simulator.
func runSweep(mesh nocalert.Mesh, rc nocalert.RouterConfig, pat nocalert.TrafficPattern, cycles int64, seed uint64) {
	t := stats.NewTable(
		fmt.Sprintf("load-latency sweep — %dx%d mesh, %d VCs, %s traffic",
			mesh.W, mesh.H, rc.VCs, pat.Name()),
		"offered (flits/node/cyc)", "delivered", "avg latency", "p99 latency", "drained")
	for _, rate := range []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45} {
		n := nocalert.MustNewNetwork(nocalert.SimConfig{
			Router: rc, Pattern: pat, InjectionRate: rate, Seed: seed,
		}, nil)
		n.Run(cycles)
		drained := n.Drain(20 * cycles)
		var lat []int64
		for _, e := range n.Ejections() {
			if e.Flit.Kind.IsTail() {
				lat = append(lat, e.Cycle-e.Flit.InjectedAt)
			}
		}
		cdf := stats.NewCDF(lat)
		delivered := float64(n.FlitsEjected()) / float64(cycles) / float64(mesh.Nodes())
		if cdf.N() == 0 {
			t.AddRow(rate, delivered, "-", "-", drained)
			continue
		}
		t.AddRow(rate, fmt.Sprintf("%.4f", delivered),
			fmt.Sprintf("%.1f", cdf.Mean()), cdf.Percentile(0.99), drained)
	}
	t.Render(os.Stdout)
}
