package nocalert_test

import (
	"fmt"

	"nocalert"
)

// ExampleNewEngine shows the core loop: a healthy network keeps the
// checkers silent; a single-bit upset raises a same-cycle assertion.
func ExampleNewEngine() {
	mesh := nocalert.NewMesh(4, 4)
	cfg := nocalert.SimConfig{
		Router:        nocalert.DefaultRouterConfig(mesh),
		InjectionRate: 0.1,
		Seed:          7,
	}

	healthy := nocalert.MustNewNetwork(cfg, nil)
	eng := nocalert.NewEngine(healthy.RouterConfig(), nocalert.EngineOptions{})
	healthy.AttachMonitor(eng)
	healthy.Run(2000)
	fmt.Println("healthy assertions:", eng.Detected())

	f := nocalert.Fault{
		Site: nocalert.FaultSite{
			Router: 5, Kind: nocalert.FaultSA1Gnt,
			Port: int(nocalert.Local), VC: -1, Width: 4,
		},
		Bit: 0, Cycle: 500, Type: nocalert.PermanentFault,
	}
	faulty := nocalert.MustNewNetwork(cfg, nocalert.NewFaultPlane(f))
	engF := nocalert.NewEngine(faulty.RouterConfig(), nocalert.EngineOptions{})
	faulty.AttachMonitor(engF)
	faulty.Run(2000)
	fmt.Println("faulty detected:", engF.Detected())
	fmt.Println("latency:", engF.FirstDetection()-f.Cycle)
	// Output:
	// healthy assertions: false
	// faulty detected: true
	// latency: 0
}

// ExampleAreaOverhead regenerates one Figure 10 point.
func ExampleAreaOverhead() {
	o := nocalert.AreaOverhead(nocalert.HWDefault(4))
	fmt.Printf("NoCAlert %.2f%% vs DMR-CL %.2f%%\n", o.NoCAlertPct, o.DMRPct)
	// Output:
	// NoCAlert 1.83% vs DMR-CL 9.97%
}

// ExampleMesh demonstrates the coordinate convention (paper Figure
// 2a): row-major node ids from the bottom-left corner.
func ExampleMesh() {
	m := nocalert.NewMesh(4, 4)
	fmt.Println("node at (1,2):", m.NodeAt(1, 2))
	n, _ := m.Neighbor(m.NodeAt(1, 2), nocalert.East)
	fmt.Println("east neighbor:", n)
	fmt.Println("hops (0,0)->(3,3):", m.HopDistance(m.NodeAt(0, 0), m.NodeAt(3, 3)))
	// Output:
	// node at (1,2): 9
	// east neighbor: 10
	// hops (0,0)->(3,3): 6
}
