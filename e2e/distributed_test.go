//go:build e2e

package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
	"time"
)

// The distributed gate runs the golden 4×4 campaign (the spec behind
// testdata/golden_4x4_seed3.json) across a 3-worker fleet.
var goldenArgs = []string{
	"-mesh", "4x4", "-vcs", "4", "-rate", "0.12", "-seed", "3",
	"-inject", "300", "-post", "400", "-drain", "5000", "-epoch", "400",
	"-faults", "96",
}

// fleetJobs lists a worker's jobs through the (unauthenticated) read
// API; reads stay open on an authed fleet.
func fleetJobs(t *testing.T, base string) []view {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		return nil // worker may already be dead
	}
	defer resp.Body.Close()
	var body struct {
		Jobs []view `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil
	}
	return body.Jobs
}

// TestDistributedCampaignSurvivesWorkerKill is the CI distributed
// gate: a coordinator dispatches the golden campaign to a 3-worker
// authed fleet, one worker is SIGKILLed mid-flight, and the merged
// report must still be byte-identical to the unsharded CLI run (and
// bit-identical to the committed golden fixture), with the forfeited
// shards visibly requeued onto survivors.
func TestDistributedCampaignSurvivesWorkerKill(t *testing.T) {
	daemonBin, cliBin := binaries(t)

	// Reference: the unsharded single-machine CLI run.
	cliJSON := filepath.Join(t.TempDir(), "cli.json")
	cli := exec.Command(cliBin, append(append([]string{}, goldenArgs...),
		"-progress=false", "-fig", "none", "-json", cliJSON)...)
	if out, err := cli.CombinedOutput(); err != nil {
		t.Fatalf("faultcampaign: %v\n%s", err, out)
	}
	want, err := os.ReadFile(cliJSON)
	if err != nil {
		t.Fatal(err)
	}

	// A 3-worker fleet with bearer-token auth on.
	const authFlag = "ci=tok-e2e,ops=tok-ops"
	workers := make([]*daemon, 3)
	for i := range workers {
		workers[i] = startDaemon(t, daemonBin, t.TempDir(),
			"-workers", "1", "-auth", authFlag)
	}
	victim := workers[1]

	// SIGKILL the victim the moment it is running a shard, so at least
	// its in-flight work must be requeued onto the survivors.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(2 * time.Minute)
		for time.Now().Before(deadline) {
			for _, v := range fleetJobs(t, victim.base) {
				if v.Status == "running" {
					victim.cmd.Process.Kill()
					victim.cmd.Wait()
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	outJSON := filepath.Join(t.TempDir(), "merged.json")
	spans := filepath.Join(t.TempDir(), "spans.ndjson")
	args := append([]string{"dispatch",
		"-workers", workers[0].base + "," + workers[1].base + "," + workers[2].base,
		"-token", "tok-e2e",
		"-shards", "12",
		"-max-attempts", "12",
		"-progress=false", "-v",
		"-fig", "none",
		"-out", outJSON,
		"-trace-spans", spans,
		"-golden", filepath.Join("..", "testdata", "golden_4x4_seed3.json"),
	}, goldenArgs...)
	dispatch := exec.Command(cliBin, args...)
	var stdout, stderr bytes.Buffer
	dispatch.Stdout = io.MultiWriter(&stdout)
	dispatch.Stderr = &stderr
	if err := dispatch.Run(); err != nil {
		t.Fatalf("dispatch: %v\nstdout:\n%s\nstderr:\n%s", err, &stdout, &stderr)
	}
	<-killed

	// Byte-identity: merged fleet report == unsharded CLI report.
	got, err := os.ReadFile(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed report differs from single-machine CLI output (%d vs %d bytes)", len(got), len(want))
	}
	if !bytes.Contains(stdout.Bytes(), []byte("golden check: merged records are bit-identical")) {
		t.Fatalf("golden fixture gate did not pass; stdout:\n%s", &stdout)
	}

	// The kill must have been visible: the summary line reports the
	// requeues and the dead worker.
	sum := regexp.MustCompile(`(\d+) shards, (\d+) requeued, (\d+) retries, (\d+) workers died`).
		FindSubmatch(stdout.Bytes())
	if sum == nil {
		t.Fatalf("no fleet summary line; stdout:\n%s", &stdout)
	}
	requeued, _ := strconv.Atoi(string(sum[2]))
	died, _ := strconv.Atoi(string(sum[4]))
	if requeued < 1 {
		t.Fatalf("worker was SIGKILLed mid-campaign but nothing was requeued\nstdout:\n%s\nstderr:\n%s", &stdout, &stderr)
	}
	if died != 1 {
		t.Fatalf("workers died = %d, want exactly the victim\nstdout:\n%s", died, &stdout)
	}
	if !bytes.Contains(stdout.Bytes(), []byte("(died)")) {
		t.Fatalf("per-worker table does not mark the victim dead:\n%s", &stdout)
	}

	// The requeue is also on the span stream: at least one dispatch
	// span ended requeued, and the campaign still completed every
	// shard (so the requeued shard's retry ran on a survivor).
	spanData, err := os.ReadFile(spans)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(spanData, []byte(`"outcome":"requeued"`)) {
		t.Fatalf("no dispatch span with outcome=requeued in %s", spans)
	}
	if !bytes.Contains(spanData, []byte(`"outcome":"done"`)) {
		t.Fatalf("no completed dispatch spans in %s", spans)
	}

	// Survivors absorbed the work: their per-worker tallies cover all
	// 12 shards minus whatever the victim finished before dying.
	table := regexp.MustCompile(`worker \d+ \S+: (\d+) shards`).FindAllSubmatch(stdout.Bytes(), -1)
	if len(table) != 3 {
		t.Fatalf("per-worker table incomplete:\n%s", &stdout)
	}
	total := 0
	for _, row := range table {
		n, _ := strconv.Atoi(string(row[1]))
		total += n
	}
	if total != 12 {
		t.Fatalf("per-worker shard tallies sum to %d, want 12:\n%s", total, &stdout)
	}
	fmt.Printf("distributed gate: %d requeued, survivors absorbed the victim's shards\n", requeued)
}

// TestDispatchRejectsBadToken checks the fleet's auth actually bites
// end to end: a dispatch with the wrong bearer token fails fast with
// the 401 surfaced, and no jobs land on the worker.
func TestDispatchRejectsBadToken(t *testing.T) {
	daemonBin, cliBin := binaries(t)
	w := startDaemon(t, daemonBin, t.TempDir(), "-auth", "ci=tok-e2e")

	args := append([]string{"dispatch",
		"-workers", w.base, "-token", "tok-wrong", "-shards", "2",
		"-progress=false", "-fig", "none",
	}, goldenArgs...)
	out, err := exec.Command(cliBin, args...).CombinedOutput()
	if err == nil {
		t.Fatalf("dispatch with a bad token succeeded:\n%s", out)
	}
	if !bytes.Contains(out, []byte("401")) && !bytes.Contains(out, []byte("unknown bearer token")) {
		t.Fatalf("failure does not surface the auth rejection:\n%s", out)
	}
	if jobs := fleetJobs(t, w.base); len(jobs) != 0 {
		t.Fatalf("unauthenticated dispatch still created %d jobs", len(jobs))
	}
}
