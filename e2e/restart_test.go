//go:build e2e

package e2e

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// The campaign under test: the golden 4×4 workload with a doubled
// fault sample, so a single-worker daemon is mid-campaign long enough
// to be killed at a meaningful point.
const (
	specJSON = `{"mesh_w":4,"mesh_h":4,"vcs":4,"injection_rate":0.12,"seed":3,` +
		`"inject_cycle":300,"post_inject_run":400,"drain_deadline":5000,` +
		`"epoch":400,"hop_latency":1,"num_faults":192}`
	specFaults = 192
)

// cliArgs is the faultcampaign invocation equivalent to specJSON.
var cliArgs = []string{
	"-mesh", "4x4", "-vcs", "4", "-rate", "0.12", "-seed", "3",
	"-inject", "300", "-post", "400", "-drain", "5000", "-epoch", "400",
	"-faults", "192",
}

var (
	buildOnce  sync.Once
	buildErr   error
	daemonBin  string
	climateBin string // faultcampaign binary (CLI cross-check)
)

// binaries builds nocalertd and faultcampaign once per test process.
func binaries(t *testing.T) (daemon, cli string) {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "nocalert-e2e-bin")
		if err != nil {
			buildErr = err
			return
		}
		daemonBin = filepath.Join(dir, "nocalertd")
		climateBin = filepath.Join(dir, "faultcampaign")
		for bin, pkg := range map[string]string{
			daemonBin:  "./cmd/nocalertd",
			climateBin: "./cmd/faultcampaign",
		} {
			cmd := exec.Command("go", "build", "-o", bin, pkg)
			cmd.Dir = ".." // repo root
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return daemonBin, climateBin
}

// daemon is one running nocalertd process.
type daemon struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string // http://host:port
	logs *bytes.Buffer
}

// startDaemon launches nocalertd on a fresh port against dir and waits
// for its listen line.
func startDaemon(t *testing.T, bin, dir string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-dir", dir}, extra...)
	cmd := exec.Command(bin, args...)
	logs := new(bytes.Buffer)
	cmd.Stderr = logs
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The first stdout line is "nocalertd: listening on ADDR (state dir D)".
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(logs, line)
		if _, rest, ok := strings.Cut(line, "listening on "); ok {
			addr, _, _ = strings.Cut(rest, " (")
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("daemon never printed its listen line; output:\n%s", logs)
	}
	go io.Copy(logs, stdout) // keep draining so the daemon never blocks on stdout
	d := &daemon{t: t, cmd: cmd, base: "http://" + addr, logs: logs}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	return d
}

// kill SIGKILLs the daemon — no drain, no goodbye.
func (d *daemon) kill() {
	d.t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		d.t.Fatalf("kill: %v", err)
	}
	d.cmd.Wait()
}

// view mirrors the fields of server.View the suite asserts on.
type view struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Done     int    `json:"done"`
	Total    int    `json:"total"`
	Resumed  int    `json:"resumed"`
	Executed int    `json:"executed"`
	Verified int    `json:"verified"`
	Error    string `json:"error"`
}

func (d *daemon) submit(spec string) view {
	d.t.Helper()
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		d.t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		d.t.Fatalf("submit: got %d, want 201; body: %s", resp.StatusCode, body)
	}
	var v view
	if err := json.Unmarshal(body, &v); err != nil {
		d.t.Fatalf("submit response: %v\n%s", err, body)
	}
	return v
}

func (d *daemon) status(id string) view {
	d.t.Helper()
	resp, err := http.Get(d.base + "/v1/jobs/" + id)
	if err != nil {
		d.t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		d.t.Fatalf("status: got %d; body: %s", resp.StatusCode, body)
	}
	var v view
	if err := json.Unmarshal(body, &v); err != nil {
		d.t.Fatalf("status response: %v\n%s", err, body)
	}
	return v
}

// waitDone polls until the job is terminal, failing unless it ends done.
func (d *daemon) waitDone(id string, timeout time.Duration) view {
	d.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := d.status(id)
		switch v.Status {
		case "done":
			return v
		case "failed", "canceled":
			d.t.Fatalf("job %s ended %s (%s); daemon log:\n%s", id, v.Status, v.Error, d.logs)
		}
		if time.Now().After(deadline) {
			d.t.Fatalf("job %s still %s (%d/%d) after %v; daemon log:\n%s",
				id, v.Status, v.Done, v.Total, timeout, d.logs)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (d *daemon) report(id string) []byte {
	d.t.Helper()
	resp, err := http.Get(d.base + "/v1/jobs/" + id + "/report")
	if err != nil {
		d.t.Fatalf("report: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		d.t.Fatalf("report: got %d; body: %s", resp.StatusCode, body)
	}
	return body
}

// TestKillRestartByteIdenticalReport is the CI durability gate: a
// daemon SIGKILLed mid-campaign and restarted on the same state
// directory must finish the job by resuming its checkpoint, and the
// final report must be byte-identical to both an uninterrupted
// daemon's and the unsharded faultcampaign CLI's output.
func TestKillRestartByteIdenticalReport(t *testing.T) {
	daemonBin, cliBin := binaries(t)

	// Reference 1: the unsharded CLI, the format's source of truth.
	cliJSON := filepath.Join(t.TempDir(), "cli.json")
	cli := exec.Command(cliBin, append(append([]string{}, cliArgs...),
		"-progress=false", "-fig", "6", "-json", cliJSON)...)
	if out, err := cli.CombinedOutput(); err != nil {
		t.Fatalf("faultcampaign: %v\n%s", err, out)
	}
	want, err := os.ReadFile(cliJSON)
	if err != nil {
		t.Fatal(err)
	}

	// Reference 2: an uninterrupted daemon run.
	calm := startDaemon(t, daemonBin, t.TempDir())
	calmJob := calm.submit(specJSON)
	calm.waitDone(calmJob.ID, 5*time.Minute)
	if got := calm.report(calmJob.ID); !bytes.Equal(got, want) {
		t.Fatalf("uninterrupted daemon report differs from CLI output (%d vs %d bytes)", len(got), len(want))
	}

	// The gate: submit, SIGKILL mid-campaign, restart, resume.
	stateDir := t.TempDir()
	victim := startDaemon(t, daemonBin, stateDir, "-workers", "1")
	job := victim.submit(specJSON)
	killDeadline := time.Now().Add(5 * time.Minute)
	for {
		v := victim.status(job.ID)
		if v.Done >= 3 && v.Status == "running" {
			if v.Done > specFaults-20 {
				t.Fatalf("campaign nearly finished (%d/%d) before the kill; not a meaningful interruption", v.Done, v.Total)
			}
			break
		}
		if v.Status == "done" || time.Now().After(killDeadline) {
			t.Fatalf("no kill window: job reached %s %d/%d", v.Status, v.Done, v.Total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.kill()

	revived := startDaemon(t, daemonBin, stateDir, "-workers", "1")
	rv := revived.status(job.ID) // the job table must survive the crash
	if rv.Status != "queued" && rv.Status != "running" && rv.Status != "done" {
		t.Fatalf("after restart job %s is %q, want it recovered and schedulable", job.ID, rv.Status)
	}
	final := revived.waitDone(job.ID, 5*time.Minute)
	if final.Resumed == 0 {
		t.Fatalf("restarted daemon executed everything from scratch (resumed=0); checkpoint resume did not happen")
	}
	if final.Resumed+final.Executed != final.Total {
		t.Errorf("resumed %d + executed %d != total %d", final.Resumed, final.Executed, final.Total)
	}
	if final.Verified == 0 {
		t.Errorf("no resumed runs were re-verified (verified=0)")
	}
	t.Logf("resumed %d of %d runs, executed %d, verified %d",
		final.Resumed, final.Total, final.Executed, final.Verified)

	if got := revived.report(job.ID); !bytes.Equal(got, want) {
		t.Fatalf("resumed report differs from uninterrupted reference (%d vs %d bytes)", len(got), len(want))
	}
}

// TestDrainKeepsJobResumable covers the graceful half: SIGTERM during
// a campaign leaves the job queued on disk and the next daemon
// finishes it.
func TestDrainKeepsJobResumable(t *testing.T) {
	daemonBin, _ := binaries(t)
	stateDir := t.TempDir()
	d := startDaemon(t, daemonBin, stateDir, "-workers", "1")
	job := d.submit(specJSON)
	deadline := time.Now().Add(5 * time.Minute)
	for d.status(job.ID).Done < 3 {
		if time.Now().After(deadline) {
			t.Fatal("job never made progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := d.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("daemon did not drain cleanly: %v\n%s", err, d.logs)
	}

	revived := startDaemon(t, daemonBin, stateDir)
	final := revived.waitDone(job.ID, 5*time.Minute)
	if final.Resumed == 0 {
		t.Errorf("drained job was not resumed from its checkpoint")
	}
}
