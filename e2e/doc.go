// Package e2e holds the black-box end-to-end suite for the nocalertd
// campaign service. The tests build the real binaries, drive them over
// HTTP as separate processes, and include the durability gate CI
// enforces: SIGKILL the daemon mid-campaign, restart it, and require
// the resumed job's final report to be byte-identical to an
// uninterrupted run's (and to the unsharded faultcampaign CLI's).
//
// The suite is behind the `e2e` build tag because it shells out to the
// go tool and runs multi-second campaigns:
//
//	go test -tags e2e ./e2e -v
//
// or `make e2e`.
package e2e
