module nocalert

go 1.24
