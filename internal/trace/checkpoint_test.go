package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testManifest() *Manifest {
	return &Manifest{
		Kind:         "manifest",
		Version:      CheckpointVersion,
		Spec:         json.RawMessage(`{"seed":3}`),
		SpecHash:     "00000000000000aa",
		UniverseHash: "00000000000000bb",
		Shard:        1,
		Shards:       4,
		Start:        10,
		End:          20,
	}
}

func testRecord(i int) RunRecord {
	return RunRecord{
		Index: i, Router: i % 4, Signal: "sa1.gnt", Port: 1, VC: -1, Bit: i % 3,
		FaultType: "transient", Cycle: 100, Fired: true, Drained: true,
		Outcome: "FP", Latency: 0, CautiousOutcome: "FP", CautiousLatency: 0,
		ForeverOutcome: "TN", ForeverLatency: -1,
		CheckersFired: []int{2, 7}, FirstCycleCheckers: []int{2},
		WallSeconds: float64(i) * 0.001,
	}
}

func TestCheckpointWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.ndjson")
	cp, err := CreateCheckpoint(path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		rec := testRecord(i)
		if err := cp.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	cd, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cd.Manifest.Compatible(testManifest()) {
		t.Fatalf("manifest did not round-trip: %+v", cd.Manifest)
	}
	if len(cd.Records) != 10 {
		t.Fatalf("read %d records, want 10", len(cd.Records))
	}
	if cd.Footer == nil {
		t.Fatal("finalized checkpoint read back without footer")
	}
	if cd.Footer.Records != 10 {
		t.Fatalf("footer records = %d, want 10", cd.Footer.Records)
	}
	if cd.Footer.Sum != SumRecords(cd.Records) {
		t.Fatalf("footer sum %s != recomputed %s", cd.Footer.Sum, SumRecords(cd.Records))
	}
}

// TestCheckpointResumeAfterTornTail is the kill-mid-write scenario: a
// torn trailing line must be dropped and truncated so the resumed
// writer appends on a clean boundary.
func TestCheckpointResumeAfterTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.ndjson")
	cp, err := CreateCheckpoint(path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 14; i++ {
		rec := testRecord(i)
		if err := cp.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the kill: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":14,"router":2,"nocal`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cp2, completed, err := ResumeCheckpoint(path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 4 {
		t.Fatalf("resume recovered %d records, want 4", len(completed))
	}
	for i := 14; i < 20; i++ {
		rec := testRecord(i)
		if err := cp2.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp2.Finalize(); err != nil {
		t.Fatal(err)
	}
	cp2.Close()

	cd, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cd.Records) != 10 || cd.Footer == nil {
		t.Fatalf("after resume: %d records, footer %v; want 10 with footer", len(cd.Records), cd.Footer)
	}
	// The footer checksum is order-independent and wall-independent, so
	// it must equal the sum over a freshly built record set.
	var fresh []RunRecord
	for i := 10; i < 20; i++ {
		fresh = append(fresh, testRecord(i))
	}
	if cd.Footer.Sum != SumRecords(fresh) {
		t.Fatalf("resumed checkpoint sum %s != uninterrupted sum %s", cd.Footer.Sum, SumRecords(fresh))
	}
}

func TestResumeCheckpointCreatesMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.ndjson")
	cp, completed, err := ResumeCheckpoint(path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 0 {
		t.Fatalf("fresh resume returned %d records", len(completed))
	}
	cp.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("fresh resume did not create the checkpoint: %v", err)
	}
}

func TestResumeCheckpointRejectsForeignManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.ndjson")
	cp, err := CreateCheckpoint(path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()
	other := testManifest()
	other.SpecHash = "00000000000000cc"
	if _, _, err := ResumeCheckpoint(path, other); err == nil {
		t.Fatal("resume accepted a checkpoint from a different campaign")
	}
	wrongShard := testManifest()
	wrongShard.Shard = 2
	if _, _, err := ResumeCheckpoint(path, wrongShard); err == nil {
		t.Fatal("resume accepted a checkpoint from a different shard")
	}
}

func TestReadCheckpointRejectsCorruption(t *testing.T) {
	mb, _ := json.Marshal(testManifest())
	rec := testRecord(10)
	rb, _ := json.Marshal(&rec)

	// A malformed line with intact data after it is corruption.
	corrupt := string(mb) + "\n" + "{garbage}\n" + string(rb) + "\n"
	if _, err := ReadCheckpoint(strings.NewReader(corrupt)); err == nil {
		t.Fatal("mid-file corruption not detected")
	}

	// A footer that miscounts is corruption.
	badFooter, _ := json.Marshal(&Footer{Kind: "footer", Records: 7, Sum: SumRecords([]RunRecord{rec})})
	miscount := string(mb) + "\n" + string(rb) + "\n" + string(badFooter) + "\n"
	if _, err := ReadCheckpoint(strings.NewReader(miscount)); err == nil {
		t.Fatal("footer record-count mismatch not detected")
	}

	// A footer with the wrong checksum is corruption.
	wrongSum, _ := json.Marshal(&Footer{Kind: "footer", Records: 1, Sum: "0000000000000000"})
	badsum := string(mb) + "\n" + string(rb) + "\n" + string(wrongSum) + "\n"
	if _, err := ReadCheckpoint(strings.NewReader(badsum)); err == nil {
		t.Fatal("footer checksum mismatch not detected")
	}

	// Records after the footer are corruption.
	footer, _ := json.Marshal(&Footer{Kind: "footer", Records: 1, Sum: SumRecords([]RunRecord{rec})})
	after := string(mb) + "\n" + string(rb) + "\n" + string(footer) + "\n" + string(rb) + "\n"
	if _, err := ReadCheckpoint(strings.NewReader(after)); err == nil {
		t.Fatal("data after footer not detected")
	}

	// No manifest at all.
	if _, err := ReadCheckpoint(strings.NewReader(string(rb) + "\n")); err == nil {
		t.Fatal("missing manifest not detected")
	}
}

func TestAppendToFinalizedCheckpointFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.ndjson")
	cp, err := CreateCheckpoint(path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(10)
	if err := cp.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if err := cp.Finalize(); err != nil {
		t.Fatal(err)
	}
	rec2 := testRecord(11)
	if err := cp.Append(&rec2); err == nil {
		t.Fatal("append after finalize succeeded")
	}
	cp.Close()
}

// TestSumRecordsOrderAndWallIndependent pins the two properties the
// resumable format relies on.
func TestSumRecordsOrderAndWallIndependent(t *testing.T) {
	a := []RunRecord{testRecord(1), testRecord(2), testRecord(3)}
	b := []RunRecord{testRecord(3), testRecord(1), testRecord(2)}
	for i := range b {
		b[i].WallSeconds *= 17 // wall time varies run to run
	}
	if SumRecords(a) != SumRecords(b) {
		t.Fatal("record checksum depends on order or wall time")
	}
	c := []RunRecord{testRecord(1), testRecord(2)}
	if SumRecords(a) == SumRecords(c) {
		t.Fatal("record checksum misses a dropped record")
	}
	d := []RunRecord{testRecord(1), testRecord(2), testRecord(3)}
	d[1].Outcome = "FN"
	if SumRecords(a) == SumRecords(d) {
		t.Fatal("record checksum misses an outcome drift")
	}
}
