package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJobStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	js := &JobState{
		ID:          "j01",
		Spec:        json.RawMessage(`{"mesh_w":4,"mesh_h":4}`),
		SpecHash:    "deadbeefdeadbeef",
		Status:      JobQueued,
		SubmittedAt: "2026-08-05T10:00:00Z",
	}
	if err := WriteJobState(dir, js); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJobState(JobStatePath(dir, "j01"))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != js.ID || got.SpecHash != js.SpecHash || got.Status != JobQueued ||
		got.SubmittedAt != js.SubmittedAt || string(got.Spec) != string(js.Spec) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, js)
	}
	if got.Version != JobStateVersion || got.Kind != "job" {
		t.Fatalf("defaults not filled: kind=%q version=%d", got.Kind, got.Version)
	}
	if got.Terminal() {
		t.Fatal("queued job reported terminal")
	}

	// Rewriting with a terminal status replaces the manifest atomically.
	js.Status = JobDone
	js.FinishedAt = "2026-08-05T10:05:00Z"
	if err := WriteJobState(dir, js); err != nil {
		t.Fatal(err)
	}
	got, err = ReadJobState(JobStatePath(dir, "j01"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != JobDone || !got.Terminal() || got.FinishedAt == "" {
		t.Fatalf("terminal rewrite not visible: %+v", got)
	}
	// No temp residue may survive a successful write.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

func TestJobStateRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"truncated.job.json":  `{"kind":"job","version":1,"id":"x","status":"queu`,
		"wrongkind.job.json":  `{"kind":"manifest","version":1,"id":"x","status":"queued"}`,
		"badstatus.job.json":  `{"kind":"job","version":1,"id":"x","status":"paused"}`,
		"noid.job.json":       `{"kind":"job","version":1,"status":"queued"}`,
		"badversion.job.json": `{"kind":"job","version":99,"id":"x","status":"queued"}`,
	}
	for name, body := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadJobState(p); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
		os.Remove(p)
	}
}

func TestListJobStatesOrdersAndSkips(t *testing.T) {
	dir := t.TempDir()
	for _, js := range []*JobState{
		{ID: "jb", Status: JobQueued, SubmittedAt: "2026-08-05T10:02:00Z"},
		{ID: "ja", Status: JobDone, SubmittedAt: "2026-08-05T10:01:00Z"},
		{ID: "jc", Status: JobQueued, SubmittedAt: "2026-08-05T10:01:00Z"},
	} {
		if err := WriteJobState(dir, js); err != nil {
			t.Fatal(err)
		}
	}
	// Non-manifest files in the state dir (checkpoints, reports) are
	// not job states and must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "ja.ckpt.ndjson"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ListJobStates(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, js := range got {
		ids = append(ids, js.ID)
	}
	if want := "ja,jc,jb"; strings.Join(ids, ",") != want {
		t.Fatalf("order = %v, want %s", ids, want)
	}
	// A mismatch between file name and embedded ID is corruption.
	if err := os.WriteFile(filepath.Join(dir, "liar.job.json"),
		[]byte(`{"kind":"job","version":1,"id":"other","status":"queued"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ListJobStates(dir); err == nil {
		t.Fatal("ID/file-name mismatch accepted")
	}
}

func TestListJobStatesMissingDir(t *testing.T) {
	got, err := ListJobStates(filepath.Join(t.TempDir(), "nope"))
	if err != nil || got != nil {
		t.Fatalf("missing dir: got %v, %v; want nil, nil", got, err)
	}
}
