// Torn-write coverage for the tolerant NDJSON readers, exercised
// through the span stream that internal/obs layers on DecodeTolerant.
// External test package: obs imports trace, so these tests live in
// trace_test to close the loop without an import cycle.
package trace_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nocalert/internal/obs"
	"nocalert/internal/trace"
)

// writeSpanStream emits a realistic span hierarchy (campaign → run →
// phase with cycle-accurate attributes) to a file and returns the
// parsed reference records.
func writeSpanStream(t *testing.T, path string, runs int) []obs.SpanRecord {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New(obs.Options{Writer: f})
	root := tr.Start(nil, "campaign", "campaign")
	for i := 0; i < runs; i++ {
		run := root.Child("run", "run")
		run.SetAttr("run_index", i)
		run.SetAttr("inject_cycle", 300)
		run.SetAttr("cycles_simulated", 420+i)
		run.SetAttr("verdict", "TP")
		ph := run.Child("phase", "drain")
		ph.End()
		run.End()
	}
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadSpans(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*runs+1 {
		t.Fatalf("reference stream has %d spans, want %d", len(recs), 2*runs+1)
	}
	return recs
}

// TestSpanStreamTornAtEveryByte truncates the span NDJSON file at every
// byte offset — every possible hard-kill point — and checks the reader
// returns exactly the complete prefix records with no error: the same
// contract TestCheckpointResumeAfterTornTail pins for run checkpoints.
func TestSpanStreamTornAtEveryByte(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.ndjson")
	ref := writeSpanStream(t, path, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(data); cut++ {
		recs, err := obs.ReadSpans(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut at byte %d/%d: unexpected error %v", cut, len(data), err)
		}
		// A cut mid-record drops only the torn line; a cut exactly at a
		// record's closing brace (newline not yet written) still parses.
		whole := bytes.Count(data[:cut], []byte{'\n'})
		if len(recs) != whole && len(recs) != whole+1 {
			t.Fatalf("cut at byte %d: got %d records, want %d or %d",
				cut, len(recs), whole, whole+1)
		}
		for i, r := range recs {
			if !reflect.DeepEqual(r, ref[i]) {
				t.Fatalf("cut at byte %d: record %d diverges from reference:\n got %+v\nwant %+v",
					cut, i, r, ref[i])
			}
		}
	}
}

// TestSpanStreamTornAppend mirrors the checkpoint harness's kill
// simulation: a partial record appended with no trailing newline must
// not cost any completed span.
func TestSpanStreamTornAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.ndjson")
	ref := writeSpanStream(t, path, 2)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"trace_id":"deadbeef","span_id":"00000000000000ff","kind":"run","attrs":{"inject`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadSpans(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadSpans after torn append: %v", err)
	}
	if !reflect.DeepEqual(recs, ref) {
		t.Fatalf("torn append changed the recovered records:\n got %d spans\nwant %d", len(recs), len(ref))
	}
}

// TestSpanStreamMidFileCorruptionErrors pins the other half of the
// contract: damage that is NOT a torn tail (a corrupt line with intact
// records after it) must surface as an error, not silent data loss.
func TestSpanStreamMidFileCorruptionErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.ndjson")
	writeSpanStream(t, path, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte{'\n'})
	if len(lines) < 3 {
		t.Fatalf("need at least 3 lines, have %d", len(lines))
	}
	lines[1] = []byte("{\"trace_id\": CORRUPT\n")
	if _, err := obs.ReadSpans(bytes.NewReader(bytes.Join(lines, nil))); err == nil {
		t.Fatal("mid-file corruption read back with no error")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name the corrupt line", err)
	}
}

// TestDecodeTolerantEdgeCases covers the generic reader directly:
// empty input, blank-line padding, and a lone torn line.
func TestDecodeTolerantEdgeCases(t *testing.T) {
	type rec struct {
		N int `json:"n"`
	}
	got, err := trace.DecodeTolerant[rec](strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Errorf("empty input: %v, %d records", err, len(got))
	}
	got, err = trace.DecodeTolerant[rec](strings.NewReader("{\"n\":1}\n\n{\"n\":2}\n"))
	if err != nil || len(got) != 2 {
		t.Errorf("blank-line padding: %v, %d records (want 2)", err, len(got))
	}
	got, err = trace.DecodeTolerant[rec](strings.NewReader("{\"n\":"))
	if err != nil || len(got) != 0 {
		t.Errorf("lone torn line: %v, %d records (want 0, nil)", err, len(got))
	}
}
