package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
)

// A checkpoint file is the durable state of one campaign shard: an
// NDJSON stream opening with a self-describing Manifest line, followed
// by one RunRecord line per completed run (in completion order), and —
// once the shard has finished every run — a Footer line carrying an
// integrity checksum. The format is append-only, so a killed shard
// leaves at worst one torn trailing line, which resume truncates away;
// every fully written record survives.
//
// Manifest and Footer lines are distinguished from records by their
// "kind" field, which RunRecord does not carry.

// CheckpointVersion is the checkpoint stream format version.
const CheckpointVersion = 1

// Manifest is the first line of a checkpoint: everything a reader
// needs to know which campaign and which slice of it the records
// belong to, without any out-of-band context.
type Manifest struct {
	Kind    string `json:"kind"` // always "manifest"
	Version int    `json:"version"`
	// Spec is the full campaign specification (campaign.Spec JSON),
	// embedded opaquely so this package does not depend on the campaign
	// package. Merge rebuilds the report's options from it.
	Spec json.RawMessage `json:"spec"`
	// SpecHash and UniverseHash fingerprint the spec and the exact
	// fault universe it expands to; shards with differing hashes must
	// never be merged or resumed into each other.
	SpecHash     string `json:"spec_hash"`
	UniverseHash string `json:"universe_hash"`
	// Shard i of Shards covers global fault indices [Start, End).
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	Start  int `json:"start"`
	End    int `json:"end"`
}

// Compatible reports whether two manifests describe the same shard of
// the same campaign — the precondition for resuming one's checkpoint
// under the other.
func (m *Manifest) Compatible(o *Manifest) bool {
	return m.Version == o.Version &&
		m.SpecHash == o.SpecHash &&
		m.UniverseHash == o.UniverseHash &&
		m.Shard == o.Shard && m.Shards == o.Shards &&
		m.Start == o.Start && m.End == o.End
}

// Footer is the last line of a completed checkpoint.
type Footer struct {
	Kind string `json:"kind"` // always "footer"
	// Records is the number of record lines in the file.
	Records int `json:"records"`
	// Sum is the order-independent integrity checksum over the
	// records' canonical bytes (see SumRecords). Order independence
	// matters because a resumed shard appends records in a different
	// completion order than an uninterrupted one, yet must finalize to
	// the same checksum.
	Sum string `json:"sum"`
}

// RecordHash returns the FNV-1a 64-bit hash of the record's canonical
// bytes.
func RecordHash(r *RunRecord) uint64 {
	h := fnv.New64a()
	h.Write(r.CanonicalBytes())
	return h.Sum64()
}

// SumRecords folds per-record hashes into the checkpoint checksum: the
// XOR of every record's RecordHash, rendered as hex. XOR makes the sum
// independent of record order and incrementally maintainable.
func SumRecords(recs []RunRecord) string {
	var sum uint64
	for i := range recs {
		sum ^= RecordHash(&recs[i])
	}
	return fmt.Sprintf("%016x", sum)
}

// lineKind peeks at a checkpoint line's "kind" field. Record lines
// have none and return "".
func lineKind(b []byte) string {
	var k struct {
		Kind string `json:"kind"`
	}
	if json.Unmarshal(b, &k) != nil {
		return ""
	}
	return k.Kind
}

// CheckpointData is a fully parsed checkpoint stream.
type CheckpointData struct {
	Manifest Manifest
	Records  []RunRecord
	// Footer is non-nil once the shard finalized; its Records count and
	// Sum have already been verified against the parsed records.
	Footer *Footer
	// validBytes is the offset just past the last intact line —
	// where an appending resume must truncate to.
	validBytes int64
}

// ReadCheckpoint parses a checkpoint stream. A torn trailing line (the
// normal residue of a killed shard) is tolerated and dropped; any
// malformed line with intact data after it is corruption and errors.
// If a footer is present it must be the final line and must match the
// records, making a finalized checkpoint self-verifying.
func ReadCheckpoint(r io.Reader) (*CheckpointData, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	cd := &CheckpointData{}
	sawManifest := false
	lineNo := 0
	for {
		line, err := br.ReadBytes('\n')
		torn := err == io.EOF && len(line) > 0
		if err != nil && err != io.EOF {
			return nil, err
		}
		if len(bytes.TrimSpace(line)) == 0 {
			if err == io.EOF {
				break
			}
			cd.validBytes += int64(len(line))
			continue
		}
		lineNo++
		bad := func(what string, perr error) error {
			if torn {
				// A torn final line is expected after a kill.
				return nil
			}
			return fmt.Errorf("trace: checkpoint line %d: bad %s: %v", lineNo, what, perr)
		}
		if !sawManifest {
			if k := lineKind(line); k != "manifest" {
				if torn {
					break
				}
				return nil, fmt.Errorf("trace: checkpoint line %d: expected manifest, got kind %q", lineNo, k)
			}
			if perr := json.Unmarshal(line, &cd.Manifest); perr != nil {
				if e := bad("manifest", perr); e != nil {
					return nil, e
				}
				break
			}
			if cd.Manifest.Version != CheckpointVersion {
				return nil, fmt.Errorf("trace: checkpoint version %d, want %d", cd.Manifest.Version, CheckpointVersion)
			}
			sawManifest = true
			cd.validBytes += int64(len(line))
		} else if cd.Footer != nil {
			if torn {
				break
			}
			return nil, fmt.Errorf("trace: checkpoint line %d: data after footer", lineNo)
		} else if lineKind(line) == "footer" {
			var f Footer
			if perr := json.Unmarshal(line, &f); perr != nil {
				if e := bad("footer", perr); e != nil {
					return nil, e
				}
				break
			}
			cd.Footer = &f
			cd.validBytes += int64(len(line))
		} else {
			var rec RunRecord
			if perr := json.Unmarshal(line, &rec); perr != nil {
				if e := bad("record", perr); e != nil {
					return nil, e
				}
				break
			}
			cd.Records = append(cd.Records, rec)
			cd.validBytes += int64(len(line))
		}
		if err == io.EOF {
			break
		}
	}
	if !sawManifest {
		return nil, fmt.Errorf("trace: checkpoint has no manifest line")
	}
	if cd.Footer != nil {
		if cd.Footer.Records != len(cd.Records) {
			return nil, fmt.Errorf("trace: checkpoint footer claims %d records, file has %d",
				cd.Footer.Records, len(cd.Records))
		}
		if sum := SumRecords(cd.Records); sum != cd.Footer.Sum {
			return nil, fmt.Errorf("trace: checkpoint checksum mismatch: footer %s, records %s",
				cd.Footer.Sum, sum)
		}
	}
	return cd, nil
}

// ReadCheckpointFile parses the checkpoint at path.
func ReadCheckpointFile(path string) (*CheckpointData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// Checkpoint is an open, appendable checkpoint file. Append is safe
// for concurrent use.
type Checkpoint struct {
	mu        sync.Mutex
	f         *os.File
	enc       *json.Encoder
	manifest  Manifest
	records   int
	sum       uint64
	finalized bool
}

// CreateCheckpoint creates (truncating) a checkpoint at path and
// writes its manifest line.
func CreateCheckpoint(path string, m *Manifest) (*Checkpoint, error) {
	if m.Kind == "" {
		m.Kind = "manifest"
	}
	if m.Version == 0 {
		m.Version = CheckpointVersion
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	c := &Checkpoint{f: f, enc: json.NewEncoder(f), manifest: *m}
	if err := c.enc.Encode(m); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// ResumeCheckpoint opens the checkpoint at path for appending. A
// missing file starts fresh (CreateCheckpoint); an existing one must
// carry a manifest compatible with m. The already-recorded runs are
// returned so the caller can skip re-executing them; a torn trailing
// line is truncated away so appends start on a clean line boundary. An
// already-finalized checkpoint is returned as-is with Finalized true
// and must not be appended to.
func ResumeCheckpoint(path string, m *Manifest) (*Checkpoint, []RunRecord, error) {
	if m.Kind == "" {
		m.Kind = "manifest"
	}
	if m.Version == 0 {
		m.Version = CheckpointVersion
	}
	if _, err := os.Stat(path); os.IsNotExist(err) {
		c, cerr := CreateCheckpoint(path, m)
		return c, nil, cerr
	}
	cd, err := ReadCheckpointFile(path)
	if err != nil {
		return nil, nil, err
	}
	if !cd.Manifest.Compatible(m) {
		return nil, nil, fmt.Errorf("trace: checkpoint %s belongs to a different shard or campaign (spec %s shard %d/%d, want spec %s shard %d/%d)",
			path, cd.Manifest.SpecHash, cd.Manifest.Shard, cd.Manifest.Shards,
			m.SpecHash, m.Shard, m.Shards)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	// Drop any torn trailing line so the next append starts clean.
	if err := f.Truncate(cd.validBytes); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(cd.validBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	c := &Checkpoint{
		f:         f,
		enc:       json.NewEncoder(f),
		manifest:  cd.Manifest,
		records:   len(cd.Records),
		finalized: cd.Footer != nil,
	}
	for i := range cd.Records {
		c.sum ^= RecordHash(&cd.Records[i])
	}
	return c, cd.Records, nil
}

// Manifest returns the checkpoint's manifest.
func (c *Checkpoint) Manifest() Manifest { return c.manifest }

// Records returns the number of record lines (pre-existing plus
// appended).
func (c *Checkpoint) Records() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.records
}

// Finalized reports whether the footer has been written.
func (c *Checkpoint) Finalized() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.finalized
}

// Append writes one record line. The encoder writes straight to the
// file — one write syscall per run, whole lines only — so every
// completed run is durable before the next starts.
func (c *Checkpoint) Append(rec *RunRecord) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finalized {
		return fmt.Errorf("trace: append to finalized checkpoint")
	}
	if err := c.enc.Encode(rec); err != nil {
		return err
	}
	c.records++
	c.sum ^= RecordHash(rec)
	return nil
}

// Finalize writes the integrity footer, marking the shard complete.
func (c *Checkpoint) Finalize() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finalized {
		return nil
	}
	f := Footer{Kind: "footer", Records: c.records, Sum: fmt.Sprintf("%016x", c.sum)}
	if err := c.enc.Encode(&f); err != nil {
		return err
	}
	c.finalized = true
	return nil
}

// Close closes the underlying file (without finalizing).
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}
