package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// DecodeTolerant parses an NDJSON stream of T, tolerating a truncated
// final line — the normal tail shape of any append-only stream whose
// writer was killed mid-record (run traces, shard checkpoints, span
// streams). Complete records before the truncation are returned with a
// nil error; a malformed line with more data after it is corruption,
// not a torn tail, and is reported.
func DecodeTolerant[T any](r io.Reader) ([]T, error) {
	var out []T
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec T
		if err := json.Unmarshal(b, &rec); err != nil {
			if !sc.Scan() {
				return out, nil
			}
			return out, fmt.Errorf("trace: bad NDJSON record on line %d: %v", line, err)
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}
