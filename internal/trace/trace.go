// Package trace provides passive observation utilities on top of the
// simulator's Monitor interface: per-packet path recording and flit
// event logs. The campaign does not need them, but they serve two
// roles a real NoC tool chain also has: validating the substrate (a
// recorded path must obey the routing algorithm hop by hop) and
// debugging fault scenarios (where did the flit actually go?).
package trace

import (
	"fmt"
	"sort"

	"nocalert/internal/flit"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// Hop is one router traversal of a flit.
type Hop struct {
	Cycle   int64
	Router  int
	InPort  topology.Direction // port the flit entered on (Local = injected here)
	OutPort topology.Direction // port the flit left through
}

// PathMonitor records, per packet, the sequence of router hops its
// header flit takes. It implements sim.Monitor and never perturbs the
// network.
type PathMonitor struct {
	sim.BaseMonitor
	// MaxPackets caps memory; 0 means unlimited.
	MaxPackets int

	paths map[uint64][]Hop
	// inPort tracks the input port a packet's header occupies at each
	// router so the departure can be labelled with its entry port.
	entry map[packetAt]topology.Direction
}

type packetAt struct {
	pkt    uint64
	router int
}

// NewPathMonitor returns an empty path recorder.
func NewPathMonitor() *PathMonitor {
	return &PathMonitor{
		paths: make(map[uint64][]Hop),
		entry: make(map[packetAt]topology.Direction),
	}
}

// RouterCycle implements sim.Monitor.
func (p *PathMonitor) RouterCycle(r *router.Router, s *router.Signals) {
	// Arrivals establish the entry port of a packet at this router.
	for i := range s.Arrivals {
		a := &s.Arrivals[i]
		if a.Flit == nil || !a.Flit.Kind.IsHead() {
			continue
		}
		p.entry[packetAt{a.Flit.PacketID, s.Router}] = topology.Direction(a.Port)
	}
	// Header departures extend the path.
	for i := range s.Departures {
		d := &s.Departures[i]
		if d.Flit == nil || !d.Flit.Kind.IsHead() {
			continue
		}
		key := packetAt{d.Flit.PacketID, s.Router}
		in, ok := p.entry[key]
		if !ok {
			in = topology.Local // injected at this router's NI
		} else {
			delete(p.entry, key)
		}
		if p.MaxPackets > 0 && len(p.paths) >= p.MaxPackets {
			if _, tracked := p.paths[d.Flit.PacketID]; !tracked {
				continue
			}
		}
		p.paths[d.Flit.PacketID] = append(p.paths[d.Flit.PacketID], Hop{
			Cycle:   s.Cycle,
			Router:  s.Router,
			InPort:  in,
			OutPort: topology.Direction(d.OutPort),
		})
	}
}

// CloneMonitor implements sim.CloneableMonitor by deep-copying the
// recorded paths and in-flight entry table, so a forked network (a
// campaign run, an A/B continuation) keeps observing instead of
// silently going dark — monitors that do not implement the interface
// are dropped by Network.Clone.
func (p *PathMonitor) CloneMonitor() sim.Monitor {
	c := &PathMonitor{
		MaxPackets: p.MaxPackets,
		paths:      make(map[uint64][]Hop, len(p.paths)),
		entry:      make(map[packetAt]topology.Direction, len(p.entry)),
	}
	for id, hops := range p.paths {
		c.paths[id] = append([]Hop(nil), hops...)
	}
	for k, v := range p.entry {
		c.entry[k] = v
	}
	return c
}

// Path returns the recorded hops of a packet, in traversal order.
func (p *PathMonitor) Path(pkt uint64) []Hop {
	hops := append([]Hop(nil), p.paths[pkt]...)
	sort.Slice(hops, func(i, j int) bool { return hops[i].Cycle < hops[j].Cycle })
	return hops
}

// Packets returns the tracked packet ids in ascending order.
func (p *PathMonitor) Packets() []uint64 {
	out := make([]uint64, 0, len(p.paths))
	for id := range p.paths {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ValidatePath checks a recorded path against the mesh and a source/
// destination pair: hops must chain across real links, start at the
// source, and end by ejecting at the destination.
func ValidatePath(m topology.Mesh, hops []Hop, src, dest int) error {
	if len(hops) == 0 {
		return fmt.Errorf("trace: empty path")
	}
	if hops[0].Router != src {
		return fmt.Errorf("trace: path starts at router %d, not source %d", hops[0].Router, src)
	}
	if hops[0].InPort != topology.Local {
		return fmt.Errorf("trace: first hop entered on %v, not Local", hops[0].InPort)
	}
	for i := 0; i < len(hops); i++ {
		h := hops[i]
		last := i == len(hops)-1
		if h.OutPort == topology.Local {
			if !last {
				return fmt.Errorf("trace: ejection at hop %d before the path ends", i)
			}
			if h.Router != dest {
				return fmt.Errorf("trace: ejected at router %d, not destination %d", h.Router, dest)
			}
			return nil
		}
		next, ok := m.Neighbor(h.Router, h.OutPort)
		if !ok {
			return fmt.Errorf("trace: hop %d leaves through missing port %v of router %d", i, h.OutPort, h.Router)
		}
		if last {
			return fmt.Errorf("trace: path ends mid-flight at router %d", h.Router)
		}
		if hops[i+1].Router != next {
			return fmt.Errorf("trace: hop %d goes to router %d but next hop is at %d", i, next, hops[i+1].Router)
		}
		if hops[i+1].InPort != h.OutPort.Opposite() {
			return fmt.Errorf("trace: hop %d arrives on %v, expected %v", i+1, hops[i+1].InPort, h.OutPort.Opposite())
		}
	}
	return nil
}

// EventLog records every ejection with full flit identity; a heavier-
// weight alternative to the network's built-in log for debugging.
type EventLog struct {
	sim.BaseMonitor
	Ejections []EjectionEvent
}

// EjectionEvent is one logged delivery.
type EjectionEvent struct {
	Cycle int64
	Node  int
	Flit  flit.Flit // copied, immune to later mutation
}

// FlitEjected implements sim.Monitor.
func (l *EventLog) FlitEjected(cycle int64, node int, f *flit.Flit) {
	l.Ejections = append(l.Ejections, EjectionEvent{Cycle: cycle, Node: node, Flit: *f})
}

// CloneMonitor implements sim.CloneableMonitor: the clone starts from a
// copy of the log so far and diverges independently from the fork.
func (l *EventLog) CloneMonitor() sim.Monitor {
	return &EventLog{Ejections: append([]EjectionEvent(nil), l.Ejections...)}
}
