package trace

import (
	"testing"

	"nocalert/internal/router"
	"nocalert/internal/routing"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// TestEveryPacketFollowsXY is a whole-substrate validation: record the
// path of every packet in a fault-free run and check, hop by hop, that
// it is exactly the XY path — X fully resolved first, then Y, minimal
// throughout, ejected at the destination.
func TestEveryPacketFollowsXY(t *testing.T) {
	rc := router.Default(topology.NewMesh(5, 4))
	n := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.12, Seed: 77}, nil)
	pm := NewPathMonitor()
	n.AttachMonitor(pm)
	n.Run(1500)
	n.Drain(8000)

	m := n.Mesh()
	srcdst := map[uint64][2]int{}
	for _, e := range n.Ejections() {
		srcdst[e.Flit.PacketID] = [2]int{e.Flit.Src, e.Flit.Dest}
	}
	if len(pm.Packets()) == 0 {
		t.Fatal("no paths recorded")
	}
	checked := 0
	for _, pkt := range pm.Packets() {
		sd, ok := srcdst[pkt]
		if !ok {
			continue // packet still queued when the run ended
		}
		hops := pm.Path(pkt)
		if err := ValidatePath(m, hops, sd[0], sd[1]); err != nil {
			t.Fatalf("packet %d: %v (hops=%v)", pkt, err, hops)
		}
		// XY discipline: once a hop moves in Y, no later hop moves in X.
		movedY := false
		for _, h := range hops {
			switch h.OutPort {
			case topology.North, topology.South:
				movedY = true
			case topology.East, topology.West:
				if movedY {
					t.Fatalf("packet %d turned back into X after Y: %v", pkt, hops)
				}
			}
		}
		// Path length: exactly the Manhattan distance plus the ejection hop.
		if want := m.HopDistance(sd[0], sd[1]) + 1; len(hops) != want {
			t.Fatalf("packet %d took %d hops, want %d", pkt, len(hops), want)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d packets checked", checked)
	}
}

// TestAdaptivePathsStayMinimal: under the adaptive algorithm paths may
// differ from XY but must remain minimal and well-formed.
func TestAdaptivePathsStayMinimal(t *testing.T) {
	rc := router.Default(topology.NewMesh(4, 4))
	rc.Alg = routing.Adaptive{}
	n := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.15, Seed: 13}, nil)
	pm := NewPathMonitor()
	n.AttachMonitor(pm)
	n.Run(1500)
	n.Drain(8000)

	m := n.Mesh()
	srcdst := map[uint64][2]int{}
	for _, e := range n.Ejections() {
		srcdst[e.Flit.PacketID] = [2]int{e.Flit.Src, e.Flit.Dest}
	}
	checked := 0
	for _, pkt := range pm.Packets() {
		sd, ok := srcdst[pkt]
		if !ok {
			continue
		}
		hops := pm.Path(pkt)
		if err := ValidatePath(m, hops, sd[0], sd[1]); err != nil {
			t.Fatalf("packet %d: %v", pkt, err)
		}
		if want := m.HopDistance(sd[0], sd[1]) + 1; len(hops) != want {
			t.Fatalf("packet %d non-minimal: %d hops, want %d", pkt, len(hops), want)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d packets checked", checked)
	}
}

// TestValidatePathRejections covers the validator's error branches.
func TestValidatePathRejections(t *testing.T) {
	m := topology.NewMesh(3, 3)
	mk := func(hops ...Hop) []Hop { return hops }
	cases := []struct {
		name string
		hops []Hop
		src  int
		dst  int
	}{
		{"empty", nil, 0, 1},
		{"wrong-start", mk(Hop{Router: 2, InPort: topology.Local, OutPort: topology.Local}), 0, 2},
		{"not-local-entry", mk(Hop{Router: 0, InPort: topology.East, OutPort: topology.Local}), 0, 0},
		{"early-ejection", mk(
			Hop{Router: 0, InPort: topology.Local, OutPort: topology.Local},
			Hop{Router: 1, InPort: topology.West, OutPort: topology.Local},
		), 0, 1},
		{"missing-port", mk(Hop{Router: 0, InPort: topology.Local, OutPort: topology.West}), 0, 1},
		{"mid-flight-end", mk(Hop{Router: 0, InPort: topology.Local, OutPort: topology.East}), 0, 1},
		{"broken-chain", mk(
			Hop{Router: 0, InPort: topology.Local, OutPort: topology.East},
			Hop{Router: 5, InPort: topology.West, OutPort: topology.Local},
		), 0, 5},
		{"wrong-dest", mk(
			Hop{Router: 0, InPort: topology.Local, OutPort: topology.East},
			Hop{Router: 1, InPort: topology.West, OutPort: topology.Local},
		), 0, 7},
	}
	for _, c := range cases {
		if err := ValidatePath(m, c.hops, c.src, c.dst); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// A correct two-hop path passes.
	good := mk(
		Hop{Router: 0, InPort: topology.Local, OutPort: topology.East},
		Hop{Router: 1, InPort: topology.West, OutPort: topology.Local},
	)
	if err := ValidatePath(m, good, 0, 1); err != nil {
		t.Errorf("good path rejected: %v", err)
	}
}

// TestEventLogCopiesFlits: the log must be immune to later mutation of
// the flit object.
func TestEventLogCopiesFlits(t *testing.T) {
	rc := router.Default(topology.NewMesh(3, 3))
	n := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.1, Seed: 5}, nil)
	l := &EventLog{}
	n.AttachMonitor(l)
	n.Run(600)
	if len(l.Ejections) == 0 {
		t.Fatal("no events logged")
	}
	if int64(len(l.Ejections)) != n.FlitsEjected() {
		t.Fatalf("logged %d, ejected %d", len(l.Ejections), n.FlitsEjected())
	}
}
