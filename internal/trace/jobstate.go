package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A job-state manifest is the durable identity of one daemon-managed
// campaign job: which spec it runs, where its shard checkpoint lives,
// and the last durable point of its lifecycle. It sits alongside the
// checkpoint in the same state directory, so the directory alone is
// enough for a restarted daemon to rebuild its whole job table:
//
//	<dir>/<id>.job.json    — this manifest (atomic rewrite on change)
//	<dir>/<id>.ckpt.ndjson — the PR-3 shard checkpoint (append-only)
//	<dir>/<id>.report.json — the final aggregated report (atomic write)
//
// Only durable transitions are recorded: a job is written as "queued"
// at submit and rewritten when it reaches a terminal state. "running"
// is deliberately not persisted — a daemon killed mid-run leaves the
// manifest saying "queued", which is exactly what the restart scan
// needs in order to re-enqueue the job and resume its checkpoint.

// JobStateVersion is the job manifest format version.
const JobStateVersion = 1

// Durable job statuses. Terminal ones never change again.
const (
	JobQueued   = "queued"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// JobState is the on-disk job manifest.
type JobState struct {
	Kind    string `json:"kind"` // always "job"
	Version int    `json:"version"`
	// ID names the job and prefixes its checkpoint and report files.
	ID string `json:"id"`
	// Spec is the full campaign specification (campaign.Spec JSON),
	// embedded opaquely so this package does not depend on the campaign
	// package (the same pattern as Manifest.Spec).
	Spec json.RawMessage `json:"spec"`
	// SpecHash fingerprints the spec; the runner cross-checks it before
	// resuming the checkpoint under a rebuilt plan.
	SpecHash string `json:"spec_hash"`
	// Tenant names the submitter (from the daemon's auth table). Empty
	// for anonymous/local submissions. Persisted so quota accounting and
	// fair queueing survive a restart.
	Tenant string `json:"tenant,omitempty"`
	// Shard/Shards are the job's shard coordinates when a coordinator
	// submitted one slice of a larger campaign (Shards > 1). Both zero
	// for a whole-campaign job, which the runner plans as shard 0/1.
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
	// Done/Total record the job's final run counts at its terminal
	// transition, so a restarted daemon can report them without
	// re-deriving the fault universe.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Status is the last durable lifecycle point (Job* constants).
	Status string `json:"status"`
	// Error carries the failure cause when Status is JobFailed.
	Error string `json:"error,omitempty"`
	// SubmittedAt and FinishedAt are RFC3339 timestamps; FinishedAt is
	// empty until the job reaches a terminal status.
	SubmittedAt string `json:"submitted_at"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

// Terminal reports whether the state can never change again.
func (j *JobState) Terminal() bool {
	return j.Status == JobDone || j.Status == JobFailed || j.Status == JobCanceled
}

const jobStateSuffix = ".job.json"

// JobStatePath returns the manifest path for job id in dir.
func JobStatePath(dir, id string) string { return filepath.Join(dir, id+jobStateSuffix) }

// JobCheckpointPath returns the shard-checkpoint path for job id.
func JobCheckpointPath(dir, id string) string { return filepath.Join(dir, id+".ckpt.ndjson") }

// JobReportPath returns the final-report path for job id.
func JobReportPath(dir, id string) string { return filepath.Join(dir, id+".report.json") }

// ShardCheckpointPath returns the checkpoint path for shard i of n of
// the campaign fingerprinted by specHash. Unlike JobCheckpointPath it
// is keyed on the campaign identity rather than the job ID, so a
// re-submitted shard (a coordinator requeueing work onto a restarted
// worker) resumes the partial checkpoint an earlier job left behind
// instead of starting over.
func ShardCheckpointPath(dir, specHash string, i, n int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.s%dof%d.ckpt.ndjson", specHash, i, n))
}

// WriteJobState durably writes the manifest for js.ID in dir: the
// bytes land in a temp file first and are renamed into place, so a
// kill at any instant leaves either the old manifest or the new one,
// never a torn half-written line.
func WriteJobState(dir string, js *JobState) error {
	if js.ID == "" {
		return fmt.Errorf("trace: job state has no ID")
	}
	if js.Kind == "" {
		js.Kind = "job"
	}
	if js.Version == 0 {
		js.Version = JobStateVersion
	}
	b, err := json.Marshal(js)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	return AtomicWriteFile(JobStatePath(dir, js.ID), b)
}

// AtomicWriteFile writes data to path via a same-directory temp file
// and rename, the standard crash-safe replacement idiom: a kill at any
// instant leaves either the old file or the complete new one. The job
// runner uses it for manifests and final reports alike.
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// ReadJobState parses the manifest at path.
func ReadJobState(path string) (*JobState, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var js JobState
	if err := json.Unmarshal(b, &js); err != nil {
		return nil, fmt.Errorf("trace: job state %s: %v", path, err)
	}
	if js.Kind != "job" {
		return nil, fmt.Errorf("trace: job state %s: kind %q, want \"job\"", path, js.Kind)
	}
	if js.Version != JobStateVersion {
		return nil, fmt.Errorf("trace: job state %s: version %d, want %d", path, js.Version, JobStateVersion)
	}
	if js.ID == "" {
		return nil, fmt.Errorf("trace: job state %s: empty job ID", path)
	}
	switch js.Status {
	case JobQueued, JobDone, JobFailed, JobCanceled:
	default:
		return nil, fmt.Errorf("trace: job state %s: unknown status %q", path, js.Status)
	}
	return &js, nil
}

// ListJobStates scans dir for job manifests and returns them ordered
// by submission time (then ID, for a total order), which is the order
// a restarted daemon re-enqueues unfinished jobs in. A missing dir is
// an empty state store, not an error.
func ListJobStates(dir string) ([]*JobState, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []*JobState
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, jobStateSuffix) {
			continue
		}
		js, err := ReadJobState(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if want := name[:len(name)-len(jobStateSuffix)]; js.ID != want {
			return nil, fmt.Errorf("trace: job state %s claims ID %q", name, js.ID)
		}
		out = append(out, js)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SubmittedAt != out[j].SubmittedAt {
			return out[i].SubmittedAt < out[j].SubmittedAt
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}
