package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// RunRecord is one NDJSON line of a campaign run trace: everything
// needed to recover, re-aggregate or post-process a fault run without
// the in-memory report. The faultcampaign CLI streams one record per
// completed run (-trace), so an interrupted campaign leaves a parseable
// partial result behind.
//
// The fields mirror campaign.RunResult flattened to plain JSON types;
// latencies are -1 when the mechanism never detected.
type RunRecord struct {
	// Index is the run's position in the campaign's fault list; records
	// arrive in completion order, not index order.
	Index int `json:"index"`

	// Fault site identity.
	Router    int    `json:"router"`
	Signal    string `json:"signal"` // fault.Kind string, e.g. "sa1_gnt"
	Port      int    `json:"port"`
	VC        int    `json:"vc"` // -1 for per-port signals
	Bit       int    `json:"bit"`
	FaultType string `json:"fault_type"` // transient/permanent/intermittent
	Cycle     int64  `json:"inject_cycle"`

	// Run behaviour.
	Fired    bool `json:"fired"`
	Drained  bool `json:"drained"`
	FastPath bool `json:"fast_path"`

	// Golden-reference verdict.
	Malicious bool `json:"malicious"`
	Unbounded bool `json:"unbounded"`

	// Per-mechanism classification ("TP"/"FP"/"TN"/"FN") and detection
	// latency in cycles.
	Outcome         string `json:"nocalert_outcome"`
	Latency         int64  `json:"nocalert_latency"`
	CautiousOutcome string `json:"cautious_outcome"`
	CautiousLatency int64  `json:"cautious_latency"`
	ForeverOutcome  string `json:"forever_outcome"`
	ForeverLatency  int64  `json:"forever_latency"`

	// Checker attribution: every checker that fired during the run, and
	// the subset asserted in the first detection cycle. Carrying these
	// makes the record stream sufficient to rebuild the aggregated
	// report (Figures 8 and 9) bit-identically, which is what lets
	// sharded campaigns merge into the same report an unsharded run
	// produces.
	CheckersFired      []int `json:"checkers_fired,omitempty"`
	FirstCycleCheckers []int `json:"first_cycle_checkers,omitempty"`

	// WallSeconds is the run's wall-clock cost on its worker. It is the
	// one field that legitimately differs between two executions of the
	// same fault; canonical comparisons (CanonicalBytes) zero it.
	WallSeconds float64 `json:"wall_seconds"`
}

// CanonicalBytes returns the record's canonical JSON: WallSeconds —
// the only execution-dependent field — zeroed, everything else as
// written. Two runs of the same fault from the same campaign spec are
// canonical-byte-identical, which is what resume verification, shard
// merging and golden fixtures compare.
func (r *RunRecord) CanonicalBytes() []byte {
	c := *r
	c.WallSeconds = 0
	b, err := json.Marshal(&c)
	if err != nil {
		// RunRecord contains only plain JSON-marshalable types.
		panic(fmt.Sprintf("trace: canonical marshal: %v", err))
	}
	return b
}

// RunWriter streams RunRecords as NDJSON — one compact JSON object per
// line. Write is safe for concurrent use (the campaign serializes
// OnResult, but the writer does not rely on it). Each record reaches
// the underlying writer before Write returns, so an interrupted
// campaign keeps every completed run on disk — only a line torn by a
// hard kill mid-write is lost, and ReadRunRecords tolerates that.
type RunWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     *json.Encoder
	records int
}

// NewRunWriter returns a writer streaming to w.
func NewRunWriter(w io.Writer) *RunWriter {
	bw := bufio.NewWriter(w)
	return &RunWriter{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record as a single NDJSON line. The buffer
// assembles the line, then drains, so the underlying writer sees whole
// records (one write per run, far off the simulation's hot path).
func (rw *RunWriter) Write(rec *RunRecord) error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if err := rw.enc.Encode(rec); err != nil { // Encode appends the newline
		return err
	}
	if err := rw.bw.Flush(); err != nil {
		return err
	}
	rw.records++
	return nil
}

// Records returns the number of records written so far.
func (rw *RunWriter) Records() int {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.records
}

// Flush drains the buffer to the underlying writer.
func (rw *RunWriter) Flush() error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.bw.Flush()
}

// ReadRunRecords parses an NDJSON run trace, tolerating a truncated
// final line (the normal shape of an interrupted campaign): complete
// records before the truncation are returned with a nil error.
func ReadRunRecords(r io.Reader) ([]RunRecord, error) {
	return DecodeTolerant[RunRecord](r)
}
