package trace

import (
	"bytes"
	"strings"
	"testing"

	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// The two passive observers must survive network forks — a campaign
// worker clones the warmed network per run, and monitors that do not
// implement CloneableMonitor are silently dropped from the copy.
var (
	_ sim.CloneableMonitor = (*PathMonitor)(nil)
	_ sim.CloneableMonitor = (*EventLog)(nil)
)

// TestMonitorsSurviveClone is the regression test for the silent-drop
// bug: attach both observers, fork the network, and require the fork to
// keep observing while leaving the original's records untouched.
func TestMonitorsSurviveClone(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	rc := router.Default(mesh)
	n := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.2, Seed: 7}, nil)
	pm := NewPathMonitor()
	el := &EventLog{}
	n.AttachMonitor(pm)
	n.AttachMonitor(el)
	n.Run(200)
	if len(el.Ejections) == 0 {
		t.Fatal("no ejections after 200 loaded cycles; test premise broken")
	}

	c := n.Clone(nil)
	if got := len(c.Monitors()); got != 2 {
		t.Fatalf("clone carried %d monitors, want 2", got)
	}
	var cpm *PathMonitor
	var cel *EventLog
	for _, m := range c.Monitors() {
		switch v := m.(type) {
		case *PathMonitor:
			cpm = v
		case *EventLog:
			cel = v
		}
	}
	if cpm == nil || cel == nil {
		t.Fatalf("clone's monitors have wrong types: %T", c.Monitors())
	}
	if cpm == pm || cel == el {
		t.Fatal("clone shares monitor instances with the original")
	}

	atFork := len(el.Ejections)
	if len(cel.Ejections) != atFork {
		t.Fatalf("clone's event log starts with %d ejections, want the fork-point %d", len(cel.Ejections), atFork)
	}

	// Only the clone advances: its log grows, the original's does not.
	c.Run(200)
	if len(cel.Ejections) <= atFork {
		t.Fatal("clone's EventLog stopped observing after the fork")
	}
	if len(el.Ejections) != atFork {
		t.Fatalf("running the clone mutated the original's log (%d != %d)", len(el.Ejections), atFork)
	}
	if len(cpm.Packets()) == 0 {
		t.Fatal("clone's PathMonitor recorded no packets after the fork")
	}

	// Clone paths validate hop by hop, like the original's.
	for _, id := range cpm.Packets() {
		hops := cpm.Path(id)
		if len(hops) == 0 || hops[len(hops)-1].OutPort != topology.Local {
			continue // in flight at snapshot time
		}
		src := hops[0].Router
		dest := hops[len(hops)-1].Router
		if err := ValidatePath(mesh, hops, src, dest); err != nil {
			t.Fatalf("clone recorded invalid path for packet %d: %v", id, err)
		}
	}
}

// TestRunWriterRoundTrip streams records through the NDJSON writer and
// reads them back.
func TestRunWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewRunWriter(&buf)
	recs := []RunRecord{
		{Index: 2, Router: 5, Signal: "sa1_gnt", Port: 1, VC: -1, Bit: 3,
			FaultType: "transient", Cycle: 100, Fired: true, Drained: true,
			Malicious: false, Outcome: "FP", Latency: 0, CautiousOutcome: "FP",
			CautiousLatency: 0, ForeverOutcome: "TN", ForeverLatency: -1,
			WallSeconds: 0.012},
		{Index: 0, Router: 1, Signal: "rc_in_dest_x", Port: 0, VC: -1, Bit: 0,
			FaultType: "transient", Cycle: 100, FastPath: true,
			Outcome: "TN", Latency: -1, CautiousOutcome: "TN", CautiousLatency: -1,
			ForeverOutcome: "TN", ForeverLatency: -1, WallSeconds: 0.0004},
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 2 {
		t.Fatalf("Records() = %d, want 2", w.Records())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("NDJSON output has %d lines, want 2:\n%s", lines, buf.String())
	}

	got, err := ReadRunRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("read %d records, want 2", len(got))
	}
	for i := range recs {
		// RunRecord now carries slices; compare canonical bytes plus the
		// one field canonicalization drops.
		if !bytes.Equal(got[i].CanonicalBytes(), recs[i].CanonicalBytes()) ||
			got[i].WallSeconds != recs[i].WallSeconds {
			t.Fatalf("record %d round-trip mismatch:\ngot  %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

// TestReadRunRecordsTruncated: a torn final line (interrupted campaign)
// must yield the complete prefix without an error.
func TestReadRunRecordsTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewRunWriter(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Write(&RunRecord{Index: i, Outcome: "TN"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	torn := buf.String() + `{"index":3,"nocalert_ou`
	got, err := ReadRunRecords(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("truncated trace returned error %v, want nil", err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d records from truncated trace, want 3", len(got))
	}
}
