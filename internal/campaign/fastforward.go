package campaign

import (
	"nocalert/internal/core"
	"nocalert/internal/forever"
	"nocalert/internal/sim"
)

// runStats counts what one run actually cost versus what it skipped:
// the honest accounting behind the throughput metrics, so synthesized
// and skipped-prefix cycles never inflate the live gauges.
type runStats struct {
	// simulated is the number of cycles the run really stepped,
	// including any fork replay below the injection cycle.
	simulated int64
	// warmSaved is the prefix [0, snapshot) the fork never simulated.
	warmSaved int64
	// synthesized counts cycles whose outcome was derived instead of
	// stepped: reconvergence tails through the window end, and frozen
	// drain/horizon remainders.
	synthesized int64
	// horizon is the run's logical end cycle — the boundary the
	// accounting covers — so warmSaved + simulated + synthesized ==
	// horizon at every exit path (the span-attribute invariant the
	// observability tests enforce).
	horizon int64
	// forked reports the run warm-started above cycle 0.
	forked bool
	// frontier reports the run was driven by the divergence-frontier
	// delta engine; frontierPeak is the largest router count the
	// frontier reached and frontierJoins how many lazy materializations
	// it performed. simulated stays cycle-based regardless (a frontier
	// cycle counts as one simulated cycle however few routers stepped),
	// preserving the warmSaved + simulated + synthesized == horizon
	// invariant.
	frontier      bool
	frontierPeak  int
	frontierJoins int64
}

// ffBackoffCap bounds the exponential backoff between fixed-point probe
// attempts, so livelocked runs that never freeze pay a static
// fingerprint on a few percent of their cycles at worst.
const ffBackoffCap = 64

// ffProbe detects frozen network states during a run's drain and
// ForEVeR-horizon phases. A state is provably frozen when (a) the fault
// plane can never fire again, (b) no ForEVeR checker-network
// notification is in flight, and (c) the cycle-independent state
// fingerprint is identical at two consecutive cycle boundaries. Every
// stamped queue in the simulator carries at most one cycle of lookahead
// and injection is off in both phases (no RNG draws), so (c) alone
// makes the network state a fixed point; (a)–(b) extend that fixed
// point to the fault plane and ForEVeR's verdict-relevant state. What
// remains is exactly reconstructible without stepping: ForEVeR's
// epoch-boundary bookkeeping via forever.Monitor.ProjectFrozenDetection,
// and the NoCAlert engine's accumulators via core.Engine.AdvanceSteady —
// a deadlocked router re-emits the identical assertion multiset every
// cycle (checkers are pure functions of the signal record), and the
// probe captures that multiset across its confirming step.
type ffProbe struct {
	fp      uint64
	fpCycle int64 // boundary fp was taken at; -1 when not armed
	mark    core.AccumMark
	nextTry int64
	gap     int64
}

// frozen reports whether the network at the current cycle boundary is
// provably a fixed point. Call it at every boundary of a phase loop: it
// arms on one boundary and confirms on the next, backing off after each
// failed pair. On confirmation p.mark spans exactly the probed step, so
// extend can replay the steady assertion pattern.
func (p *ffProbe) frozen(n *sim.Network, eng *core.Engine, fv *forever.Monitor) bool {
	if p.gap == 0 {
		p.gap, p.fpCycle = 1, -1
	}
	if !n.FaultsQuiescent() || (fv != nil && !fv.PendingEmpty()) {
		p.fpCycle = -1
		return false
	}
	t := n.Cycle()
	if t < p.nextTry {
		return false
	}
	fp := n.StaticFingerprint()
	if p.fpCycle == t-1 {
		if p.fp == fp && eng.AdvanceSteady(p.mark, 0) {
			return true
		}
		// Still evolving (or the steady pattern can't be synthesized):
		// back off before paying for the next pair.
		if p.gap < ffBackoffCap {
			p.gap *= 2
		}
		p.nextTry = t + p.gap
		p.fpCycle = -1
		return false
	}
	p.fp, p.fpCycle, p.mark = fp, t, eng.Mark()
	return false
}

// extend folds m synthesized cycles of the frozen state's assertion
// pattern into the engine, keeping its accumulators bit-identical to a
// full simulation of those cycles. Only valid after frozen returned
// true (the mark spans the confirming step) with no steps since.
func (p *ffProbe) extend(eng *core.Engine, m int64) {
	eng.AdvanceSteady(p.mark, m)
}
