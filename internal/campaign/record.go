package campaign

import (
	"fmt"
	"time"

	"nocalert/internal/core"
	"nocalert/internal/fault"
	"nocalert/internal/golden"
	"nocalert/internal/trace"
)

// ParseOutcome maps an outcome's abbreviation ("TP"/"FP"/"TN"/"FN")
// back to the Outcome — the inverse of Outcome.String, used when
// rebuilding results from serialized run records.
func ParseOutcome(s string) (Outcome, error) {
	switch s {
	case "TN":
		return TrueNegative, nil
	case "TP":
		return TruePositive, nil
	case "FP":
		return FalsePositive, nil
	case "FN":
		return FalseNegative, nil
	}
	return 0, fmt.Errorf("campaign: unknown outcome %q", s)
}

// RecordFor flattens one run result into the NDJSON trace/checkpoint
// record schema. index is the run's global position in the campaign's
// fault universe; latencies are -1 when the mechanism never detected.
// The record carries everything ReportFromRecords needs to rebuild the
// aggregated report bit-identically.
func RecordFor(index int, res *RunResult, wall time.Duration, fastPath bool) trace.RunRecord {
	lat := func(detected bool, l int64) int64 {
		if !detected {
			return -1
		}
		return l
	}
	ids := func(cs []core.CheckerID) []int {
		if len(cs) == 0 {
			return nil
		}
		out := make([]int, len(cs))
		for i, c := range cs {
			out[i] = int(c)
		}
		return out
	}
	return trace.RunRecord{
		Index:              index,
		Router:             res.Fault.Site.Router,
		Signal:             res.Fault.Site.Kind.String(),
		Port:               res.Fault.Site.Port,
		VC:                 res.Fault.Site.VC,
		Bit:                res.Fault.Bit,
		FaultType:          res.Fault.Type.String(),
		Cycle:              res.Fault.Cycle,
		Fired:              res.Fired,
		Drained:            res.Drained,
		FastPath:           fastPath,
		Malicious:          !res.Verdict.OK(),
		Unbounded:          res.Verdict.Unbounded,
		Outcome:            res.Outcome.String(),
		Latency:            lat(res.Detected, res.Latency),
		CautiousOutcome:    res.CautiousOutcome.String(),
		CautiousLatency:    lat(res.CautiousDetected, res.CautiousLatency),
		ForeverOutcome:     res.ForeverOutcome.String(),
		ForeverLatency:     lat(res.ForeverDetected, res.ForeverLatency),
		CheckersFired:      ids(res.CheckersFired),
		FirstCycleCheckers: ids(res.FirstCycleCheckers),
		WallSeconds:        wall.Seconds(),
	}
}

// resultFromRecord inverts RecordFor: it rebuilds the RunResult fields
// the aggregated report reads. Fields the record does not carry (the
// simultaneity histogram, the full verdict breakdown) stay zero; no
// report aggregation consumes them. The synthetic Verdict reproduces
// only OK() and Unbounded, which is all the reducers ask of it. The
// record's own fault cycle anchors DetectCycle, so mixed-injection-cycle
// universes rebuild correctly.
func resultFromRecord(rec *trace.RunRecord) (RunResult, error) {
	kind, err := fault.ParseKind(rec.Signal)
	if err != nil {
		return RunResult{}, err
	}
	typ, err := fault.ParseType(rec.FaultType)
	if err != nil {
		return RunResult{}, err
	}
	f := fault.Fault{
		Site:  fault.Site{Router: rec.Router, Kind: kind, Port: rec.Port, VC: rec.VC},
		Bit:   rec.Bit,
		Cycle: rec.Cycle,
		Type:  typ,
	}
	res := RunResult{
		Fault:   f,
		Group:   []fault.Fault{f},
		Fired:   rec.Fired,
		Drained: rec.Drained,
	}
	if rec.Malicious {
		if rec.Unbounded {
			res.Verdict = golden.Verdict{Unbounded: true}
		} else {
			// Which correctness rule failed is not recorded; one dropped
			// flit stands in to make Verdict.OK() false.
			res.Verdict = golden.Verdict{Dropped: 1}
		}
	}
	if res.Outcome, err = ParseOutcome(rec.Outcome); err != nil {
		return RunResult{}, err
	}
	if res.CautiousOutcome, err = ParseOutcome(rec.CautiousOutcome); err != nil {
		return RunResult{}, err
	}
	if res.ForeverOutcome, err = ParseOutcome(rec.ForeverOutcome); err != nil {
		return RunResult{}, err
	}
	res.Detected = res.Outcome == TruePositive || res.Outcome == FalsePositive
	res.Latency = rec.Latency
	if res.Detected {
		res.DetectCycle = rec.Cycle + rec.Latency
	} else {
		res.DetectCycle = -1
	}
	res.CautiousDetected = res.CautiousOutcome == TruePositive || res.CautiousOutcome == FalsePositive
	res.CautiousLatency = rec.CautiousLatency
	res.ForeverDetected = res.ForeverOutcome == TruePositive || res.ForeverOutcome == FalsePositive
	res.ForeverLatency = rec.ForeverLatency
	if len(rec.CheckersFired) > 0 {
		res.CheckersFired = make([]core.CheckerID, len(rec.CheckersFired))
		for i, id := range rec.CheckersFired {
			res.CheckersFired[i] = core.CheckerID(id)
		}
	}
	if len(rec.FirstCycleCheckers) > 0 {
		res.FirstCycleCheckers = make([]core.CheckerID, len(rec.FirstCycleCheckers))
		for i, id := range rec.FirstCycleCheckers {
			res.FirstCycleCheckers[i] = core.CheckerID(id)
		}
	}
	return res, nil
}
