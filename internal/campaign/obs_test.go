package campaign

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"nocalert/internal/fault"
	"nocalert/internal/forever"
	"nocalert/internal/metrics"
	"nocalert/internal/obs"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// obsOpts returns the observability test campaign: a 4×4 mesh with
// enough faults to exercise every exit path (fastpath, reconverged,
// full, frozen fast-forward).
func obsOpts(nFaults int) Options {
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	return Options{
		Sim:           sim.Config{Router: rc, InjectionRate: 0.12, Seed: 3},
		InjectCycle:   300,
		PostInjectRun: 400,
		DrainDeadline: 5000,
		Forever:       forever.Options{Epoch: 400, HopLatency: 1},
		Faults:        SampleFaults(params, nFaults, 5, 300),
	}
}

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// childIndex maps parent span ID → child phase names.
func childPhases(spans []obs.SpanRecord) map[string][]string {
	out := map[string][]string{}
	for _, s := range spans {
		if s.Kind == "phase" {
			out[s.ParentID] = append(out[s.ParentID], s.Name)
		}
	}
	return out
}

func hasPhase(phases []string, name string) bool {
	for _, p := range phases {
		if p == name {
			return true
		}
	}
	return false
}

// TestSpanStreamGolden4x4 is the tentpole acceptance test: a 4×4
// campaign with tracing on produces a span stream where every run's
// cycle accounting closes (fork_cycle + cycles_simulated +
// cycles_synthesized == horizon_cycle), exit paths carry their phase
// spans, per-exit span counts match the report's counters, and the
// serialized report is byte-identical to an untraced run's.
func TestSpanStreamGolden4x4(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	const nFaults = 80
	plain, err := Run(obsOpts(nFaults))
	if err != nil {
		t.Fatal(err)
	}

	var stream, dumpSink bytes.Buffer
	reg := metrics.NewRegistry()
	tr := obs.New(obs.Options{Writer: &stream, Metrics: reg})
	fr := obs.NewFlightRecorder(0, &dumpSink)
	o := obsOpts(nFaults)
	o.Metrics = reg
	o.Tracer = tr
	o.FlightRecorder = fr
	traced, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// Tracing must be result-invisible: byte-identical reports.
	if !bytes.Equal(reportJSON(t, plain), reportJSON(t, traced)) {
		t.Error("report JSON differs between traced and untraced campaigns")
	}

	spans, err := obs.ReadSpans(&stream)
	if err != nil {
		t.Fatal(err)
	}
	var campSpan *obs.SpanRecord
	runSpans := map[string]obs.SpanRecord{}
	for i, s := range spans {
		if s.TraceID != tr.TraceID() {
			t.Fatalf("span %s carries foreign trace ID %s", s.SpanID, s.TraceID)
		}
		switch s.Kind {
		case "campaign":
			campSpan = &spans[i]
		case "run":
			runSpans[s.SpanID] = s
		}
	}
	if campSpan == nil {
		t.Fatal("no campaign span in the stream")
	}
	if len(runSpans) != nFaults {
		t.Fatalf("%d run spans, want %d (SampleEvery=1)", len(runSpans), nFaults)
	}
	phases := childPhases(spans)
	if !hasPhase(phases[campSpan.SpanID], "golden-warmup") {
		t.Error("campaign span has no golden-warmup phase")
	}

	exitCounts := map[string]int{}
	for id, s := range runSpans {
		if s.ParentID != campSpan.SpanID {
			t.Errorf("run span %s not parented to the campaign span", id)
		}
		fork, ok1 := s.Int("fork_cycle")
		simd, ok2 := s.Int("cycles_simulated")
		synth, ok3 := s.Int("cycles_synthesized")
		horizon, ok4 := s.Int("horizon_cycle")
		if !ok1 || !ok2 || !ok3 || !ok4 {
			t.Fatalf("run span %s missing accounting attrs: %v", id, s.Attrs)
		}
		if fork+simd+synth != horizon {
			t.Errorf("run span %s: fork %d + simulated %d + synthesized %d != horizon %d",
				id, fork, simd, synth, horizon)
		}
		exit, _ := s.Attrs["exit"].(string)
		exitCounts[exit]++
		ph := phases[id]
		switch exit {
		case "reconverged":
			if !hasPhase(ph, "reconverged-tail") {
				t.Errorf("reconverged run %s has no reconverged-tail phase", id)
			}
		case "fastpath":
			if !hasPhase(ph, "fault-armed") {
				t.Errorf("fastpath run %s has no fault-armed phase", id)
			}
		case "full":
			if !hasPhase(ph, "drain") {
				t.Errorf("full run %s has no drain phase", id)
			}
			if synth > 0 && !hasPhase(ph, "fast-forward") {
				t.Errorf("fast-forwarded run %s (synthesized=%d) has no fast-forward phase", id, synth)
			}
		default:
			t.Errorf("run span %s has unknown exit %q", id, exit)
		}
		if forked, _ := s.Attrs["forked"].(bool); forked && !hasPhase(ph, "warm-start") {
			t.Errorf("forked run %s has no warm-start phase", id)
		}
	}
	if exitCounts["fastpath"] != traced.FastPathHits {
		t.Errorf("fastpath spans %d != report hits %d", exitCounts["fastpath"], traced.FastPathHits)
	}
	if exitCounts["reconverged"] != traced.ReconvergedHits {
		t.Errorf("reconverged spans %d != report hits %d", exitCounts["reconverged"], traced.ReconvergedHits)
	}
	if exitCounts["fastpath"] == 0 || exitCounts["full"] == 0 {
		t.Errorf("campaign too uniform to exercise exits: %v", exitCounts)
	}

	// The phase-duration histograms fed from phase spans and the new
	// detection-latency histogram must be live in the registry.
	snap := reg.Snapshot()
	hist := map[string]int64{}
	for _, h := range snap.Histograms {
		hist[h.Name] = h.Count
	}
	if hist[obs.PhaseMetricName("drain")] == 0 {
		t.Error("campaign_phase_drain_seconds histogram never fed")
	}
	detected := 0
	for _, r := range traced.Results {
		if r.Detected {
			detected++
		}
	}
	if hist[MetricDetectionLatency] != int64(detected) {
		t.Errorf("detection-latency count %d != detected runs %d", hist[MetricDetectionLatency], detected)
	}

	// The flight recorder saw fork verifications and detections; no
	// anomaly fired on a clean campaign.
	if fr.Dumps() != 0 {
		t.Errorf("clean campaign fired %d anomaly dumps:\n%s", fr.Dumps(), dumpSink.String())
	}
	kinds := map[string]bool{}
	for _, ev := range fr.Events() {
		kinds[ev.Kind] = true
	}
	if detected > 0 && !kinds["detection"] {
		t.Error("no detection events in the flight recorder")
	}
}

// TestSpanSamplingDeterministic checks run-span sampling: with
// SampleEvery=4 only indices 0, 4, 8, ... carry run spans, and
// campaign-level spans are never sampled out.
func TestSpanSamplingDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	const nFaults = 17
	var stream bytes.Buffer
	tr := obs.New(obs.Options{Writer: &stream, SampleEvery: 4})
	o := obsOpts(nFaults)
	o.Tracer = tr
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	spans, err := obs.ReadSpans(&stream)
	if err != nil {
		t.Fatal(err)
	}
	var runs, camps int
	for _, s := range spans {
		switch s.Kind {
		case "run":
			runs++
			idx, ok := s.Int("run_index")
			if !ok || idx%4 != 0 {
				t.Errorf("unsampled run index %d has a span", idx)
			}
		case "campaign":
			camps++
		}
	}
	if want := (nFaults + 3) / 4; runs != want {
		t.Errorf("%d run spans, want %d", runs, want)
	}
	if camps != 1 {
		t.Errorf("%d campaign spans, want 1", camps)
	}
}

// TestForkVerifyMismatchDumpsFlightRecorder corrupts the recorded
// fork-point fingerprint and checks the fork fails AND auto-dumps the
// flight-recorder ring — the black box firing on the engine's most
// important trust boundary.
func TestForkVerifyMismatchDumpsFlightRecorder(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	n, err := sim.New(sim.Config{Router: rc, InjectionRate: 0.12, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(50)
	snap := snapshot{cycle: n.Cycle(), net: n.CloneInto(nil, nil)}
	n.Run(50)
	gc := &groupCtx{cycle: n.Cycle(), snap: &snap, forkFP: n.Fingerprint() ^ 0xdead}

	var sink bytes.Buffer
	fr := obs.NewFlightRecorder(16, &sink)
	ro := &runObs{fr: fr, idx: 7}
	var w worker
	var st runStats
	if _, err := w.fork(gc, fault.NewPlane(), &st, ro); err == nil {
		t.Fatal("fork with corrupted fingerprint succeeded")
	}
	if fr.Dumps() != 1 {
		t.Fatalf("fork mismatch fired %d dumps, want 1", fr.Dumps())
	}
	dumps, err := obs.ReadDumps(&sink)
	if err != nil || len(dumps) != 1 {
		t.Fatalf("ReadDumps: %v (%d dumps)", err, len(dumps))
	}
	if dumps[0].Reason != "fork fingerprint mismatch" {
		t.Errorf("dump reason = %q", dumps[0].Reason)
	}
	last := dumps[0].Events[len(dumps[0].Events)-1]
	if last.Kind != "fork_verify" || last.Run != 7 {
		t.Errorf("anomaly event = %+v, want fork_verify on run 7", last)
	}
}

// TestMissedDetectionAnomaly checks an FN verdict auto-dumps: the
// paper's zero-false-negative claim failing is exactly what the black
// box must capture.
func TestMissedDetectionAnomaly(t *testing.T) {
	var sink bytes.Buffer
	fr := obs.NewFlightRecorder(8, &sink)
	ro := &runObs{fr: fr, idx: 3}
	res := RunResult{Outcome: FalseNegative}
	var st runStats
	ro.finish(&res, ExitFull, 0, &st, 300)
	if fr.Dumps() != 1 {
		t.Fatalf("FN verdict fired %d dumps, want 1", fr.Dumps())
	}
	if !strings.Contains(sink.String(), "missed detection") {
		t.Errorf("dump does not name the missed detection: %s", sink.String())
	}
}

// TestNilObsIsFree pins the disabled path: campaign code must accept a
// nil *runObs everywhere (the Tracer==nil, FlightRecorder==nil fast
// path allocates nothing).
func TestNilObsIsFree(t *testing.T) {
	var ro *runObs
	ro.event("x", 0, "", nil)
	ro.anomaly("x", "y", 0, "")
	ro.fail(fmt.Errorf("e"))
	ro.finish(&RunResult{}, ExitFull, 0, &runStats{}, 0)
	if s := ro.phase("p"); s != nil {
		t.Fatal("nil runObs produced a span")
	}
}
