package campaign

import (
	"nocalert/internal/core"
	"nocalert/internal/obs"
)

// runObs bundles the observability context one run threads through
// fork, window, drain and horizon: its run span (nil when tracing is
// off or the run is sampled out) and the campaign's flight recorder.
// A nil *runObs is the fully-disabled path — every method no-ops — so
// the hot loops pay one pointer check when observability is off.
type runObs struct {
	span *obs.Span
	fr   *obs.FlightRecorder
	idx  int // run index in FaultGroups; -1 for the golden template run
}

// phase opens a phase span under the run span (nil when the run span
// is nil, so phases inherit the run's sampling decision).
func (ro *runObs) phase(name string) *obs.Span {
	if ro == nil {
		return nil
	}
	return ro.span.Child("phase", name)
}

// event records one flight-recorder entry stamped with the run index.
func (ro *runObs) event(kind string, cycle int64, detail string, attrs map[string]any) {
	if ro == nil {
		return
	}
	ro.fr.Record(obs.Event{Run: ro.idx, Cycle: cycle, Kind: kind, Detail: detail, Attrs: attrs})
}

// anomaly records the event and dumps the flight-recorder ring.
func (ro *runObs) anomaly(reason, kind string, cycle int64, detail string) {
	if ro == nil {
		return
	}
	ro.fr.Anomaly(reason, obs.Event{Run: ro.idx, Cycle: cycle, Kind: kind, Detail: detail})
}

// fail closes the run span on the error path.
func (ro *runObs) fail(err error) {
	if ro == nil || ro.span == nil {
		return
	}
	ro.span.SetAttr("error", err.Error())
	ro.span.End()
}

// finish stamps the run span with the result and the honest cycle
// accounting, emits the detection flight event, fires the
// missed-detection anomaly, and closes the span. The attribute
// invariant every exit path satisfies (test-enforced):
//
//	fork_cycle + cycles_simulated + cycles_synthesized == horizon_cycle
func (ro *runObs) finish(res *RunResult, exit ExitPath, convCycles int64, st *runStats, injectCycle int64) {
	if ro == nil {
		return
	}
	if res.Detected {
		ro.event("detection", res.DetectCycle, res.Outcome.String(), map[string]any{
			"latency":  res.Latency,
			"checkers": res.FirstCycleCheckers,
		})
	}
	if res.Outcome == FalseNegative {
		// The paper's headline claim is zero NoCAlert false negatives;
		// one showing up is exactly what the black box exists for.
		ro.anomaly("missed detection: NoCAlert FN verdict", "assertion", injectCycle,
			res.Fault.String()+" verdict="+res.Verdict.String())
	}
	if ro.span == nil {
		return
	}
	s := ro.span
	s.SetAttr("run_index", ro.idx)
	s.SetAttr("inject_cycle", injectCycle)
	s.SetAttr("fork_cycle", st.warmSaved)
	s.SetAttr("forked", st.forked)
	s.SetAttr("cycles_simulated", st.simulated)
	s.SetAttr("cycles_synthesized", st.synthesized)
	s.SetAttr("horizon_cycle", st.horizon)
	if st.frontier {
		s.SetAttr("frontier_peak_routers", st.frontierPeak)
		s.SetAttr("frontier_joins", st.frontierJoins)
	}
	s.SetAttr("exit", exit.String())
	s.SetAttr("fired", res.Fired)
	s.SetAttr("drained", res.Drained)
	s.SetAttr("verdict_ok", res.Verdict.OK())
	s.SetAttr("outcome", res.Outcome.String())
	s.SetAttr("detected", res.Detected)
	if res.Detected {
		s.SetAttr("detect_cycle", res.DetectCycle)
		s.SetAttr("latency", res.Latency)
		s.SetAttr("checkers_fired", checkerInts(res.CheckersFired))
	}
	if exit == ExitReconverged {
		s.SetAttr("reconverged_cycles", convCycles)
	}
	s.End()
}

// checkerInts converts checker IDs to plain int64s so the span attrs
// JSON- and OTLP-encode as a numeric array.
func checkerInts(ids []core.CheckerID) []int64 {
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	return out
}
