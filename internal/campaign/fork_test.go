package campaign

import (
	"bytes"
	"testing"
	"time"

	"nocalert/internal/fault"
	"nocalert/internal/forever"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
	"nocalert/internal/trace"
)

// reportBytes renders a report's committed JSON form, the byte-identity
// currency every fork/fast-forward gate below trades in.
func reportBytes(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// multiCycleOptions builds a campaign whose universe spreads over
// several distinct injection cycles, so forking has real prefixes to
// skip and real gaps to replay.
func multiCycleOptions(mesh topology.Mesh, nFaults int, seed uint64, cycles []int64, post, drain, epoch int64) Options {
	rc := router.Default(mesh)
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	faults := SampleFaults(params, nFaults, seed, cycles[0])
	for i := range faults {
		faults[i].Cycle = cycles[i%len(cycles)]
	}
	return Options{
		Sim:           sim.Config{Router: rc, InjectionRate: 0.12, Seed: 3},
		InjectCycle:   cycles[0],
		PostInjectRun: post,
		DrainDeadline: drain,
		Forever:       forever.Options{Epoch: epoch, HopLatency: 1},
		Faults:        faults,
		Workers:       1,
	}
}

// TestForkByteIdentity is the acceptance gate for injection-point
// forking: a campaign with warm starts enabled must produce the exact
// WriteJSON bytes of the same campaign re-simulating every [0,
// injection) prefix from scratch — at 4×4 and at a small 8×8 sample,
// over a multi-cycle universe so forks genuinely skip prefixes.
func TestForkByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	cases := []struct {
		name   string
		mesh   topology.Mesh
		faults int
		cycles []int64
	}{
		{"4x4", topology.NewMesh(4, 4), 48, []int64{150, 400, 650}},
		{"8x8", topology.NewMesh(8, 8), 10, []int64{200, 500}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			on := multiCycleOptions(tc.mesh, tc.faults, 7, tc.cycles, 200, 2500, 300)
			onRep, err := Run(on)
			if err != nil {
				t.Fatal(err)
			}
			off := multiCycleOptions(tc.mesh, tc.faults, 7, tc.cycles, 200, 2500, 300)
			off.DisableFork = true
			offRep, err := Run(off)
			if err != nil {
				t.Fatal(err)
			}
			if onRep.ForkedRuns == 0 {
				t.Fatal("no run warm-started above cycle 0; the multi-cycle premise is broken")
			}
			if offRep.ForkedRuns != 0 {
				t.Fatalf("ForkedRuns = %d with forking disabled, want 0", offRep.ForkedRuns)
			}
			if onRep.WarmstartCyclesSaved == 0 {
				t.Fatal("forked campaign reports zero warm-start savings")
			}
			if got, want := reportBytes(t, onRep), reportBytes(t, offRep); !bytes.Equal(got, want) {
				t.Fatalf("reports differ between fork on and off (%d vs %d bytes)", len(got), len(want))
			}
			t.Logf("%s: %d/%d runs forked, %d prefix cycles skipped, %d snapshots (%d bytes)",
				tc.name, onRep.ForkedRuns, len(onRep.Results), onRep.WarmstartCyclesSaved,
				onRep.SnapshotCount, onRep.SnapshotBytes)
		})
	}
}

// TestSnapshotRestoreLockstep proves a restored snapshot is the golden
// state: a clone captured mid-run must stay fingerprint-lockstep with
// the original for 100 cycles of further simulation.
func TestSnapshotRestoreLockstep(t *testing.T) {
	rc := router.Default(topology.NewMesh(4, 4))
	n, err := sim.New(sim.Config{Router: rc, InjectionRate: 0.15, Seed: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.AttachMonitor(forever.NewMonitor(n.RouterConfig(), forever.Options{Epoch: 50, HopLatency: 1}))
	n.Run(137) // an off-boundary capture point, mid-traffic

	restored := n.CloneInto(nil, nil)
	if got, want := restored.Fingerprint(), n.Fingerprint(); got != want {
		t.Fatalf("restored fingerprint %x differs from golden %x at the capture cycle", got, want)
	}
	for i := 0; i < 100; i++ {
		n.Step()
		restored.Step()
		if got, want := restored.Fingerprint(), n.Fingerprint(); got != want {
			t.Fatalf("restored network diverged from golden at cycle %d: %x vs %x", n.Cycle(), got, want)
		}
	}
}

// TestSnapshotIntervalSweep pins that the snapshot spacing is purely a
// time/memory trade: every interval — denser than the injection grid,
// coprime to it, sparser than it, and far past the horizon — must yield
// the identical report bytes as the adaptive plan.
func TestSnapshotIntervalSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	mesh := topology.NewMesh(4, 4)
	cycles := []int64{60, 75, 90}
	base := multiCycleOptions(mesh, 24, 5, cycles, 150, 2000, 200)
	baseRep, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, baseRep)
	for _, interval := range []int64{1, 7, 64, 1 << 20} {
		o := multiCycleOptions(mesh, 24, 5, cycles, 150, 2000, 200)
		o.SnapshotInterval = interval
		rep, err := Run(o)
		if err != nil {
			t.Fatalf("interval %d: %v", interval, err)
		}
		if got := reportBytes(t, rep); !bytes.Equal(got, want) {
			t.Fatalf("interval %d report differs from the adaptive plan (%d vs %d bytes)", interval, len(got), len(want))
		}
		t.Logf("interval %d: %d snapshots, %d forked, %d warm-start cycles saved",
			interval, rep.SnapshotCount, rep.ForkedRuns, rep.WarmstartCyclesSaved)
	}
}

// TestFastForwardByteIdentity runs the golden-fixture campaign with
// frozen-state fast-forwarding on and off: the synthesized drain and
// horizon tails may only change how fast results are computed, never
// the results.
func TestFastForwardByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	onRep, err := Run(goldenOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	off := goldenOptions(t)
	off.DisableFastForward = true
	offRep, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	// Reconvergence tails synthesize cycles in both arms; fast-forward
	// must add frozen drain/horizon savings on top.
	if onRep.SynthesizedCycles <= offRep.SynthesizedCycles {
		t.Fatalf("fast-forwarding synthesized no extra cycles (%d on vs %d off); the frozen-state probe never fired",
			onRep.SynthesizedCycles, offRep.SynthesizedCycles)
	}
	if got, want := reportBytes(t, onRep), reportBytes(t, offRep); !bytes.Equal(got, want) {
		t.Fatalf("reports differ between fast-forward on and off (%d vs %d bytes)", len(got), len(want))
	}
	t.Logf("synthesized %d cycles (simulated %d)", onRep.SynthesizedCycles, onRep.SimulatedCycles)
}

// TestMultiCycleRecordRoundTrip closes the record loop for mixed
// injection cycles: a multi-cycle campaign's NDJSON records must
// rebuild into the exact report bytes of the live run, which is what
// lets sharded multi-cycle campaigns merge bit-identically.
func TestMultiCycleRecordRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	spec := Spec{
		MeshW: 4, MeshH: 4, VCs: 4,
		InjectionRate: 0.12,
		Seed:          3,
		InjectCycle:   100,
		InjectCycles:  []int64{100, 250, 420},
		PostInjectRun: 200,
		DrainDeadline: 2500,
		Epoch:         300,
		HopLatency:    1,
		NumFaults:     30,
	}
	opts := spec.Options()
	opts.Faults = spec.Universe()
	opts.Workers = 1
	var recs []trace.RunRecord
	opts.OnResult = func(i int, res *RunResult, wall time.Duration, exit ExitPath) {
		recs = append(recs, RecordFor(i, res, wall, exit == ExitFastPath))
	}
	liveRep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := ReportFromRecords(spec, recs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reportBytes(t, rebuilt), reportBytes(t, liveRep); !bytes.Equal(got, want) {
		t.Fatalf("rebuilt multi-cycle report differs from the live run (%d vs %d bytes)", len(got), len(want))
	}
	seen := map[int64]bool{}
	for _, r := range liveRep.Results {
		seen[r.Fault.Cycle] = true
	}
	for _, c := range spec.InjectCycles {
		if !seen[c] {
			t.Fatalf("no fault injected at cycle %d; round-robin restamping is broken", c)
		}
	}
}
