// Package campaign orchestrates the paper's fault-injection methodology
// (§5.2–5.4): one fault-free golden run plus one forked, fault-injected
// run per fault, each classified against the Golden Reference into
// true/false positives/negatives for NoCAlert, NoCAlert-Cautious and
// ForEVeR. The aggregated report regenerates Figures 6–9 and
// Observations 1–5.
//
// Forking works by warming a single network to the injection cycle and
// deep-cloning it per fault, so a cycle-32K campaign pays the warmup
// once. Runs execute on a small worker pool.
package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"nocalert/internal/core"
	"nocalert/internal/fault"
	"nocalert/internal/forever"
	"nocalert/internal/golden"
	"nocalert/internal/rng"
	"nocalert/internal/sim"
)

// Outcome classifies one mechanism's behaviour on one injected fault,
// following the paper's four categories (§5.4).
type Outcome int

const (
	// TrueNegative: nothing detected, fault benign.
	TrueNegative Outcome = iota
	// TruePositive: detected, fault caused a network-correctness
	// violation.
	TruePositive
	// FalsePositive: detected, fault benign.
	FalsePositive
	// FalseNegative: not detected, fault caused a violation — the
	// outcome NoCAlert's design goal drives to zero.
	FalseNegative
)

// String returns the outcome's abbreviation.
func (o Outcome) String() string {
	switch o {
	case TrueNegative:
		return "TN"
	case TruePositive:
		return "TP"
	case FalsePositive:
		return "FP"
	case FalseNegative:
		return "FN"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

func classify(detected, malicious bool) Outcome {
	switch {
	case detected && malicious:
		return TruePositive
	case detected && !malicious:
		return FalsePositive
	case !detected && malicious:
		return FalseNegative
	default:
		return TrueNegative
	}
}

// Options configures a campaign.
type Options struct {
	// Sim is the network and workload under test.
	Sim sim.Config
	// InjectCycle is the network state at which faults strike (the
	// paper uses 0, 32K and 64K).
	InjectCycle int64
	// PostInjectRun is how many cycles injection continues after the
	// fault, giving the perturbation live traffic to interact with.
	PostInjectRun int64
	// DrainDeadline bounds the drain phase; a network that cannot
	// empty by then violates bounded delivery.
	DrainDeadline int64
	// Forever tunes the ForEVeR baseline.
	Forever forever.Options
	// Faults is the list of faults to inject, one run each.
	Faults []fault.Fault
	// FaultGroups, when non-empty, replaces Faults: each group injects
	// together in one run — the multi-fault extension the paper leaves
	// as future work. All faults of a group must inject at InjectCycle.
	FaultGroups [][]fault.Fault
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// CheckersDisabled optionally ablates NoCAlert checkers.
	CheckersDisabled []core.CheckerID
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.PostInjectRun <= 0 {
		out.PostInjectRun = 500
	}
	if out.DrainDeadline <= 0 {
		out.DrainDeadline = 10000
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if len(out.FaultGroups) == 0 {
		if len(out.Faults) == 0 {
			return out, errors.New("campaign: no faults to inject")
		}
		out.FaultGroups = make([][]fault.Fault, len(out.Faults))
		for i, f := range out.Faults {
			out.FaultGroups[i] = []fault.Fault{f}
		}
	}
	for _, g := range out.FaultGroups {
		if len(g) == 0 {
			return out, errors.New("campaign: empty fault group")
		}
		for _, f := range g {
			if f.Cycle != o.InjectCycle {
				return out, fmt.Errorf("campaign: fault %v does not inject at cycle %d", &f, o.InjectCycle)
			}
		}
	}
	return out, nil
}

// RunResult is the outcome of one fault-injected run.
type RunResult struct {
	// Fault is the injected fault (the first of the group in
	// multi-fault runs; see Group).
	Fault fault.Fault
	// Group holds every fault of a multi-fault run.
	Group []fault.Fault
	// Fired reports whether the fault actually corrupted a live signal
	// (a fault on an idle module may never touch anything).
	Fired bool
	// Verdict is the golden-reference judgment.
	Verdict golden.Verdict
	// Drained reports whether the faulty network emptied in time.
	Drained bool

	// NoCAlert results.
	Detected    bool
	DetectCycle int64 // absolute cycle of first assertion
	Latency     int64 // DetectCycle - injection cycle
	Outcome     Outcome

	// NoCAlert-Cautious results (low-risk checkers 1 and 3 deferred).
	CautiousDetected bool
	CautiousLatency  int64
	CautiousOutcome  Outcome

	// ForEVeR results.
	ForeverDetected bool
	ForeverLatency  int64
	ForeverOutcome  Outcome

	// Checker attribution.
	CheckersFired      []core.CheckerID
	FirstCycleCheckers []core.CheckerID
	SimultaneityHist   []int64
}

// Report is the aggregated campaign output.
type Report struct {
	Opts Options
	// GoldenEjections is the number of flits the golden run delivered
	// after the injection cycle.
	GoldenEjections int
	// GoldenForeverFalsePositive reports whether ForEVeR flagged the
	// fault-free golden continuation (an epoch-tuning artifact).
	GoldenForeverFalsePositive bool
	// Results holds one entry per injected fault, in input order.
	Results []RunResult
}

// Run executes the campaign.
func Run(opts Options) (*Report, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}

	// Golden run: warm to the injection cycle, fork the base state,
	// then continue fault-free to produce the reference log.
	warm, err := sim.New(o.Sim, nil)
	if err != nil {
		return nil, err
	}
	warm.AttachMonitor(forever.NewMonitor(warm.RouterConfig(), o.Forever))
	for warm.Cycle() < o.InjectCycle {
		warm.Step()
	}
	base := warm.Clone(nil)

	goldenNet := warm // continues fault-free
	goldenNet.Run(o.PostInjectRun)
	goldenDrained := goldenNet.Drain(o.DrainDeadline)
	if !goldenDrained {
		return nil, fmt.Errorf("campaign: fault-free golden run failed to drain by cycle %d (inflight=%d)",
			goldenNet.Cycle(), goldenNet.InFlight())
	}
	runHorizonExtra := foreverHorizon(goldenNet.Cycle(), o.Forever)
	for goldenNet.Cycle() < runHorizonExtra {
		goldenNet.Step()
	}
	goldenLog := golden.FromEjections(goldenNet.Ejections(), o.InjectCycle)
	gfv := findForever(goldenNet)
	goldenFvFP := gfv != nil && gfv.FirstDetectionAfter(o.InjectCycle) >= 0

	report := &Report{
		Opts:                       o,
		GoldenEjections:            goldenLog.Total(),
		GoldenForeverFalsePositive: goldenFvFP,
		Results:                    make([]RunResult, len(o.FaultGroups)),
	}

	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				report.Results[i] = runOne(base, goldenLog, o, o.FaultGroups[i])
			}
		}()
	}
	for i := range o.FaultGroups {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return report, nil
}

// foreverHorizon returns the cycle up to which a run must continue so
// that ForEVeR's epoch mechanism has a chance to flag anomalies that
// materialized before the drain completed: the next epoch boundary
// plus one full epoch.
func foreverHorizon(cycle int64, o forever.Options) int64 {
	epoch := o.Epoch
	if epoch <= 0 {
		epoch = forever.DefaultOptions().Epoch
	}
	next := (cycle/epoch + 1) * epoch
	return next + epoch
}

func findForever(n *sim.Network) *forever.Monitor {
	for _, m := range n.Monitors() {
		if fv, ok := m.(*forever.Monitor); ok {
			return fv
		}
	}
	return nil
}

func runOne(base *sim.Network, goldenLog *golden.Log, o Options, group []fault.Fault) RunResult {
	plane := fault.NewPlane(group...)
	n := base.Clone(plane)
	eng := core.NewEngine(n.RouterConfig(), core.Options{Disabled: o.CheckersDisabled})
	n.AttachMonitor(eng)
	fv := findForever(n)
	if fv != nil {
		fv.ClearDetections()
	}

	n.Run(o.PostInjectRun)
	drained := n.Drain(o.DrainDeadline)
	horizon := foreverHorizon(n.Cycle(), o.Forever)
	for n.Cycle() < horizon {
		n.Step()
	}

	faultyLog := golden.FromEjections(n.Ejections(), o.InjectCycle)
	verdict := golden.Compare(goldenLog, faultyLog, drained)
	malicious := !verdict.OK()

	fired := false
	for i := range group {
		if plane.FiredAt(i) >= 0 {
			fired = true
			break
		}
	}
	res := RunResult{
		Fault:   group[0],
		Group:   group,
		Fired:   fired,
		Verdict: verdict,
		Drained: drained,

		Detected:    eng.Detected(),
		DetectCycle: eng.FirstDetection(),

		CheckersFired:      eng.FiredCheckers(),
		FirstCycleCheckers: eng.FirstCycleCheckers(),
		SimultaneityHist:   eng.SimultaneityHistogram(),
	}
	res.Outcome = classify(res.Detected, malicious)
	if res.Detected {
		res.Latency = res.DetectCycle - o.InjectCycle
	} else {
		res.Latency = -1
	}

	res.CautiousDetected = eng.FirstHighRiskDetection() >= 0
	res.CautiousOutcome = classify(res.CautiousDetected, malicious)
	if res.CautiousDetected {
		res.CautiousLatency = eng.FirstHighRiskDetection() - o.InjectCycle
	} else {
		res.CautiousLatency = -1
	}

	if fv != nil {
		fd := fv.FirstDetectionAfter(o.InjectCycle)
		res.ForeverDetected = fd >= 0
		if res.ForeverDetected {
			res.ForeverLatency = fd - o.InjectCycle
		} else {
			res.ForeverLatency = -1
		}
	} else {
		res.ForeverLatency = -1
	}
	res.ForeverOutcome = classify(res.ForeverDetected, malicious)
	return res
}

// SampleFaults draws n distinct single-bit transient faults injecting
// at cycle, uniformly over every fault location of the mesh (or all of
// them when n is 0 or exceeds the population). The draw is
// deterministic in seed.
func SampleFaults(p fault.Params, n int, seed uint64, cycle int64) []fault.Fault {
	var all []fault.Fault
	for _, s := range p.EnumerateSites() {
		all = append(all, fault.BitFaults(s, cycle, fault.Transient)...)
	}
	if n <= 0 || n >= len(all) {
		return all
	}
	g := rng.New(seed, 0xfa17)
	perm := g.Perm(len(all))
	out := make([]fault.Fault, n)
	for i := 0; i < n; i++ {
		out[i] = all[perm[i]]
	}
	return out
}
