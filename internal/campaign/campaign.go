// Package campaign orchestrates the paper's fault-injection methodology
// (§5.2–5.4): one fault-free golden run plus one forked, fault-injected
// run per fault, each classified against the Golden Reference into
// true/false positives/negatives for NoCAlert, NoCAlert-Cautious and
// ForEVeR. The aggregated report regenerates Figures 6–9 and
// Observations 1–5.
//
// Forking works by warming a single network to the injection cycle and
// re-forking it per fault, so a cycle-32K campaign pays the warmup once.
// Runs execute on a small worker pool; each worker reuses one clone
// arena (sim.Network.CloneInto) across all its runs, and runs whose
// fault provably never fired short-circuit to a precomputed fault-free
// template instead of simulating the remaining drain and ForEVeR
// horizon.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"nocalert/internal/core"
	"nocalert/internal/fault"
	"nocalert/internal/forever"
	"nocalert/internal/golden"
	"nocalert/internal/metrics"
	"nocalert/internal/rng"
	"nocalert/internal/sim"
)

// Outcome classifies one mechanism's behaviour on one injected fault,
// following the paper's four categories (§5.4).
type Outcome int

const (
	// TrueNegative: nothing detected, fault benign.
	TrueNegative Outcome = iota
	// TruePositive: detected, fault caused a network-correctness
	// violation.
	TruePositive
	// FalsePositive: detected, fault benign.
	FalsePositive
	// FalseNegative: not detected, fault caused a violation — the
	// outcome NoCAlert's design goal drives to zero.
	FalseNegative
)

// String returns the outcome's abbreviation.
func (o Outcome) String() string {
	switch o {
	case TrueNegative:
		return "TN"
	case TruePositive:
		return "TP"
	case FalsePositive:
		return "FP"
	case FalseNegative:
		return "FN"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

func classify(detected, malicious bool) Outcome {
	switch {
	case detected && malicious:
		return TruePositive
	case detected && !malicious:
		return FalsePositive
	case !detected && malicious:
		return FalseNegative
	default:
		return TrueNegative
	}
}

// Options configures a campaign.
type Options struct {
	// Sim is the network and workload under test.
	Sim sim.Config
	// InjectCycle is the network state at which faults strike (the
	// paper uses 0, 32K and 64K).
	InjectCycle int64
	// PostInjectRun is how many cycles injection continues after the
	// fault, giving the perturbation live traffic to interact with.
	PostInjectRun int64
	// DrainDeadline bounds the drain phase; a network that cannot
	// empty by then violates bounded delivery.
	DrainDeadline int64
	// Forever tunes the ForEVeR baseline.
	Forever forever.Options
	// Faults is the list of faults to inject, one run each.
	Faults []fault.Fault
	// FaultGroups, when non-empty, replaces Faults: each group injects
	// together in one run — the multi-fault extension the paper leaves
	// as future work. All faults of a group must inject at InjectCycle.
	FaultGroups [][]fault.Fault
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// CheckersDisabled optionally ablates NoCAlert checkers.
	CheckersDisabled []core.CheckerID
	// DisableFastPath forces every run down the full simulate-and-
	// compare path even when its fault provably never fired. The fast
	// path is bit-identical to the slow path; this switch exists for
	// verification and benchmarking.
	DisableFastPath bool
	// Progress, when non-nil, is invoked after each completed run with
	// the number of finished runs and the total. Calls are serialized;
	// the callback must not call back into the campaign.
	Progress func(done, total int)
	// Metrics, when non-nil, receives campaign telemetry: run counts,
	// per-run wall-time histograms, fast-path hit/miss counters,
	// outcome and verdict-class counters, and a live faults/sec gauge
	// (see the Metric* name constants). Nil — the default — keeps the
	// hot path free of any telemetry cost.
	Metrics *metrics.Registry
	// OnResult, when non-nil, is invoked after each completed run with
	// the run's index in FaultGroups, its result, its wall time and
	// whether the fast path resolved it. Calls are serialized under the
	// same mutex as Progress (and precede the Progress call for the
	// same run); the result pointer is only valid during the call if
	// the caller mutates the report afterwards — copy, don't retain.
	// The faultcampaign CLI streams its NDJSON run trace from here.
	OnResult func(index int, res *RunResult, wall time.Duration, fastPath bool)
	// Context, when non-nil, cancels the campaign cooperatively: no new
	// runs start after it is done and Run returns its error. Runs
	// already in flight complete first.
	Context context.Context
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.PostInjectRun <= 0 {
		out.PostInjectRun = 500
	}
	if out.DrainDeadline <= 0 {
		out.DrainDeadline = 10000
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.Context == nil {
		out.Context = context.Background()
	}
	if len(out.FaultGroups) == 0 {
		if len(out.Faults) == 0 {
			return out, errors.New("campaign: no faults to inject")
		}
		out.FaultGroups = make([][]fault.Fault, len(out.Faults))
		for i, f := range out.Faults {
			out.FaultGroups[i] = []fault.Fault{f}
		}
	}
	for _, g := range out.FaultGroups {
		if len(g) == 0 {
			return out, errors.New("campaign: empty fault group")
		}
		for _, f := range g {
			if f.Cycle != o.InjectCycle {
				return out, fmt.Errorf("campaign: fault %v does not inject at cycle %d", &f, o.InjectCycle)
			}
		}
	}
	return out, nil
}

// RunResult is the outcome of one fault-injected run.
type RunResult struct {
	// Fault is the injected fault (the first of the group in
	// multi-fault runs; see Group).
	Fault fault.Fault
	// Group holds every fault of a multi-fault run.
	Group []fault.Fault
	// Fired reports whether the fault actually corrupted a live signal
	// (a fault on an idle module may never touch anything).
	Fired bool
	// Verdict is the golden-reference judgment.
	Verdict golden.Verdict
	// Drained reports whether the faulty network emptied in time.
	Drained bool

	// NoCAlert results.
	Detected    bool
	DetectCycle int64 // absolute cycle of first assertion
	Latency     int64 // DetectCycle - injection cycle
	Outcome     Outcome

	// NoCAlert-Cautious results (low-risk checkers 1 and 3 deferred).
	CautiousDetected bool
	CautiousLatency  int64
	CautiousOutcome  Outcome

	// ForEVeR results.
	ForeverDetected bool
	ForeverLatency  int64
	ForeverOutcome  Outcome

	// Checker attribution.
	CheckersFired      []core.CheckerID
	FirstCycleCheckers []core.CheckerID
	SimultaneityHist   []int64
}

// Report is the aggregated campaign output.
type Report struct {
	Opts Options
	// GoldenEjections is the number of flits the golden run delivered
	// after the injection cycle.
	GoldenEjections int
	// GoldenForeverFalsePositive reports whether ForEVeR flagged the
	// fault-free golden continuation (an epoch-tuning artifact).
	GoldenForeverFalsePositive bool
	// Results holds one entry per injected fault, in input order.
	Results []RunResult
	// FastPathHits counts runs resolved by the early-exit fast path
	// (fault provably never fired; result synthesized from the
	// fault-free template instead of simulating drain and horizon).
	FastPathHits int
}

// worker holds the per-worker reusable state: a CloneInto target
// network (with its flit arena) and a golden.Log for indexing faulty
// ejections. Reusing these turns the per-fault allocation storm into a
// once-per-worker cost.
type worker struct {
	net  *sim.Network
	flog *golden.Log
}

// Run executes the campaign.
func Run(opts Options) (*Report, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}

	// Golden run: warm to the injection cycle, fork the base state,
	// then continue fault-free to produce the reference log.
	warm, err := sim.New(o.Sim, nil)
	if err != nil {
		return nil, err
	}
	warm.AttachMonitor(forever.NewMonitor(warm.RouterConfig(), o.Forever))
	for warm.Cycle() < o.InjectCycle {
		warm.Step()
	}
	base := warm.Clone(nil)

	goldenNet := warm // continues fault-free
	goldenNet.Run(o.PostInjectRun)
	goldenDrained := goldenNet.Drain(o.DrainDeadline)
	if !goldenDrained {
		return nil, fmt.Errorf("campaign: fault-free golden run failed to drain by cycle %d (inflight=%d)",
			goldenNet.Cycle(), goldenNet.InFlight())
	}
	runHorizonExtra := foreverHorizon(goldenNet.Cycle(), o.Forever)
	for goldenNet.Cycle() < runHorizonExtra {
		goldenNet.Step()
	}
	goldenLog := golden.FromEjections(goldenNet.Ejections(), o.InjectCycle)
	gfv := findForever(goldenNet)
	goldenFvFP := gfv != nil && gfv.FirstDetectionAfter(o.InjectCycle) >= 0

	// Fault-free template for the fast path: one full run through the
	// same per-fault code path, with an empty fault plane. A run whose
	// faults provably never fired is bit-identical to this run, so its
	// result can be copied instead of simulated (slices are shared
	// read-only across all fast-path results).
	var tmpl RunResult
	if !o.DisableFastPath {
		var tw worker
		tmpl = runSlow(&tw, base, goldenLog, o, nil)
	}

	report := &Report{
		Opts:                       o,
		GoldenEjections:            goldenLog.Total(),
		GoldenForeverFalsePositive: goldenFvFP,
		Results:                    make([]RunResult, len(o.FaultGroups)),
	}

	var (
		wg       sync.WaitGroup
		progMu   sync.Mutex
		done     int
		fastHits int
	)
	total := len(o.FaultGroups)
	var inst *instruments
	if o.Metrics != nil {
		inst = newInstruments(o.Metrics, o.Workers, total)
	}
	// Per-run wall clocks are only read when someone is listening; the
	// two time.Now calls are noise next to a run's milliseconds, but the
	// metrics-off path stays byte-for-byte the old loop.
	needTiming := inst != nil || o.OnResult != nil
	campaignStart := time.Now()
	jobs := make(chan int)
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var wk worker
			for i := range jobs {
				var runStart time.Time
				if needTiming {
					runStart = time.Now()
				}
				res, fast := runOne(&wk, base, goldenLog, &tmpl, o, o.FaultGroups[i])
				var wall time.Duration
				if needTiming {
					wall = time.Since(runStart)
				}
				report.Results[i] = res
				progMu.Lock()
				done++
				if fast {
					fastHits++
				}
				if inst != nil {
					inst.observe(&report.Results[i], wall, fast, done, time.Since(campaignStart))
				}
				if o.OnResult != nil {
					o.OnResult(i, &report.Results[i], wall, fast)
				}
				if o.Progress != nil {
					o.Progress(done, total)
				}
				progMu.Unlock()
			}
		}()
	}
	ctx := o.Context
	var ctxErr error
feed:
	for i := range o.FaultGroups {
		select {
		case jobs <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if ctxErr != nil {
		return nil, ctxErr
	}
	report.FastPathHits = fastHits
	return report, nil
}

// foreverHorizon returns the cycle up to which a run must continue so
// that ForEVeR's epoch mechanism has a chance to flag anomalies that
// materialized before the drain completed: the next epoch boundary
// plus one full epoch.
func foreverHorizon(cycle int64, o forever.Options) int64 {
	epoch := o.Epoch
	if epoch <= 0 {
		epoch = forever.DefaultOptions().Epoch
	}
	next := (cycle/epoch + 1) * epoch
	return next + epoch
}

func findForever(n *sim.Network) *forever.Monitor {
	for _, m := range n.Monitors() {
		if fv, ok := m.(*forever.Monitor); ok {
			return fv
		}
	}
	return nil
}

// runOne executes one fault group's run. When the fast path is enabled
// and every fault of the group provably expired without firing, the
// remaining simulation is skipped and the fault-free template result is
// returned (fast=true); the template is exact because an inert plane's
// run is bit-identical to the fault-free continuation from the same
// base state.
func runOne(w *worker, base *sim.Network, goldenLog *golden.Log, tmpl *RunResult, o Options, group []fault.Fault) (res RunResult, fast bool) {
	if !o.DisableFastPath {
		plane := fault.NewPlane(group...)
		n := base.CloneInto(w.net, plane)
		w.net = n
		eng := core.NewEngine(n.RouterConfig(), core.Options{Disabled: o.CheckersDisabled})
		n.AttachMonitor(eng)
		fv := findForever(n)
		if fv != nil {
			fv.ClearDetections()
		}
		for t := int64(0); t < o.PostInjectRun; t++ {
			n.Step()
			if n.FaultsInert() {
				res = *tmpl
				res.Fault = group[0]
				res.Group = group
				return res, true
			}
		}
		return finishRun(n, eng, fv, plane, goldenLog, o, group, w), false
	}
	return runSlow(w, base, goldenLog, o, group), false
}

// runSlow executes one run end to end with no early exit. A nil group
// runs with an empty fault plane (used to compute the fast-path
// template).
func runSlow(w *worker, base *sim.Network, goldenLog *golden.Log, o Options, group []fault.Fault) RunResult {
	plane := fault.NewPlane(group...)
	n := base.CloneInto(w.net, plane)
	w.net = n
	eng := core.NewEngine(n.RouterConfig(), core.Options{Disabled: o.CheckersDisabled})
	n.AttachMonitor(eng)
	fv := findForever(n)
	if fv != nil {
		fv.ClearDetections()
	}
	n.Run(o.PostInjectRun)
	return finishRun(n, eng, fv, plane, goldenLog, o, group, w)
}

// finishRun drains the network, runs out the ForEVeR horizon, and
// classifies the run against the golden reference.
func finishRun(n *sim.Network, eng *core.Engine, fv *forever.Monitor, plane *fault.Plane, goldenLog *golden.Log, o Options, group []fault.Fault, w *worker) RunResult {
	drained := n.Drain(o.DrainDeadline)
	horizon := foreverHorizon(n.Cycle(), o.Forever)
	for n.Cycle() < horizon {
		n.Step()
	}

	w.flog = golden.FromEjectionsInto(w.flog, n.Ejections(), o.InjectCycle)
	verdict := golden.Compare(goldenLog, w.flog, drained)
	malicious := !verdict.OK()

	fired := false
	for i := range group {
		if plane.FiredAt(i) >= 0 {
			fired = true
			break
		}
	}
	res := RunResult{
		Group:   group,
		Fired:   fired,
		Verdict: verdict,
		Drained: drained,

		Detected:    eng.Detected(),
		DetectCycle: eng.FirstDetection(),

		CheckersFired:      eng.FiredCheckers(),
		FirstCycleCheckers: eng.FirstCycleCheckers(),
		SimultaneityHist:   eng.SimultaneityHistogram(),
	}
	if len(group) > 0 {
		res.Fault = group[0]
	}
	res.Outcome = classify(res.Detected, malicious)
	if res.Detected {
		res.Latency = res.DetectCycle - o.InjectCycle
	} else {
		res.Latency = -1
	}

	res.CautiousDetected = eng.FirstHighRiskDetection() >= 0
	res.CautiousOutcome = classify(res.CautiousDetected, malicious)
	if res.CautiousDetected {
		res.CautiousLatency = eng.FirstHighRiskDetection() - o.InjectCycle
	} else {
		res.CautiousLatency = -1
	}

	if fv != nil {
		fd := fv.FirstDetectionAfter(o.InjectCycle)
		res.ForeverDetected = fd >= 0
		if res.ForeverDetected {
			res.ForeverLatency = fd - o.InjectCycle
		} else {
			res.ForeverLatency = -1
		}
	} else {
		res.ForeverLatency = -1
	}
	res.ForeverOutcome = classify(res.ForeverDetected, malicious)
	return res
}

// SampleFaults draws n distinct single-bit transient faults injecting
// at cycle, uniformly over every fault location of the mesh (or all of
// them when n is 0 or exceeds the population). The draw is
// deterministic in seed. Sparse draws (2n < population) sample global
// bit indices directly instead of materializing one Fault per location,
// so sampling a few hundred faults from a large mesh stays O(sites+n)
// rather than O(population).
func SampleFaults(p fault.Params, n int, seed uint64, cycle int64) []fault.Fault {
	sites := p.EnumerateSites()
	prefix := make([]int, len(sites)+1)
	for i, s := range sites {
		prefix[i+1] = prefix[i] + s.Width
	}
	total := prefix[len(sites)]
	if n <= 0 || n >= total {
		all := make([]fault.Fault, 0, total)
		for _, s := range sites {
			all = append(all, fault.BitFaults(s, cycle, fault.Transient)...)
		}
		return all
	}
	g := rng.New(seed, 0xfa17)
	idx := make([]int, 0, n)
	if 2*n >= total {
		// Dense draw: a permutation prefix is cheaper than rejection
		// sampling when we want a large fraction of the population.
		idx = append(idx, g.Perm(total)[:n]...)
	} else {
		seen := make(map[int]struct{}, n)
		for len(idx) < n {
			v := g.Intn(total)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			idx = append(idx, v)
		}
	}
	out := make([]fault.Fault, len(idx))
	for i, v := range idx {
		si := sort.SearchInts(prefix, v+1) - 1
		s := sites[si]
		out[i] = fault.Fault{Site: s, Bit: v - prefix[si], Cycle: cycle, Type: fault.Transient}
	}
	return out
}
