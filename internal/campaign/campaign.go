// Package campaign orchestrates the paper's fault-injection methodology
// (§5.2–5.4): one fault-free golden run plus one forked, fault-injected
// run per fault, each classified against the Golden Reference into
// true/false positives/negatives for NoCAlert, NoCAlert-Cautious and
// ForEVeR. The aggregated report regenerates Figures 6–9 and
// Observations 1–5.
//
// Forking works by warming a single network to the injection cycle and
// re-forking it per fault, so a cycle-32K campaign pays the warmup once.
// Runs execute on a small worker pool; each worker reuses one clone
// arena (sim.Network.CloneInto) across all its runs, and runs whose
// fault provably never fired short-circuit to a precomputed fault-free
// template instead of simulating the remaining drain and ForEVeR
// horizon.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"nocalert/internal/core"
	"nocalert/internal/fault"
	"nocalert/internal/forever"
	"nocalert/internal/golden"
	"nocalert/internal/metrics"
	"nocalert/internal/obs"
	"nocalert/internal/rng"
	"nocalert/internal/sim"
)

// Outcome classifies one mechanism's behaviour on one injected fault,
// following the paper's four categories (§5.4).
type Outcome int

const (
	// TrueNegative: nothing detected, fault benign.
	TrueNegative Outcome = iota
	// TruePositive: detected, fault caused a network-correctness
	// violation.
	TruePositive
	// FalsePositive: detected, fault benign.
	FalsePositive
	// FalseNegative: not detected, fault caused a violation — the
	// outcome NoCAlert's design goal drives to zero.
	FalseNegative
)

// String returns the outcome's abbreviation.
func (o Outcome) String() string {
	switch o {
	case TrueNegative:
		return "TN"
	case TruePositive:
		return "TP"
	case FalsePositive:
		return "FP"
	case FalseNegative:
		return "FN"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// ExitPath identifies how a run reached its result. The three paths are
// result-equivalent — reports are byte-identical whichever path resolves
// a run — but differ enormously in cost, so campaigns count them.
type ExitPath int

const (
	// ExitFull: the run simulated PostInjectRun, drain and ForEVeR
	// horizon end to end.
	ExitFull ExitPath = iota
	// ExitFastPath: every fault of the group provably expired without
	// firing; the result was copied from the fault-free template.
	ExitFastPath
	// ExitReconverged: the fault fired but its perturbation washed out —
	// the faulty state matched the golden run's recorded fingerprint mid
	// window, so the tail was synthesized instead of simulated.
	ExitReconverged
)

// String returns a short name for the exit path.
func (e ExitPath) String() string {
	switch e {
	case ExitFull:
		return "full"
	case ExitFastPath:
		return "fastpath"
	case ExitReconverged:
		return "reconverged"
	}
	return fmt.Sprintf("ExitPath(%d)", int(e))
}

func classify(detected, malicious bool) Outcome {
	switch {
	case detected && malicious:
		return TruePositive
	case detected && !malicious:
		return FalsePositive
	case !detected && malicious:
		return FalseNegative
	default:
		return TrueNegative
	}
}

// Options configures a campaign.
type Options struct {
	// Sim is the network and workload under test.
	Sim sim.Config
	// InjectCycle is the cycle SampleFaults-style universes inject at
	// (the paper uses 0, 32K and 64K). Each fault's own Cycle field is
	// authoritative: groups may inject at different cycles within one
	// campaign, and the golden run snapshots/forks at every distinct
	// injection cycle it encounters.
	InjectCycle int64
	// PostInjectRun is how many cycles injection continues after the
	// fault, giving the perturbation live traffic to interact with.
	PostInjectRun int64
	// DrainDeadline bounds the drain phase; a network that cannot
	// empty by then violates bounded delivery.
	DrainDeadline int64
	// Forever tunes the ForEVeR baseline.
	Forever forever.Options
	// Faults is the list of faults to inject, one run each.
	Faults []fault.Fault
	// FaultGroups, when non-empty, replaces Faults: each group injects
	// together in one run — the multi-fault extension the paper leaves
	// as future work. All faults of a group must inject at InjectCycle.
	FaultGroups [][]fault.Fault
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// CheckersDisabled optionally ablates NoCAlert checkers.
	CheckersDisabled []core.CheckerID
	// DisableFastPath forces every run down the full simulate-and-
	// compare path even when its fault provably never fired. The fast
	// path is bit-identical to the slow path; this switch exists for
	// verification and benchmarking. Disabling it also disables
	// reconvergence detection (which shares the fast path's template).
	DisableFastPath bool
	// DisableReconvergence turns off golden-state reconvergence
	// detection: the golden run records no per-cycle fingerprint and
	// every fired fault simulates its full window, drain and horizon.
	// Reconverged results are byte-identical to fully simulated ones
	// (test-enforced); this switch exists for verification, for
	// measuring the fingerprint overhead, and as an escape hatch.
	DisableReconvergence bool
	// DisableFork turns off injection-point forking: a single golden
	// snapshot is kept at cycle 0 and every faulty run honestly replays
	// its full [0, injection) prefix before the fault goes live.
	// Fork-enabled reports are byte-identical (test-enforced); the
	// switch exists for the A/B gate and for measuring the warm-start
	// win.
	DisableFork bool
	// SnapshotInterval fixes the golden snapshot ring's cycle stride.
	// 0 — the default — picks the interval adaptively from the fault
	// universe's injection-cycle histogram (snapshots land exactly on
	// the distinct injection cycles whenever they fit the ring budget).
	// Ignored when DisableFork is set.
	SnapshotInterval int64
	// DisableFastForward turns off the frozen-state fast-forward that
	// synthesizes the remainder of a run's drain and ForEVeR horizon
	// once the network state is provably a fixed point (deadlocked
	// fabrics, drained-idle horizons). Results are byte-identical either
	// way (test-enforced); the switch exists for verification and
	// benchmarking.
	DisableFastForward bool
	// DisableFrontier turns off divergence-frontier delta stepping: the
	// golden continuation records no per-link signal transcript and
	// every fired fault steps its full mesh every cycle of the window
	// (the PR-5 whole-state fingerprint probe still applies). Frontier
	// reports are byte-identical to full-mesh reports (test-enforced);
	// the switch exists for the A/B identity gate and for measuring the
	// cone-of-influence win. Frontier stepping is implied off when the
	// fast path or reconvergence is disabled (it shares their golden
	// template soundness precondition).
	DisableFrontier bool
	// DisableForever runs the campaign without a ForEVeR monitor: the
	// golden run and every faulty run skip the baseline entirely, and
	// finishRun skips the post-drain horizon run-out that exists only to
	// give ForEVeR's epoch check a chance to fire. ForEVeR result fields
	// report not-detected. NoCAlert and Cautious results are unaffected.
	DisableForever bool
	// Progress, when non-nil, is invoked after each completed run with
	// the number of finished runs and the total. Calls are serialized;
	// the callback must not call back into the campaign.
	Progress func(done, total int)
	// Metrics, when non-nil, receives campaign telemetry: run counts,
	// per-run wall-time histograms, fast-path hit/miss counters,
	// outcome and verdict-class counters, and a live faults/sec gauge
	// (see the Metric* name constants). Nil — the default — keeps the
	// hot path free of any telemetry cost.
	Metrics *metrics.Registry
	// OnResult, when non-nil, is invoked after each completed run with
	// the run's index in FaultGroups, its result, its wall time and the
	// exit path that resolved it. Calls are serialized under the same
	// mutex as Progress (and precede the Progress call for the same
	// run); the result pointer is only valid during the call if the
	// caller mutates the report afterwards — copy, don't retain. The
	// faultcampaign CLI streams its NDJSON run trace from here.
	OnResult func(index int, res *RunResult, wall time.Duration, exit ExitPath)
	// Context, when non-nil, cancels the campaign cooperatively: no new
	// runs start after it is done and Run returns its error. Runs
	// already in flight complete first.
	Context context.Context
	// Tracer, when non-nil, emits hierarchical spans — campaign →
	// run → phase (warm-start, fault-armed, drain, horizon, and the
	// reconverged/fast-forwarded tails) — carrying the cycle-accurate
	// accounting runStats tracks. Run spans honor the tracer's sampling
	// rate; the campaign span and golden-warmup phase never sample out.
	// Tracing never touches RunResult or the report: serialized reports
	// are byte-identical with tracing on or off (test-enforced).
	Tracer *obs.Tracer
	// TraceParent optionally parents the campaign span (the daemon's
	// job span, or a shard span), threading one correlation ID from a
	// nocalertd job down to every run it executes.
	TraceParent *obs.Span
	// FlightRecorder, when non-nil, receives cycle-stamped events from
	// the engine's trust boundaries (fork verifications, reconvergence
	// fingerprint probes, detections, fast-forward freezes) and
	// auto-dumps its ring on anomalies: a fork-verify mismatch or a
	// missed-detection (FN) verdict.
	FlightRecorder *obs.FlightRecorder
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.PostInjectRun <= 0 {
		out.PostInjectRun = 500
	}
	if out.DrainDeadline <= 0 {
		out.DrainDeadline = 10000
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.Context == nil {
		out.Context = context.Background()
	}
	if len(out.FaultGroups) == 0 {
		if len(out.Faults) == 0 {
			return out, errors.New("campaign: no faults to inject")
		}
		out.FaultGroups = make([][]fault.Fault, len(out.Faults))
		for i, f := range out.Faults {
			out.FaultGroups[i] = []fault.Fault{f}
		}
	}
	if out.SnapshotInterval < 0 {
		return out, fmt.Errorf("campaign: negative snapshot interval %d", out.SnapshotInterval)
	}
	for _, g := range out.FaultGroups {
		if len(g) == 0 {
			return out, errors.New("campaign: empty fault group")
		}
		for _, f := range g {
			if f.Cycle < 0 {
				return out, fmt.Errorf("campaign: fault %v injects at negative cycle", &f)
			}
			if f.Cycle != g[0].Cycle {
				return out, fmt.Errorf("campaign: fault group mixes injection cycles %d and %d", g[0].Cycle, f.Cycle)
			}
		}
	}
	return out, nil
}

// RunResult is the outcome of one fault-injected run.
type RunResult struct {
	// Fault is the injected fault (the first of the group in
	// multi-fault runs; see Group).
	Fault fault.Fault
	// Group holds every fault of a multi-fault run.
	Group []fault.Fault
	// Fired reports whether the fault actually corrupted a live signal
	// (a fault on an idle module may never touch anything).
	Fired bool
	// Verdict is the golden-reference judgment.
	Verdict golden.Verdict
	// Drained reports whether the faulty network emptied in time.
	Drained bool

	// NoCAlert results.
	Detected    bool
	DetectCycle int64 // absolute cycle of first assertion
	Latency     int64 // DetectCycle - injection cycle
	Outcome     Outcome

	// NoCAlert-Cautious results (low-risk checkers 1 and 3 deferred).
	CautiousDetected bool
	CautiousLatency  int64
	CautiousOutcome  Outcome

	// ForEVeR results.
	ForeverDetected bool
	ForeverLatency  int64
	ForeverOutcome  Outcome

	// Checker attribution.
	CheckersFired      []core.CheckerID
	FirstCycleCheckers []core.CheckerID
	SimultaneityHist   []int64
}

// Report is the aggregated campaign output.
type Report struct {
	Opts Options
	// GoldenEjections is the number of flits the golden run delivered
	// after the injection cycle.
	GoldenEjections int
	// GoldenForeverFalsePositive reports whether ForEVeR flagged the
	// fault-free golden continuation (an epoch-tuning artifact).
	GoldenForeverFalsePositive bool
	// Results holds one entry per injected fault, in input order.
	Results []RunResult
	// FastPathHits counts runs resolved by the early-exit fast path
	// (fault provably never fired; result synthesized from the
	// fault-free template instead of simulating drain and horizon).
	FastPathHits int
	// ReconvergedHits counts runs whose fault fired but whose state
	// reconverged with the golden run's recorded fingerprint before the
	// post-injection window ended; their tails were synthesized from the
	// golden record instead of simulated.
	ReconvergedHits int
	// ForkedRuns counts runs that warm-started from a golden snapshot
	// above cycle 0, skipping their [0, snapshot) prefix entirely.
	ForkedRuns int
	// SnapshotCount and SnapshotBytes describe the golden snapshot
	// ring: how many full-state snapshots the golden run recorded and
	// their estimated memory footprint.
	SnapshotCount int
	SnapshotBytes int64
	// SimulatedCycles counts cycles faulty runs actually stepped
	// (including fork replay) — the honest denominator for throughput.
	// WarmstartCyclesSaved counts prefix cycles skipped by forking;
	// SynthesizedCycles counts cycles whose outcome was synthesized
	// (reconvergence tails, frozen drains and horizons) rather than
	// stepped. None of these alter the serialized report.
	SimulatedCycles      int64
	WarmstartCyclesSaved int64
	SynthesizedCycles    int64
	// FrontierRuns counts runs driven by the divergence-frontier delta
	// engine; TimelineBytes is the estimated memory footprint of the
	// golden-side per-window records: the signal transcripts and
	// window-end states backing the frontier plus the fingerprint
	// timelines backing reconvergence. Neither alters the serialized
	// report.
	FrontierRuns  int
	TimelineBytes int64
}

// worker holds the per-worker reusable state: a CloneInto target
// network (with its flit arena) and a golden.Log for indexing faulty
// ejections. Reusing these turns the per-fault allocation storm into a
// once-per-worker cost.
type worker struct {
	net  *sim.Network
	flog *golden.Log
}

// groupCtx is the per-injection-cycle golden context shared by every
// run injecting at that cycle: the snapshot to fork from, the golden
// fingerprint at the fork point (each fork's replay is verified against
// it), the golden reference log and ForEVeR monitor of the fault-free
// continuation, the fault-free template, and the reconvergence context.
type groupCtx struct {
	cycle  int64
	snap   *snapshot
	forkFP uint64

	goldenLog       *golden.Log
	gfv             *forever.Monitor
	goldenFvFP      bool
	goldenEjections int

	tmpl RunResult
	rc   *reconvergence

	// rec and wend drive divergence-frontier delta stepping: the golden
	// continuation's per-link signal transcript over the post-injection
	// window and its full state at the window-end boundary (for
	// materializing the untouched region of a run that needs its drain
	// simulated). Both nil when the frontier is disabled or the golden
	// template is unsound; both are shared read-only across workers.
	rec  *sim.Recording
	wend *sim.Network
}

// Run executes the campaign.
func Run(opts Options) (*Report, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}

	// Distinct injection cycles, ascending. Each fault group carries its
	// own cycle (withDefaults enforced homogeneity within a group).
	var cycles []int64
	seen := make(map[int64]bool)
	for _, g := range o.FaultGroups {
		if !seen[g[0].Cycle] {
			seen[g[0].Cycle] = true
			cycles = append(cycles, g[0].Cycle)
		}
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })

	// Campaign span: the root of this process's span hierarchy unless a
	// job or shard span parents it. All span plumbing is nil-safe, so
	// the tracing-off path below is the old code plus dead branches.
	camp := o.Tracer.Start(o.TraceParent, "campaign", "campaign")

	// Golden mainline: one fault-free run stepped once from cycle 0 to
	// the last injection cycle, capturing the snapshot ring along the
	// way and spawning one golden continuation per injection cycle.
	plan := planSnapshots(&o, cycles)
	ring := &snapshotRing{}
	mainline, err := sim.New(o.Sim, nil)
	if err != nil {
		camp.End()
		return nil, err
	}
	if !o.DisableForever {
		mainline.AttachMonitor(forever.NewMonitor(mainline.RouterConfig(), o.Forever))
	}
	wantReconv := !o.DisableFastPath && !o.DisableReconvergence
	gcOf := make(map[int64]*groupCtx, len(cycles))
	next := 0 // next snapshot plan entry
	var tw worker
	warm := camp.Child("phase", "golden-warmup")
	for ci, c := range cycles {
		for {
			if next < len(plan) && mainline.Cycle() == plan[next] {
				ring.capture(mainline)
				next++
			}
			if mainline.Cycle() >= c {
				break
			}
			mainline.Step()
		}
		gc, err := buildGroupCtx(mainline, ring, &tw, o, c, ci == len(cycles)-1, wantReconv)
		if err != nil {
			warm.End()
			camp.End()
			return nil, err
		}
		gcOf[c] = gc
	}
	var timelineBytes int64
	for _, gc := range gcOf {
		timelineBytes += gc.rec.ApproxFootprintBytes()
		if gc.wend != nil {
			timelineBytes += gc.wend.ApproxFootprintBytes()
		}
		if gc.rc != nil {
			timelineBytes += gc.rc.tl.ApproxFootprintBytes()
		}
	}
	warm.SetAttr("injection_cycles", len(cycles))
	warm.SetAttr("snapshots", len(ring.snaps))
	warm.SetAttr("snapshot_bytes", ring.bytes)
	warm.SetAttr("golden_cycle", mainline.Cycle())
	warm.End()

	first := gcOf[cycles[0]]
	report := &Report{
		Opts:                       o,
		GoldenEjections:            first.goldenEjections,
		GoldenForeverFalsePositive: first.goldenFvFP,
		Results:                    make([]RunResult, len(o.FaultGroups)),
		SnapshotCount:              len(ring.snaps),
		SnapshotBytes:              ring.bytes,
		TimelineBytes:              timelineBytes,
	}

	var (
		wg           sync.WaitGroup
		progMu       sync.Mutex
		done         int
		fastHits     int
		reconvHits   int
		forkedRuns   int
		frontierRuns int
		simCycles    int64
		warmSaved    int64
		synthSaved   int64
		runErr       error
	)
	total := len(o.FaultGroups)
	var inst *instruments
	if o.Metrics != nil {
		inst = newInstruments(o.Metrics, o.Workers, total)
		o.Metrics.Gauge(MetricSnapshotBytes).Set(float64(ring.bytes))
		o.Metrics.Gauge(MetricTimelineBytes).Set(float64(timelineBytes))
	}
	// Per-run wall clocks are only read when someone is listening; the
	// two time.Now calls are noise next to a run's milliseconds, but the
	// metrics-off path stays byte-for-byte the old loop.
	needTiming := inst != nil || o.OnResult != nil
	campaignStart := time.Now()
	jobs := make(chan int)
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var wk worker
			for i := range jobs {
				progMu.Lock()
				failed := runErr != nil
				progMu.Unlock()
				if failed {
					continue
				}
				var runStart time.Time
				if needTiming {
					runStart = time.Now()
				}
				var ro *runObs
				if o.Tracer != nil || o.FlightRecorder != nil {
					ro = &runObs{fr: o.FlightRecorder, idx: i}
					if o.Tracer.Sampled(i) {
						ro.span = camp.Child("run", fmt.Sprintf("run[%d]", i))
					}
				}
				res, exit, convCycles, st, err := runOne(&wk, gcOf[o.FaultGroups[i][0].Cycle], o, o.FaultGroups[i], ro)
				var wall time.Duration
				if needTiming {
					wall = time.Since(runStart)
				}
				if err != nil {
					ro.fail(err)
					progMu.Lock()
					if runErr == nil {
						runErr = err
					}
					progMu.Unlock()
					continue
				}
				ro.finish(&res, exit, convCycles, &st, o.FaultGroups[i][0].Cycle)
				report.Results[i] = res
				progMu.Lock()
				done++
				switch exit {
				case ExitFastPath:
					fastHits++
				case ExitReconverged:
					reconvHits++
				}
				if st.forked {
					forkedRuns++
				}
				if st.frontier {
					frontierRuns++
				}
				simCycles += st.simulated
				warmSaved += st.warmSaved
				synthSaved += st.synthesized
				if inst != nil {
					inst.observe(&report.Results[i], wall, exit, convCycles, &st, done, simCycles, time.Since(campaignStart))
				}
				if o.OnResult != nil {
					o.OnResult(i, &report.Results[i], wall, exit)
				}
				if o.Progress != nil {
					o.Progress(done, total)
				}
				progMu.Unlock()
			}
		}()
	}
	// Feed runs in injection-cycle order (stable within a cycle) so
	// consecutive runs share a snapshot and its replayed gap stays warm
	// in cache. Results remain input-indexed regardless of feed order.
	order := make([]int, total)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return o.FaultGroups[order[a]][0].Cycle < o.FaultGroups[order[b]][0].Cycle
	})
	ctx := o.Context
	var ctxErr error
feed:
	for _, i := range order {
		select {
		case jobs <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if ctxErr != nil {
		camp.SetAttr("error", ctxErr.Error())
		camp.End()
		return nil, ctxErr
	}
	progMu.Lock()
	err = runErr
	progMu.Unlock()
	if err != nil {
		camp.SetAttr("error", err.Error())
		camp.End()
		return nil, err
	}
	report.FastPathHits = fastHits
	report.ReconvergedHits = reconvHits
	report.ForkedRuns = forkedRuns
	report.FrontierRuns = frontierRuns
	report.SimulatedCycles = simCycles
	report.WarmstartCyclesSaved = warmSaved
	report.SynthesizedCycles = synthSaved
	camp.SetAttr("runs", total)
	camp.SetAttr("fastpath_hits", fastHits)
	camp.SetAttr("reconverged_hits", reconvHits)
	camp.SetAttr("forked_runs", forkedRuns)
	camp.SetAttr("frontier_runs", frontierRuns)
	camp.SetAttr("cycles_simulated", simCycles)
	camp.SetAttr("cycles_synthesized", synthSaved)
	camp.SetAttr("warmstart_cycles_saved", warmSaved)
	camp.End()
	return report, nil
}

// buildGroupCtx runs the golden continuation for injection cycle c —
// the post-injection window (recording the reconvergence timeline when
// wanted), the drain, and the ForEVeR horizon — and derives everything
// runs at that cycle share. The mainline network itself continues for
// the last injection cycle; earlier cycles continue on a clone so the
// mainline can keep stepping toward the next fork point. The mainline
// must be at cycle c and the ring must already hold a snapshot at or
// before c.
func buildGroupCtx(mainline *sim.Network, ring *snapshotRing, tw *worker, o Options, c int64, last, wantReconv bool) (*groupCtx, error) {
	gc := &groupCtx{cycle: c, snap: ring.at(c), forkFP: mainline.Fingerprint()}
	if gc.snap == nil {
		return nil, fmt.Errorf("campaign: no golden snapshot at or before injection cycle %d", c)
	}

	cont := mainline
	if !last {
		cont = mainline.Clone(nil)
	}
	var tl *golden.Timeline
	if wantReconv {
		// Record the golden run's per-cycle state fingerprints through
		// the post-injection window — the timeline faulty runs compare
		// against once their fault plane goes quiescent. Recording is
		// a one-time cost on the golden run only; with reconvergence
		// disabled the plain Run loop below is untouched.
		tl = golden.NewTimeline(int(o.PostInjectRun))
		ejStart := len(cont.Ejections())
		if !o.DisableFrontier {
			// Record the per-link signal transcript alongside the
			// fingerprint timeline: the divergence frontier replays
			// clean routers from it instead of stepping them.
			cont.StartRecording(int(o.PostInjectRun))
		}
		for t := int64(0); t < o.PostInjectRun; t++ {
			cont.Step()
			tl.Observe(cont, cont.Ejections()[ejStart:])
		}
		if !o.DisableFrontier {
			gc.rec = cont.StopRecording()
			gc.wend = cont.CloneInto(nil, nil)
		}
	} else {
		cont.Run(o.PostInjectRun)
	}
	if !cont.Drain(o.DrainDeadline) {
		return nil, fmt.Errorf("campaign: fault-free golden run failed to drain by cycle %d (inflight=%d)",
			cont.Cycle(), cont.InFlight())
	}
	if !o.DisableForever {
		runHorizonExtra := foreverHorizon(cont.Cycle(), o.Forever)
		for cont.Cycle() < runHorizonExtra {
			cont.Step()
		}
	}
	gc.goldenLog = golden.FromEjections(cont.Ejections(), c)
	gc.goldenEjections = gc.goldenLog.Total()
	gc.gfv = findForever(cont)
	gc.goldenFvFP = gc.gfv != nil && gc.gfv.FirstDetectionAfter(c) >= 0

	// Fault-free template for the fast path: one full run through the
	// same per-fault code path — fork, replay, empty fault plane. A run
	// whose faults provably never fired is bit-identical to this run, so
	// its result can be copied instead of simulated (slices are shared
	// read-only across all fast-path results). The template run also
	// exercises the fork-point fingerprint verification for this cycle
	// before any faulty run trusts it.
	if !o.DisableFastPath {
		var st runStats
		// The template run carries the flight recorder (its fork
		// verification guards every fast-path result at this cycle) but
		// no span: index -1 is never sampled.
		var tro *runObs
		if o.FlightRecorder != nil {
			tro = &runObs{fr: o.FlightRecorder, idx: -1}
		}
		tmpl, err := runSlow(tw, gc, o, nil, &st, tro)
		if err != nil {
			return nil, err
		}
		gc.tmpl = tmpl
	}

	// Reconvergence context for the workers. The synthesis shortcut is
	// only sound when the golden continuation is clean: no NoCAlert
	// assertion anywhere in the fault-free template (so freezing the
	// engine at the reconvergence cycle loses nothing), a benign
	// golden-vs-golden verdict, and — when ForEVeR is on — a golden
	// monitor whose detection list stayed under its cap (so the recorded
	// tail is complete). All of these hold for any sanely configured
	// campaign; if one does not, reconvergence silently disables and
	// every fired fault takes the full path.
	if wantReconv {
		sound := !gc.tmpl.Detected && gc.tmpl.Drained && gc.tmpl.Verdict.OK()
		if !o.DisableForever {
			sound = sound && gc.gfv != nil && len(gc.gfv.Detections()) < forever.DetectionCap
		}
		if sound {
			gc.rc = &reconvergence{tl: tl, gfv: gc.gfv, verdict: gc.tmpl.Verdict}
		}
	}
	if gc.rc == nil {
		// The frontier shares the reconvergence soundness precondition
		// (an invariant-clean golden continuation); without it the
		// transcript is dead weight.
		gc.rec, gc.wend = nil, nil
	}
	return gc, nil
}

// foreverHorizon returns the cycle up to which a run must continue so
// that ForEVeR's epoch mechanism has a chance to flag anomalies that
// materialized before the drain completed: the next epoch boundary
// plus one full epoch.
func foreverHorizon(cycle int64, o forever.Options) int64 {
	epoch := o.Epoch
	if epoch <= 0 {
		epoch = forever.DefaultOptions().Epoch
	}
	next := (cycle/epoch + 1) * epoch
	return next + epoch
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func findForever(n *sim.Network) *forever.Monitor {
	for _, m := range n.Monitors() {
		if fv, ok := m.(*forever.Monitor); ok {
			return fv
		}
	}
	return nil
}

// reconvergence bundles the golden-side state the workers' reconvergence
// check consults: the per-cycle fingerprint timeline, the golden ForEVeR
// monitor (for synthesizing the detection tail) and the benign
// golden-vs-golden verdict reconverged runs inherit.
type reconvergence struct {
	tl      *golden.Timeline
	gfv     *forever.Monitor
	verdict golden.Verdict
}

// reconvBackoffCap bounds the exponential backoff between full
// fingerprint attempts. Reconvergence is absorbing — once the faulty
// state equals golden's it stays equal — so skipping candidate cycles
// after a failed attempt never loses a match, it only detects it a few
// cycles later; the backoff keeps permanently diverged runs (whose
// cheap counters may still match) from paying a full state hash every
// remaining cycle of the window.
const reconvBackoffCap = 16

// runOne executes one fault group's run. The run forks from the
// nearest golden snapshot at or before its injection cycle (replaying
// the gap fault-free) rather than simulating its whole prefix. When the
// fast path is enabled and every fault of the group provably expired
// without firing, the remaining simulation is skipped and the
// fault-free template result is returned (ExitFastPath); the template
// is exact because an inert plane's run is bit-identical to the
// fault-free continuation from the same forked state. Otherwise, once
// the plane is quiescent (fired, but can never fire again), each
// cycle's state is compared against the golden timeline; on a
// fingerprint match with matching ejection history the rest of the run
// is provably identical to golden's, so the result is synthesized
// (ExitReconverged) instead of simulated. convCycles is the
// reconvergence latency (cycles after injection); zero for the other
// exit paths.
func runOne(w *worker, gc *groupCtx, o Options, group []fault.Fault, ro *runObs) (res RunResult, exit ExitPath, convCycles int64, st runStats, err error) {
	if o.DisableFastPath {
		res, err = runSlow(w, gc, o, group, &st, ro)
		return res, ExitFull, 0, st, err
	}
	plane := fault.NewPlane(group...)
	ws := ro.phase("warm-start")
	n, err := w.fork(gc, plane, &st, ro)
	if err != nil {
		ws.End()
		return res, ExitFull, 0, st, err
	}
	ws.SetAttr("fork_cycle", gc.snap.cycle)
	ws.SetAttr("replayed_cycles", gc.cycle-gc.snap.cycle)
	ws.End()
	eng := core.NewEngine(n.RouterConfig(), core.Options{Disabled: o.CheckersDisabled})
	n.AttachMonitor(eng)
	fv := findForever(n)
	if fv != nil {
		fv.ClearDetections()
	}
	rc := gc.rc
	if rc != nil && gc.rec != nil {
		res, exit, convCycles, err = runFrontier(n, eng, fv, gc, o, group, plane, w, &st, ro)
		return res, exit, convCycles, st, err
	}
	fa := ro.phase("fault-armed")
	var nextTry int64 // earliest cycle for the next full fingerprint
	gap := int64(1)
	for t := int64(0); t < o.PostInjectRun; t++ {
		n.Step()
		if n.FaultsInert() {
			res = gc.tmpl
			res.Fault = group[0]
			res.Group = group
			st.simulated = n.Cycle() - gc.snap.cycle
			st.horizon = n.Cycle()
			fa.End()
			return res, ExitFastPath, 0, st, nil
		}
		if rc == nil || !n.FaultsQuiescent() || n.Cycle() < nextTry {
			continue
		}
		pt, ok := rc.tl.At(n.Cycle())
		if !ok || !countersMatch(n, &pt) {
			continue
		}
		if n.Fingerprint() == pt.State &&
			golden.EjectionsHash(n.Ejections()) == pt.EjectHash {
			ro.event("fp_probe", n.Cycle(), "match", nil)
			st.simulated = n.Cycle() - gc.snap.cycle
			st.synthesized += gc.cycle + o.PostInjectRun - n.Cycle()
			st.horizon = gc.cycle + o.PostInjectRun
			fa.End()
			rt := ro.phase("reconverged-tail")
			rt.SetAttr("reconverged_cycle", n.Cycle())
			rt.SetAttr("cycles_synthesized", gc.cycle+o.PostInjectRun-n.Cycle())
			rt.End()
			return synthesizeReconverged(n, eng, fv, rc, plane, gc.cycle, group),
				ExitReconverged, n.Cycle() - gc.cycle, st, nil
		}
		// Counters agreed but state did not (the perturbation is
		// still washing out, or the run diverged for good with
		// conserved flit counts): back off before hashing again.
		ro.event("fp_probe", n.Cycle(), "state mismatch", nil)
		if gap < reconvBackoffCap {
			gap *= 2
		}
		nextTry = n.Cycle() + gap
	}
	fa.End()
	res = finishRun(n, eng, fv, plane, gc, o, group, w, &st, ro)
	st.simulated = n.Cycle() - gc.snap.cycle
	return res, ExitFull, 0, st, nil
}

// runFrontier drives one forked faulty run with the divergence-frontier
// delta engine: only the fault's cone of influence is stepped, every
// other node is replayed from the golden signal transcript (see
// sim.Frontier). The exit paths mirror runOne's exactly — an inert
// plane copies the fault-free template, and reconvergence synthesizes
// the tail — except the reconvergence probe needs no fingerprint
// hashing: a frontier that has shrunk to empty with a clean ejection
// history IS the state identity the PR-5 probe hashes for, so the
// per-cycle check is a few flag and counter compares. A run still
// divergent at window end materializes its untouched region from the
// golden window-end state and finishes (drain, horizon, verdict) as a
// plain full simulation.
func runFrontier(n *sim.Network, eng *core.Engine, fv *forever.Monitor, gc *groupCtx, o Options, group []fault.Fault, plane *fault.Plane, w *worker, st *runStats, ro *runObs) (res RunResult, exit ExitPath, convCycles int64, err error) {
	seeds := make([]int, 0, len(group))
	for _, ft := range group {
		seeds = append(seeds, ft.Site.Router)
	}
	fr := sim.NewFrontier(n, gc.rec, seeds)
	st.frontier = true
	rc := gc.rc
	fa := ro.phase("fault-armed")
	for t := int64(0); t < o.PostInjectRun; t++ {
		fr.Step()
		if n.FaultsInert() {
			res = gc.tmpl
			res.Fault = group[0]
			res.Group = group
			st.simulated = n.Cycle() - gc.snap.cycle
			st.horizon = n.Cycle()
			st.frontierPeak = fr.Peak()
			st.frontierJoins = fr.Joins()
			fa.End()
			return res, ExitFastPath, 0, nil
		}
		if !n.FaultsQuiescent() || !fr.Empty() || !fr.Clean() {
			continue
		}
		pt, ok := rc.tl.At(n.Cycle())
		if !ok || !countersMatch(n, &pt) {
			continue
		}
		ro.event("frontier_empty", n.Cycle(), "reconverged", nil)
		st.simulated = n.Cycle() - gc.snap.cycle
		st.synthesized += gc.cycle + o.PostInjectRun - n.Cycle()
		st.horizon = gc.cycle + o.PostInjectRun
		st.frontierPeak = fr.Peak()
		st.frontierJoins = fr.Joins()
		fa.End()
		rt := ro.phase("reconverged-tail")
		rt.SetAttr("reconverged_cycle", n.Cycle())
		rt.SetAttr("cycles_synthesized", gc.cycle+o.PostInjectRun-n.Cycle())
		rt.End()
		return synthesizeReconverged(n, eng, fv, rc, plane, gc.cycle, group),
			ExitReconverged, n.Cycle() - gc.cycle, nil
	}
	fa.End()
	st.frontierPeak = fr.Peak()
	st.frontierJoins = fr.Joins()
	fr.MaterializeAll(gc.wend)
	res = finishRun(n, eng, fv, plane, gc, o, group, w, st, ro)
	st.simulated = n.Cycle() - gc.snap.cycle
	return res, ExitFull, 0, nil
}

// countersMatch is the cheap precheck run before paying for a full
// fingerprint: a faulty run still carrying divergent traffic almost
// always disagrees with golden on one of these counters, so rejecting
// on them first keeps the per-cycle reconvergence probe at a few
// integer compares.
func countersMatch(n *sim.Network, pt *golden.TimelinePoint) bool {
	return n.FlitsInjected() == pt.FlitsInjected &&
		n.FlitsEjected() == pt.FlitsEjected &&
		n.NextPacketID() == pt.NextPkt &&
		len(n.Ejections()) == pt.Ejections
}

// synthesizeReconverged builds the run's result at the reconvergence
// cycle without simulating the rest of the window, the drain or the
// ForEVeR horizon. Soundness: the state fingerprint and ejection-prefix
// match prove the faulty run's past delivered exactly golden's flits
// and its future will replay golden's cycles bit for bit. Hence the
// verdict is the benign golden-vs-golden verdict; the drain succeeds
// exactly as golden's did; the NoCAlert engine — whose checkers are
// purely combinational per cycle — can assert nothing in the golden
// replay (the fault-free template run detected nothing, a campaign
// precondition checked in Run), so its aggregates are already final;
// and ForEVeR's counter state, a function of the injection and ejection
// histories alone, equals the golden monitor's, so its future flags are
// the golden monitor's recorded tail.
func synthesizeReconverged(n *sim.Network, eng *core.Engine, fv *forever.Monitor, rc *reconvergence, plane *fault.Plane, injectCycle int64, group []fault.Fault) RunResult {
	fired := false
	for i := range group {
		if plane.FiredAt(i) >= 0 {
			fired = true
			break
		}
	}
	res := RunResult{
		Group:   group,
		Fired:   fired,
		Verdict: rc.verdict,
		Drained: true,

		Detected:    eng.Detected(),
		DetectCycle: eng.FirstDetection(),

		CheckersFired:      eng.FiredCheckers(),
		FirstCycleCheckers: eng.FirstCycleCheckers(),
		SimultaneityHist:   eng.SimultaneityHistogram(),
	}
	if len(group) > 0 {
		res.Fault = group[0]
	}
	// The verdict is benign by construction, so malicious is false in
	// every classification below.
	res.Outcome = classify(res.Detected, false)
	if res.Detected {
		res.Latency = res.DetectCycle - injectCycle
	} else {
		res.Latency = -1
	}

	res.CautiousDetected = eng.FirstHighRiskDetection() >= 0
	res.CautiousOutcome = classify(res.CautiousDetected, false)
	if res.CautiousDetected {
		res.CautiousLatency = eng.FirstHighRiskDetection() - injectCycle
	} else {
		res.CautiousLatency = -1
	}

	if fv != nil {
		// Flags the faulty monitor raised during the divergent window
		// come first; past the reconvergence cycle the faulty run would
		// flag exactly when the golden monitor did, so the recorded
		// golden tail completes the picture.
		fd := fv.FirstDetectionAfter(injectCycle)
		if fd < 0 && rc.gfv != nil {
			fd = rc.gfv.FirstDetectionAfter(n.Cycle())
		}
		res.ForeverDetected = fd >= 0
		if res.ForeverDetected {
			res.ForeverLatency = fd - injectCycle
		} else {
			res.ForeverLatency = -1
		}
	} else {
		res.ForeverLatency = -1
	}
	res.ForeverOutcome = classify(res.ForeverDetected, false)
	return res
}

// runSlow executes one run end to end with no early exit. A nil group
// runs with an empty fault plane (used to compute the fast-path
// template).
func runSlow(w *worker, gc *groupCtx, o Options, group []fault.Fault, st *runStats, ro *runObs) (RunResult, error) {
	plane := fault.NewPlane(group...)
	ws := ro.phase("warm-start")
	n, err := w.fork(gc, plane, st, ro)
	if err != nil {
		ws.End()
		return RunResult{}, err
	}
	ws.SetAttr("fork_cycle", gc.snap.cycle)
	ws.SetAttr("replayed_cycles", gc.cycle-gc.snap.cycle)
	ws.End()
	eng := core.NewEngine(n.RouterConfig(), core.Options{Disabled: o.CheckersDisabled})
	n.AttachMonitor(eng)
	fv := findForever(n)
	if fv != nil {
		fv.ClearDetections()
	}
	fa := ro.phase("fault-armed")
	n.Run(o.PostInjectRun)
	fa.End()
	res := finishRun(n, eng, fv, plane, gc, o, group, w, st, ro)
	st.simulated = n.Cycle() - gc.snap.cycle
	return res, nil
}

// finishRun drains the network, runs out the ForEVeR horizon, and
// classifies the run against the golden reference. The horizon run-out
// exists only to give ForEVeR's epoch check a chance to flag anomalies
// after the drain, so it is skipped when no monitor is attached and the
// drain succeeded (an undrained network still steps to the horizon: the
// extra cycles can surface NoCAlert assertions on stuck traffic).
//
// With fast-forward enabled, both phases probe for a frozen fixed point
// (see ffProbe) and synthesize the remainder exactly instead of
// stepping it: a frozen non-quiet network can never drain, so the drain
// verdict is the deadline miss it was headed for; a frozen network
// steps identically through the rest of the horizon, so all that is
// left to compute is ForEVeR's epoch-boundary arithmetic (projected
// from the frozen counters without mutating the monitor) and the
// NoCAlert accumulators (the steady assertion pattern, replayed via
// ffProbe.extend — a deadlocked router that keeps asserting still
// freezes, it just fast-forwards its assertions along with its state).
func finishRun(n *sim.Network, eng *core.Engine, fv *forever.Monitor, plane *fault.Plane, gc *groupCtx, o Options, group []fault.Fault, w *worker, st *runStats, ro *runObs) RunResult {
	var drained, frozen bool
	projectUntil := int64(-1)
	if o.DisableFastForward {
		dr := ro.phase("drain")
		drained = n.Drain(o.DrainDeadline)
		dr.SetAttr("drained", drained)
		dr.End()
		if fv != nil || !drained {
			hz := ro.phase("horizon")
			horizon := foreverHorizon(n.Cycle(), o.Forever)
			for n.Cycle() < horizon {
				n.Step()
			}
			hz.SetAttr("horizon_cycle", horizon)
			hz.End()
		}
	} else {
		var probe ffProbe
		n.StopInjection()
		dr := ro.phase("drain")
		drainEnd := n.Cycle() + o.DrainDeadline
		for n.Cycle() < drainEnd {
			if n.Quiet() {
				drained = true
				break
			}
			if probe.frozen(n, eng, fv) {
				frozen = true
				break
			}
			n.Step()
		}
		if !drained && !frozen {
			drained = n.Quiet()
		}
		if frozen {
			ro.event("ff_freeze", n.Cycle(), "frozen in drain", nil)
		}
		dr.SetAttr("drained", drained)
		dr.SetAttr("frozen", frozen)
		dr.End()
		logical := n.Cycle()
		if frozen {
			// A frozen, non-quiet network would have stepped unchanged
			// to the deadline and missed it.
			st.synthesized += drainEnd - n.Cycle()
			logical = drainEnd
		}
		if fv != nil || !drained {
			hz := ro.phase("horizon")
			horizon := foreverHorizon(logical, o.Forever)
			if !frozen {
				for n.Cycle() < horizon {
					if probe.frozen(n, eng, fv) {
						frozen = true
						ro.event("ff_freeze", n.Cycle(), "frozen in horizon", nil)
						break
					}
					n.Step()
				}
			}
			if frozen {
				st.synthesized += horizon - max64(n.Cycle(), logical)
				projectUntil = horizon
			}
			hz.SetAttr("horizon_cycle", horizon)
			hz.SetAttr("frozen", frozen)
			hz.End()
		}
		if frozen {
			// The frozen state re-emits its assertion pattern on every
			// synthesized cycle; fold all of them into the engine so the
			// accumulators match a full simulation to the horizon.
			probe.extend(eng, projectUntil-n.Cycle())
			ff := ro.phase("fast-forward")
			ff.SetAttr("frozen_cycle", n.Cycle())
			ff.SetAttr("project_until", projectUntil)
			ff.SetAttr("cycles_synthesized", st.synthesized)
			ff.End()
		}
	}
	// The logical end cycle this run's accounting covers: with a frozen
	// fast-forward the synthesized remainder runs to projectUntil,
	// otherwise the network really stepped to its final cycle. Callers
	// set st.simulated from the same n.Cycle(), closing the invariant
	// warmSaved + simulated + synthesized == horizon.
	if projectUntil >= 0 {
		st.horizon = projectUntil
	} else {
		st.horizon = n.Cycle()
	}

	w.flog = golden.FromEjectionsInto(w.flog, n.Ejections(), gc.cycle)
	verdict := golden.Compare(gc.goldenLog, w.flog, drained)
	malicious := !verdict.OK()

	fired := false
	for i := range group {
		if plane.FiredAt(i) >= 0 {
			fired = true
			break
		}
	}
	res := RunResult{
		Group:   group,
		Fired:   fired,
		Verdict: verdict,
		Drained: drained,

		Detected:    eng.Detected(),
		DetectCycle: eng.FirstDetection(),

		CheckersFired:      eng.FiredCheckers(),
		FirstCycleCheckers: eng.FirstCycleCheckers(),
		SimultaneityHist:   eng.SimultaneityHistogram(),
	}
	if len(group) > 0 {
		res.Fault = group[0]
	}
	res.Outcome = classify(res.Detected, malicious)
	if res.Detected {
		res.Latency = res.DetectCycle - gc.cycle
	} else {
		res.Latency = -1
	}

	res.CautiousDetected = eng.FirstHighRiskDetection() >= 0
	res.CautiousOutcome = classify(res.CautiousDetected, malicious)
	if res.CautiousDetected {
		res.CautiousLatency = eng.FirstHighRiskDetection() - gc.cycle
	} else {
		res.CautiousLatency = -1
	}

	if fv != nil {
		fd := fv.FirstDetectionAfter(gc.cycle)
		if fd < 0 && projectUntil >= 0 {
			// The frozen state replays identically through [n.Cycle(),
			// projectUntil): only the epoch-boundary checks remain.
			fd = fv.ProjectFrozenDetection(n.Cycle(), projectUntil)
		}
		res.ForeverDetected = fd >= 0
		if res.ForeverDetected {
			res.ForeverLatency = fd - gc.cycle
		} else {
			res.ForeverLatency = -1
		}
	} else {
		res.ForeverLatency = -1
	}
	res.ForeverOutcome = classify(res.ForeverDetected, malicious)
	return res
}

// SampleFaults draws n distinct single-bit transient faults injecting
// at cycle, uniformly over every fault location of the mesh (or all of
// them when n is 0 or exceeds the population). The draw is
// deterministic in seed. Sparse draws (2n < population) sample global
// bit indices directly instead of materializing one Fault per location,
// so sampling a few hundred faults from a large mesh stays O(sites+n)
// rather than O(population).
func SampleFaults(p fault.Params, n int, seed uint64, cycle int64) []fault.Fault {
	sites := p.EnumerateSites()
	prefix := make([]int, len(sites)+1)
	for i, s := range sites {
		prefix[i+1] = prefix[i] + s.Width
	}
	total := prefix[len(sites)]
	if n <= 0 || n >= total {
		all := make([]fault.Fault, 0, total)
		for _, s := range sites {
			all = append(all, fault.BitFaults(s, cycle, fault.Transient)...)
		}
		return all
	}
	g := rng.New(seed, 0xfa17)
	idx := make([]int, 0, n)
	if 2*n >= total {
		// Dense draw: a permutation prefix is cheaper than rejection
		// sampling when we want a large fraction of the population.
		idx = append(idx, g.Perm(total)[:n]...)
	} else {
		seen := make(map[int]struct{}, n)
		for len(idx) < n {
			v := g.Intn(total)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			idx = append(idx, v)
		}
	}
	out := make([]fault.Fault, len(idx))
	for i, v := range idx {
		si := sort.SearchInts(prefix, v+1) - 1
		s := sites[si]
		out[i] = fault.Fault{Site: s, Bit: v - prefix[si], Cycle: cycle, Type: fault.Transient}
	}
	return out
}
