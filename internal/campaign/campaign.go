// Package campaign orchestrates the paper's fault-injection methodology
// (§5.2–5.4): one fault-free golden run plus one forked, fault-injected
// run per fault, each classified against the Golden Reference into
// true/false positives/negatives for NoCAlert, NoCAlert-Cautious and
// ForEVeR. The aggregated report regenerates Figures 6–9 and
// Observations 1–5.
//
// Forking works by warming a single network to the injection cycle and
// re-forking it per fault, so a cycle-32K campaign pays the warmup once.
// Runs execute on a small worker pool; each worker reuses one clone
// arena (sim.Network.CloneInto) across all its runs, and runs whose
// fault provably never fired short-circuit to a precomputed fault-free
// template instead of simulating the remaining drain and ForEVeR
// horizon.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"nocalert/internal/core"
	"nocalert/internal/fault"
	"nocalert/internal/forever"
	"nocalert/internal/golden"
	"nocalert/internal/metrics"
	"nocalert/internal/rng"
	"nocalert/internal/sim"
)

// Outcome classifies one mechanism's behaviour on one injected fault,
// following the paper's four categories (§5.4).
type Outcome int

const (
	// TrueNegative: nothing detected, fault benign.
	TrueNegative Outcome = iota
	// TruePositive: detected, fault caused a network-correctness
	// violation.
	TruePositive
	// FalsePositive: detected, fault benign.
	FalsePositive
	// FalseNegative: not detected, fault caused a violation — the
	// outcome NoCAlert's design goal drives to zero.
	FalseNegative
)

// String returns the outcome's abbreviation.
func (o Outcome) String() string {
	switch o {
	case TrueNegative:
		return "TN"
	case TruePositive:
		return "TP"
	case FalsePositive:
		return "FP"
	case FalseNegative:
		return "FN"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// ExitPath identifies how a run reached its result. The three paths are
// result-equivalent — reports are byte-identical whichever path resolves
// a run — but differ enormously in cost, so campaigns count them.
type ExitPath int

const (
	// ExitFull: the run simulated PostInjectRun, drain and ForEVeR
	// horizon end to end.
	ExitFull ExitPath = iota
	// ExitFastPath: every fault of the group provably expired without
	// firing; the result was copied from the fault-free template.
	ExitFastPath
	// ExitReconverged: the fault fired but its perturbation washed out —
	// the faulty state matched the golden run's recorded fingerprint mid
	// window, so the tail was synthesized instead of simulated.
	ExitReconverged
)

// String returns a short name for the exit path.
func (e ExitPath) String() string {
	switch e {
	case ExitFull:
		return "full"
	case ExitFastPath:
		return "fastpath"
	case ExitReconverged:
		return "reconverged"
	}
	return fmt.Sprintf("ExitPath(%d)", int(e))
}

func classify(detected, malicious bool) Outcome {
	switch {
	case detected && malicious:
		return TruePositive
	case detected && !malicious:
		return FalsePositive
	case !detected && malicious:
		return FalseNegative
	default:
		return TrueNegative
	}
}

// Options configures a campaign.
type Options struct {
	// Sim is the network and workload under test.
	Sim sim.Config
	// InjectCycle is the network state at which faults strike (the
	// paper uses 0, 32K and 64K).
	InjectCycle int64
	// PostInjectRun is how many cycles injection continues after the
	// fault, giving the perturbation live traffic to interact with.
	PostInjectRun int64
	// DrainDeadline bounds the drain phase; a network that cannot
	// empty by then violates bounded delivery.
	DrainDeadline int64
	// Forever tunes the ForEVeR baseline.
	Forever forever.Options
	// Faults is the list of faults to inject, one run each.
	Faults []fault.Fault
	// FaultGroups, when non-empty, replaces Faults: each group injects
	// together in one run — the multi-fault extension the paper leaves
	// as future work. All faults of a group must inject at InjectCycle.
	FaultGroups [][]fault.Fault
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// CheckersDisabled optionally ablates NoCAlert checkers.
	CheckersDisabled []core.CheckerID
	// DisableFastPath forces every run down the full simulate-and-
	// compare path even when its fault provably never fired. The fast
	// path is bit-identical to the slow path; this switch exists for
	// verification and benchmarking. Disabling it also disables
	// reconvergence detection (which shares the fast path's template).
	DisableFastPath bool
	// DisableReconvergence turns off golden-state reconvergence
	// detection: the golden run records no per-cycle fingerprint and
	// every fired fault simulates its full window, drain and horizon.
	// Reconverged results are byte-identical to fully simulated ones
	// (test-enforced); this switch exists for verification, for
	// measuring the fingerprint overhead, and as an escape hatch.
	DisableReconvergence bool
	// DisableForever runs the campaign without a ForEVeR monitor: the
	// golden run and every faulty run skip the baseline entirely, and
	// finishRun skips the post-drain horizon run-out that exists only to
	// give ForEVeR's epoch check a chance to fire. ForEVeR result fields
	// report not-detected. NoCAlert and Cautious results are unaffected.
	DisableForever bool
	// Progress, when non-nil, is invoked after each completed run with
	// the number of finished runs and the total. Calls are serialized;
	// the callback must not call back into the campaign.
	Progress func(done, total int)
	// Metrics, when non-nil, receives campaign telemetry: run counts,
	// per-run wall-time histograms, fast-path hit/miss counters,
	// outcome and verdict-class counters, and a live faults/sec gauge
	// (see the Metric* name constants). Nil — the default — keeps the
	// hot path free of any telemetry cost.
	Metrics *metrics.Registry
	// OnResult, when non-nil, is invoked after each completed run with
	// the run's index in FaultGroups, its result, its wall time and the
	// exit path that resolved it. Calls are serialized under the same
	// mutex as Progress (and precede the Progress call for the same
	// run); the result pointer is only valid during the call if the
	// caller mutates the report afterwards — copy, don't retain. The
	// faultcampaign CLI streams its NDJSON run trace from here.
	OnResult func(index int, res *RunResult, wall time.Duration, exit ExitPath)
	// Context, when non-nil, cancels the campaign cooperatively: no new
	// runs start after it is done and Run returns its error. Runs
	// already in flight complete first.
	Context context.Context
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.PostInjectRun <= 0 {
		out.PostInjectRun = 500
	}
	if out.DrainDeadline <= 0 {
		out.DrainDeadline = 10000
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.Context == nil {
		out.Context = context.Background()
	}
	if len(out.FaultGroups) == 0 {
		if len(out.Faults) == 0 {
			return out, errors.New("campaign: no faults to inject")
		}
		out.FaultGroups = make([][]fault.Fault, len(out.Faults))
		for i, f := range out.Faults {
			out.FaultGroups[i] = []fault.Fault{f}
		}
	}
	for _, g := range out.FaultGroups {
		if len(g) == 0 {
			return out, errors.New("campaign: empty fault group")
		}
		for _, f := range g {
			if f.Cycle != o.InjectCycle {
				return out, fmt.Errorf("campaign: fault %v does not inject at cycle %d", &f, o.InjectCycle)
			}
		}
	}
	return out, nil
}

// RunResult is the outcome of one fault-injected run.
type RunResult struct {
	// Fault is the injected fault (the first of the group in
	// multi-fault runs; see Group).
	Fault fault.Fault
	// Group holds every fault of a multi-fault run.
	Group []fault.Fault
	// Fired reports whether the fault actually corrupted a live signal
	// (a fault on an idle module may never touch anything).
	Fired bool
	// Verdict is the golden-reference judgment.
	Verdict golden.Verdict
	// Drained reports whether the faulty network emptied in time.
	Drained bool

	// NoCAlert results.
	Detected    bool
	DetectCycle int64 // absolute cycle of first assertion
	Latency     int64 // DetectCycle - injection cycle
	Outcome     Outcome

	// NoCAlert-Cautious results (low-risk checkers 1 and 3 deferred).
	CautiousDetected bool
	CautiousLatency  int64
	CautiousOutcome  Outcome

	// ForEVeR results.
	ForeverDetected bool
	ForeverLatency  int64
	ForeverOutcome  Outcome

	// Checker attribution.
	CheckersFired      []core.CheckerID
	FirstCycleCheckers []core.CheckerID
	SimultaneityHist   []int64
}

// Report is the aggregated campaign output.
type Report struct {
	Opts Options
	// GoldenEjections is the number of flits the golden run delivered
	// after the injection cycle.
	GoldenEjections int
	// GoldenForeverFalsePositive reports whether ForEVeR flagged the
	// fault-free golden continuation (an epoch-tuning artifact).
	GoldenForeverFalsePositive bool
	// Results holds one entry per injected fault, in input order.
	Results []RunResult
	// FastPathHits counts runs resolved by the early-exit fast path
	// (fault provably never fired; result synthesized from the
	// fault-free template instead of simulating drain and horizon).
	FastPathHits int
	// ReconvergedHits counts runs whose fault fired but whose state
	// reconverged with the golden run's recorded fingerprint before the
	// post-injection window ended; their tails were synthesized from the
	// golden record instead of simulated.
	ReconvergedHits int
}

// worker holds the per-worker reusable state: a CloneInto target
// network (with its flit arena) and a golden.Log for indexing faulty
// ejections. Reusing these turns the per-fault allocation storm into a
// once-per-worker cost.
type worker struct {
	net  *sim.Network
	flog *golden.Log
}

// Run executes the campaign.
func Run(opts Options) (*Report, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}

	// Golden run: warm to the injection cycle, fork the base state,
	// then continue fault-free to produce the reference log.
	warm, err := sim.New(o.Sim, nil)
	if err != nil {
		return nil, err
	}
	if !o.DisableForever {
		warm.AttachMonitor(forever.NewMonitor(warm.RouterConfig(), o.Forever))
	}
	for warm.Cycle() < o.InjectCycle {
		warm.Step()
	}
	base := warm.Clone(nil)

	goldenNet := warm // continues fault-free
	wantReconv := !o.DisableFastPath && !o.DisableReconvergence
	var tl *golden.Timeline
	if wantReconv {
		// Record the golden run's per-cycle state fingerprints through
		// the post-injection window — the timeline faulty runs compare
		// against once their fault plane goes quiescent. Recording is
		// a one-time cost on the golden run only; with reconvergence
		// disabled the plain Run loop below is untouched.
		tl = golden.NewTimeline(int(o.PostInjectRun))
		ejStart := len(goldenNet.Ejections())
		for t := int64(0); t < o.PostInjectRun; t++ {
			goldenNet.Step()
			tl.Observe(goldenNet, goldenNet.Ejections()[ejStart:])
		}
	} else {
		goldenNet.Run(o.PostInjectRun)
	}
	goldenDrained := goldenNet.Drain(o.DrainDeadline)
	if !goldenDrained {
		return nil, fmt.Errorf("campaign: fault-free golden run failed to drain by cycle %d (inflight=%d)",
			goldenNet.Cycle(), goldenNet.InFlight())
	}
	if !o.DisableForever {
		runHorizonExtra := foreverHorizon(goldenNet.Cycle(), o.Forever)
		for goldenNet.Cycle() < runHorizonExtra {
			goldenNet.Step()
		}
	}
	goldenLog := golden.FromEjections(goldenNet.Ejections(), o.InjectCycle)
	gfv := findForever(goldenNet)
	goldenFvFP := gfv != nil && gfv.FirstDetectionAfter(o.InjectCycle) >= 0

	// Fault-free template for the fast path: one full run through the
	// same per-fault code path, with an empty fault plane. A run whose
	// faults provably never fired is bit-identical to this run, so its
	// result can be copied instead of simulated (slices are shared
	// read-only across all fast-path results).
	var tmpl RunResult
	if !o.DisableFastPath {
		var tw worker
		tmpl = runSlow(&tw, base, goldenLog, o, nil)
	}

	// Reconvergence context for the workers. The synthesis shortcut is
	// only sound when the golden continuation is clean: no NoCAlert
	// assertion anywhere in the fault-free template (so freezing the
	// engine at the reconvergence cycle loses nothing), a benign
	// golden-vs-golden verdict, and — when ForEVeR is on — a golden
	// monitor whose detection list stayed under its cap (so the recorded
	// tail is complete). All of these hold for any sanely configured
	// campaign; if one does not, reconvergence silently disables and
	// every fired fault takes the full path.
	var rc *reconvergence
	if wantReconv {
		sound := !tmpl.Detected && tmpl.Drained && tmpl.Verdict.OK()
		if !o.DisableForever {
			sound = sound && gfv != nil && len(gfv.Detections()) < forever.DetectionCap
		}
		if sound {
			rc = &reconvergence{tl: tl, gfv: gfv, verdict: tmpl.Verdict}
		}
	}

	report := &Report{
		Opts:                       o,
		GoldenEjections:            goldenLog.Total(),
		GoldenForeverFalsePositive: goldenFvFP,
		Results:                    make([]RunResult, len(o.FaultGroups)),
	}

	var (
		wg         sync.WaitGroup
		progMu     sync.Mutex
		done       int
		fastHits   int
		reconvHits int
	)
	total := len(o.FaultGroups)
	var inst *instruments
	if o.Metrics != nil {
		inst = newInstruments(o.Metrics, o.Workers, total)
	}
	// Per-run wall clocks are only read when someone is listening; the
	// two time.Now calls are noise next to a run's milliseconds, but the
	// metrics-off path stays byte-for-byte the old loop.
	needTiming := inst != nil || o.OnResult != nil
	campaignStart := time.Now()
	jobs := make(chan int)
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var wk worker
			for i := range jobs {
				var runStart time.Time
				if needTiming {
					runStart = time.Now()
				}
				res, exit, convCycles := runOne(&wk, base, goldenLog, &tmpl, rc, o, o.FaultGroups[i])
				var wall time.Duration
				if needTiming {
					wall = time.Since(runStart)
				}
				report.Results[i] = res
				progMu.Lock()
				done++
				switch exit {
				case ExitFastPath:
					fastHits++
				case ExitReconverged:
					reconvHits++
				}
				if inst != nil {
					inst.observe(&report.Results[i], wall, exit, convCycles, done, time.Since(campaignStart))
				}
				if o.OnResult != nil {
					o.OnResult(i, &report.Results[i], wall, exit)
				}
				if o.Progress != nil {
					o.Progress(done, total)
				}
				progMu.Unlock()
			}
		}()
	}
	ctx := o.Context
	var ctxErr error
feed:
	for i := range o.FaultGroups {
		select {
		case jobs <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if ctxErr != nil {
		return nil, ctxErr
	}
	report.FastPathHits = fastHits
	report.ReconvergedHits = reconvHits
	return report, nil
}

// foreverHorizon returns the cycle up to which a run must continue so
// that ForEVeR's epoch mechanism has a chance to flag anomalies that
// materialized before the drain completed: the next epoch boundary
// plus one full epoch.
func foreverHorizon(cycle int64, o forever.Options) int64 {
	epoch := o.Epoch
	if epoch <= 0 {
		epoch = forever.DefaultOptions().Epoch
	}
	next := (cycle/epoch + 1) * epoch
	return next + epoch
}

func findForever(n *sim.Network) *forever.Monitor {
	for _, m := range n.Monitors() {
		if fv, ok := m.(*forever.Monitor); ok {
			return fv
		}
	}
	return nil
}

// reconvergence bundles the golden-side state the workers' reconvergence
// check consults: the per-cycle fingerprint timeline, the golden ForEVeR
// monitor (for synthesizing the detection tail) and the benign
// golden-vs-golden verdict reconverged runs inherit.
type reconvergence struct {
	tl      *golden.Timeline
	gfv     *forever.Monitor
	verdict golden.Verdict
}

// reconvBackoffCap bounds the exponential backoff between full
// fingerprint attempts. Reconvergence is absorbing — once the faulty
// state equals golden's it stays equal — so skipping candidate cycles
// after a failed attempt never loses a match, it only detects it a few
// cycles later; the backoff keeps permanently diverged runs (whose
// cheap counters may still match) from paying a full state hash every
// remaining cycle of the window.
const reconvBackoffCap = 16

// runOne executes one fault group's run. When the fast path is enabled
// and every fault of the group provably expired without firing, the
// remaining simulation is skipped and the fault-free template result is
// returned (ExitFastPath); the template is exact because an inert
// plane's run is bit-identical to the fault-free continuation from the
// same base state. Otherwise, once the plane is quiescent (fired, but
// can never fire again), each cycle's state is compared against the
// golden timeline; on a fingerprint match with matching ejection
// history the rest of the run is provably identical to golden's, so
// the result is synthesized (ExitReconverged) instead of simulated.
// convCycles is the reconvergence latency (cycles after injection);
// zero for the other exit paths.
func runOne(w *worker, base *sim.Network, goldenLog *golden.Log, tmpl *RunResult, rc *reconvergence, o Options, group []fault.Fault) (res RunResult, exit ExitPath, convCycles int64) {
	if !o.DisableFastPath {
		plane := fault.NewPlane(group...)
		n := base.CloneInto(w.net, plane)
		w.net = n
		eng := core.NewEngine(n.RouterConfig(), core.Options{Disabled: o.CheckersDisabled})
		n.AttachMonitor(eng)
		fv := findForever(n)
		if fv != nil {
			fv.ClearDetections()
		}
		var nextTry int64 // earliest cycle for the next full fingerprint
		gap := int64(1)
		for t := int64(0); t < o.PostInjectRun; t++ {
			n.Step()
			if n.FaultsInert() {
				res = *tmpl
				res.Fault = group[0]
				res.Group = group
				return res, ExitFastPath, 0
			}
			if rc == nil || !n.FaultsQuiescent() || n.Cycle() < nextTry {
				continue
			}
			pt, ok := rc.tl.At(n.Cycle())
			if !ok || !countersMatch(n, &pt) {
				continue
			}
			if n.Fingerprint() == pt.State &&
				golden.EjectionsHash(n.Ejections()) == pt.EjectHash {
				return synthesizeReconverged(n, eng, fv, rc, plane, o, group),
					ExitReconverged, n.Cycle() - o.InjectCycle
			}
			// Counters agreed but state did not (the perturbation is
			// still washing out, or the run diverged for good with
			// conserved flit counts): back off before hashing again.
			if gap < reconvBackoffCap {
				gap *= 2
			}
			nextTry = n.Cycle() + gap
		}
		return finishRun(n, eng, fv, plane, goldenLog, o, group, w), ExitFull, 0
	}
	return runSlow(w, base, goldenLog, o, group), ExitFull, 0
}

// countersMatch is the cheap precheck run before paying for a full
// fingerprint: a faulty run still carrying divergent traffic almost
// always disagrees with golden on one of these counters, so rejecting
// on them first keeps the per-cycle reconvergence probe at a few
// integer compares.
func countersMatch(n *sim.Network, pt *golden.TimelinePoint) bool {
	return n.FlitsInjected() == pt.FlitsInjected &&
		n.FlitsEjected() == pt.FlitsEjected &&
		n.NextPacketID() == pt.NextPkt &&
		len(n.Ejections()) == pt.Ejections
}

// synthesizeReconverged builds the run's result at the reconvergence
// cycle without simulating the rest of the window, the drain or the
// ForEVeR horizon. Soundness: the state fingerprint and ejection-prefix
// match prove the faulty run's past delivered exactly golden's flits
// and its future will replay golden's cycles bit for bit. Hence the
// verdict is the benign golden-vs-golden verdict; the drain succeeds
// exactly as golden's did; the NoCAlert engine — whose checkers are
// purely combinational per cycle — can assert nothing in the golden
// replay (the fault-free template run detected nothing, a campaign
// precondition checked in Run), so its aggregates are already final;
// and ForEVeR's counter state, a function of the injection and ejection
// histories alone, equals the golden monitor's, so its future flags are
// the golden monitor's recorded tail.
func synthesizeReconverged(n *sim.Network, eng *core.Engine, fv *forever.Monitor, rc *reconvergence, plane *fault.Plane, o Options, group []fault.Fault) RunResult {
	fired := false
	for i := range group {
		if plane.FiredAt(i) >= 0 {
			fired = true
			break
		}
	}
	res := RunResult{
		Group:   group,
		Fired:   fired,
		Verdict: rc.verdict,
		Drained: true,

		Detected:    eng.Detected(),
		DetectCycle: eng.FirstDetection(),

		CheckersFired:      eng.FiredCheckers(),
		FirstCycleCheckers: eng.FirstCycleCheckers(),
		SimultaneityHist:   eng.SimultaneityHistogram(),
	}
	if len(group) > 0 {
		res.Fault = group[0]
	}
	// The verdict is benign by construction, so malicious is false in
	// every classification below.
	res.Outcome = classify(res.Detected, false)
	if res.Detected {
		res.Latency = res.DetectCycle - o.InjectCycle
	} else {
		res.Latency = -1
	}

	res.CautiousDetected = eng.FirstHighRiskDetection() >= 0
	res.CautiousOutcome = classify(res.CautiousDetected, false)
	if res.CautiousDetected {
		res.CautiousLatency = eng.FirstHighRiskDetection() - o.InjectCycle
	} else {
		res.CautiousLatency = -1
	}

	if fv != nil {
		// Flags the faulty monitor raised during the divergent window
		// come first; past the reconvergence cycle the faulty run would
		// flag exactly when the golden monitor did, so the recorded
		// golden tail completes the picture.
		fd := fv.FirstDetectionAfter(o.InjectCycle)
		if fd < 0 && rc.gfv != nil {
			fd = rc.gfv.FirstDetectionAfter(n.Cycle())
		}
		res.ForeverDetected = fd >= 0
		if res.ForeverDetected {
			res.ForeverLatency = fd - o.InjectCycle
		} else {
			res.ForeverLatency = -1
		}
	} else {
		res.ForeverLatency = -1
	}
	res.ForeverOutcome = classify(res.ForeverDetected, false)
	return res
}

// runSlow executes one run end to end with no early exit. A nil group
// runs with an empty fault plane (used to compute the fast-path
// template).
func runSlow(w *worker, base *sim.Network, goldenLog *golden.Log, o Options, group []fault.Fault) RunResult {
	plane := fault.NewPlane(group...)
	n := base.CloneInto(w.net, plane)
	w.net = n
	eng := core.NewEngine(n.RouterConfig(), core.Options{Disabled: o.CheckersDisabled})
	n.AttachMonitor(eng)
	fv := findForever(n)
	if fv != nil {
		fv.ClearDetections()
	}
	n.Run(o.PostInjectRun)
	return finishRun(n, eng, fv, plane, goldenLog, o, group, w)
}

// finishRun drains the network, runs out the ForEVeR horizon, and
// classifies the run against the golden reference. The horizon run-out
// exists only to give ForEVeR's epoch check a chance to flag anomalies
// after the drain, so it is skipped when no monitor is attached and the
// drain succeeded (an undrained network still steps to the horizon: the
// extra cycles can surface NoCAlert assertions on stuck traffic).
func finishRun(n *sim.Network, eng *core.Engine, fv *forever.Monitor, plane *fault.Plane, goldenLog *golden.Log, o Options, group []fault.Fault, w *worker) RunResult {
	drained := n.Drain(o.DrainDeadline)
	if fv != nil || !drained {
		horizon := foreverHorizon(n.Cycle(), o.Forever)
		for n.Cycle() < horizon {
			n.Step()
		}
	}

	w.flog = golden.FromEjectionsInto(w.flog, n.Ejections(), o.InjectCycle)
	verdict := golden.Compare(goldenLog, w.flog, drained)
	malicious := !verdict.OK()

	fired := false
	for i := range group {
		if plane.FiredAt(i) >= 0 {
			fired = true
			break
		}
	}
	res := RunResult{
		Group:   group,
		Fired:   fired,
		Verdict: verdict,
		Drained: drained,

		Detected:    eng.Detected(),
		DetectCycle: eng.FirstDetection(),

		CheckersFired:      eng.FiredCheckers(),
		FirstCycleCheckers: eng.FirstCycleCheckers(),
		SimultaneityHist:   eng.SimultaneityHistogram(),
	}
	if len(group) > 0 {
		res.Fault = group[0]
	}
	res.Outcome = classify(res.Detected, malicious)
	if res.Detected {
		res.Latency = res.DetectCycle - o.InjectCycle
	} else {
		res.Latency = -1
	}

	res.CautiousDetected = eng.FirstHighRiskDetection() >= 0
	res.CautiousOutcome = classify(res.CautiousDetected, malicious)
	if res.CautiousDetected {
		res.CautiousLatency = eng.FirstHighRiskDetection() - o.InjectCycle
	} else {
		res.CautiousLatency = -1
	}

	if fv != nil {
		fd := fv.FirstDetectionAfter(o.InjectCycle)
		res.ForeverDetected = fd >= 0
		if res.ForeverDetected {
			res.ForeverLatency = fd - o.InjectCycle
		} else {
			res.ForeverLatency = -1
		}
	} else {
		res.ForeverLatency = -1
	}
	res.ForeverOutcome = classify(res.ForeverDetected, malicious)
	return res
}

// SampleFaults draws n distinct single-bit transient faults injecting
// at cycle, uniformly over every fault location of the mesh (or all of
// them when n is 0 or exceeds the population). The draw is
// deterministic in seed. Sparse draws (2n < population) sample global
// bit indices directly instead of materializing one Fault per location,
// so sampling a few hundred faults from a large mesh stays O(sites+n)
// rather than O(population).
func SampleFaults(p fault.Params, n int, seed uint64, cycle int64) []fault.Fault {
	sites := p.EnumerateSites()
	prefix := make([]int, len(sites)+1)
	for i, s := range sites {
		prefix[i+1] = prefix[i] + s.Width
	}
	total := prefix[len(sites)]
	if n <= 0 || n >= total {
		all := make([]fault.Fault, 0, total)
		for _, s := range sites {
			all = append(all, fault.BitFaults(s, cycle, fault.Transient)...)
		}
		return all
	}
	g := rng.New(seed, 0xfa17)
	idx := make([]int, 0, n)
	if 2*n >= total {
		// Dense draw: a permutation prefix is cheaper than rejection
		// sampling when we want a large fraction of the population.
		idx = append(idx, g.Perm(total)[:n]...)
	} else {
		seen := make(map[int]struct{}, n)
		for len(idx) < n {
			v := g.Intn(total)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			idx = append(idx, v)
		}
	}
	out := make([]fault.Fault, len(idx))
	for i, v := range idx {
		si := sort.SearchInts(prefix, v+1) - 1
		s := sites[si]
		out[i] = fault.Fault{Site: s, Bit: v - prefix[si], Cycle: cycle, Type: fault.Transient}
	}
	return out
}
