package campaign

import (
	"context"
	"reflect"
	"testing"

	"nocalert/internal/fault"
	"nocalert/internal/forever"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// idleRCFault returns a transient fault on an RC destination-wire site.
// With zero injected traffic no VC ever enters the routing state, so
// the RC unit is never consulted and the fault provably cannot fire —
// the canonical fast-path candidate.
func idleRCFault(t *testing.T, rc *router.Config, cycle int64) fault.Fault {
	t.Helper()
	params := fault.Params{Mesh: rc.Mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	for _, s := range params.EnumerateSites() {
		if s.Kind == fault.RCInDestX {
			return fault.Fault{Site: s, Bit: 0, Cycle: cycle, Type: fault.Transient}
		}
	}
	t.Fatal("no RC site found")
	return fault.Fault{}
}

// TestFastPathMatchesSlowPathOnIdleSite injects a fault at a site the
// idle network never consults and checks the early-exit result is
// byte-identical to the fully simulated one.
func TestFastPathMatchesSlowPathOnIdleSite(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	opts := Options{
		Sim:           sim.Config{Router: rc, InjectionRate: 0, Seed: 2},
		InjectCycle:   50,
		PostInjectRun: 200,
		DrainDeadline: 2000,
		Forever:       forever.Options{Epoch: 200, HopLatency: 1},
		Faults:        []fault.Fault{idleRCFault(t, &rc, 50)},
		Workers:       1,
	}

	fastRep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if fastRep.FastPathHits != 1 {
		t.Fatalf("FastPathHits = %d, want 1 (idle-site fault must take the fast path)", fastRep.FastPathHits)
	}

	opts.DisableFastPath = true
	slowRep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if slowRep.FastPathHits != 0 {
		t.Fatalf("FastPathHits = %d with fast path disabled, want 0", slowRep.FastPathHits)
	}
	if slowRep.Results[0].Fired {
		t.Fatal("idle-site fault fired; the test premise is broken")
	}
	if !reflect.DeepEqual(fastRep.Results[0], slowRep.Results[0]) {
		t.Fatalf("fast-path result differs from slow-path result:\nfast: %+v\nslow: %+v",
			fastRep.Results[0], slowRep.Results[0])
	}
}

// TestFastPathBitIdenticalCampaign runs the same loaded campaign with
// the fast path on and off and requires identical classification for
// every fault — the acceptance bar for the optimization.
func TestFastPathBitIdenticalCampaign(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	faults := SampleFaults(params, 60, 7, 150)
	opts := Options{
		Sim:           sim.Config{Router: rc, InjectionRate: 0.12, Seed: 3},
		InjectCycle:   150,
		PostInjectRun: 300,
		DrainDeadline: 4000,
		Forever:       forever.Options{Epoch: 300, HopLatency: 1},
		Faults:        faults,
	}

	fastRep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableFastPath = true
	slowRep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fastRep.Results {
		// Verdict.Reasons is diagnostic text whose order follows map
		// iteration (nondeterministic even between two identical slow
		// runs); every other field must match exactly.
		fr, sr := fastRep.Results[i], slowRep.Results[i]
		if len(fr.Verdict.Reasons) != len(sr.Verdict.Reasons) {
			t.Fatalf("result %d reason count differs: %d vs %d", i, len(fr.Verdict.Reasons), len(sr.Verdict.Reasons))
		}
		fr.Verdict.Reasons, sr.Verdict.Reasons = nil, nil
		if !reflect.DeepEqual(fr, sr) {
			t.Fatalf("result %d (%v) differs between fast and slow paths:\nfast: %+v\nslow: %+v",
				i, &fr.Fault, fr, sr)
		}
	}
	t.Logf("fast-path hits: %d of %d runs", fastRep.FastPathHits, len(fastRep.Results))
}

// TestProgressCallback checks the callback fires once per run, with
// monotonically increasing counts ending at the total.
func TestProgressCallback(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	faults := SampleFaults(params, 12, 9, 50)

	var calls []int
	_, err := Run(Options{
		Sim:           sim.Config{Router: rc, InjectionRate: 0.1, Seed: 4},
		InjectCycle:   50,
		PostInjectRun: 150,
		DrainDeadline: 2000,
		Forever:       forever.Options{Epoch: 200, HopLatency: 1},
		Faults:        faults,
		Progress: func(done, total int) {
			if total != len(faults) {
				t.Errorf("Progress total = %d, want %d", total, len(faults))
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(faults) {
		t.Fatalf("Progress called %d times, want %d", len(calls), len(faults))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("Progress done sequence %v not monotone", calls)
		}
	}
}

// TestContextCancellation checks a cancelled context aborts the
// campaign with its error instead of running every fault.
func TestContextCancellation(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	faults := SampleFaults(params, 50, 9, 50)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(Options{
		Sim:           sim.Config{Router: rc, InjectionRate: 0.1, Seed: 4},
		InjectCycle:   50,
		PostInjectRun: 150,
		DrainDeadline: 2000,
		Forever:       forever.Options{Epoch: 200, HopLatency: 1},
		Faults:        faults,
		Workers:       1,
		Context:       ctx,
	})
	if err != context.Canceled {
		t.Fatalf("Run with cancelled context returned %v, want context.Canceled", err)
	}
}

// TestSampleFaultsSparseDistinct checks the sparse sampler (which no
// longer materializes the full fault population) returns n distinct,
// in-range faults deterministically.
func TestSampleFaultsSparseDistinct(t *testing.T) {
	params := fault.Params{Mesh: topology.NewMesh(8, 8), VCs: 4, BufDepth: 5}
	a := SampleFaults(params, 300, 42, 100)
	b := SampleFaults(params, 300, 42, 100)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sparse SampleFaults is not deterministic in seed")
	}
	if len(a) != 300 {
		t.Fatalf("got %d faults, want 300", len(a))
	}
	seen := map[fault.Fault]bool{}
	for _, f := range a {
		if f.Bit < 0 || f.Bit >= f.Site.Width {
			t.Fatalf("fault %v has out-of-range bit", &f)
		}
		if f.Cycle != 100 || f.Type != fault.Transient {
			t.Fatalf("fault %v has wrong cycle or type", &f)
		}
		if seen[f] {
			t.Fatalf("duplicate fault %v", &f)
		}
		seen[f] = true
	}
	if c := SampleFaults(params, 300, 43, 100); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical samples")
	}
}
