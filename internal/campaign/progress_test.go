package campaign

import (
	"math"
	"testing"
	"time"
)

// TestEstimateETAGuards is the regression test for the resumed-shard
// ETA bug: the progress line used to divide the remaining run count by
// whatever the throughput gauge held, which before the first locally
// completed run of a resumed shard is zero, stale, or ±Inf — printing
// a nonsense ETA. EstimateETA must refuse every degenerate rate.
func TestEstimateETAGuards(t *testing.T) {
	bad := []struct {
		name      string
		remaining int
		fps       float64
	}{
		{"zero rate", 10, 0},
		{"negative rate", 10, -3},
		{"NaN rate", 10, math.NaN()},
		{"+Inf rate (fast-path burst at t~0)", 10, math.Inf(1)},
		{"-Inf rate", 10, math.Inf(-1)},
		{"nothing remaining", 0, 25},
		{"negative remaining", -4, 25},
	}
	for _, c := range bad {
		if eta, ok := EstimateETA(c.remaining, c.fps); ok {
			t.Errorf("%s: got ETA %v, want no estimate", c.name, eta)
		}
	}

	eta, ok := EstimateETA(50, 25)
	if !ok {
		t.Fatal("healthy rate rejected")
	}
	if want := 2 * time.Second; eta != want {
		t.Fatalf("ETA = %v, want %v", eta, want)
	}
}

// TestFleetProgressMonotonicUnderRequeue is the coordinator-level
// extension of the ETA guard: when a shard is requeued onto a survivor
// after its worker dies, the replacement job reports done=0 again and
// (while replaying the checkpoint) can sample a +Inf rate. The fleet
// aggregate must never move backward and must never emit a negative or
// non-finite ETA.
func TestFleetProgressMonotonicUnderRequeue(t *testing.T) {
	var f FleetProgress
	f.SetTotal(96)

	f.Update(0, 20, 32, 10)
	f.Update(1, 16, 32, 8)
	f.Update(2, 30, 32, 12)
	if got := f.Done(); got != 66 {
		t.Fatalf("Done = %d, want 66", got)
	}
	if eta, ok := f.ETA(); !ok || eta <= 0 {
		t.Fatalf("healthy fleet: ETA = %v ok=%v, want positive estimate", eta, ok)
	}

	// Shard 1's worker dies; the requeued job restarts at zero with no
	// live rate. Done must hold shard 1's high-water mark.
	f.Update(1, 0, 32, 0)
	if got := f.Done(); got != 66 {
		t.Fatalf("Done after requeue = %d, want 66 (monotonic)", got)
	}

	// The resumed shard replays its checkpoint in ~0 wall time: +Inf
	// rate sample. The aggregate rate must stay finite.
	f.Update(1, 24, 32, math.Inf(1))
	if r := f.Rate(); math.IsInf(r, 0) || math.IsNaN(r) || r < 0 {
		t.Fatalf("Rate = %v, want finite non-negative", r)
	}
	if eta, ok := f.ETA(); ok && (eta < 0 || eta > 24*time.Hour) {
		t.Fatalf("ETA after +Inf sample = %v, want sane or no estimate", eta)
	}

	// NaN sample likewise.
	f.Update(2, 31, 32, math.NaN())
	if r := f.Rate(); math.IsNaN(r) {
		t.Fatal("NaN shard sample leaked into aggregate rate")
	}

	// All shards finish: done snaps to total, no ETA.
	for i := 0; i < 3; i++ {
		f.Finish(i)
	}
	if got := f.Done(); got != 96 {
		t.Fatalf("Done after finish = %d, want 96", got)
	}
	if eta, ok := f.ETA(); ok {
		t.Fatalf("finished fleet: ETA = %v, want none", eta)
	}
}

// TestFleetProgressTotalsFromShards checks Total accumulates per-shard
// totals when no campaign-wide total was declared.
func TestFleetProgressTotalsFromShards(t *testing.T) {
	var f FleetProgress
	f.Update(0, 1, 10, 0)
	f.Update(1, 2, 12, 0)
	if got := f.Total(); got != 22 {
		t.Fatalf("Total = %d, want 22", got)
	}
	if _, ok := f.ETA(); ok {
		t.Fatal("no live rate: want no ETA")
	}
}
