package campaign

import (
	"math"
	"testing"
	"time"
)

// TestEstimateETAGuards is the regression test for the resumed-shard
// ETA bug: the progress line used to divide the remaining run count by
// whatever the throughput gauge held, which before the first locally
// completed run of a resumed shard is zero, stale, or ±Inf — printing
// a nonsense ETA. EstimateETA must refuse every degenerate rate.
func TestEstimateETAGuards(t *testing.T) {
	bad := []struct {
		name      string
		remaining int
		fps       float64
	}{
		{"zero rate", 10, 0},
		{"negative rate", 10, -3},
		{"NaN rate", 10, math.NaN()},
		{"+Inf rate (fast-path burst at t~0)", 10, math.Inf(1)},
		{"-Inf rate", 10, math.Inf(-1)},
		{"nothing remaining", 0, 25},
		{"negative remaining", -4, 25},
	}
	for _, c := range bad {
		if eta, ok := EstimateETA(c.remaining, c.fps); ok {
			t.Errorf("%s: got ETA %v, want no estimate", c.name, eta)
		}
	}

	eta, ok := EstimateETA(50, 25)
	if !ok {
		t.Fatal("healthy rate rejected")
	}
	if want := 2 * time.Second; eta != want {
		t.Fatalf("ETA = %v, want %v", eta, want)
	}
}
