package campaign

import (
	"math"
	"time"
)

// EstimateETA converts a live faults/sec reading into the expected
// time to finish the remaining runs, reporting ok=false whenever the
// estimate would be nonsense rather than letting the caller divide by
// a degenerate rate. The degenerate cases are real, not theoretical:
// a resumed shard's throughput gauge holds zero (or, in a long-lived
// process, a stale or +Inf value from a previous campaign) before the
// first newly executed run of this campaign completes, and an
// all-fast-path burst can push the measured rate to +Inf when the
// elapsed wall time is still ~0.
func EstimateETA(remaining int, faultsPerSec float64) (time.Duration, bool) {
	if remaining <= 0 {
		return 0, false
	}
	if faultsPerSec <= 0 || math.IsNaN(faultsPerSec) || math.IsInf(faultsPerSec, 0) {
		return 0, false
	}
	return time.Duration(float64(remaining) / faultsPerSec * float64(time.Second)), true
}

// FleetProgress folds the per-shard progress of a distributed campaign
// into one campaign-level view, under the same degenerate-rate rules
// as EstimateETA. Requeues make the naive fold wrong in two ways this
// type exists to absorb:
//
//   - a shard restarting on a survivor reports done=0 again; summing
//     raw reports would make campaign progress move backward (and an
//     "executed this interval" delta go negative). Update keeps the
//     per-shard high-water mark instead, so Done is monotonic.
//   - a resumed shard replays checkpointed runs near-instantly, so a
//     naive rate sample spikes toward +Inf and the ETA collapses to
//     ~0. Rates are summed only over shards with a live, finite
//     sample, and ETA falls back to unknown rather than ±Inf.
//
// Zero value is ready to use.
type FleetProgress struct {
	total   int
	done    map[int]int     // shard index → high-water done count
	rate    map[int]float64 // shard index → last live faults/sec sample
	totalBy map[int]int     // shard index → planned runs (for Remaining)
}

// SetTotal declares the campaign-wide run count (the unsharded
// universe size). Optional: totals reported per shard accumulate too.
func (f *FleetProgress) SetTotal(total int) { f.total = total }

// Update folds one shard progress sample. done may regress (a requeued
// shard restarting from zero) — the high-water mark wins. rate is the
// shard's live faults/sec, taken at face value only when finite and
// positive; pass 0 when the shard has no live sample.
func (f *FleetProgress) Update(shard, done, total int, rate float64) {
	if f.done == nil {
		f.done = make(map[int]int)
		f.rate = make(map[int]float64)
		f.totalBy = make(map[int]int)
	}
	if done > f.done[shard] {
		f.done[shard] = done
	}
	if total > f.totalBy[shard] {
		f.totalBy[shard] = total
	}
	if rate > 0 && !math.IsNaN(rate) && !math.IsInf(rate, 0) {
		f.rate[shard] = rate
	} else {
		delete(f.rate, shard)
	}
}

// Finish marks a shard complete: done snaps to its total and its rate
// sample is retired (a finished shard contributes no throughput).
func (f *FleetProgress) Finish(shard int) {
	if f.totalBy == nil {
		return
	}
	if t := f.totalBy[shard]; t > f.done[shard] {
		f.done[shard] = t
	}
	delete(f.rate, shard)
}

// Done is the campaign-wide completed-run count (monotonic).
func (f *FleetProgress) Done() int {
	n := 0
	for _, d := range f.done {
		n += d
	}
	return n
}

// Total is the campaign-wide planned run count: SetTotal if declared,
// else the sum of per-shard totals seen so far.
func (f *FleetProgress) Total() int {
	if f.total > 0 {
		return f.total
	}
	n := 0
	for _, t := range f.totalBy {
		n += t
	}
	return n
}

// Rate is the aggregate faults/sec across shards with a live finite
// sample.
func (f *FleetProgress) Rate() float64 {
	r := 0.0
	for _, v := range f.rate {
		r += v
	}
	return r
}

// ETA estimates time to campaign completion from the aggregate rate,
// with EstimateETA's guarantees: never negative, never ±Inf/NaN,
// ok=false when there is no usable signal (nothing remaining, or no
// shard currently has a live rate sample).
func (f *FleetProgress) ETA() (time.Duration, bool) {
	return EstimateETA(f.Total()-f.Done(), f.Rate())
}
