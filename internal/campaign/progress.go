package campaign

import (
	"math"
	"time"
)

// EstimateETA converts a live faults/sec reading into the expected
// time to finish the remaining runs, reporting ok=false whenever the
// estimate would be nonsense rather than letting the caller divide by
// a degenerate rate. The degenerate cases are real, not theoretical:
// a resumed shard's throughput gauge holds zero (or, in a long-lived
// process, a stale or +Inf value from a previous campaign) before the
// first newly executed run of this campaign completes, and an
// all-fast-path burst can push the measured rate to +Inf when the
// elapsed wall time is still ~0.
func EstimateETA(remaining int, faultsPerSec float64) (time.Duration, bool) {
	if remaining <= 0 {
		return 0, false
	}
	if faultsPerSec <= 0 || math.IsNaN(faultsPerSec) || math.IsInf(faultsPerSec, 0) {
		return 0, false
	}
	return time.Duration(float64(remaining) / faultsPerSec * float64(time.Second)), true
}
