package campaign

import (
	"encoding/json"
	"fmt"
	"sort"

	"nocalert/internal/trace"
)

// Merged is the folded output of a complete shard set: the campaign
// spec the shards agree on and every run record, in global index
// order. Report() turns it into the same aggregated Report an
// unsharded run produces.
type Merged struct {
	Spec   Spec
	Shards int
	// Records holds one record per fault of the universe, sorted by
	// global index (0..len-1, gap-free — MergeShards guarantees it).
	Records []trace.RunRecord
}

// MergeShards validates and folds a set of shard checkpoints into one
// campaign. It refuses to merge unless the shards:
//
//   - carry identical spec and universe fingerprints (same campaign),
//   - are all finalized (footer present; its checksum was already
//     verified when the checkpoint was read),
//   - form exactly the planner's partition — every shard index 0..N-1
//     present once, ranges tiling [0, universe) with no overlap or gap,
//   - record every index of their range exactly once, with each
//     record's fault identity matching the universe re-derived from
//     the embedded spec.
//
// Passing all checks proves the merged record set covers the identical
// fault universe an unsharded run would execute, one record per fault.
func MergeShards(shards []*trace.CheckpointData) (*Merged, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("campaign: no shards to merge")
	}
	ref := &shards[0].Manifest
	var spec Spec
	if err := json.Unmarshal(ref.Spec, &spec); err != nil {
		return nil, fmt.Errorf("campaign: shard manifest spec: %v", err)
	}
	if h := spec.Hash(); h != ref.SpecHash {
		return nil, fmt.Errorf("campaign: shard 0 spec hash %s does not match its embedded spec (%s)", ref.SpecHash, h)
	}
	universe := spec.Universe()
	if h := UniverseHash(universe); h != ref.UniverseHash {
		return nil, fmt.Errorf("campaign: universe hash %s does not match the spec's universe (%s) — site enumeration changed?", ref.UniverseHash, h)
	}

	n := ref.Shards
	if len(shards) != n {
		return nil, fmt.Errorf("campaign: got %d shards, manifest says the campaign has %d", len(shards), n)
	}
	seenShard := make([]bool, n)
	records := make([]*trace.RunRecord, len(universe))
	for _, sd := range shards {
		m := &sd.Manifest
		if m.SpecHash != ref.SpecHash || m.UniverseHash != ref.UniverseHash || m.Shards != n {
			return nil, fmt.Errorf("campaign: shard %d/%d (spec %s) belongs to a different campaign than shard %d/%d (spec %s)",
				m.Shard, m.Shards, m.SpecHash, ref.Shard, ref.Shards, ref.SpecHash)
		}
		if m.Shard < 0 || m.Shard >= n {
			return nil, fmt.Errorf("campaign: shard index %d outside [0,%d)", m.Shard, n)
		}
		if seenShard[m.Shard] {
			return nil, fmt.Errorf("campaign: shard %d supplied twice", m.Shard)
		}
		seenShard[m.Shard] = true
		lo, hi := ShardRange(len(universe), m.Shard, n)
		if m.Start != lo || m.End != hi {
			return nil, fmt.Errorf("campaign: shard %d covers [%d,%d), planner says [%d,%d)",
				m.Shard, m.Start, m.End, lo, hi)
		}
		if sd.Footer == nil {
			return nil, fmt.Errorf("campaign: shard %d is not finalized (%d/%d runs recorded) — resume it before merging",
				m.Shard, len(sd.Records), hi-lo)
		}
		if len(sd.Records) != hi-lo {
			return nil, fmt.Errorf("campaign: shard %d has %d records, range [%d,%d) needs %d",
				m.Shard, len(sd.Records), lo, hi, hi-lo)
		}
		for i := range sd.Records {
			rec := &sd.Records[i]
			if rec.Index < lo || rec.Index >= hi {
				return nil, fmt.Errorf("campaign: shard %d record index %d outside its range [%d,%d)",
					m.Shard, rec.Index, lo, hi)
			}
			if records[rec.Index] != nil {
				return nil, fmt.Errorf("campaign: duplicate record for fault index %d", rec.Index)
			}
			f := &universe[rec.Index]
			if rec.Router != f.Site.Router || rec.Signal != f.Site.Kind.String() ||
				rec.Port != f.Site.Port || rec.VC != f.Site.VC || rec.Bit != f.Bit ||
				rec.FaultType != f.Type.String() || rec.Cycle != f.Cycle {
				return nil, fmt.Errorf("campaign: record %d describes fault %s.bit%d, universe has %v",
					rec.Index, rec.Signal, rec.Bit, f)
			}
			records[rec.Index] = rec
		}
	}
	for i := range seenShard {
		if !seenShard[i] {
			return nil, fmt.Errorf("campaign: shard %d/%d missing from the merge", i, n)
		}
	}
	out := &Merged{Spec: spec, Shards: n, Records: make([]trace.RunRecord, len(universe))}
	for i, rec := range records {
		if rec == nil {
			// Unreachable given the counting above, but a nil deref here
			// would be a far worse failure mode than an error.
			return nil, fmt.Errorf("campaign: no record for fault index %d", i)
		}
		out.Records[i] = *rec
	}
	return out, nil
}

// Report rebuilds the aggregated campaign report from the merged
// records. The result renders bit-identically to the report of the
// equivalent unsharded run (same figures, same WriteJSON bytes).
func (m *Merged) Report() (*Report, error) {
	return ReportFromRecords(m.Spec, m.Records)
}

// ReportFromRecords reconstructs a Report from a complete record set
// (one record per fault, indices 0..len-1 in any order). Everything
// the report reducers and WriteJSON read is recovered; fields the
// records do not carry (per-run simultaneity histograms, golden-run
// metadata) stay zero.
func ReportFromRecords(spec Spec, recs []trace.RunRecord) (*Report, error) {
	sorted := append([]trace.RunRecord(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	rep := &Report{
		Opts:    spec.Options(),
		Results: make([]RunResult, len(sorted)),
	}
	for i := range sorted {
		rec := &sorted[i]
		if rec.Index != i {
			return nil, fmt.Errorf("campaign: record set is not a gap-free index sequence (position %d has index %d)", i, rec.Index)
		}
		res, err := resultFromRecord(rec)
		if err != nil {
			return nil, fmt.Errorf("campaign: record %d: %v", rec.Index, err)
		}
		rep.Results[i] = res
		if rec.FastPath {
			rep.FastPathHits++
		}
	}
	return rep, nil
}
