package campaign

import (
	"testing"
	"time"

	"nocalert/internal/fault"
	"nocalert/internal/forever"
	"nocalert/internal/metrics"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// TestCampaignMetricsMatchReport runs an instrumented campaign and
// cross-checks every published counter against the aggregated report —
// the same consistency bar the -trace NDJSON stream is held to.
func TestCampaignMetricsMatchReport(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	faults := SampleFaults(params, 40, 11, 100)

	reg := metrics.NewRegistry()
	type seen struct {
		wall time.Duration
		exit ExitPath
	}
	results := make(map[int]seen)
	rep, err := Run(Options{
		Sim:           sim.Config{Router: rc, InjectionRate: 0.12, Seed: 3},
		InjectCycle:   100,
		PostInjectRun: 250,
		DrainDeadline: 3000,
		Forever:       forever.Options{Epoch: 250, HopLatency: 1},
		Faults:        faults,
		Metrics:       reg,
		OnResult: func(i int, res *RunResult, wall time.Duration, exit ExitPath) {
			if _, dup := results[i]; dup {
				t.Errorf("OnResult called twice for index %d", i)
			}
			results[i] = seen{wall: wall, exit: exit}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if len(results) != len(faults) {
		t.Fatalf("OnResult fired for %d runs, want %d", len(results), len(faults))
	}
	fastSeen, reconvSeen := 0, 0
	for i, s := range results {
		if s.wall <= 0 {
			t.Fatalf("run %d has non-positive wall time %v", i, s.wall)
		}
		switch s.exit {
		case ExitFastPath:
			fastSeen++
		case ExitReconverged:
			reconvSeen++
		}
	}
	if fastSeen != rep.FastPathHits {
		t.Fatalf("OnResult fastPath count %d != report FastPathHits %d", fastSeen, rep.FastPathHits)
	}
	if reconvSeen != rep.ReconvergedHits {
		t.Fatalf("OnResult reconverged count %d != report ReconvergedHits %d", reconvSeen, rep.ReconvergedHits)
	}

	counter := func(name string) int64 { return reg.Counter(name).Value() }
	if got := counter(MetricRuns); got != int64(len(faults)) {
		t.Fatalf("%s = %d, want %d", MetricRuns, got, len(faults))
	}
	if got := counter(MetricFastPathHits); got != int64(rep.FastPathHits) {
		t.Fatalf("%s = %d, want %d", MetricFastPathHits, got, rep.FastPathHits)
	}
	if got := counter(MetricFastPathMisses); got != int64(len(faults)-rep.FastPathHits) {
		t.Fatalf("%s = %d, want %d", MetricFastPathMisses, got, len(faults)-rep.FastPathHits)
	}
	if got := counter(MetricReconvergenceHits); got != int64(rep.ReconvergedHits) {
		t.Fatalf("%s = %d, want %d", MetricReconvergenceHits, got, rep.ReconvergedHits)
	}
	wantFull := len(faults) - rep.FastPathHits - rep.ReconvergedHits
	if got := counter(MetricFullSimRuns); got != int64(wantFull) {
		t.Fatalf("%s = %d, want %d", MetricFullSimRuns, got, wantFull)
	}
	if got := reg.Histogram(MetricReconvergenceCycles, reconvCyclesBounds).Count(); got != int64(rep.ReconvergedHits) {
		t.Fatalf("%s count = %d, want %d", MetricReconvergenceCycles, got, rep.ReconvergedHits)
	}
	if got := counter(MetricFired); got != int64(rep.FiredCount()) {
		t.Fatalf("%s = %d, want %d", MetricFired, got, rep.FiredCount())
	}
	if got := counter(MetricVerdictMalicious); got != int64(rep.MaliciousCount()) {
		t.Fatalf("%s = %d, want %d", MetricVerdictMalicious, got, rep.MaliciousCount())
	}
	if got := counter(MetricVerdictOK); got != int64(len(faults)-rep.MaliciousCount()) {
		t.Fatalf("%s = %d, want %d", MetricVerdictOK, got, len(faults)-rep.MaliciousCount())
	}
	for _, m := range []Mechanism{NoCAlert, Cautious, ForEVeR} {
		cov := rep.Coverage(m)
		for o, want := range map[Outcome]int{
			TruePositive: cov.TP, FalsePositive: cov.FP,
			TrueNegative: cov.TN, FalseNegative: cov.FN,
		} {
			if got := counter(OutcomeMetricName(m, o)); got != int64(want) {
				t.Fatalf("%s = %d, want %d", OutcomeMetricName(m, o), got, want)
			}
		}
	}
	if got := reg.Histogram(MetricRunSeconds, runSecondsBounds).Count(); got != int64(len(faults)) {
		t.Fatalf("%s count = %d, want %d", MetricRunSeconds, got, len(faults))
	}
	if fps := reg.Gauge(MetricFaultsPerSec).Value(); fps <= 0 {
		t.Fatalf("%s = %g, want > 0 after a finished campaign", MetricFaultsPerSec, fps)
	}
	if workers := reg.Gauge(MetricWorkers).Value(); workers < 1 {
		t.Fatalf("%s = %g, want >= 1", MetricWorkers, workers)
	}
}

// TestCampaignMetricsOffIsInert: with Metrics nil and no OnResult the
// campaign must not touch telemetry at all — the "off by default, no
// regression" contract of the benchmark baseline.
func TestCampaignMetricsOffIsInert(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	rc := router.Default(mesh)
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	rep, err := Run(Options{
		Sim:           sim.Config{Router: rc, InjectionRate: 0.1, Seed: 5},
		InjectCycle:   60,
		PostInjectRun: 150,
		DrainDeadline: 2000,
		Forever:       forever.Options{Epoch: 200, HopLatency: 1},
		Faults:        SampleFaults(params, 6, 2, 60),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 6 {
		t.Fatalf("got %d results, want 6", len(rep.Results))
	}
}
