package campaign

import (
	"time"

	"nocalert/internal/metrics"
)

// Metric names Run publishes when Options.Metrics is set. Exported so
// drivers (the faultcampaign CLI's ETA line, dashboards, tests) can
// address the instruments without duplicating string literals.
const (
	// MetricRuns counts completed runs (fast-path and simulated alike).
	MetricRuns = "campaign_runs_total"
	// MetricRunsExpected is a gauge holding the campaign's planned run
	// count, so remote observers can compute completion without the
	// report.
	MetricRunsExpected = "campaign_runs_expected"
	// MetricFastPathHits / MetricFastPathMisses split completed runs by
	// whether the early-exit fast path resolved them. Reconverged runs
	// count as fast-path misses (their fault fired); the two counters
	// below split the misses further.
	MetricFastPathHits   = "campaign_fastpath_hits_total"
	MetricFastPathMisses = "campaign_fastpath_misses_total"
	// MetricReconvergenceHits counts runs ended early because their
	// post-fault state reconverged with the golden run's recorded
	// fingerprint; MetricFullSimRuns counts runs that simulated window,
	// drain and horizon end to end. hits + reconvergence + full = runs.
	MetricReconvergenceHits = "campaign_reconvergence_hits_total"
	MetricFullSimRuns       = "campaign_fullsim_runs_total"
	// MetricReconvergenceCycles is the histogram of reconvergence
	// latencies: cycles from injection until the state fingerprint
	// matched golden's (exponential buckets 1 … 32768 cycles).
	MetricReconvergenceCycles = "campaign_reconvergence_cycles"
	// MetricForkedRuns counts runs that warm-started from a golden
	// snapshot above cycle 0, skipping their [0, snapshot) prefix.
	MetricForkedRuns = "campaign_forked_runs_total"
	// MetricWarmstartSaved counts the prefix cycles injection-point
	// forking never simulated, summed over runs.
	MetricWarmstartSaved = "campaign_warmstart_cycles_saved"
	// MetricSnapshotBytes is a gauge holding the estimated memory
	// footprint of the golden snapshot ring.
	MetricSnapshotBytes = "campaign_snapshot_bytes"
	// MetricSimulatedCycles counts cycles faulty runs actually stepped
	// (including fork replay); MetricSynthesizedCycles counts cycles
	// whose outcome was synthesized instead (reconvergence tails,
	// frozen drains and horizons). Together they keep warm-start and
	// synthesis savings out of the honest throughput accounting.
	MetricSimulatedCycles   = "campaign_cycles_simulated_total"
	MetricSynthesizedCycles = "campaign_cycles_synthesized_total"
	// MetricFaultsPerSec is the live throughput gauge, updated under
	// the progress mutex after every completed run. It is wall-clock
	// honest (completed runs over elapsed seconds) no matter how many
	// cycles the fast paths skipped; MetricSimCyclesPerSec is the
	// companion gauge of really-simulated cycles per second, immune to
	// synthesized and skipped-prefix inflation.
	MetricFaultsPerSec    = "campaign_faults_per_sec"
	MetricSimCyclesPerSec = "campaign_sim_cycles_per_sec"
	// MetricWorkers is the resolved worker-pool size.
	MetricWorkers = "campaign_workers"
	// MetricRunSeconds is the per-run wall-time histogram (seconds,
	// exponential buckets 1 ms … ~32 s).
	MetricRunSeconds = "campaign_run_seconds"
	// MetricDetectionLatency is the histogram of NoCAlert detection
	// latencies in cycles (detection cycle minus injection cycle;
	// exponential buckets 1 … 32768 cycles). Only detected runs feed
	// it, so its _count is the campaign's detection count.
	MetricDetectionLatency = "campaign_detection_latency_cycles"
	// MetricFired counts runs whose fault corrupted a live signal.
	MetricFired = "campaign_faults_fired_total"
	// Verdict-class counters: every run increments exactly one of
	// ok/malicious; Unbounded additionally marks failed drains.
	MetricVerdictOK        = "campaign_verdict_ok_total"
	MetricVerdictMalicious = "campaign_verdict_malicious_total"
	MetricVerdictUnbounded = "campaign_verdict_unbounded_total"
	// MetricFrontierRuns counts runs driven by the divergence-frontier
	// delta engine; MetricFrontierJoins counts lazy materializations
	// (nodes joining a frontier) across all of them.
	MetricFrontierRuns  = "campaign_frontier_runs_total"
	MetricFrontierJoins = "campaign_frontier_joins_total"
	// MetricFrontierRouters is the histogram of per-run peak frontier
	// sizes (routers) — the measured cone of influence. Only
	// frontier-driven runs feed it.
	MetricFrontierRouters = "campaign_frontier_routers"
	// MetricTimelineBytes is a gauge holding the estimated memory
	// footprint of the golden signal transcripts (and window-end
	// states) backing the frontier engine.
	MetricTimelineBytes = "campaign_timeline_bytes"
)

// mechMetricNames and outcomeMetricNames spell the per-mechanism
// outcome counters: campaign_outcome_<mechanism>_<outcome>_total.
var (
	mechMetricNames    = [...]string{"nocalert", "cautious", "forever"}
	outcomeMetricNames = [...]string{"tn", "tp", "fp", "fn"} // Outcome iota order
)

// OutcomeMetricName returns the counter name tracking outcome o of
// mechanism m, e.g. campaign_outcome_nocalert_tp_total.
func OutcomeMetricName(m Mechanism, o Outcome) string {
	return "campaign_outcome_" + mechMetricNames[int(m)] + "_" + outcomeMetricNames[int(o)] + "_total"
}

// runSecondsBounds is the MetricRunSeconds bucket layout.
var runSecondsBounds = metrics.ExponentialBounds(0.001, 2, 16)

// reconvCyclesBounds is the MetricReconvergenceCycles bucket layout.
var reconvCyclesBounds = metrics.ExponentialBounds(1, 2, 16)

// detectLatencyBounds is the MetricDetectionLatency bucket layout.
var detectLatencyBounds = metrics.ExponentialBounds(1, 2, 16)

// frontierRoutersBounds is the MetricFrontierRouters bucket layout:
// powers of two from a single router up to a 32×32 mesh.
var frontierRoutersBounds = metrics.ExponentialBounds(1, 2, 11)

// instruments holds the pre-resolved campaign instruments so the
// per-run path does one pointer hop per update instead of a registry
// lookup.
type instruments struct {
	runs          *metrics.Counter
	fastHits      *metrics.Counter
	fastMisses    *metrics.Counter
	reconvHits    *metrics.Counter
	fullRuns      *metrics.Counter
	fired         *metrics.Counter
	verdictOK     *metrics.Counter
	verdictMal    *metrics.Counter
	verdictUnb    *metrics.Counter
	outcomes      [len(mechMetricNames)][len(outcomeMetricNames)]*metrics.Counter
	runSeconds    *metrics.Histogram
	reconvCycles  *metrics.Histogram
	detectLatency *metrics.Histogram
	faultsPS      *metrics.Gauge
	forkedRuns    *metrics.Counter
	warmSaved     *metrics.Counter
	simCycles     *metrics.Counter
	synthCycles   *metrics.Counter
	simCyclesPS   *metrics.Gauge
	frontierRuns  *metrics.Counter
	frontierJoins *metrics.Counter
	frontierSize  *metrics.Histogram
}

func newInstruments(reg *metrics.Registry, workers, totalRuns int) *instruments {
	in := &instruments{
		runs:          reg.Counter(MetricRuns),
		fastHits:      reg.Counter(MetricFastPathHits),
		fastMisses:    reg.Counter(MetricFastPathMisses),
		reconvHits:    reg.Counter(MetricReconvergenceHits),
		fullRuns:      reg.Counter(MetricFullSimRuns),
		fired:         reg.Counter(MetricFired),
		verdictOK:     reg.Counter(MetricVerdictOK),
		verdictMal:    reg.Counter(MetricVerdictMalicious),
		verdictUnb:    reg.Counter(MetricVerdictUnbounded),
		runSeconds:    reg.Histogram(MetricRunSeconds, runSecondsBounds),
		reconvCycles:  reg.Histogram(MetricReconvergenceCycles, reconvCyclesBounds),
		detectLatency: reg.Histogram(MetricDetectionLatency, detectLatencyBounds),
		faultsPS:      reg.Gauge(MetricFaultsPerSec),
		forkedRuns:    reg.Counter(MetricForkedRuns),
		warmSaved:     reg.Counter(MetricWarmstartSaved),
		simCycles:     reg.Counter(MetricSimulatedCycles),
		synthCycles:   reg.Counter(MetricSynthesizedCycles),
		simCyclesPS:   reg.Gauge(MetricSimCyclesPerSec),
		frontierRuns:  reg.Counter(MetricFrontierRuns),
		frontierJoins: reg.Counter(MetricFrontierJoins),
		frontierSize:  reg.Histogram(MetricFrontierRouters, frontierRoutersBounds),
	}
	for m := range in.outcomes {
		for o := range in.outcomes[m] {
			in.outcomes[m][o] = reg.Counter(OutcomeMetricName(Mechanism(m), Outcome(o)))
		}
	}
	reg.Gauge(MetricWorkers).Set(float64(workers))
	reg.Gauge(MetricRunsExpected).Set(float64(totalRuns))
	return in
}

// observe records one completed run. Called under the progress mutex,
// so done/simCycles/elapsed form consistent throughput samples; the
// instruments themselves are atomic and need no lock. st is the run's
// honest cycle accounting and simCycles the campaign's running total of
// really-simulated cycles — synthesized and skipped-prefix cycles feed
// their own counters instead of inflating the live gauges.
func (in *instruments) observe(res *RunResult, wall time.Duration, exit ExitPath, convCycles int64, st *runStats, done int, simCycles int64, elapsed time.Duration) {
	in.runs.Inc()
	if st.forked {
		in.forkedRuns.Inc()
	}
	in.warmSaved.Add(st.warmSaved)
	in.simCycles.Add(st.simulated)
	in.synthCycles.Add(st.synthesized)
	if st.frontier {
		in.frontierRuns.Inc()
		in.frontierJoins.Add(st.frontierJoins)
		in.frontierSize.Observe(float64(st.frontierPeak))
	}
	switch exit {
	case ExitFastPath:
		in.fastHits.Inc()
	case ExitReconverged:
		in.fastMisses.Inc()
		in.reconvHits.Inc()
		in.reconvCycles.Observe(float64(convCycles))
	default:
		in.fastMisses.Inc()
		in.fullRuns.Inc()
	}
	if res.Fired {
		in.fired.Inc()
	}
	if res.Verdict.OK() {
		in.verdictOK.Inc()
	} else {
		in.verdictMal.Inc()
	}
	if res.Verdict.Unbounded {
		in.verdictUnb.Inc()
	}
	in.outcomes[int(NoCAlert)][int(res.Outcome)].Inc()
	in.outcomes[int(Cautious)][int(res.CautiousOutcome)].Inc()
	in.outcomes[int(ForEVeR)][int(res.ForeverOutcome)].Inc()
	if res.Detected && res.Latency >= 0 {
		in.detectLatency.Observe(float64(res.Latency))
	}
	in.runSeconds.Observe(wall.Seconds())
	if s := elapsed.Seconds(); s > 0 {
		in.faultsPS.Set(float64(done) / s)
		in.simCyclesPS.Set(float64(simCycles) / s)
	}
}
