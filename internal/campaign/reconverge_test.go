package campaign

import (
	"bytes"
	"reflect"
	"testing"

	"nocalert/internal/fault"
	"nocalert/internal/forever"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// goldenOptions builds the golden-fixture campaign (GoldenSpec) as live
// Options with its full 96-fault universe.
func goldenOptions(t *testing.T) Options {
	t.Helper()
	spec := GoldenSpec()
	opts := spec.Options()
	opts.Faults = spec.Universe()
	return opts
}

// TestReconvergenceByteIdentity runs the golden-fixture campaign with
// reconvergence detection on and off and requires the two aggregated
// JSON reports to be byte-for-byte identical — the acceptance bar for
// the optimization: reconvergence may only change how fast a result is
// computed, never the result.
func TestReconvergenceByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	withRep, err := Run(goldenOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	off := goldenOptions(t)
	off.DisableReconvergence = true
	withoutRep, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}

	if withoutRep.ReconvergedHits != 0 {
		t.Fatalf("ReconvergedHits = %d with reconvergence disabled, want 0", withoutRep.ReconvergedHits)
	}
	if withRep.ReconvergedHits == 0 {
		t.Fatal("golden-fixture campaign produced no reconverged runs; the test premise (masked faults washing out mid-window) is broken")
	}
	if withRep.FastPathHits != withoutRep.FastPathHits {
		t.Fatalf("FastPathHits differ: %d with reconvergence, %d without", withRep.FastPathHits, withoutRep.FastPathHits)
	}

	var with, without bytes.Buffer
	if err := withRep.WriteJSON(&with); err != nil {
		t.Fatal(err)
	}
	if err := withoutRep.WriteJSON(&without); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(with.Bytes(), without.Bytes()) {
		t.Fatalf("reports differ between reconvergence on and off (%d vs %d bytes)", with.Len(), without.Len())
	}
	t.Logf("reconverged runs: %d of %d (fast-path: %d)", withRep.ReconvergedHits, len(withRep.Results), withRep.FastPathHits)
}

// TestReconvergedResultsMatchFullSimulation cross-checks every
// individual result field (not just the aggregated JSON) between the
// reconvergence-enabled and the full-simulation campaign.
func TestReconvergedResultsMatchFullSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	fastRep, err := Run(goldenOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	off := goldenOptions(t)
	off.DisableReconvergence = true
	slowRep, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fastRep.Results {
		// Verdict.Reasons order follows map iteration; everything else
		// must match exactly (see TestFastPathBitIdenticalCampaign).
		fr, sr := fastRep.Results[i], slowRep.Results[i]
		if len(fr.Verdict.Reasons) != len(sr.Verdict.Reasons) {
			t.Fatalf("result %d reason count differs: %d vs %d", i, len(fr.Verdict.Reasons), len(sr.Verdict.Reasons))
		}
		fr.Verdict.Reasons, sr.Verdict.Reasons = nil, nil
		if !reflect.DeepEqual(fr, sr) {
			t.Fatalf("result %d (%v) differs between reconvergence and full simulation:\nreconv: %+v\nfull:   %+v",
				i, &fr.Fault, fr, sr)
		}
	}
}

// TestDisableForeverKeepsNoCAlertResults runs the golden-fixture
// campaign with and without the ForEVeR baseline and requires the
// NoCAlert, Cautious and golden-reference fields to be unaffected —
// the guard for finishRun skipping the epoch-horizon run-out when no
// monitor is attached and the drain succeeded.
func TestDisableForeverKeepsNoCAlertResults(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	withRep, err := Run(goldenOptions(t))
	if err != nil {
		t.Fatal(err)
	}
	off := goldenOptions(t)
	off.DisableForever = true
	withoutRep, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	for i := range withRep.Results {
		wr, nr := withRep.Results[i], withoutRep.Results[i]
		if nr.ForeverDetected || nr.ForeverLatency != -1 {
			t.Fatalf("result %d reports a ForEVeR detection with the baseline disabled: %+v", i, nr)
		}
		if wr.Fired != nr.Fired || wr.Drained != nr.Drained ||
			wr.Detected != nr.Detected || wr.DetectCycle != nr.DetectCycle ||
			wr.Latency != nr.Latency || wr.Outcome != nr.Outcome ||
			wr.CautiousDetected != nr.CautiousDetected ||
			wr.CautiousLatency != nr.CautiousLatency ||
			wr.CautiousOutcome != nr.CautiousOutcome {
			t.Fatalf("result %d NoCAlert fields differ with ForEVeR disabled:\nwith:    %+v\nwithout: %+v", i, wr, nr)
		}
		wv, nv := wr.Verdict, nr.Verdict
		wv.Reasons, nv.Reasons = nil, nil
		if !reflect.DeepEqual(wv, nv) {
			t.Fatalf("result %d verdict differs with ForEVeR disabled:\nwith:    %+v\nwithout: %+v", i, wv, nv)
		}
	}
}

// TestQuiescentVsInert pins the fault-plane predicate the reconvergence
// gate relies on: a fired transient is quiescent (it can never fire
// again) but not inert (it did fire), while a permanent fault is never
// quiescent.
func TestQuiescentVsInert(t *testing.T) {
	params := fault.Params{Mesh: topology.NewMesh(2, 2), VCs: 2, BufDepth: 4}
	site := params.EnumerateSites()[0]
	tr := fault.Fault{Site: site, Bit: 0, Cycle: 10, Type: fault.Transient}
	pm := fault.Fault{Site: site, Bit: 0, Cycle: 10, Type: fault.Permanent}

	p := fault.NewPlane(tr)
	if p.Quiescent(10) {
		t.Fatal("transient fault quiescent at its injection cycle")
	}
	if !p.Quiescent(11) {
		t.Fatal("expired transient fault not quiescent")
	}
	if !fault.NewPlane().Quiescent(0) {
		t.Fatal("empty plane not quiescent")
	}
	if fault.NewPlane(pm).Quiescent(1 << 40) {
		t.Fatal("permanent fault reported quiescent")
	}
}

// TestReconvergenceOffGoldenPathUnchanged checks that disabling
// reconvergence leaves the golden run's plain loop untouched: the two
// modes must agree on the golden-run aggregates the report exposes.
func TestReconvergenceOffGoldenPathUnchanged(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	opts := Options{
		Sim:           sim.Config{Router: rc, InjectionRate: 0.1, Seed: 5},
		InjectCycle:   100,
		PostInjectRun: 200,
		DrainDeadline: 2500,
		Forever:       forever.Options{Epoch: 250, HopLatency: 1},
		Faults:        SampleFaults(params, 4, 11, 100),
		Workers:       1,
	}
	onRep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisableReconvergence = true
	offRep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if onRep.GoldenEjections != offRep.GoldenEjections ||
		onRep.GoldenForeverFalsePositive != offRep.GoldenForeverFalsePositive {
		t.Fatalf("golden-run aggregates differ: with reconvergence {%d %v}, without {%d %v}",
			onRep.GoldenEjections, onRep.GoldenForeverFalsePositive,
			offRep.GoldenEjections, offRep.GoldenForeverFalsePositive)
	}
}
