package campaign

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"time"

	"nocalert/internal/fault"
	"nocalert/internal/metrics"
	"nocalert/internal/obs"
	"nocalert/internal/rng"
	"nocalert/internal/trace"
)

// shardVerifyTag salts the derived RNG stream that picks which
// already-recorded runs a resume re-executes for verification.
const shardVerifyTag = 0x5e71f7

// DefaultVerifyResumed is how many already-recorded runs a resume
// re-executes and compares against the checkpoint by default.
const DefaultVerifyResumed = 2

// ShardRunOptions configures RunShard's execution knobs — everything
// that may differ between two executions of the same shard without
// affecting its results.
type ShardRunOptions struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
	// DisableFastPath forces full simulation of every run.
	DisableFastPath bool
	// DisableReconvergence turns off golden-state reconvergence
	// detection (see Options.DisableReconvergence).
	DisableReconvergence bool
	// DisableFork turns off injection-point forking (see
	// Options.DisableFork). Result-invisible either way.
	DisableFork bool
	// SnapshotInterval fixes the golden snapshot spacing; 0 picks it
	// adaptively (see Options.SnapshotInterval).
	SnapshotInterval int64
	// DisableFastForward turns off frozen-state fast-forwarding (see
	// Options.DisableFastForward). Result-invisible either way.
	DisableFastForward bool
	// DisableSoA selects the reference sweep engine for every simulated
	// network (see sim.Config.DisableSoA). Result-invisible either way —
	// the soa-identity CI gate holds this to byte-identical reports.
	DisableSoA bool
	// DisableFrontier turns off divergence-frontier delta stepping (see
	// Options.DisableFrontier). Result-invisible either way — the
	// frontier-identity CI gate holds this to byte-identical reports.
	DisableFrontier bool
	// Progress, when non-nil, is invoked after each newly executed run
	// with the shard-level completion count (resumed runs included), the
	// shard's total run count and a snapshot of the running stats (for
	// live exit-path breakdowns; the snapshot's Complete field is only
	// meaningful on the final call).
	Progress func(done, total int, stats ShardRunStats)
	// Metrics, when non-nil, receives the campaign telemetry.
	Metrics *metrics.Registry
	// Context cancels the shard cooperatively; completed runs are
	// already durable in the checkpoint when RunShard returns the
	// context's error.
	Context context.Context
	// VerifyResumed is how many already-recorded runs to re-execute and
	// compare against the checkpoint when resuming: deterministic
	// re-execution is what makes a partial checkpoint trustworthy. 0
	// means DefaultVerifyResumed; -1 disables verification. The sample
	// is drawn from a stream derived from (seed, shard) so it does not
	// depend on how many times the shard was interrupted.
	VerifyResumed int
	// Tracer, when non-nil, wraps the shard's campaign in a shard span
	// (parented to TraceParent — typically the daemon's job span) so
	// the job → shard → run correlation ID threads end to end.
	Tracer *obs.Tracer
	// TraceParent optionally parents the shard span.
	TraceParent *obs.Span
	// FlightRecorder receives the underlying campaign's events plus the
	// shard's own: checkpoint-verification divergence is an anomaly
	// that auto-dumps the ring.
	FlightRecorder *obs.FlightRecorder
}

// ShardRunStats summarizes one RunShard execution.
type ShardRunStats struct {
	// Total is the shard's run count (End - Start).
	Total int
	// Resumed counts runs found already recorded in the checkpoint and
	// skipped.
	Resumed int
	// Verified counts resumed runs re-executed and matched against
	// their recorded canonical bytes.
	Verified int
	// Executed counts newly executed (and recorded) runs.
	Executed int
	// FastPathHits counts early-exited runs among Executed+Verified.
	FastPathHits int
	// Reconverged counts runs among Executed+Verified ended early by
	// golden-state reconvergence.
	Reconverged int
	// FullSim counts runs among Executed+Verified that simulated their
	// window, drain and horizon end to end (no early exit).
	FullSim int
	// Forked counts runs that warm-started from a golden snapshot above
	// cycle 0. Filled in when the underlying campaign finishes (the
	// per-run callback does not see fork decisions).
	Forked int
	// Complete reports whether the checkpoint now covers the whole
	// shard (and carries its integrity footer).
	Complete bool
}

// RunShard executes a shard, streaming every completed run into the
// checkpoint. completed is the record set ResumeCheckpoint recovered;
// those runs are skipped (after validating they belong to this shard
// fault-for-fault, and re-executing a deterministic sample to prove
// the records reproduce). When the checkpoint ends up covering the
// whole shard, RunShard finalizes it with the integrity footer.
//
// Determinism contract: the records a killed-then-resumed shard
// accumulates are canonical-byte-identical to an uninterrupted run's,
// because every run forks from the same warmed base state and nothing
// about resume order feeds back into simulation.
func RunShard(sh *Shard, cp *trace.Checkpoint, completed []trace.RunRecord, o ShardRunOptions) (*ShardRunStats, error) {
	if cp == nil {
		return nil, fmt.Errorf("campaign: RunShard needs a checkpoint")
	}
	stats := &ShardRunStats{Total: sh.End - sh.Start}
	sspan := o.Tracer.Start(o.TraceParent, "shard", fmt.Sprintf("shard[%d/%d]", sh.Index, sh.Count))
	sspan.SetAttr("shard_index", sh.Index)
	sspan.SetAttr("shard_count", sh.Count)
	sspan.SetAttr("run_start", sh.Start)
	sspan.SetAttr("run_end", sh.End)
	defer func() {
		sspan.SetAttr("resumed", stats.Resumed)
		sspan.SetAttr("verified", stats.Verified)
		sspan.SetAttr("executed", stats.Executed)
		sspan.SetAttr("complete", stats.Complete)
		sspan.End()
	}()
	if cp.Finalized() {
		// Nothing to do: a finalized checkpoint was already verified
		// against its footer checksum when it was read back.
		stats.Resumed = len(completed)
		stats.Complete = true
		return stats, nil
	}

	// Validate the recovered records: in range, no duplicates, and each
	// one's fault identity matching the planned universe slice. Any
	// mismatch means the checkpoint belongs to different code or data
	// and must not be silently extended.
	recorded := make(map[int]*trace.RunRecord, len(completed))
	for i := range completed {
		rec := &completed[i]
		if rec.Index < sh.Start || rec.Index >= sh.End {
			return nil, fmt.Errorf("campaign: checkpoint record index %d outside shard range [%d,%d)",
				rec.Index, sh.Start, sh.End)
		}
		if _, dup := recorded[rec.Index]; dup {
			return nil, fmt.Errorf("campaign: checkpoint has duplicate record for index %d", rec.Index)
		}
		f := &sh.Faults[rec.Index-sh.Start]
		if rec.Router != f.Site.Router || rec.Signal != f.Site.Kind.String() ||
			rec.Port != f.Site.Port || rec.VC != f.Site.VC || rec.Bit != f.Bit ||
			rec.FaultType != f.Type.String() || rec.Cycle != f.Cycle {
			return nil, fmt.Errorf("campaign: checkpoint record %d describes fault %s.bit%d, shard plan has %v",
				rec.Index, rec.Signal, rec.Bit, f)
		}
		recorded[rec.Index] = rec
	}
	stats.Resumed = len(recorded)

	// Deterministic re-execution sample: which recorded runs to replay
	// and compare. The stream is derived from (seed, shard coordinates)
	// alone, so the choice is reproducible and independent of resume
	// count or record order.
	verifyCount := o.VerifyResumed
	if verifyCount == 0 {
		verifyCount = DefaultVerifyResumed
	}
	if verifyCount < 0 {
		verifyCount = 0
	}
	if verifyCount > len(recorded) {
		verifyCount = len(recorded)
	}
	verifyIdx := make(map[int]bool, verifyCount)
	if verifyCount > 0 {
		sorted := make([]int, 0, len(recorded))
		for idx := range recorded {
			sorted = append(sorted, idx)
		}
		// Map iteration order is random; sort before drawing so the
		// derived stream picks the same runs every time.
		sort.Ints(sorted)
		g := rng.NewDerived(sh.Spec.Seed, shardVerifyTag, uint64(sh.Index), uint64(sh.Count))
		for _, p := range g.Perm(len(sorted))[:verifyCount] {
			verifyIdx[sorted[p]] = true
		}
	}

	// One campaign run covers both the verification replays and the
	// pending remainder, so the golden warmup is paid once.
	type job struct {
		global int
		verify bool
	}
	var jobs []job
	var faults []fault.Fault
	for k := range sh.Faults {
		global := sh.Start + k
		if _, done := recorded[global]; done {
			if verifyIdx[global] {
				jobs = append(jobs, job{global, true})
				faults = append(faults, sh.Faults[k])
			}
			continue
		}
		jobs = append(jobs, job{global, false})
		faults = append(faults, sh.Faults[k])
	}
	if len(jobs) == 0 {
		stats.Complete = true
		return stats, cp.Finalize()
	}

	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var firstErr error
	shardDone := stats.Resumed
	opts := sh.Spec.Options()
	opts.Faults = faults
	opts.Workers = o.Workers
	opts.DisableFastPath = o.DisableFastPath
	opts.DisableReconvergence = o.DisableReconvergence
	opts.DisableFork = o.DisableFork
	opts.SnapshotInterval = o.SnapshotInterval
	opts.DisableFastForward = o.DisableFastForward
	opts.Sim.DisableSoA = o.DisableSoA
	opts.DisableFrontier = o.DisableFrontier
	opts.Metrics = o.Metrics
	opts.Context = ctx
	opts.Tracer = o.Tracer
	opts.TraceParent = sspan
	opts.FlightRecorder = o.FlightRecorder
	opts.OnResult = func(i int, res *RunResult, wall time.Duration, exit ExitPath) {
		// Serialized by the campaign's progress mutex.
		if firstErr != nil {
			return
		}
		j := jobs[i]
		// Reconverged runs record fast_path=false like fully simulated
		// ones: the record layout is part of the checkpoint identity
		// contract, and reconvergence is result-invisible by design.
		rec := RecordFor(j.global, res, wall, exit == ExitFastPath)
		switch exit {
		case ExitFastPath:
			stats.FastPathHits++
		case ExitReconverged:
			stats.Reconverged++
		default:
			stats.FullSim++
		}
		if j.verify {
			stats.Verified++
			want := recorded[j.global]
			if !bytes.Equal(rec.CanonicalBytes(), want.CanonicalBytes()) {
				o.FlightRecorder.Anomaly("checkpoint divergence", obs.Event{
					Run:    j.global,
					Cycle:  res.Fault.Cycle,
					Kind:   "checkpoint_verify",
					Detail: fmt.Sprintf("recorded run %d does not reproduce under re-execution", j.global),
				})
				firstErr = fmt.Errorf("campaign: checkpoint diverges from deterministic re-execution at index %d:\n  recorded: %s\n  replayed: %s",
					j.global, want.CanonicalBytes(), rec.CanonicalBytes())
				cancel()
			}
			return
		}
		if err := cp.Append(&rec); err != nil {
			firstErr = fmt.Errorf("campaign: checkpoint append: %w", err)
			cancel()
			return
		}
		stats.Executed++
		shardDone++
		if o.Progress != nil {
			o.Progress(shardDone, stats.Total, *stats)
		}
	}
	rep, err := Run(opts)
	if firstErr != nil {
		return stats, firstErr
	}
	if err != nil {
		return stats, err
	}
	stats.Forked = rep.ForkedRuns
	if stats.Resumed+stats.Executed == stats.Total {
		stats.Complete = true
		return stats, cp.Finalize()
	}
	return stats, nil
}
