package campaign

import (
	"fmt"
	"io"

	"nocalert/internal/core"
	"nocalert/internal/stats"
)

// Mechanism selects whose outcomes a report aggregates.
type Mechanism int

const (
	// NoCAlert is the full checker fabric reacting to any assertion.
	NoCAlert Mechanism = iota
	// Cautious is "NoCAlert Cautious": low-risk checkers (1 and 3)
	// alone do not trigger a response (Observation 2).
	Cautious
	// ForEVeR is the epoch-based baseline.
	ForEVeR
)

// String names the mechanism as in the paper's figures.
func (m Mechanism) String() string {
	switch m {
	case NoCAlert:
		return "NoCAlert"
	case Cautious:
		return "NoCAlert Cautious"
	case ForEVeR:
		return "ForEVeR"
	}
	return fmt.Sprintf("Mechanism(%d)", int(m))
}

func (r *RunResult) outcomeOf(m Mechanism) Outcome {
	switch m {
	case Cautious:
		return r.CautiousOutcome
	case ForEVeR:
		return r.ForeverOutcome
	default:
		return r.Outcome
	}
}

func (r *RunResult) latencyOf(m Mechanism) int64 {
	switch m {
	case Cautious:
		return r.CautiousLatency
	case ForEVeR:
		return r.ForeverLatency
	default:
		return r.Latency
	}
}

// Coverage is one Figure 6 bar: the outcome breakdown of a mechanism
// over all injected faults.
type Coverage struct {
	Mechanism                  Mechanism
	Total                      int
	TP, FP, TN, FN             int
	TPPct, FPPct, TNPct, FNPct float64
}

// Coverage aggregates the Figure 6 breakdown for the mechanism.
func (r *Report) Coverage(m Mechanism) Coverage {
	c := Coverage{Mechanism: m, Total: len(r.Results)}
	for i := range r.Results {
		switch r.Results[i].outcomeOf(m) {
		case TruePositive:
			c.TP++
		case FalsePositive:
			c.FP++
		case TrueNegative:
			c.TN++
		case FalseNegative:
			c.FN++
		}
	}
	n := int64(c.Total)
	c.TPPct = stats.Pct(int64(c.TP), n)
	c.FPPct = stats.Pct(int64(c.FP), n)
	c.TNPct = stats.Pct(int64(c.TN), n)
	c.FNPct = stats.Pct(int64(c.FN), n)
	return c
}

// LatencyCDF returns the fault-detection delay distribution over the
// mechanism's true positives — the Figure 7 series.
func (r *Report) LatencyCDF(m Mechanism) *stats.CDF {
	var lat []int64
	for i := range r.Results {
		res := &r.Results[i]
		if res.outcomeOf(m) == TruePositive {
			lat = append(lat, res.latencyOf(m))
		}
	}
	return stats.NewCDF(lat)
}

// CheckerShare is one Figure 8 bar.
type CheckerShare struct {
	Checker core.CheckerID
	// SharePct is the checker's percentage of all detections,
	// attributing each detected fault to the checkers asserted in its
	// first detection cycle, in equal parts (shares sum to 100).
	SharePct float64
	// FiredRuns counts runs in which the checker fired at all.
	FiredRuns int
	// AloneRuns counts runs in which the checker was the only one to
	// fire — every checker having at least one such run is the paper's
	// "no single checker is redundant" remark.
	AloneRuns int
}

// CheckerShares aggregates Figure 8 over detected runs.
func (r *Report) CheckerShares() []CheckerShare {
	weights := make([]float64, core.NumCheckers+1)
	fired := make([]int, core.NumCheckers+1)
	alone := make([]int, core.NumCheckers+1)
	detected := 0
	for i := range r.Results {
		res := &r.Results[i]
		if !res.Detected {
			continue
		}
		detected++
		if len(res.FirstCycleCheckers) > 0 {
			w := 1.0 / float64(len(res.FirstCycleCheckers))
			for _, id := range res.FirstCycleCheckers {
				weights[id] += w
			}
		}
		for _, id := range res.CheckersFired {
			fired[id]++
		}
		if len(res.CheckersFired) == 1 {
			alone[res.CheckersFired[0]]++
		}
	}
	out := make([]CheckerShare, 0, core.NumCheckers)
	for id := 1; id <= core.NumCheckers; id++ {
		s := CheckerShare{Checker: core.CheckerID(id), FiredRuns: fired[id], AloneRuns: alone[id]}
		if detected > 0 {
			s.SharePct = 100 * weights[id] / float64(detected)
		}
		out = append(out, s)
	}
	return out
}

// SimultaneityDistribution returns hist where hist[k] counts detected
// faults that asserted exactly k distinct checkers — the Figure 9
// distribution ("most invariances were caught by two checkers, max 9").
func (r *Report) SimultaneityDistribution() []int64 {
	var hist []int64
	for i := range r.Results {
		res := &r.Results[i]
		if !res.Detected {
			continue
		}
		k := len(res.CheckersFired)
		for len(hist) <= k {
			hist = append(hist, 0)
		}
		hist[k]++
	}
	return hist
}

// Observation5 quantifies the paper's key empirical claim about
// non-invariant faults: of the injected faults that raised no assertion
// in the injection cycle itself, those that never raised one are all
// benign, and those that raised one later are all caught (and are
// exactly the delayed true positives).
type Observation5 struct {
	// NonInstant counts faults with no same-cycle assertion.
	NonInstant int
	// NeverViolated counts NonInstant faults that never asserted.
	NeverViolated int
	// NeverViolatedBenign counts NeverViolated faults judged benign by
	// the golden reference; the paper finds this equals NeverViolated.
	NeverViolatedBenign int
	// LaterViolated counts NonInstant faults that asserted later.
	LaterViolated int
	// LaterCaughtMalicious counts LaterViolated faults that were
	// network-correctness violations (all of which were caught, by
	// construction of LaterViolated).
	LaterCaughtMalicious int
}

// Observation5 aggregates the §4.3/Observation 5 accounting.
func (r *Report) Observation5() Observation5 {
	var o Observation5
	for i := range r.Results {
		res := &r.Results[i]
		instant := res.Detected && res.Latency == 0
		if instant {
			continue
		}
		o.NonInstant++
		if !res.Detected {
			o.NeverViolated++
			if res.Verdict.OK() {
				o.NeverViolatedBenign++
			}
		} else {
			o.LaterViolated++
			if !res.Verdict.OK() {
				o.LaterCaughtMalicious++
			}
		}
	}
	return o
}

// RecoveryExposure quantifies the paper's argument that detection
// latency drives recovery cost: while a fault goes undetected, the
// system keeps committing work that a recovery mechanism may have to
// unwind or re-verify. Exposure for one true positive is the detection
// latency multiplied by the per-cycle injection load — an estimate of
// the flits put at risk before the alarm.
type RecoveryExposure struct {
	Mechanism Mechanism
	// MeanFlitsAtRisk and MaxFlitsAtRisk estimate the traffic committed
	// between injection and detection, over true positives.
	MeanFlitsAtRisk float64
	MaxFlitsAtRisk  float64
	// MeanLatency is the mean detection latency over true positives.
	MeanLatency float64
}

// RecoveryExposure aggregates the exposure metric for a mechanism.
func (r *Report) RecoveryExposure(m Mechanism) RecoveryExposure {
	flitsPerCycle := r.Opts.Sim.InjectionRate * float64(r.Opts.Sim.Router.Mesh.Nodes())
	out := RecoveryExposure{Mechanism: m}
	n := 0
	for i := range r.Results {
		res := &r.Results[i]
		if res.outcomeOf(m) != TruePositive {
			continue
		}
		lat := float64(res.latencyOf(m))
		risk := lat * flitsPerCycle
		out.MeanFlitsAtRisk += risk
		out.MeanLatency += lat
		if risk > out.MaxFlitsAtRisk {
			out.MaxFlitsAtRisk = risk
		}
		n++
	}
	if n > 0 {
		out.MeanFlitsAtRisk /= float64(n)
		out.MeanLatency /= float64(n)
	}
	return out
}

// WriteRecoveryExposure renders the exposure comparison.
func (r *Report) WriteRecoveryExposure(w io.Writer) {
	t := stats.NewTable(
		"Recovery exposure — traffic committed between fault and detection (true positives)",
		"Mechanism", "mean latency (cyc)", "mean flits at risk", "max flits at risk")
	for _, m := range []Mechanism{NoCAlert, ForEVeR} {
		e := r.RecoveryExposure(m)
		t.AddRow(m.String(), e.MeanLatency, e.MeanFlitsAtRisk, e.MaxFlitsAtRisk)
	}
	t.Render(w)
}

// WriteHeatmaps renders per-router spatial distributions: where faults
// were injected, where they did damage, and where the first assertion
// was raised — a quick visual check that detection tracks the fault
// sites rather than clustering elsewhere.
func (r *Report) WriteHeatmaps(w io.Writer) {
	m := r.Opts.Sim.Router.Mesh
	injected := stats.NewHeatmap("faults injected per router", m.W, m.H)
	malicious := stats.NewHeatmap("network-correctness violations per fault router", m.W, m.H)
	detected := stats.NewHeatmap("first assertions per asserting router", m.W, m.H)
	for i := range r.Results {
		res := &r.Results[i]
		injected.Add(res.Fault.Site.Router, 1)
		if !res.Verdict.OK() {
			malicious.Add(res.Fault.Site.Router, 1)
		}
		if res.Detected {
			detected.Add(res.Fault.Site.Router, 1)
		}
	}
	injected.Render(w)
	malicious.Render(w)
	detected.Render(w)
}

// FalseNegatives returns the mechanism's false-negative count —
// Observation 1 asserts zero for both NoCAlert and ForEVeR.
func (r *Report) FalseNegatives(m Mechanism) int {
	n := 0
	for i := range r.Results {
		if r.Results[i].outcomeOf(m) == FalseNegative {
			n++
		}
	}
	return n
}

// MaliciousCount returns the number of faults that violated network
// correctness.
func (r *Report) MaliciousCount() int {
	n := 0
	for i := range r.Results {
		if !r.Results[i].Verdict.OK() {
			n++
		}
	}
	return n
}

// FiredCount returns the number of faults that actually corrupted a
// live signal.
func (r *Report) FiredCount() int {
	n := 0
	for i := range r.Results {
		if r.Results[i].Fired {
			n++
		}
	}
	return n
}

// WriteFig6 renders the Figure 6 table.
func (r *Report) WriteFig6(w io.Writer) {
	t := stats.NewTable(
		fmt.Sprintf("Figure 6 — fault coverage breakdown (injection cycle %d, %d faults)",
			r.Opts.InjectCycle, len(r.Results)),
		"Mechanism", "TP%", "FP%", "TN%", "FN%")
	for _, m := range []Mechanism{NoCAlert, Cautious, ForEVeR} {
		c := r.Coverage(m)
		t.AddRow(m.String(), c.TPPct, c.FPPct, c.TNPct, c.FNPct)
	}
	t.Render(w)
}

// WriteFig7 renders the Figure 7 latency CDF at the paper's milestones.
func (r *Report) WriteFig7(w io.Writer) {
	t := stats.NewTable(
		"Figure 7 — cumulative fault-detection delay over true positives (cycles)",
		"Mechanism", "N", "same-cycle%", "p50", "p97", "p99", "p100")
	for _, m := range []Mechanism{NoCAlert, ForEVeR} {
		cdf := r.LatencyCDF(m)
		if cdf.N() == 0 {
			t.AddRow(m.String(), 0, "-", "-", "-", "-", "-")
			continue
		}
		t.AddRow(m.String(), cdf.N(),
			100*cdf.AtOrBelow(0),
			cdf.Percentile(0.50), cdf.Percentile(0.97), cdf.Percentile(0.99), cdf.Max())
	}
	t.Render(w)
}

// WriteFig8 renders the Figure 8 per-checker attribution.
func (r *Report) WriteFig8(w io.Writer) {
	t := stats.NewTable(
		"Figure 8 — share of invariance violations per checker",
		"Checker", "Share%", "Fired-in-runs", "Alone-in-runs")
	for _, s := range r.CheckerShares() {
		if s.FiredRuns == 0 {
			continue
		}
		t.AddRow(s.Checker.String(), s.SharePct, s.FiredRuns, s.AloneRuns)
	}
	t.Render(w)
}

// WriteFig9 renders the Figure 9 simultaneity distribution.
func (r *Report) WriteFig9(w io.Writer) {
	hist := r.SimultaneityDistribution()
	var total int64
	for _, v := range hist {
		total += v
	}
	t := stats.NewTable(
		"Figure 9 — distribution of simultaneously asserted checkers per detected fault",
		"#checkers", "faults", "%", "cumulative%")
	var cum int64
	for k := 1; k < len(hist); k++ {
		cum += hist[k]
		t.AddRow(k, hist[k], stats.Pct(hist[k], total), stats.Pct(cum, total))
	}
	t.Render(w)
}

// WriteObs5 renders the Observation 5 accounting.
func (r *Report) WriteObs5(w io.Writer) {
	o := r.Observation5()
	t := stats.NewTable("Observation 5 — faults with no same-cycle assertion",
		"Category", "Count", "%of-non-instant")
	n := int64(o.NonInstant)
	t.AddRow("no assertion ever (must be benign)", o.NeverViolated, stats.Pct(int64(o.NeverViolated), n))
	t.AddRow("  ... judged benign by golden ref", o.NeverViolatedBenign, stats.Pct(int64(o.NeverViolatedBenign), n))
	t.AddRow("assertion later (caught downstream)", o.LaterViolated, stats.Pct(int64(o.LaterViolated), n))
	t.AddRow("  ... of which malicious", o.LaterCaughtMalicious, stats.Pct(int64(o.LaterCaughtMalicious), n))
	t.Render(w)
}
