package campaign

import (
	"encoding/json"
	"strings"
	"testing"

	"nocalert/internal/core"
	"nocalert/internal/fault"
	"nocalert/internal/forever"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// repCache memoizes campaign reports across tests (each run costs
// seconds; several tests interrogate the same campaign).
var repCache = map[[2]int64]*Report{}

// testCampaign runs a small but representative campaign on a 4×4 mesh.
func testCampaign(t *testing.T, injectCycle int64, nFaults int) *Report {
	t.Helper()
	key := [2]int64{injectCycle, int64(nFaults)}
	if rep, ok := repCache[key]; ok {
		return rep
	}
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	simCfg := sim.Config{Router: rc, InjectionRate: 0.12, Seed: 3}
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	faults := SampleFaults(params, nFaults, 5, injectCycle)
	rep, err := Run(Options{
		Sim:           simCfg,
		InjectCycle:   injectCycle,
		PostInjectRun: 400,
		DrainDeadline: 5000,
		Forever:       forever.Options{Epoch: 400, HopLatency: 1},
		Faults:        faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	repCache[key] = rep
	return rep
}

// TestObservation1ZeroFalseNegatives is the paper's headline claim:
// every fault that violates network correctness is detected — by both
// NoCAlert and ForEVeR.
func TestObservation1ZeroFalseNegatives(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	rep := testCampaign(t, 300, 220)
	if rep.MaliciousCount() == 0 {
		t.Fatal("campaign produced no malicious faults; nothing verified")
	}
	if fn := rep.FalseNegatives(NoCAlert); fn != 0 {
		for _, r := range rep.Results {
			if r.Outcome == FalseNegative {
				t.Errorf("NoCAlert FN: %s verdict=%s", r.Fault.String(), r.Verdict.String())
			}
		}
		t.Fatalf("NoCAlert false negatives: %d", fn)
	}
	if fn := rep.FalseNegatives(ForEVeR); fn != 0 {
		for _, r := range rep.Results {
			if r.ForeverOutcome == FalseNegative {
				t.Errorf("ForEVeR FN: %s verdict=%s", r.Fault.String(), r.Verdict.String())
			}
		}
		t.Fatalf("ForEVeR false negatives: %d", fn)
	}
}

// TestFig7LatencyShape checks the paper's Figure 7 shape: the vast
// majority of NoCAlert's true positives are caught in the injection
// cycle itself, with a short tail, while ForEVeR's detections are
// quantized to epochs (hundreds to thousands of cycles).
func TestFig7LatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	rep := testCampaign(t, 300, 220)
	na := rep.LatencyCDF(NoCAlert)
	fv := rep.LatencyCDF(ForEVeR)
	if na.N() < 10 {
		t.Fatalf("too few true positives (%d) to judge the latency shape", na.N())
	}
	if sc := na.AtOrBelow(0); sc < 0.75 {
		t.Errorf("NoCAlert same-cycle detection = %.0f%%, want >= 75%% (paper: 97%%)", 100*sc)
	}
	if fv.N() > 0 && fv.Mean() < 20*max(na.Mean(), 1.0) {
		t.Errorf("ForEVeR mean latency %.1f not >> NoCAlert %.1f (paper: >100x)", fv.Mean(), na.Mean())
	}
}

// TestObservation5 verifies the paper's central empirical corollary:
// faults that never cause an invariance violation are always benign.
func TestObservation5(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	rep := testCampaign(t, 300, 220)
	o := rep.Observation5()
	if o.NeverViolated != o.NeverViolatedBenign {
		t.Fatalf("%d faults never asserted but %d were benign — a non-invariant fault broke the network undetected",
			o.NeverViolated, o.NeverViolatedBenign)
	}
	if o.NonInstant == 0 {
		t.Fatal("no non-instant faults in the sample; observation not exercised")
	}
}

// TestCautiousReducesFalsePositives verifies Observation 2's direction:
// deferring the low-risk checkers can only reduce false positives and
// must not create false negatives.
func TestCautiousReducesFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	rep := testCampaign(t, 300, 220)
	full := rep.Coverage(NoCAlert)
	cautious := rep.Coverage(Cautious)
	if cautious.FP > full.FP {
		t.Errorf("cautious FP %d > full FP %d", cautious.FP, full.FP)
	}
	if cautious.FN != 0 {
		t.Errorf("cautious mode introduced %d false negatives", cautious.FN)
	}
}

// TestObservation3PermanentGrantToNobody reproduces the paper's
// Observation 3: a transient fault suppressing an arbiter grant is a
// one-cycle NOP (benign), while the same fault made permanent starves
// the port and deadlocks traffic (malicious) — and both are detected.
func TestObservation3PermanentGrantToNobody(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	simCfg := sim.Config{Router: rc, InjectionRate: 0.15, Seed: 11}
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	const inject = 400

	var sites []fault.Site
	for _, s := range params.EnumerateSites() {
		if s.Kind == fault.SA1Gnt {
			sites = append(sites, s)
		}
	}
	if len(sites) == 0 {
		t.Fatal("no SA1 grant sites enumerated")
	}
	run := func(typ fault.Type) (malicious, deadlocked, detected, fired int, n int) {
		var faults []fault.Fault
		for _, s := range sites[:12] {
			faults = append(faults, fault.Fault{Site: s, Bit: 0, Cycle: inject, Type: typ})
		}
		rep, err := Run(Options{
			Sim: simCfg, InjectCycle: inject, PostInjectRun: 400, DrainDeadline: 4000,
			Forever: forever.Options{Epoch: 400}, Faults: faults,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Results {
			if r.Fired {
				fired++
			}
			if !r.Verdict.OK() {
				malicious++
			}
			if r.Verdict.Unbounded {
				deadlocked++
			}
			if r.Detected {
				detected++
			}
		}
		return malicious, deadlocked, detected, fired, len(rep.Results)
	}

	tMal, tDead, _, tFired, _ := run(fault.Transient)
	pMal, pDead, pDet, pFired, pN := run(fault.Permanent)
	if tFired == 0 || pFired == 0 {
		t.Fatal("no faults fired; scenario not exercised")
	}
	// Permanent faults must be strictly more destructive.
	if pDead <= tDead {
		t.Errorf("permanent deadlocks (%d) not greater than transient (%d)", pDead, tDead)
	}
	if pMal <= tMal {
		t.Errorf("permanent malicious (%d) not greater than transient (%d)", pMal, tMal)
	}
	// Every permanent fault on a live grant line must be detected.
	if pDet < pFired {
		t.Errorf("only %d of %d fired permanent faults detected", pDet, pFired)
	}
	_ = pN
}

// TestCheckerAblationCausesFalseNegatives demonstrates the paper's
// "no single checker is redundant" remark from the other side:
// disabling whole checker families lets real errors escape.
func TestCheckerAblationCausesFalseNegatives(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	simCfg := sim.Config{Router: rc, InjectionRate: 0.12, Seed: 3}
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	faults := SampleFaults(params, 220, 5, 300)

	// Disable everything except the arbiter checkers (4-13).
	var disabled []core.CheckerID
	for id := core.CheckerID(1); id <= core.NumCheckers; id++ {
		if id >= 4 && id <= 13 {
			continue
		}
		disabled = append(disabled, id)
	}
	rep, err := Run(Options{
		Sim: simCfg, InjectCycle: 300, PostInjectRun: 400, DrainDeadline: 5000,
		Forever: forever.Options{Epoch: 400}, Faults: faults,
		CheckersDisabled: disabled,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fn := rep.FalseNegatives(NoCAlert); fn == 0 {
		t.Error("arbiter-only checker subset still has zero false negatives; ablation shows no coverage loss")
	}
}

// TestSampleFaultsDeterministic checks the sampler is reproducible and
// well-formed.
func TestSampleFaultsDeterministic(t *testing.T) {
	params := fault.Params{Mesh: topology.NewMesh(4, 4), VCs: 4, BufDepth: 5}
	a := SampleFaults(params, 50, 9, 100)
	b := SampleFaults(params, 50, 9, 100)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("want 50 faults, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample not deterministic at %d: %v vs %v", i, &a[i], &b[i])
		}
		if a[i].Bit < 0 || a[i].Bit >= a[i].Site.Width {
			t.Fatalf("fault %v has out-of-range bit", &a[i])
		}
		if a[i].Cycle != 100 || a[i].Type != fault.Transient {
			t.Fatalf("fault %v has wrong cycle/type", &a[i])
		}
	}
	all := SampleFaults(params, 0, 1, 0)
	bits := 0
	for _, s := range params.EnumerateSites() {
		bits += s.Width
	}
	if len(all) != bits {
		t.Fatalf("full population %d != site bits %d", len(all), bits)
	}
}

// TestOutcomeStrings pins the outcome abbreviations used in reports.
func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		TrueNegative: "TN", TruePositive: "TP", FalsePositive: "FP", FalseNegative: "FN",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
	for m, want := range map[Mechanism]string{
		NoCAlert: "NoCAlert", Cautious: "NoCAlert Cautious", ForEVeR: "ForEVeR",
	} {
		if m.String() != want {
			t.Errorf("Mechanism(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

// TestRecoveryExposure: NoCAlert's instant detection must expose far
// less committed traffic than ForEVeR's epoch-delayed detection — the
// quantitative form of the paper's "ultra-fast response by a potential
// fault recovery scheme" argument.
func TestRecoveryExposure(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	rep := testCampaign(t, 300, 220)
	na := rep.RecoveryExposure(NoCAlert)
	fv := rep.RecoveryExposure(ForEVeR)
	if na.MeanFlitsAtRisk >= fv.MeanFlitsAtRisk {
		t.Errorf("NoCAlert exposure %.1f not below ForEVeR %.1f",
			na.MeanFlitsAtRisk, fv.MeanFlitsAtRisk)
	}
	if fv.MeanLatency < 10*na.MeanLatency+1 {
		t.Errorf("latency gap too small: %.1f vs %.1f", na.MeanLatency, fv.MeanLatency)
	}
}

// TestWriteJSON validates the machine-readable export round-trips.
func TestWriteJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	rep := testCampaign(t, 300, 220)
	var sb strings.Builder
	if err := rep.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"fig6_coverage", "fig7_latency_cdf", "fig8_checker_shares", "fig9_simultaneity_hist", "obs5", "recovery_exposure"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("JSON missing %q", key)
		}
	}
	if int(decoded["faults"].(float64)) != len(rep.Results) {
		t.Error("fault count mismatch in JSON")
	}
}

// TestReportRendering smoke-tests the figure writers.
func TestReportRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	rep := testCampaign(t, 0, 60)
	var sb strings.Builder
	rep.WriteFig6(&sb)
	rep.WriteFig7(&sb)
	rep.WriteFig8(&sb)
	rep.WriteFig9(&sb)
	rep.WriteObs5(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 6", "Figure 7", "Figure 8", "Figure 9", "Observation 5", "NoCAlert", "ForEVeR"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q", want)
		}
	}
}
