package campaign

// This file splits one campaign into N self-describing, independently
// executable shards. The partition is purely arithmetic over the
// deterministic fault universe — shard i of N covers global fault
// indices [i*total/N, (i+1)*total/N) — so for any N the shards tile
// the identical universe with no overlap and no gaps, and any shard
// can be planned (or re-planned after a crash) without coordination.
// Because every run forks from the same warmed base state and the
// universe is sampled once from the spec's seed (never per shard),
// shard boundaries and execution order cannot change any run's result:
// merging all shards reproduces the unsharded report bit for bit.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"nocalert/internal/fault"
	"nocalert/internal/forever"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
	"nocalert/internal/trace"
)

// Spec is the complete, serializable description of a campaign: the
// mesh, workload, fault universe and run parameters. Two processes
// holding equal Specs derive the identical fault universe and produce
// identical run records, which is what makes shards self-describing —
// a checkpoint's embedded Spec is all a merger needs.
type Spec struct {
	MeshW         int     `json:"mesh_w"`
	MeshH         int     `json:"mesh_h"`
	VCs           int     `json:"vcs"`
	InjectionRate float64 `json:"injection_rate"`
	Seed          uint64  `json:"seed"`
	InjectCycle   int64   `json:"inject_cycle"`
	// InjectCycles, when non-empty, distributes the sampled universe's
	// injection cycles round-robin over this list (fault i injects at
	// InjectCycles[i%len]). Empty means every fault injects at
	// InjectCycle, which keeps the spec hash — and therefore every
	// existing checkpoint's identity — unchanged.
	InjectCycles  []int64 `json:"inject_cycles,omitempty"`
	PostInjectRun int64   `json:"post_inject_run"`
	DrainDeadline int64   `json:"drain_deadline"`
	Epoch         int64   `json:"epoch"`
	HopLatency    int64   `json:"hop_latency"`
	// NumFaults is the sample size drawn from the universe (0 = every
	// single-bit location).
	NumFaults int `json:"num_faults"`
}

// Validate rejects specs that cannot describe a campaign.
func (s *Spec) Validate() error {
	if s.MeshW < 1 || s.MeshH < 1 {
		return fmt.Errorf("campaign: invalid mesh %dx%d", s.MeshW, s.MeshH)
	}
	if s.VCs < 1 {
		return fmt.Errorf("campaign: invalid VC count %d", s.VCs)
	}
	if s.InjectionRate < 0 || s.InjectionRate > 1 {
		return fmt.Errorf("campaign: invalid injection rate %g", s.InjectionRate)
	}
	if s.NumFaults < 0 {
		return fmt.Errorf("campaign: invalid fault count %d", s.NumFaults)
	}
	if s.InjectCycle < 0 {
		return fmt.Errorf("campaign: invalid injection cycle %d", s.InjectCycle)
	}
	for _, c := range s.InjectCycles {
		if c < 0 {
			return fmt.Errorf("campaign: invalid injection cycle %d", c)
		}
	}
	return nil
}

// RouterConfig returns the router micro-architecture the spec fixes.
func (s *Spec) RouterConfig() router.Config {
	rc := router.Default(topology.NewMesh(s.MeshW, s.MeshH))
	rc.VCs = s.VCs
	return rc
}

// Options expands the spec into campaign options (without faults).
func (s *Spec) Options() Options {
	rc := s.RouterConfig()
	return Options{
		Sim:           sim.Config{Router: rc, InjectionRate: s.InjectionRate, Seed: s.Seed},
		InjectCycle:   s.InjectCycle,
		PostInjectRun: s.PostInjectRun,
		DrainDeadline: s.DrainDeadline,
		Forever:       forever.Options{Epoch: s.Epoch, HopLatency: s.HopLatency},
	}
}

// Universe returns the spec's full fault list. The draw depends only
// on the spec — crucially never on shard count or execution order —
// so every shard slices the same list. A non-empty InjectCycles list
// restamps the draw round-robin, after sampling, so the set of fault
// locations is independent of how injection cycles are spread.
func (s *Spec) Universe() []fault.Fault {
	rc := s.RouterConfig()
	params := fault.Params{Mesh: rc.Mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	u := SampleFaults(params, s.NumFaults, s.Seed, s.InjectCycle)
	if len(s.InjectCycles) > 0 {
		for i := range u {
			u[i].Cycle = s.InjectCycles[i%len(s.InjectCycles)]
		}
	}
	return u
}

// Hash fingerprints the spec (FNV-1a over its canonical JSON).
func (s *Spec) Hash() string {
	b, err := json.Marshal(s)
	if err != nil {
		panic(fmt.Sprintf("campaign: spec marshal: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// UniverseHash fingerprints the exact fault list the spec expands to,
// so a merger can prove two shards partitioned the same universe even
// if the enumeration code changed between their runs.
func UniverseHash(faults []fault.Fault) string {
	h := fnv.New64a()
	for i := range faults {
		f := &faults[i]
		fmt.Fprintf(h, "%d/%d/%d/%d/%d/%d/%d;",
			f.Site.Router, int(f.Site.Kind), f.Site.Port, f.Site.VC, f.Bit, f.Cycle, int(f.Type))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// ShardRange returns the global index range [lo, hi) shard i of n
// covers over a universe of the given total size. For every n the
// ranges tile [0, total) exactly: contiguous, disjoint, no gaps.
func ShardRange(total, i, n int) (lo, hi int) {
	return i * total / n, (i + 1) * total / n
}

// Shard is one planned slice of a campaign.
type Shard struct {
	Spec  Spec
	Index int
	Count int
	// Start and End are the global fault-index range [Start, End).
	Start, End int
	// Faults are the shard's own faults; Faults[k] has global index
	// Start+k.
	Faults []fault.Fault
	// UniverseHash fingerprints the full universe the shard was cut
	// from.
	UniverseHash string
}

// PlanShard deterministically plans shard i of n for the spec.
func PlanShard(spec Spec, i, n int) (*Shard, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("campaign: shard count %d < 1", n)
	}
	if i < 0 || i >= n {
		return nil, fmt.Errorf("campaign: shard index %d outside [0,%d)", i, n)
	}
	universe := spec.Universe()
	if len(universe) == 0 {
		return nil, fmt.Errorf("campaign: spec yields an empty fault universe")
	}
	lo, hi := ShardRange(len(universe), i, n)
	return &Shard{
		Spec:         spec,
		Index:        i,
		Count:        n,
		Start:        lo,
		End:          hi,
		Faults:       universe[lo:hi],
		UniverseHash: UniverseHash(universe),
	}, nil
}

// Manifest returns the checkpoint manifest describing the shard.
func (sh *Shard) Manifest() (*trace.Manifest, error) {
	specJSON, err := json.Marshal(&sh.Spec)
	if err != nil {
		return nil, err
	}
	return &trace.Manifest{
		Kind:         "manifest",
		Version:      trace.CheckpointVersion,
		Spec:         specJSON,
		SpecHash:     sh.Spec.Hash(),
		UniverseHash: sh.UniverseHash,
		Shard:        sh.Index,
		Shards:       sh.Count,
		Start:        sh.Start,
		End:          sh.End,
	}, nil
}
