package campaign

import (
	"strings"
	"testing"

	"nocalert/internal/core"
	"nocalert/internal/golden"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// fabricated builds a report from hand-written results so aggregation
// math can be pinned without running campaigns.
func fabricated() *Report {
	rc := router.Default(topology.NewMesh(4, 4))
	bad := golden.Verdict{Dropped: 1}
	return &Report{
		Opts: Options{InjectCycle: 100, Sim: sim.Config{Router: rc, InjectionRate: 0.1}},
		Results: []RunResult{
			{ // TP, instant, two checkers in the first cycle
				Detected: true, DetectCycle: 100, Latency: 0, Outcome: TruePositive,
				CautiousDetected: true, CautiousLatency: 0, CautiousOutcome: TruePositive,
				ForeverDetected: true, ForeverLatency: 1400, ForeverOutcome: TruePositive,
				Verdict:            bad,
				CheckersFired:      []core.CheckerID{4, 17},
				FirstCycleCheckers: []core.CheckerID{4, 17},
			},
			{ // FP, low-risk only → cautious TN
				Detected: true, DetectCycle: 105, Latency: 5, Outcome: FalsePositive,
				CautiousDetected: false, CautiousLatency: -1, CautiousOutcome: TrueNegative,
				ForeverDetected: false, ForeverLatency: -1, ForeverOutcome: TrueNegative,
				CheckersFired:      []core.CheckerID{1},
				FirstCycleCheckers: []core.CheckerID{1},
			},
			{ // TN all around
				Outcome: TrueNegative, CautiousOutcome: TrueNegative, ForeverOutcome: TrueNegative,
				Latency: -1, CautiousLatency: -1, ForeverLatency: -1,
			},
			{ // TP, delayed
				Detected: true, DetectCycle: 110, Latency: 10, Outcome: TruePositive,
				CautiousDetected: true, CautiousLatency: 10, CautiousOutcome: TruePositive,
				ForeverDetected: true, ForeverLatency: 2900, ForeverOutcome: TruePositive,
				Verdict:            bad,
				CheckersFired:      []core.CheckerID{24},
				FirstCycleCheckers: []core.CheckerID{24},
			},
		},
	}
}

func TestCoverageMath(t *testing.T) {
	r := fabricated()
	c := r.Coverage(NoCAlert)
	if c.TP != 2 || c.FP != 1 || c.TN != 1 || c.FN != 0 {
		t.Fatalf("coverage %+v", c)
	}
	if c.TPPct != 50 || c.FPPct != 25 {
		t.Fatalf("percentages %+v", c)
	}
	cc := r.Coverage(Cautious)
	if cc.FP != 0 || cc.TN != 2 {
		t.Fatalf("cautious coverage %+v", cc)
	}
}

func TestLatencyCDFOnlyTruePositives(t *testing.T) {
	r := fabricated()
	cdf := r.LatencyCDF(NoCAlert)
	if cdf.N() != 2 {
		t.Fatalf("CDF over %d samples, want 2 (TPs only)", cdf.N())
	}
	if cdf.Min() != 0 || cdf.Max() != 10 {
		t.Fatalf("CDF range [%d,%d]", cdf.Min(), cdf.Max())
	}
}

func TestCheckerSharesWeighting(t *testing.T) {
	r := fabricated()
	shares := map[core.CheckerID]CheckerShare{}
	total := 0.0
	for _, s := range r.CheckerShares() {
		shares[s.Checker] = s
		total += s.SharePct
	}
	// Three detected runs: run 1 splits 1/2+1/2 between 4 and 17, runs
	// 2 and 4 give full weight to 1 and 24. Shares must sum to 100.
	if total < 99.9 || total > 100.1 {
		t.Fatalf("shares sum to %.2f", total)
	}
	if shares[4].SharePct != shares[17].SharePct {
		t.Fatal("co-asserted checkers must split the run's weight")
	}
	if shares[1].SharePct != 2*shares[4].SharePct {
		t.Fatalf("sole checker weight %f vs split %f", shares[1].SharePct, shares[4].SharePct)
	}
	if shares[1].AloneRuns != 1 || shares[4].AloneRuns != 0 {
		t.Fatal("alone-run accounting wrong")
	}
}

func TestSimultaneityDistributionMath(t *testing.T) {
	r := fabricated()
	hist := r.SimultaneityDistribution()
	// Distinct-checker counts per detected run: 2, 1, 1.
	if hist[1] != 2 || hist[2] != 1 {
		t.Fatalf("hist %v", hist)
	}
}

func TestObservation5Math(t *testing.T) {
	r := fabricated()
	o := r.Observation5()
	// Non-instant: the FP (latency 5), the TN (never), the delayed TP.
	if o.NonInstant != 3 || o.NeverViolated != 1 || o.NeverViolatedBenign != 1 || o.LaterViolated != 2 {
		t.Fatalf("obs5 %+v", o)
	}
	if o.LaterCaughtMalicious != 1 {
		t.Fatalf("obs5 malicious %+v", o)
	}
}

func TestWriteHeatmaps(t *testing.T) {
	r := fabricated()
	var sb strings.Builder
	r.WriteHeatmaps(&sb)
	out := sb.String()
	for _, want := range []string{"faults injected", "violations", "assertions", "y=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap output missing %q:\n%s", want, out)
		}
	}
}

func TestRecoveryExposureMath(t *testing.T) {
	r := fabricated()
	// 0.1 flits/node/cycle × 16 nodes = 1.6 flits/cycle.
	na := r.RecoveryExposure(NoCAlert)
	if na.MeanLatency != 5 { // (0+10)/2
		t.Fatalf("mean latency %f", na.MeanLatency)
	}
	if na.MeanFlitsAtRisk != 8 { // 5 × 1.6
		t.Fatalf("mean risk %f", na.MeanFlitsAtRisk)
	}
	fv := r.RecoveryExposure(ForEVeR)
	if fv.MeanLatency != 2150 || fv.MaxFlitsAtRisk != 2900*1.6 {
		t.Fatalf("forever exposure %+v", fv)
	}
}
