package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nocalert/internal/trace"
)

// shardTestSpec is the spec the sharding tests run: small enough for
// CI, loaded enough to produce every outcome class.
func shardTestSpec(nFaults int) Spec {
	return Spec{
		MeshW: 4, MeshH: 4, VCs: 4,
		InjectionRate: 0.12,
		Seed:          3,
		InjectCycle:   300,
		PostInjectRun: 400,
		DrainDeadline: 5000,
		Epoch:         400,
		HopLatency:    1,
		NumFaults:     nFaults,
	}
}

// TestShardRangePartition: for any shard count, the ranges tile
// [0, total) exactly — contiguous, disjoint, no gaps.
func TestShardRangePartition(t *testing.T) {
	for _, total := range []int{0, 1, 2, 7, 48, 96, 11808, 32256} {
		for _, n := range []int{1, 2, 3, 4, 5, 7, 16, 97} {
			prevHi := 0
			for i := 0; i < n; i++ {
				lo, hi := ShardRange(total, i, n)
				if lo != prevHi {
					t.Fatalf("total=%d n=%d: shard %d starts at %d, previous ended at %d", total, n, i, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("total=%d n=%d: shard %d has negative range [%d,%d)", total, n, i, lo, hi)
				}
				prevHi = hi
			}
			if prevHi != total {
				t.Fatalf("total=%d n=%d: shards end at %d", total, n, prevHi)
			}
		}
	}
}

// TestPlanShardTilesUniverse: planned shards re-assemble into exactly
// the unsharded universe, for several shard counts, and planning is
// deterministic.
func TestPlanShardTilesUniverse(t *testing.T) {
	spec := shardTestSpec(50)
	universe := spec.Universe()
	for _, n := range []int{1, 3, 4, 7, 50} {
		var rebuilt int
		for i := 0; i < n; i++ {
			sh, err := PlanShard(spec, i, n)
			if err != nil {
				t.Fatal(err)
			}
			if sh.UniverseHash != UniverseHash(universe) {
				t.Fatalf("n=%d shard %d: universe hash differs", n, i)
			}
			for k, f := range sh.Faults {
				if f != universe[sh.Start+k] {
					t.Fatalf("n=%d shard %d: fault %d is %v, universe has %v", n, i, k, &f, &universe[sh.Start+k])
				}
				rebuilt++
			}
			again, err := PlanShard(spec, i, n)
			if err != nil {
				t.Fatal(err)
			}
			if again.Start != sh.Start || again.End != sh.End || len(again.Faults) != len(sh.Faults) {
				t.Fatalf("n=%d shard %d: planning is not deterministic", n, i)
			}
		}
		if rebuilt != len(universe) {
			t.Fatalf("n=%d: shards carry %d faults, universe has %d", n, rebuilt, len(universe))
		}
	}
	if _, err := PlanShard(spec, 3, 3); err == nil {
		t.Fatal("PlanShard accepted an out-of-range index")
	}
	if _, err := PlanShard(spec, 0, 0); err == nil {
		t.Fatal("PlanShard accepted zero shards")
	}
}

// recCache memoizes record sets across the sharding tests (each
// campaign execution costs seconds).
var recCache = map[string][]trace.RunRecord{}

// unshardedRecords runs the spec's campaign unsharded and returns its
// canonical-ordered record set.
func unshardedRecords(t *testing.T, spec Spec) []trace.RunRecord {
	t.Helper()
	if recs, ok := recCache[spec.Hash()]; ok {
		return recs
	}
	opts := spec.Options()
	opts.Faults = spec.Universe()
	recs := make([]trace.RunRecord, len(opts.Faults))
	opts.OnResult = func(i int, res *RunResult, wall time.Duration, exit ExitPath) {
		recs[i] = RecordFor(i, res, wall, exit == ExitFastPath)
	}
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	recCache[spec.Hash()] = recs
	return recs
}

// runShardToFile plans and executes one shard, checkpointing to dir.
func runShardToFile(t *testing.T, spec Spec, i, n int, dir string) string {
	t.Helper()
	sh, err := PlanShard(spec, i, n)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sh.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "shard.ndjson")
	cp, completed, err := trace.ResumeCheckpoint(path, m)
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	stats, err := RunShard(sh, cp, completed, ShardRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Complete {
		t.Fatalf("shard %d/%d did not complete: %+v", i, n, stats)
	}
	return path
}

func canonicalSet(recs []trace.RunRecord) map[int]string {
	out := make(map[int]string, len(recs))
	for i := range recs {
		out[recs[i].Index] = string(recs[i].CanonicalBytes())
	}
	return out
}

// TestShardedMergeBitIdentical is the tentpole acceptance test:
// executing the campaign as shards and merging yields records — and an
// aggregated report, byte for byte — identical to the unsharded run.
func TestShardedMergeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	spec := shardTestSpec(48)
	want := unshardedRecords(t, spec)

	const n = 3
	var shards []*trace.CheckpointData
	for i := 0; i < n; i++ {
		path := runShardToFile(t, spec, i, n, t.TempDir())
		cd, err := trace.ReadCheckpointFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if cd.Footer == nil {
			t.Fatalf("shard %d checkpoint has no footer", i)
		}
		shards = append(shards, cd)
	}
	merged, err := MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Records) != len(want) {
		t.Fatalf("merged %d records, unsharded run has %d", len(merged.Records), len(want))
	}
	wantSet := canonicalSet(want)
	for i := range merged.Records {
		rec := &merged.Records[i]
		if got := string(rec.CanonicalBytes()); got != wantSet[rec.Index] {
			t.Fatalf("record %d differs between sharded and unsharded execution:\nsharded:   %s\nunsharded: %s",
				rec.Index, got, wantSet[rec.Index])
		}
	}
	if trace.SumRecords(merged.Records) != trace.SumRecords(want) {
		t.Fatal("merged checksum differs from unsharded checksum")
	}

	// Aggregated report: bit-identical JSON export both when rebuilt
	// from the unsharded records and when rebuilt from the merge.
	unshardedRep, err := ReportFromRecords(spec, want)
	if err != nil {
		t.Fatal(err)
	}
	mergedRep, err := merged.Report()
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := unshardedRep.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := mergedRep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merged report JSON differs from unsharded:\n%s\nvs\n%s", b.String(), a.String())
	}
}

// TestReportFromRecordsMatchesLiveReport: a report rebuilt from the
// record stream exports the same JSON as the live in-memory report —
// the records really do carry everything the aggregation needs.
func TestReportFromRecordsMatchesLiveReport(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	spec := shardTestSpec(48)
	opts := spec.Options()
	opts.Faults = spec.Universe()
	recs := make([]trace.RunRecord, len(opts.Faults))
	opts.OnResult = func(i int, res *RunResult, wall time.Duration, exit ExitPath) {
		recs[i] = RecordFor(i, res, wall, exit == ExitFastPath)
	}
	rep, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := ReportFromRecords(spec, recs)
	if err != nil {
		t.Fatal(err)
	}
	var live, rec bytes.Buffer
	if err := rep.WriteJSON(&live); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.WriteJSON(&rec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), rec.Bytes()) {
		t.Fatalf("record-rebuilt report differs from live report:\n%s\nvs\n%s", rec.String(), live.String())
	}
	if rebuilt.FastPathHits != rep.FastPathHits {
		t.Fatalf("rebuilt fast-path hits %d, live %d", rebuilt.FastPathHits, rep.FastPathHits)
	}
}

// TestInterruptedShardResume is the kill/resume acceptance test: a
// shard cancelled mid-campaign and resumed from its checkpoint must
// finish with exactly the records (and integrity checksum) of an
// uninterrupted execution.
func TestInterruptedShardResume(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	spec := shardTestSpec(48)
	const n, idx = 2, 0
	want := unshardedRecords(t, spec) // global truth to compare against

	sh, err := PlanShard(spec, idx, n)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sh.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "interrupted.ndjson")
	cp, completed, err := trace.ResumeCheckpoint(path, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(completed) != 0 {
		t.Fatalf("fresh checkpoint claims %d completed runs", len(completed))
	}

	// Kill the shard after a third of its runs: cancel cooperatively
	// and let RunShard surface the context error.
	ctx, cancel := context.WithCancel(context.Background())
	killAfter := (sh.End - sh.Start) / 3
	stats, err := RunShard(sh, cp, completed, ShardRunOptions{
		Workers: 1,
		Context: ctx,
		Progress: func(done, total int, _ ShardRunStats) {
			if done >= killAfter {
				cancel()
			}
		},
	})
	cancel()
	if err == nil {
		t.Fatalf("interrupted shard returned no error (stats %+v)", stats)
	}
	if stats.Complete {
		t.Fatal("interrupted shard claims completion")
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	partial, err := trace.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial.Records) == 0 || len(partial.Records) >= sh.End-sh.Start {
		t.Fatalf("interruption recorded %d of %d runs; test premise broken",
			len(partial.Records), sh.End-sh.Start)
	}
	if partial.Footer != nil {
		t.Fatal("interrupted checkpoint has a footer")
	}

	// Resume: skip-and-verify the recorded runs, execute the rest.
	cp2, completed2, err := trace.ResumeCheckpoint(path, m)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if len(completed2) != len(partial.Records) {
		t.Fatalf("resume recovered %d records, file has %d", len(completed2), len(partial.Records))
	}
	stats2, err := RunShard(sh, cp2, completed2, ShardRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.Complete {
		t.Fatalf("resumed shard did not complete: %+v", stats2)
	}
	if stats2.Resumed != len(completed2) || stats2.Resumed+stats2.Executed != sh.End-sh.Start {
		t.Fatalf("resume accounting off: %+v", stats2)
	}
	if stats2.Verified == 0 {
		t.Fatal("resume verified no recorded runs")
	}

	// The resumed checkpoint must carry exactly the uninterrupted
	// run's records (canonical bytes) and checksum.
	final, err := trace.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Records) != sh.End-sh.Start || final.Footer == nil {
		t.Fatalf("resumed checkpoint: %d records, footer %v", len(final.Records), final.Footer)
	}
	wantSet := canonicalSet(want)
	for i := range final.Records {
		rec := &final.Records[i]
		if rec.Index < sh.Start || rec.Index >= sh.End {
			t.Fatalf("record %d outside shard range", rec.Index)
		}
		if got := string(rec.CanonicalBytes()); got != wantSet[rec.Index] {
			t.Fatalf("resumed record %d differs from uninterrupted execution:\nresumed: %s\nwant:    %s",
				rec.Index, got, wantSet[rec.Index])
		}
	}
	wantShard := want[sh.Start:sh.End]
	if final.Footer.Sum != trace.SumRecords(wantShard) {
		t.Fatalf("resumed checksum %s != uninterrupted %s", final.Footer.Sum, trace.SumRecords(wantShard))
	}

	// Resuming a finalized checkpoint is a no-op.
	cp3, completed3, err := trace.ResumeCheckpoint(path, m)
	if err != nil {
		t.Fatal(err)
	}
	defer cp3.Close()
	stats3, err := RunShard(sh, cp3, completed3, ShardRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats3.Complete || stats3.Executed != 0 {
		t.Fatalf("finalized shard re-ran work: %+v", stats3)
	}
}

// TestResumeDetectsTamperedCheckpoint: resume validates recorded runs
// two ways — fault identity against the plan, and deterministic
// re-execution of a sample. Both must reject a checkpoint whose
// records were altered.
func TestResumeDetectsTamperedCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	spec := shardTestSpec(8)
	sh, err := PlanShard(spec, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sh.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.ndjson")
	cp, _, err := trace.ResumeCheckpoint(path, m)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	_, runErr := RunShard(sh, cp, nil, ShardRunOptions{
		Workers: 1,
		Context: ctx,
		Progress: func(done, total int, _ ShardRunStats) {
			if done >= 3 {
				cancel()
			}
		},
	})
	cancel()
	if runErr == nil {
		t.Fatal("expected interruption")
	}
	cp.Close()

	tamper := func(t *testing.T, mutate func(rec map[string]any)) string {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
		if len(lines) < 2 {
			t.Fatal("checkpoint too short to tamper")
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
			t.Fatal(err)
		}
		mutate(rec)
		mutated, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		lines[1] = string(mutated)
		out := filepath.Join(t.TempDir(), "tampered.ndjson")
		if err := os.WriteFile(out, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// (a) Fault-identity tampering is caught by plan validation.
	badID := tamper(t, func(rec map[string]any) { rec["router"] = rec["router"].(float64) + 1 })
	cpa, completed, err := trace.ResumeCheckpoint(badID, m)
	if err != nil {
		t.Fatal(err)
	}
	defer cpa.Close()
	if _, err := RunShard(sh, cpa, completed, ShardRunOptions{}); err == nil {
		t.Fatal("identity-tampered checkpoint resumed without error")
	}

	// (b) Result tampering is caught by deterministic re-execution.
	badRes := tamper(t, func(rec map[string]any) {
		rec["fired"] = rec["fired"] != true
		rec["nocalert_outcome"] = "FN"
	})
	cpb, completedB, err := trace.ResumeCheckpoint(badRes, m)
	if err != nil {
		t.Fatal(err)
	}
	defer cpb.Close()
	// Verify every recorded run so the tampered one is certainly
	// replayed.
	_, err = RunShard(sh, cpb, completedB, ShardRunOptions{VerifyResumed: 1 << 20})
	if err == nil {
		t.Fatal("result-tampered checkpoint resumed without error")
	}
	if !strings.Contains(err.Error(), "diverges") {
		t.Fatalf("unexpected error for tampered result: %v", err)
	}
}

// TestMergeShardsRejectsBadSets: the merge reducer must refuse
// incomplete, duplicated or cross-campaign shard sets.
func TestMergeShardsRejectsBadSets(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	spec := shardTestSpec(48)
	// Reuse the canonical unsharded records to synthesize finalized
	// shard checkpoints without re-running campaigns.
	want := unshardedRecords(t, spec)
	mkShard := func(i, n int) *trace.CheckpointData {
		sh, err := PlanShard(spec, i, n)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sh.Manifest()
		if err != nil {
			t.Fatal(err)
		}
		recs := append([]trace.RunRecord(nil), want[sh.Start:sh.End]...)
		return &trace.CheckpointData{
			Manifest: *m,
			Records:  recs,
			Footer:   &trace.Footer{Kind: "footer", Records: len(recs), Sum: trace.SumRecords(recs)},
		}
	}

	good := []*trace.CheckpointData{mkShard(0, 2), mkShard(1, 2)}
	if _, err := MergeShards(good); err != nil {
		t.Fatalf("valid shard set rejected: %v", err)
	}

	if _, err := MergeShards(good[:1]); err == nil {
		t.Fatal("merge accepted an incomplete shard set")
	}
	if _, err := MergeShards([]*trace.CheckpointData{mkShard(0, 2), mkShard(0, 2)}); err == nil {
		t.Fatal("merge accepted a duplicated shard")
	}

	foreign := mkShard(1, 2)
	foreign.Manifest.SpecHash = "deadbeefdeadbeef"
	if _, err := MergeShards([]*trace.CheckpointData{mkShard(0, 2), foreign}); err == nil {
		t.Fatal("merge accepted shards from different campaigns")
	}

	unfinished := mkShard(1, 2)
	unfinished.Footer = nil
	if _, err := MergeShards([]*trace.CheckpointData{mkShard(0, 2), unfinished}); err == nil {
		t.Fatal("merge accepted an unfinalized shard")
	}

	short := mkShard(1, 2)
	short.Records = short.Records[:len(short.Records)-1]
	short.Footer = &trace.Footer{Kind: "footer", Records: len(short.Records), Sum: trace.SumRecords(short.Records)}
	if _, err := MergeShards([]*trace.CheckpointData{mkShard(0, 2), short}); err == nil {
		t.Fatal("merge accepted a shard with missing records")
	}
}
