package campaign

import (
	"bytes"
	"flag"
	"os"
	"testing"
	"time"

	"nocalert/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate the testdata/golden_*.json fixtures")

const (
	goldenPath      = "../../testdata/golden_4x4_seed3.json"
	goldenPath8x8   = "../../testdata/golden_8x8_seed3.json"
	goldenPath16x16 = "../../testdata/golden_16x16_seed3.json"
)

// GoldenSpec is the campaign the committed fixture pins: the standard
// 4x4 test configuration with a 96-fault universe (24 per CI shard).
// The CI matrix runs exactly this spec as 4 shards and the merge step
// compares against the same fixture this test enforces.
func GoldenSpec() Spec {
	return Spec{
		MeshW: 4, MeshH: 4, VCs: 4,
		InjectionRate: 0.12,
		Seed:          3,
		InjectCycle:   300,
		PostInjectRun: 400,
		DrainDeadline: 5000,
		Epoch:         400,
		HopLatency:    1,
		NumFaults:     96,
	}
}

// TestGoldenFixture4x4 regenerates the golden campaign and fails if
// any fault's verdict, outcome, latency or checker attribution drifted
// from the committed fixture. Run `make golden` (go test -run
// TestGoldenFixture -update-golden) after an intentional behaviour
// change and commit the diff.
func TestGoldenFixture4x4(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	spec := GoldenSpec()
	got := NewFixture(spec, unshardedRecords(t, spec))

	if *updateGolden {
		f, err := os.Create(goldenPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d records)", goldenPath, len(got.Records))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden fixture (run `make golden` to create it): %v", err)
	}
	golden, err := ReadFixture(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := golden.Diff(got); len(diffs) != 0 {
		for _, d := range diffs {
			t.Error(d)
		}
		t.Fatalf("%d fault(s) drifted from the golden fixture; if intentional, run `make golden` and commit", len(diffs))
	}
}

// Golden8x8Spec is the paper-scale pinned campaign: the 8×8 mesh at
// the throughput benchmark's operating point. Its fixture is what the
// soa-identity CI gate and the SoA bench row both anchor to.
func Golden8x8Spec() Spec {
	return Spec{
		MeshW: 8, MeshH: 8, VCs: 4,
		InjectionRate: 0.05,
		Seed:          3,
		InjectCycle:   300,
		PostInjectRun: 500,
		DrainDeadline: 10000,
		Epoch:         1500,
		HopLatency:    1,
		NumFaults:     64,
	}
}

// TestGoldenFixture8x8 is TestGoldenFixture4x4 at paper scale.
func TestGoldenFixture8x8(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	spec := Golden8x8Spec()
	got := NewFixture(spec, unshardedRecords(t, spec))

	if *updateGolden {
		f, err := os.Create(goldenPath8x8)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d records)", goldenPath8x8, len(got.Records))
		return
	}

	data, err := os.ReadFile(goldenPath8x8)
	if err != nil {
		t.Fatalf("no golden fixture (run `make golden` to create it): %v", err)
	}
	golden, err := ReadFixture(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := golden.Diff(got); len(diffs) != 0 {
		for _, d := range diffs {
			t.Error(d)
		}
		t.Fatalf("%d fault(s) drifted from the golden fixture; if intentional, run `make golden` and commit", len(diffs))
	}
}

// Golden16x16Spec is the scale-out pinned campaign: a 16×16 mesh at a
// low injection rate, matching the Makefile's BENCH_16X16_FLAGS row.
// Its fixture keeps the frontier engine honest on a mesh large enough
// that most routers stay outside the fault's cone of influence.
func Golden16x16Spec() Spec {
	return Spec{
		MeshW: 16, MeshH: 16, VCs: 4,
		InjectionRate: 0.02,
		Seed:          3,
		InjectCycle:   300,
		PostInjectRun: 500,
		DrainDeadline: 10000,
		Epoch:         1500,
		HopLatency:    1,
		NumFaults:     32,
	}
}

// TestGoldenFixture16x16 is TestGoldenFixture4x4 at 16×16 scale.
func TestGoldenFixture16x16(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	spec := Golden16x16Spec()
	got := NewFixture(spec, unshardedRecords(t, spec))

	if *updateGolden {
		f, err := os.Create(goldenPath16x16)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d records)", goldenPath16x16, len(got.Records))
		return
	}

	data, err := os.ReadFile(goldenPath16x16)
	if err != nil {
		t.Fatalf("no golden fixture (run `make golden` to create it): %v", err)
	}
	golden, err := ReadFixture(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := golden.Diff(got); len(diffs) != 0 {
		for _, d := range diffs {
			t.Error(d)
		}
		t.Fatalf("%d fault(s) drifted from the golden fixture; if intentional, run `make golden` and commit", len(diffs))
	}
}

// TestGoldenEngineIdentity runs the golden 4×4 campaign once per sweep
// engine and requires record-for-record identical results: verdicts,
// outcomes, detection latencies and checker attributions must not move
// when the reference engine replaces the SoA engine. This is the
// in-tree half of the soa-identity CI gate (the CI half compares the
// CLI's whole JSON reports byte-for-byte on both mesh sizes).
func TestGoldenEngineIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	spec := GoldenSpec()
	soa := NewFixture(spec, unshardedRecords(t, spec))

	opts := spec.Options()
	opts.Sim.DisableSoA = true
	opts.Faults = spec.Universe()
	recs := make([]trace.RunRecord, len(opts.Faults))
	opts.OnResult = func(i int, res *RunResult, wall time.Duration, exit ExitPath) {
		recs[i] = RecordFor(i, res, wall, exit == ExitFastPath)
	}
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	ref := NewFixture(spec, recs)

	if diffs := soa.Diff(ref); len(diffs) != 0 {
		for _, d := range diffs {
			t.Error(d)
		}
		t.Fatalf("%d fault(s) differ between the SoA and reference engines", len(diffs))
	}
}

// TestFrontierEngineIdentity is TestGoldenEngineIdentity for the
// divergence-frontier engine: the golden 4×4 campaign run with
// frontier delta stepping (the default) must be record-for-record
// identical to the same campaign with -no-frontier. This is the
// in-tree half of the frontier-identity CI gate (the CI half compares
// the CLI's whole JSON reports byte-for-byte on both mesh sizes).
func TestFrontierEngineIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	spec := GoldenSpec()
	frontier := NewFixture(spec, unshardedRecords(t, spec))

	opts := spec.Options()
	opts.DisableFrontier = true
	opts.Faults = spec.Universe()
	recs := make([]trace.RunRecord, len(opts.Faults))
	opts.OnResult = func(i int, res *RunResult, wall time.Duration, exit ExitPath) {
		recs[i] = RecordFor(i, res, wall, exit == ExitFastPath)
	}
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	full := NewFixture(spec, recs)

	if diffs := frontier.Diff(full); len(diffs) != 0 {
		for _, d := range diffs {
			t.Error(d)
		}
		t.Fatalf("%d fault(s) differ between the frontier and full-mesh engines", len(diffs))
	}
}
