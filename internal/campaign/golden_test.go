package campaign

import (
	"bytes"
	"flag"
	"os"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "regenerate testdata/golden_4x4_seed3.json")

const goldenPath = "../../testdata/golden_4x4_seed3.json"

// GoldenSpec is the campaign the committed fixture pins: the standard
// 4x4 test configuration with a 96-fault universe (24 per CI shard).
// The CI matrix runs exactly this spec as 4 shards and the merge step
// compares against the same fixture this test enforces.
func GoldenSpec() Spec {
	return Spec{
		MeshW: 4, MeshH: 4, VCs: 4,
		InjectionRate: 0.12,
		Seed:          3,
		InjectCycle:   300,
		PostInjectRun: 400,
		DrainDeadline: 5000,
		Epoch:         400,
		HopLatency:    1,
		NumFaults:     96,
	}
}

// TestGoldenFixture4x4 regenerates the golden campaign and fails if
// any fault's verdict, outcome, latency or checker attribution drifted
// from the committed fixture. Run `make golden` (go test -run
// TestGoldenFixture -update-golden) after an intentional behaviour
// change and commit the diff.
func TestGoldenFixture4x4(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	spec := GoldenSpec()
	got := NewFixture(spec, unshardedRecords(t, spec))

	if *updateGolden {
		f, err := os.Create(goldenPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d records)", goldenPath, len(got.Records))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden fixture (run `make golden` to create it): %v", err)
	}
	golden, err := ReadFixture(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := golden.Diff(got); len(diffs) != 0 {
		for _, d := range diffs {
			t.Error(d)
		}
		t.Fatalf("%d fault(s) drifted from the golden fixture; if intentional, run `make golden` and commit", len(diffs))
	}
}
