package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"nocalert/internal/trace"
)

// Fixture is a committed per-fault classification snapshot: the spec
// that produced it plus one canonical record per fault. CI regenerates
// the records (sharded or not) and compares against the committed
// fixture, so any behavioural drift in the simulator, the checkers or
// the golden reference fails the gate on the exact fault that moved
// instead of being eyeballed out of aggregate percentages.
type Fixture struct {
	Spec    Spec              `json:"spec"`
	Records []trace.RunRecord `json:"records"`
}

// NewFixture canonicalizes records into a fixture: sorted by global
// index, wall times zeroed (the one legitimately nondeterministic
// field).
func NewFixture(spec Spec, recs []trace.RunRecord) *Fixture {
	canon := make([]trace.RunRecord, len(recs))
	for i := range recs {
		canon[i] = recs[i]
		canon[i].WallSeconds = 0
	}
	sort.Slice(canon, func(i, j int) bool { return canon[i].Index < canon[j].Index })
	return &Fixture{Spec: spec, Records: canon}
}

// WriteJSON writes the fixture as indented JSON (stable for diffs).
func (f *Fixture) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadFixture parses a fixture.
func ReadFixture(r io.Reader) (*Fixture, error) {
	var f Fixture
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("campaign: bad fixture: %v", err)
	}
	return &f, nil
}

// Diff compares a regenerated fixture against the committed golden
// one, returning one message per divergence (nil when identical).
// Comparison is canonical-byte per record, so any verdict, outcome,
// latency or checker-attribution drift is caught fault by fault.
func (f *Fixture) Diff(got *Fixture) []string {
	var diffs []string
	if f.Spec.Hash() != got.Spec.Hash() {
		diffs = append(diffs, fmt.Sprintf("spec differs: golden %+v, got %+v", f.Spec, got.Spec))
	}
	if len(f.Records) != len(got.Records) {
		diffs = append(diffs, fmt.Sprintf("record count differs: golden %d, got %d", len(f.Records), len(got.Records)))
	}
	n := len(f.Records)
	if len(got.Records) < n {
		n = len(got.Records)
	}
	for i := 0; i < n; i++ {
		w, g := f.Records[i].CanonicalBytes(), got.Records[i].CanonicalBytes()
		if !bytes.Equal(w, g) {
			diffs = append(diffs, fmt.Sprintf("fault %d (%s.p%d.bit%d @r%d) drifted:\n  golden: %s\n  got:    %s",
				f.Records[i].Index, f.Records[i].Signal, f.Records[i].Port, f.Records[i].Bit,
				f.Records[i].Router, w, g))
			if len(diffs) >= 12 {
				diffs = append(diffs, "... further diffs suppressed")
				break
			}
		}
	}
	return diffs
}
