package campaign

import (
	"fmt"
	"sort"

	"nocalert/internal/fault"
	"nocalert/internal/sim"
)

// snapshotBudget caps how many golden snapshots the adaptive planner
// records. A few dozen full-state copies of an 8×8 mesh are a few MB —
// cheap next to the prefix cycles they save — while keeping
// pathological universes (hundreds of distinct injection cycles) from
// hoarding memory.
const snapshotBudget = 32

// snapshot is one golden ring entry: the complete network state at
// cycle — every register, buffer, latch, NI queue, RNG stream and
// cloneable monitor — captured with CloneInto so the copy is a
// preallocated, arena-backed network like the workers' own fork
// targets.
type snapshot struct {
	cycle int64
	net   *sim.Network
}

// snapshotRing holds the golden run's periodic full-state snapshots,
// keyed by cycle, ascending. Faulty runs fork from the nearest entry at
// or before their injection cycle and fast-replay the gap.
type snapshotRing struct {
	snaps []snapshot
	bytes int64
}

// capture records the golden network's state at its current cycle.
func (r *snapshotRing) capture(n *sim.Network) {
	c := n.CloneInto(nil, nil)
	r.snaps = append(r.snaps, snapshot{cycle: n.Cycle(), net: c})
	r.bytes += c.ApproxFootprintBytes()
}

// at returns the nearest snapshot at or before cycle, or nil.
func (r *snapshotRing) at(cycle int64) *snapshot {
	i := sort.Search(len(r.snaps), func(i int) bool { return r.snaps[i].cycle > cycle }) - 1
	if i < 0 {
		return nil
	}
	return &r.snaps[i]
}

// planSnapshots returns the ascending cycles the golden run snapshots
// at. cycles is the campaign's distinct injection cycles, ascending.
//
//   - Fork disabled: a single snapshot at cycle 0, so every run
//     honestly replays its full [0, injection) prefix.
//   - Fixed interval I: the grid {min, min+I, min+2I, ...} clipped to
//     the last injection cycle (an interval past the horizon
//     degenerates to the single {min} entry).
//   - Adaptive (interval 0): the distinct injection cycles themselves
//     when they fit the budget, so every fork replays zero cycles;
//     otherwise equal-fault-weight buckets over the universe's
//     injection-cycle histogram, so each snapshot amortizes over the
//     same number of runs.
func planSnapshots(o *Options, cycles []int64) []int64 {
	if o.DisableFork {
		return []int64{0}
	}
	if o.SnapshotInterval > 0 {
		lo, hi := cycles[0], cycles[len(cycles)-1]
		var plan []int64
		for s := lo; s <= hi; s += o.SnapshotInterval {
			plan = append(plan, s)
		}
		return plan
	}
	if len(cycles) <= snapshotBudget {
		return append([]int64(nil), cycles...)
	}
	// Equal-fault-weight bucketing: sort one representative fault per
	// group by injection cycle and snapshot at every bucket boundary.
	scratch := make([]fault.Fault, len(o.FaultGroups))
	for i, g := range o.FaultGroups {
		scratch[i] = g[0]
	}
	fault.SortByCycle(scratch)
	per := (len(scratch) + snapshotBudget - 1) / snapshotBudget
	plan := make([]int64, 0, snapshotBudget)
	for i := 0; i < len(scratch); i += per {
		c := scratch[i].Cycle
		if len(plan) == 0 || plan[len(plan)-1] != c {
			plan = append(plan, c)
		}
	}
	return plan
}

// fork rebuilds the network state at gc.cycle inside the worker's
// reusable clone target: restore the nearest golden snapshot at or
// before the injection cycle, fast-replay the gap fault-free with no
// checkers attached, verify the replayed state against the golden
// fingerprint recorded at the fork point, and only then arm the fault
// plane. A zero-length replay (snapshot exactly at the injection
// cycle) is bit-identical to forking straight off the warmed base.
func (w *worker) fork(gc *groupCtx, plane *fault.Plane, st *runStats, ro *runObs) (*sim.Network, error) {
	n := gc.snap.net.CloneInto(w.net, nil)
	w.net = n
	if n.Cycle() < gc.cycle {
		for n.Cycle() < gc.cycle {
			n.Step()
		}
		if n.Fingerprint() != gc.forkFP {
			detail := fmt.Sprintf("replay from snapshot %d diverged at cycle %d", gc.snap.cycle, gc.cycle)
			ro.anomaly("fork fingerprint mismatch", "fork_verify", gc.cycle, detail)
			return nil, fmt.Errorf("campaign: fork replay from snapshot %d diverged from the golden state at cycle %d",
				gc.snap.cycle, gc.cycle)
		}
		ro.event("fork_verify", gc.cycle, "ok", map[string]any{"snapshot_cycle": gc.snap.cycle})
		// Replay ejections all happened strictly before the injection
		// cycle; drop them so the log keeps the post-injection-only
		// contract every fork-point comparison relies on.
		n.ResetEjections()
	}
	n.SetPlane(plane)
	st.warmSaved = gc.snap.cycle
	st.forked = gc.snap.cycle > 0
	return n, nil
}
