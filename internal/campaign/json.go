package campaign

import (
	"encoding/json"
	"io"

	"nocalert/internal/core"
)

// jsonReport is the machine-readable export of a campaign, shaped for
// downstream plotting (one object per figure).
type jsonReport struct {
	InjectCycle int64            `json:"inject_cycle"`
	Faults      int              `json:"faults"`
	Fired       int              `json:"fired"`
	Malicious   int              `json:"malicious"`
	Fig6        []jsonCoverage   `json:"fig6_coverage"`
	Fig7        []jsonLatencyCDF `json:"fig7_latency_cdf"`
	Fig8        []jsonShare      `json:"fig8_checker_shares"`
	Fig9        []int64          `json:"fig9_simultaneity_hist"`
	Obs5        Observation5     `json:"obs5"`
	Recovery    []jsonExposure   `json:"recovery_exposure"`
}

type jsonCoverage struct {
	Mechanism string  `json:"mechanism"`
	TP        float64 `json:"tp_pct"`
	FP        float64 `json:"fp_pct"`
	TN        float64 `json:"tn_pct"`
	FN        float64 `json:"fn_pct"`
}

type jsonLatencyCDF struct {
	Mechanism string      `json:"mechanism"`
	N         int         `json:"n"`
	Series    []jsonPoint `json:"series"`
}

type jsonPoint struct {
	Delay int64   `json:"delay_cycles"`
	CumPc float64 `json:"cumulative_pct"`
}

type jsonShare struct {
	Checker   int     `json:"checker"`
	Name      string  `json:"name"`
	SharePct  float64 `json:"share_pct"`
	FiredRuns int     `json:"fired_runs"`
	AloneRuns int     `json:"alone_runs"`
}

type jsonExposure struct {
	Mechanism       string  `json:"mechanism"`
	MeanLatency     float64 `json:"mean_latency_cycles"`
	MeanFlitsAtRisk float64 `json:"mean_flits_at_risk"`
	MaxFlitsAtRisk  float64 `json:"max_flits_at_risk"`
}

var cdfMilestones = []int64{0, 1, 2, 4, 9, 16, 28, 64, 128, 256, 512, 1024, 1500, 3000, 6000, 12000}

// WriteJSON exports the aggregated campaign results as JSON for
// external plotting tools.
func (r *Report) WriteJSON(w io.Writer) error {
	out := jsonReport{
		InjectCycle: r.Opts.InjectCycle,
		Faults:      len(r.Results),
		Fired:       r.FiredCount(),
		Malicious:   r.MaliciousCount(),
		Fig9:        r.SimultaneityDistribution(),
		Obs5:        r.Observation5(),
	}
	for _, m := range []Mechanism{NoCAlert, Cautious, ForEVeR} {
		c := r.Coverage(m)
		out.Fig6 = append(out.Fig6, jsonCoverage{
			Mechanism: m.String(), TP: c.TPPct, FP: c.FPPct, TN: c.TNPct, FN: c.FNPct,
		})
	}
	for _, m := range []Mechanism{NoCAlert, ForEVeR} {
		cdf := r.LatencyCDF(m)
		series := jsonLatencyCDF{Mechanism: m.String(), N: cdf.N()}
		for _, d := range cdfMilestones {
			series.Series = append(series.Series, jsonPoint{Delay: d, CumPc: 100 * cdf.AtOrBelow(d)})
		}
		out.Fig7 = append(out.Fig7, series)
		e := r.RecoveryExposure(m)
		out.Recovery = append(out.Recovery, jsonExposure{
			Mechanism:       m.String(),
			MeanLatency:     e.MeanLatency,
			MeanFlitsAtRisk: e.MeanFlitsAtRisk,
			MaxFlitsAtRisk:  e.MaxFlitsAtRisk,
		})
	}
	for _, s := range r.CheckerShares() {
		if s.FiredRuns == 0 {
			continue
		}
		out.Fig8 = append(out.Fig8, jsonShare{
			Checker:   int(s.Checker),
			Name:      core.CheckerID(s.Checker).String(),
			SharePct:  s.SharePct,
			FiredRuns: s.FiredRuns,
			AloneRuns: s.AloneRuns,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
