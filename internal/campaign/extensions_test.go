package campaign

import (
	"testing"

	"nocalert/internal/fault"
	"nocalert/internal/forever"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// TestDoubleFaultCampaign exercises the multi-fault extension: pairs of
// simultaneous single-bit transients. The 0%-false-negative property
// must survive — two faults can only produce more illegal outputs, not
// fewer.
func TestDoubleFaultCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	singles := SampleFaults(params, 120, 77, 300)
	var groups [][]fault.Fault
	for i := 0; i+1 < len(singles); i += 2 {
		groups = append(groups, []fault.Fault{singles[i], singles[i+1]})
	}
	rep, err := Run(Options{
		Sim:           sim.Config{Router: rc, InjectionRate: 0.12, Seed: 3},
		InjectCycle:   300,
		PostInjectRun: 400,
		DrainDeadline: 5000,
		Forever:       forever.Options{Epoch: 400},
		FaultGroups:   groups,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(groups) {
		t.Fatalf("ran %d of %d groups", len(rep.Results), len(groups))
	}
	if fn := rep.FalseNegatives(NoCAlert); fn != 0 {
		t.Fatalf("double faults produced %d NoCAlert false negatives", fn)
	}
	for _, r := range rep.Results {
		if len(r.Group) != 2 {
			t.Fatalf("group size %d", len(r.Group))
		}
	}
	if rep.MaliciousCount() == 0 {
		t.Fatal("no double fault violated correctness; sample too benign to be meaningful")
	}
}

// TestIntermittentFaultCampaign: intermittent faults (duty-cycled
// upsets) behave between the transient and permanent extremes and are
// all caught when they do damage.
func TestIntermittentFaultCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test in -short mode")
	}
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}

	var faults []fault.Fault
	for _, s := range params.EnumerateSites() {
		if s.Kind != fault.SA1Gnt && s.Kind != fault.BufWrite {
			continue
		}
		faults = append(faults, fault.Fault{
			Site: s, Bit: 0, Cycle: 300, Type: fault.Intermittent, Period: 40, Duty: 4,
		})
	}
	rep, err := Run(Options{
		Sim:           sim.Config{Router: rc, InjectionRate: 0.12, Seed: 9},
		InjectCycle:   300,
		PostInjectRun: 400,
		DrainDeadline: 5000,
		Forever:       forever.Options{Epoch: 400},
		Faults:        faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fn := rep.FalseNegatives(NoCAlert); fn != 0 {
		t.Fatalf("intermittent faults produced %d false negatives", fn)
	}
	det := 0
	for _, r := range rep.Results {
		if r.Detected {
			det++
		}
	}
	if det == 0 {
		t.Fatal("no intermittent fault detected; scenario not exercised")
	}
	// An intermittent upset keeps re-asserting: detection latency for
	// at least one run should be 0 (caught in an active duty window).
	cdf := rep.LatencyCDF(NoCAlert)
	if cdf.N() > 0 && cdf.Min() != 0 {
		t.Errorf("no intermittent fault caught instantly (min latency %d)", cdf.Min())
	}
}
