// Package arbiter implements the arbiters used by the router's VA and SA
// stages. The paper's separable allocators are built from per-port
// round-robin arbiters (local stage) and per-resource round-robin
// arbiters (global stage); a matrix arbiter is provided as an
// alternative. Arbiters are the modules invariances 4–6 guard directly:
// a grant without a request, no grant despite requests, and non-one-hot
// grant vectors are all impossible outputs of a healthy arbiter.
package arbiter

import (
	"fmt"

	"nocalert/internal/bitvec"
	"nocalert/internal/statehash"
)

// Arbiter grants one of up to Width() concurrent requests per invocation.
// Implementations carry priority state across invocations to provide
// fairness; state is part of the architectural state and must be
// cloneable for campaign restarts.
type Arbiter interface {
	// Width returns the number of request lines.
	Width() int
	// Arbitrate returns the grant vector for the given request vector.
	// A healthy arbiter returns a one-hot subset of req when req is
	// non-zero and zero when req is zero; it also updates its internal
	// priority state.
	Arbitrate(req bitvec.Vec) bitvec.Vec
	// Clone returns an independent copy with identical priority state.
	Clone() Arbiter
	// FoldState folds the arbiter's priority state into a
	// state-fingerprint accumulator (see internal/statehash). Two
	// arbiters of the same construction whose folds agree grant
	// identically forever.
	FoldState(h uint64) uint64
}

// Reclone returns a copy of src with identical priority state, adopting
// dst's storage when dst is the same concrete type and width. Campaign
// workers re-fork a warmed network thousands of times; reusing the
// previous fork's arbiters avoids four allocations per port per router
// per fork. Falls back to src.Clone when dst cannot be reused (nil,
// different type, or different width).
func Reclone(dst, src Arbiter) Arbiter {
	switch s := src.(type) {
	case *RoundRobin:
		if d, ok := dst.(*RoundRobin); ok && d.width == s.width {
			*d = *s
			return d
		}
	case *Matrix:
		if d, ok := dst.(*Matrix); ok && d.width == s.width {
			copy(d.beats, s.beats)
			return d
		}
	}
	return src.Clone()
}

// RoundRobin is a classic rotating-priority arbiter: the client after
// the most recent winner has highest priority next time.
type RoundRobin struct {
	width int
	next  int // index with highest priority
}

// NewRoundRobin returns a round-robin arbiter over width clients.
// It panics for widths outside [1, 32].
func NewRoundRobin(width int) *RoundRobin {
	if width < 1 || width > 32 {
		panic(fmt.Sprintf("arbiter: invalid width %d", width))
	}
	return &RoundRobin{width: width}
}

// Width implements Arbiter.
func (a *RoundRobin) Width() int { return a.width }

// Arbitrate implements Arbiter.
func (a *RoundRobin) Arbitrate(req bitvec.Vec) bitvec.Vec {
	req &= bitvec.Mask(a.width)
	if req.IsZero() {
		return 0
	}
	for i := 0; i < a.width; i++ {
		idx := (a.next + i) % a.width
		if req.Get(idx) {
			a.next = (idx + 1) % a.width
			return bitvec.New(idx)
		}
	}
	return 0 // unreachable: req is non-zero within width
}

// Clone implements Arbiter.
func (a *RoundRobin) Clone() Arbiter {
	c := *a
	return &c
}

// FoldState implements Arbiter.
func (a *RoundRobin) FoldState(h uint64) uint64 {
	return statehash.FoldInt(h, a.next)
}

// Matrix is a matrix arbiter: an anti-symmetric priority matrix where
// w[i][j] means client i beats client j; the winner's row is cleared and
// column set, giving least-recently-served priority.
type Matrix struct {
	width int
	// beats[i] has bit j set when client i currently has priority over
	// client j.
	beats []bitvec.Vec
}

// NewMatrix returns a matrix arbiter over width clients with initial
// priority order 0 > 1 > ... > width-1.
func NewMatrix(width int) *Matrix {
	if width < 1 || width > 32 {
		panic(fmt.Sprintf("arbiter: invalid width %d", width))
	}
	m := &Matrix{width: width, beats: make([]bitvec.Vec, width)}
	for i := 0; i < width; i++ {
		for j := i + 1; j < width; j++ {
			m.beats[i] = m.beats[i].Set(j)
		}
	}
	return m
}

// Width implements Arbiter.
func (m *Matrix) Width() int { return m.width }

// Arbitrate implements Arbiter.
func (m *Matrix) Arbitrate(req bitvec.Vec) bitvec.Vec {
	req &= bitvec.Mask(m.width)
	if req.IsZero() {
		return 0
	}
	for i := 0; i < m.width; i++ {
		if !req.Get(i) {
			continue
		}
		// i wins if it beats every other requester.
		if (req &^ m.beats[i]).Clear(i).IsZero() {
			m.winnerUpdate(i)
			return bitvec.New(i)
		}
	}
	// The priority matrix is a strict total order over requesters, so a
	// winner always exists; reaching here indicates state corruption.
	panic("arbiter: matrix arbiter found no winner for non-empty request")
}

func (m *Matrix) winnerUpdate(w int) {
	// Winner drops below everyone: clear its row, set its column.
	m.beats[w] = 0
	for i := 0; i < m.width; i++ {
		if i != w {
			m.beats[i] = m.beats[i].Set(w)
		}
	}
}

// Clone implements Arbiter.
func (m *Matrix) Clone() Arbiter {
	c := &Matrix{width: m.width, beats: make([]bitvec.Vec, m.width)}
	copy(c.beats, m.beats)
	return c
}

// FoldState implements Arbiter.
func (m *Matrix) FoldState(h uint64) uint64 {
	for _, b := range m.beats {
		h = statehash.Fold(h, uint64(b))
	}
	return h
}
