package arbiter

import (
	"testing"
	"testing/quick"

	"nocalert/internal/bitvec"
)

func arbiters(width int) map[string]Arbiter {
	return map[string]Arbiter{
		"roundrobin": NewRoundRobin(width),
		"matrix":     NewMatrix(width),
	}
}

// TestArbiterContract is the property the NoCAlert arbiter checkers
// (invariances 4–6) assert: for any request vector, a healthy arbiter
// grants exactly one requester when requests exist and nothing
// otherwise.
func TestArbiterContract(t *testing.T) {
	for name, a := range arbiters(8) {
		a := a
		f := func(raw uint16) bool {
			req := bitvec.Vec(raw) & bitvec.Mask(8)
			gnt := a.Arbitrate(req)
			if req.IsZero() {
				return gnt.IsZero()
			}
			return gnt.OneHot() && (gnt &^ req).IsZero()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestRoundRobinFairness: under full contention every client is served
// equally.
func TestRoundRobinFairness(t *testing.T) {
	const w = 4
	a := NewRoundRobin(w)
	counts := make([]int, w)
	full := bitvec.Mask(w)
	for i := 0; i < 4000; i++ {
		g := a.Arbitrate(full)
		counts[g.First()]++
	}
	for i, c := range counts {
		if c != 1000 {
			t.Errorf("client %d served %d times, want 1000", i, c)
		}
	}
}

// TestMatrixLeastRecentlyServed: after a client wins, it loses ties
// against all others until they have been served.
func TestMatrixFairness(t *testing.T) {
	const w = 4
	a := NewMatrix(w)
	counts := make([]int, w)
	full := bitvec.Mask(w)
	for i := 0; i < 4000; i++ {
		g := a.Arbitrate(full)
		counts[g.First()]++
	}
	for i, c := range counts {
		if c != 1000 {
			t.Errorf("client %d served %d times, want 1000", i, c)
		}
	}
}

// TestNoStarvation: a persistent requester is eventually served even
// with a competing always-on requester.
func TestNoStarvation(t *testing.T) {
	for name, a := range arbiters(4) {
		served := false
		req := bitvec.New(1, 3)
		for i := 0; i < 8; i++ {
			if a.Arbitrate(req).Get(3) {
				served = true
				break
			}
		}
		if !served {
			t.Errorf("%s: client 3 starved", name)
		}
	}
}

func TestSingleRequester(t *testing.T) {
	for name, a := range arbiters(6) {
		for i := 0; i < 6; i++ {
			g := a.Arbitrate(bitvec.New(i))
			if !g.Get(i) || g.Count() != 1 {
				t.Errorf("%s: sole requester %d got grant %s", name, i, g)
			}
		}
	}
}

func TestOutOfWidthRequestsIgnored(t *testing.T) {
	for name, a := range arbiters(3) {
		g := a.Arbitrate(bitvec.New(5, 9))
		if !g.IsZero() {
			t.Errorf("%s: granted out-of-width request: %s", name, g)
		}
	}
}

// TestCloneIndependence: a clone replays the same grant sequence and
// diverging the original does not affect the clone.
func TestCloneIndependence(t *testing.T) {
	for name, a := range arbiters(5) {
		full := bitvec.Mask(5)
		for i := 0; i < 3; i++ {
			a.Arbitrate(full)
		}
		c := a.Clone()
		var got, want []int
		for i := 0; i < 10; i++ {
			want = append(want, a.Arbitrate(full).First())
		}
		for i := 0; i < 10; i++ {
			got = append(got, c.Arbitrate(full).First())
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s: clone diverged at %d: %v vs %v", name, i, got, want)
				break
			}
		}
	}
}

func TestWidthValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewRoundRobin(0) },
		func() { NewRoundRobin(33) },
		func() { NewMatrix(0) },
		func() { NewMatrix(33) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	if NewRoundRobin(1).Width() != 1 || NewMatrix(32).Width() != 32 {
		t.Error("Width() wrong")
	}
}
