// Package soa owns the flat, structure-of-arrays storage backing the
// simulator hot path. Every per-VC and per-port register the router and
// NI pipelines touch each cycle — VC status tables, credit counters,
// switch-traversal latches, arbiter priority pointers, occupancy masks —
// lives in one contiguous array per field, indexed by (router, port, vc).
// Router and NI objects hold pre-sliced windows (View) into these arrays
// and keep their existing APIs; forking a campaign run clones the whole
// state with a handful of bulk copies instead of a pointer-graph walk,
// and the per-cycle sweeps become word-at-a-time loops over the masks.
//
// All element types are fixed-width (uint8/int32/uint32/uint64) so the
// layout — and the campaign reports derived from it — is identical on
// 32- and 64-bit platforms. Stored register values are pre-masked at
// their write sites (the router masks every architectural register to
// its hardware width), which is what makes the narrow storage lossless.
package soa

import "fmt"

// Layout fixes the geometry of a State: R routers, P ports per router,
// V virtual channels per port.
type Layout struct {
	R, P, V int
}

// Bits of OutFlags: per-output-VC credit bookkeeping.
const (
	// OutFree marks the downstream VC unallocated (available to VA).
	OutFree uint8 = 1 << iota
	// OutTailSent records that the resident packet's tail departed.
	OutTailSent
)

// Bits of StFlags: per-input-port switch-traversal latches.
const (
	// StReadEn is the buffer read enable latched by SA for next cycle.
	StReadEn uint8 = 1 << iota
	// StSpec marks the latched grant speculative.
	StSpec
)

// Bits of NIFlags: per-NI-output-VC credit bookkeeping (the NI is the
// upstream of its router's local input port).
const (
	NIFree uint8 = 1 << iota
	NITailSent
)

// State is the structure-of-arrays register file for a whole network.
// Indexing: per-(router,port,vc) arrays at r*(P*V)+p*V+v, per-(router,
// port) arrays at r*P+p, per-(router,vc) NI arrays at r*V+v.
type State struct {
	L Layout

	// ---- per (router, port, vc) ----

	// VCState is the input VC pipeline state register (3-bit encoding).
	VCState []uint8
	// VCRoute is the stored RC result (raw 3-bit direction code).
	VCRoute []uint8
	// VCOutVC is the stored VA result (raw VC-identifier code).
	VCOutVC []uint8
	// PktID is the packet currently owning the input VC.
	PktID []uint64
	// Arrived counts the resident packet's flits that entered the VC.
	Arrived []int32
	// Credits is the output VC credit counter register.
	Credits []int32
	// OutFlags holds the output VC's OutFree/OutTailSent bits.
	OutFlags []uint8

	// ---- per (router, port) ----

	// SA1Win / VA1Win are the sticky SA1/VA1 winner latches.
	SA1Win, VA1Win []int32
	// StOut is the intended output port latched by SA (-1 when idle).
	StOut []int32
	// VA1Next, SA1Next, VA2Next, SA2Next are the round-robin arbiter
	// priority pointers (index with highest priority).
	VA1Next, SA1Next, VA2Next, SA2Next []int32
	// StCol is the per-output-port crossbar column reservation vector.
	StCol []uint32
	// CreditIn is the staged upstream credit-return vector.
	CreditIn []uint32
	// NonIdle has bit v set while VCState(p,v) != Idle; Occupied has
	// bit v set while the VC buffers at least one flit. The router
	// maintains both at every state/buffer write site; the fast sweeps
	// and the inert-router skip iterate these instead of scanning VCs.
	NonIdle, Occupied []uint32
	// StFlags holds the StReadEn/StSpec bits.
	StFlags []uint8

	// ---- per (router, vc): NI output-VC credit state ----

	NICredits []int32
	NIFlags   []uint8
}

// NewState allocates a zeroed State for the layout.
func NewState(l Layout) *State {
	if l.R < 1 || l.P < 1 || l.V < 1 {
		panic(fmt.Sprintf("soa: invalid layout %+v", l))
	}
	if l.V > 32 || l.P > 32 {
		panic(fmt.Sprintf("soa: layout %+v exceeds mask width", l))
	}
	npv := l.R * l.P * l.V
	np := l.R * l.P
	nv := l.R * l.V
	return &State{
		L:       l,
		VCState: make([]uint8, npv), VCRoute: make([]uint8, npv), VCOutVC: make([]uint8, npv),
		PktID: make([]uint64, npv), Arrived: make([]int32, npv),
		Credits: make([]int32, npv), OutFlags: make([]uint8, npv),
		SA1Win: make([]int32, np), VA1Win: make([]int32, np), StOut: make([]int32, np),
		VA1Next: make([]int32, np), SA1Next: make([]int32, np),
		VA2Next: make([]int32, np), SA2Next: make([]int32, np),
		StCol: make([]uint32, np), CreditIn: make([]uint32, np),
		NonIdle: make([]uint32, np), Occupied: make([]uint32, np),
		StFlags:   make([]uint8, np),
		NICredits: make([]int32, nv), NIFlags: make([]uint8, nv),
	}
}

// View is router r's window into the State: each slice covers exactly
// that router's entries (per-(port,vc) slices have len P*V and are
// indexed p*V+v; per-port slices have len P).
type View struct {
	P, V int

	VCState, VCRoute, VCOutVC []uint8
	PktID                     []uint64
	Arrived, Credits          []int32
	OutFlags                  []uint8

	SA1Win, VA1Win, StOut              []int32
	VA1Next, SA1Next, VA2Next, SA2Next []int32
	StCol, CreditIn, NonIdle, Occupied []uint32
	StFlags                            []uint8
}

// View returns router r's window. The sub-slices are full slices
// (capacity clamped), so a View cannot grow into a neighbour's window.
func (s *State) View(r int) View {
	if r < 0 || r >= s.L.R {
		panic(fmt.Sprintf("soa: view of router %d outside layout %+v", r, s.L))
	}
	pv := s.L.P * s.L.V
	a, b := r*pv, (r+1)*pv
	p0, p1 := r*s.L.P, (r+1)*s.L.P
	return View{
		P: s.L.P, V: s.L.V,
		VCState: s.VCState[a:b:b], VCRoute: s.VCRoute[a:b:b], VCOutVC: s.VCOutVC[a:b:b],
		PktID: s.PktID[a:b:b], Arrived: s.Arrived[a:b:b],
		Credits: s.Credits[a:b:b], OutFlags: s.OutFlags[a:b:b],
		SA1Win: s.SA1Win[p0:p1:p1], VA1Win: s.VA1Win[p0:p1:p1], StOut: s.StOut[p0:p1:p1],
		VA1Next: s.VA1Next[p0:p1:p1], SA1Next: s.SA1Next[p0:p1:p1],
		VA2Next: s.VA2Next[p0:p1:p1], SA2Next: s.SA2Next[p0:p1:p1],
		StCol: s.StCol[p0:p1:p1], CreditIn: s.CreditIn[p0:p1:p1],
		NonIdle: s.NonIdle[p0:p1:p1], Occupied: s.Occupied[p0:p1:p1],
		StFlags: s.StFlags[p0:p1:p1],
	}
}

// NIView returns node r's NI credit window: the per-VC credit counters
// and NIFree/NITailSent flag bytes.
func (s *State) NIView(r int) (credits []int32, flags []uint8) {
	if r < 0 || r >= s.L.R {
		panic(fmt.Sprintf("soa: NI view of node %d outside layout %+v", r, s.L))
	}
	a, b := r*s.L.V, (r+1)*s.L.V
	return s.NICredits[a:b:b], s.NIFlags[a:b:b]
}

// CopyFrom bulk-copies src into s. Layouts must match exactly; this is
// the whole-network register-file clone behind campaign forking.
func (s *State) CopyFrom(src *State) {
	if s.L != src.L {
		panic(fmt.Sprintf("soa: CopyFrom layout mismatch %+v vs %+v", s.L, src.L))
	}
	copy(s.VCState, src.VCState)
	copy(s.VCRoute, src.VCRoute)
	copy(s.VCOutVC, src.VCOutVC)
	copy(s.PktID, src.PktID)
	copy(s.Arrived, src.Arrived)
	copy(s.Credits, src.Credits)
	copy(s.OutFlags, src.OutFlags)
	copy(s.SA1Win, src.SA1Win)
	copy(s.VA1Win, src.VA1Win)
	copy(s.StOut, src.StOut)
	copy(s.VA1Next, src.VA1Next)
	copy(s.SA1Next, src.SA1Next)
	copy(s.VA2Next, src.VA2Next)
	copy(s.SA2Next, src.SA2Next)
	copy(s.StCol, src.StCol)
	copy(s.CreditIn, src.CreditIn)
	copy(s.NonIdle, src.NonIdle)
	copy(s.Occupied, src.Occupied)
	copy(s.StFlags, src.StFlags)
	copy(s.NICredits, src.NICredits)
	copy(s.NIFlags, src.NIFlags)
}

// Clone returns an independent copy of s.
func (s *State) Clone() *State {
	c := NewState(s.L)
	c.CopyFrom(s)
	return c
}

// CopyFrom copies src's window contents into v's. Geometries must match.
// Router CloneInto uses this when both routers are bound to distinct
// States; Network-level forks bulk-copy the whole State instead.
func (v View) CopyFrom(src View) {
	if v.P != src.P || v.V != src.V {
		panic(fmt.Sprintf("soa: view CopyFrom geometry mismatch %d/%d vs %d/%d", v.P, v.V, src.P, src.V))
	}
	copy(v.VCState, src.VCState)
	copy(v.VCRoute, src.VCRoute)
	copy(v.VCOutVC, src.VCOutVC)
	copy(v.PktID, src.PktID)
	copy(v.Arrived, src.Arrived)
	copy(v.Credits, src.Credits)
	copy(v.OutFlags, src.OutFlags)
	copy(v.SA1Win, src.SA1Win)
	copy(v.VA1Win, src.VA1Win)
	copy(v.StOut, src.StOut)
	copy(v.VA1Next, src.VA1Next)
	copy(v.SA1Next, src.SA1Next)
	copy(v.VA2Next, src.VA2Next)
	copy(v.SA2Next, src.SA2Next)
	copy(v.StCol, src.StCol)
	copy(v.CreditIn, src.CreditIn)
	copy(v.NonIdle, src.NonIdle)
	copy(v.Occupied, src.Occupied)
	copy(v.StFlags, src.StFlags)
}
