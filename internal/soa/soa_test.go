package soa

import "testing"

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

func TestNewStateValidation(t *testing.T) {
	mustPanic(t, "zero routers", func() { NewState(Layout{R: 0, P: 5, V: 4}) })
	mustPanic(t, "zero ports", func() { NewState(Layout{R: 1, P: 0, V: 4}) })
	mustPanic(t, "zero VCs", func() { NewState(Layout{R: 1, P: 5, V: 0}) })
	mustPanic(t, "VCs over the mask word", func() { NewState(Layout{R: 1, P: 5, V: 33}) })
}

func TestViewGeometry(t *testing.T) {
	l := Layout{R: 3, P: 5, V: 4}
	st := NewState(l)
	for r := 0; r < l.R; r++ {
		v := st.View(r)
		if v.P != l.P || v.V != l.V {
			t.Fatalf("view %d geometry %dx%d", r, v.P, v.V)
		}
		if len(v.VCState) != l.P*l.V || len(v.SA1Win) != l.P {
			t.Fatalf("view %d slice lengths %d/%d", r, len(v.VCState), len(v.SA1Win))
		}
		// Views are capacity-clamped windows: writing one router's last
		// element must not alias the next router's first, and an append
		// past the window must reallocate instead of clobbering it.
		v.VCState[l.P*l.V-1] = uint8(r + 1)
		_ = append(v.VCState, 0xff)
	}
	for r := 0; r < l.R; r++ {
		if got := st.View(r).VCState[l.P*l.V-1]; got != uint8(r+1) {
			t.Fatalf("router %d window clobbered: %d", r, got)
		}
	}
	cr, fl := st.NIView(2)
	if len(cr) != l.V || len(fl) != l.V {
		t.Fatalf("NI view lengths %d/%d", len(cr), len(fl))
	}
	cr[0] = 7
	if c2, _ := st.NIView(1); c2[0] != 0 {
		t.Fatal("NI windows alias across routers")
	}
}

func TestCopyFromAndClone(t *testing.T) {
	l := Layout{R: 2, P: 5, V: 4}
	a := NewState(l)
	for i := range a.VCState {
		a.VCState[i] = uint8(i)
	}
	a.Credits[3] = -2
	a.NonIdle[1] = 0xf
	a.PktID[5] = 1 << 40
	a.NICredits[2] = 9

	b := NewState(l)
	b.CopyFrom(a)
	if b.VCState[7] != 7 || b.Credits[3] != -2 || b.NonIdle[1] != 0xf || b.PktID[5] != 1<<40 || b.NICredits[2] != 9 {
		t.Fatal("CopyFrom missed fields")
	}
	b.VCState[7] = 99
	if a.VCState[7] != 7 {
		t.Fatal("CopyFrom aliased storage")
	}

	c := a.Clone()
	if c.VCState[7] != 7 || c.L != a.L {
		t.Fatal("Clone missed state")
	}
	c.NonIdle[1] = 0
	if a.NonIdle[1] != 0xf {
		t.Fatal("Clone aliased storage")
	}

	mustPanic(t, "layout mismatch CopyFrom", func() {
		NewState(Layout{R: 1, P: 5, V: 4}).CopyFrom(a)
	})
}

func TestViewCopyFrom(t *testing.T) {
	l := Layout{R: 2, P: 5, V: 4}
	a, b := NewState(l), NewState(l)
	av := a.View(0)
	for i := range av.VCState {
		av.VCState[i] = 3
	}
	av.StOut[2] = -1
	bv := b.View(1)
	bv.CopyFrom(av)
	if bv.VCState[0] != 3 || bv.StOut[2] != -1 {
		t.Fatal("view CopyFrom missed fields")
	}
	if b.View(0).VCState[0] != 0 {
		t.Fatal("view CopyFrom leaked into the wrong window")
	}
	mustPanic(t, "geometry mismatch view CopyFrom", func() {
		NewState(Layout{R: 1, P: 5, V: 2}).View(0).CopyFrom(av)
	})
}
