package routing

import (
	"testing"
	"testing/quick"

	"nocalert/internal/topology"
)

func algs() []Algorithm {
	return []Algorithm{XY{}, WestFirst{}, Adaptive{}}
}

func TestNewRegistry(t *testing.T) {
	for name, want := range map[string]string{
		"xy": "xy", "": "xy", "westfirst": "westfirst", "adaptive": "adaptive", "duato": "adaptive",
	} {
		a, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != want {
			t.Errorf("New(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("New(bogus) should fail")
	}
}

func TestXYRoutesXThenY(t *testing.T) {
	m := topology.NewMesh(4, 4)
	// From (1,1) to (3,2): X first.
	cands := XY{}.Candidates(m, m.NodeAt(1, 1), 3, 2, topology.Local)
	if len(cands) != 1 || cands[0] != topology.East {
		t.Fatalf("XY first hop = %v", cands)
	}
	// Same X: move in Y.
	cands = XY{}.Candidates(m, m.NodeAt(3, 1), 3, 2, topology.West)
	if len(cands) != 1 || cands[0] != topology.North {
		t.Fatalf("XY Y hop = %v", cands)
	}
	// Arrived.
	cands = XY{}.Candidates(m, m.NodeAt(3, 2), 3, 2, topology.South)
	if len(cands) != 1 || cands[0] != topology.Local {
		t.Fatalf("XY arrival = %v", cands)
	}
}

// TestXYTurnRule pins the paper's Figure 2(a) rule: a packet arriving
// from the Y dimension may not turn into X.
func TestXYTurnRule(t *testing.T) {
	xy := XY{}
	for _, in := range []topology.Direction{topology.North, topology.South} {
		for _, out := range []topology.Direction{topology.East, topology.West} {
			if xy.LegalTurn(in, out) {
				t.Errorf("XY permits %v->%v", in, out)
			}
		}
	}
	// X to Y is fine; straight-through is fine; injection is free.
	if !xy.LegalTurn(topology.East, topology.North) ||
		!xy.LegalTurn(topology.East, topology.West) ||
		!xy.LegalTurn(topology.Local, topology.South) {
		t.Error("XY forbids a legal turn")
	}
	// 180° turns are never legal.
	for d := topology.North; d <= topology.West; d++ {
		if xy.LegalTurn(d, d) {
			t.Errorf("XY permits u-turn on %v", d)
		}
	}
}

func TestWestFirstTurnRule(t *testing.T) {
	wf := WestFirst{}
	for _, in := range []topology.Direction{topology.North, topology.South} {
		if wf.LegalTurn(in, topology.West) {
			t.Errorf("west-first permits %v->W", in)
		}
	}
	if !wf.LegalTurn(topology.East, topology.West) {
		t.Error("continuing west from the East input must be legal")
	}
	if !wf.LegalTurn(topology.Local, topology.West) {
		t.Error("injection westward must be legal")
	}
}

func TestAdaptiveOffersProductiveChoices(t *testing.T) {
	m := topology.NewMesh(4, 4)
	cands := Adaptive{}.Candidates(m, m.NodeAt(1, 1), 3, 3, topology.Local)
	if len(cands) != 2 {
		t.Fatalf("adaptive candidates = %v", cands)
	}
	seen := map[topology.Direction]bool{}
	for _, c := range cands {
		seen[c] = true
	}
	if !seen[topology.East] || !seen[topology.North] {
		t.Fatalf("adaptive candidates = %v", cands)
	}
}

// Property: for all algorithms, every candidate is a legal turn, is
// minimal, and following first candidates always reaches the
// destination within the Manhattan distance.
func TestCandidatesSoundAndConvergent(t *testing.T) {
	m := topology.NewMesh(6, 6)
	for _, alg := range algs() {
		alg := alg
		f := func(srcRaw, dstRaw uint8) bool {
			src := int(srcRaw) % m.Nodes()
			dst := int(dstRaw) % m.Nodes()
			dx, dy := m.Coords(dst)
			cur := src
			in := topology.Local
			steps := 0
			for {
				cands := alg.Candidates(m, cur, dx, dy, in)
				if len(cands) == 0 {
					return false
				}
				for _, c := range cands {
					if !alg.LegalTurn(in, c) {
						return false
					}
					if alg.Minimal() && c != topology.Local {
						nb, ok := m.Neighbor(cur, c)
						if !ok || m.HopDistance(nb, dst) >= m.HopDistance(cur, dst) {
							return false
						}
					}
				}
				if cands[0] == topology.Local {
					return cur == dst
				}
				next, ok := m.Neighbor(cur, cands[0])
				if !ok {
					return false
				}
				in = cands[0].Opposite()
				cur = next
				steps++
				if steps > m.HopDistance(src, dst) {
					return false
				}
			}
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}

// TestDeadlockFreedomXY: XY's turn rule admits no cycle in the channel
// dependency graph; spot-check that the classic cyclic turn sequences
// are broken.
func TestDeadlockFreedomXY(t *testing.T) {
	xy := XY{}
	// Clockwise cycle needs N->E (from S input going E after going N):
	// a packet moving north arrives on the South port; turning East
	// must be illegal.
	cw := [][2]topology.Direction{
		{topology.South, topology.East}, // moving N, turn E
		{topology.West, topology.South}, // moving E, turn S
		{topology.North, topology.West}, // moving S, turn W
		{topology.East, topology.North}, // moving W, turn N
	}
	broken := 0
	for _, turn := range cw {
		if !xy.LegalTurn(turn[0], turn[1]) {
			broken++
		}
	}
	if broken == 0 {
		t.Error("XY leaves the clockwise turn cycle intact")
	}
	ccw := [][2]topology.Direction{
		{topology.South, topology.West},
		{topology.East, topology.South},
		{topology.North, topology.East},
		{topology.West, topology.North},
	}
	broken = 0
	for _, turn := range ccw {
		if !xy.LegalTurn(turn[0], turn[1]) {
			broken++
		}
	}
	if broken == 0 {
		t.Error("XY leaves the counter-clockwise turn cycle intact")
	}
}

func TestOffMeshDestinationStillRoutes(t *testing.T) {
	// Faulted coordinate wires can point outside the mesh; RC hardware
	// still produces a direction by comparison.
	m := topology.NewMesh(4, 4)
	cands := XY{}.Candidates(m, m.NodeAt(3, 3), 7, 0, topology.Local)
	if len(cands) != 1 || cands[0] != topology.East {
		t.Fatalf("off-mesh routing = %v", cands)
	}
}

func TestEscapeVCConstant(t *testing.T) {
	if EscapeVC != 0 {
		t.Fatal("Duato escape channel must be VC 0")
	}
}
