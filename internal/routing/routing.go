// Package routing implements the routing algorithms exercised in the
// paper: deterministic XY (the evaluation baseline), the West-First turn
// model, and a Duato-style minimal adaptive algorithm with an XY escape
// channel. Each algorithm also exposes its *functional rules* — legal
// turns, minimality, escape-VC constraints — because those rules, not the
// route computation itself, are what the NoCAlert checkers assert
// (invariances 1–3 and the routing clause of invariance 10).
package routing

import (
	"fmt"

	"nocalert/internal/topology"
)

// Algorithm is a distributed routing function plus the functional rules
// the NoCAlert RC checkers derive their assertions from.
type Algorithm interface {
	// Name identifies the algorithm in configs and reports.
	Name() string
	// Candidates returns the output directions the algorithm permits
	// for a packet at node cur that entered on port in (Local when
	// injected) and is headed to destination coordinates (destX,
	// destY), in preference order. Deterministic algorithms return one
	// element; reaching the destination yields [Local]. The
	// coordinates come straight off the header wires, so they may lie
	// outside the mesh when those wires are faulted — RC hardware
	// compares coordinates and happily routes toward an impossible
	// destination, which is exactly the behaviour the checkers must
	// observe.
	Candidates(m topology.Mesh, cur int, destX, destY int, in topology.Direction) []topology.Direction
	// LegalTurn reports whether a packet that entered on port in may
	// leave on port out under the algorithm's turn rules, irrespective
	// of destination. This is the oracle for invariance 1.
	LegalTurn(in, out topology.Direction) bool
	// Minimal reports whether every permitted hop must reduce the
	// distance to the destination, which enables invariance 3.
	Minimal() bool
}

// New returns the algorithm registered under name ("xy", "westfirst" or
// "adaptive"). It returns an error for unknown names.
func New(name string) (Algorithm, error) {
	switch name {
	case "xy", "XY", "":
		return XY{}, nil
	case "westfirst", "west-first":
		return WestFirst{}, nil
	case "adaptive", "duato":
		return Adaptive{}, nil
	}
	return nil, fmt.Errorf("routing: unknown algorithm %q", name)
}

// XY is dimension-ordered routing: fully resolve the X offset, then the
// Y offset. Its turn rule — the one in the paper's Figure 2(a) example —
// is that a packet travelling in Y (entered on the North or South port)
// may never turn back into X (exit East or West).
type XY struct{}

// Name implements Algorithm.
func (XY) Name() string { return "xy" }

// Minimal implements Algorithm; XY is minimal.
func (XY) Minimal() bool { return true }

// Candidates implements Algorithm.
func (XY) Candidates(m topology.Mesh, cur int, destX, destY int, in topology.Direction) []topology.Direction {
	cx, cy := m.Coords(cur)
	dx, dy := destX, destY
	switch {
	case dx > cx:
		return []topology.Direction{topology.East}
	case dx < cx:
		return []topology.Direction{topology.West}
	case dy > cy:
		return []topology.Direction{topology.North}
	case dy < cy:
		return []topology.Direction{topology.South}
	}
	return []topology.Direction{topology.Local}
}

// LegalTurn implements Algorithm. Under XY a packet arriving from the Y
// dimension must not exit in the X dimension, and 180° turns are always
// illegal.
func (XY) LegalTurn(in, out topology.Direction) bool {
	if uTurn(in, out) {
		return false
	}
	fromY := in == topology.North || in == topology.South
	toX := out == topology.East || out == topology.West
	return !(fromY && toX)
}

// WestFirst is the west-first turn model: any hop to the West must be
// taken before all others, so no turn *into* West is permitted.
type WestFirst struct{}

// Name implements Algorithm.
func (WestFirst) Name() string { return "westfirst" }

// Minimal implements Algorithm; this implementation restricts itself to
// minimal productive hops.
func (WestFirst) Minimal() bool { return true }

// Candidates implements Algorithm. If the destination lies to the west,
// the only candidate is West; otherwise every productive direction that
// keeps the turn rules is offered, preferring X before Y to spread load.
func (WestFirst) Candidates(m topology.Mesh, cur int, destX, destY int, in topology.Direction) []topology.Direction {
	cx, cy := m.Coords(cur)
	dx, dy := destX, destY
	if cx == dx && cy == dy {
		return []topology.Direction{topology.Local}
	}
	if dx < cx {
		return []topology.Direction{topology.West}
	}
	var out []topology.Direction
	if dx > cx {
		out = append(out, topology.East)
	}
	if dy > cy {
		out = append(out, topology.North)
	} else if dy < cy {
		out = append(out, topology.South)
	}
	return out
}

// LegalTurn implements Algorithm: turns into West are forbidden except
// continuing straight from the East input, and 180° turns are illegal.
func (WestFirst) LegalTurn(in, out topology.Direction) bool {
	if uTurn(in, out) {
		return false
	}
	if out == topology.West {
		// Only an injection or a packet already heading west (entered
		// on the East port) may use the West output.
		return in == topology.Local || in == topology.East
	}
	return true
}

// Adaptive is a Duato-protocol-style minimal adaptive algorithm: all
// productive directions are candidates on the adaptive VCs, while VC 0
// of each port is the escape channel restricted to XY. The escape rule
// ("a packet in the escape VC must follow XY") is itself a functional
// rule the checkers assert.
type Adaptive struct{}

// Name implements Algorithm.
func (Adaptive) Name() string { return "adaptive" }

// Minimal implements Algorithm; candidates are productive hops only.
func (Adaptive) Minimal() bool { return true }

// Candidates implements Algorithm, returning every productive direction
// (X preferred first for a deterministic tie-break downstream).
func (Adaptive) Candidates(m topology.Mesh, cur int, destX, destY int, in topology.Direction) []topology.Direction {
	cx, cy := m.Coords(cur)
	dx, dy := destX, destY
	if cx == dx && cy == dy {
		return []topology.Direction{topology.Local}
	}
	var out []topology.Direction
	if dx > cx {
		out = append(out, topology.East)
	} else if dx < cx {
		out = append(out, topology.West)
	}
	if dy > cy {
		out = append(out, topology.North)
	} else if dy < cy {
		out = append(out, topology.South)
	}
	return out
}

// LegalTurn implements Algorithm. Minimal adaptive routing with an XY
// escape channel permits every turn except a 180° reversal; deadlock
// freedom comes from the escape VC, not from turn prohibition.
func (Adaptive) LegalTurn(in, out topology.Direction) bool {
	return !uTurn(in, out)
}

// EscapeVC is the virtual channel index reserved as the Duato escape
// channel by the Adaptive algorithm.
const EscapeVC = 0

func uTurn(in, out topology.Direction) bool {
	return in.IsCardinal() && out == in
}
