package topology

import (
	"testing"
	"testing/quick"
)

func TestDirectionStringsAndOpposites(t *testing.T) {
	cases := []struct {
		d    Direction
		s    string
		opp  Direction
		card bool
	}{
		{North, "N", South, true},
		{South, "S", North, true},
		{East, "E", West, true},
		{West, "W", East, true},
		{Local, "L", Local, false},
	}
	for _, c := range cases {
		if c.d.String() != c.s {
			t.Errorf("%v.String() = %q", c.d, c.d.String())
		}
		if c.d.Opposite() != c.opp {
			t.Errorf("%v.Opposite() = %v", c.d, c.d.Opposite())
		}
		if c.d.IsCardinal() != c.card {
			t.Errorf("%v.IsCardinal() = %v", c.d, c.d.IsCardinal())
		}
	}
	if Invalid.Opposite() != Invalid {
		t.Error("Invalid.Opposite() should be Invalid")
	}
}

func TestNodeCoordsRoundTrip(t *testing.T) {
	m := NewMesh(5, 3)
	for id := 0; id < m.Nodes(); id++ {
		x, y := m.Coords(id)
		if m.NodeAt(x, y) != id {
			t.Fatalf("round trip broken at %d", id)
		}
	}
	if m.Nodes() != 15 {
		t.Fatalf("5x3 mesh has %d nodes", m.Nodes())
	}
}

func TestRowMajorFromBottomLeft(t *testing.T) {
	m := NewMesh(4, 4)
	// Paper Figure 2(a): origin at bottom-left; node id = y*W + x.
	if m.NodeAt(0, 0) != 0 || m.NodeAt(1, 1) != 5 || m.NodeAt(1, 2) != 9 {
		t.Fatal("coordinate convention broken")
	}
}

func TestNeighbors(t *testing.T) {
	m := NewMesh(3, 3)
	center := m.NodeAt(1, 1)
	for dir, want := range map[Direction]int{
		North: m.NodeAt(1, 2),
		South: m.NodeAt(1, 0),
		East:  m.NodeAt(2, 1),
		West:  m.NodeAt(0, 1),
	} {
		got, ok := m.Neighbor(center, dir)
		if !ok || got != want {
			t.Errorf("Neighbor(center, %v) = %d,%v want %d", dir, got, ok, want)
		}
	}
	if _, ok := m.Neighbor(center, Local); ok {
		t.Error("Local neighbor should not exist")
	}
	corner := m.NodeAt(0, 0)
	if _, ok := m.Neighbor(corner, South); ok {
		t.Error("south of bottom row should not exist")
	}
	if _, ok := m.Neighbor(corner, West); ok {
		t.Error("west of left column should not exist")
	}
}

func TestPortCounts(t *testing.T) {
	m := NewMesh(8, 8)
	counts := map[int]int{}
	for id := 0; id < m.Nodes(); id++ {
		counts[m.PortCount(id)]++
	}
	// An 8×8 mesh: 4 corners (3 ports), 24 edges (4 ports), 36
	// interior (5 ports).
	if counts[3] != 4 || counts[4] != 24 || counts[5] != 36 {
		t.Fatalf("port count distribution %v", counts)
	}
}

func TestHopDistance(t *testing.T) {
	m := NewMesh(8, 8)
	if d := m.HopDistance(m.NodeAt(0, 0), m.NodeAt(7, 7)); d != 14 {
		t.Fatalf("corner-to-corner distance %d", d)
	}
	if d := m.HopDistance(3, 3); d != 0 {
		t.Fatalf("self distance %d", d)
	}
}

// Property: moving via TowardDest-approved hops always reaches dest.
func TestTowardDestConverges(t *testing.T) {
	m := NewMesh(6, 5)
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw) % m.Nodes()
		b := int(bRaw) % m.Nodes()
		cur := a
		for steps := 0; cur != b; steps++ {
			if steps > m.W+m.H {
				return false
			}
			moved := false
			for d := North; d < NumPorts; d++ {
				if m.TowardDest(cur, b, d) {
					cur, _ = m.Neighbor(cur, d)
					moved = true
					break
				}
			}
			if !moved {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: neighborhood is symmetric — if B is A's neighbor via d,
// then A is B's neighbor via d.Opposite().
func TestNeighborSymmetry(t *testing.T) {
	m := NewMesh(7, 4)
	for id := 0; id < m.Nodes(); id++ {
		for d := North; d <= West; d++ {
			nb, ok := m.Neighbor(id, d)
			if !ok {
				continue
			}
			back, ok2 := m.Neighbor(nb, d.Opposite())
			if !ok2 || back != id {
				t.Fatalf("asymmetric link %d -%v-> %d", id, d, nb)
			}
		}
	}
}

func TestPanics(t *testing.T) {
	m := NewMesh(2, 2)
	for _, f := range []func(){
		func() { NewMesh(0, 2) },
		func() { m.Coords(-1) },
		func() { m.Coords(4) },
		func() { m.NodeAt(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
