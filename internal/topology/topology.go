// Package topology models the 2D mesh fabric assumed by the paper:
// routers at integer grid coordinates, four cardinal inter-router ports
// plus one local port attaching the network interface. Edge and corner
// routers simply lack the ports that would leave the grid, which is why
// an 8×8 mesh exposes 11,808 rather than 64×205 fault sites in the
// paper's enumeration.
package topology

import "fmt"

// Direction identifies one of a router's ports. The four cardinal
// directions connect to neighboring routers; Local connects to the
// node's network interface.
type Direction int

// Port directions in fixed order. The numeric values index the port
// arrays inside routers, signal records and fault-site tables, so they
// must not be reordered.
const (
	North Direction = iota
	South
	East
	West
	Local
	// NumPorts is the number of ports on a fully connected mesh router.
	NumPorts
)

// Invalid marks the absence of a direction (e.g. an uncomputed route).
const Invalid Direction = -1

var dirNames = [NumPorts]string{"N", "S", "E", "W", "L"}

// String returns the single-letter conventional name of the direction.
func (d Direction) String() string {
	if d < 0 || d >= NumPorts {
		return fmt.Sprintf("Direction(%d)", int(d))
	}
	return dirNames[d]
}

// Opposite returns the port on which a flit sent out of d arrives at the
// neighboring router. Opposite(Local) is Local: the network interface
// loops back conceptually, though no mesh link does.
func (d Direction) Opposite() Direction {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	case Local:
		return Local
	}
	return Invalid
}

// IsCardinal reports whether d is one of the four mesh directions.
func (d Direction) IsCardinal() bool {
	return d >= North && d <= West
}

// Mesh is a W×H 2D mesh. Node IDs are assigned row-major with the origin
// at the bottom-left corner, matching the coordinate convention of the
// paper's Figure 2(a): node id = y*W + x.
type Mesh struct {
	W, H int
}

// NewMesh returns a mesh with the given dimensions.
// It panics if either dimension is < 1.
func NewMesh(w, h int) Mesh {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("topology: invalid mesh dimensions %dx%d", w, h))
	}
	return Mesh{W: w, H: h}
}

// Nodes returns the number of routers in the mesh.
func (m Mesh) Nodes() int { return m.W * m.H }

// NodeAt returns the node id of the router at (x, y).
func (m Mesh) NodeAt(x, y int) int {
	if !m.InBounds(x, y) {
		panic(fmt.Sprintf("topology: (%d,%d) outside %dx%d mesh", x, y, m.W, m.H))
	}
	return y*m.W + x
}

// Coords returns the (x, y) coordinates of node id.
func (m Mesh) Coords(id int) (x, y int) {
	if id < 0 || id >= m.Nodes() {
		panic(fmt.Sprintf("topology: node %d outside %dx%d mesh", id, m.W, m.H))
	}
	return id % m.W, id / m.W
}

// InBounds reports whether (x, y) is a valid coordinate.
func (m Mesh) InBounds(x, y int) bool {
	return x >= 0 && x < m.W && y >= 0 && y < m.H
}

// Neighbor returns the node reached by leaving id through dir, and
// whether such a neighbor exists. Leaving through Local never reaches
// another router.
func (m Mesh) Neighbor(id int, dir Direction) (int, bool) {
	x, y := m.Coords(id)
	switch dir {
	case North:
		y++
	case South:
		y--
	case East:
		x++
	case West:
		x--
	default:
		return 0, false
	}
	if !m.InBounds(x, y) {
		return 0, false
	}
	return m.NodeAt(x, y), true
}

// HasPort reports whether the router at id has a port in direction dir.
// Local always exists; cardinal ports exist only when a neighbor does.
func (m Mesh) HasPort(id int, dir Direction) bool {
	if dir == Local {
		return true
	}
	_, ok := m.Neighbor(id, dir)
	return ok
}

// PortCount returns the number of ports of router id (3 for corners,
// 4 for edges, 5 for interior routers).
func (m Mesh) PortCount(id int) int {
	n := 0
	for d := North; d < NumPorts; d++ {
		if m.HasPort(id, d) {
			n++
		}
	}
	return n
}

// HopDistance returns the Manhattan distance between two nodes, which is
// the minimal hop count in a mesh.
func (m Mesh) HopDistance(a, b int) int {
	ax, ay := m.Coords(a)
	bx, by := m.Coords(b)
	return abs(ax-bx) + abs(ay-by)
}

// TowardDest reports whether moving from node id in direction dir
// strictly decreases the distance to dest. It is the oracle behind
// invariance 3 (non-minimal routing).
func (m Mesh) TowardDest(id, dest int, dir Direction) bool {
	next, ok := m.Neighbor(id, dir)
	if !ok {
		return false
	}
	return m.HopDistance(next, dest) < m.HopDistance(id, dest)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
