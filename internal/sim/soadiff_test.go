package sim

import (
	"fmt"
	"testing"

	"nocalert/internal/fault"
	"nocalert/internal/rng"
	"nocalert/internal/router"
	"nocalert/internal/topology"
)

// diffPair builds two networks of the same configuration and seed, one
// per sweep engine, each attached to its own clone of the plane.
func diffPair(t *testing.T, w, h int, rate float64, seed uint64, plane *fault.Plane) (ref, soa *Network) {
	t.Helper()
	cfg := Config{Router: router.Default(topology.NewMesh(w, h)), InjectionRate: rate, Seed: seed}
	cfg.DisableSoA = true
	ref, err := New(cfg, plane.Clone())
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableSoA = false
	soa, err = New(cfg, plane.Clone())
	if err != nil {
		t.Fatal(err)
	}
	return ref, soa
}

// stepLockstep steps both networks n cycles, comparing full state
// fingerprints at every cycle boundary.
func stepLockstep(t *testing.T, ref, soa *Network, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ref.Step()
		soa.Step()
		if rf, sf := ref.Fingerprint(), soa.Fingerprint(); rf != sf {
			t.Fatalf("cycle %d: engines diverged (reference %#x, SoA %#x)", ref.Cycle(), rf, sf)
		}
	}
	if !ejectionsEqual(ref.Ejections(), soa.Ejections()) {
		t.Fatal("engines produced different ejection logs")
	}
}

// samplePlane draws k single-bit faults from the full site population
// using the given generator stream.
func samplePlane(p fault.Params, g *rng.PCG, k int, cycle int64) *fault.Plane {
	sites := p.EnumerateSites()
	faults := make([]fault.Fault, 0, k)
	for i := 0; i < k; i++ {
		s := sites[g.Intn(len(sites))]
		ft := fault.Type(g.Intn(3))
		f := fault.Fault{Site: s, Bit: g.Intn(s.Width), Cycle: cycle + int64(g.Intn(50)), Type: ft}
		if ft == fault.Intermittent {
			f.Period = int64(2 + g.Intn(30))
			f.Duty = 1 + int64(g.Intn(int(f.Period)))
		}
		faults = append(faults, f)
	}
	return fault.NewPlane(faults...)
}

// TestEngineLockstepUnderFaults is the differential gate for the two
// sweep engines: a reference-engine network and a SoA-engine network
// with identical configuration, workload and fault plane must hold
// identical state fingerprints at every single cycle boundary — through
// warmup, live fault windows (where the SoA engine must disable its
// shortcuts), the post-fault wake, and drain. Any sweep-order or
// skip-condition bug that lets the engines read or write one register
// differently surfaces as a first-divergence cycle here.
func TestEngineLockstepUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("lockstep differential test in -short mode")
	}
	for _, tc := range []struct {
		w, h int
		rate float64
	}{
		{4, 4, 0.12},
		{8, 8, 0.05},
	} {
		t.Run(fmt.Sprintf("%dx%d", tc.w, tc.h), func(t *testing.T) {
			p := fault.Params{Mesh: topology.NewMesh(tc.w, tc.h), VCs: 4, BufDepth: router.Default(topology.NewMesh(tc.w, tc.h)).BufDepth}
			g := rng.New(7, 1)
			plane := samplePlane(p, g, 8, 120)
			ref, soa := diffPair(t, tc.w, tc.h, tc.rate, 3, plane)
			stepLockstep(t, ref, soa, 400)
			ref.StopInjection()
			soa.StopInjection()
			stepLockstep(t, ref, soa, 200)
		})
	}
}

// TestEngineLockstepRandomPlanes fuzzes the engine equivalence with
// seeded random fault planes: each iteration draws a fresh plane
// (random sites — arbiter request/grant vectors included — random bits,
// random temporal types) and a fresh traffic seed, then requires
// per-cycle fingerprint identity. The arbitration sweeps are the
// riskiest surface (the SoA engine iterates masked candidate sets where
// the reference engine scans the full VC range), so a healthy share of
// the population lands on VA/SA request, grant and pointer state.
func TestEngineLockstepRandomPlanes(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz-style differential test in -short mode")
	}
	p := fault.Params{Mesh: topology.NewMesh(4, 4), VCs: 4, BufDepth: router.Default(topology.NewMesh(4, 4)).BufDepth}
	iters := 12
	for it := 0; it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("plane%02d", it), func(t *testing.T) {
			g := rng.New(uint64(100+it), 9)
			plane := samplePlane(p, g, 4+it%5, 40)
			ref, soa := diffPair(t, 4, 4, 0.15, uint64(it)+11, plane)
			stepLockstep(t, ref, soa, 250)
		})
	}
}
