package sim

import (
	"nocalert/internal/flit"
	"nocalert/internal/rng"
	"nocalert/internal/router"
	"nocalert/internal/soa"
	"nocalert/internal/topology"
)

// The NI's per-VC credit bookkeeping — the mirror of what an upstream
// router keeps for a downstream input port — lives in the network's
// structure-of-arrays state: outCredits[v] is the credit counter and
// outFlags[v] carries the soa.NIFree/soa.NITailSent bits. The NI holds
// its node's windows so network forks clone this state with the same
// bulk copies that clone the routers'.

// niArrival is a flit in flight on the router→NI ejection link.
type niArrival struct {
	f     *flit.Flit
	cycle int64 // cycle the NI may process it
}

// niCredit is a credit in flight on the router→NI credit link.
type niCredit struct {
	vc    int
	cycle int64
}

// NI is a node's network interface: it packetizes traffic into flits,
// streams them into the router's local input port under credit flow
// control, and ejects arriving flits.
type NI struct {
	node int
	cfg  *router.Config
	gen  *rng.PCG

	// Injection side.
	queue []*flit.Packet // packets waiting for a VC
	cur   []*flit.Flit   // flits of the packet currently streaming
	curVC int
	// outCredits/outFlags are this node's SoA windows (see above).
	outCredits []int32
	outFlags   []uint8
	// pktSlab backs queue entries in CloneInto targets so re-forks reuse
	// packet storage instead of allocating per queued packet.
	pktSlab []flit.Packet
	// Ejection side.
	inbox   []niArrival
	credits []niCredit
}

// newNI builds the NI for node, bound to the given SoA windows; nil
// windows allocate private storage (standalone/test use).
func newNI(node int, cfg *router.Config, seed uint64, outCredits []int32, outFlags []uint8) *NI {
	ni := &NI{node: node, cfg: cfg, gen: rng.New(seed, uint64(node)*2+1), curVC: -1}
	if outCredits == nil {
		outCredits = make([]int32, cfg.VCs)
	}
	if outFlags == nil {
		outFlags = make([]uint8, cfg.VCs)
	}
	ni.outCredits, ni.outFlags = outCredits, outFlags
	for v := 0; v < cfg.VCs; v++ {
		ni.outCredits[v] = int32(cfg.BufDepth)
		ni.outFlags[v] = soa.NIFree
	}
	return ni
}

// niCloneTarget returns an empty NI shell bound to the given SoA
// windows, suitable only as a cloneInto destination.
func niCloneTarget(outCredits []int32, outFlags []uint8) *NI {
	return &NI{gen: new(rng.PCG), outCredits: outCredits, outFlags: outFlags}
}

// QueueLen returns the number of packets waiting at the source NI.
func (ni *NI) QueueLen() int { return len(ni.queue) }

// Streaming reports whether a packet is mid-injection.
func (ni *NI) Streaming() bool { return len(ni.cur) > 0 }

// enqueue accepts a packet for injection.
func (ni *NI) enqueue(p *flit.Packet) { ni.queue = append(ni.queue, p) }

// creditArrived registers a credit returned by the router for local
// input VC vc, usable from the given cycle.
func (ni *NI) creditArrived(vc int, cycle int64) {
	ni.credits = append(ni.credits, niCredit{vc: vc, cycle: cycle})
}

// flitArrived registers a flit on the ejection link, visible to the NI
// from the given cycle.
func (ni *NI) flitArrived(f *flit.Flit, cycle int64) {
	ni.inbox = append(ni.inbox, niArrival{f: f, cycle: cycle})
}

// tickInject runs one NI cycle: absorb matured credits, eject matured
// arrivals (returning ejection-buffer credits to the router's local
// output port), and push at most one flit into the router. Ejected
// flits are appended to *ejected; the return value reports whether a
// flit was injected into the router this cycle.
func (ni *NI) tickInject(cycle int64, r *router.Router, ejected *[]*flit.Flit) bool {
	// Credits from the router's local input port.
	kept := ni.credits[:0]
	for _, c := range ni.credits {
		if c.cycle > cycle {
			kept = append(kept, c)
			continue
		}
		if c.vc < 0 || c.vc >= len(ni.outCredits) {
			continue
		}
		if int(ni.outCredits[c.vc]) < ni.cfg.BufDepth {
			ni.outCredits[c.vc]++
		}
		fl := ni.outFlags[c.vc]
		if fl&soa.NITailSent != 0 && fl&soa.NIFree == 0 && int(ni.outCredits[c.vc]) >= ni.cfg.BufDepth {
			ni.outFlags[c.vc] = (fl | soa.NIFree) &^ soa.NITailSent
		}
	}
	ni.credits = kept

	// Ejection: the NI drains its receive buffers every cycle, so each
	// arriving flit is consumed immediately and its buffer slot credit
	// returns to the router's local output port one cycle later.
	keptIn := ni.inbox[:0]
	for _, a := range ni.inbox {
		if a.cycle > cycle {
			keptIn = append(keptIn, a)
			continue
		}
		*ejected = append(*ejected, a.f)
		if a.f.VC >= 0 && a.f.VC < ni.cfg.VCs {
			r.StageCredit(topology.Local, a.f.VC)
		}
	}
	ni.inbox = keptIn

	// Injection: start a new packet if idle, then stream one flit.
	if len(ni.cur) == 0 && len(ni.queue) > 0 {
		p := ni.queue[0]
		vc := ni.pickFreeVC(p.Class)
		if vc >= 0 {
			ni.queue = ni.queue[1:]
			dx, dy := ni.cfg.Mesh.Coords(p.Dest)
			ni.cur = p.Flits(dx, dy)
			ni.curVC = vc
			ni.outFlags[vc] &^= soa.NIFree | soa.NITailSent
		}
	}
	if len(ni.cur) > 0 {
		if ni.outCredits[ni.curVC] > 0 {
			f := ni.cur[0]
			ni.cur = ni.cur[1:]
			f.VC = ni.curVC
			ni.outCredits[ni.curVC]--
			if f.Kind.IsTail() {
				ni.outFlags[ni.curVC] |= soa.NITailSent
			}
			r.StageArrival(topology.Local, f)
			return true
		}
	}
	return false
}

// pickFreeVC returns the lowest free local-input VC in the class, or -1.
func (ni *NI) pickFreeVC(class int) int {
	lo, hi := ni.cfg.VCRange(class)
	for v := lo; v < hi; v++ {
		if ni.outFlags[v]&soa.NIFree != 0 {
			return v
		}
	}
	return -1
}

// clone returns a deep copy of the NI (with private credit windows).
func (ni *NI) clone() *NI {
	return ni.cloneInto(nil, nil)
}

// cloneInto deep-copies the NI into dst (nil allocates a fresh copy),
// reusing dst's slices and drawing flit copies from the optional arena.
// Queued packets are copied into a per-NI slab so re-forks allocate
// nothing.
func (ni *NI) cloneInto(dst *NI, ar *flit.Arena) *NI {
	c := dst
	if c == nil {
		c = niCloneTarget(make([]int32, len(ni.outCredits)), make([]uint8, len(ni.outFlags)))
		c.gen = ni.gen.Clone()
	} else {
		*c.gen = *ni.gen
	}
	c.node = ni.node
	c.cfg = ni.cfg
	c.curVC = ni.curVC
	if cap(c.pktSlab) < len(ni.queue) {
		c.pktSlab = make([]flit.Packet, len(ni.queue))
	}
	c.pktSlab = c.pktSlab[:len(ni.queue)]
	c.queue = c.queue[:0]
	for i, p := range ni.queue {
		c.pktSlab[i] = *p
		c.queue = append(c.queue, &c.pktSlab[i])
	}
	c.cur = c.cur[:0]
	for _, f := range ni.cur {
		c.cur = append(c.cur, ar.CloneOf(f))
	}
	copy(c.outCredits, ni.outCredits)
	copy(c.outFlags, ni.outFlags)
	c.inbox = c.inbox[:0]
	for _, a := range ni.inbox {
		c.inbox = append(c.inbox, niArrival{f: ar.CloneOf(a.f), cycle: a.cycle})
	}
	c.credits = append(c.credits[:0], ni.credits...)
	return c
}
