package sim

import (
	"testing"

	"nocalert/internal/router"
	"nocalert/internal/topology"
)

// TestRecordingFootprintPinned pins Recording.ApproxFootprintBytes to
// its documented arithmetic: per-event constants times slice capacity
// plus the prefix indices and fold table. The campaign's
// campaign_timeline_bytes gauge and Report.TimelineBytes surface this
// number, so a silent formula drift would misreport golden-side memory.
func TestRecordingFootprintPinned(t *testing.T) {
	var nilRec *Recording
	if got := nilRec.ApproxFootprintBytes(); got != 0 {
		t.Fatalf("nil Recording footprint = %d, want 0", got)
	}

	cfg := Config{Router: router.Default(topology.NewMesh(4, 4)), InjectionRate: 0.2, Seed: 11}
	n := MustNew(cfg, nil)
	for n.Cycle() < 60 {
		n.Step()
	}
	n.StartRecording(40)
	for i := 0; i < 40; i++ {
		n.Step()
	}
	rc := n.StopRecording()

	if rc.Cycles() != 40 {
		t.Fatalf("recorded %d cycles, want 40", rc.Cycles())
	}
	if len(rc.gens) == 0 || len(rc.links) == 0 || len(rc.credits) == 0 {
		t.Fatal("transcript recorded no traffic; raise the injection rate or window")
	}

	want := int64(cap(rc.gens))*32 +
		int64(cap(rc.links))*112 +
		int64(cap(rc.credits))*16 +
		int64(cap(rc.sends))*4 +
		int64(cap(rc.ejects))*104 +
		int64(cap(rc.folds))*8 +
		int64(cap(rc.genIdx)+cap(rc.linkIdx)+cap(rc.credIdx)+cap(rc.sendIdx)+cap(rc.ejectIdx))*4
	if got := rc.ApproxFootprintBytes(); got != want {
		t.Fatalf("Recording.ApproxFootprintBytes() = %d, want %d", got, want)
	}
}

// TestNetworkFootprintIncludesRecording pins the Network-level
// accounting: a network with an attached transcript must report its
// bare footprint plus exactly the transcript's own footprint, and
// detaching the transcript (StopRecording) must restore the bare
// number. This is what makes snapshot-ring and timeline accounting
// composable — the same Network method serves both.
func TestNetworkFootprintIncludesRecording(t *testing.T) {
	cfg := Config{Router: router.Default(topology.NewMesh(4, 4)), InjectionRate: 0.2, Seed: 7}
	n := MustNew(cfg, nil)
	bare := n.ApproxFootprintBytes()
	if bare <= 0 {
		t.Fatalf("bare footprint = %d, want > 0", bare)
	}

	n.StartRecording(20)
	for i := 0; i < 20; i++ {
		n.Step()
	}
	withRec := n.ApproxFootprintBytes()
	rc := n.StopRecording()
	if got, want := withRec, bare+rc.ApproxFootprintBytes(); got != want {
		t.Fatalf("footprint with transcript = %d, want bare %d + transcript %d = %d",
			got, bare, rc.ApproxFootprintBytes(), want)
	}
	if got := n.ApproxFootprintBytes(); got != bare {
		t.Fatalf("footprint after StopRecording = %d, want bare %d", got, bare)
	}
}
