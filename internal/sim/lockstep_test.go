package sim

import (
	"fmt"
	"testing"

	"nocalert/internal/fault"
	"nocalert/internal/router"
	"nocalert/internal/statehash"
	"nocalert/internal/topology"
)

// TestCloneFingerprintLockstep pins the property golden-state
// reconvergence detection rests on: a fault-free clone stepped in
// lockstep with its original stays fingerprint-identical cycle by
// cycle. Any state that influences stepping but escapes CloneInto or
// the fold — or any aliasing that lets one network mutate state the
// other copied — breaks this (an aliased lastRead latch did exactly
// that: downstream VC restamps leaked back into the original's stale
// read latches but not the clone's).
func TestCloneFingerprintLockstep(t *testing.T) {
	for _, tc := range []struct {
		w, h int
		rate float64
	}{
		{4, 4, 0.12},
		{8, 8, 0.05},
	} {
		t.Run(fmt.Sprintf("%dx%d", tc.w, tc.h), func(t *testing.T) {
			mesh := topology.NewMesh(tc.w, tc.h)
			n, err := New(Config{Router: router.Default(mesh), InjectionRate: tc.rate, Seed: 3}, nil)
			if err != nil {
				t.Fatal(err)
			}
			for n.Cycle() < 300 {
				n.Step()
			}
			c := n.CloneInto(nil, fault.NewPlane())
			if n.Fingerprint() != c.Fingerprint() {
				t.Fatal("clone fingerprint differs before any step")
			}
			for i := 0; i < 300; i++ {
				n.Step()
				c.Step()
				if n.Fingerprint() == c.Fingerprint() {
					continue
				}
				for ri := range n.routers {
					if n.routers[ri].FoldState(statehash.Seed) != c.routers[ri].FoldState(statehash.Seed) {
						t.Errorf("cycle %d: router %d fold diverged", n.Cycle(), ri)
					}
				}
				for ni := range n.nis {
					if n.nis[ni].foldState(statehash.Seed) != c.nis[ni].foldState(statehash.Seed) {
						t.Errorf("cycle %d: NI %d fold diverged", n.Cycle(), ni)
					}
				}
				t.Fatalf("clone diverged from original at cycle %d", n.Cycle())
			}
		})
	}
}
