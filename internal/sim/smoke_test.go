package sim

import (
	"testing"

	"nocalert/internal/router"
	"nocalert/internal/topology"
)

// TestSmokeDelivery drives a small mesh with uniform traffic and checks
// that flits flow end to end and the fabric drains.
func TestSmokeDelivery(t *testing.T) {
	cfg := Config{
		Router:        router.Default(topology.NewMesh(4, 4)),
		InjectionRate: 0.1,
		Seed:          1,
	}
	n := MustNew(cfg, nil)
	n.Run(2000)
	if n.FlitsInjected() == 0 {
		t.Fatal("no flits injected")
	}
	if n.FlitsEjected() == 0 {
		t.Fatal("no flits ejected")
	}
	if !n.Drain(5000) {
		t.Fatalf("network failed to drain: inflight=%d injected=%d ejected=%d",
			n.InFlight(), n.FlitsInjected(), n.FlitsEjected())
	}
	if n.FlitsInjected() != n.FlitsEjected() {
		t.Fatalf("flit conservation broken: injected=%d ejected=%d", n.FlitsInjected(), n.FlitsEjected())
	}
	// Every ejected flit must have reached its intended destination in
	// order within its packet.
	seq := map[uint64]int{}
	for _, e := range n.Ejections() {
		if e.Flit.Dest != e.Node {
			t.Fatalf("flit %v ejected at node %d", e.Flit, e.Node)
		}
		if got, want := e.Flit.Seq, seq[e.Flit.PacketID]; got != want {
			t.Fatalf("packet %d out of order: got seq %d want %d", e.Flit.PacketID, got, want)
		}
		seq[e.Flit.PacketID]++
		if !e.Flit.EDCOK() {
			t.Fatalf("EDC violation on %v", e.Flit)
		}
	}
	for id, cnt := range seq {
		if cnt != 5 {
			t.Fatalf("packet %d delivered %d flits, want 5", id, cnt)
		}
	}
}
