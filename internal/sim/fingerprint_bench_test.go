package sim

import (
	"testing"

	"nocalert/internal/router"
	"nocalert/internal/topology"
)

// benchStep measures the per-cycle cost of stepping a warmed network,
// optionally folding the full state fingerprint each cycle — the
// worst-case fingerprint duty cycle, paid only by the golden run's
// timeline recording. Faulty runs amortize the hash behind a counter
// precheck and exponential backoff, so their per-cycle overhead is a
// small fraction of the PlusFP - Only gap shown here.
func benchStep(b *testing.B, w, h int, rate float64, fp bool) {
	mesh := topology.NewMesh(w, h)
	n, err := New(Config{Router: router.Default(mesh), InjectionRate: rate, Seed: 3}, nil)
	if err != nil {
		b.Fatal(err)
	}
	for n.Cycle() < 300 {
		n.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
		if fp {
			_ = n.Fingerprint()
		}
	}
}

func BenchmarkStepOnly4x4(b *testing.B)   { benchStep(b, 4, 4, 0.12, false) }
func BenchmarkStepPlusFP4x4(b *testing.B) { benchStep(b, 4, 4, 0.12, true) }
func BenchmarkStepOnly8x8(b *testing.B)   { benchStep(b, 8, 8, 0.05, false) }
func BenchmarkStepPlusFP8x8(b *testing.B) { benchStep(b, 8, 8, 0.05, true) }
