package sim

import (
	"testing"

	"nocalert/internal/router"
	"nocalert/internal/topology"
)

// benchStep measures the per-cycle cost of stepping a warmed network,
// optionally folding the full state fingerprint each cycle — the
// worst-case fingerprint duty cycle, paid only by the golden run's
// timeline recording. Faulty runs amortize the hash behind a counter
// precheck and exponential backoff, so their per-cycle overhead is a
// small fraction of the PlusFP - Only gap shown here.
func benchStep(b *testing.B, w, h int, rate float64, fp bool) {
	mesh := topology.NewMesh(w, h)
	n, err := New(Config{Router: router.Default(mesh), InjectionRate: rate, Seed: 3}, nil)
	if err != nil {
		b.Fatal(err)
	}
	for n.Cycle() < 300 {
		n.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
		if fp {
			_ = n.Fingerprint()
		}
	}
}

func BenchmarkStepOnly4x4(b *testing.B)   { benchStep(b, 4, 4, 0.12, false) }
func BenchmarkStepPlusFP4x4(b *testing.B) { benchStep(b, 4, 4, 0.12, true) }
func BenchmarkStepOnly8x8(b *testing.B)   { benchStep(b, 8, 8, 0.05, false) }
func BenchmarkStepPlusFP8x8(b *testing.B) { benchStep(b, 8, 8, 0.05, true) }

// BenchmarkGoldenSnapshot measures the cost of capturing one golden
// ring entry: a full-state CloneInto of a warmed network into a fresh
// arena — the per-snapshot price the campaign pays during its single
// golden mainline run.
func benchGoldenSnapshot(b *testing.B, w, h int, rate float64) {
	mesh := topology.NewMesh(w, h)
	n, err := New(Config{Router: router.Default(mesh), InjectionRate: rate, Seed: 3}, nil)
	if err != nil {
		b.Fatal(err)
	}
	for n.Cycle() < 300 {
		n.Step()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = n.CloneInto(nil, nil)
	}
}

func BenchmarkGoldenSnapshot4x4(b *testing.B) { benchGoldenSnapshot(b, 4, 4, 0.12) }
func BenchmarkGoldenSnapshot8x8(b *testing.B) { benchGoldenSnapshot(b, 8, 8, 0.05) }

// BenchmarkForkedRun measures restoring a snapshot into a reusable
// worker arena and replaying a short gap — the whole warm-start price
// of one forked faulty run, to set against the snapshot.cycle stepped
// cycles it skips.
func benchForkedRun(b *testing.B, w, h int, rate float64, replay int64) {
	mesh := topology.NewMesh(w, h)
	n, err := New(Config{Router: router.Default(mesh), InjectionRate: rate, Seed: 3}, nil)
	if err != nil {
		b.Fatal(err)
	}
	for n.Cycle() < 300 {
		n.Step()
	}
	snap := n.CloneInto(nil, nil)
	var arena *Network
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena = snap.CloneInto(arena, nil)
		for c := snap.Cycle() + replay; arena.Cycle() < c; {
			arena.Step()
		}
	}
}

func BenchmarkForkedRun4x4(b *testing.B) { benchForkedRun(b, 4, 4, 0.12, 8) }
func BenchmarkForkedRun8x8(b *testing.B) { benchForkedRun(b, 8, 8, 0.05, 8) }
