package sim

import (
	"nocalert/internal/flit"
	"nocalert/internal/statehash"
)

// The golden signal recording: a per-cycle, per-link transcript of
// everything that crosses a boundary between two nodes of the fault-free
// golden continuation — packet generations, flits and credits on every
// inter-router link, NI send strobes, ejections — plus one per-node
// state fold per cycle boundary. A forked faulty run's divergence
// frontier (see frontier.go) consumes this transcript to stand in for
// every router it is not simulating: clean nodes' outbound signals are
// replayed from the record, a frontier member's outbound signals are
// compared against it to detect divergence spreading, and the per-node
// folds are what lets a member retire the moment its state returns to
// golden's.
//
// The record is value-based throughout (flit values, not pointers), so
// replaying it cannot alias the golden network's state, and it covers
// inter-node signals only: everything that happens strictly inside one
// node (buffer reads, arbitration, the NI's own credit maturation) is
// recomputed, never recorded.

// recGen is one packet generation event: node's NI drew a Bernoulli hit
// at the record's cycle. The RNG-derived fields are stored so the event
// can be fed to monitors (and replayed into a joining node) without
// touching any NI state.
type recGen struct {
	node    int32
	class   int32
	dest    int32
	id      uint64
	payload uint64
}

// recLink is one flit crossing the src→dst link: the value the flit had
// on the wire (post any sender-side mutation) and the input port it
// lands on at dst.
type recLink struct {
	src, dst int32
	dstPort  uint8
	flit     flit.Flit
}

// recCredit is the credit traffic on the src→dst credit link for one
// cycle, aggregated as a VC bitmask (StageCredit ORs per-VC bits, so a
// mask loses nothing).
type recCredit struct {
	src, dst int32
	dstPort  uint8
	mask     uint32
}

// recEject is one flit delivered to node's NI.
type recEject struct {
	node int32
	flit flit.Flit
}

// Recording is the golden signal transcript for a contiguous cycle
// range [start, start+cycles). Event storage is flat, indexed by
// per-cycle prefix offsets, so an 800-cycle window costs a handful of
// slice headers rather than thousands of small allocations.
type Recording struct {
	start int64
	nodes int

	gens    []recGen
	links   []recLink
	credits []recCredit
	sends   []int32
	ejects  []recEject
	// folds holds nodes per-node state folds per recorded cycle: entry
	// c*nodes+i is node i's fold at the boundary ending cycle start+c.
	folds []uint64

	// prefix offsets, one entry per closed cycle plus the open tail.
	genIdx, linkIdx, credIdx, sendIdx, ejectIdx []int32
}

func newRecording(start int64, nodes, cycles int) *Recording {
	r := &Recording{start: start, nodes: nodes}
	r.genIdx = append(make([]int32, 0, cycles+1), 0)
	r.linkIdx = append(make([]int32, 0, cycles+1), 0)
	r.credIdx = append(make([]int32, 0, cycles+1), 0)
	r.sendIdx = append(make([]int32, 0, cycles+1), 0)
	r.ejectIdx = append(make([]int32, 0, cycles+1), 0)
	r.folds = make([]uint64, 0, cycles*nodes)
	return r
}

// Cycles returns the number of fully recorded cycles.
func (rc *Recording) Cycles() int { return len(rc.genIdx) - 1 }

// Start returns the first recorded cycle.
func (rc *Recording) Start() int64 { return rc.start }

// covers reports whether cycle t is inside the recorded range.
func (rc *Recording) covers(t int64) bool {
	return t >= rc.start && t < rc.start+int64(rc.Cycles())
}

// seg returns the [lo,hi) event range of cycle t in the given prefix
// index. t must be a recorded cycle.
func (rc *Recording) seg(idx []int32, t int64) (int, int) {
	c := int(t - rc.start)
	return int(idx[c]), int(idx[c+1])
}

// foldAt returns node i's recorded state fold at the boundary that ends
// cycle t.
func (rc *Recording) foldAt(t int64, i int) uint64 {
	return rc.folds[int(t-rc.start)*rc.nodes+i]
}

// recordGen appends a generation event for the open cycle.
func (rc *Recording) recordGen(node int, p *flit.Packet) {
	rc.gens = append(rc.gens, recGen{
		node: int32(node), class: int32(p.Class), dest: int32(p.Dest),
		id: p.ID, payload: p.Payload,
	})
}

// recordLink appends a flit crossing src→dst, landing on dst's input
// port dstPort.
func (rc *Recording) recordLink(src, dst, dstPort int, f *flit.Flit) {
	rc.links = append(rc.links, recLink{src: int32(src), dst: int32(dst), dstPort: uint8(dstPort), flit: *f})
}

// recordCredit ORs a credit for VC vc into the src→dst mask of the open
// cycle (creating the entry on first use). The link loop emits credits
// grouped by src, so the scan for an existing entry only walks the
// current router's tail.
func (rc *Recording) recordCredit(src, dst, dstPort, vc int) {
	lo := int(rc.credIdx[len(rc.credIdx)-1])
	for i := len(rc.credits) - 1; i >= lo; i-- {
		e := &rc.credits[i]
		if int(e.src) != src {
			break
		}
		if int(e.dst) == dst {
			e.mask |= 1 << uint(vc)
			return
		}
	}
	rc.credits = append(rc.credits, recCredit{src: int32(src), dst: int32(dst), dstPort: uint8(dstPort), mask: 1 << uint(vc)})
}

// recordSend appends node's NI send strobe for the open cycle.
func (rc *Recording) recordSend(node int) {
	rc.sends = append(rc.sends, int32(node))
}

// recordEject appends an ejection at node for the open cycle.
func (rc *Recording) recordEject(node int, f *flit.Flit) {
	rc.ejects = append(rc.ejects, recEject{node: int32(node), flit: *f})
}

// closeCycle seals the open cycle: folds every node's state at the
// just-completed boundary and freezes the event ranges.
func (rc *Recording) closeCycle(n *Network) {
	for i := range n.routers {
		rc.folds = append(rc.folds, n.nodeFold(i))
	}
	rc.genIdx = append(rc.genIdx, int32(len(rc.gens)))
	rc.linkIdx = append(rc.linkIdx, int32(len(rc.links)))
	rc.credIdx = append(rc.credIdx, int32(len(rc.credits)))
	rc.sendIdx = append(rc.sendIdx, int32(len(rc.sends)))
	rc.ejectIdx = append(rc.ejectIdx, int32(len(rc.ejects)))
}

// ApproxFootprintBytes estimates the memory the transcript retains:
// flat event storage at capacity plus the prefix indices and the
// per-node fold table. Like Network.ApproxFootprintBytes it is a
// deterministic accounting estimate, not a heap measurement.
func (rc *Recording) ApproxFootprintBytes() int64 {
	if rc == nil {
		return 0
	}
	const (
		genBytes   = 32  // recGen
		linkBytes  = 112 // recLink (embedded flit value)
		credBytes  = 16  // recCredit
		ejectBytes = 104 // recEject (embedded flit value)
	)
	b := int64(cap(rc.gens))*genBytes +
		int64(cap(rc.links))*linkBytes +
		int64(cap(rc.credits))*credBytes +
		int64(cap(rc.sends))*4 +
		int64(cap(rc.ejects))*ejectBytes +
		int64(cap(rc.folds))*8
	b += int64(cap(rc.genIdx)+cap(rc.linkIdx)+cap(rc.credIdx)+cap(rc.sendIdx)+cap(rc.ejectIdx)) * 4
	return b
}

// nodeFold folds node i's full mutable state — router registers,
// buffers, staged arrivals, plus the NI — into one hash. It is the
// per-node slice of Network.foldBody's enumeration: a faulty run's node
// whose fold equals the golden recording's at the same boundary holds,
// up to hash collision, exactly the golden state.
func (n *Network) nodeFold(i int) uint64 {
	h := n.routers[i].FoldState(statehash.Seed)
	return n.nis[i].foldState(h)
}

// StartRecording attaches a fresh golden signal transcript to the
// network: every subsequent Step appends its inter-node signal traffic
// and per-node state folds until StopRecording. cycles sizes the
// per-cycle indices (the expected window length). Recording is meant
// for the fault-free golden continuation only; it is never cloned into
// forks.
func (n *Network) StartRecording(cycles int) {
	n.rec = newRecording(n.cycle, len(n.routers), cycles)
}

// StopRecording detaches and returns the transcript (nil if none was
// attached).
func (n *Network) StopRecording() *Recording {
	rec := n.rec
	n.rec = nil
	return rec
}
