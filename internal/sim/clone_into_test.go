package sim

import (
	"reflect"
	"testing"
)

// ejRecord is an ejection with the flit flattened to a value, so logs
// from different clones compare by content rather than pointer.
type ejRecord struct {
	node  int
	cycle int64
	pkt   uint64
	seq   int
}

func runAndRecord(n *Network, cycles int64) []ejRecord {
	n.Run(cycles)
	out := make([]ejRecord, 0, len(n.Ejections()))
	for _, e := range n.Ejections() {
		out = append(out, ejRecord{node: e.Node, cycle: e.Cycle, pkt: e.Flit.PacketID, seq: e.Flit.Seq})
	}
	return out
}

// TestCloneIntoMatchesClone forks a warmed, loaded network with both
// Clone and CloneInto and checks that the copies carry identical
// architectural state and behave identically for hundreds of cycles.
func TestCloneIntoMatchesClone(t *testing.T) {
	base := MustNew(cfg44(0.2, 9), nil)
	base.Run(300)

	ref := base.Clone(nil)
	reuse := base.CloneInto(nil, nil)

	// State equivalence at the fork point: routers and NIs must be
	// deep-equal between the two clone paths (the ejection log is the
	// one documented difference — CloneInto starts it empty).
	for i := range ref.routers {
		if !reflect.DeepEqual(ref.routers[i], reuse.routers[i]) {
			t.Fatalf("router %d state differs between Clone and CloneInto", i)
		}
	}
	for i := range ref.nis {
		if !reflect.DeepEqual(ref.nis[i], reuse.nis[i]) {
			t.Fatalf("NI %d state differs between Clone and CloneInto", i)
		}
	}
	if len(reuse.Ejections()) != 0 {
		t.Fatalf("CloneInto must start with an empty ejection log, got %d entries", len(reuse.Ejections()))
	}

	// Behavioral equivalence: both clones must eject exactly the same
	// flits at the same nodes and cycles.
	before := len(ref.Ejections())
	refLog := runAndRecord(ref, 400)[before:]
	reuseLog := runAndRecord(reuse, 400)
	if !reflect.DeepEqual(refLog, reuseLog) {
		t.Fatalf("post-fork ejections diverge: Clone %d entries, CloneInto %d entries", len(refLog), len(reuseLog))
	}
	if ref.Cycle() != reuse.Cycle() || ref.InFlight() != reuse.InFlight() {
		t.Fatalf("cycle/in-flight diverge: (%d,%d) vs (%d,%d)",
			ref.Cycle(), ref.InFlight(), reuse.Cycle(), reuse.InFlight())
	}
}

// TestCloneIntoReuseAcrossForks dirties a CloneInto target with one
// run, re-forks into the same storage, and checks the second fork is
// indistinguishable from a fresh clone — the invariant campaign
// workers rely on when recycling one network across thousands of runs.
func TestCloneIntoReuseAcrossForks(t *testing.T) {
	base := MustNew(cfg44(0.2, 11), nil)
	base.Run(300)

	arena := base.CloneInto(nil, nil)
	runAndRecord(arena, 500) // dirty the reusable clone

	arena = base.CloneInto(arena, nil)
	gotLog := runAndRecord(arena, 400)

	fresh := base.Clone(nil)
	before := len(fresh.Ejections())
	wantLog := runAndRecord(fresh, 400)[before:]

	if !reflect.DeepEqual(gotLog, wantLog) {
		t.Fatalf("re-forked clone diverges from fresh clone: %d vs %d entries", len(gotLog), len(wantLog))
	}
	if arena.Cycle() != fresh.Cycle() || arena.InFlight() != fresh.InFlight() {
		t.Fatalf("cycle/in-flight diverge after re-fork: (%d,%d) vs (%d,%d)",
			arena.Cycle(), arena.InFlight(), fresh.Cycle(), fresh.InFlight())
	}
}
