package sim

import (
	"testing"

	"nocalert/internal/flit"
	"nocalert/internal/router"
	"nocalert/internal/topology"
)

func niRig(t *testing.T) (*NI, *router.Router, *router.Config) {
	t.Helper()
	rc := router.Default(topology.NewMesh(3, 3))
	r := router.New(4, &rc, nil)
	ni := newNI(4, &rc, 99, nil, nil)
	return ni, r, &rc
}

func TestNIStreamsOneFlitPerCycle(t *testing.T) {
	ni, r, rc := niRig(t)
	p := &flit.Packet{ID: 1, Src: 4, Dest: 5, Class: 0, Length: 5}
	ni.enqueue(p)
	var ejected []*flit.Flit
	sent := 0
	for c := int64(0); c < 10; c++ {
		if ni.tickInject(c, r, &ejected) {
			sent++
		}
		r.BeginCycle(c)
		r.Evaluate(c)
	}
	if sent != 5 {
		t.Fatalf("sent %d flits, want 5", sent)
	}
	if ni.Streaming() || ni.QueueLen() != 0 {
		t.Fatal("NI not idle after streaming the packet")
	}
	_ = rc
}

func TestNIRespectsCredits(t *testing.T) {
	ni, r, rc := niRig(t)
	// Two packets on one class: the second must wait until the first
	// VC recycles (atomic buffers, no credits returned by the router
	// because we never let it evaluate).
	for id := uint64(1); id <= 2; id++ {
		ni.enqueue(&flit.Packet{ID: id, Src: 4, Dest: 5, Class: 0, Length: rc.BufDepth + 1})
	}
	var ejected []*flit.Flit
	sent := 0
	for c := int64(0); c < 20; c++ {
		if ni.tickInject(c, r, &ejected) {
			sent++
		}
		// The router consumes its staging, but we never hand its
		// returned credits back to the NI — the NI's credit view must
		// stop it after one buffer's worth of flits.
		r.BeginCycle(c)
		r.Evaluate(c)
	}
	if sent != rc.BufDepth {
		t.Fatalf("sent %d flits into a %d-deep buffer without credits", sent, rc.BufDepth)
	}
}

func TestNIPicksDistinctVCsPerClass(t *testing.T) {
	rc := router.Default(topology.NewMesh(3, 3))
	rc.Classes = 2
	rc.LenByClass = []int{1, 1}
	r := router.New(4, &rc, nil)
	ni := newNI(4, &rc, 1, nil, nil)
	ni.enqueue(&flit.Packet{ID: 1, Src: 4, Dest: 5, Class: 0, Length: 1})
	ni.enqueue(&flit.Packet{ID: 2, Src: 4, Dest: 5, Class: 1, Length: 1})
	var ejected []*flit.Flit
	var vcs []int
	for c := int64(0); c < 6; c++ {
		before := ni.Streaming()
		_ = before
		if ni.tickInject(c, r, &ejected) {
			// The flit was staged; recover its VC from the arrival that
			// the router records next cycle.
		}
		r.BeginCycle(c)
		r.Evaluate(c)
		for i := range r.Signals().Arrivals {
			vcs = append(vcs, r.Signals().Arrivals[i].VCField)
		}
	}
	if len(vcs) != 2 {
		t.Fatalf("arrived %d flits, want 2", len(vcs))
	}
	lo0, hi0 := rc.VCRange(0)
	lo1, hi1 := rc.VCRange(1)
	if vcs[0] < lo0 || vcs[0] >= hi0 {
		t.Fatalf("class-0 packet on VC %d outside [%d,%d)", vcs[0], lo0, hi0)
	}
	if vcs[1] < lo1 || vcs[1] >= hi1 {
		t.Fatalf("class-1 packet on VC %d outside [%d,%d)", vcs[1], lo1, hi1)
	}
}

func TestNIEjectionReturnsCredits(t *testing.T) {
	ni, r, _ := niRig(t)
	f := (&flit.Packet{ID: 1, Src: 5, Dest: 4, Length: 1}).Flits(1, 1)[0]
	f.VC = 2
	ni.flitArrived(f, 3)
	var ejected []*flit.Flit
	ni.tickInject(2, r, &ejected)
	if len(ejected) != 0 {
		t.Fatal("flit ejected before its link latency elapsed")
	}
	ni.tickInject(3, r, &ejected)
	if len(ejected) != 1 {
		t.Fatalf("ejected %d flits, want 1", len(ejected))
	}
	// The ejection credit must be staged at the router's local output.
	r.BeginCycle(4)
	r.Evaluate(4)
	if got := r.Signals().CreditsIn[int(topology.Local)]; !got.Get(2) {
		t.Fatalf("ejection credit not staged (credits=%s)", got)
	}
}

func TestNICloneIndependence(t *testing.T) {
	ni, r, _ := niRig(t)
	ni.enqueue(&flit.Packet{ID: 1, Src: 4, Dest: 5, Class: 0, Length: 5})
	var ejected []*flit.Flit
	ni.tickInject(0, r, &ejected) // header leaves, stream in progress
	c := ni.clone()
	if c.QueueLen() != ni.QueueLen() || c.Streaming() != ni.Streaming() {
		t.Fatal("clone state differs")
	}
	// Advance only the original; the clone must not move.
	r2 := router.New(4, ni.cfg, nil)
	ni.tickInject(1, r2, &ejected)
	if len(c.cur) == len(ni.cur) {
		t.Fatal("clone shares the streaming slice")
	}
}
