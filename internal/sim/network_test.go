package sim

import (
	"testing"

	"nocalert/internal/fault"
	"nocalert/internal/flit"
	"nocalert/internal/router"
	"nocalert/internal/routing"
	"nocalert/internal/topology"
	"nocalert/internal/traffic"
)

func cfg44(rate float64, seed uint64) Config {
	return Config{Router: router.Default(topology.NewMesh(4, 4)), InjectionRate: rate, Seed: seed}
}

func ejectionsEqual(a, b []Ejection) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Cycle != b[i].Cycle {
			return false
		}
		if a[i].Flit.PacketID != b[i].Flit.PacketID || a[i].Flit.Seq != b[i].Flit.Seq {
			return false
		}
	}
	return true
}

// TestRunDeterminism: two networks with identical configs produce
// byte-identical ejection logs.
func TestRunDeterminism(t *testing.T) {
	a := MustNew(cfg44(0.15, 7), nil)
	b := MustNew(cfg44(0.15, 7), nil)
	a.Run(1500)
	b.Run(1500)
	if !ejectionsEqual(a.Ejections(), b.Ejections()) {
		t.Fatal("identical configurations diverged")
	}
	if a.FlitsInjected() != b.FlitsInjected() || a.PacketsOffered() != b.PacketsOffered() {
		t.Fatal("injection accounting diverged")
	}
}

// TestSeedMatters: different seeds produce different traffic.
func TestSeedMatters(t *testing.T) {
	a := MustNew(cfg44(0.15, 7), nil)
	b := MustNew(cfg44(0.15, 8), nil)
	a.Run(1000)
	b.Run(1000)
	if ejectionsEqual(a.Ejections(), b.Ejections()) {
		t.Fatal("different seeds produced identical logs")
	}
}

// TestCloneContinuationIdentical is the property the whole campaign
// architecture rests on: a clone taken mid-run, continued fault-free,
// must replay exactly the original's future.
func TestCloneContinuationIdentical(t *testing.T) {
	for _, warmCycles := range []int64{0, 137, 800} {
		orig := MustNew(cfg44(0.18, 21), nil)
		orig.Run(warmCycles)
		clone := orig.Clone(nil)
		orig.Run(1200)
		clone.Run(1200)
		if !ejectionsEqual(orig.Ejections(), clone.Ejections()) {
			t.Fatalf("clone at cycle %d diverged from original", warmCycles)
		}
		if orig.FlitsInjected() != clone.FlitsInjected() {
			t.Fatalf("clone at cycle %d injected %d vs %d",
				warmCycles, clone.FlitsInjected(), orig.FlitsInjected())
		}
	}
}

// TestCloneIsolation: mutating the clone's future must not leak into
// the original (deep copy, not aliasing).
func TestCloneIsolation(t *testing.T) {
	orig := MustNew(cfg44(0.18, 5), nil)
	orig.Run(500)
	pristine := orig.Clone(nil)

	// Wreck the clone with a permanent fault.
	s := fault.Site{Router: 5, Kind: fault.SA1Gnt, Port: int(topology.Local), VC: -1, Width: 4}
	wrecked := orig.Clone(fault.NewPlane(fault.Fault{Site: s, Bit: 0, Cycle: 500, Type: fault.Permanent}))
	wrecked.Run(800)

	orig.Run(800)
	pristine.Run(800)
	if !ejectionsEqual(orig.Ejections(), pristine.Ejections()) {
		t.Fatal("running a wrecked clone perturbed its siblings")
	}
}

// TestDrainEmptiesFabric: after injection stops, every in-flight flit
// reaches its destination.
func TestDrainEmptiesFabric(t *testing.T) {
	n := MustNew(cfg44(0.25, 3), nil)
	n.Run(1000)
	if !n.Drain(8000) {
		t.Fatalf("drain failed: inflight=%d", n.InFlight())
	}
	if n.FlitsInjected() != n.FlitsEjected() {
		t.Fatalf("conservation: injected %d ejected %d", n.FlitsInjected(), n.FlitsEjected())
	}
}

// TestLatencyLowerBound: no packet can beat the pipeline's physics —
// 4 intra-router cycles per hop plus the injection/ejection links.
func TestLatencyLowerBound(t *testing.T) {
	n := MustNew(cfg44(0.02, 9), nil)
	n.Run(2000)
	n.Drain(5000)
	for _, e := range n.Ejections() {
		hops := int64(n.Mesh().HopDistance(e.Flit.Src, e.Flit.Dest))
		minLatency := 4 + hops // NI link + per-hop minimum, loose bound
		if got := e.Cycle - e.Flit.InjectedAt; got < minLatency {
			t.Fatalf("flit %v delivered in %d cycles over %d hops (< %d)",
				e.Flit, got, hops, minLatency)
		}
	}
}

// TestInjectionRateHonored: delivered throughput tracks the offered
// rate well below saturation.
func TestInjectionRateHonored(t *testing.T) {
	const rate = 0.10
	n := MustNew(cfg44(rate, 13), nil)
	n.Run(4000)
	n.Drain(8000)
	perNodeCycle := float64(n.FlitsEjected()) / 4000 / float64(n.Mesh().Nodes())
	if perNodeCycle < 0.8*rate || perNodeCycle > 1.2*rate {
		t.Fatalf("throughput %.4f vs offered %.2f", perNodeCycle, rate)
	}
}

// TestAllPatternsDeliver: every traffic pattern yields a draining
// network with correct deliveries.
func TestAllPatternsDeliver(t *testing.T) {
	for _, name := range []string{"uniform", "transpose", "bitcomplement", "bitreverse", "shuffle", "neighbor", "hotspot"} {
		pat, err := traffic.New(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := cfg44(0.08, 17)
		cfg.Pattern = pat
		n := MustNew(cfg, nil)
		n.Run(1200)
		if !n.Drain(8000) {
			t.Errorf("%s: failed to drain", name)
			continue
		}
		for _, e := range n.Ejections() {
			if e.Flit.Dest != e.Node {
				t.Errorf("%s: misdelivery %v at node %d", name, e.Flit, e.Node)
				break
			}
		}
		if n.FlitsEjected() == 0 {
			t.Errorf("%s: no traffic", name)
		}
	}
}

// TestMonitorCallbacks: monitors see every injection and ejection.
type countingMonitor struct {
	BaseMonitor
	pkts, flits, cycles int
	routerCycles        int
}

func (m *countingMonitor) PacketInjected(int64, int, *flit.Packet)     { m.pkts++ }
func (m *countingMonitor) FlitEjected(int64, int, *flit.Flit)          { m.flits++ }
func (m *countingMonitor) EndCycle(int64)                              { m.cycles++ }
func (m *countingMonitor) RouterCycle(*router.Router, *router.Signals) { m.routerCycles++ }

func TestMonitorCallbacks(t *testing.T) {
	// Reference engine: every router is visited every cycle.
	rcfg := cfg44(0.1, 1)
	rcfg.DisableSoA = true
	n := MustNew(rcfg, nil)
	m := &countingMonitor{}
	n.AttachMonitor(m)
	n.Run(500)
	n.Drain(5000)
	if int64(m.pkts) != n.PacketsOffered() {
		t.Errorf("monitor saw %d packets, offered %d", m.pkts, n.PacketsOffered())
	}
	if int64(m.flits) != n.FlitsEjected() {
		t.Errorf("monitor saw %d flits, ejected %d", m.flits, n.FlitsEjected())
	}
	if int64(m.cycles) != n.Cycle() {
		t.Errorf("monitor saw %d cycles, simulated %d", m.cycles, n.Cycle())
	}
	if int64(m.routerCycles) != n.Cycle()*int64(n.Mesh().Nodes()) {
		t.Errorf("monitor saw %d router-cycles", m.routerCycles)
	}

	// SoA engine: inert routers are skipped, so the monitor sees fewer
	// router visits but the same packet/flit/cycle stream.
	n2 := MustNew(cfg44(0.1, 1), nil)
	m2 := &countingMonitor{}
	n2.AttachMonitor(m2)
	n2.Run(500)
	n2.Drain(5000)
	if int64(m2.pkts) != n2.PacketsOffered() || int64(m2.flits) != n2.FlitsEjected() || int64(m2.cycles) != n2.Cycle() {
		t.Errorf("SoA monitor stream mismatch: pkts %d/%d flits %d/%d cycles %d/%d",
			m2.pkts, n2.PacketsOffered(), m2.flits, n2.FlitsEjected(), m2.cycles, n2.Cycle())
	}
	if int64(m2.routerCycles) > n2.Cycle()*int64(n2.Mesh().Nodes()) {
		t.Errorf("SoA monitor saw %d router-cycles, more than %d routers could step", m2.routerCycles, n2.Cycle()*int64(n2.Mesh().Nodes()))
	}
	if m2.routerCycles >= m.routerCycles {
		t.Errorf("SoA engine visited %d router-cycles, reference %d: inert skip had no effect", m2.routerCycles, m.routerCycles)
	}
}

// TestStopResumeInjection: no packets are generated while stopped.
func TestStopResumeInjection(t *testing.T) {
	n := MustNew(cfg44(0.2, 2), nil)
	n.Run(300)
	n.StopInjection()
	before := n.PacketsOffered()
	n.Run(300)
	if n.PacketsOffered() != before {
		t.Fatal("packets generated while injection stopped")
	}
	n.ResumeInjection()
	n.Run(300)
	if n.PacketsOffered() == before {
		t.Fatal("injection did not resume")
	}
}

// TestTwoClassTraffic: message classes keep their own VC partitions and
// lengths.
func TestTwoClassTraffic(t *testing.T) {
	rc := router.Default(topology.NewMesh(4, 4))
	rc.Classes = 2
	rc.LenByClass = []int{1, 5}
	n := MustNew(Config{Router: rc, InjectionRate: 0.15, Seed: 4, ClassWeights: []float64{0.5, 0.5}}, nil)
	n.Run(2000)
	if !n.Drain(8000) {
		t.Fatal("two-class network failed to drain")
	}
	counts := map[uint64]int{}
	classes := map[uint64]int{}
	for _, e := range n.Ejections() {
		counts[e.Flit.PacketID]++
		classes[e.Flit.PacketID] = e.Flit.Class
	}
	sawShort, sawLong := false, false
	for id, c := range counts {
		want := rc.LenByClass[classes[id]]
		if c != want {
			t.Fatalf("packet %d class %d delivered %d flits, want %d", id, classes[id], c, want)
		}
		if want == 1 {
			sawShort = true
		} else {
			sawLong = true
		}
	}
	if !sawShort || !sawLong {
		t.Fatal("both classes should appear")
	}
}

// TestAdaptiveRoutingDelivers: the adaptive algorithm drains under
// hotspot pressure.
func TestAdaptiveRoutingDelivers(t *testing.T) {
	rc := router.Default(topology.NewMesh(4, 4))
	rc.Alg = routing.Adaptive{}
	cfg := Config{Router: rc, InjectionRate: 0.12, Seed: 6, Pattern: traffic.NewHotspot(nil, 0.5)}
	n := MustNew(cfg, nil)
	n.Run(2000)
	if !n.Drain(10000) {
		t.Fatal("adaptive network failed to drain")
	}
	for _, e := range n.Ejections() {
		if e.Flit.Dest != e.Node {
			t.Fatalf("misdelivery under adaptive routing: %v at %d", e.Flit, e.Node)
		}
	}
}

// TestInvalidConfigRejected: New surfaces configuration errors.
func TestInvalidConfigRejected(t *testing.T) {
	bad := cfg44(-0.1, 0)
	if _, err := New(bad, nil); err == nil {
		t.Fatal("negative rate accepted")
	}
	rc := router.Default(topology.NewMesh(4, 4))
	rc.VCs = 0
	if _, err := New(Config{Router: rc, InjectionRate: 0.1}, nil); err == nil {
		t.Fatal("invalid router config accepted")
	}
}
