package sim

import (
	"nocalert/internal/flit"
	"nocalert/internal/router"
)

// Monitor observes the network without perturbing it — the contract the
// paper demands of NoCAlert ("the checkers never interfere with, or
// interrupt, the operation of the NoC"). The NoCAlert checker fabric,
// the ForEVeR baseline and the golden-reference recorder all attach as
// monitors.
type Monitor interface {
	// RouterCycle is called once per router per cycle, after the router
	// has evaluated, with its full signal record.
	RouterCycle(r *router.Router, s *router.Signals)
	// PacketInjected is called when a source NI accepts a new packet
	// into its injection queue.
	PacketInjected(cycle int64, node int, p *flit.Packet)
	// FlitEjected is called when a destination NI ejects a flit.
	FlitEjected(cycle int64, node int, f *flit.Flit)
	// EndCycle is called once per cycle after all routers and NIs have
	// been served.
	EndCycle(cycle int64)
}

// CloneableMonitor is implemented by monitors whose state must survive
// a network fork (e.g. ForEVeR's in-flight notification counters).
// Network.Clone clones such monitors along with the network; monitors
// that do not implement it are dropped from the copy and must be
// re-attached.
type CloneableMonitor interface {
	Monitor
	CloneMonitor() Monitor
}

// BaseMonitor is a no-op Monitor for embedding; override the callbacks
// you need.
type BaseMonitor struct{}

// RouterCycle implements Monitor.
func (BaseMonitor) RouterCycle(*router.Router, *router.Signals) {}

// PacketInjected implements Monitor.
func (BaseMonitor) PacketInjected(int64, int, *flit.Packet) {}

// FlitEjected implements Monitor.
func (BaseMonitor) FlitEjected(int64, int, *flit.Flit) {}

// EndCycle implements Monitor.
func (BaseMonitor) EndCycle(int64) {}
