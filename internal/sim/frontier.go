package sim

import (
	"fmt"
	"math/bits"

	"nocalert/internal/flit"
	"nocalert/internal/router"
	"nocalert/internal/topology"
)

// Frontier is the divergence-frontier delta engine: it steps a forked
// faulty network by simulating only the nodes a fault's perturbation
// can have reached, replaying everything else from the golden signal
// transcript (see record.go).
//
// The invariant: a node outside the frontier holds exactly the golden
// state of some past boundary (validAt), and every signal it has
// emitted since the fork equals golden's record. That holds inductively
// because influence moves at most one link per cycle: a clean node's
// inputs can only change when a frontier neighbor emits something that
// differs from golden's record for that link — and that comparison is
// exactly the join trigger. The moment a member's outbound flit or
// credit traffic toward a clean node deviates from the record (a
// different value, an extra signal, or a missing one), the target's
// state is materialized by replaying it forward from its valid
// boundary (golden inputs from the record, plus the live divergent
// inputs on the final cycle) and it becomes a member.
//
// Members retire once the fault plane is quiescent and their per-node
// state fold returns to the recorded golden fold for the same boundary;
// a frontier that shrinks to empty with a clean ejection history IS
// reconvergence — the unification with the campaign's fingerprint
// timeline probe.
//
// Everything observable stays exact: monitors are fed the merged event
// stream (live events from members, recorded events from clean nodes),
// the ejection log and the global counters are maintained cycle by
// cycle, and NoCAlert's checker sweeps only ever see member routers —
// exact because the golden run is invariant-clean, so clean routers can
// assert nothing.
type Frontier struct {
	n   *Network
	rec *Recording

	inF       []bool  // current membership
	wasMember []bool  // membership at the start of the cycle being stepped
	validAt   []int64 // for non-members: boundary their state is golden at
	size      int

	// clean is true while the run's post-fork ejection history equals
	// golden's, value for value. It never returns to true once false.
	clean bool

	peak  int
	joins int64

	// per-cycle scratch
	members   []int
	steppedS  []int
	pendF     []pendFlit
	pendC     []pendCred
	matchedF  []bool
	matchedC  []bool
	joinList  []int
	ejScratch []*flit.Flit
	genPkt    flit.Packet
}

// pendFlit is a member's live emission toward a clean node, held until
// the cycle's join decisions are made.
type pendFlit struct {
	src, dst int
	port     topology.Direction
	f        *flit.Flit
}

// pendCred is a member's live credit traffic toward a clean node,
// aggregated per link as a VC mask.
type pendCred struct {
	src, dst int
	port     topology.Direction
	mask     uint32
}

// NewFrontier builds a frontier over n seeded with the given node ids
// (the fault sites). n must stand at the transcript's start boundary —
// the state every node's validAt is pinned to — and rec must be the
// golden transcript of the window about to be stepped.
func NewFrontier(n *Network, rec *Recording, seeds []int) *Frontier {
	if n.cycle != rec.start {
		panic(fmt.Sprintf("sim: frontier fork at cycle %d does not match transcript start %d", n.cycle, rec.start))
	}
	if n.arena == nil {
		n.arena = &flit.Arena{}
	}
	nodes := len(n.routers)
	f := &Frontier{
		n: n, rec: rec, clean: true,
		inF:       make([]bool, nodes),
		wasMember: make([]bool, nodes),
		validAt:   make([]int64, nodes),
	}
	for i := range f.validAt {
		f.validAt[i] = n.cycle
	}
	for _, s := range seeds {
		if !f.inF[s] {
			f.inF[s] = true
			f.size++
		}
	}
	f.peak = f.size
	return f
}

// Size returns the current frontier membership count.
func (f *Frontier) Size() int { return f.size }

// Empty reports whether no node is divergent.
func (f *Frontier) Empty() bool { return f.size == 0 }

// Clean reports whether the post-fork ejection history still equals
// golden's, value for value.
func (f *Frontier) Clean() bool { return f.clean }

// Peak returns the largest membership the frontier reached.
func (f *Frontier) Peak() int { return f.peak }

// Joins returns how many times a node joined the frontier (a node that
// retires and diverges again counts once per join).
func (f *Frontier) Joins() int64 { return f.joins }

// Step simulates one cycle of the faulty network, stepping only
// frontier members and replaying every other node's signals from the
// golden transcript. It mirrors Network.Step phase for phase, so the
// merged monitor event stream, ejection log and counters are identical
// to a full simulation's.
func (f *Frontier) Step() {
	n := f.n
	t := n.cycle
	if !f.rec.covers(t) {
		panic(fmt.Sprintf("sim: frontier stepped to cycle %d outside transcript [%d,%d)", t, f.rec.start, f.rec.start+int64(f.rec.Cycles())))
	}
	copy(f.wasMember, f.inF)
	members := f.members[:0]
	for i, m := range f.inF {
		if m {
			members = append(members, i)
		}
	}
	f.members = members

	f.stepGeneration(t)

	// Router pipelines: members only, in ascending node order, with the
	// same inert-router skip Network.Step applies (gated off while the
	// plane is live; an inert member is a provable no-op either way).
	skipInert := !n.soaOff && !n.plane.LiveAt(t)
	steppedIDs := f.steppedS[:0]
	for _, id := range members {
		r := n.routers[id]
		if skipInert && r.Inert() {
			continue
		}
		r.BeginCycle(t)
		r.Evaluate(t)
		steppedIDs = append(steppedIDs, id)
	}
	f.steppedS = steppedIDs

	f.stepLinks(t, steppedIDs)

	// Monitors observe member routers (ascending). Clean routers replay
	// golden, which is invariant-clean, so skipping them is exact for
	// NoCAlert's combinational checkers; ForEVeR's RouterCycle is pure
	// per-cycle detection over the same signals and never flags a clean
	// router either.
	for _, m := range n.monitors {
		for _, id := range steppedIDs {
			r := n.routers[id]
			m.RouterCycle(r, r.Signals())
		}
	}

	f.stepNIs(t)

	for _, m := range n.monitors {
		m.EndCycle(t)
	}
	n.cycle = t + 1

	f.retire(t)
}

// stepGeneration runs the merged packet-generation phase: members draw
// their traffic RNG live (the generation process is fault-independent,
// so their draws necessarily equal golden's records), clean nodes
// replay the recorded events without touching any state. Either way the
// monitor announcements and the nextPkt/pktsOffered counters advance in
// golden's exact node order.
func (f *Frontier) stepGeneration(t int64) {
	n := f.n
	if !n.injecting || n.pktProb <= 0 {
		return
	}
	lo, hi := f.rec.seg(f.rec.genIdx, t)
	gi := lo
	for id, ni := range n.nis {
		if f.wasMember[id] {
			// Skip this node's record (the live draw reproduces it).
			for gi < hi && int(f.rec.gens[gi].node) == id {
				gi++
			}
			if !ni.gen.Bernoulli(n.pktProb) {
				continue
			}
			class := n.pickClass(ni.gen)
			p := &flit.Packet{
				ID:         n.nextPkt,
				Src:        id,
				Dest:       n.cfg.Pattern.Dest(n.mesh, id, ni.gen),
				Class:      class,
				Length:     n.rcfg.PacketLen(class),
				Payload:    ni.gen.Uint64(),
				InjectedAt: t,
			}
			n.nextPkt++
			n.pktsOffered++
			ni.enqueue(p)
			for _, m := range n.monitors {
				m.PacketInjected(t, id, p)
			}
			continue
		}
		for gi < hi && int(f.rec.gens[gi].node) == id {
			g := &f.rec.gens[gi]
			gi++
			// Reconstruct the packet for the monitors only; the NI's
			// queue and RNG stay untouched (they are stale by design).
			// Monitors read the packet during the call and do not
			// retain it, so one scratch value serves every event.
			f.genPkt = flit.Packet{
				ID:         g.id,
				Src:        id,
				Dest:       int(g.dest),
				Class:      int(g.class),
				Length:     n.rcfg.PacketLen(int(g.class)),
				Payload:    g.payload,
				InjectedAt: t,
			}
			n.nextPkt++
			n.pktsOffered++
			for _, m := range n.monitors {
				m.PacketInjected(t, id, &f.genPkt)
			}
		}
	}
}

// stepLinks runs the link-traversal phase: live delivery between
// members, golden replay from clean nodes into members, and the
// divergence comparison — every member emission toward a clean node is
// checked against the record, and any deviation (different value, extra
// signal, missing signal) joins the target.
func (f *Frontier) stepLinks(t int64, steppedIDs []int) {
	n := f.n
	f.pendF = f.pendF[:0]
	f.pendC = f.pendC[:0]

	for _, id := range steppedIDs {
		r := n.routers[id]
		for _, d := range r.Signals().Departures {
			dir := topology.Direction(d.OutPort)
			if dir == topology.Local {
				n.nis[id].flitArrived(d.Flit, t+1)
				continue
			}
			nb, ok := n.mesh.Neighbor(id, dir)
			if !ok {
				continue // fault-driven misroute off the fabric
			}
			if f.wasMember[nb] {
				n.routers[nb].StageArrival(dir.Opposite(), d.Flit)
				continue
			}
			f.pendF = append(f.pendF, pendFlit{src: id, dst: nb, port: dir.Opposite(), f: d.Flit})
		}
		for _, c := range r.Credits() {
			if c.Port == topology.Local {
				n.nis[id].creditArrived(c.VC, t+1)
				continue
			}
			nb, ok := n.mesh.Neighbor(id, c.Port)
			if !ok {
				continue
			}
			if f.wasMember[nb] {
				n.routers[nb].StageCredit(c.Port.Opposite(), c.VC)
				continue
			}
			f.addPendCredit(id, nb, c.Port.Opposite(), c.VC)
		}
	}

	// Compare member→clean traffic against the record and collect joins.
	lLo, lHi := f.rec.seg(f.rec.linkIdx, t)
	cLo, cHi := f.rec.seg(f.rec.credIdx, t)
	f.matchedF = growBools(f.matchedF, lHi-lLo)
	f.matchedC = growBools(f.matchedC, cHi-cLo)
	f.joinList = f.joinList[:0]

	for i := range f.pendF {
		pf := &f.pendF[i]
		found := false
		for k := lLo; k < lHi; k++ {
			l := &f.rec.links[k]
			if int(l.src) == pf.src && int(l.dst) == pf.dst {
				found = true
				f.matchedF[k-lLo] = true
				if l.flit != *pf.f {
					f.markJoin(pf.dst)
				}
				break
			}
		}
		if !found {
			f.markJoin(pf.dst)
		}
	}
	for i := range f.pendC {
		pc := &f.pendC[i]
		found := false
		for k := cLo; k < cHi; k++ {
			c := &f.rec.credits[k]
			if int(c.src) == pc.src && int(c.dst) == pc.dst {
				found = true
				f.matchedC[k-cLo] = true
				if c.mask != pc.mask {
					f.markJoin(pc.dst)
				}
				break
			}
		}
		if !found {
			f.markJoin(pc.dst)
		}
	}
	// Recorded golden emissions from a member that the live member did
	// not reproduce: the golden flow the target expected is missing.
	for k := lLo; k < lHi; k++ {
		l := &f.rec.links[k]
		if f.wasMember[l.src] && !f.wasMember[l.dst] && !f.matchedF[k-lLo] {
			f.markJoin(int(l.dst))
		}
	}
	for k := cLo; k < cHi; k++ {
		c := &f.rec.credits[k]
		if f.wasMember[c.src] && !f.wasMember[c.dst] && !f.matchedC[k-cLo] {
			f.markJoin(int(c.dst))
		}
	}

	// Golden replay: clean nodes' recorded emissions into members.
	for k := lLo; k < lHi; k++ {
		l := &f.rec.links[k]
		if !f.wasMember[l.src] && f.wasMember[l.dst] {
			n.routers[l.dst].StageArrival(topology.Direction(l.dstPort), n.arena.CloneOf(&l.flit))
		}
	}
	for k := cLo; k < cHi; k++ {
		c := &f.rec.credits[k]
		if !f.wasMember[c.src] && f.wasMember[c.dst] {
			stageCreditMask(n.routers[c.dst], topology.Direction(c.dstPort), c.mask)
		}
	}

	// Execute the joins: materialize each target by replaying it from
	// its valid boundary, then admit it. Joins touch only the joining
	// node, so their order is immaterial.
	for _, j := range f.joinList {
		f.replayNode(j, t)
		f.inF[j] = true
		f.size++
		f.joins++
		if f.size > f.peak {
			f.peak = f.size
		}
	}
}

// markJoin queues a node for frontier admission this cycle (idempotent
// within the cycle).
func (f *Frontier) markJoin(id int) {
	for _, j := range f.joinList {
		if j == id {
			return
		}
	}
	f.joinList = append(f.joinList, id)
}

// addPendCredit aggregates a member's live credit toward a clean node
// into the per-link VC mask.
func (f *Frontier) addPendCredit(src, dst int, port topology.Direction, vc int) {
	for i := len(f.pendC) - 1; i >= 0; i-- {
		pc := &f.pendC[i]
		if pc.src != src {
			break
		}
		if pc.dst == dst {
			pc.mask |= 1 << uint(vc)
			return
		}
	}
	f.pendC = append(f.pendC, pendCred{src: src, dst: dst, port: port, mask: 1 << uint(vc)})
}

// stepNIs runs the network-interface phase: members tick live (their
// ejections compared against the record to maintain the clean flag),
// clean nodes — including this cycle's joiners, whose cycle-t NI
// effects were computed from still-golden state and so equal the record
// — replay their recorded send strobes and ejections into the counters,
// the log and the monitors.
func (f *Frontier) stepNIs(t int64) {
	n := f.n
	sLo, sHi := f.rec.seg(f.rec.sendIdx, t)
	eLo, eHi := f.rec.seg(f.rec.ejectIdx, t)
	si, ei := sLo, eLo
	for id, ni := range n.nis {
		if f.wasMember[id] {
			f.ejScratch = f.ejScratch[:0]
			if ni.tickInject(t, n.routers[id], &f.ejScratch) {
				n.flitsInjected++
			}
			// A member's send strobe is live; skip golden's record of it.
			if si < sHi && int(f.rec.sends[si]) == id {
				si++
			}
			// Compare the member's live ejections with golden's.
			recLo := ei
			for ei < eHi && int(f.rec.ejects[ei].node) == id {
				ei++
			}
			if f.clean && ei-recLo != len(f.ejScratch) {
				f.clean = false
			}
			for i, fl := range f.ejScratch {
				if f.clean && f.rec.ejects[recLo+i].flit != *fl {
					f.clean = false
				}
				n.flitsEjected++
				n.ejections = append(n.ejections, Ejection{Node: id, Cycle: t, Flit: fl})
				for _, m := range n.monitors {
					m.FlitEjected(t, id, fl)
				}
			}
			continue
		}
		if si < sHi && int(f.rec.sends[si]) == id {
			si++
			n.flitsInjected++
		}
		for ei < eHi && int(f.rec.ejects[ei].node) == id {
			fl := n.arena.CloneOf(&f.rec.ejects[ei].flit)
			ei++
			n.flitsEjected++
			n.ejections = append(n.ejections, Ejection{Node: id, Cycle: t, Flit: fl})
			for _, m := range n.monitors {
				m.FlitEjected(t, id, fl)
			}
		}
	}
}

// retire removes members whose state has returned to golden. Only legal
// once the fault plane is quiescent: from then on the faulty network is
// an unfaulted deterministic system, so a node whose fold equals the
// recorded golden fold at the same boundary — inputs included, since
// the fold covers staged arrivals and credits — will replay golden
// exactly until a frontier neighbor diverges its inputs again (which is
// the join trigger).
func (f *Frontier) retire(t int64) {
	n := f.n
	if f.size == 0 || !n.FaultsQuiescent() {
		return
	}
	for _, id := range f.members {
		if !f.inF[id] {
			continue
		}
		if n.nodeFold(id) == f.rec.foldAt(t, id) {
			f.inF[id] = false
			f.validAt[id] = t + 1
			f.size--
		}
	}
}

// replayNode materializes node id's live state at boundary through+1 by
// replaying cycles [validAt, through] with golden inputs from the
// transcript. The node's own Local traffic loops back live; its
// emissions toward neighbors are discarded (their effects are already
// baked into the records the neighbors consumed); monitors see nothing
// (every observable event of these cycles was already announced from
// the records as they happened). On the final cycle the inbound staging
// overrides golden with the live emissions of current members — the
// divergent signals that triggered the join.
func (f *Frontier) replayNode(id int, through int64) {
	n := f.n
	ni := n.nis[id]
	r := n.routers[id]
	for s := f.validAt[id]; s <= through; s++ {
		if n.injecting && n.pktProb > 0 && ni.gen.Bernoulli(n.pktProb) {
			class := n.pickClass(ni.gen)
			dest := n.cfg.Pattern.Dest(n.mesh, id, ni.gen)
			payload := ni.gen.Uint64()
			p := &flit.Packet{
				ID:         f.genIDFor(s, id),
				Src:        id,
				Dest:       dest,
				Class:      class,
				Length:     n.rcfg.PacketLen(class),
				Payload:    payload,
				InjectedAt: s,
			}
			ni.enqueue(p)
		}
		r.BeginCycle(s)
		r.Evaluate(s)
		for _, d := range r.Signals().Departures {
			if topology.Direction(d.OutPort) == topology.Local {
				ni.flitArrived(d.Flit, s+1)
			}
		}
		for _, c := range r.Credits() {
			if c.Port == topology.Local {
				ni.creditArrived(c.VC, s+1)
			}
		}
		lLo, lHi := f.rec.seg(f.rec.linkIdx, s)
		cLo, cHi := f.rec.seg(f.rec.credIdx, s)
		if s < through {
			for k := lLo; k < lHi; k++ {
				l := &f.rec.links[k]
				if int(l.dst) == id {
					r.StageArrival(topology.Direction(l.dstPort), n.arena.CloneOf(&l.flit))
				}
			}
			for k := cLo; k < cHi; k++ {
				c := &f.rec.credits[k]
				if int(c.dst) == id {
					stageCreditMask(r, topology.Direction(c.dstPort), c.mask)
				}
			}
		} else {
			// Final cycle: golden inputs from clean neighbors, live
			// inputs from members (whatever they actually emitted, which
			// is what diverged).
			for k := lLo; k < lHi; k++ {
				l := &f.rec.links[k]
				if int(l.dst) == id && !f.wasMember[l.src] {
					r.StageArrival(topology.Direction(l.dstPort), n.arena.CloneOf(&l.flit))
				}
			}
			for k := cLo; k < cHi; k++ {
				c := &f.rec.credits[k]
				if int(c.dst) == id && !f.wasMember[c.src] {
					stageCreditMask(r, topology.Direction(c.dstPort), c.mask)
				}
			}
			for i := range f.pendF {
				pf := &f.pendF[i]
				if pf.dst == id {
					r.StageArrival(pf.port, pf.f)
				}
			}
			for i := range f.pendC {
				pc := &f.pendC[i]
				if pc.dst == id {
					stageCreditMask(r, pc.port, pc.mask)
				}
			}
		}
		f.ejScratch = f.ejScratch[:0]
		ni.tickInject(s, r, &f.ejScratch)
		// Replayed ejections and send strobes are discarded: they were
		// logged and counted from the records when cycle s completed.
	}
}

// genIDFor returns the packet id golden assigned to node's generation
// at cycle s. A replaying node's Bernoulli hit must have a matching
// record — generation is fault-independent — so a miss means the
// transcript and the replay disagree about the RNG stream.
func (f *Frontier) genIDFor(s int64, node int) uint64 {
	lo, hi := f.rec.seg(f.rec.genIdx, s)
	for k := lo; k < hi; k++ {
		if int(f.rec.gens[k].node) == node {
			return f.rec.gens[k].id
		}
	}
	panic(fmt.Sprintf("sim: replay of node %d drew a generation at cycle %d with no golden record", node, s))
}

// MaterializeAll restores every non-member node to full live state by
// cloning it from wend, the golden network at the window-end boundary —
// legal because a clean node's state and inputs are golden's by the
// frontier invariant. Members keep their live (divergent) state; the
// network-level counters were maintained cycle by cycle and are not
// touched. After this the network is an ordinary full simulation again
// (the campaign's drain and horizon phases step it normally).
func (f *Frontier) MaterializeAll(wend *Network) {
	n := f.n
	if wend.cycle != n.cycle {
		panic(fmt.Sprintf("sim: materialize from golden boundary %d at live cycle %d", wend.cycle, n.cycle))
	}
	for i := range n.routers {
		if f.inF[i] {
			continue
		}
		n.routers[i] = wend.routers[i].CloneInto(n.routers[i], n.plane, n.arena)
		n.nis[i] = wend.nis[i].cloneInto(n.nis[i], n.arena)
	}
}

// stageCreditMask stages one credit per set VC bit.
func stageCreditMask(r *router.Router, port topology.Direction, mask uint32) {
	for mask != 0 {
		v := bits.TrailingZeros32(mask)
		mask &^= 1 << uint(v)
		r.StageCredit(port, v)
	}
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}
