// Package sim assembles routers, links and network interfaces into a
// cycle-accurate mesh NoC and drives the simulation loop. It plays the
// role GARNET plays in the paper: the substrate the NoCAlert checkers,
// the fault-injection campaign and the ForEVeR baseline all plug into.
package sim

import (
	"fmt"

	"nocalert/internal/fault"
	"nocalert/internal/flit"
	"nocalert/internal/rng"
	"nocalert/internal/router"
	"nocalert/internal/soa"
	"nocalert/internal/topology"
	"nocalert/internal/traffic"
)

// Config describes a simulation: the router micro-architecture, the
// traffic workload and the random seed.
type Config struct {
	// Router is the per-router micro-architecture.
	Router router.Config
	// Pattern is the traffic pattern; nil means uniform random.
	Pattern traffic.Pattern
	// InjectionRate is the offered load in flits per node per cycle.
	InjectionRate float64
	// ClassWeights optionally biases packet generation among message
	// classes; nil means equal weights.
	ClassWeights []float64
	// Seed seeds all per-node generators.
	Seed uint64
	// DisableSoA selects the reference sweep engine: routers sweep the
	// full VC range every cycle and the network steps every router, with
	// no activity-mask shortcuts. Storage is identical either way (the
	// structure-of-arrays state), so both engines produce bit-identical
	// simulations; the reference engine exists as the comparison baseline
	// for the identity gates. Campaigns thread the -no-soa flag here.
	DisableSoA bool
}

// Ejection is one flit delivered to a node's NI, the unit of the
// golden-reference log.
type Ejection struct {
	Node  int
	Cycle int64
	Flit  *flit.Flit
}

// Network is a mesh NoC under simulation.
type Network struct {
	cfg  Config
	rcfg *router.Config
	mesh topology.Mesh

	// st owns every router's and NI's register file as flat contiguous
	// arrays; routers and NIs hold per-node views into it. Forks bulk-
	// copy it; the step loop's activity masks live in it.
	st      *soa.State
	routers []*router.Router
	nis     []*NI
	// soaOff mirrors Config.DisableSoA (copied on clone): when set, Step
	// visits every router every cycle instead of skipping inert ones.
	soaOff bool

	monitors []Monitor
	plane    *fault.Plane

	cycle     int64
	nextPkt   uint64
	injecting bool
	pktProb   float64

	flitsInjected int64
	flitsEjected  int64
	pktsOffered   int64

	ejections []Ejection

	// scratch reused across cycles
	ejectScratch []*flit.Flit
	// steppedScratch holds the routers actually stepped this cycle; link
	// traversal and monitor visits iterate it (a skipped router's signal
	// record and credit staging are stale).
	steppedScratch []*router.Router

	// arena backs flit copies when this network is a CloneInto target;
	// it is reset and refilled on every re-fork.
	arena *flit.Arena
	// rec, when non-nil, receives the golden signal transcript of every
	// Step (see record.go). Attached to the golden continuation only;
	// never copied by Clone/CloneInto.
	rec *Recording
	// planeInert caches Plane.Inert once it turns true (the property is
	// monotone), so the per-cycle fast-path check is a bool load.
	planeInert bool
	// planeQuiescent likewise caches Plane.Quiescent (also monotone).
	planeQuiescent bool
}

// New builds a network from the configuration. The fault plane may be
// nil for fault-free operation.
func New(cfg Config, plane *fault.Plane) (*Network, error) {
	if err := cfg.Router.Validate(); err != nil {
		return nil, err
	}
	if cfg.InjectionRate < 0 {
		return nil, fmt.Errorf("sim: negative injection rate %g", cfg.InjectionRate)
	}
	if cfg.Pattern == nil {
		cfg.Pattern = traffic.Uniform{}
	}
	n := &Network{cfg: cfg, mesh: cfg.Router.Mesh, plane: plane, injecting: true, nextPkt: 1, soaOff: cfg.DisableSoA}
	rcfg := cfg.Router
	n.rcfg = &rcfg
	nodes := n.mesh.Nodes()
	n.st = soa.NewState(soa.Layout{R: nodes, P: router.P, V: rcfg.VCs})
	n.routers = make([]*router.Router, nodes)
	n.nis = make([]*NI, nodes)
	for i := 0; i < nodes; i++ {
		n.routers[i] = router.NewInState(i, n.rcfg, plane, n.st.View(i))
		n.routers[i].SetReferenceSweep(cfg.DisableSoA)
		nic, nif := n.st.NIView(i)
		n.nis[i] = newNI(i, n.rcfg, cfg.Seed, nic, nif)
	}
	n.pktProb = cfg.InjectionRate / n.meanPacketLen()
	return n, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(cfg Config, plane *fault.Plane) *Network {
	n, err := New(cfg, plane)
	if err != nil {
		panic(err)
	}
	return n
}

func (n *Network) meanPacketLen() float64 {
	w := n.cfg.ClassWeights
	total, weight := 0.0, 0.0
	for c := 0; c < n.rcfg.Classes; c++ {
		wc := 1.0
		if c < len(w) {
			wc = w[c]
		}
		total += wc * float64(n.rcfg.PacketLen(c))
		weight += wc
	}
	if weight == 0 {
		return float64(n.rcfg.PacketLen(0))
	}
	return total / weight
}

// Mesh returns the topology.
func (n *Network) Mesh() topology.Mesh { return n.mesh }

// RouterConfig returns the shared router configuration.
func (n *Network) RouterConfig() *router.Config { return n.rcfg }

// Router returns the router at node id.
func (n *Network) Router(id int) *router.Router { return n.routers[id] }

// NI returns the network interface at node id.
func (n *Network) NI(id int) *NI { return n.nis[id] }

// Cycle returns the next cycle to be simulated (0 before any Step).
func (n *Network) Cycle() int64 { return n.cycle }

// Ejections returns the full ejection log since cycle 0.
func (n *Network) Ejections() []Ejection { return n.ejections }

// FlitsInjected returns the number of flits that have entered the
// network fabric (NI → router).
func (n *Network) FlitsInjected() int64 { return n.flitsInjected }

// FlitsEjected returns the number of flits delivered to NIs.
func (n *Network) FlitsEjected() int64 { return n.flitsEjected }

// InFlight estimates the flits inside the fabric. Fault-induced drops
// and duplications bias it, which is why campaign runs use a fixed
// horizon instead.
func (n *Network) InFlight() int64 { return n.flitsInjected - n.flitsEjected }

// PacketsOffered returns the number of packets generated so far.
func (n *Network) PacketsOffered() int64 { return n.pktsOffered }

// AttachMonitor registers a monitor for all subsequent cycles.
func (n *Network) AttachMonitor(m Monitor) { n.monitors = append(n.monitors, m) }

// Monitors returns the attached monitors.
func (n *Network) Monitors() []Monitor { return n.monitors }

// StopInjection stops generating new packets (drain mode). Packets
// already queued at NIs keep streaming.
func (n *Network) StopInjection() { n.injecting = false }

// ResumeInjection re-enables packet generation.
func (n *Network) ResumeInjection() { n.injecting = true }

// InjectPacket queues one directed packet at src's NI, bypassing the
// random traffic process (used for targeted tests and for recovery
// retransmissions). It returns the packet id. The packet flows through
// the normal injection path and is announced to monitors like any
// other.
func (n *Network) InjectPacket(src, dest, class int) uint64 {
	if src < 0 || src >= len(n.nis) || dest < 0 || dest >= len(n.nis) {
		panic(fmt.Sprintf("sim: InjectPacket with invalid nodes %d->%d", src, dest))
	}
	if class < 0 || class >= n.rcfg.Classes {
		class = 0
	}
	// The payload is derived from the packet id rather than drawn from
	// the NI's traffic generator: directed injections must not perturb
	// the background traffic stream (campaign forks and A/B runs rely
	// on replay determinism).
	p := &flit.Packet{
		ID:         n.nextPkt,
		Src:        src,
		Dest:       dest,
		Class:      class,
		Length:     n.rcfg.PacketLen(class),
		Payload:    n.nextPkt * 0x9e3779b97f4a7c15,
		InjectedAt: n.cycle,
	}
	n.nextPkt++
	n.pktsOffered++
	n.nis[src].enqueue(p)
	for _, m := range n.monitors {
		m.PacketInjected(n.cycle, src, p)
	}
	return p.ID
}

// Step simulates one cycle.
func (n *Network) Step() {
	t := n.cycle

	// Packet generation (per-node Bernoulli process).
	if n.injecting && n.pktProb > 0 {
		for id, ni := range n.nis {
			if !ni.gen.Bernoulli(n.pktProb) {
				continue
			}
			class := n.pickClass(ni.gen)
			p := &flit.Packet{
				ID:         n.nextPkt,
				Src:        id,
				Dest:       n.cfg.Pattern.Dest(n.mesh, id, ni.gen),
				Class:      class,
				Length:     n.rcfg.PacketLen(class),
				Payload:    ni.gen.Uint64(),
				InjectedAt: t,
			}
			n.nextPkt++
			n.pktsOffered++
			ni.enqueue(p)
			if n.rec != nil {
				n.rec.recordGen(id, p)
			}
			for _, m := range n.monitors {
				m.PacketInjected(t, id, p)
			}
		}
	}

	// Router pipelines. With the SoA engine and no live fault, routers
	// whose activity masks, staging and ST latches are all clear are
	// skipped outright: stepping one is a provable no-op (no state write,
	// no signal, no arbiter pointer movement), and at drain/low load most
	// of the mesh is in that state. A live fault window can conjure
	// activity out of an idle router (a register upset needs BeginCycle
	// to apply), so skipping is gated off while the plane is live.
	stepped := n.steppedScratch[:0]
	if !n.soaOff && !n.plane.LiveAt(t) {
		for _, r := range n.routers {
			if r.Inert() {
				continue
			}
			r.BeginCycle(t)
			r.Evaluate(t)
			stepped = append(stepped, r)
		}
	} else {
		for _, r := range n.routers {
			r.BeginCycle(t)
			r.Evaluate(t)
		}
		stepped = append(stepped, n.routers...)
	}
	n.steppedScratch = stepped

	// Link traversal: distribute departures and credits for cycle t+1.
	// Only stepped routers are visited — a skipped router's signal record
	// and credit staging are leftovers from the last cycle it ran.
	for _, r := range stepped {
		id := r.ID()
		for _, d := range r.Signals().Departures {
			dir := topology.Direction(d.OutPort)
			if dir == topology.Local {
				n.nis[id].flitArrived(d.Flit, t+1)
				continue
			}
			if nb, ok := n.mesh.Neighbor(id, dir); ok {
				n.routers[nb].StageArrival(dir.Opposite(), d.Flit)
				if n.rec != nil {
					n.rec.recordLink(id, nb, int(dir.Opposite()), d.Flit)
				}
			}
			// A departure through a port the mesh does not have (a
			// fault-driven misroute at an edge router) falls off the
			// fabric: the flit is lost.
		}
		for _, c := range r.Credits() {
			if c.Port == topology.Local {
				n.nis[id].creditArrived(c.VC, t+1)
				continue
			}
			if nb, ok := n.mesh.Neighbor(id, c.Port); ok {
				n.routers[nb].StageCredit(c.Port.Opposite(), c.VC)
				if n.rec != nil {
					n.rec.recordCredit(id, nb, int(c.Port.Opposite()), c.VC)
				}
			}
		}
	}

	// Monitors observe the completed cycle. Skipped routers are not
	// visited: every monitor is vacuous on an inert router's (empty)
	// signal record, so the observation stream is identical to the
	// reference engine's.
	for _, m := range n.monitors {
		for _, r := range stepped {
			m.RouterCycle(r, r.Signals())
		}
	}

	// Network interfaces.
	for id, ni := range n.nis {
		n.ejectScratch = n.ejectScratch[:0]
		sent := ni.tickInject(t, n.routers[id], &n.ejectScratch)
		if sent {
			n.flitsInjected++
			if n.rec != nil {
				n.rec.recordSend(id)
			}
		}
		for _, f := range n.ejectScratch {
			n.flitsEjected++
			n.ejections = append(n.ejections, Ejection{Node: id, Cycle: t, Flit: f})
			if n.rec != nil {
				n.rec.recordEject(id, f)
			}
			for _, m := range n.monitors {
				m.FlitEjected(t, id, f)
			}
		}
	}

	for _, m := range n.monitors {
		m.EndCycle(t)
	}
	n.cycle = t + 1
	if n.rec != nil {
		n.rec.closeCycle(n)
	}
}

func (n *Network) pickClass(g *rng.PCG) int {
	if n.rcfg.Classes == 1 {
		return 0
	}
	w := n.cfg.ClassWeights
	if len(w) == 0 {
		return g.Intn(n.rcfg.Classes)
	}
	total := 0.0
	for c := 0; c < n.rcfg.Classes; c++ {
		if c < len(w) {
			total += w[c]
		}
	}
	if total <= 0 {
		return g.Intn(n.rcfg.Classes)
	}
	x := g.Float64() * total
	for c := 0; c < n.rcfg.Classes; c++ {
		if c < len(w) {
			x -= w[c]
		}
		if x < 0 {
			return c
		}
	}
	return n.rcfg.Classes - 1
}

// Run simulates the given number of cycles.
func (n *Network) Run(cycles int64) {
	for i := int64(0); i < cycles; i++ {
		n.Step()
	}
}

// Drain stops injection and runs until the fabric is empty or deadline
// cycles have elapsed, returning true if the network drained.
func (n *Network) Drain(deadline int64) bool {
	n.StopInjection()
	end := n.cycle + deadline
	for n.cycle < end {
		if n.InFlight() <= 0 && n.allNIsIdle() {
			return true
		}
		n.Step()
	}
	return n.InFlight() <= 0 && n.allNIsIdle()
}

func (n *Network) allNIsIdle() bool {
	for _, ni := range n.nis {
		if len(ni.queue) > 0 || len(ni.cur) > 0 || len(ni.inbox) > 0 {
			return false
		}
	}
	return true
}

// Quiet reports whether the fabric is empty and every NI is idle — the
// condition Drain polls for. Exposed so campaign loops that interleave
// their own per-cycle probes with the drain can reproduce Drain's exit
// condition exactly.
func (n *Network) Quiet() bool {
	return n.InFlight() <= 0 && n.allNIsIdle()
}

// SetPlane swaps the fault plane on this network and all its routers
// (used when a campaign fork replays a fault-free gap before arming the
// run's faults). The monotone plane caches are reset so the new plane's
// liveness is re-evaluated from the current cycle. Only meaningful at a
// cycle boundary, like Clone.
func (n *Network) SetPlane(p *fault.Plane) {
	n.plane = p
	n.planeInert = false
	n.planeQuiescent = false
	for _, r := range n.routers {
		r.SetPlane(p)
	}
}

// ResetEjections truncates the ejection log without touching the
// flit-ejected counter. Campaign forks that replay a fault-free gap
// call this at the injection cycle so the log — like a fresh CloneInto
// product's — holds post-injection ejections only, while the counters
// keep their absolute values for fingerprint comparisons.
func (n *Network) ResetEjections() {
	n.ejections = n.ejections[:0]
}

// ApproxFootprintBytes estimates the memory one full-state snapshot of
// this network retains: flit-slot capacity for every router buffer plus
// per-router and per-NI bookkeeping. It is a deterministic,
// configuration-derived capacity estimate (what the snapshot ring
// accounts against campaign_snapshot_bytes), not a heap measurement.
func (n *Network) ApproxFootprintBytes() int64 {
	const (
		flitBytes   = 96  // flit.Flit plus arena/slice overhead
		routerFixed = 640 // pipeline registers, arbiters, signal scratch
		niFixed     = 256 // credit bookkeeping, RNG, queue headers
	)
	nodes := int64(len(n.routers))
	slots := int64(router.P) * int64(n.rcfg.VCs) * int64(n.rcfg.BufDepth)
	perRouter := slots*flitBytes + routerFixed
	perNI := int64(n.rcfg.VCs)*32 + niFixed
	total := nodes * (perRouter + perNI)
	// An attached golden signal transcript is part of this network's
	// retained state; campaigns surface it through the same accounting
	// the snapshot ring uses.
	total += n.rec.ApproxFootprintBytes()
	return total
}

// FaultsInert reports whether the attached fault plane can no longer
// influence this network from the current cycle onward — every fault
// window has closed without corrupting a consulted signal (see
// fault.Plane.Inert). Campaigns poll this after each Step to
// short-circuit runs whose remainder is bit-identical to the fault-free
// golden continuation. The property is monotone, so the result is
// cached once true.
func (n *Network) FaultsInert() bool {
	if !n.planeInert && n.plane.Inert(n.cycle) {
		n.planeInert = true
	}
	return n.planeInert
}

// newCloneShell builds an empty network whose routers and NIs are
// clone targets bound to a fresh shared SoA state of this network's
// geometry; Clone and CloneInto fill it in.
func (n *Network) newCloneShell() *Network {
	c := &Network{}
	c.st = soa.NewState(soa.Layout{R: len(n.routers), P: router.P, V: n.rcfg.VCs})
	c.routers = make([]*router.Router, len(n.routers))
	c.nis = make([]*NI, len(n.nis))
	for i := range c.routers {
		c.routers[i] = router.NewCloneTarget(n.rcfg, c.st.View(i))
		nic, nif := c.st.NIView(i)
		c.nis[i] = niCloneTarget(nic, nif)
	}
	return c
}

// copyScalars copies the network-level scalar state from n into c.
func (c *Network) copyScalars(n *Network, plane *fault.Plane) {
	c.cfg = n.cfg
	c.rcfg = n.rcfg
	c.mesh = n.mesh
	c.plane = plane
	c.soaOff = n.soaOff
	c.planeInert = false
	c.planeQuiescent = false
	c.cycle = n.cycle
	c.nextPkt = n.nextPkt
	c.injecting = n.injecting
	c.pktProb = n.pktProb
	c.flitsInjected = n.flitsInjected
	c.flitsEjected = n.flitsEjected
	c.pktsOffered = n.pktsOffered
}

// Clone deep-copies the network for a forked continuation under the
// given fault plane (nil for a fault-free fork). Attached monitors are
// carried over only when they implement CloneableMonitor.
func (n *Network) Clone(plane *fault.Plane) *Network {
	c := n.newCloneShell()
	c.copyScalars(n, plane)
	for i, r := range n.routers {
		r.CloneInto(c.routers[i], plane, nil)
	}
	for i, ni := range n.nis {
		ni.cloneInto(c.nis[i], nil)
	}
	c.ejections = append([]Ejection(nil), n.ejections...)
	for _, m := range n.monitors {
		if cm, ok := m.(CloneableMonitor); ok {
			c.monitors = append(c.monitors, cm.CloneMonitor())
		}
	}
	return c
}

// CloneInto is Clone reusing dst's allocations: routers, NIs, buffers
// and arbiters from a previous fork are overwritten in place, and all
// flit copies go through a per-clone arena that is recycled on every
// call. dst must be a previous CloneInto product of this network (or
// nil, in which case a fresh reusable clone is allocated); the caller
// must be done with dst's previous contents, including any flits it
// handed out. Returns dst.
//
// Two deliberate differences from Clone: the copy's ejection log starts
// empty (every pre-fork ejection happened strictly before the fork
// cycle, and campaign comparisons only consider post-fork ejections),
// and monitors are re-cloned into a reused slice. Campaign workers use
// CloneInto to pay the per-fork allocation storm once per worker
// instead of once per fault.
func (n *Network) CloneInto(dst *Network, plane *fault.Plane) *Network {
	c := dst
	if c == nil {
		c = n.newCloneShell()
		c.arena = &flit.Arena{}
	}
	c.arena.Reset()
	c.copyScalars(n, plane)
	for i, r := range n.routers {
		c.routers[i] = r.CloneInto(c.routers[i], plane, c.arena)
	}
	for i, ni := range n.nis {
		c.nis[i] = ni.cloneInto(c.nis[i], c.arena)
	}
	c.ejections = c.ejections[:0]
	c.ejectScratch = c.ejectScratch[:0]
	c.monitors = c.monitors[:0]
	for _, m := range n.monitors {
		if cm, ok := m.(CloneableMonitor); ok {
			c.monitors = append(c.monitors, cm.CloneMonitor())
		}
	}
	return c
}
