package sim

import (
	"fmt"
	"testing"

	"nocalert/internal/fault"
	"nocalert/internal/rng"
	"nocalert/internal/router"
	"nocalert/internal/topology"
)

// frontierLockstep is the differential gate for the divergence-frontier
// engine. It builds a golden network, runs it to the fork boundary,
// forks two faulty copies under clones of the same plane — one stepped
// as a full simulation, one driven by a Frontier over the golden
// transcript — then records the golden window and steps both faulty
// runs in lockstep. At every cycle boundary:
//
//   - a frontier member's per-node state fold must equal the reference
//     run's fold for the same node (the member is simulating live, so
//     it must track the full simulation exactly), and
//   - a node outside the frontier must, in the REFERENCE run, still
//     hold golden state (its fold equals the transcript's) — i.e. the
//     frontier never misses a divergence, which is the whole soundness
//     claim;
//
// plus the global counters must match. At window end the frontier run
// is materialized from the golden window-end state and must reach full
// fingerprint and ejection-log identity with the reference run.
func frontierLockstep(t *testing.T, w, h int, rate float64, seed uint64, plane *fault.Plane, fork, window int64) {
	t.Helper()
	cfg := Config{Router: router.Default(topology.NewMesh(w, h)), InjectionRate: rate, Seed: seed}
	gold := MustNew(cfg, nil)
	for gold.Cycle() < fork {
		gold.Step()
	}
	ref := gold.CloneInto(nil, plane.Clone())
	fn := gold.CloneInto(nil, plane.Clone())

	gold.StartRecording(int(window))
	for i := int64(0); i < window; i++ {
		gold.Step()
	}
	rec := gold.StopRecording()
	wend := gold.CloneInto(nil, nil)

	var seeds []int
	for _, ft := range plane.Faults() {
		seeds = append(seeds, ft.Site.Router)
	}
	fr := NewFrontier(fn, rec, seeds)

	for i := int64(0); i < window; i++ {
		ref.Step()
		fr.Step()
		tb := fork + i // the cycle just stepped
		for id := range fn.routers {
			if fr.inF[id] {
				if got, want := fn.nodeFold(id), ref.nodeFold(id); got != want {
					t.Fatalf("cycle %d node %d: frontier member diverged from reference (%#x vs %#x)", tb, id, got, want)
				}
			} else if got, want := ref.nodeFold(id), rec.foldAt(tb, id); got != want {
				t.Fatalf("cycle %d node %d: reference diverged from golden outside the frontier (%#x vs %#x) — missed join", tb, id, got, want)
			}
		}
		if fn.FlitsInjected() != ref.FlitsInjected() || fn.FlitsEjected() != ref.FlitsEjected() ||
			fn.NextPacketID() != ref.NextPacketID() || len(fn.Ejections()) != len(ref.Ejections()) {
			t.Fatalf("cycle %d: counters diverged (inj %d/%d, ej %d/%d, pkt %d/%d)", tb,
				fn.FlitsInjected(), ref.FlitsInjected(), fn.FlitsEjected(), ref.FlitsEjected(),
				fn.NextPacketID(), ref.NextPacketID())
		}
	}

	fr.MaterializeAll(wend)
	if got, want := fn.Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("after materialization: fingerprints differ (%#x vs %#x), frontier peak %d", got, want, fr.Peak())
	}
	if !ejectionsEqual(fn.Ejections(), ref.Ejections()) {
		t.Fatal("frontier and reference runs produced different ejection logs")
	}
}

// TestFrontierLockstepUnderFaults pins the frontier engine against the
// full simulation under a fixed injected fault plane on both mesh
// sizes, with the fault window opening shortly after the fork.
func TestFrontierLockstepUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("lockstep differential test in -short mode")
	}
	for _, tc := range []struct {
		w, h int
		rate float64
	}{
		{4, 4, 0.12},
		{8, 8, 0.05},
	} {
		t.Run(fmt.Sprintf("%dx%d", tc.w, tc.h), func(t *testing.T) {
			p := fault.Params{Mesh: topology.NewMesh(tc.w, tc.h), VCs: 4, BufDepth: router.Default(topology.NewMesh(tc.w, tc.h)).BufDepth}
			g := rng.New(7, 1)
			plane := samplePlane(p, g, 8, 130)
			frontierLockstep(t, tc.w, tc.h, tc.rate, 3, plane, 120, 400)
		})
	}
}

// TestFrontierLockstepRandomPlanes fuzzes the frontier engine with
// seeded random fault planes — random sites, bits and temporal types —
// requiring the per-node fold identities and final fingerprint match on
// every iteration. Transient planes exercise retirement (the frontier
// shrinks back once the divergent wave washes out); permanent and
// intermittent planes exercise monotone growth and the missed-join
// detector.
func TestFrontierLockstepRandomPlanes(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz-style differential test in -short mode")
	}
	p := fault.Params{Mesh: topology.NewMesh(4, 4), VCs: 4, BufDepth: router.Default(topology.NewMesh(4, 4)).BufDepth}
	iters := 12
	for it := 0; it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("plane%02d", it), func(t *testing.T) {
			g := rng.New(uint64(300+it), 9)
			plane := samplePlane(p, g, 3+it%4, 45)
			frontierLockstep(t, 4, 4, 0.15, uint64(it)+11, plane, 40, 250)
		})
	}
}
