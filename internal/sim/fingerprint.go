package sim

import (
	"nocalert/internal/soa"
	"nocalert/internal/statehash"
)

// foldState folds the NI's mutable state into a state-fingerprint
// accumulator. The enumeration mirrors cloneInto exactly: queued
// packets, the streaming flit window, credit bookkeeping, in-flight
// link traffic and the traffic generator's RNG state.
func (ni *NI) foldState(h uint64) uint64 {
	h = statehash.FoldInt(h, ni.curVC)
	h = statehash.FoldInt(h, len(ni.queue))
	for _, p := range ni.queue {
		h = p.FoldState(h)
	}
	h = statehash.FoldInt(h, len(ni.cur))
	for _, f := range ni.cur {
		h = f.FoldState(h)
	}
	for v := range ni.outCredits {
		fl := ni.outFlags[v]
		h = statehash.FoldBool(h, fl&soa.NIFree != 0)
		h = statehash.FoldInt(h, int(ni.outCredits[v]))
		h = statehash.FoldBool(h, fl&soa.NITailSent != 0)
	}
	h = statehash.FoldInt(h, len(ni.inbox))
	for _, a := range ni.inbox {
		h = a.f.FoldState(h)
		h = statehash.Fold(h, uint64(a.cycle))
	}
	h = statehash.FoldInt(h, len(ni.credits))
	for _, c := range ni.credits {
		h = statehash.FoldInt(h, c.vc)
		h = statehash.Fold(h, uint64(c.cycle))
	}
	return ni.gen.FoldState(h)
}

// Fingerprint folds every piece of mutable network state — routers
// (pipeline registers, buffers, arbiters, in-flight link flits), NIs
// (queues, credit state, RNG streams) and the global counters — into
// one 64-bit hash. Two networks built from the same configuration whose
// fingerprints agree at a cycle boundary will, up to hash collision,
// produce identical simulations from that boundary on: the enumeration
// covers exactly the state CloneInto copies, which is by construction
// everything the next Step reads. Fault campaigns compare a faulty
// run's fingerprint against the golden run's recorded per-cycle
// fingerprints to detect reconvergence and end masked-fault runs early.
//
// Like cloning, the fingerprint is only meaningful at a cycle boundary.
// The ejection log is deliberately excluded — callers compare ejection
// histories separately (they are observations, not state the next cycle
// reads).
func (n *Network) Fingerprint() uint64 {
	h := statehash.Seed
	h = statehash.Fold(h, uint64(n.cycle))
	return n.foldBody(h)
}

// StaticFingerprint is Fingerprint without the cycle fold: two
// consecutive cycle boundaries of the same network agree iff no mutable
// state changed across the step. Every stamped queue in the simulator
// (NI inboxes, credit links, router pipeline stages) carries at most
// one cycle of lookahead, so two identical consecutive boundary states
// are a fixed point — no future Step can ever change the state again.
// Campaign fast-forward uses this to synthesize the remainder of a
// deadlocked drain or an idle ForEVeR horizon instead of stepping it.
func (n *Network) StaticFingerprint() uint64 {
	return n.foldBody(statehash.Seed)
}

func (n *Network) foldBody(h uint64) uint64 {
	h = statehash.Fold(h, n.nextPkt)
	h = statehash.FoldBool(h, n.injecting)
	h = statehash.Fold(h, uint64(n.flitsInjected))
	h = statehash.Fold(h, uint64(n.flitsEjected))
	h = statehash.Fold(h, uint64(n.pktsOffered))
	for _, r := range n.routers {
		h = r.FoldState(h)
	}
	for _, ni := range n.nis {
		h = ni.foldState(h)
	}
	return h
}

// NextPacketID returns the id the next generated packet will take —
// one of the cheap counters campaigns compare before paying for a full
// Fingerprint.
func (n *Network) NextPacketID() uint64 { return n.nextPkt }

// FaultsQuiescent reports whether the attached fault plane can no
// longer fire from the current cycle onward, regardless of whether it
// already corrupted state (see fault.Plane.Quiescent). This is the gate
// for reconvergence detection: once quiescent, the faulty network is an
// unfaulted deterministic system whose state either reconverges with
// the golden run or diverges forever. Monotone, so cached once true.
func (n *Network) FaultsQuiescent() bool {
	if !n.planeQuiescent && n.plane.Quiescent(n.cycle) {
		n.planeQuiescent = true
	}
	return n.planeQuiescent
}
