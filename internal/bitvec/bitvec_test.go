package bitvec

import (
	"testing"
	"testing/quick"
)

func TestSetGetClearFlip(t *testing.T) {
	var v Vec
	v = v.Set(3)
	if !v.Get(3) || v.Get(2) {
		t.Fatalf("Set/Get broken: %s", v)
	}
	v = v.Flip(3)
	if v.Get(3) {
		t.Fatal("Flip did not clear")
	}
	v = v.Flip(0).Set(5)
	if !v.Get(0) || !v.Get(5) {
		t.Fatal("Flip/Set broken")
	}
	v = v.Clear(0)
	if v.Get(0) {
		t.Fatal("Clear broken")
	}
}

func TestNew(t *testing.T) {
	v := New(0, 2, 4)
	if v != 0b10101 {
		t.Fatalf("New(0,2,4) = %s", v)
	}
	if New() != 0 {
		t.Fatal("New() should be zero")
	}
}

func TestCountAndBits(t *testing.T) {
	v := New(1, 3, 7, 30)
	if v.Count() != 4 {
		t.Fatalf("Count = %d", v.Count())
	}
	bits := v.Bits()
	want := []int{1, 3, 7, 30}
	if len(bits) != len(want) {
		t.Fatalf("Bits = %v", bits)
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("Bits = %v, want %v", bits, want)
		}
	}
}

func TestOneHot(t *testing.T) {
	cases := []struct {
		v           Vec
		atMost, one bool
	}{
		{0, true, false},
		{New(0), true, true},
		{New(7), true, true},
		{New(0, 1), false, false},
		{New(2, 9, 17), false, false},
	}
	for _, c := range cases {
		if got := c.v.AtMostOneHot(); got != c.atMost {
			t.Errorf("%s.AtMostOneHot() = %v", c.v, got)
		}
		if got := c.v.OneHot(); got != c.one {
			t.Errorf("%s.OneHot() = %v", c.v, got)
		}
	}
}

func TestFirst(t *testing.T) {
	if Vec(0).First() != -1 {
		t.Fatal("First of zero vector should be -1")
	}
	if New(5, 9).First() != 5 {
		t.Fatal("First should return lowest set bit")
	}
}

func TestMaskAndInWidth(t *testing.T) {
	if Mask(0) != 0 || Mask(3) != 0b111 || Mask(32) != Vec(^uint32(0)) {
		t.Fatal("Mask broken")
	}
	if !New(2).InWidth(3) || New(3).InWidth(3) {
		t.Fatal("InWidth broken")
	}
}

func TestString(t *testing.T) {
	if Vec(0).String() != "0" {
		t.Fatalf("zero renders %q", Vec(0).String())
	}
	if New(0, 2).String() != "101" {
		t.Fatalf("101 renders %q", New(0, 2).String())
	}
}

func TestIndexPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Vec(0).Set(-1) },
		func() { Vec(0).Get(32) },
		func() { Mask(33) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: Count equals the length of Bits, and every index in Bits is
// set.
func TestCountBitsAgree(t *testing.T) {
	f := func(raw uint32) bool {
		v := Vec(raw)
		bits := v.Bits()
		if len(bits) != v.Count() {
			return false
		}
		for _, b := range bits {
			if !v.Get(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AtMostOneHot agrees with Count <= 1.
func TestOneHotAgreesWithCount(t *testing.T) {
	f := func(raw uint32) bool {
		v := Vec(raw)
		return v.AtMostOneHot() == (v.Count() <= 1) && v.OneHot() == (v.Count() == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Flip is an involution.
func TestFlipInvolution(t *testing.T) {
	f := func(raw uint32, bit uint8) bool {
		v := Vec(raw)
		b := int(bit % 32)
		return v.Flip(b).Flip(b) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
