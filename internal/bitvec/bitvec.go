// Package bitvec provides the small fixed-width bit vectors used for
// request/grant signals, crossbar control and read/write strobes. NoC
// control vectors are narrow (≤ ports or ≤ VCs wide), so a uint32-backed
// value type keeps them allocation-free, trivially cloneable, and easy
// for the fault plane to flip bits in.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vec is a little-endian bit vector: bit i corresponds to client i of an
// arbiter, VC i of a port, or port i of a crossbar row/column.
type Vec uint32

// New returns a vector with the given bits set.
func New(bitsSet ...int) Vec {
	var v Vec
	for _, b := range bitsSet {
		v = v.Set(b)
	}
	return v
}

// Set returns v with bit i set. It panics if i is outside [0, 32).
func (v Vec) Set(i int) Vec {
	checkIndex(i)
	return v | 1<<uint(i)
}

// Clear returns v with bit i cleared.
func (v Vec) Clear(i int) Vec {
	checkIndex(i)
	return v &^ (1 << uint(i))
}

// Flip returns v with bit i inverted; this is the fault plane's primitive.
func (v Vec) Flip(i int) Vec {
	checkIndex(i)
	return v ^ 1<<uint(i)
}

// Get reports whether bit i is set.
func (v Vec) Get(i int) bool {
	checkIndex(i)
	return v&(1<<uint(i)) != 0
}

// Count returns the number of set bits.
func (v Vec) Count() int { return bits.OnesCount32(uint32(v)) }

// IsZero reports whether no bit is set.
func (v Vec) IsZero() bool { return v == 0 }

// AtMostOneHot reports whether zero or one bit is set — the shape every
// grant vector and crossbar control vector must have (invariances 6, 14,
// and 15).
func (v Vec) AtMostOneHot() bool { return v&(v-1) == 0 }

// OneHot reports whether exactly one bit is set.
func (v Vec) OneHot() bool { return v != 0 && v.AtMostOneHot() }

// First returns the index of the lowest set bit, or -1 if none is set.
func (v Vec) First() int {
	if v == 0 {
		return -1
	}
	return bits.TrailingZeros32(uint32(v))
}

// NextBit returns the index of the lowest set bit and v with that bit
// cleared, for allocation-free ascending iteration (Bits allocates a
// slice per call, which adds up in per-cycle router and checker code):
//
//	for w := v; !w.IsZero(); {
//		var i int
//		i, w = w.NextBit()
//		...
//	}
//
// NextBit on a zero vector returns (32, 0).
func (v Vec) NextBit() (int, Vec) {
	return bits.TrailingZeros32(uint32(v)), v & (v - 1)
}

// Bits returns the indices of all set bits in ascending order.
func (v Vec) Bits() []int {
	out := make([]int, 0, v.Count())
	for w := uint32(v); w != 0; w &= w - 1 {
		out = append(out, bits.TrailingZeros32(w))
	}
	return out
}

// Mask returns a vector with the low width bits set.
func Mask(width int) Vec {
	// The panic formatting lives in badWidth so Mask stays inlineable;
	// routers and checkers mask vectors many times per cycle.
	if uint(width) > 32 {
		badWidth(width)
	}
	// The 64-bit shift makes width == 32 fall out of the subtraction
	// instead of needing its own branch, keeping Mask under the inline
	// budget.
	return Vec(uint64(1)<<uint(width) - 1)
}

// badWidth and badIndex stay out of line so the panic formatting does
// not count against their callers' inline budgets (Mask, Set, Get and
// friends run in per-cycle router and checker loops).
//
//go:noinline
func badWidth(width int) {
	panic(fmt.Sprintf("bitvec: invalid width %d", width))
}

// InWidth reports whether v has no bits set at or above width.
func (v Vec) InWidth(width int) bool { return v&^Mask(width) == 0 }

// String renders the vector as bits, most significant first, over the
// minimum width that shows all set bits (at least 1 digit).
func (v Vec) String() string {
	if v == 0 {
		return "0"
	}
	hi := 31 - bits.LeadingZeros32(uint32(v))
	var sb strings.Builder
	for i := hi; i >= 0; i-- {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func checkIndex(i int) {
	// Split from its panic so Set/Clear/Flip/Get inline fully.
	if uint(i) >= 32 {
		badIndex(i)
	}
}

//go:noinline
func badIndex(i int) {
	panic(fmt.Sprintf("bitvec: bit index %d out of range", i))
}
