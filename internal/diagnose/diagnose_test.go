package diagnose

import (
	"testing"

	"nocalert/internal/core"
	"nocalert/internal/fault"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

func TestLocalizeEmpty(t *testing.T) {
	if Localize(nil) != nil {
		t.Fatal("Localize(nil) should be nil")
	}
}

func TestLocalizeWeighting(t *testing.T) {
	vs := []core.Violation{
		{Checker: core.GrantWithoutRequest, Router: 3, Cycle: 100},
		{Checker: core.ConsistentVCState, Router: 3, Cycle: 100},
		// Downstream echo, 5 cycles later at another router.
		{Checker: core.BufferAtomicity, Router: 7, Cycle: 105},
	}
	s := Localize(vs)
	if len(s) != 2 {
		t.Fatalf("suspects: %+v", s)
	}
	if s[0].Router != 3 {
		t.Fatalf("top suspect %d, want 3", s[0].Router)
	}
	if s[0].Score <= s[1].Score {
		t.Fatal("early local evidence must outweigh late remote evidence")
	}
	if len(s[0].Checkers) != 2 || s[0].Checkers[0] != core.GrantWithoutRequest {
		t.Fatalf("checker attribution: %+v", s[0].Checkers)
	}
	if s[0].FirstCycle != 100 {
		t.Fatalf("first cycle %d", s[0].FirstCycle)
	}
}

func TestEvaluate(t *testing.T) {
	m := topology.NewMesh(4, 4)
	s := []Suspect{{Router: 5, Score: 2}, {Router: 9, Score: 1}}
	a := Evaluate(m, s, 9)
	if a.Rank != 2 || a.Distance != m.HopDistance(5, 9) {
		t.Fatalf("accuracy %+v", a)
	}
	if got := Evaluate(m, nil, 3); got.Rank != 0 || got.Distance != -1 {
		t.Fatalf("empty accuracy %+v", got)
	}
}

// TestLocalizationAccuracyOnCampaign injects permanent faults across
// the mesh and checks that the assertion pattern localizes the faulted
// router: top suspect correct for the clear majority, and within one
// hop almost always (corruption can only have travelled to a neighbor
// in the first cycles).
func TestLocalizationAccuracyOnCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("localization sweep in -short mode")
	}
	rc := router.Default(topology.NewMesh(4, 4))
	params := fault.Params{Mesh: rc.Mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}

	detected, top1, near := 0, 0, 0
	for _, s := range params.EnumerateSites() {
		// One representative bit per arbiter-grant site keeps the sweep
		// fast while covering every router.
		switch s.Kind {
		case fault.SA1Gnt, fault.VA1Gnt, fault.SA2Gnt:
		default:
			continue
		}
		f := fault.Fault{Site: s, Bit: 0, Cycle: 300, Type: fault.Permanent}
		n := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.2, Seed: 31}, fault.NewPlane(f))
		eng := core.NewEngine(n.RouterConfig(), core.Options{KeepViolations: true, MaxViolations: 200})
		n.AttachMonitor(eng)
		n.Run(700)
		if !eng.Detected() {
			continue
		}
		detected++
		acc := Evaluate(rc.Mesh, Localize(eng.Violations()), s.Router)
		if acc.Rank == 1 {
			top1++
		}
		if acc.Distance >= 0 && acc.Distance <= 1 {
			near++
		}
	}
	if detected < 30 {
		t.Fatalf("only %d faults detected; sweep too thin", detected)
	}
	if frac := float64(top1) / float64(detected); frac < 0.7 {
		t.Errorf("top-1 localization %.0f%% (%d/%d), want >= 70%%", 100*frac, top1, detected)
	}
	if frac := float64(near) / float64(detected); frac < 0.9 {
		t.Errorf("within-1-hop localization %.0f%% (%d/%d), want >= 90%%", 100*frac, near, detected)
	}
}
