// Package diagnose turns NoCAlert detections into fault localization.
//
// The paper positions NoCAlert as the detection front-end for a
// recovery/reconfiguration back-end; any such back-end first needs to
// know *where* to recover. Because the checkers are physically
// distributed — each one taps a specific module of a specific router —
// the pattern of assertions carries location information: the first
// assertions cluster at (or immediately downstream of) the faulted
// module, while later ones spread as the corruption propagates.
//
// Localize exploits exactly that: violations are scored per router with
// a weight that decays with the delay from the first assertion, so the
// earliest, most local evidence dominates.
package diagnose

import (
	"sort"

	"nocalert/internal/core"
	"nocalert/internal/topology"
)

// Suspect is one candidate fault location.
type Suspect struct {
	// Router is the suspected node.
	Router int
	// Score is the accumulated evidence (higher is more suspicious).
	Score float64
	// Checkers lists the distinct checkers that contributed, in id
	// order.
	Checkers []core.CheckerID
	// FirstCycle is the earliest contributing assertion.
	FirstCycle int64
}

// Localize ranks routers by assertion evidence. It requires the engine
// to have been run with Options.KeepViolations. The result is sorted by
// descending score (ties broken by earliest assertion, then router id);
// an empty slice means nothing was detected.
func Localize(violations []core.Violation) []Suspect {
	if len(violations) == 0 {
		return nil
	}
	first := violations[0].Cycle
	for _, v := range violations {
		if v.Cycle < first {
			first = v.Cycle
		}
	}
	type acc struct {
		score    float64
		checkers map[core.CheckerID]bool
		firstCyc int64
	}
	byRouter := map[int]*acc{}
	for _, v := range violations {
		a := byRouter[v.Router]
		if a == nil {
			a = &acc{checkers: map[core.CheckerID]bool{}, firstCyc: v.Cycle}
			byRouter[v.Router] = a
		}
		// Evidence decays with distance (in cycles) from the first
		// assertion: corruption needs cycles to propagate to other
		// routers, so late assertions localize poorly.
		delay := v.Cycle - first
		a.score += 1.0 / float64(1+delay)
		a.checkers[v.Checker] = true
		if v.Cycle < a.firstCyc {
			a.firstCyc = v.Cycle
		}
	}
	out := make([]Suspect, 0, len(byRouter))
	for r, a := range byRouter {
		s := Suspect{Router: r, Score: a.score, FirstCycle: a.firstCyc}
		for id := range a.checkers {
			s.Checkers = append(s.Checkers, id)
		}
		sort.Slice(s.Checkers, func(i, j int) bool { return s.Checkers[i] < s.Checkers[j] })
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].FirstCycle != out[j].FirstCycle {
			return out[i].FirstCycle < out[j].FirstCycle
		}
		return out[i].Router < out[j].Router
	})
	return out
}

// Accuracy describes how well a suspect ranking matches the true fault
// location.
type Accuracy struct {
	// Rank is the 1-based position of the true router in the ranking,
	// or 0 if absent.
	Rank int
	// Distance is the mesh distance from the top suspect to the true
	// router (-1 when there are no suspects).
	Distance int
}

// Evaluate scores a ranking against the router that actually hosted
// the fault.
func Evaluate(m topology.Mesh, suspects []Suspect, actual int) Accuracy {
	a := Accuracy{Distance: -1}
	for i, s := range suspects {
		if s.Router == actual {
			a.Rank = i + 1
			break
		}
	}
	if len(suspects) > 0 {
		a.Distance = m.HopDistance(suspects[0].Router, actual)
	}
	return a
}
