package router

import "nocalert/internal/statehash"

// FoldState folds every piece of the router's mutable architectural
// state into a state-fingerprint accumulator. The enumeration mirrors
// CloneInto exactly — anything a clone must copy, the fingerprint must
// cover — so two routers of the same configuration whose folds agree
// step identically given identical inputs. Like cloning, folding is
// only meaningful at a cycle boundary, when the per-cycle staging
// (sig, creditsOut) is dead and deliberately excluded.
func (r *Router) FoldState(h uint64) uint64 {
	for p := 0; p < P; p++ {
		h = statehash.FoldInt(h, r.va1WinnerReg[p])
		h = statehash.Fold(h, uint64(r.stCol[p]))
		h = statehash.FoldBool(h, r.readEn[p])
		h = statehash.FoldInt(h, r.stOut[p])
		h = statehash.FoldBool(h, r.stSpec[p])
	}
	for p := 0; p < P; p++ {
		if !r.hasPort[p] {
			continue
		}
		ip := &r.in[p]
		h = statehash.FoldInt(h, ip.sa1WinnerReg)
		for i := range ip.vcs {
			v := &ip.vcs[i]
			h = statehash.FoldInt(h, len(v.buf))
			for _, f := range v.buf {
				h = f.FoldState(h)
			}
			h = statehash.Fold(h, uint64(v.state))
			h = statehash.FoldInt(h, v.route)
			h = statehash.FoldInt(h, v.outVC)
			h = statehash.Fold(h, v.pktID)
			h = statehash.FoldInt(h, v.arrived)
			// lastRead/lastWritten contents are architectural: a read
			// strobe on an empty buffer replays lastRead (garbage read),
			// and the mixing rule consults lastWritten.
			h = statehash.FoldBool(h, v.hasLastRead)
			if v.hasLastRead {
				h = v.lastRead.FoldState(h)
			}
			h = statehash.FoldBool(h, v.hasLastWritten)
			if v.hasLastWritten {
				h = v.lastWritten.FoldState(h)
			}
		}
		for i := range r.out[p].vcs {
			ov := &r.out[p].vcs[i]
			h = statehash.FoldBool(h, ov.free)
			h = statehash.FoldInt(h, ov.credits)
			h = statehash.FoldBool(h, ov.tailSent)
		}
		h = r.va1[p].FoldState(h)
		h = r.sa1[p].FoldState(h)
		h = r.va2[p].FoldState(h)
		h = r.sa2[p].FoldState(h)
		h = r.arriving[p].FoldState(h)
		h = statehash.Fold(h, uint64(r.creditIn[p]))
	}
	return h
}
