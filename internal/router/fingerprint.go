package router

import (
	"nocalert/internal/soa"
	"nocalert/internal/statehash"
)

// FoldState folds every piece of the router's mutable architectural
// state into a state-fingerprint accumulator. The enumeration mirrors
// CloneInto exactly — anything a clone must copy, the fingerprint must
// cover — so two routers of the same configuration whose folds agree
// step identically given identical inputs. Both sweep engines share
// this storage and this fold, which is what makes the lockstep
// differential test's per-cycle fingerprint comparison meaningful.
// Like cloning, folding is only meaningful at a cycle boundary, when
// the per-cycle staging (sig, creditsOut) is dead and deliberately
// excluded. The activity masks (NonIdle, Occupied) are derived state —
// functions of the registers folded here — and are excluded for the
// same reason.
func (r *Router) FoldState(h uint64) uint64 {
	st := &r.st
	for p := 0; p < P; p++ {
		h = statehash.FoldInt(h, int(st.VA1Win[p]))
		h = statehash.Fold(h, uint64(st.StCol[p]))
		h = statehash.FoldBool(h, st.StFlags[p]&soa.StReadEn != 0)
		h = statehash.FoldInt(h, int(st.StOut[p]))
		h = statehash.FoldBool(h, st.StFlags[p]&soa.StSpec != 0)
	}
	for p := 0; p < P; p++ {
		if !r.hasPort[p] {
			continue
		}
		ip := &r.in[p]
		base := p * st.V
		h = statehash.FoldInt(h, int(st.SA1Win[p]))
		for i := range ip.vcs {
			v := &ip.vcs[i]
			ri := base + i
			h = statehash.FoldInt(h, len(v.buf))
			for _, f := range v.buf {
				h = f.FoldState(h)
			}
			h = statehash.Fold(h, uint64(st.VCState[ri]))
			h = statehash.FoldInt(h, int(st.VCRoute[ri]))
			h = statehash.FoldInt(h, int(st.VCOutVC[ri]))
			h = statehash.Fold(h, st.PktID[ri])
			h = statehash.FoldInt(h, int(st.Arrived[ri]))
			// lastRead/lastWritten contents are architectural: a read
			// strobe on an empty buffer replays lastRead (garbage read),
			// and the mixing rule consults lastWritten.
			h = statehash.FoldBool(h, v.hasLastRead)
			if v.hasLastRead {
				h = v.lastRead.FoldState(h)
			}
			h = statehash.FoldBool(h, v.hasLastWritten)
			if v.hasLastWritten {
				h = v.lastWritten.FoldState(h)
			}
		}
		for i := 0; i < r.cfg.VCs; i++ {
			fl := st.OutFlags[base+i]
			h = statehash.FoldBool(h, fl&soa.OutFree != 0)
			h = statehash.FoldInt(h, int(st.Credits[base+i]))
			h = statehash.FoldBool(h, fl&soa.OutTailSent != 0)
		}
		h = statehash.FoldInt(h, int(st.VA1Next[p]))
		h = statehash.FoldInt(h, int(st.SA1Next[p]))
		h = statehash.FoldInt(h, int(st.VA2Next[p]))
		h = statehash.FoldInt(h, int(st.SA2Next[p]))
		h = r.arriving[p].FoldState(h)
		h = statehash.Fold(h, uint64(st.CreditIn[p]))
	}
	return h
}
