package router

import (
	"nocalert/internal/fault"
	"nocalert/internal/flit"
	"nocalert/internal/soa"
)

// Clone returns a deep copy of the router using the given fault plane
// (nil for a fault-free continuation). The copy is backed by a private
// single-router SoA state and shares only the immutable configuration
// with the original. Cloning is only meaningful at a cycle boundary —
// after the network has collected departures and credits — when the
// per-cycle staging areas are empty; campaigns rely on this to fork
// thousands of faulty continuations from one warmed network.
func (r *Router) Clone(plane *fault.Plane) *Router {
	return r.CloneInto(nil, plane, nil)
}

// CloneInto is Clone reusing dst's allocations: buffers, the SoA window
// and signal-record slices from a previous clone of the same router are
// adopted instead of reallocated, and buffered flits are copied through
// the optional arena. dst must be a previous CloneInto/Clone product of
// this router or a NewCloneTarget shell of the same configuration (the
// network binds fork targets to the fork's shared state this way), or
// nil, in which case a fresh private-state copy is allocated. Campaign
// workers use this to pay the 64-router allocation storm once per
// worker rather than once per fault.
func (r *Router) CloneInto(dst *Router, plane *fault.Plane, ar *flit.Arena) *Router {
	c := dst
	if c == nil {
		st := soa.NewState(soa.Layout{R: 1, P: P, V: r.cfg.VCs})
		c = NewCloneTarget(r.cfg, st.View(0))
	}
	c.id, c.x, c.y, c.cfg = r.id, r.x, r.y, r.cfg
	c.crMask, c.vcClass = r.crMask, r.vcClass
	c.hasPort = r.hasPort
	c.plane = plane
	c.sweepRef = r.sweepRef
	// The whole register file — VC status tables, credits, ST latches,
	// arbiter pointers, activity masks — is a handful of bulk copies.
	c.st.CopyFrom(r.st)
	c.creditsOut = c.creditsOut[:0]
	for p := 0; p < P; p++ {
		if !r.hasPort[p] {
			continue
		}
		r.in[p].cloneInto(&c.in[p], r.cfg.BufDepth, ar)
		if f := r.arriving[p]; f != nil {
			c.arriving[p] = ar.CloneOf(f)
		} else {
			c.arriving[p] = nil
		}
	}
	return c
}

// cloneInto deep-copies the input port's pointer residue (flit buffers
// and read/write latches) into dst, reusing dst's VC and buffer slices
// where capacity allows. The scalar registers travel with the SoA bulk
// copy instead.
func (ip *inputPort) cloneInto(dst *inputPort, depth int, ar *flit.Arena) {
	if cap(dst.vcs) < len(ip.vcs) {
		dst.vcs = make([]inVC, len(ip.vcs))
	}
	dst.vcs = dst.vcs[:len(ip.vcs)]
	for i := range ip.vcs {
		src := &ip.vcs[i]
		d := &dst.vcs[i]
		buf := d.buf
		*d = *src
		if cap(buf) < depth {
			buf = make([]*flit.Flit, depth)
		}
		buf = buf[:len(src.buf)]
		for j, f := range src.buf {
			buf[j] = ar.CloneOf(f)
		}
		d.buf = buf
		// lastRead/lastWritten are value snapshots; *d = *src above
		// already copied them.
	}
}
