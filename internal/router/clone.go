package router

import (
	"nocalert/internal/arbiter"
	"nocalert/internal/fault"
	"nocalert/internal/flit"
)

// Clone returns a deep copy of the router using the given fault plane
// (nil for a fault-free continuation). The copy shares only the
// immutable configuration with the original. Cloning is only meaningful
// at a cycle boundary — after the network has collected departures and
// credits — when the per-cycle staging areas are empty; campaigns rely
// on this to fork thousands of faulty continuations from one warmed
// network.
func (r *Router) Clone(plane *fault.Plane) *Router {
	return r.CloneInto(nil, plane, nil)
}

// CloneInto is Clone reusing dst's allocations: buffers, arbiters and
// signal-record slices from a previous clone of the same router are
// adopted instead of reallocated, and buffered flits are copied through
// the optional arena. dst must be a previous CloneInto/Clone product of
// this router (the same configuration and port set) or nil, in which
// case a fresh copy is allocated. Campaign workers use this to pay the
// 64-router allocation storm once per worker rather than once per
// fault.
func (r *Router) CloneInto(dst *Router, plane *fault.Plane, ar *flit.Arena) *Router {
	c := dst
	if c == nil {
		c = &Router{}
		c.sig.Pre.init(r.cfg)
	}
	c.id, c.x, c.y, c.cfg = r.id, r.x, r.y, r.cfg
	c.crMask, c.vcClass = r.crMask, r.vcClass
	c.hasPort = r.hasPort
	c.plane = plane
	c.va1WinnerReg = r.va1WinnerReg
	c.stCol = r.stCol
	c.readEn = r.readEn
	c.stOut = r.stOut
	c.stSpec = r.stSpec
	c.creditsOut = c.creditsOut[:0]
	for p := 0; p < P; p++ {
		if !r.hasPort[p] {
			continue
		}
		r.in[p].cloneInto(&c.in[p], r.cfg.BufDepth, ar)
		c.out[p].vcs = append(c.out[p].vcs[:0], r.out[p].vcs...)
		c.va1[p] = arbiter.Reclone(c.va1[p], r.va1[p])
		c.sa1[p] = arbiter.Reclone(c.sa1[p], r.sa1[p])
		c.va2[p] = arbiter.Reclone(c.va2[p], r.va2[p])
		c.sa2[p] = arbiter.Reclone(c.sa2[p], r.sa2[p])
		if f := r.arriving[p]; f != nil {
			c.arriving[p] = ar.CloneOf(f)
		} else {
			c.arriving[p] = nil
		}
		c.creditIn[p] = r.creditIn[p]
	}
	return c
}

// cloneInto deep-copies the input port into dst, reusing dst's VC and
// buffer slices where capacity allows.
func (ip *inputPort) cloneInto(dst *inputPort, depth int, ar *flit.Arena) {
	dst.sa1WinnerReg = ip.sa1WinnerReg
	if cap(dst.vcs) < len(ip.vcs) {
		dst.vcs = make([]inVC, len(ip.vcs))
	}
	dst.vcs = dst.vcs[:len(ip.vcs)]
	for i := range ip.vcs {
		src := &ip.vcs[i]
		d := &dst.vcs[i]
		buf := d.buf
		*d = *src
		if cap(buf) < depth {
			buf = make([]*flit.Flit, depth)
		}
		buf = buf[:len(src.buf)]
		for j, f := range src.buf {
			buf[j] = ar.CloneOf(f)
		}
		d.buf = buf
		// lastRead/lastWritten are value snapshots; *d = *src above
		// already copied them.
	}
}
