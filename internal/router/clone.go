package router

import (
	"nocalert/internal/fault"
	"nocalert/internal/flit"
)

// Clone returns a deep copy of the router using the given fault plane
// (nil for a fault-free continuation). The copy shares only the
// immutable configuration with the original. Cloning is only meaningful
// at a cycle boundary — after the network has collected departures and
// credits — when the per-cycle staging areas are empty; campaigns rely
// on this to fork thousands of faulty continuations from one warmed
// network.
func (r *Router) Clone(plane *fault.Plane) *Router {
	c := &Router{
		id:      r.id,
		x:       r.x,
		y:       r.y,
		cfg:     r.cfg,
		hasPort: r.hasPort,
		plane:   plane,
		stCol:   r.stCol,
		readEn:  r.readEn,
		stOut:   r.stOut,
		stSpec:  r.stSpec,
	}
	c.va1WinnerReg = r.va1WinnerReg
	for p := 0; p < P; p++ {
		if !r.hasPort[p] {
			continue
		}
		c.in[p] = r.in[p].clone(r.cfg.BufDepth)
		c.out[p].vcs = append([]outVCState(nil), r.out[p].vcs...)
		c.va1[p] = r.va1[p].Clone()
		c.sa1[p] = r.sa1[p].Clone()
		c.va2[p] = r.va2[p].Clone()
		c.sa2[p] = r.sa2[p].Clone()
		if f := r.arriving[p]; f != nil {
			c.arriving[p] = f.Clone()
		}
		c.creditIn[p] = r.creditIn[p]
	}
	c.sig.Pre.init(r.cfg)
	return c
}

func (ip inputPort) clone(depth int) inputPort {
	out := inputPort{sa1WinnerReg: ip.sa1WinnerReg}
	out.vcs = make([]inVC, len(ip.vcs))
	for i := range ip.vcs {
		src := &ip.vcs[i]
		dst := &out.vcs[i]
		*dst = *src
		dst.buf = make([]*flit.Flit, len(src.buf), depth)
		for j, f := range src.buf {
			dst.buf[j] = f.Clone()
		}
		if src.lastRead != nil {
			dst.lastRead = src.lastRead.Clone()
		}
		if src.lastWritten != nil {
			dst.lastWritten = src.lastWritten.Clone()
		}
	}
	return out
}
