package router

import (
	"fmt"

	"nocalert/internal/flit"
)

// VCState is a virtual channel's pipeline state register. It advances
// Idle → Routing → WaitingVA → Active as the header flit flows through
// the RC and VA stages, and returns to Idle when the tail drains. The
// register is VCStateWidth bits wide, so encodings ≥ numVCStates are the
// illegal values the fault plane can produce and invariance 17 flags.
type VCState uint8

const (
	// VCIdle: the VC is free; no packet is resident.
	VCIdle VCState = iota
	// VCRouting: a header flit is at the head of the buffer waiting for
	// (or undergoing) routing computation.
	VCRouting
	// VCWaitingVA: RC is complete; the VC is bidding in VA.
	VCWaitingVA
	// VCActive: VA is complete; flits stream through SA/XBAR.
	VCActive
	numVCStates
)

// Valid reports whether the state encoding is one of the defined states.
func (s VCState) Valid() bool { return s < numVCStates }

// String returns a short name for the state.
func (s VCState) String() string {
	switch s {
	case VCIdle:
		return "Idle"
	case VCRouting:
		return "RC"
	case VCWaitingVA:
		return "VA"
	case VCActive:
		return "Active"
	}
	return fmt.Sprintf("VCState(%d)", uint8(s))
}

// inVC is one input virtual channel: a FIFO flit buffer plus the state,
// route and output-VC registers of the paper's VC status table
// (Figure 2b).
type inVC struct {
	// buf is the FIFO buffer; buf[0] is the head.
	buf []*flit.Flit
	// state is the pipeline state register.
	state VCState
	// route is the stored RC result (output direction register). It
	// holds a raw 3-bit code, possibly corrupted to an illegal value.
	route int
	// outVC is the stored VA result: the downstream VC identifier, a
	// raw VCIDWidth-bit code.
	outVC int
	// pktID is the packet currently owning the VC (architectural
	// bookkeeping, not a hardware register).
	pktID uint64
	// arrived counts the flits of the current packet that entered this
	// VC; invariance 28 compares it against the class's fixed length.
	arrived int
	// lastRead snapshots the most recently read flit as of read time. A
	// read strobe hitting an empty buffer returns stale storage, not
	// blanks — the mechanism by which the paper says "a new flit may be
	// generated". It is a value, not a pointer: a hardware read latch
	// holds the bits present when the read happened, so downstream
	// rewrites of the departed flit (VC restamping per hop) must not
	// alias back into it. hasLastRead gates validity.
	lastRead    flit.Flit
	hasLastRead bool
	// lastWritten snapshots the most recently written flit at write
	// time, used by the non-atomic mixing rule (a tail must be followed
	// by a header). Value semantics for the same reason as lastRead.
	lastWritten    flit.Flit
	hasLastWritten bool
}

func (v *inVC) empty() bool { return len(v.buf) == 0 }
func (v *inVC) full(depth int) bool {
	return len(v.buf) >= depth
}

// head returns the flit at the front of the buffer, or nil.
func (v *inVC) head() *flit.Flit {
	if len(v.buf) == 0 {
		return nil
	}
	return v.buf[0]
}

// pop removes and returns the head flit. On an empty buffer it returns
// a clone of the stale lastRead flit (garbage read) or nil if nothing
// was ever read.
func (v *inVC) pop() (f *flit.Flit, garbage bool) {
	if len(v.buf) == 0 {
		if !v.hasLastRead {
			return nil, true
		}
		return v.lastRead.Clone(), true
	}
	f = v.buf[0]
	copy(v.buf, v.buf[1:])
	v.buf = v.buf[:len(v.buf)-1]
	v.lastRead = *f
	v.hasLastRead = true
	return f, false
}

// push appends a flit; the caller has already checked capacity policy
// (an overflowing write drops the flit instead).
func (v *inVC) push(f *flit.Flit) {
	v.buf = append(v.buf, f)
	v.lastWritten = *f
	v.hasLastWritten = true
}

func (v *inVC) reset() {
	v.state = VCIdle
	v.route = rawInvalidDir
	v.outVC = 0
	v.pktID = 0
	v.arrived = 0
}

// rawInvalidDir is the reset value of the route register: an encoding
// outside the legal 0–4 range so that stale routes are distinguishable.
const rawInvalidDir = 7

// inputPort is one input port: VCs VCs sharing one physical channel via
// a demultiplexer (writes) and a multiplexer (reads), which is why at
// most one flit may enter or leave the port per cycle (invariances
// 29–31).
type inputPort struct {
	vcs []inVC
	// sa1WinnerReg latches the VC index of the most recent SA1 winner.
	// It is deliberately sticky: if SA2 selects this port without a
	// fresh SA1 win (possible only under faults), the stale value
	// drives the read mux — the garbage-read path the paper describes.
	sa1WinnerReg int
}

// outVCState is the per-output-VC bookkeeping of credit-based flow
// control: whether the downstream VC is allocated, how many buffer
// slots remain, and whether the current packet's tail has departed.
type outVCState struct {
	// free reports the downstream VC unallocated (available to VA).
	free bool
	// credits is the credit counter register (downstream slots).
	credits int
	// tailSent records that the resident packet's tail has been sent;
	// the VC is recycled once every credit has returned, preserving
	// downstream buffer atomicity.
	tailSent bool
}

// outputPort is one output port: the credit state of the downstream
// VCs plus the VA2/SA2 arbiters' home.
type outputPort struct {
	vcs []outVCState
}
