package router

import (
	"fmt"

	"nocalert/internal/flit"
)

// VCState is a virtual channel's pipeline state register. It advances
// Idle → Routing → WaitingVA → Active as the header flit flows through
// the RC and VA stages, and returns to Idle when the tail drains. The
// register is VCStateWidth bits wide, so encodings ≥ numVCStates are the
// illegal values the fault plane can produce and invariance 17 flags.
type VCState uint8

const (
	// VCIdle: the VC is free; no packet is resident.
	VCIdle VCState = iota
	// VCRouting: a header flit is at the head of the buffer waiting for
	// (or undergoing) routing computation.
	VCRouting
	// VCWaitingVA: RC is complete; the VC is bidding in VA.
	VCWaitingVA
	// VCActive: VA is complete; flits stream through SA/XBAR.
	VCActive
	numVCStates
)

// Valid reports whether the state encoding is one of the defined states.
func (s VCState) Valid() bool { return s < numVCStates }

// String returns a short name for the state.
func (s VCState) String() string {
	switch s {
	case VCIdle:
		return "Idle"
	case VCRouting:
		return "RC"
	case VCWaitingVA:
		return "VA"
	case VCActive:
		return "Active"
	}
	return fmt.Sprintf("VCState(%d)", uint8(s))
}

// inVC is one input virtual channel's pointer-typed residue: the FIFO
// flit buffer and the read/write latches. The scalar registers of the
// paper's VC status table (state, route, outVC, pktID, arrived) live in
// the network's structure-of-arrays state (internal/soa), windowed by
// Router.st — that is what lets the per-cycle sweeps walk flat arrays
// and campaign forks bulk-copy the register file.
type inVC struct {
	// buf is the FIFO buffer; buf[0] is the head.
	buf []*flit.Flit
	// lastRead snapshots the most recently read flit as of read time. A
	// read strobe hitting an empty buffer returns stale storage, not
	// blanks — the mechanism by which the paper says "a new flit may be
	// generated". It is a value, not a pointer: a hardware read latch
	// holds the bits present when the read happened, so downstream
	// rewrites of the departed flit (VC restamping per hop) must not
	// alias back into it. hasLastRead gates validity.
	lastRead    flit.Flit
	hasLastRead bool
	// lastWritten snapshots the most recently written flit at write
	// time, used by the non-atomic mixing rule (a tail must be followed
	// by a header). Value semantics for the same reason as lastRead.
	lastWritten    flit.Flit
	hasLastWritten bool
}

func (v *inVC) empty() bool { return len(v.buf) == 0 }
func (v *inVC) full(depth int) bool {
	return len(v.buf) >= depth
}

// head returns the flit at the front of the buffer, or nil.
func (v *inVC) head() *flit.Flit {
	if len(v.buf) == 0 {
		return nil
	}
	return v.buf[0]
}

// rawInvalidDir is the reset value of the route register: an encoding
// outside the legal 0–4 range so that stale routes are distinguishable.
const rawInvalidDir = 7

// inputPort is one input port: VCs VCs sharing one physical channel via
// a demultiplexer (writes) and a multiplexer (reads), which is why at
// most one flit may enter or leave the port per cycle (invariances
// 29–31). The SA1 winner latch lives in the SoA state (Router.st.SA1Win).
type inputPort struct {
	vcs []inVC
}
