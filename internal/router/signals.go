package router

import (
	"nocalert/internal/bitvec"
	"nocalert/internal/flit"
	"nocalert/internal/topology"
)

// P is the port-array size used throughout the signal records; absent
// edge/corner ports simply never carry signals.
const P = int(topology.NumPorts)

// ReqGnt is an arbiter's observable interface: its request inputs and
// grant outputs for one cycle, both post-fault — the two vectors the
// paper's example checker circuit (Figure 4) taps.
type ReqGnt struct {
	Req, Gnt bitvec.Vec
}

// RCExec records one execution of a routing-computation unit: the
// inputs the unit consumed (post-fault) and the output it produced
// (post-fault). Checkers 1–3, 20, 21 and 31 read these.
type RCExec struct {
	// Port and VC identify the input VC served.
	Port, VC int
	// HasHead reports whether a flit was at the head of the buffer;
	// BufEmpty is its negation kept explicit for readability.
	HasHead bool
	// HeadKind is the kind of the flit RC operated on (valid only if
	// HasHead).
	HeadKind flit.Kind
	// DestX, DestY are the destination coordinate wires as the RC unit
	// saw them (post input-fault).
	DestX, DestY int
	// TrueDestX, TrueDestY are the coordinates as stored in the header
	// flit itself — the checker's independent tap on the VC buffer,
	// upstream of any fault on the RC input wires. Valid only when
	// HasHead.
	TrueDestX, TrueDestY int
	// OutDir is the raw output-direction code produced (post
	// output-fault). Legal codes are 0–4.
	OutDir int
}

// VAAssign records one output-VC assignment made by an output port's
// VA2 stage. Checkers 7, 8, 10, 12 and 19 read these.
type VAAssign struct {
	// OutPort is the output port whose VA2 made the assignment.
	OutPort int
	// InPort, InVC identify the granted input VC (via the port's VA1
	// winner latch).
	InPort, InVC int
	// OutVC is the raw assigned output-VC code (post-fault); legal
	// codes are 0..VCs-1.
	OutVC int
	// TargetFree and TargetCredits snapshot the addressed output VC at
	// assignment time (meaningful only when OutVC is in range).
	TargetFree    bool
	TargetCredits int
}

// SALatch records one switch-traversal reservation formed by SA2:
// output port OutPort will connect to input port InPort next cycle,
// transmitting input VC InVC (the port's SA1 winner latch). Checkers
// 9, 11, 13 and the credit rule of 7 read these.
type SALatch struct {
	OutPort, InPort, InVC int
	// OutVC is the raw output-VC register value of the granted input VC
	// at grant time; credits for (OutPort, OutVC) are reserved here.
	OutVC int
	// CreditsBefore is the credit count of (OutPort, OutVC) at grant
	// time (meaningful only when OutVC is in range).
	CreditsBefore int
	// Speculative marks a grant issued to a VC that had not completed
	// VA (legal only in speculative mode, where it may be nullified).
	Speculative bool
}

// ReadSig is an input port's buffer read activity for one cycle.
type ReadSig struct {
	// Strobe is the per-VC read-strobe vector (post-fault).
	Strobe bitvec.Vec
	// EmptyBits marks strobed VCs whose buffer was empty at read time —
	// the illegal reads of invariance 24.
	EmptyBits bitvec.Vec
}

// WriteTarget records the state of one strobed VC at write time.
type WriteTarget struct {
	VC int
	// FullBefore: the buffer had no space (invariance 25); the flit was
	// dropped.
	FullBefore bool
	// StateBefore is the VC's pipeline state before the write.
	StateBefore VCState
	// PrevKind is the kind of the previously written flit, if any —
	// the non-atomic mixing rule (27) needs it.
	PrevKind flit.Kind
	HasPrev  bool
	// ArrivedAfter is the VC's per-packet flit arrival count including
	// this write (invariance 28).
	ArrivedAfter int
	// ResidentPkt is the packet owning the VC before the write, 0 if
	// free.
	ResidentPkt uint64
}

// Arrival records one flit arriving at an input port: the control
// fields as latched (post-fault) and the write strobes they produced.
// Checkers 18, 25–28 and 30 read these.
type Arrival struct {
	Port int
	// Kind and VCField are the flit's control fields post-fault.
	Kind    flit.Kind
	VCField int
	// Strobe is the per-VC write-strobe vector (post-fault).
	Strobe bitvec.Vec
	// Flit is the stored flit (its fields reflect the faulted values).
	Flit *flit.Flit
	// Targets describes each strobed VC at write time.
	Targets []WriteTarget
}

// Departure records one flit leaving through the crossbar.
type Departure struct {
	OutPort int
	// OutVC is the VC field stamped on the flit (the downstream VC).
	OutVC int
	// InPort is the crossbar row the flit came from.
	InPort int
	// Flit is the departing flit.
	Flit *flit.Flit
	// Garbage marks a flit synthesised by a read from an empty buffer.
	Garbage bool
}

// PreVC is the pre-cycle snapshot of one input VC, as read through the
// (possibly faulted) register read path — the reference state the
// checkers compare signals against.
type PreVC struct {
	State    VCState
	BufLen   int
	HasHead  bool
	HeadKind flit.Kind
	HeadPkt  uint64
	Class    int
	Route    int
	OutVC    int
	Arrived  int
	PktID    uint64
}

// PreOutVC is the pre-cycle snapshot of one output VC's credit state.
type PreOutVC struct {
	Free     bool
	Credits  int
	TailSent bool
}

// Pre is the whole-router pre-cycle snapshot.
type Pre struct {
	In  [P][]PreVC
	Out [P][]PreOutVC
	// Active[p] has bit v set when In[p][v] snapshots anything other
	// than a free, empty VC (State != Idle or BufLen > 0). BeginCycle
	// computes it from the snapshot values themselves (post-fault), so
	// sweeps over these masks see every VC the invariance checks could
	// possibly flag: a free empty VC can violate none of the stored-form
	// invariances regardless of its route/outVC residue.
	Active [P]bitvec.Vec
}

// RecomputeActive rebuilds the Active masks from the snapshot values.
// The simulator maintains the masks inline during BeginCycle; this
// exists for tests that assemble a Pre by hand.
func (pre *Pre) RecomputeActive() {
	for p := 0; p < P; p++ {
		var m bitvec.Vec
		for v := range pre.In[p] {
			if pre.In[p][v].State != VCIdle || pre.In[p][v].BufLen > 0 {
				m = m.Set(v)
			}
		}
		pre.Active[p] = m
	}
}

// Signals is everything observable about one router in one cycle: the
// pre-cycle architectural snapshot plus every control signal, all
// post-fault. It is rebuilt (in place) every cycle.
type Signals struct {
	Router int
	Cycle  int64

	Pre Pre

	// RC activity.
	RCExecs []RCExec
	// RCDone[p] has bit v set when VC v of input port p completed RC
	// this cycle (invariance 31 wants at most one per port).
	RCDone [P]bitvec.Vec

	// Arbiter activity; VA1/SA1 indexed by input port, VA2/SA2 by
	// output port.
	VA1, SA1 [P]ReqGnt
	VA2, SA2 [P]ReqGnt

	VAAssigns []VAAssign
	SALatches []SALatch

	// Crossbar activity: per-output column control vectors (post-
	// fault), rows driving flits, and the flit conservation counts of
	// invariance 16.
	XbarCol  [P]bitvec.Vec
	XbarRows bitvec.Vec
	XbarIn   int
	XbarOut  int
	// XbarSpecNull marks output ports whose reservation was a
	// speculative grant nullified at traversal time (legal in
	// speculative mode: the column is latched but no flit flows).
	XbarSpecNull bitvec.Vec

	Reads      [P]ReadSig
	Arrivals   []Arrival
	Departures []Departure
	// CreditsIn[o] is the post-fault credit-return vector from the
	// downstream of output port o.
	CreditsIn [P]bitvec.Vec
}

// ---- derived telemetry views ----
//
// The accessors below are the read-only aggregate signals the metrics
// monitor consumes. They are derived from the per-cycle record rather
// than maintained incrementally, so they cost nothing on the simulation
// hot path when no monitor asks for them.

// VAStalls returns the number of VC-allocation requests left ungranted
// this cycle, summed over both allocation stages (VA1 per input port,
// VA2 per output port). Faulted grant vectors may assert bits outside
// the request set, so the count masks grants against requests.
func (s *Signals) VAStalls() int {
	n := 0
	for p := 0; p < P; p++ {
		n += (s.VA1[p].Req &^ s.VA1[p].Gnt).Count()
		n += (s.VA2[p].Req &^ s.VA2[p].Gnt).Count()
	}
	return n
}

// SAStalls returns the number of switch-allocation requests left
// ungranted this cycle, summed over SA1 and SA2.
func (s *Signals) SAStalls() int {
	n := 0
	for p := 0; p < P; p++ {
		n += (s.SA1[p].Req &^ s.SA1[p].Gnt).Count()
		n += (s.SA2[p].Req &^ s.SA2[p].Gnt).Count()
	}
	return n
}

// BufferOccupancy returns the total number of flits buffered in the
// router's input VCs at the start of the cycle.
func (s *Signals) BufferOccupancy() int {
	n := 0
	for p := 0; p < P; p++ {
		for v := range s.Pre.In[p] {
			n += s.Pre.In[p][v].BufLen
		}
	}
	return n
}

// LinkFlits returns the number of flits the router put on inter-router
// links this cycle (local ejections to the NI excluded) — the per-cycle
// numerator of link utilization.
func (s *Signals) LinkFlits() int {
	n := 0
	for i := range s.Departures {
		if topology.Direction(s.Departures[i].OutPort) != topology.Local {
			n++
		}
	}
	return n
}

// reset clears the record for reuse, keeping allocated slices.
func (s *Signals) reset(router int, cycle int64) {
	s.Router = router
	s.Cycle = cycle
	s.RCExecs = s.RCExecs[:0]
	s.VAAssigns = s.VAAssigns[:0]
	s.SALatches = s.SALatches[:0]
	s.Arrivals = s.Arrivals[:0]
	s.Departures = s.Departures[:0]
	for p := 0; p < P; p++ {
		s.RCDone[p] = 0
		s.VA1[p] = ReqGnt{}
		s.SA1[p] = ReqGnt{}
		s.VA2[p] = ReqGnt{}
		s.SA2[p] = ReqGnt{}
		s.XbarCol[p] = 0
		s.Reads[p] = ReadSig{}
		s.CreditsIn[p] = 0
	}
	s.XbarRows = 0
	s.XbarIn = 0
	s.XbarOut = 0
	s.XbarSpecNull = 0
}
