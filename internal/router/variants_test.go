package router

import (
	"testing"

	"nocalert/internal/flit"
	"nocalert/internal/soa"
	"nocalert/internal/topology"
)

// TestSpeculativePipelineIsFaster: in speculative mode VA and SA run
// concurrently, so a header reaches the crossbar one cycle earlier than
// in the baseline (paper §4.4 variation).
func TestSpeculativePipelineIsFaster(t *testing.T) {
	depart := func(spec bool) int {
		cfg := Default(topology.NewMesh(3, 3))
		cfg.Speculative = spec
		r := New(4, &cfg, nil)
		dest := cfg.Mesh.NodeAt(2, 1)
		p := &flit.Packet{ID: 1, Src: 4, Dest: dest, Length: 1}
		dx, dy := cfg.Mesh.Coords(dest)
		f := p.Flits(dx, dy)[0]
		f.VC = 0
		r.StageArrival(topology.Local, f)
		for c := int64(0); c < 10; c++ {
			r.BeginCycle(c)
			r.Evaluate(c)
			if len(r.Signals().Departures) > 0 {
				return int(c)
			}
		}
		return -1
	}
	base := depart(false)
	spec := depart(true)
	if base < 0 || spec < 0 {
		t.Fatalf("packet stuck: base=%d spec=%d", base, spec)
	}
	if spec >= base {
		t.Fatalf("speculation did not shorten the pipeline: base=%d spec=%d", base, spec)
	}
}

// TestSpeculativeNullification: a speculative switch grant whose VA has
// not completed by traversal time must be nullified, not forward
// garbage.
func TestSpeculativeNullification(t *testing.T) {
	cfg := Default(topology.NewMesh(3, 3))
	cfg.Speculative = true
	r := New(4, &cfg, nil)
	// Fill every East output VC so VA cannot complete.
	for v := 0; v < cfg.VCs; v++ {
		r.st.OutFlags[int(topology.East)*r.st.V+v] &^= soa.OutFree
	}
	dest := cfg.Mesh.NodeAt(2, 1)
	p := &flit.Packet{ID: 1, Src: 4, Dest: dest, Length: 1}
	dx, dy := cfg.Mesh.Coords(dest)
	f := p.Flits(dx, dy)[0]
	f.VC = 0
	r.StageArrival(topology.Local, f)
	for c := int64(0); c < 12; c++ {
		r.BeginCycle(c)
		r.Evaluate(c)
		if len(r.Signals().Departures) != 0 {
			t.Fatalf("speculative grant forwarded a flit without VA at cycle %d", c)
		}
	}
	// The flit must still be buffered, not lost.
	if r.in[int(topology.Local)].vcs[0].empty() {
		t.Fatal("nullified speculation lost the flit")
	}
}

// TestNonAtomicBackToBackPackets: with non-atomic buffers, the next
// packet's header may already sit behind the previous tail in the same
// VC and must restart the pipeline without a gap or mixing.
func TestNonAtomicBackToBackPackets(t *testing.T) {
	cfg := Default(topology.NewMesh(3, 3))
	cfg.AtomicVC = false
	cfg.LenByClass = []int{2}
	r := New(4, &cfg, nil)
	dest := cfg.Mesh.NodeAt(2, 1)
	dx, dy := cfg.Mesh.Coords(dest)

	var stream []*flit.Flit
	for id := uint64(1); id <= 3; id++ {
		p := &flit.Packet{ID: id, Src: 4, Dest: dest, Length: 2}
		stream = append(stream, p.Flits(dx, dy)...)
	}
	var departed []*flit.Flit
	cycle := int64(0)
	for c := 0; c < 40 && len(departed) < len(stream); c++ {
		if c < len(stream) {
			f := stream[c]
			f.VC = 0 // all three packets share one input VC
			r.StageArrival(topology.Local, f)
		}
		r.BeginCycle(cycle)
		r.Evaluate(cycle)
		for _, d := range r.Signals().Departures {
			departed = append(departed, d.Flit)
			// Keep the downstream credits flowing.
			r.StageCredit(topology.East, d.OutVC)
		}
		cycle++
	}
	if len(departed) != len(stream) {
		t.Fatalf("forwarded %d of %d flits", len(departed), len(stream))
	}
	for i, f := range departed {
		want := stream[i]
		if f.PacketID != want.PacketID || f.Seq != want.Seq {
			t.Fatalf("flit %d out of order: got p%d.%d want p%d.%d",
				i, f.PacketID, f.Seq, want.PacketID, want.Seq)
		}
	}
}

// TestAtomicBufferRefusesInterleaving: in atomic mode the upstream
// protocol never presents a second header before the VC is recycled;
// the router-level invariant is that a VC holds flits of at most one
// packet. Drive the protocol correctly and verify the buffer never
// mixes.
func TestAtomicBufferSinglePacketResidency(t *testing.T) {
	cfg := Default(topology.NewMesh(3, 3))
	r := New(4, &cfg, nil)
	dest := cfg.Mesh.NodeAt(2, 1)
	dx, dy := cfg.Mesh.Coords(dest)
	p := &flit.Packet{ID: 1, Src: 4, Dest: dest, Length: 5}
	cycle := int64(0)
	for _, f := range p.Flits(dx, dy) {
		f.VC = 1
		r.StageArrival(topology.North, f)
		r.BeginCycle(cycle)
		r.Evaluate(cycle)
		cycle++
		ids := map[uint64]bool{}
		for _, bf := range r.in[int(topology.North)].vcs[1].buf {
			ids[bf.PacketID] = true
		}
		if len(ids) > 1 {
			t.Fatalf("atomic VC holds %d packets", len(ids))
		}
	}
}

// TestSignalsResetBetweenCycles: stale events must not leak into the
// next cycle's record.
func TestSignalsResetBetweenCycles(t *testing.T) {
	cfg := Default(topology.NewMesh(3, 3))
	r := New(4, &cfg, nil)
	dest := cfg.Mesh.NodeAt(2, 1)
	dx, dy := cfg.Mesh.Coords(dest)
	f := (&flit.Packet{ID: 1, Src: 4, Dest: dest, Length: 1}).Flits(dx, dy)[0]
	f.VC = 0
	r.StageArrival(topology.Local, f)
	r.BeginCycle(0)
	r.Evaluate(0)
	if len(r.Signals().Arrivals) != 1 {
		t.Fatal("arrival not recorded")
	}
	r.BeginCycle(1)
	r.Evaluate(1)
	if len(r.Signals().Arrivals) != 0 {
		t.Fatal("arrival leaked into the next cycle")
	}
	if r.Signals().Cycle != 1 {
		t.Fatal("cycle stamp wrong")
	}
}
