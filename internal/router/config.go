// Package router implements the paper's baseline NoC router (§3.1): an
// input-buffered, wormhole-switched, virtual-channel router with a
// five-stage pipeline — Routing Computation (RC), Virtual-channel
// Allocation (VA, separable into local VA1 and global VA2), Switch
// Arbitration (SA, separable into SA1 and SA2), crossbar (XBAR)
// traversal and Link Traversal — with credit-based flow control and
// atomic or non-atomic VC buffers.
//
// The router exposes every control signal of every cycle in a Signals
// record. That record is simultaneously the probe surface for the
// NoCAlert invariance checkers and the injection surface for the fault
// plane: faults are applied exactly where the signal crosses a module
// boundary, so the corrupted value both steers the router's actual
// behaviour and is what the checkers observe — the same tap a hardware
// assertion has on a faulted wire.
package router

import (
	"fmt"

	"nocalert/internal/routing"
	"nocalert/internal/topology"
)

// VCIDWidth is the fixed width in bits of virtual-channel identifier
// fields (assigned output VC, flit VC field, stored output-VC register).
// The encoding is wider than strictly needed for small VC counts, as in
// real routers sized for their largest configuration, which is what
// makes "invalid output VC value" (invariance 19) a reachable illegal
// output: with 4 VCs, codes 4–7 are out of range.
const VCIDWidth = 3

// DirWidth is the width in bits of output-direction codes. Values 0–4
// name the five ports; 5–7 are the illegal codes invariance 2 watches
// for.
const DirWidth = 3

// MaxVCs is the largest supported VC count per input port, bounded by
// the VC-identifier encoding.
const MaxVCs = 1 << VCIDWidth

// Config fixes the router micro-architecture. The zero value is not
// usable; call Default and adjust.
type Config struct {
	// Mesh is the network topology the router lives in.
	Mesh topology.Mesh
	// VCs is the number of virtual channels per input port.
	VCs int
	// BufDepth is the per-VC buffer depth in flits.
	BufDepth int
	// Classes is the number of protocol-level message classes. The VCs
	// of each port are partitioned evenly among classes, modelling the
	// cache-coherence message-class separation of a CMP.
	Classes int
	// LenByClass gives the fixed packet length (in flits) of each
	// message class — the pre-defined constant behind invariance 28.
	LenByClass []int
	// Alg is the routing algorithm.
	Alg routing.Algorithm
	// AtomicVC selects atomic VC buffers (only one packet resident at a
	// time, the paper's default). When false, buffers are non-atomic
	// and invariance 27 replaces invariance 26.
	AtomicVC bool
	// Speculative runs VA and SA concurrently (the §4.4 variation):
	// VCs still waiting for VA may arbitrate for the switch, and a
	// speculative switch grant is nullified if VA has not completed by
	// traversal time. Invariance 17's SA-after-VA clause is relaxed.
	Speculative bool
}

// Default returns the paper's evaluation configuration: 4 VCs per port,
// 5-flit atomic buffers, one message class of 5-flit packets, XY
// routing.
func Default(m topology.Mesh) Config {
	return Config{
		Mesh:       m,
		VCs:        4,
		BufDepth:   5,
		Classes:    1,
		LenByClass: []int{5},
		Alg:        routing.XY{},
		AtomicVC:   true,
	}
}

// Validate checks the configuration for internal consistency.
func (c *Config) Validate() error {
	if c.Mesh.W < 1 || c.Mesh.H < 1 {
		return fmt.Errorf("router: invalid mesh %dx%d", c.Mesh.W, c.Mesh.H)
	}
	if c.VCs < 1 || c.VCs > MaxVCs {
		return fmt.Errorf("router: VCs must be in [1,%d], got %d", MaxVCs, c.VCs)
	}
	if c.BufDepth < 1 {
		return fmt.Errorf("router: buffer depth must be >= 1, got %d", c.BufDepth)
	}
	if c.Classes < 1 || c.Classes > c.VCs {
		return fmt.Errorf("router: classes must be in [1,VCs=%d], got %d", c.VCs, c.Classes)
	}
	if c.VCs%c.Classes != 0 {
		return fmt.Errorf("router: VCs (%d) must divide evenly into classes (%d)", c.VCs, c.Classes)
	}
	if len(c.LenByClass) != c.Classes {
		return fmt.Errorf("router: LenByClass has %d entries for %d classes", len(c.LenByClass), c.Classes)
	}
	for cl, n := range c.LenByClass {
		if n < 1 {
			return fmt.Errorf("router: class %d has invalid packet length %d", cl, n)
		}
	}
	if c.Alg == nil {
		return fmt.Errorf("router: no routing algorithm configured")
	}
	return nil
}

// ClassOfVC returns the message class owning virtual channel vc.
func (c *Config) ClassOfVC(vc int) int {
	per := c.VCs / c.Classes
	cl := vc / per
	if cl >= c.Classes {
		cl = c.Classes - 1
	}
	return cl
}

// VCRange returns the half-open VC index range [lo, hi) owned by class.
func (c *Config) VCRange(class int) (lo, hi int) {
	per := c.VCs / c.Classes
	return class * per, (class + 1) * per
}

// PacketLen returns the fixed flit count of packets in class.
func (c *Config) PacketLen(class int) int {
	if class < 0 || class >= len(c.LenByClass) {
		return c.LenByClass[0]
	}
	return c.LenByClass[class]
}
