package router

import (
	"fmt"

	"nocalert/internal/arbiter"
	"nocalert/internal/bitvec"
	"nocalert/internal/fault"
	"nocalert/internal/flit"
	"nocalert/internal/topology"
)

// CreditOut is a credit the router returns upstream after draining one
// buffer slot of input port Port, virtual channel VC. The network
// delivers it to the upstream router's matching output port (or to the
// local network interface) with one cycle of latency.
type CreditOut struct {
	Port topology.Direction
	VC   int
}

// Router is one five-stage pipelined NoC router. All mutable state is
// reachable from the struct and deep-copied by Clone, which is what
// lets fault campaigns fork thousands of runs from one warmed network.
type Router struct {
	id   int
	x, y int
	cfg  *Config

	// crMask and vcClass cache 1<<BitsFor(BufDepth)-1 and ClassOfVC —
	// both consulted for every VC every cycle, and cheap enough to
	// precompute once in New rather than re-derive (BitsFor and the
	// ClassOfVC divisions showed up in campaign profiles).
	crMask  int
	vcClass [MaxVCs]int

	hasPort [P]bool
	in      [P]inputPort
	out     [P]outputPort

	va1 [P]arbiter.Arbiter // local VA arbiters, per input port
	sa1 [P]arbiter.Arbiter // local SA arbiters, per input port
	va2 [P]arbiter.Arbiter // global VA arbiters, per output port
	sa2 [P]arbiter.Arbiter // global SA arbiters, per output port

	// va1WinnerReg latches each input port's most recent VA1 winner;
	// like sa1WinnerReg it is sticky, so a faulted VA2 grant to a port
	// with no fresh VA1 win drives a stale VC — the hardware-accurate
	// failure mode.
	va1WinnerReg [P]int

	// Switch-traversal pipeline latches, written by SA at cycle t and
	// consumed by the crossbar at t+1.
	stCol  [P]bitvec.Vec // per output port: granted input rows
	readEn [P]bool       // per input port: read enable
	stOut  [P]int        // per input port: intended output port
	stSpec [P]bool       // per input port: grant was speculative

	plane *fault.Plane
	// planeLive caches plane.LiveAt for the current cycle (set in
	// BeginCycle) so the 20+ per-cycle fault consults cost one branch
	// when no fault window is open.
	planeLive bool

	// Per-cycle staging filled by the network before Evaluate.
	arriving [P]*flit.Flit
	creditIn [P]bitvec.Vec

	sig        Signals
	creditsOut []CreditOut
}

// New constructs the router for node id of the configured mesh. The
// plane may be nil for fault-free operation.
func New(id int, cfg *Config, plane *fault.Plane) *Router {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("router: %v", err))
	}
	r := &Router{id: id, cfg: cfg, plane: plane}
	r.x, r.y = cfg.Mesh.Coords(id)
	r.crMask = 1<<fault.BitsFor(cfg.BufDepth) - 1
	for v := 0; v < cfg.VCs; v++ {
		r.vcClass[v] = cfg.ClassOfVC(v)
	}
	for d := topology.North; d < topology.NumPorts; d++ {
		p := int(d)
		if !cfg.Mesh.HasPort(id, d) {
			continue
		}
		r.hasPort[p] = true
		r.in[p].vcs = make([]inVC, cfg.VCs)
		for v := range r.in[p].vcs {
			r.in[p].vcs[v].reset()
			r.in[p].vcs[v].buf = make([]*flit.Flit, 0, cfg.BufDepth)
		}
		r.out[p].vcs = make([]outVCState, cfg.VCs)
		for v := range r.out[p].vcs {
			r.out[p].vcs[v] = outVCState{free: true, credits: cfg.BufDepth}
		}
		r.va1[p] = arbiter.NewRoundRobin(cfg.VCs)
		r.sa1[p] = arbiter.NewRoundRobin(cfg.VCs)
		r.va2[p] = arbiter.NewRoundRobin(P)
		r.sa2[p] = arbiter.NewRoundRobin(P)
	}
	for p := range r.stOut {
		r.stOut[p] = -1
	}
	r.sig.Pre.init(cfg)
	return r
}

func (pre *Pre) init(cfg *Config) {
	for p := 0; p < P; p++ {
		pre.In[p] = make([]PreVC, cfg.VCs)
		pre.Out[p] = make([]PreOutVC, cfg.VCs)
	}
}

// ID returns the router's node id.
func (r *Router) ID() int { return r.id }

// Config returns the shared router configuration.
func (r *Router) Config() *Config { return r.cfg }

// HasPort reports whether the router has the given port.
func (r *Router) HasPort(d topology.Direction) bool { return r.hasPort[int(d)] }

// SetPlane replaces the fault plane (used when forking campaign runs).
func (r *Router) SetPlane(p *fault.Plane) { r.plane = p }

// Signals returns the current cycle's signal record. The record is
// valid until the next BeginCycle.
func (r *Router) Signals() *Signals { return &r.sig }

// Credits returns the credits emitted by the last Evaluate.
func (r *Router) Credits() []CreditOut { return r.creditsOut }

// StageArrival presents a flit on input port d; it is consumed by the
// next Evaluate. Staging two flits on one port in one cycle is a
// protocol violation by the caller and panics.
func (r *Router) StageArrival(d topology.Direction, f *flit.Flit) {
	p := int(d)
	if r.arriving[p] != nil {
		panic(fmt.Sprintf("router %d: two flits staged on port %s in one cycle", r.id, d))
	}
	r.arriving[p] = f
}

// StageCredit presents a returning credit for VC vc of output port d.
func (r *Router) StageCredit(d topology.Direction, vc int) {
	r.creditIn[int(d)] = r.creditIn[int(d)].Set(vc)
}

// ---- faulted register read path ----

// fWord and fVec are the plane consults every signal read goes through.
// planeLive (recomputed once per cycle in BeginCycle) short-circuits
// them to a plain read on the overwhelming majority of cycles where no
// fault window is open — campaign runs spend thousands of cycles per
// single-cycle fault, so this branch is the plane's real fast path.

func (r *Router) fWord(cycle int64, kind fault.Kind, port, vc, value int) int {
	if !r.planeLive {
		return value
	}
	return r.plane.Word(cycle, r.id, kind, port, vc, value)
}

func (r *Router) fVec(cycle int64, kind fault.Kind, port, vc int, value uint32) uint32 {
	if !r.planeLive {
		return value
	}
	return r.plane.Vec(cycle, r.id, kind, port, vc, value)
}

// The four register readers below each split into a thin wrapper and
// an outlined fault path: the wrapper is small enough to inline into
// the phase loops, and on the overwhelming majority of cycles — no
// fault window open — it reduces to a plain field load. The raw reads
// skip the readers' masks, which is safe because every write site
// stores masked values (see applyRegisterUpsets and the phase code).

func (r *Router) vcStateR(cycle int64, p, v int) VCState {
	if r.planeLive {
		return r.vcStateFaulted(cycle, p, v)
	}
	return r.in[p].vcs[v].state
}

//go:noinline
func (r *Router) vcStateFaulted(cycle int64, p, v int) VCState {
	raw := r.plane.Word(cycle, r.id, fault.VCStateReg, p, v, int(r.in[p].vcs[v].state))
	return VCState(raw & 7)
}

func (r *Router) vcRouteR(cycle int64, p, v int) int {
	if r.planeLive {
		return r.vcRouteFaulted(cycle, p, v)
	}
	return r.in[p].vcs[v].route
}

//go:noinline
func (r *Router) vcRouteFaulted(cycle int64, p, v int) int {
	return r.plane.Word(cycle, r.id, fault.VCRouteReg, p, v, r.in[p].vcs[v].route) & (1<<DirWidth - 1)
}

func (r *Router) vcOutVCR(cycle int64, p, v int) int {
	if r.planeLive {
		return r.vcOutVCFaulted(cycle, p, v)
	}
	return r.in[p].vcs[v].outVC
}

//go:noinline
func (r *Router) vcOutVCFaulted(cycle int64, p, v int) int {
	return r.plane.Word(cycle, r.id, fault.VCOutVCReg, p, v, r.in[p].vcs[v].outVC) & (MaxVCs - 1)
}

func (r *Router) creditMask() int { return r.crMask }

func (r *Router) creditR(cycle int64, o, v int) int {
	if r.planeLive {
		return r.creditFaulted(cycle, o, v)
	}
	return r.out[o].vcs[v].credits
}

//go:noinline
func (r *Router) creditFaulted(cycle int64, o, v int) int {
	return r.plane.Word(cycle, r.id, fault.CreditCountReg, o, v, r.out[o].vcs[v].credits) & r.crMask
}

// ---- cycle evaluation ----

// BeginCycle starts cycle t: single-event upsets scheduled for this
// cycle are applied to the storage elements, and the pre-cycle
// architectural snapshot is taken (through the faulted read path, the
// same view the hardware checkers have).
func (r *Router) BeginCycle(cycle int64) {
	r.planeLive = r.plane.LiveAt(cycle)
	r.applyRegisterUpsets(cycle)
	r.sig.reset(r.id, cycle)
	r.creditsOut = r.creditsOut[:0]
	for p := 0; p < P; p++ {
		if !r.hasPort[p] {
			continue
		}
		ins, preIn := r.in[p].vcs, r.sig.Pre.In[p]
		outs, preOut := r.out[p].vcs, r.sig.Pre.Out[p]
		for v := range ins {
			vc := &ins[v]
			// Fill the snapshot in place rather than building a PreVC on
			// the stack and copying it — the copy was the single hottest
			// line in campaign profiles.
			pv := &preIn[v]
			pv.State = r.vcStateR(cycle, p, v)
			pv.Route = r.vcRouteR(cycle, p, v)
			pv.OutVC = r.vcOutVCR(cycle, p, v)
			pv.BufLen = len(vc.buf)
			pv.Arrived = vc.arrived
			pv.PktID = vc.pktID
			if h := vc.head(); h != nil {
				pv.HasHead = true
				pv.HeadKind = h.Kind
				pv.HeadPkt = h.PacketID
				pv.Class = h.Class
			} else {
				pv.HasHead = false
				pv.HeadKind = 0
				pv.HeadPkt = 0
				pv.Class = r.vcClass[v]
			}
			ovc := &outs[v]
			po := &preOut[v]
			po.Free = ovc.free
			po.Credits = r.creditR(cycle, p, v)
			po.TailSent = ovc.tailSent
		}
	}
}

func (r *Router) applyRegisterUpsets(cycle int64) {
	for _, f := range r.plane.TransientRegisterFlips(cycle, r.id) {
		s := f.Site
		if s.Port < 0 || s.Port >= P || !r.hasPort[s.Port] {
			continue
		}
		if s.VC < 0 || s.VC >= r.cfg.VCs {
			continue
		}
		bit := 1 << uint(f.Bit)
		switch s.Kind {
		case fault.VCStateReg:
			vc := &r.in[s.Port].vcs[s.VC]
			vc.state = VCState((int(vc.state) ^ bit) & 7)
		case fault.VCRouteReg:
			vc := &r.in[s.Port].vcs[s.VC]
			vc.route = (vc.route ^ bit) & (1<<DirWidth - 1)
		case fault.VCOutVCReg:
			vc := &r.in[s.Port].vcs[s.VC]
			vc.outVC = (vc.outVC ^ bit) & (MaxVCs - 1)
		case fault.CreditCountReg:
			ovc := &r.out[s.Port].vcs[s.VC]
			ovc.credits = (ovc.credits ^ bit) & r.creditMask()
		}
	}
}

// Evaluate runs one cycle of the router pipeline. Phases execute in an
// order that gives each flit at most one stage per cycle: buffer writes
// and credit returns first (folded into the RC stage as in GARNET's
// BW/RC stage), then crossbar traversal of last cycle's switch grants,
// then SA, VA and RC. Departures are exposed via Signals().Departures
// and credits via Credits().
func (r *Router) Evaluate(cycle int64) {
	r.phaseBW(cycle)
	r.phaseST(cycle)
	r.phaseSA(cycle)
	r.phaseVA(cycle)
	r.phaseRC(cycle)
}

// phaseBW latches arriving flits into VC buffers and absorbs returning
// credits.
func (r *Router) phaseBW(cycle int64) {
	for p := 0; p < P; p++ {
		if !r.hasPort[p] {
			continue
		}
		if f := r.arriving[p]; f != nil {
			r.arriving[p] = nil
			r.writeFlit(cycle, p, f)
		}
		cin := r.fVec(cycle, fault.CreditSig, p, -1, uint32(r.creditIn[p]))
		r.creditIn[p] = 0
		vec := bitvec.Vec(cin) & bitvec.Mask(r.cfg.VCs)
		r.sig.CreditsIn[p] = vec
		for w := vec; !w.IsZero(); {
			var v int
			v, w = w.NextBit()
			ovc := &r.out[p].vcs[v]
			ovc.credits = (ovc.credits + 1) & r.creditMask()
			if ovc.tailSent && !ovc.free && ovc.credits >= r.cfg.BufDepth {
				// Wormhole fully drained downstream: recycle the VC.
				ovc.free = true
				ovc.tailSent = false
			}
		}
	}
}

func (r *Router) writeFlit(cycle int64, p int, f *flit.Flit) {
	kindRaw := r.fWord(cycle, fault.FlitKindIn, p, -1, int(f.Kind)) & 3
	f.Kind = flit.Kind(kindRaw)
	vcRaw := r.fWord(cycle, fault.FlitVCIn, p, -1, f.VC) & (MaxVCs - 1)
	f.VC = vcRaw
	var strobe bitvec.Vec
	if vcRaw < r.cfg.VCs {
		strobe = bitvec.New(vcRaw)
	}
	strobe = bitvec.Vec(r.fVec(cycle, fault.BufWrite, p, -1, uint32(strobe))) & bitvec.Mask(r.cfg.VCs)
	arr := Arrival{Port: p, Kind: f.Kind, VCField: vcRaw, Strobe: strobe, Flit: f}
	i := -1
	for w := strobe; !w.IsZero(); {
		var v int
		v, w = w.NextBit()
		i++
		vc := &r.in[p].vcs[v]
		t := WriteTarget{
			VC:          v,
			FullBefore:  vc.full(r.cfg.BufDepth),
			StateBefore: r.vcStateR(cycle, p, v),
			ResidentPkt: vc.pktID,
		}
		if vc.hasLastWritten {
			t.HasPrev = true
			t.PrevKind = vc.lastWritten.Kind
		}
		if !t.FullBefore {
			stored := f
			if i > 0 {
				// A multi-strobe write (fault) latches copies into each
				// addressed buffer — spontaneous flit duplication.
				stored = f.Clone()
			}
			vc.push(stored)
			if stored.Kind.IsHead() {
				vc.arrived = 1
				if vc.state == VCIdle {
					vc.state = VCRouting
					vc.pktID = stored.PacketID
					vc.route = rawInvalidDir
					vc.outVC = 0
				}
				// A header landing on a busy VC is an atomicity breach;
				// the resident wormhole's registers are left in place and
				// the interloper mixes in behind it.
			} else {
				vc.arrived++
			}
		}
		t.ArrivedAfter = vc.arrived
		arr.Targets = append(arr.Targets, t)
	}
	r.sig.Arrivals = append(r.sig.Arrivals, arr)
}

// phaseST performs crossbar traversal for last cycle's switch grants:
// per-input read strobes pop the buffers, rows drive flits, and the
// (possibly faulted) column control vectors connect rows to outputs.
func (r *Router) phaseST(cycle int64) {
	var rowFlit [P]*flit.Flit
	var rowGarbage [P]bool
	for p := 0; p < P; p++ {
		if !r.hasPort[p] || !r.readEn[p] {
			continue
		}
		r.readEn[p] = false
		intended := r.stOut[p]
		r.stOut[p] = -1
		spec := r.stSpec[p]
		r.stSpec[p] = false

		vcSel := r.in[p].sa1WinnerReg
		nullified := false
		if spec {
			// Commit check for a speculative grant: VA must have
			// completed and a credit must be available.
			st := r.vcStateR(cycle, p, vcSel)
			ovc := r.vcOutVCR(cycle, p, vcSel)
			if st != VCActive || ovc >= r.cfg.VCs || intended < 0 || r.creditR(cycle, intended, ovc) <= 0 {
				nullified = true
				if intended >= 0 {
					r.sig.XbarSpecNull = r.sig.XbarSpecNull.Set(intended)
				}
			} else {
				o := &r.out[intended].vcs[ovc]
				o.credits = (o.credits - 1) & r.creditMask()
			}
		}
		var strobe bitvec.Vec
		if !nullified && vcSel < r.cfg.VCs {
			strobe = bitvec.New(vcSel)
		}
		strobe = bitvec.Vec(r.fVec(cycle, fault.BufRead, p, -1, uint32(strobe))) & bitvec.Mask(r.cfg.VCs)
		var emptyBits bitvec.Vec
		var selFlit, firstFlit *flit.Flit
		var selGarbage, firstGarbage bool
		for w := strobe; !w.IsZero(); {
			var v int
			v, w = w.NextBit()
			vc := &r.in[p].vcs[v]
			if vc.empty() {
				emptyBits = emptyBits.Set(v)
			}
			f, garbage := vc.pop()
			if f == nil {
				continue // nothing was ever read from this buffer
			}
			f.VC = r.vcOutVCR(cycle, p, v)
			if !garbage {
				r.creditsOut = append(r.creditsOut, CreditOut{Port: topology.Direction(p), VC: v})
				if f.Kind.IsTail() {
					r.teardown(p, v, intended, f)
				}
			}
			if v == vcSel {
				selFlit, selGarbage = f, garbage
			} else if firstFlit == nil {
				firstFlit, firstGarbage = f, garbage
			}
		}
		if selFlit != nil {
			rowFlit[p], rowGarbage[p] = selFlit, selGarbage
		} else {
			rowFlit[p], rowGarbage[p] = firstFlit, firstGarbage
		}
		r.sig.Reads[p] = ReadSig{Strobe: strobe, EmptyBits: emptyBits}
	}

	var usedRows bitvec.Vec
	for o := 0; o < P; o++ {
		if !r.hasPort[o] {
			continue
		}
		col := r.stCol[o]
		r.stCol[o] = 0
		col = bitvec.Vec(r.fVec(cycle, fault.XbarSel, o, -1, uint32(col))) & bitvec.Mask(P)
		r.sig.XbarCol[o] = col
		took := false
		for w := col; !w.IsZero(); {
			var row int
			row, w = w.NextBit()
			if took || rowFlit[row] == nil {
				// A second connected row collides on the output bus (the
				// first wins); an empty row transmits nothing.
				continue
			}
			took = true
			f := rowFlit[row]
			if usedRows.Get(row) {
				// Two columns latched the same row: the flit fans out —
				// spontaneous duplication.
				f = f.Clone()
			}
			usedRows = usedRows.Set(row)
			r.sig.Departures = append(r.sig.Departures, Departure{
				OutPort: o, OutVC: f.VC, InPort: row, Flit: f, Garbage: rowGarbage[row],
			})
		}
	}
	in := 0
	var rows bitvec.Vec
	for p := 0; p < P; p++ {
		if rowFlit[p] != nil {
			in++
			rows = rows.Set(p)
		}
	}
	r.sig.XbarRows = rows
	r.sig.XbarIn = in
	r.sig.XbarOut = len(r.sig.Departures)
}

// teardown recycles an input VC after its tail flit departs.
func (r *Router) teardown(p, v, intendedOut int, tail *flit.Flit) {
	vc := &r.in[p].vcs[v]
	if intendedOut >= 0 && r.hasPort[intendedOut] && tail.VC < r.cfg.VCs {
		r.out[intendedOut].vcs[tail.VC].tailSent = true
	}
	if !r.cfg.AtomicVC {
		if h := vc.head(); h != nil && h.Kind.IsHead() {
			// The next packet is already buffered; restart its pipeline.
			vc.state = VCRouting
			vc.pktID = h.PacketID
			vc.route = rawInvalidDir
			vc.outVC = 0
			return
		}
	}
	vc.reset()
}

// phaseSA runs the separable switch allocation: SA1 picks one VC per
// input port (checking downstream credits), SA2 picks one input port
// per output port and latches the crossbar reservation for next cycle.
func (r *Router) phaseSA(cycle int64) {
	var sa1win [P]int
	var sa1spec [P]bool
	for p := 0; p < P; p++ {
		sa1win[p] = -1
		if !r.hasPort[p] {
			continue
		}
		var req bitvec.Vec
		var specBits bitvec.Vec
		for v := 0; v < r.cfg.VCs; v++ {
			vc := &r.in[p].vcs[v]
			if vc.empty() {
				continue
			}
			st := r.vcStateR(cycle, p, v)
			switch {
			case st == VCActive:
				route := r.vcRouteR(cycle, p, v)
				if route >= P || !r.hasPort[route] {
					continue
				}
				ovc := r.vcOutVCR(cycle, p, v)
				if ovc >= r.cfg.VCs || r.creditR(cycle, route, ovc) <= 0 {
					continue
				}
				req = req.Set(v)
			case r.cfg.Speculative && st == VCWaitingVA:
				route := r.vcRouteR(cycle, p, v)
				if route >= P || !r.hasPort[route] {
					continue
				}
				req = req.Set(v)
				specBits = specBits.Set(v)
			}
		}
		req = bitvec.Vec(r.fVec(cycle, fault.SA1Req, p, -1, uint32(req))) & bitvec.Mask(r.cfg.VCs)
		gnt := r.sa1[p].Arbitrate(req)
		gnt = bitvec.Vec(r.fVec(cycle, fault.SA1Gnt, p, -1, uint32(gnt))) & bitvec.Mask(r.cfg.VCs)
		r.sig.SA1[p] = ReqGnt{Req: req, Gnt: gnt}
		if w := gnt.First(); w >= 0 {
			sa1win[p] = w
			sa1spec[p] = specBits.Get(w)
			r.in[p].sa1WinnerReg = w
		}
	}
	for o := 0; o < P; o++ {
		if !r.hasPort[o] {
			continue
		}
		var req bitvec.Vec
		for p := 0; p < P; p++ {
			w := sa1win[p]
			if w < 0 {
				continue
			}
			if r.vcRouteR(cycle, p, w) == o {
				req = req.Set(p)
			}
		}
		req = bitvec.Vec(r.fVec(cycle, fault.SA2Req, o, -1, uint32(req))) & bitvec.Mask(P)
		gnt := r.sa2[o].Arbitrate(req)
		gnt = bitvec.Vec(r.fVec(cycle, fault.SA2Gnt, o, -1, uint32(gnt))) & bitvec.Mask(P)
		r.sig.SA2[o] = ReqGnt{Req: req, Gnt: gnt}
		if gnt.IsZero() {
			continue
		}
		r.stCol[o] = gnt
		for w := gnt; !w.IsZero(); {
			var p int
			p, w = w.NextBit()
			if !r.hasPort[p] {
				continue
			}
			r.readEn[p] = true
			r.stOut[p] = o
			vcSel := r.in[p].sa1WinnerReg
			spec := sa1win[p] == vcSel && sa1spec[p]
			r.stSpec[p] = spec
			ovc := r.vcOutVCR(cycle, p, vcSel)
			latch := SALatch{OutPort: o, InPort: p, InVC: vcSel, OutVC: ovc, Speculative: spec}
			if ovc < r.cfg.VCs {
				latch.CreditsBefore = r.creditR(cycle, o, ovc)
				if !spec {
					// Reserve the downstream slot now; the datapath
					// follows next cycle.
					s := &r.out[o].vcs[ovc]
					s.credits = (s.credits - 1) & r.creditMask()
				}
			}
			r.sig.SALatches = append(r.sig.SALatches, latch)
		}
	}
}

// phaseVA runs the separable virtual-channel allocation: VA1 picks one
// routed VC per input port, VA2 picks one input port per output port
// and assigns it a free downstream VC of the packet's message class.
func (r *Router) phaseVA(cycle int64) {
	var va1win [P]int
	for p := 0; p < P; p++ {
		va1win[p] = -1
		if !r.hasPort[p] {
			continue
		}
		var req bitvec.Vec
		for v := 0; v < r.cfg.VCs; v++ {
			if r.vcStateR(cycle, p, v) == VCWaitingVA {
				req = req.Set(v)
			}
		}
		req = bitvec.Vec(r.fVec(cycle, fault.VA1Req, p, -1, uint32(req))) & bitvec.Mask(r.cfg.VCs)
		gnt := r.va1[p].Arbitrate(req)
		gnt = bitvec.Vec(r.fVec(cycle, fault.VA1Gnt, p, -1, uint32(gnt))) & bitvec.Mask(r.cfg.VCs)
		r.sig.VA1[p] = ReqGnt{Req: req, Gnt: gnt}
		if w := gnt.First(); w >= 0 {
			va1win[p] = w
			r.va1WinnerReg[p] = w
		}
	}
	for o := 0; o < P; o++ {
		if !r.hasPort[o] {
			continue
		}
		var req bitvec.Vec
		for p := 0; p < P; p++ {
			w := va1win[p]
			if w < 0 {
				continue
			}
			if r.vcRouteR(cycle, p, w) != o {
				continue
			}
			if r.freeOutVC(o, r.classOf(p, w)) < 0 {
				// No free downstream VC in the packet's class: the input
				// VC does not bid this cycle.
				continue
			}
			req = req.Set(p)
		}
		req = bitvec.Vec(r.fVec(cycle, fault.VA2Req, o, -1, uint32(req))) & bitvec.Mask(P)
		gnt := r.va2[o].Arbitrate(req)
		gnt = bitvec.Vec(r.fVec(cycle, fault.VA2Gnt, o, -1, uint32(gnt))) & bitvec.Mask(P)
		r.sig.VA2[o] = ReqGnt{Req: req, Gnt: gnt}
		for gw := gnt; !gw.IsZero(); {
			var p int
			p, gw = gw.NextBit()
			if !r.hasPort[p] {
				continue
			}
			w := r.va1WinnerReg[p] // stale when the grant was faulted in
			chosen := r.freeOutVC(o, r.classOf(p, w))
			code := rawInvalidDir // garbage encoding when no VC was free
			if chosen >= 0 {
				code = chosen
			}
			code = r.fWord(cycle, fault.VA2OutVC, o, -1, code) & (MaxVCs - 1)
			assign := VAAssign{OutPort: o, InPort: p, InVC: w, OutVC: code}
			if code < r.cfg.VCs {
				tgt := &r.out[o].vcs[code]
				assign.TargetFree = tgt.free
				assign.TargetCredits = r.creditR(cycle, o, code)
				tgt.free = false
				tgt.tailSent = false
			}
			vc := &r.in[p].vcs[w]
			vc.outVC = code
			vc.state = VCActive
			r.sig.VAAssigns = append(r.sig.VAAssigns, assign)
		}
	}
}

// classOf returns the message class of the packet resident in (p, v):
// the head flit's class when one is buffered, else the class owning the
// VC partition.
func (r *Router) classOf(p, v int) int {
	if v < 0 || v >= r.cfg.VCs {
		return 0
	}
	if h := r.in[p].vcs[v].head(); h != nil {
		cl := h.Class
		if cl >= 0 && cl < r.cfg.Classes {
			return cl
		}
	}
	return r.vcClass[v]
}

// freeOutVC returns the lowest free output VC of port o within class,
// or -1.
func (r *Router) freeOutVC(o, class int) int {
	lo, hi := r.cfg.VCRange(class)
	for v := lo; v < hi; v++ {
		if r.out[o].vcs[v].free {
			return v
		}
	}
	return -1
}

// phaseRC runs routing computation. Each input port has per-VC RC
// logic, so every VC in the Routing state is served this cycle; under
// healthy operation at most one VC per port can be in that state
// (invariance 31 rests on exactly this).
func (r *Router) phaseRC(cycle int64) {
	for p := 0; p < P; p++ {
		if !r.hasPort[p] {
			continue
		}
		for v := 0; v < r.cfg.VCs; v++ {
			if r.vcStateR(cycle, p, v) != VCRouting {
				continue
			}
			r.execRC(cycle, p, v)
		}
	}
}

func (r *Router) execRC(cycle int64, p, v int) {
	vc := &r.in[p].vcs[v]
	var dx, dy int
	var kind flit.Kind
	head := vc.head()
	hasHead := head != nil
	switch {
	case head != nil:
		dx, dy, kind = head.DestX, head.DestY, head.Kind
	case vc.hasLastRead:
		// RC on an empty buffer consumes whatever the stale storage
		// holds (an "empty" slot is not blank).
		dx, dy, kind = vc.lastRead.DestX, vc.lastRead.DestY, vc.lastRead.Kind
	}
	trueDX, trueDY := dx, dy
	xMask := 1<<fault.BitsFor(r.cfg.Mesh.W-1) - 1
	yMask := 1<<fault.BitsFor(r.cfg.Mesh.H-1) - 1
	dx = r.fWord(cycle, fault.RCInDestX, p, -1, dx) & xMask
	dy = r.fWord(cycle, fault.RCInDestY, p, -1, dy) & yMask
	cands := r.cfg.Alg.Candidates(r.cfg.Mesh, r.id, dx, dy, topology.Direction(p))
	dir := r.pickCandidate(cands)
	code := int(dir) & (1<<DirWidth - 1)
	code = r.fWord(cycle, fault.RCOutDir, p, -1, code) & (1<<DirWidth - 1)
	vc.route = code
	vc.state = VCWaitingVA
	r.sig.RCExecs = append(r.sig.RCExecs, RCExec{
		Port: p, VC: v, HasHead: hasHead, HeadKind: kind,
		DestX: dx, DestY: dy, TrueDestX: trueDX, TrueDestY: trueDY, OutDir: code,
	})
	r.sig.RCDone[p] = r.sig.RCDone[p].Set(v)
}

// pickCandidate selects among the algorithm's permitted directions:
// deterministic algorithms offer one; adaptive algorithms are broken
// toward the output port with the most free VCs (a standard local
// congestion heuristic).
func (r *Router) pickCandidate(cands []topology.Direction) topology.Direction {
	if len(cands) == 0 {
		return topology.Invalid
	}
	if len(cands) == 1 {
		return cands[0]
	}
	best := cands[0]
	bestFree := -1
	for _, d := range cands {
		o := int(d)
		if o < 0 || o >= P || !r.hasPort[o] {
			continue
		}
		free := 0
		for v := range r.out[o].vcs {
			if r.out[o].vcs[v].free {
				free++
			}
		}
		if free > bestFree {
			bestFree = free
			best = d
		}
	}
	return best
}
