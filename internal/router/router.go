package router

import (
	"fmt"

	"nocalert/internal/bitvec"
	"nocalert/internal/fault"
	"nocalert/internal/flit"
	"nocalert/internal/soa"
	"nocalert/internal/topology"
)

// CreditOut is a credit the router returns upstream after draining one
// buffer slot of input port Port, virtual channel VC. The network
// delivers it to the upstream router's matching output port (or to the
// local network interface) with one cycle of latency.
type CreditOut struct {
	Port topology.Direction
	VC   int
}

// Router is one five-stage pipelined NoC router. Its architectural
// registers live in a structure-of-arrays window (st, see internal/soa)
// shared with the whole network; the struct itself keeps only the
// pointer-typed residue (flit buffers, read/write latches, per-cycle
// staging). All mutable state is reachable from the struct plus the
// window and deep-copied by Clone, which is what lets fault campaigns
// fork thousands of runs from one warmed network.
type Router struct {
	id   int
	x, y int
	cfg  *Config

	// crMask and vcClass cache 1<<BitsFor(BufDepth)-1 and ClassOfVC —
	// both consulted for every VC every cycle, and cheap enough to
	// precompute once in New rather than re-derive (BitsFor and the
	// ClassOfVC divisions showed up in campaign profiles).
	crMask  int32
	vcClass [MaxVCs]int

	hasPort [P]bool
	in      [P]inputPort

	// st is this router's window into the flat register file: VC status
	// tables, credit counters, ST latches, arbiter priority pointers and
	// the NonIdle/Occupied masks the fast sweeps iterate.
	st soa.View

	plane *fault.Plane
	// planeLive caches plane.LiveAt for the current cycle (set in
	// BeginCycle) so the 20+ per-cycle fault consults cost one branch
	// when no fault window is open.
	planeLive bool
	// sweepRef forces the reference full-VC-range sweeps in SA/VA/RC
	// (the -no-soa engine); fastSweep, recomputed each BeginCycle, is
	// true when the mask-driven sparse sweeps are in effect this cycle.
	// The two engines share storage and per-register semantics — only
	// the iteration sets differ, and the masks make them provably equal.
	sweepRef  bool
	fastSweep bool

	// Per-cycle staging filled by the network before Evaluate.
	arriving [P]*flit.Flit

	sig        Signals
	creditsOut []CreditOut
}

// New constructs a standalone router for node id of the configured mesh,
// backed by a private single-router SoA state. The plane may be nil for
// fault-free operation. Networks bind their routers to one shared state
// via NewInState instead.
func New(id int, cfg *Config, plane *fault.Plane) *Router {
	st := soa.NewState(soa.Layout{R: 1, P: P, V: cfg.VCs})
	return NewInState(id, cfg, plane, st.View(0))
}

// NewInState constructs the router for node id bound to the given SoA
// window (st must be the router's own view of a state sized for this
// configuration).
func NewInState(id int, cfg *Config, plane *fault.Plane, st soa.View) *Router {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("router: %v", err))
	}
	if st.P != P || st.V != cfg.VCs {
		panic(fmt.Sprintf("router: state window %dx%d does not fit config %dx%d", st.P, st.V, P, cfg.VCs))
	}
	r := &Router{id: id, cfg: cfg, plane: plane, st: st}
	r.x, r.y = cfg.Mesh.Coords(id)
	r.crMask = int32(1<<fault.BitsFor(cfg.BufDepth) - 1)
	for v := 0; v < cfg.VCs; v++ {
		r.vcClass[v] = cfg.ClassOfVC(v)
	}
	for d := topology.North; d < topology.NumPorts; d++ {
		p := int(d)
		if !cfg.Mesh.HasPort(id, d) {
			continue
		}
		r.hasPort[p] = true
		r.in[p].vcs = make([]inVC, cfg.VCs)
		for v := range r.in[p].vcs {
			r.resetVC(p, v)
			r.in[p].vcs[v].buf = make([]*flit.Flit, 0, cfg.BufDepth)
			i := p*st.V + v
			st.Credits[i] = int32(cfg.BufDepth)
			st.OutFlags[i] = soa.OutFree
		}
	}
	for p := 0; p < P; p++ {
		st.StOut[p] = -1
	}
	r.sig.Pre.init(cfg)
	return r
}

// NewCloneTarget returns an empty router shell bound to the given SoA
// window, suitable only as a CloneInto destination. Networks use it to
// pre-bind a fork target's routers to the fork's shared state.
func NewCloneTarget(cfg *Config, st soa.View) *Router {
	c := &Router{cfg: cfg, st: st}
	c.sig.Pre.init(cfg)
	return c
}

func (pre *Pre) init(cfg *Config) {
	for p := 0; p < P; p++ {
		pre.In[p] = make([]PreVC, cfg.VCs)
		pre.Out[p] = make([]PreOutVC, cfg.VCs)
	}
}

// ID returns the router's node id.
func (r *Router) ID() int { return r.id }

// Config returns the shared router configuration.
func (r *Router) Config() *Config { return r.cfg }

// HasPort reports whether the router has the given port.
func (r *Router) HasPort(d topology.Direction) bool { return r.hasPort[int(d)] }

// SetPlane replaces the fault plane (used when forking campaign runs).
func (r *Router) SetPlane(p *fault.Plane) { r.plane = p }

// SetReferenceSweep selects the reference engine: full VC-range sweeps
// every cycle instead of the mask-driven sparse sweeps. The two engines
// produce identical behaviour — the CI identity gate proves it — so this
// exists as the -no-soa escape hatch and as the lockstep test's baseline.
func (r *Router) SetReferenceSweep(on bool) { r.sweepRef = on }

// Signals returns the current cycle's signal record. The record is
// valid until the next BeginCycle.
func (r *Router) Signals() *Signals { return &r.sig }

// Credits returns the credits emitted by the last Evaluate.
func (r *Router) Credits() []CreditOut { return r.creditsOut }

// StageArrival presents a flit on input port d; it is consumed by the
// next Evaluate. Staging two flits on one port in one cycle is a
// protocol violation by the caller and panics.
func (r *Router) StageArrival(d topology.Direction, f *flit.Flit) {
	p := int(d)
	if r.arriving[p] != nil {
		panic(fmt.Sprintf("router %d: two flits staged on port %s in one cycle", r.id, d))
	}
	r.arriving[p] = f
}

// StageCredit presents a returning credit for VC vc of output port d.
func (r *Router) StageCredit(d topology.Direction, vc int) {
	r.st.CreditIn[int(d)] |= 1 << uint(vc)
}

// Inert reports whether stepping this router would change no state and
// produce an all-vacuous signal record: every VC idle and empty, no
// crossbar reservation or read enable pending, no staged arrivals or
// credits. The check is a word-at-a-time OR over the per-port masks.
// Only meaningful when the fault plane has no open window — a live
// fault can perturb even an idle router — and a skipped router's
// per-cycle staging (Signals, Credits) goes stale, so the network must
// skip its link-traversal and monitor visits too.
func (r *Router) Inert() bool {
	var acc uint32
	for p := 0; p < P; p++ {
		acc |= r.st.NonIdle[p] | r.st.Occupied[p] | r.st.StCol[p] | r.st.CreditIn[p] | uint32(r.st.StFlags[p])
		if r.arriving[p] != nil {
			return false
		}
	}
	return acc == 0
}

// ---- SoA register helpers ----

// iv returns the flat index of (port, vc) in the per-(port,vc) arrays.
func (r *Router) iv(p, v int) int { return p*r.st.V + v }

// setVCState writes the state register and maintains the NonIdle mask —
// the single funnel for every state transition, which is what keeps the
// mask exact for the sparse sweeps and the inert check.
func (r *Router) setVCState(p, v int, s VCState) {
	r.st.VCState[r.iv(p, v)] = uint8(s)
	if s == VCIdle {
		r.st.NonIdle[p] &^= 1 << uint(v)
	} else {
		r.st.NonIdle[p] |= 1 << uint(v)
	}
}

// resetVC returns the VC status registers to their free-VC values.
func (r *Router) resetVC(p, v int) {
	i := r.iv(p, v)
	r.setVCState(p, v, VCIdle)
	r.st.VCRoute[i] = rawInvalidDir
	r.st.VCOutVC[i] = 0
	r.st.PktID[i] = 0
	r.st.Arrived[i] = 0
}

// push appends a flit to (p,v)'s buffer and maintains the write latch
// and the Occupied mask; the caller has already checked capacity policy
// (an overflowing write drops the flit instead).
func (r *Router) push(p, v int, f *flit.Flit) {
	vc := &r.in[p].vcs[v]
	vc.buf = append(vc.buf, f)
	vc.lastWritten = *f
	vc.hasLastWritten = true
	r.st.Occupied[p] |= 1 << uint(v)
}

// pop removes and returns (p,v)'s head flit, maintaining the read latch
// and the Occupied mask. On an empty buffer it returns a clone of the
// stale lastRead flit (garbage read) or nil if nothing was ever read.
func (r *Router) pop(p, v int) (f *flit.Flit, garbage bool) {
	vc := &r.in[p].vcs[v]
	if len(vc.buf) == 0 {
		if !vc.hasLastRead {
			return nil, true
		}
		return vc.lastRead.Clone(), true
	}
	f = vc.buf[0]
	copy(vc.buf, vc.buf[1:])
	vc.buf = vc.buf[:len(vc.buf)-1]
	if len(vc.buf) == 0 {
		r.st.Occupied[p] &^= 1 << uint(v)
	}
	vc.lastRead = *f
	vc.hasLastRead = true
	return f, false
}

// ---- faulted register read path ----

// fWord and fVec are the plane consults every signal read goes through.
// planeLive (recomputed once per cycle in BeginCycle) short-circuits
// them to a plain read on the overwhelming majority of cycles where no
// fault window is open — campaign runs spend thousands of cycles per
// single-cycle fault, so this branch is the plane's real fast path.

func (r *Router) fWord(cycle int64, kind fault.Kind, port, vc, value int) int {
	if !r.planeLive {
		return value
	}
	return r.plane.Word(cycle, r.id, kind, port, vc, value)
}

func (r *Router) fVec(cycle int64, kind fault.Kind, port, vc int, value uint32) uint32 {
	if !r.planeLive {
		return value
	}
	return r.plane.Vec(cycle, r.id, kind, port, vc, value)
}

// The four register readers below each split into a thin wrapper and
// an outlined fault path: the wrapper is small enough to inline into
// the phase loops, and on the overwhelming majority of cycles — no
// fault window open — it reduces to a plain array load. The raw reads
// skip the readers' masks, which is safe because every write site
// stores masked values (see applyRegisterUpsets and the phase code).

func (r *Router) vcStateR(cycle int64, p, v int) VCState {
	if r.planeLive {
		return r.vcStateFaulted(cycle, p, v)
	}
	return VCState(r.st.VCState[p*r.st.V+v])
}

//go:noinline
func (r *Router) vcStateFaulted(cycle int64, p, v int) VCState {
	raw := r.plane.Word(cycle, r.id, fault.VCStateReg, p, v, int(r.st.VCState[r.iv(p, v)]))
	return VCState(raw & 7)
}

func (r *Router) vcRouteR(cycle int64, p, v int) int {
	if r.planeLive {
		return r.vcRouteFaulted(cycle, p, v)
	}
	return int(r.st.VCRoute[p*r.st.V+v])
}

//go:noinline
func (r *Router) vcRouteFaulted(cycle int64, p, v int) int {
	return r.plane.Word(cycle, r.id, fault.VCRouteReg, p, v, int(r.st.VCRoute[r.iv(p, v)])) & (1<<DirWidth - 1)
}

func (r *Router) vcOutVCR(cycle int64, p, v int) int {
	if r.planeLive {
		return r.vcOutVCFaulted(cycle, p, v)
	}
	return int(r.st.VCOutVC[p*r.st.V+v])
}

//go:noinline
func (r *Router) vcOutVCFaulted(cycle int64, p, v int) int {
	return r.plane.Word(cycle, r.id, fault.VCOutVCReg, p, v, int(r.st.VCOutVC[r.iv(p, v)])) & (MaxVCs - 1)
}

func (r *Router) creditMask() int32 { return r.crMask }

func (r *Router) creditR(cycle int64, o, v int) int {
	if r.planeLive {
		return r.creditFaulted(cycle, o, v)
	}
	return int(r.st.Credits[o*r.st.V+v])
}

//go:noinline
func (r *Router) creditFaulted(cycle int64, o, v int) int {
	return r.plane.Word(cycle, r.id, fault.CreditCountReg, o, v, int(r.st.Credits[r.iv(o, v)])) & int(r.crMask)
}

// ---- cycle evaluation ----

// BeginCycle starts cycle t: single-event upsets scheduled for this
// cycle are applied to the storage elements, and the pre-cycle
// architectural snapshot is taken (through the faulted read path, the
// same view the hardware checkers have).
func (r *Router) BeginCycle(cycle int64) {
	r.planeLive = r.plane.LiveAt(cycle)
	r.fastSweep = !r.sweepRef && !r.planeLive
	r.applyRegisterUpsets(cycle)
	r.sig.reset(r.id, cycle)
	r.creditsOut = r.creditsOut[:0]
	for p := 0; p < P; p++ {
		if !r.hasPort[p] {
			continue
		}
		ins, preIn := r.in[p].vcs, r.sig.Pre.In[p]
		preOut := r.sig.Pre.Out[p]
		base := p * r.st.V
		var act bitvec.Vec
		for v := range ins {
			vc := &ins[v]
			// Fill the snapshot in place rather than building a PreVC on
			// the stack and copying it — the copy was the single hottest
			// line in campaign profiles.
			pv := &preIn[v]
			pv.State = r.vcStateR(cycle, p, v)
			pv.Route = r.vcRouteR(cycle, p, v)
			pv.OutVC = r.vcOutVCR(cycle, p, v)
			pv.BufLen = len(vc.buf)
			pv.Arrived = int(r.st.Arrived[base+v])
			pv.PktID = r.st.PktID[base+v]
			if h := vc.head(); h != nil {
				pv.HasHead = true
				pv.HeadKind = h.Kind
				pv.HeadPkt = h.PacketID
				pv.Class = h.Class
			} else {
				pv.HasHead = false
				pv.HeadKind = 0
				pv.HeadPkt = 0
				pv.Class = r.vcClass[v]
			}
			// The activity mask is computed from the snapshot values
			// themselves (post-fault), so the checkers' sparse sweep over
			// it is exact even when a faulted read dresses up an idle VC.
			if pv.State != VCIdle || pv.BufLen > 0 {
				act = act.Set(v)
			}
			po := &preOut[v]
			fl := r.st.OutFlags[base+v]
			po.Free = fl&soa.OutFree != 0
			po.Credits = r.creditR(cycle, p, v)
			po.TailSent = fl&soa.OutTailSent != 0
		}
		r.sig.Pre.Active[p] = act
	}
}

func (r *Router) applyRegisterUpsets(cycle int64) {
	for _, f := range r.plane.TransientRegisterFlips(cycle, r.id) {
		s := f.Site
		if s.Port < 0 || s.Port >= P || !r.hasPort[s.Port] {
			continue
		}
		if s.VC < 0 || s.VC >= r.cfg.VCs {
			continue
		}
		bit := 1 << uint(f.Bit)
		i := r.iv(s.Port, s.VC)
		switch s.Kind {
		case fault.VCStateReg:
			r.setVCState(s.Port, s.VC, VCState((int(r.st.VCState[i])^bit)&7))
		case fault.VCRouteReg:
			r.st.VCRoute[i] = uint8((int(r.st.VCRoute[i]) ^ bit) & (1<<DirWidth - 1))
		case fault.VCOutVCReg:
			r.st.VCOutVC[i] = uint8((int(r.st.VCOutVC[i]) ^ bit) & (MaxVCs - 1))
		case fault.CreditCountReg:
			r.st.Credits[i] = (r.st.Credits[i] ^ int32(bit)) & r.crMask
		}
	}
}

// Evaluate runs one cycle of the router pipeline. Phases execute in an
// order that gives each flit at most one stage per cycle: buffer writes
// and credit returns first (folded into the RC stage as in GARNET's
// BW/RC stage), then crossbar traversal of last cycle's switch grants,
// then SA, VA and RC. Departures are exposed via Signals().Departures
// and credits via Credits().
func (r *Router) Evaluate(cycle int64) {
	r.phaseBW(cycle)
	r.phaseST(cycle)
	r.phaseSA(cycle)
	r.phaseVA(cycle)
	r.phaseRC(cycle)
}

// phaseBW latches arriving flits into VC buffers and absorbs returning
// credits.
func (r *Router) phaseBW(cycle int64) {
	for p := 0; p < P; p++ {
		if !r.hasPort[p] {
			continue
		}
		if f := r.arriving[p]; f != nil {
			r.arriving[p] = nil
			r.writeFlit(cycle, p, f)
		}
		cin := r.fVec(cycle, fault.CreditSig, p, -1, r.st.CreditIn[p])
		r.st.CreditIn[p] = 0
		vec := bitvec.Vec(cin) & bitvec.Mask(r.cfg.VCs)
		r.sig.CreditsIn[p] = vec
		base := p * r.st.V
		for w := vec; !w.IsZero(); {
			var v int
			v, w = w.NextBit()
			i := base + v
			r.st.Credits[i] = (r.st.Credits[i] + 1) & r.crMask
			fl := r.st.OutFlags[i]
			if fl&soa.OutTailSent != 0 && fl&soa.OutFree == 0 && int(r.st.Credits[i]) >= r.cfg.BufDepth {
				// Wormhole fully drained downstream: recycle the VC.
				r.st.OutFlags[i] = (fl | soa.OutFree) &^ soa.OutTailSent
			}
		}
	}
}

func (r *Router) writeFlit(cycle int64, p int, f *flit.Flit) {
	kindRaw := r.fWord(cycle, fault.FlitKindIn, p, -1, int(f.Kind)) & 3
	f.Kind = flit.Kind(kindRaw)
	vcRaw := r.fWord(cycle, fault.FlitVCIn, p, -1, f.VC) & (MaxVCs - 1)
	f.VC = vcRaw
	var strobe bitvec.Vec
	if vcRaw < r.cfg.VCs {
		strobe = bitvec.New(vcRaw)
	}
	strobe = bitvec.Vec(r.fVec(cycle, fault.BufWrite, p, -1, uint32(strobe))) & bitvec.Mask(r.cfg.VCs)
	arr := Arrival{Port: p, Kind: f.Kind, VCField: vcRaw, Strobe: strobe, Flit: f}
	i := -1
	for w := strobe; !w.IsZero(); {
		var v int
		v, w = w.NextBit()
		i++
		vc := &r.in[p].vcs[v]
		ri := r.iv(p, v)
		t := WriteTarget{
			VC:          v,
			FullBefore:  vc.full(r.cfg.BufDepth),
			StateBefore: r.vcStateR(cycle, p, v),
			ResidentPkt: r.st.PktID[ri],
		}
		if vc.hasLastWritten {
			t.HasPrev = true
			t.PrevKind = vc.lastWritten.Kind
		}
		if !t.FullBefore {
			stored := f
			if i > 0 {
				// A multi-strobe write (fault) latches copies into each
				// addressed buffer — spontaneous flit duplication.
				stored = f.Clone()
			}
			r.push(p, v, stored)
			if stored.Kind.IsHead() {
				r.st.Arrived[ri] = 1
				if VCState(r.st.VCState[ri]) == VCIdle {
					r.setVCState(p, v, VCRouting)
					r.st.PktID[ri] = stored.PacketID
					r.st.VCRoute[ri] = rawInvalidDir
					r.st.VCOutVC[ri] = 0
				}
				// A header landing on a busy VC is an atomicity breach;
				// the resident wormhole's registers are left in place and
				// the interloper mixes in behind it.
			} else {
				r.st.Arrived[ri]++
			}
		}
		t.ArrivedAfter = int(r.st.Arrived[ri])
		arr.Targets = append(arr.Targets, t)
	}
	r.sig.Arrivals = append(r.sig.Arrivals, arr)
}

// phaseST performs crossbar traversal for last cycle's switch grants:
// per-input read strobes pop the buffers, rows drive flits, and the
// (possibly faulted) column control vectors connect rows to outputs.
func (r *Router) phaseST(cycle int64) {
	var rowFlit [P]*flit.Flit
	var rowGarbage [P]bool
	for p := 0; p < P; p++ {
		if !r.hasPort[p] || r.st.StFlags[p]&soa.StReadEn == 0 {
			continue
		}
		intended := int(r.st.StOut[p])
		spec := r.st.StFlags[p]&soa.StSpec != 0
		r.st.StFlags[p] = 0
		r.st.StOut[p] = -1

		vcSel := int(r.st.SA1Win[p])
		nullified := false
		if spec {
			// Commit check for a speculative grant: VA must have
			// completed and a credit must be available.
			st := r.vcStateR(cycle, p, vcSel)
			ovc := r.vcOutVCR(cycle, p, vcSel)
			if st != VCActive || ovc >= r.cfg.VCs || intended < 0 || r.creditR(cycle, intended, ovc) <= 0 {
				nullified = true
				if intended >= 0 {
					r.sig.XbarSpecNull = r.sig.XbarSpecNull.Set(intended)
				}
			} else {
				i := r.iv(intended, ovc)
				r.st.Credits[i] = (r.st.Credits[i] - 1) & r.crMask
			}
		}
		var strobe bitvec.Vec
		if !nullified && vcSel < r.cfg.VCs {
			strobe = bitvec.New(vcSel)
		}
		strobe = bitvec.Vec(r.fVec(cycle, fault.BufRead, p, -1, uint32(strobe))) & bitvec.Mask(r.cfg.VCs)
		var emptyBits bitvec.Vec
		var selFlit, firstFlit *flit.Flit
		var selGarbage, firstGarbage bool
		for w := strobe; !w.IsZero(); {
			var v int
			v, w = w.NextBit()
			if r.in[p].vcs[v].empty() {
				emptyBits = emptyBits.Set(v)
			}
			f, garbage := r.pop(p, v)
			if f == nil {
				continue // nothing was ever read from this buffer
			}
			f.VC = r.vcOutVCR(cycle, p, v)
			if !garbage {
				r.creditsOut = append(r.creditsOut, CreditOut{Port: topology.Direction(p), VC: v})
				if f.Kind.IsTail() {
					r.teardown(p, v, intended, f)
				}
			}
			if v == vcSel {
				selFlit, selGarbage = f, garbage
			} else if firstFlit == nil {
				firstFlit, firstGarbage = f, garbage
			}
		}
		if selFlit != nil {
			rowFlit[p], rowGarbage[p] = selFlit, selGarbage
		} else {
			rowFlit[p], rowGarbage[p] = firstFlit, firstGarbage
		}
		r.sig.Reads[p] = ReadSig{Strobe: strobe, EmptyBits: emptyBits}
	}

	var usedRows bitvec.Vec
	for o := 0; o < P; o++ {
		if !r.hasPort[o] {
			continue
		}
		col := bitvec.Vec(r.st.StCol[o])
		r.st.StCol[o] = 0
		col = bitvec.Vec(r.fVec(cycle, fault.XbarSel, o, -1, uint32(col))) & bitvec.Mask(P)
		r.sig.XbarCol[o] = col
		took := false
		for w := col; !w.IsZero(); {
			var row int
			row, w = w.NextBit()
			if took || rowFlit[row] == nil {
				// A second connected row collides on the output bus (the
				// first wins); an empty row transmits nothing.
				continue
			}
			took = true
			f := rowFlit[row]
			if usedRows.Get(row) {
				// Two columns latched the same row: the flit fans out —
				// spontaneous duplication.
				f = f.Clone()
			}
			usedRows = usedRows.Set(row)
			r.sig.Departures = append(r.sig.Departures, Departure{
				OutPort: o, OutVC: f.VC, InPort: row, Flit: f, Garbage: rowGarbage[row],
			})
		}
	}
	in := 0
	var rows bitvec.Vec
	for p := 0; p < P; p++ {
		if rowFlit[p] != nil {
			in++
			rows = rows.Set(p)
		}
	}
	r.sig.XbarRows = rows
	r.sig.XbarIn = in
	r.sig.XbarOut = len(r.sig.Departures)
}

// teardown recycles an input VC after its tail flit departs.
func (r *Router) teardown(p, v, intendedOut int, tail *flit.Flit) {
	if intendedOut >= 0 && r.hasPort[intendedOut] && tail.VC < r.cfg.VCs {
		r.st.OutFlags[r.iv(intendedOut, tail.VC)] |= soa.OutTailSent
	}
	if !r.cfg.AtomicVC {
		if h := r.in[p].vcs[v].head(); h != nil && h.Kind.IsHead() {
			// The next packet is already buffered; restart its pipeline.
			i := r.iv(p, v)
			r.setVCState(p, v, VCRouting)
			r.st.PktID[i] = h.PacketID
			r.st.VCRoute[i] = rawInvalidDir
			r.st.VCOutVC[i] = 0
			return
		}
	}
	r.resetVC(p, v)
}

// sweepMask returns the candidate-VC iteration set for the allocation
// sweeps: in fast-sweep mode the maintained activity mask (exact — see
// the phase comments), in reference mode every VC.
func (r *Router) sweepMask(fast bitvec.Vec) bitvec.Vec {
	if r.fastSweep {
		return fast
	}
	return bitvec.Mask(r.cfg.VCs)
}

// phaseSA runs the separable switch allocation: SA1 picks one VC per
// input port (checking downstream credits), SA2 picks one input port
// per output port and latches the crossbar reservation for next cycle.
func (r *Router) phaseSA(cycle int64) {
	var sa1win [P]int
	var sa1spec [P]bool
	for p := 0; p < P; p++ {
		sa1win[p] = -1
		if !r.hasPort[p] {
			continue
		}
		var req bitvec.Vec
		var specBits bitvec.Vec
		// SA requests need a non-empty VC in the Active (or, speculatively,
		// WaitingVA) state: exactly the Occupied∩NonIdle mask when the
		// stored registers are the read values (no open fault window).
		for w := r.sweepMask(bitvec.Vec(r.st.Occupied[p] & r.st.NonIdle[p])); !w.IsZero(); {
			var v int
			v, w = w.NextBit()
			if r.in[p].vcs[v].empty() {
				continue
			}
			st := r.vcStateR(cycle, p, v)
			switch {
			case st == VCActive:
				route := r.vcRouteR(cycle, p, v)
				if route >= P || !r.hasPort[route] {
					continue
				}
				ovc := r.vcOutVCR(cycle, p, v)
				if ovc >= r.cfg.VCs || r.creditR(cycle, route, ovc) <= 0 {
					continue
				}
				req = req.Set(v)
			case r.cfg.Speculative && st == VCWaitingVA:
				route := r.vcRouteR(cycle, p, v)
				if route >= P || !r.hasPort[route] {
					continue
				}
				req = req.Set(v)
				specBits = specBits.Set(v)
			}
		}
		req = bitvec.Vec(r.fVec(cycle, fault.SA1Req, p, -1, uint32(req))) & bitvec.Mask(r.cfg.VCs)
		gnt := rrArbitrate(req, r.cfg.VCs, &r.st.SA1Next[p])
		gnt = bitvec.Vec(r.fVec(cycle, fault.SA1Gnt, p, -1, uint32(gnt))) & bitvec.Mask(r.cfg.VCs)
		r.sig.SA1[p] = ReqGnt{Req: req, Gnt: gnt}
		if w := gnt.First(); w >= 0 {
			sa1win[p] = w
			sa1spec[p] = specBits.Get(w)
			r.st.SA1Win[p] = int32(w)
		}
	}
	for o := 0; o < P; o++ {
		if !r.hasPort[o] {
			continue
		}
		var req bitvec.Vec
		for p := 0; p < P; p++ {
			w := sa1win[p]
			if w < 0 {
				continue
			}
			if r.vcRouteR(cycle, p, w) == o {
				req = req.Set(p)
			}
		}
		req = bitvec.Vec(r.fVec(cycle, fault.SA2Req, o, -1, uint32(req))) & bitvec.Mask(P)
		gnt := rrArbitrate(req, P, &r.st.SA2Next[o])
		gnt = bitvec.Vec(r.fVec(cycle, fault.SA2Gnt, o, -1, uint32(gnt))) & bitvec.Mask(P)
		r.sig.SA2[o] = ReqGnt{Req: req, Gnt: gnt}
		if gnt.IsZero() {
			continue
		}
		r.st.StCol[o] = uint32(gnt)
		for w := gnt; !w.IsZero(); {
			var p int
			p, w = w.NextBit()
			if !r.hasPort[p] {
				continue
			}
			spec := sa1win[p] == int(r.st.SA1Win[p]) && sa1spec[p]
			fl := r.st.StFlags[p] | soa.StReadEn
			if spec {
				fl |= soa.StSpec
			} else {
				fl &^= soa.StSpec
			}
			r.st.StFlags[p] = fl
			r.st.StOut[p] = int32(o)
			vcSel := int(r.st.SA1Win[p])
			ovc := r.vcOutVCR(cycle, p, vcSel)
			latch := SALatch{OutPort: o, InPort: p, InVC: vcSel, OutVC: ovc, Speculative: spec}
			if ovc < r.cfg.VCs {
				latch.CreditsBefore = r.creditR(cycle, o, ovc)
				if !spec {
					// Reserve the downstream slot now; the datapath
					// follows next cycle.
					i := r.iv(o, ovc)
					r.st.Credits[i] = (r.st.Credits[i] - 1) & r.crMask
				}
			}
			r.sig.SALatches = append(r.sig.SALatches, latch)
		}
	}
}

// phaseVA runs the separable virtual-channel allocation: VA1 picks one
// routed VC per input port, VA2 picks one input port per output port
// and assigns it a free downstream VC of the packet's message class.
func (r *Router) phaseVA(cycle int64) {
	var va1win [P]int
	for p := 0; p < P; p++ {
		va1win[p] = -1
		if !r.hasPort[p] {
			continue
		}
		var req bitvec.Vec
		// VA1 requests come from VCs in the WaitingVA state, a subset of
		// the NonIdle mask by construction.
		for w := r.sweepMask(bitvec.Vec(r.st.NonIdle[p])); !w.IsZero(); {
			var v int
			v, w = w.NextBit()
			if r.vcStateR(cycle, p, v) == VCWaitingVA {
				req = req.Set(v)
			}
		}
		req = bitvec.Vec(r.fVec(cycle, fault.VA1Req, p, -1, uint32(req))) & bitvec.Mask(r.cfg.VCs)
		gnt := rrArbitrate(req, r.cfg.VCs, &r.st.VA1Next[p])
		gnt = bitvec.Vec(r.fVec(cycle, fault.VA1Gnt, p, -1, uint32(gnt))) & bitvec.Mask(r.cfg.VCs)
		r.sig.VA1[p] = ReqGnt{Req: req, Gnt: gnt}
		if w := gnt.First(); w >= 0 {
			va1win[p] = w
			r.st.VA1Win[p] = int32(w)
		}
	}
	for o := 0; o < P; o++ {
		if !r.hasPort[o] {
			continue
		}
		var req bitvec.Vec
		for p := 0; p < P; p++ {
			w := va1win[p]
			if w < 0 {
				continue
			}
			if r.vcRouteR(cycle, p, w) != o {
				continue
			}
			if r.freeOutVC(o, r.classOf(p, w)) < 0 {
				// No free downstream VC in the packet's class: the input
				// VC does not bid this cycle.
				continue
			}
			req = req.Set(p)
		}
		req = bitvec.Vec(r.fVec(cycle, fault.VA2Req, o, -1, uint32(req))) & bitvec.Mask(P)
		gnt := rrArbitrate(req, P, &r.st.VA2Next[o])
		gnt = bitvec.Vec(r.fVec(cycle, fault.VA2Gnt, o, -1, uint32(gnt))) & bitvec.Mask(P)
		r.sig.VA2[o] = ReqGnt{Req: req, Gnt: gnt}
		for gw := gnt; !gw.IsZero(); {
			var p int
			p, gw = gw.NextBit()
			if !r.hasPort[p] {
				continue
			}
			w := int(r.st.VA1Win[p]) // stale when the grant was faulted in
			chosen := r.freeOutVC(o, r.classOf(p, w))
			code := rawInvalidDir // garbage encoding when no VC was free
			if chosen >= 0 {
				code = chosen
			}
			code = r.fWord(cycle, fault.VA2OutVC, o, -1, code) & (MaxVCs - 1)
			assign := VAAssign{OutPort: o, InPort: p, InVC: w, OutVC: code}
			if code < r.cfg.VCs {
				i := r.iv(o, code)
				assign.TargetFree = r.st.OutFlags[i]&soa.OutFree != 0
				assign.TargetCredits = r.creditR(cycle, o, code)
				r.st.OutFlags[i] &^= soa.OutFree | soa.OutTailSent
			}
			i := r.iv(p, w)
			r.st.VCOutVC[i] = uint8(code)
			r.setVCState(p, w, VCActive)
			r.sig.VAAssigns = append(r.sig.VAAssigns, assign)
		}
	}
}

// classOf returns the message class of the packet resident in (p, v):
// the head flit's class when one is buffered, else the class owning the
// VC partition.
func (r *Router) classOf(p, v int) int {
	if v < 0 || v >= r.cfg.VCs {
		return 0
	}
	if h := r.in[p].vcs[v].head(); h != nil {
		cl := h.Class
		if cl >= 0 && cl < r.cfg.Classes {
			return cl
		}
	}
	return r.vcClass[v]
}

// freeOutVC returns the lowest free output VC of port o within class,
// or -1.
func (r *Router) freeOutVC(o, class int) int {
	lo, hi := r.cfg.VCRange(class)
	base := o * r.st.V
	for v := lo; v < hi; v++ {
		if r.st.OutFlags[base+v]&soa.OutFree != 0 {
			return v
		}
	}
	return -1
}

// phaseRC runs routing computation. Each input port has per-VC RC
// logic, so every VC in the Routing state is served this cycle; under
// healthy operation at most one VC per port can be in that state
// (invariance 31 rests on exactly this).
func (r *Router) phaseRC(cycle int64) {
	for p := 0; p < P; p++ {
		if !r.hasPort[p] {
			continue
		}
		// Routing-state VCs are a subset of the NonIdle mask.
		for w := r.sweepMask(bitvec.Vec(r.st.NonIdle[p])); !w.IsZero(); {
			var v int
			v, w = w.NextBit()
			if r.vcStateR(cycle, p, v) != VCRouting {
				continue
			}
			r.execRC(cycle, p, v)
		}
	}
}

func (r *Router) execRC(cycle int64, p, v int) {
	vc := &r.in[p].vcs[v]
	var dx, dy int
	var kind flit.Kind
	head := vc.head()
	hasHead := head != nil
	switch {
	case head != nil:
		dx, dy, kind = head.DestX, head.DestY, head.Kind
	case vc.hasLastRead:
		// RC on an empty buffer consumes whatever the stale storage
		// holds (an "empty" slot is not blank).
		dx, dy, kind = vc.lastRead.DestX, vc.lastRead.DestY, vc.lastRead.Kind
	}
	trueDX, trueDY := dx, dy
	xMask := 1<<fault.BitsFor(r.cfg.Mesh.W-1) - 1
	yMask := 1<<fault.BitsFor(r.cfg.Mesh.H-1) - 1
	dx = r.fWord(cycle, fault.RCInDestX, p, -1, dx) & xMask
	dy = r.fWord(cycle, fault.RCInDestY, p, -1, dy) & yMask
	cands := r.cfg.Alg.Candidates(r.cfg.Mesh, r.id, dx, dy, topology.Direction(p))
	dir := r.pickCandidate(cands)
	code := int(dir) & (1<<DirWidth - 1)
	code = r.fWord(cycle, fault.RCOutDir, p, -1, code) & (1<<DirWidth - 1)
	r.st.VCRoute[r.iv(p, v)] = uint8(code)
	r.setVCState(p, v, VCWaitingVA)
	r.sig.RCExecs = append(r.sig.RCExecs, RCExec{
		Port: p, VC: v, HasHead: hasHead, HeadKind: kind,
		DestX: dx, DestY: dy, TrueDestX: trueDX, TrueDestY: trueDY, OutDir: code,
	})
	r.sig.RCDone[p] = r.sig.RCDone[p].Set(v)
}

// pickCandidate selects among the algorithm's permitted directions:
// deterministic algorithms offer one; adaptive algorithms are broken
// toward the output port with the most free VCs (a standard local
// congestion heuristic).
func (r *Router) pickCandidate(cands []topology.Direction) topology.Direction {
	if len(cands) == 0 {
		return topology.Invalid
	}
	if len(cands) == 1 {
		return cands[0]
	}
	best := cands[0]
	bestFree := -1
	for _, d := range cands {
		o := int(d)
		if o < 0 || o >= P || !r.hasPort[o] {
			continue
		}
		free := 0
		base := o * r.st.V
		for v := 0; v < r.cfg.VCs; v++ {
			if r.st.OutFlags[base+v]&soa.OutFree != 0 {
				free++
			}
		}
		if free > bestFree {
			bestFree = free
			best = d
		}
	}
	return best
}

// rrArbitrate is the router's round-robin arbiter as a pure function
// over an SoA priority pointer: bit-identical to
// arbiter.RoundRobin.Arbitrate (the client after the most recent winner
// has highest priority; zero requests leave the pointer untouched).
func rrArbitrate(req bitvec.Vec, width int, next *int32) bitvec.Vec {
	req &= bitvec.Mask(width)
	if req.IsZero() {
		return 0
	}
	n := int(*next)
	for i := 0; i < width; i++ {
		idx := n + i
		if idx >= width {
			idx -= width
		}
		if req.Get(idx) {
			nn := idx + 1
			if nn >= width {
				nn = 0
			}
			*next = int32(nn)
			return bitvec.New(idx)
		}
	}
	return 0 // unreachable: req is non-zero within width
}
