package router

import (
	"testing"

	"nocalert/internal/flit"
	"nocalert/internal/topology"
)

// rig drives a single router directly: flits are staged by hand and
// departures collected per cycle.
type rig struct {
	t     *testing.T
	r     *Router
	cycle int64
}

func newRig(t *testing.T, mut func(*Config)) *rig {
	t.Helper()
	cfg := Default(topology.NewMesh(3, 3))
	if mut != nil {
		mut(&cfg)
	}
	// Router 4 is the center of a 3×3 mesh: all five ports present.
	return &rig{t: t, r: New(4, &cfg, nil)}
}

// step advances one cycle and returns the cycle's departures.
func (g *rig) step() []Departure {
	g.r.BeginCycle(g.cycle)
	g.r.Evaluate(g.cycle)
	g.cycle++
	return g.r.Signals().Departures
}

// packet builds the flits of a packet headed to mesh node dest.
func (g *rig) packet(id uint64, dest int, length int) []*flit.Flit {
	p := &flit.Packet{ID: id, Src: 0, Dest: dest, Class: 0, Length: length}
	dx, dy := g.r.Config().Mesh.Coords(dest)
	return p.Flits(dx, dy)
}

// TestHeaderPipelineDepth pins the pipeline timing: a header staged for
// cycle t completes BW/RC at t, VA at t+1, SA at t+2 and traverses the
// crossbar at t+3 — four intra-router cycles, as in the paper's
// four-stage router plus link traversal.
func TestHeaderPipelineDepth(t *testing.T) {
	g := newRig(t, nil)
	dest := g.r.Config().Mesh.NodeAt(2, 1) // east of center
	fl := g.packet(1, dest, 5)
	fl[0].VC = 0
	g.r.StageArrival(topology.Local, fl[0])

	// Cycle 0: BW + RC.
	if dep := g.step(); len(dep) != 0 {
		t.Fatalf("departure too early: %v", dep)
	}
	s := g.r.Signals()
	if len(s.RCExecs) != 1 || s.RCExecs[0].OutDir != int(topology.East) {
		t.Fatalf("RC at cycle 0: %+v", s.RCExecs)
	}
	// Cycle 1: VA.
	if dep := g.step(); len(dep) != 0 {
		t.Fatal("departure too early")
	}
	if n := len(g.r.Signals().VAAssigns); n != 1 {
		t.Fatalf("VA assigns at cycle 1: %d", n)
	}
	// Cycle 2: SA.
	if dep := g.step(); len(dep) != 0 {
		t.Fatal("departure too early")
	}
	if n := len(g.r.Signals().SALatches); n != 1 {
		t.Fatalf("SA latches at cycle 2: %d", n)
	}
	// Cycle 3: ST — the header departs east.
	dep := g.step()
	if len(dep) != 1 || dep[0].OutPort != int(topology.East) || !dep[0].Flit.Kind.IsHead() {
		t.Fatalf("header did not traverse at cycle 3: %v", dep)
	}
}

// TestBodyFlitsStreamBackToBack: once the wormhole is set up, one flit
// leaves per cycle.
func TestBodyFlitsStreamBackToBack(t *testing.T) {
	g := newRig(t, nil)
	dest := g.r.Config().Mesh.NodeAt(2, 1)
	fl := g.packet(1, dest, 5)
	for i, f := range fl {
		f.VC = 0
		_ = i
	}
	// Stage one flit per cycle, as a link would deliver them.
	var departed []Departure
	for c := 0; c < 12; c++ {
		if c < len(fl) {
			g.r.StageArrival(topology.Local, fl[c])
		}
		departed = append(departed, g.step()...)
	}
	if len(departed) != 5 {
		t.Fatalf("departed %d flits, want 5", len(departed))
	}
	for i := 1; i < len(departed); i++ {
		if departed[i].Flit.Seq != i {
			t.Fatalf("out of order: %v", departed[i].Flit)
		}
	}
}

// TestCreditAccounting: each SA grant reserves one downstream credit;
// credits return via StageCredit and the output VC recycles only after
// the tail has gone and every credit is home (buffer atomicity).
func TestCreditAccounting(t *testing.T) {
	g := newRig(t, nil)
	cfg := g.r.Config()
	dest := cfg.Mesh.NodeAt(2, 1)
	fl := g.packet(1, dest, 3)
	for c := 0; c < 3; c++ {
		fl[c].VC = 0
		g.r.StageArrival(topology.Local, fl[c])
		g.step()
	}
	// Run the packet out.
	sent := 0
	for c := 0; c < 10 && sent < 3; c++ {
		sent += len(g.step())
	}
	if sent != 3 {
		t.Fatalf("sent %d flits", sent)
	}
	// All 3 flits left on East VC 0: 3 credits consumed.
	pre := g.r.Signals().Pre.Out[int(topology.East)][0]
	_ = pre
	g.step()
	pre = g.r.Signals().Pre.Out[int(topology.East)][0]
	if pre.Credits != cfg.BufDepth-3 {
		t.Fatalf("credits = %d, want %d", pre.Credits, cfg.BufDepth-3)
	}
	if pre.Free {
		t.Fatal("output VC free before credits returned")
	}
	if !pre.TailSent {
		t.Fatal("tail not marked sent")
	}
	// Return the 3 credits; the VC must recycle.
	for i := 0; i < 3; i++ {
		g.r.StageCredit(topology.East, 0)
		g.step()
	}
	g.step()
	pre = g.r.Signals().Pre.Out[int(topology.East)][0]
	if !pre.Free || pre.Credits != cfg.BufDepth {
		t.Fatalf("output VC not recycled: %+v", pre)
	}
}

// TestBackpressure: with zero downstream credits the flit must wait.
func TestBackpressure(t *testing.T) {
	g := newRig(t, func(c *Config) { c.BufDepth = 1; c.LenByClass = []int{1} })
	dest := g.r.Config().Mesh.NodeAt(2, 1)

	// First single-flit packet consumes the lone credit of East VC 0.
	a := g.packet(1, dest, 1)[0]
	a.VC = 0
	g.r.StageArrival(topology.Local, a)
	sent := 0
	for c := 0; c < 8; c++ {
		sent += len(g.step())
	}
	if sent != 1 {
		t.Fatalf("first packet did not depart (sent=%d)", sent)
	}

	// Second packet on another input VC targets the same output; with
	// depth-1 buffers the downstream VC0 has no credits and VC1..3 are
	// free, so it will take VC1. Fill all four VCs' credits first by
	// sending four packets without returning credits.
	for i := 0; i < 4; i++ {
		f := g.packet(uint64(10+i), dest, 1)[0]
		f.VC = i % g.r.Config().VCs
		g.r.StageArrival(topology.Local, f)
		for c := 0; c < 8; c++ {
			sent += len(g.step())
		}
	}
	if sent < 4 {
		t.Fatalf("setup packets stuck: sent=%d", sent)
	}
	// Now every East VC is occupied (tail sent but credits not
	// returned). A further packet must stall in VA.
	f := g.packet(99, dest, 1)[0]
	f.VC = 0
	g.r.StageArrival(topology.Local, f)
	before := sent
	for c := 0; c < 10; c++ {
		sent += len(g.step())
	}
	if sent != before {
		t.Fatal("packet departed despite zero credits everywhere")
	}
	// Return one credit for VC 2: the packet must now flow.
	g.r.StageCredit(topology.East, 2)
	for c := 0; c < 10; c++ {
		sent += len(g.step())
	}
	if sent != before+1 {
		t.Fatalf("packet did not resume after credit return (sent=%d, want %d)", sent, before+1)
	}
}

// TestAtomicVCRejectsSecondPacket: with atomic buffers, a new header
// cannot be allocated into a still-occupied downstream VC, enforced by
// the free/tailSent/credits recycling protocol.
func TestAtomicOutputVCRecycling(t *testing.T) {
	g := newRig(t, nil)
	cfg := g.r.Config()
	dest := cfg.Mesh.NodeAt(2, 1)
	// Send packet A (5 flits) fully; don't return credits.
	fl := g.packet(1, dest, 5)
	for i := range fl {
		fl[i].VC = 0
		g.r.StageArrival(topology.Local, fl[i])
		g.step()
	}
	for c := 0; c < 10; c++ {
		g.step()
	}
	// Packet B arrives on input VC 1 → must get a different output VC.
	fl2 := g.packet(2, dest, 5)
	var bOut = -1
	for i := range fl2 {
		fl2[i].VC = 1
		g.r.StageArrival(topology.Local, fl2[i])
		g.step()
		for _, a := range g.r.Signals().VAAssigns {
			bOut = a.OutVC
		}
	}
	for c := 0; c < 10 && bOut < 0; c++ {
		g.step()
		for _, a := range g.r.Signals().VAAssigns {
			bOut = a.OutVC
		}
	}
	if bOut == 0 {
		t.Fatal("second packet allocated into the occupied output VC 0")
	}
	if bOut < 0 {
		t.Fatal("second packet never got an output VC")
	}
}

// TestLocalDelivery: a packet destined to the router's own node leaves
// through the Local port.
func TestLocalDelivery(t *testing.T) {
	g := newRig(t, nil)
	fl := g.packet(1, 4, 1) // router 4 is our own node
	fl[0].VC = 2
	g.r.StageArrival(topology.West, fl[0])
	var dep []Departure
	for c := 0; c < 8 && len(dep) == 0; c++ {
		dep = append(dep, g.step()...)
	}
	if len(dep) != 1 || dep[0].OutPort != int(topology.Local) {
		t.Fatalf("local delivery failed: %v", dep)
	}
}

// TestMissingPortPanicsOnDoubleStage: protocol violation by the caller.
func TestDoubleStagePanics(t *testing.T) {
	g := newRig(t, nil)
	f := g.packet(1, 4, 1)[0]
	g.r.StageArrival(topology.North, f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.r.StageArrival(topology.North, f.Clone())
}

// TestEdgeRouterHasNoMissingPorts: a corner router only exposes the
// ports its position allows.
func TestCornerRouterPorts(t *testing.T) {
	cfg := Default(topology.NewMesh(3, 3))
	r := New(0, &cfg, nil) // bottom-left corner
	if r.HasPort(topology.South) || r.HasPort(topology.West) {
		t.Fatal("corner router grew impossible ports")
	}
	if !r.HasPort(topology.North) || !r.HasPort(topology.East) || !r.HasPort(topology.Local) {
		t.Fatal("corner router missing real ports")
	}
}

// TestConfigValidation exercises Config.Validate.
func TestConfigValidation(t *testing.T) {
	m := topology.NewMesh(2, 2)
	bad := []func(*Config){
		func(c *Config) { c.VCs = 0 },
		func(c *Config) { c.VCs = MaxVCs + 1 },
		func(c *Config) { c.BufDepth = 0 },
		func(c *Config) { c.Classes = 0 },
		func(c *Config) { c.Classes = 3 }, // 4 VCs don't split into 3
		func(c *Config) { c.LenByClass = nil },
		func(c *Config) { c.LenByClass = []int{0} },
		func(c *Config) { c.Alg = nil },
	}
	for i, mut := range bad {
		c := Default(m)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	good := Default(m)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

// TestClassPartitioning pins the VC/class mapping.
func TestClassPartitioning(t *testing.T) {
	c := Default(topology.NewMesh(2, 2))
	c.Classes = 2
	c.LenByClass = []int{1, 5}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.ClassOfVC(0) != 0 || c.ClassOfVC(1) != 0 || c.ClassOfVC(2) != 1 || c.ClassOfVC(3) != 1 {
		t.Fatal("ClassOfVC broken")
	}
	lo, hi := c.VCRange(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("VCRange(1) = [%d,%d)", lo, hi)
	}
	if c.PacketLen(0) != 1 || c.PacketLen(1) != 5 || c.PacketLen(9) != 1 {
		t.Fatal("PacketLen broken")
	}
}

// TestVCStateStrings pins state rendering and validity.
func TestVCStateStrings(t *testing.T) {
	for s, want := range map[VCState]string{
		VCIdle: "Idle", VCRouting: "RC", VCWaitingVA: "VA", VCActive: "Active",
	} {
		if s.String() != want || !s.Valid() {
			t.Errorf("state %d: %q valid=%v", int(s), s.String(), s.Valid())
		}
	}
	if VCState(5).Valid() || VCState(7).Valid() {
		t.Error("invalid encodings accepted")
	}
}
