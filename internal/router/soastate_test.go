package router

import (
	"testing"

	"nocalert/internal/fault"
	"nocalert/internal/statehash"
	"nocalert/internal/topology"
)

// busyRouter drives the center router of a 3×3 mesh with a few packets
// across distinct input ports and returns it mid-flight at the given
// cycle boundary.
func busyRouter(t *testing.T, cycles int64) (*Router, int64) {
	t.Helper()
	g := newRig(t, nil)
	dest := g.r.Config().Mesh.NodeAt(2, 1)
	for i, dir := range []topology.Direction{topology.Local, topology.West, topology.North} {
		fl := g.packet(uint64(i+1), dest, 4)
		fl[0].VC = i
		g.r.StageArrival(dir, fl[0])
	}
	for c := int64(0); c < cycles; c++ {
		g.step()
	}
	return g.r, g.cycle
}

// drainLockstep steps both routers with no further input, comparing
// state folds at every boundary; they must stay identical to the end.
func drainLockstep(t *testing.T, a, b *Router, from int64, n int64) {
	t.Helper()
	for c := from; c < from+n; c++ {
		a.BeginCycle(c)
		a.Evaluate(c)
		b.BeginCycle(c)
		b.Evaluate(c)
		if af, bf := a.FoldState(statehash.Seed), b.FoldState(statehash.Seed); af != bf {
			t.Fatalf("cycle %d: folds diverged (%#x vs %#x)", c, af, bf)
		}
	}
}

// TestCloneFoldIdentity pins the clone/fold contract at router
// granularity: a mid-flight router and its clone agree on FoldState,
// keep agreeing while both drain, and the clone's storage does not
// alias the original's.
func TestCloneFoldIdentity(t *testing.T) {
	r, cyc := busyRouter(t, 3)
	c := r.Clone(nil)
	if c.ID() != r.ID() {
		t.Fatalf("clone id %d", c.ID())
	}
	if rf, cf := r.FoldState(statehash.Seed), c.FoldState(statehash.Seed); rf != cf {
		t.Fatalf("clone fold differs before any step (%#x vs %#x)", rf, cf)
	}
	drainLockstep(t, r, c, cyc, 20)
	// Mutating the clone must not reach back into the original.
	before := r.FoldState(statehash.Seed)
	c.st.Credits[0] += 3
	c.st.VCState[1] ^= 1
	if r.FoldState(statehash.Seed) != before {
		t.Fatal("clone aliases the original's register file")
	}
}

// TestCloneIntoReuse: CloneInto into a previous product reuses its
// storage and still reproduces the source exactly; a NewCloneTarget
// shell bound to an external state window works the same way.
func TestCloneIntoReuse(t *testing.T) {
	r, cyc := busyRouter(t, 2)
	dst := r.CloneInto(nil, nil, nil)
	// Re-fork from a later boundary into the same target.
	for c := cyc; c < cyc+2; c++ {
		r.BeginCycle(c)
		r.Evaluate(c)
	}
	cyc += 2
	dst = r.CloneInto(dst, nil, nil)
	if rf, df := r.FoldState(statehash.Seed), dst.FoldState(statehash.Seed); rf != df {
		t.Fatalf("re-fork fold differs (%#x vs %#x)", rf, df)
	}
	drainLockstep(t, r, dst, cyc, 20)
}

// TestInertSkipIsNoOp: a drained router reports Inert, stepping it
// anyway changes nothing (the skip's soundness), and any staged input
// — an arrival or a returning credit — clears the condition.
func TestInertSkipIsNoOp(t *testing.T) {
	g := newRig(t, nil)
	if !g.r.Inert() {
		t.Fatal("fresh router not inert")
	}
	dest := g.r.Config().Mesh.NodeAt(2, 1)
	fl := g.packet(1, dest, 2)
	fl[0].VC = 0
	g.r.StageArrival(topology.Local, fl[0])
	if g.r.Inert() {
		t.Fatal("router inert with a staged arrival")
	}
	g.step()
	fl[1].VC = 0
	g.r.StageArrival(topology.Local, fl[1])
	for i := 0; i < 30 && !g.r.Inert(); i++ {
		g.step()
	}
	if !g.r.Inert() {
		t.Fatal("router never drained to inert")
	}
	before := g.r.FoldState(statehash.Seed)
	g.step()
	g.step()
	if g.r.FoldState(statehash.Seed) != before {
		t.Fatal("stepping an inert router changed its state")
	}
	g.r.StageCredit(topology.East, 1)
	if g.r.Inert() {
		t.Fatal("router inert with a staged credit")
	}
}

// TestReferenceSweepIdentity: the reference engine (full-range sweeps)
// and the SoA engine (mask-driven sweeps) hold identical state folds
// and produce identical departures/credits cycle by cycle on the same
// input stream.
func TestReferenceSweepIdentity(t *testing.T) {
	mk := func(ref bool) *rig {
		g := newRig(t, nil)
		g.r.SetReferenceSweep(ref)
		dest := g.r.Config().Mesh.NodeAt(2, 1)
		for i, dir := range []topology.Direction{topology.Local, topology.West, topology.South} {
			fl := g.packet(uint64(i+1), dest, 4)
			fl[0].VC = i % g.r.Config().VCs
			g.r.StageArrival(dir, fl[0])
		}
		return g
	}
	a, b := mk(true), mk(false)
	for c := 0; c < 30; c++ {
		da, db := a.step(), b.step()
		if len(da) != len(db) {
			t.Fatalf("cycle %d: %d vs %d departures", c, len(da), len(db))
		}
		if la, lb := len(a.r.Credits()), len(b.r.Credits()); la != lb {
			t.Fatalf("cycle %d: %d vs %d credits", c, la, lb)
		}
		if af, bf := a.r.FoldState(statehash.Seed), b.r.FoldState(statehash.Seed); af != bf {
			t.Fatalf("cycle %d: engine folds diverged (%#x vs %#x)", c, af, bf)
		}
	}
}

// TestRegisterUpsetsApply: transient register flips through every
// register kind must land in the SoA arrays (the fold moves) and keep
// the router steppable; wire faults exercise the faulted read paths.
func TestRegisterUpsetsApply(t *testing.T) {
	regs := []fault.Kind{fault.VCStateReg, fault.VCRouteReg, fault.VCOutVCReg, fault.CreditCountReg}
	for _, k := range regs {
		t.Run(k.String(), func(t *testing.T) {
			r, cyc := busyRouter(t, 2)
			before := r.FoldState(statehash.Seed)
			w := 3
			if k == fault.CreditCountReg {
				w = fault.BitsFor(r.Config().BufDepth)
			}
			p := fault.NewPlane(fault.Fault{
				Site: fault.Site{Router: r.ID(), Kind: k, Port: int(topology.Local), VC: 0, Width: w},
				Bit:  0, Cycle: cyc, Type: fault.Transient,
			})
			r.SetPlane(p)
			r.BeginCycle(cyc)
			r.Evaluate(cyc)
			if r.FoldState(statehash.Seed) == before {
				t.Fatalf("%v upset left the fold unchanged", k)
			}
			for c := cyc + 1; c < cyc+20; c++ {
				r.BeginCycle(c)
				r.Evaluate(c)
			}
		})
	}
	// A permanent wire fault keeps the plane live, forcing every read
	// through the faulted path while the router keeps operating.
	wires := []fault.Kind{fault.RCOutDir, fault.VA1Gnt, fault.SA2Req, fault.CreditSig, fault.BufRead}
	for _, k := range wires {
		t.Run(k.String(), func(t *testing.T) {
			r, cyc := busyRouter(t, 1)
			p := fault.NewPlane(fault.Fault{
				Site: fault.Site{Router: r.ID(), Kind: k, Port: int(topology.East), VC: -1, Width: 3},
				Bit:  0, Cycle: cyc, Type: fault.Permanent,
			})
			r.SetPlane(p)
			for c := cyc; c < cyc+20; c++ {
				r.BeginCycle(c)
				r.Evaluate(c)
			}
		})
	}
}

// TestSignalTelemetryAccessors covers the aggregate signal views the
// metrics monitor consumes, on a cycle with real contention.
func TestSignalTelemetryAccessors(t *testing.T) {
	r, cyc := busyRouter(t, 2)
	r.BeginCycle(cyc)
	r.Evaluate(cyc)
	s := r.Signals()
	if s.BufferOccupancy() == 0 {
		t.Fatal("no buffered flits on a busy router")
	}
	// Three packets racing for one output port: someone must stall in
	// at least one allocation stage across the window.
	stalls := s.VAStalls() + s.SAStalls()
	for c := cyc + 1; c < cyc+4; c++ {
		r.BeginCycle(c)
		r.Evaluate(c)
		stalls += r.Signals().VAStalls() + r.Signals().SAStalls()
	}
	if stalls == 0 {
		t.Fatal("no allocation stalls under 3-way contention")
	}
	if s.LinkFlits() < 0 {
		t.Fatal("negative link flits")
	}
}
