package fault

import (
	"testing"

	"nocalert/internal/topology"
)

func params44() Params {
	return Params{Mesh: topology.NewMesh(4, 4), VCs: 4, BufDepth: 5}
}

func TestKindNamesAndClasses(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String()[0] == 'K' {
			t.Errorf("kind %d has no name: %q", int(k), k.String())
		}
	}
	regs := map[Kind]bool{VCStateReg: true, VCRouteReg: true, VCOutVCReg: true, CreditCountReg: true}
	for k := Kind(0); k < numKinds; k++ {
		if k.IsRegister() != regs[k] {
			t.Errorf("%v.IsRegister() = %v", k, k.IsRegister())
		}
	}
	if !RCOutDir.InputPortIndexed() || VA2Gnt.InputPortIndexed() {
		t.Error("port indexing classification broken")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 7: 3, 8: 4}
	for in, want := range cases {
		if got := BitsFor(in); got != want {
			t.Errorf("BitsFor(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestSiteEnumerationEdgeReduction: corner and edge routers contribute
// fewer sites, the effect behind the paper's 11,808 total.
func TestSiteEnumerationEdgeReduction(t *testing.T) {
	p := params44()
	corner := p.EnumerateRouterSites(0)                  // 3 ports
	edge := p.EnumerateRouterSites(1)                    // 4 ports
	inner := p.EnumerateRouterSites(p.Mesh.NodeAt(1, 1)) // 5 ports
	if !(len(corner) < len(edge) && len(edge) < len(inner)) {
		t.Fatalf("site counts not ordered: corner=%d edge=%d inner=%d",
			len(corner), len(edge), len(inner))
	}
	// Per-port site count must be uniform: counts scale with ports.
	if len(corner)*5 != len(inner)*3 {
		t.Errorf("per-port site count not uniform: %d*5 != %d*3", len(corner), len(inner))
	}
}

// TestPaperScaleBitCount documents our fault-location count at the
// paper's scale (the paper reports 205 per 5-port router / 11,808 per
// 8×8 mesh at its RTL granularity; our signal set differs but must be
// in the same regime and exactly reproducible).
func TestPaperScaleBitCount(t *testing.T) {
	p := Params{Mesh: topology.NewMesh(8, 8), VCs: 4, BufDepth: 5}
	bits := p.CountBits()
	interior := p.EnumerateRouterSites(p.Mesh.NodeAt(3, 3))
	perRouter := 0
	for _, s := range interior {
		perRouter += s.Width
	}
	t.Logf("8x8 mesh: %d fault bits total, %d per interior router", bits, perRouter)
	if perRouter < 150 || perRouter > 800 {
		t.Errorf("per-router bit count %d outside the expected regime", perRouter)
	}
	if bits < 64*150*3/5 {
		t.Errorf("mesh-wide count %d implausibly small", bits)
	}
	// Exact reproducibility.
	if again := p.CountBits(); again != bits {
		t.Errorf("CountBits not deterministic: %d vs %d", bits, again)
	}
}

func TestSiteWidthsAndPorts(t *testing.T) {
	p := params44()
	for _, s := range p.EnumerateSites() {
		if s.Width <= 0 || s.Width > 32 {
			t.Fatalf("site %v has width %d", s, s.Width)
		}
		if s.Port < 0 || s.Port >= int(topology.NumPorts) {
			t.Fatalf("site %v has port %d", s, s.Port)
		}
		if !p.Mesh.HasPort(s.Router, topology.Direction(s.Port)) {
			t.Fatalf("site %v on a missing port", s)
		}
		if s.VC >= p.VCs {
			t.Fatalf("site %v has VC %d of %d", s, s.VC, p.VCs)
		}
	}
}

func TestBitFaults(t *testing.T) {
	s := Site{Router: 3, Kind: SA1Gnt, Port: 2, VC: -1, Width: 4}
	fs := BitFaults(s, 100, Transient)
	if len(fs) != 4 {
		t.Fatalf("got %d faults", len(fs))
	}
	for i, f := range fs {
		if f.Bit != i || f.Cycle != 100 || f.Type != Transient || f.Site != s {
			t.Fatalf("fault %d malformed: %v", i, &f)
		}
	}
}

func TestActiveAt(t *testing.T) {
	s := Site{Kind: SA1Gnt, Width: 4}
	tr := Fault{Site: s, Cycle: 10, Type: Transient}
	if tr.ActiveAt(9) || !tr.ActiveAt(10) || tr.ActiveAt(11) {
		t.Error("transient window wrong")
	}
	pm := Fault{Site: s, Cycle: 10, Type: Permanent}
	if pm.ActiveAt(9) || !pm.ActiveAt(10) || !pm.ActiveAt(1e6) {
		t.Error("permanent window wrong")
	}
	in := Fault{Site: s, Cycle: 10, Type: Intermittent, Period: 4, Duty: 2}
	want := map[int64]bool{10: true, 11: true, 12: false, 13: false, 14: true, 15: true, 16: false}
	for c, w := range want {
		if in.ActiveAt(c) != w {
			t.Errorf("intermittent ActiveAt(%d) = %v", c, !w)
		}
	}
}

func TestPlaneVecAndWord(t *testing.T) {
	s := Site{Router: 1, Kind: SA1Gnt, Port: 0, VC: -1, Width: 4}
	p := NewPlane(Fault{Site: s, Bit: 2, Cycle: 5, Type: Transient})

	// Wrong cycle, router, kind, port: untouched.
	if p.Vec(4, 1, SA1Gnt, 0, -1, 0b0001) != 0b0001 {
		t.Error("fired before injection cycle")
	}
	if p.Vec(5, 2, SA1Gnt, 0, -1, 0b0001) != 0b0001 {
		t.Error("fired on wrong router")
	}
	if p.Vec(5, 1, SA1Req, 0, -1, 0b0001) != 0b0001 {
		t.Error("fired on wrong kind")
	}
	if p.Vec(5, 1, SA1Gnt, 1, -1, 0b0001) != 0b0001 {
		t.Error("fired on wrong port")
	}
	if p.FiredAt(0) != -1 {
		t.Error("FiredAt set by non-matching queries")
	}
	// Exact match: bit 2 XORed, firing recorded.
	if got := p.Vec(5, 1, SA1Gnt, 0, -1, 0b0001); got != 0b0101 {
		t.Errorf("faulted vec = %b", got)
	}
	if p.FiredAt(0) != 5 {
		t.Errorf("FiredAt = %d", p.FiredAt(0))
	}
	// Transient: next cycle clean.
	if p.Vec(6, 1, SA1Gnt, 0, -1, 0b0001) != 0b0001 {
		t.Error("transient persisted")
	}
}

func TestNilPlaneIsIdentity(t *testing.T) {
	var p *Plane
	if p.Vec(0, 0, SA1Gnt, 0, -1, 7) != 7 || p.Word(0, 0, RCOutDir, 0, -1, 3) != 3 {
		t.Error("nil plane mutated a signal")
	}
	if p.Faults() != nil || p.FiredAt(0) != -1 || p.Clone() != nil {
		t.Error("nil plane accessors broken")
	}
	if p.TransientRegisterFlips(0, 0) != nil {
		t.Error("nil plane returned register flips")
	}
}

func TestTransientRegisterFlipsNotOnReadPath(t *testing.T) {
	s := Site{Router: 0, Kind: VCStateReg, Port: 0, VC: 1, Width: 3}
	p := NewPlane(Fault{Site: s, Bit: 1, Cycle: 7, Type: Transient})
	// Read path untouched even at the injection cycle.
	if p.Word(7, 0, VCStateReg, 0, 1, 2) != 2 {
		t.Error("transient register fault leaked onto the read path")
	}
	flips := p.TransientRegisterFlips(7, 0)
	if len(flips) != 1 || flips[0].Bit != 1 {
		t.Fatalf("flips = %v", flips)
	}
	if p.FiredAt(0) != 7 {
		t.Error("register flip not marked fired")
	}
	if len(p.TransientRegisterFlips(8, 0)) != 0 {
		t.Error("register flip applied twice")
	}
}

func TestPermanentRegisterFaultOnReadPath(t *testing.T) {
	s := Site{Router: 0, Kind: CreditCountReg, Port: 2, VC: 0, Width: 3}
	p := NewPlane(Fault{Site: s, Bit: 0, Cycle: 3, Type: Permanent})
	if p.Word(2, 0, CreditCountReg, 2, 0, 5) != 5 {
		t.Error("permanent fault fired early")
	}
	if p.Word(3, 0, CreditCountReg, 2, 0, 5) != 4 {
		t.Error("permanent register fault not applied on read")
	}
	if p.Word(1000, 0, CreditCountReg, 2, 0, 5) != 4 {
		t.Error("permanent register fault not persistent")
	}
}

func TestPlaneClone(t *testing.T) {
	s := Site{Router: 1, Kind: SA1Gnt, Port: 0, VC: -1, Width: 4}
	p := NewPlane(Fault{Site: s, Bit: 0, Cycle: 5, Type: Transient})
	c := p.Clone()
	p.Vec(5, 1, SA1Gnt, 0, -1, 0)
	if p.FiredAt(0) != 5 {
		t.Fatal("original did not fire")
	}
	if c.FiredAt(0) != -1 {
		t.Fatal("clone shares firing state")
	}
}

func TestMultipleFaultsCompose(t *testing.T) {
	s := Site{Router: 0, Kind: BufWrite, Port: 4, VC: -1, Width: 4}
	p := NewPlane(
		Fault{Site: s, Bit: 0, Cycle: 2, Type: Transient},
		Fault{Site: s, Bit: 3, Cycle: 2, Type: Transient},
	)
	if got := p.Vec(2, 0, BufWrite, 4, -1, 0); got != 0b1001 {
		t.Fatalf("composed mask = %b", got)
	}
}
