// Package fault implements the paper's fault model (§5.2): single-bit
// faults injected at the inputs and outputs of each individual control
// module of each router. Sites are enumerated per signal and bit; the
// router consults the injection Plane at every module boundary, so a
// fault corrupts both the value the router acts on and the value the
// NoCAlert checkers observe — exactly the wire-level tap a hardware
// fault has.
//
// Three fault types are supported. Transient faults (the paper's
// stimulus) XOR the target bit for a single cycle; register sites flip
// the stored bit once, persisting until the register is rewritten, which
// is how a single-event upset behaves in a flip-flop. Permanent faults
// keep the XOR applied from the injection cycle onward, and intermittent
// faults apply it with a configurable period and duty cycle — the model
// behind the paper's Observation 3.
package fault

import (
	"fmt"
	"math"
	"sort"
)

// Kind identifies the signal class a fault site belongs to. Each kind
// fixes which module boundary the Plane is consulted at and how Port/VC
// are interpreted.
type Kind int

// Signal classes, grouped by module. "In"/"input-port-indexed" kinds use
// Site.Port as an input port; output-stage kinds use it as an output
// port.
const (
	// RCInDestX is the destination X coordinate wire feeding an input
	// port's routing-computation unit (module input).
	RCInDestX Kind = iota
	// RCInDestY is the corresponding Y coordinate wire.
	RCInDestY
	// RCOutDir is the output-direction vector produced by an input
	// port's RC unit (module output).
	RCOutDir
	// VA1Req is the request vector of an input port's local VA arbiter.
	VA1Req
	// VA1Gnt is the grant vector of an input port's local VA arbiter.
	VA1Gnt
	// VA2Req is the request vector of an output port's global VA arbiter.
	VA2Req
	// VA2Gnt is the grant vector of an output port's global VA arbiter.
	VA2Gnt
	// VA2OutVC is the output-VC index assigned by an output port's VA
	// stage to the winning packet.
	VA2OutVC
	// SA1Req is the request vector of an input port's local SA arbiter.
	SA1Req
	// SA1Gnt is the grant vector of an input port's local SA arbiter.
	SA1Gnt
	// SA2Req is the request vector of an output port's global SA arbiter.
	SA2Req
	// SA2Gnt is the grant vector of an output port's global SA arbiter.
	SA2Gnt
	// XbarSel is the column control vector of the crossbar for one
	// output port (which input row is connected).
	XbarSel
	// BufRead is the per-VC read-strobe vector of an input port.
	BufRead
	// BufWrite is the per-VC write-strobe vector of an input port.
	BufWrite
	// FlitKindIn is the kind field (head/body/tail encoding) of a flit
	// arriving at an input port.
	FlitKindIn
	// FlitVCIn is the VC-identifier field of a flit arriving at an
	// input port (the demux select).
	FlitVCIn
	// VCStateReg is a virtual channel's pipeline-state register.
	VCStateReg
	// VCRouteReg is a virtual channel's stored output-port register
	// (the latched RC result).
	VCRouteReg
	// VCOutVCReg is a virtual channel's stored output-VC register (the
	// latched VA result).
	VCOutVCReg
	// CreditSig is the per-VC credit-return signal arriving at an
	// output port from its downstream neighbor.
	CreditSig
	// CreditCountReg is the credit counter register of one output VC.
	CreditCountReg
	numKinds
)

var kindNames = [numKinds]string{
	"rc.in.destx", "rc.in.desty", "rc.out.dir",
	"va1.req", "va1.gnt", "va2.req", "va2.gnt", "va2.outvc",
	"sa1.req", "sa1.gnt", "sa2.req", "sa2.gnt",
	"xbar.sel", "buf.read", "buf.write", "flit.kind", "flit.vc",
	"vc.state", "vc.route", "vc.outvc", "credit.sig", "credit.count",
}

// String returns the dotted signal-path name of the kind.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind maps a dotted signal-path name (the String form) back to
// its Kind — the inverse used when rebuilding fault sites from
// serialized run records.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown signal kind %q", s)
}

// ParseType maps a fault type's name back to its Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "transient":
		return Transient, nil
	case "permanent":
		return Permanent, nil
	case "intermittent":
		return Intermittent, nil
	}
	return 0, fmt.Errorf("fault: unknown fault type %q", s)
}

// IsRegister reports whether sites of this kind are storage elements:
// a transient fault there flips the stored bit once and the corruption
// persists until the register is rewritten, rather than lasting one
// cycle on a wire.
func (k Kind) IsRegister() bool {
	switch k {
	case VCStateReg, VCRouteReg, VCOutVCReg, CreditCountReg:
		return true
	}
	return false
}

// InputPortIndexed reports whether Site.Port names an input port for
// this kind (as opposed to an output port).
func (k Kind) InputPortIndexed() bool {
	switch k {
	case RCInDestX, RCInDestY, RCOutDir, VA1Req, VA1Gnt, SA1Req, SA1Gnt,
		BufRead, BufWrite, FlitKindIn, FlitVCIn, VCStateReg, VCRouteReg, VCOutVCReg:
		return true
	}
	return false
}

// Site is one multi-bit fault location: a specific signal of a specific
// module instance of a specific router.
type Site struct {
	// Router is the router's node id.
	Router int
	// Kind is the signal class.
	Kind Kind
	// Port is the port index the module instance belongs to; input or
	// output port depending on Kind (see InputPortIndexed).
	Port int
	// VC is the virtual channel index for per-VC sites, or -1 for
	// per-port signals.
	VC int
	// Width is the signal width in bits; faults target one of these.
	Width int
}

// String renders the site as router/port[/vc]/signal.
func (s Site) String() string {
	if s.VC >= 0 {
		return fmt.Sprintf("r%d.p%d.vc%d.%s", s.Router, s.Port, s.VC, s.Kind)
	}
	return fmt.Sprintf("r%d.p%d.%s", s.Router, s.Port, s.Kind)
}

// Type selects the temporal behaviour of a fault.
type Type int

const (
	// Transient faults last one cycle on wires and flip registers once.
	Transient Type = iota
	// Permanent faults apply from the injection cycle onward.
	Permanent
	// Intermittent faults apply during the first Duty cycles of every
	// Period cycles, starting at the injection cycle.
	Intermittent
)

// String returns the fault type's name.
func (t Type) String() string {
	switch t {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Intermittent:
		return "intermittent"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Fault is a single-bit fault bound to a site.
type Fault struct {
	Site Site
	// Bit is the bit index within the signal, in [0, Site.Width).
	Bit int
	// Cycle is the injection cycle.
	Cycle int64
	// Type is the temporal behaviour.
	Type Type
	// Period and Duty configure Intermittent faults; ignored otherwise.
	Period, Duty int64
}

// ActiveAt reports whether the fault corrupts its wire during the given
// cycle. Register sites use this only at the injection cycle (the flip
// is then carried by the register itself).
func (f *Fault) ActiveAt(cycle int64) bool {
	if cycle < f.Cycle {
		return false
	}
	switch f.Type {
	case Transient:
		return cycle == f.Cycle
	case Permanent:
		return true
	case Intermittent:
		if f.Period <= 0 {
			return cycle == f.Cycle
		}
		return (cycle-f.Cycle)%f.Period < f.Duty
	}
	return false
}

// String renders the fault for logs and reports.
func (f *Fault) String() string {
	return fmt.Sprintf("%s bit%d @%d %s", f.Site, f.Bit, f.Cycle, f.Type)
}

// SortByCycle stably orders faults by injection cycle — the iteration
// order snapshot planning and fork scheduling want, so consecutive
// campaign runs share golden snapshots. Stability preserves the
// deterministic draw order within each cycle.
func SortByCycle(fs []Fault) {
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].Cycle < fs[j].Cycle })
}

// Plane is the injection surface routers consult at module boundaries.
// A nil *Plane is valid and injects nothing, so fault-free simulations
// pay only a nil check. The zero value is also an empty plane.
type Plane struct {
	faults []Fault
	// FiredAt records the first cycle each fault actually corrupted a
	// consulted signal, or -1 while it has not; campaigns use it to
	// confirm the fault was exercised.
	firedAt []int64
	// minCycle and maxCycle bound the union of all fault activity
	// windows. Routers consult the plane on every signal read of every
	// cycle, so rejecting cycles outside the window before scanning the
	// fault list is the difference between O(1) and O(faults) per
	// consult — which dominates campaign runs, where faults are active
	// for a single cycle out of thousands.
	minCycle, maxCycle int64
}

// NewPlane returns a plane injecting the given faults.
func NewPlane(faults ...Fault) *Plane {
	p := &Plane{faults: faults, firedAt: make([]int64, len(faults))}
	p.minCycle, p.maxCycle = math.MaxInt64, math.MinInt64
	for i := range p.firedAt {
		p.firedAt[i] = -1
		f := &p.faults[i]
		if f.Cycle < p.minCycle {
			p.minCycle = f.Cycle
		}
		// Only one-shot faults have a closing window; permanent and
		// periodic intermittent faults keep the plane live forever.
		oneShot := f.Type == Transient || (f.Type == Intermittent && f.Period <= 0)
		if !oneShot {
			p.maxCycle = math.MaxInt64
		} else if f.Cycle > p.maxCycle {
			p.maxCycle = f.Cycle
		}
	}
	return p
}

// Faults returns the faults carried by the plane.
func (p *Plane) Faults() []Fault {
	if p == nil {
		return nil
	}
	return p.faults
}

// FiredAt returns the first cycle fault i corrupted a signal, or -1.
func (p *Plane) FiredAt(i int) int64 {
	if p == nil {
		return -1
	}
	return p.firedAt[i]
}

// Inert reports whether the plane can no longer influence a simulation
// from the given cycle onward: every fault's window has closed without
// the fault ever corrupting a consulted signal. Since a fault alters
// state only through xorMask or TransientRegisterFlips — both of which
// record firing — an inert plane's run is bit-identical to the
// fault-free continuation from the fork point, which is what lets
// campaigns short-circuit the remaining cycles. A nil or empty plane
// is trivially inert.
//
// Inert is monotone: once true at some cycle it is true at every later
// cycle (only transient windows can close, and a never-fired transient
// past its cycle can never fire).
func (p *Plane) Inert(cycle int64) bool {
	if p == nil {
		return true
	}
	for i := range p.faults {
		f := &p.faults[i]
		if p.firedAt[i] >= 0 {
			return false
		}
		// Only transient faults have a closing window; permanent and
		// intermittent faults can always strike again. Transient
		// register upsets are applied (and marked fired) at f.Cycle,
		// so they too are covered by the window check.
		if f.Type != Transient || cycle <= f.Cycle {
			return false
		}
	}
	return true
}

// Quiescent reports whether the plane can no longer fire from the given
// cycle onward, regardless of whether it already did: every fault is a
// transient whose window has closed. Unlike Inert it stays true for
// planes that corrupted state — which is exactly the population the
// reconvergence fast path targets: the fault hit, the perturbation is
// in flight, and the only open question is whether it washes out.
//
// Quiescent is monotone for the same reason Inert is: transient windows
// only close.
func (p *Plane) Quiescent(cycle int64) bool {
	if p == nil {
		return true
	}
	for i := range p.faults {
		f := &p.faults[i]
		if f.Type != Transient || cycle <= f.Cycle {
			return false
		}
	}
	return true
}

// LiveAt reports whether any fault window may be open at cycle — the
// per-cycle gate routers cache in BeginCycle so that out-of-window
// consults cost a single branch instead of a Plane method call.
func (p *Plane) LiveAt(cycle int64) bool {
	return p != nil && cycle >= p.minCycle && cycle <= p.maxCycle
}

// Clone returns an independent copy of the plane.
func (p *Plane) Clone() *Plane {
	if p == nil {
		return nil
	}
	c := &Plane{
		faults:   append([]Fault(nil), p.faults...),
		firedAt:  append([]int64(nil), p.firedAt...),
		minCycle: p.minCycle,
		maxCycle: p.maxCycle,
	}
	return c
}

// xorMask returns the XOR mask to apply to the addressed signal at
// cycle, and records firing.
func (p *Plane) xorMask(cycle int64, router int, kind Kind, port, vc int) uint32 {
	if p == nil || len(p.faults) == 0 || cycle < p.minCycle || cycle > p.maxCycle {
		return 0
	}
	var mask uint32
	for i := range p.faults {
		f := &p.faults[i]
		s := &f.Site
		if s.Router != router || s.Kind != kind || s.Port != port || s.VC != vc {
			continue
		}
		if f.Type == Transient && kind.IsRegister() {
			// Transient register upsets are applied destructively to the
			// stored state via TransientRegisterFlips, not on the read path.
			continue
		}
		if !f.ActiveAt(cycle) {
			continue
		}
		mask |= 1 << uint(f.Bit)
		if p.firedAt[i] < 0 {
			p.firedAt[i] = cycle
		}
	}
	return mask
}

// TransientRegisterFlips returns the transient faults targeting register
// sites of the given router whose injection cycle is cycle. The caller
// (the router) must flip the addressed bit in the actual stored state,
// modelling a single-event upset that persists until the register is
// rewritten. Returned faults are marked as fired.
func (p *Plane) TransientRegisterFlips(cycle int64, router int) []Fault {
	if p == nil || len(p.faults) == 0 || cycle < p.minCycle || cycle > p.maxCycle {
		return nil
	}
	var out []Fault
	for i := range p.faults {
		f := &p.faults[i]
		if f.Type != Transient || !f.Site.Kind.IsRegister() {
			continue
		}
		if f.Site.Router != router || f.Cycle != cycle {
			continue
		}
		out = append(out, *f)
		if p.firedAt[i] < 0 {
			p.firedAt[i] = cycle
		}
	}
	return out
}

// Word applies any matching fault to an integer-encoded signal value
// (direction codes, VC indices, state encodings, counters) and returns
// the possibly corrupted value. Values are treated as Width-bit
// unsigned words, so a flipped high bit can push the value out of its
// legal range — the illegal outputs invariances 2 and 19 watch for.
func (p *Plane) Word(cycle int64, router int, kind Kind, port, vc int, value int) int {
	// Kept small enough to inline: routers consult the plane on every
	// signal read, and outside the fault window (or with no plane at
	// all) the consult must cost no more than a couple of compares. An
	// empty plane has minCycle > maxCycle, so it always rejects here.
	if p == nil || cycle < p.minCycle || cycle > p.maxCycle {
		return value
	}
	return p.wordSlow(cycle, router, kind, port, vc, value)
}

func (p *Plane) wordSlow(cycle int64, router int, kind Kind, port, vc int, value int) int {
	m := p.xorMask(cycle, router, kind, port, vc)
	if m == 0 {
		return value
	}
	return int(uint32(value) ^ m)
}

// Vec applies any matching fault to a bit-vector signal.
func (p *Plane) Vec(cycle int64, router int, kind Kind, port, vc int, value uint32) uint32 {
	if p == nil || cycle < p.minCycle || cycle > p.maxCycle {
		return value
	}
	return value ^ p.xorMask(cycle, router, kind, port, vc)
}
