package fault

import (
	"math/bits"

	"nocalert/internal/topology"
)

// Params describes the micro-architecture dimensions the site enumerator
// needs. It deliberately mirrors the router configuration without
// importing the router package (the router imports fault, not the
// reverse).
type Params struct {
	// Mesh is the network topology; edge and corner routers contribute
	// fewer sites because they lack ports, which is why the paper's 8×8
	// mesh has 11,808 locations rather than 64× the interior count.
	Mesh topology.Mesh
	// VCs is the number of virtual channels per input port.
	VCs int
	// BufDepth is the per-VC buffer depth in flits.
	BufDepth int
}

// BitsFor returns the number of bits needed to encode values 0..max
// (at least 1).
func BitsFor(max int) int {
	if max <= 1 {
		return 1
	}
	return bits.Len(uint(max))
}

// Widths returns the per-kind signal width for the given parameters and
// a port count (vectors indexed by port are portCount wide on routers
// missing ports).
func (p Params) width(k Kind) int {
	switch k {
	case RCInDestX:
		return BitsFor(p.Mesh.W - 1)
	case RCInDestY:
		return BitsFor(p.Mesh.H - 1)
	case RCOutDir, VCRouteReg, VCStateReg:
		return 3
	case VA1Req, VA1Gnt, SA1Req, SA1Gnt, BufRead, BufWrite, CreditSig:
		return p.VCs
	case VA2Req, VA2Gnt, SA2Req, SA2Gnt, XbarSel:
		return int(topology.NumPorts)
	case VA2OutVC, VCOutVCReg, FlitVCIn:
		return BitsFor(p.VCs - 1)
	case FlitKindIn:
		return 2
	case CreditCountReg:
		return BitsFor(p.BufDepth)
	}
	return 0
}

// perInputPort lists the kinds instantiated once per input port.
var perInputPort = []Kind{
	RCInDestX, RCInDestY, RCOutDir,
	VA1Req, VA1Gnt, SA1Req, SA1Gnt,
	BufRead, BufWrite, FlitKindIn, FlitVCIn,
}

// perInputVC lists the kinds instantiated once per (input port, VC).
var perInputVC = []Kind{VCStateReg, VCRouteReg, VCOutVCReg}

// perOutputPort lists the kinds instantiated once per output port.
var perOutputPort = []Kind{
	VA2Req, VA2Gnt, VA2OutVC, SA2Req, SA2Gnt, XbarSel, CreditSig,
}

// perOutputVC lists the kinds instantiated once per (output port, VC).
var perOutputVC = []Kind{CreditCountReg}

// EnumerateRouterSites returns every fault site of the router at node
// id, honouring missing edge/corner ports.
func (p Params) EnumerateRouterSites(id int) []Site {
	var sites []Site
	for d := topology.North; d < topology.NumPorts; d++ {
		if !p.Mesh.HasPort(id, d) {
			continue
		}
		port := int(d)
		for _, k := range perInputPort {
			sites = append(sites, Site{Router: id, Kind: k, Port: port, VC: -1, Width: p.width(k)})
		}
		for vc := 0; vc < p.VCs; vc++ {
			for _, k := range perInputVC {
				sites = append(sites, Site{Router: id, Kind: k, Port: port, VC: vc, Width: p.width(k)})
			}
		}
		for _, k := range perOutputPort {
			sites = append(sites, Site{Router: id, Kind: k, Port: port, VC: -1, Width: p.width(k)})
		}
		for vc := 0; vc < p.VCs; vc++ {
			for _, k := range perOutputVC {
				sites = append(sites, Site{Router: id, Kind: k, Port: port, VC: vc, Width: p.width(k)})
			}
		}
	}
	return sites
}

// EnumerateSites returns every fault site in the mesh.
func (p Params) EnumerateSites() []Site {
	var sites []Site
	for id := 0; id < p.Mesh.Nodes(); id++ {
		sites = append(sites, p.EnumerateRouterSites(id)...)
	}
	return sites
}

// BitFaults expands a site into one fault per bit, all injecting at the
// given cycle with the given type.
func BitFaults(s Site, cycle int64, typ Type) []Fault {
	out := make([]Fault, s.Width)
	for b := 0; b < s.Width; b++ {
		out[b] = Fault{Site: s, Bit: b, Cycle: cycle, Type: typ}
	}
	return out
}

// CountBits returns the total number of single-bit fault locations in
// the mesh — the figure the paper quotes as 11,808 for its 8×8 mesh.
func (p Params) CountBits() int {
	n := 0
	for _, s := range p.EnumerateSites() {
		n += s.Width
	}
	return n
}
