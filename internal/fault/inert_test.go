package fault

import "testing"

func inertTestSite() Site {
	return Site{Router: 0, Kind: VA1Gnt, Port: 0, VC: -1, Width: 4}
}

func TestInertNilAndEmptyPlane(t *testing.T) {
	var p *Plane
	if !p.Inert(0) {
		t.Fatal("nil plane must be inert")
	}
	if !NewPlane().Inert(0) {
		t.Fatal("empty plane must be inert")
	}
}

func TestInertTransientWindow(t *testing.T) {
	f := Fault{Site: inertTestSite(), Bit: 1, Cycle: 10, Type: Transient}
	p := NewPlane(f)
	for _, c := range []int64{0, 9, 10} {
		if p.Inert(c) {
			t.Fatalf("plane inert at cycle %d, window not closed until after cycle 10", c)
		}
	}
	if !p.Inert(11) {
		t.Fatal("unfired transient must be inert once its cycle has passed")
	}
	// Monotone: stays inert at every later cycle.
	if !p.Inert(1000) {
		t.Fatal("inertness must be monotone")
	}
}

func TestInertFiredTransientNeverInert(t *testing.T) {
	f := Fault{Site: inertTestSite(), Bit: 0, Cycle: 10, Type: Transient}
	p := NewPlane(f)
	// Consult the faulted signal during the active window so it fires.
	got := p.Vec(10, 0, VA1Gnt, 0, -1, 0)
	if got == 0 {
		t.Fatal("active fault did not corrupt the consulted vector")
	}
	if p.FiredAt(0) != 10 {
		t.Fatalf("FiredAt = %d, want 10", p.FiredAt(0))
	}
	if p.Inert(100) {
		t.Fatal("a fired fault can never be inert: its perturbation is live in the network")
	}
}

func TestInertPermanentNeverInert(t *testing.T) {
	f := Fault{Site: inertTestSite(), Bit: 0, Cycle: 10, Type: Permanent}
	p := NewPlane(f)
	if p.Inert(1 << 30) {
		t.Fatal("permanent fault windows never close")
	}
}

func TestInertMixedGroup(t *testing.T) {
	s := inertTestSite()
	expired := Fault{Site: s, Bit: 0, Cycle: 10, Type: Transient}
	pending := Fault{Site: s, Bit: 1, Cycle: 50, Type: Transient}
	p := NewPlane(expired, pending)
	if p.Inert(20) {
		t.Fatal("group with a pending fault must not be inert")
	}
	if !p.Inert(51) {
		t.Fatal("group must be inert once every window has closed unfired")
	}
}
