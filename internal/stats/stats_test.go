package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]int64{5, 1, 3, 3, 9})
	if c.N() != 5 || c.Min() != 1 || c.Max() != 9 {
		t.Fatalf("N/Min/Max = %d/%d/%d", c.N(), c.Min(), c.Max())
	}
	if got := c.AtOrBelow(3); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("AtOrBelow(3) = %g", got)
	}
	if got := c.AtOrBelow(0); got != 0 {
		t.Fatalf("AtOrBelow(0) = %g", got)
	}
	if got := c.AtOrBelow(9); got != 1 {
		t.Fatalf("AtOrBelow(9) = %g", got)
	}
	if got := c.Mean(); math.Abs(got-4.2) > 1e-12 {
		t.Fatalf("Mean = %g", got)
	}
}

func TestCDFPercentiles(t *testing.T) {
	c := NewCDF([]int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	cases := map[float64]int64{0: 10, 0.1: 10, 0.5: 50, 0.97: 100, 1: 100}
	for p, want := range cases {
		if got := c.Percentile(p); got != want {
			t.Errorf("Percentile(%g) = %d, want %d", p, got, want)
		}
	}
}

func TestEmptyCDF(t *testing.T) {
	c := NewCDF(nil)
	if c.N() != 0 || c.AtOrBelow(5) != 0 || c.Max() != 0 || c.Min() != 0 || c.Mean() != 0 {
		t.Fatal("empty CDF accessors broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile on empty CDF should panic")
		}
	}()
	c.Percentile(0.5)
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	in := []int64{3, 1, 2}
	c := NewCDF(in)
	if in[0] != 3 {
		t.Fatal("NewCDF sorted the caller's slice")
	}
	in[0] = 99
	if c.Max() == 99 {
		t.Fatal("CDF aliases the caller's slice")
	}
}

// Property: AtOrBelow is monotone and Percentile inverts it.
func TestCDFProperties(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]int64, len(raw))
		for i, v := range raw {
			samples[i] = int64(v)
		}
		c := NewCDF(samples)
		sorted := append([]int64(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		// Monotonicity.
		prev := -1.0
		for _, x := range sorted {
			cur := c.AtOrBelow(x)
			if cur < prev {
				return false
			}
			prev = cur
		}
		// Percentile(p) has at least p mass at or below it.
		for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
			if c.AtOrBelow(c.Percentile(p)) < p-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPct(t *testing.T) {
	if Pct(1, 4) != 25 || Pct(0, 10) != 0 || Pct(3, 0) != 0 {
		t.Fatal("Pct broken")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("long-name-here", 42)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "3.14") || strings.Contains(out, "3.14159") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// Columns must align: header and rows share the first column width.
	if !strings.HasPrefix(lines[3], "alpha ") {
		t.Fatalf("misaligned rows:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "h")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "==") {
		t.Fatal("empty title rendered")
	}
}
