package stats

import (
	"strings"
	"testing"
)

func TestHeatmapRendering(t *testing.T) {
	h := NewHeatmap("demo", 3, 2)
	h.Add(0, 9)
	h.Add(4, 3)
	h.Add(4, 1.5)
	if h.Max() != 9 {
		t.Fatalf("Max = %f", h.Max())
	}
	out := h.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title, 2 rows, axis, scale
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Top row is y=1: node 4 = (1,1) → level 9*4.5/9 = 4.
	if !strings.Contains(lines[1], "4") || !strings.HasSuffix(lines[1], "y=1") {
		t.Fatalf("row y=1 wrong: %q", lines[1])
	}
	// Bottom row y=0: node 0 at level 9.
	if !strings.Contains(lines[2], "9") {
		t.Fatalf("row y=0 wrong: %q", lines[2])
	}
	// Out-of-range adds are ignored.
	h.Add(99, 5)
	if h.Max() != 9 {
		t.Fatal("out-of-range Add changed state")
	}
}

func TestHeatmapAllZero(t *testing.T) {
	h := NewHeatmap("", 2, 2)
	out := h.String()
	if strings.Contains(out, "==") || !strings.Contains(out, ".") {
		t.Fatalf("zero heatmap rendering:\n%s", out)
	}
}
