package stats

import (
	"fmt"
	"io"
	"strings"
)

// Heatmap renders per-node values of a W×H mesh as an ASCII grid, rows
// printed top-down (highest y first, matching the paper's bottom-left
// origin). Values are normalized to a 0–9 scale with '.' for zero.
type Heatmap struct {
	Title string
	W, H  int
	vals  []float64
}

// NewHeatmap creates a zeroed heatmap over a W×H mesh.
func NewHeatmap(title string, w, h int) *Heatmap {
	return &Heatmap{Title: title, W: w, H: h, vals: make([]float64, w*h)}
}

// Add accumulates v at node id (row-major from the bottom-left).
func (h *Heatmap) Add(node int, v float64) {
	if node >= 0 && node < len(h.vals) {
		h.vals[node] += v
	}
}

// Max returns the largest accumulated value.
func (h *Heatmap) Max() float64 {
	m := 0.0
	for _, v := range h.vals {
		if v > m {
			m = v
		}
	}
	return m
}

// Render writes the grid to w.
func (h *Heatmap) Render(w io.Writer) {
	if h.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", h.Title)
	}
	max := h.Max()
	for y := h.H - 1; y >= 0; y-- {
		var sb strings.Builder
		for x := 0; x < h.W; x++ {
			v := h.vals[y*h.W+x]
			switch {
			case v == 0:
				sb.WriteString(" .")
			case max == 0:
				sb.WriteString(" 0")
			default:
				level := int(9 * v / max)
				if level > 9 {
					level = 9
				}
				fmt.Fprintf(&sb, " %d", level)
			}
		}
		fmt.Fprintf(w, "%s   y=%d\n", sb.String(), y)
	}
	fmt.Fprintf(w, "%s\n", strings.Repeat(" x", h.W))
	fmt.Fprintf(w, "(scale: . = 0, 9 = %.0f)\n", max)
}

// String renders the heatmap to a string.
func (h *Heatmap) String() string {
	var sb strings.Builder
	h.Render(&sb)
	return sb.String()
}
