package stats

import (
	"testing"
	"testing/quick"
)

// TestCDFMergeEqualsUnion is the shard-merge property: merging
// per-shard CDFs must equal the CDF built from the concatenated
// samples, at every query point.
func TestCDFMergeEqualsUnion(t *testing.T) {
	f := func(a, b []int16) bool {
		as := make([]int64, len(a))
		for i, v := range a {
			as[i] = int64(v)
		}
		bs := make([]int64, len(b))
		for i, v := range b {
			bs[i] = int64(v)
		}
		merged := NewCDF(as).Merge(NewCDF(bs))
		whole := NewCDF(append(append([]int64(nil), as...), bs...))
		if merged.N() != whole.N() {
			return false
		}
		for _, q := range []int64{-40000, -1, 0, 1, 100, 40000} {
			if merged.AtOrBelow(q) != whole.AtOrBelow(q) {
				return false
			}
		}
		if merged.N() == 0 {
			return true
		}
		for _, p := range []float64{0, 0.25, 0.5, 0.97, 1} {
			if merged.Percentile(p) != whole.Percentile(p) {
				return false
			}
		}
		return merged.Min() == whole.Min() && merged.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMergeDoesNotMutateInputs(t *testing.T) {
	a := NewCDF([]int64{5, 1, 9})
	b := NewCDF([]int64{3, 7})
	_ = a.Merge(b)
	if a.N() != 3 || b.N() != 2 || a.Min() != 1 || b.Max() != 7 {
		t.Fatal("Merge mutated an input CDF")
	}
}

func TestMergeCDFs(t *testing.T) {
	out := MergeCDFs(NewCDF([]int64{4}), nil, NewCDF([]int64{1, 2}), NewCDF(nil))
	if out.N() != 3 || out.Min() != 1 || out.Max() != 4 {
		t.Fatalf("MergeCDFs folded wrong: n=%d min=%d max=%d", out.N(), out.Min(), out.Max())
	}
	if MergeCDFs().N() != 0 {
		t.Fatal("MergeCDFs() not empty")
	}
}

func TestTallyMerge(t *testing.T) {
	var a, b Tally
	a.Add("TP", 3)
	a.Add("TN", 1)
	b.Add("TP", 2)
	b.Add("FN", 5)
	a.Merge(&b)
	if a.Get("TP") != 5 || a.Get("TN") != 1 || a.Get("FN") != 5 || a.Get("FP") != 0 {
		t.Fatalf("merged tally wrong: %v %v %v", a.Get("TP"), a.Get("TN"), a.Get("FN"))
	}
	if a.Total() != 11 {
		t.Fatalf("Total = %d, want 11", a.Total())
	}
	keys := a.Keys()
	if len(keys) != 3 || keys[0] != "FN" || keys[1] != "TN" || keys[2] != "TP" {
		t.Fatalf("Keys not sorted: %v", keys)
	}
	var zero Tally
	if zero.Get("x") != 0 || zero.Total() != 0 || len(zero.Keys()) != 0 {
		t.Fatal("zero Tally not usable")
	}
}
