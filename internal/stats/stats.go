// Package stats provides the small statistical and formatting helpers
// the benchmark harness uses to regenerate the paper's tables and
// figures: empirical CDFs, histograms and fixed-width text tables.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over int64 samples.
type CDF struct {
	sorted []int64
}

// NewCDF builds a CDF from the samples (copied, then sorted).
func NewCDF(samples []int64) *CDF {
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// AtOrBelow returns the fraction of samples <= x (0 when empty).
func (c *CDF) AtOrBelow(x int64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(idx) / float64(len(c.sorted))
}

// Percentile returns the smallest sample value v such that at least
// p (in [0,1]) of the samples are <= v. It panics on an empty CDF.
func (c *CDF) Percentile(p float64) int64 {
	if len(c.sorted) == 0 {
		panic("stats: percentile of empty CDF")
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(p*float64(len(c.sorted))+0.9999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Max returns the largest sample (0 when empty).
func (c *CDF) Max() int64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// Min returns the smallest sample (0 when empty).
func (c *CDF) Min() int64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[0]
}

// Mean returns the sample mean (0 when empty).
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, v := range c.sorted {
		sum += float64(v)
	}
	return sum / float64(len(c.sorted))
}

// Merge returns a CDF over the union of both sample sets. Because a
// CDF is fully determined by its sample multiset, merging per-shard
// CDFs yields exactly the CDF of the unsharded sample list — the
// property sharded campaign reports rely on. Neither input is
// modified.
func (c *CDF) Merge(o *CDF) *CDF {
	if o == nil || len(o.sorted) == 0 {
		return &CDF{sorted: append([]int64(nil), c.sorted...)}
	}
	if len(c.sorted) == 0 {
		return &CDF{sorted: append([]int64(nil), o.sorted...)}
	}
	out := make([]int64, 0, len(c.sorted)+len(o.sorted))
	i, j := 0, 0
	for i < len(c.sorted) && j < len(o.sorted) {
		if c.sorted[i] <= o.sorted[j] {
			out = append(out, c.sorted[i])
			i++
		} else {
			out = append(out, o.sorted[j])
			j++
		}
	}
	out = append(out, c.sorted[i:]...)
	out = append(out, o.sorted[j:]...)
	return &CDF{sorted: out}
}

// MergeCDFs folds any number of CDFs into one (empty when given none).
func MergeCDFs(cs ...*CDF) *CDF {
	out := &CDF{}
	for _, c := range cs {
		if c != nil {
			out = out.Merge(c)
		}
	}
	return out
}

// Tally is a mergeable counter map keyed by label — the reduction
// shape shard merging needs for outcome and verdict counts. The zero
// value is ready to use.
type Tally struct {
	counts map[string]int64
}

// Add increments key by n.
func (t *Tally) Add(key string, n int64) {
	if t.counts == nil {
		t.counts = make(map[string]int64)
	}
	t.counts[key] += n
}

// Get returns key's count (0 when absent).
func (t *Tally) Get(key string) int64 { return t.counts[key] }

// Total returns the sum of all counts.
func (t *Tally) Total() int64 {
	var n int64
	for _, v := range t.counts {
		n += v
	}
	return n
}

// Merge folds another tally into this one.
func (t *Tally) Merge(o *Tally) {
	for k, v := range o.counts {
		t.Add(k, v)
	}
}

// Keys returns the keys in sorted order, so renderings of merged
// tallies are deterministic regardless of merge order.
func (t *Tally) Keys() []string {
	keys := make([]string, 0, len(t.counts))
	for k := range t.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Pct renders part/whole as a percentage (0 when whole is 0).
func Pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// Table is a fixed-width text table, the output format of the
// experiment regenerators.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells render with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, cols)
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		line(sep)
	}
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}
