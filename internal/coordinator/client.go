package coordinator

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"nocalert/internal/campaign"
	"nocalert/internal/server"
	"nocalert/internal/trace"
)

// client is the coordinator's typed view of one nocalertd worker's job
// API. It speaks the exact wire surface cmd/nocalertd exposes — submit
// with shard coordinates, NDJSON event streaming, checkpoint fetch —
// and classifies every failure as transient (worth retrying, possibly
// a dying worker) or permanent (the request itself is wrong).
type client struct {
	base  string // http://host:port, no trailing slash
	token string // bearer token; "" when the fleet runs without auth
	hc    *http.Client
}

// transientError marks failures where retrying (or requeueing onto
// another worker) is the right move: connection failures, timeouts,
// 5xx, and 429 backpressure. Everything else — 4xx, malformed bodies —
// is a bug in the request and retrying would loop forever.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func transient(format string, args ...any) error {
	return &transientError{fmt.Errorf(format, args...)}
}

// isTransient reports whether err is worth retrying.
func isTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

func (c *client) do(req *http.Request) (*http.Response, error) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Connection-level failures (refused, reset, DNS, ctx timeout
		// via transport) all look like a dead or dying worker.
		return nil, transient("%s: %v", c.base, err)
	}
	return resp, nil
}

// apiError drains the response and renders its JSON error body,
// classifying by status code.
func (c *client) apiError(resp *http.Response, op string) error {
	defer resp.Body.Close()
	var body struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body); err == nil && body.Error != "" {
		msg = fmt.Sprintf("%s: %s", resp.Status, body.Error)
	}
	err := fmt.Errorf("%s %s: %s", op, c.base, msg)
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
		return &transientError{err}
	}
	return err
}

// submitShard dispatches shard i of n to the worker. Idempotent on the
// worker side: a retry after a lost response lands on the same job.
func (c *client) submitShard(ctx context.Context, specJSON []byte, i, n int) (server.View, error) {
	u := fmt.Sprintf("%s/v1/jobs?shard=%d&shards=%d", c.base, i, n)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(specJSON))
	if err != nil {
		return server.View{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.do(req)
	if err != nil {
		return server.View{}, err
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return server.View{}, c.apiError(resp, "submit")
	}
	defer resp.Body.Close()
	var v server.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return server.View{}, transient("submit %s: decoding response: %v", c.base, err)
	}
	return v, nil
}

// status fetches one job's current view.
func (c *client) status(ctx context.Context, id string) (server.View, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return server.View{}, err
	}
	resp, err := c.do(req)
	if err != nil {
		return server.View{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return server.View{}, c.apiError(resp, "status")
	}
	defer resp.Body.Close()
	var v server.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return server.View{}, transient("status %s: decoding response: %v", c.base, err)
	}
	return v, nil
}

// events opens the job's NDJSON progress stream and forwards each
// event to the channel it returns. The stream goroutine exits — and
// closes the channel — when the job goes terminal, the stream breaks,
// or ctx is canceled. Stream errors after at least one event are
// normal (worker killed mid-job) and simply end the stream; the caller
// judges the job by its last observed state and a follow-up status
// probe.
func (c *client) events(ctx context.Context, id string) (<-chan server.Event, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, c.apiError(resp, "events")
	}
	ch := make(chan server.Event, 16)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var ev server.Event
			if json.Unmarshal(line, &ev) != nil {
				continue
			}
			select {
			case ch <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, nil
}

// checkpoint fetches and parses the job's finalized shard checkpoint.
func (c *client) checkpoint(ctx context.Context, id string) (*trace.CheckpointData, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/checkpoint", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, c.apiError(resp, "checkpoint")
	}
	defer resp.Body.Close()
	cd, err := trace.ReadCheckpoint(resp.Body)
	if err != nil {
		// A truncated transfer reads like a torn checkpoint; refetch.
		return nil, transient("checkpoint %s job %s: %v", c.base, id, err)
	}
	if cd.Footer == nil {
		return nil, transient("checkpoint %s job %s: not finalized", c.base, id)
	}
	return cd, nil
}

// cancel best-effort cancels a job (used when a lease expires and the
// shard is requeued elsewhere; a hung worker may never see it).
func (c *client) cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// specPayload marshals the spec once for every submit this dispatch
// will do.
func specPayload(spec campaign.Spec) ([]byte, error) {
	return json.Marshal(&spec)
}

// workerLabel renders a stable per-worker metric-name fragment:
// "worker" + index (the flat-name registry has no labels).
func workerLabel(i int) string { return "worker" + strconv.Itoa(i) }
