// Package coordinator dispatches one fault campaign across a fleet of
// nocalertd workers and proves the distributed answer equals the
// single-machine one.
//
// The coordinator plans the campaign as N shards (the same
// campaign.PlanShard partition the CLI's -shard flag uses), submits
// each shard over the workers' HTTP job API, watches every shard's
// NDJSON event stream as its heartbeat, and folds the finalized shard
// checkpoints through campaign.MergeShards — so the merged report is
// byte-identical to an unsharded run, or the merge gate refuses.
//
// Robustness is lease-based. A shard dispatch holds a lease that the
// worker renews with every progress event; a worker that dies (stream
// breaks, probes fail) or hangs (no event within LeaseTimeout) forfeits
// the shard, which is requeued onto a surviving worker with exponential
// backoff + jitter. Submissions are idempotent on (spec, shard) — the
// worker dedupes — so a retried submit after a lost response, or a
// requeue that lands back on the original worker, reattaches to the
// live job instead of doubling work; a worker that restarted from
// SIGKILL resumes its shard from the durable checkpoint through
// RunShard's skip-and-verify path.
package coordinator

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"nocalert/internal/campaign"
	"nocalert/internal/metrics"
	"nocalert/internal/obs"
	"nocalert/internal/server"
	"nocalert/internal/trace"
)

// Metric names the coordinator registers (flat names; per-worker
// series are index-suffixed because the registry has no labels).
const (
	MetricShards       = "coord_shards"
	MetricShardsDone   = "coord_shards_done_total"
	MetricRequeues     = "coord_shard_requeues_total"
	MetricRetries      = "coord_retries_total"
	MetricWorkersDead  = "coord_workers_dead_total"
	MetricRunsDone     = "coord_runs_done"
	MetricFleetRate    = "coord_fleet_faults_per_sec"
	MetricWorkerPrefix = "coord_" // + workerN_shards_done_total / workerN_inflight
)

// Config describes the fleet and the dispatch policy. Zero-value
// fields take the defaults noted on each.
type Config struct {
	// Workers are the fleet's base URLs (http://host:port). Required.
	Workers []string
	// Token is the bearer token presented to every worker; "" when the
	// fleet runs without auth.
	Token string
	// Shards is how many slices to plan; default len(Workers).
	Shards int
	// MaxInFlight caps concurrently dispatched shards per worker;
	// default 2.
	MaxInFlight int
	// LeaseTimeout is how long a dispatched shard may go without a
	// progress event before its lease expires and it is requeued;
	// default 30s.
	LeaseTimeout time.Duration
	// RetryBase/RetryMax bound the exponential backoff between retries
	// against a failing worker; defaults 200ms / 5s. Jitter in
	// [0.5,1.5)× is always applied.
	RetryBase time.Duration
	RetryMax  time.Duration
	// MaxAttempts is how many dispatch attempts one shard gets before
	// the whole run fails; default 6.
	MaxAttempts int
	// DeathThreshold is how many consecutive transient failures mark a
	// worker dead (its slots stop taking shards); default 3.
	DeathThreshold int

	// Metrics, when set, receives the coord_* series.
	Metrics *metrics.Registry
	// Tracer/TraceParent thread the dispatch into a span hierarchy:
	// one "coordinator" span for the run, a "dispatch" child per shard
	// attempt. Both optional.
	Tracer      *obs.Tracer
	TraceParent *obs.Span
	// HTTPClient overrides the default client (no global timeout; every
	// request carries a context deadline where one is needed).
	HTTPClient *http.Client
	// Logf, when set, receives one line per dispatch decision.
	Logf func(format string, args ...any)
	// Progress, when set, is called after every fleet progress change.
	Progress func(ProgressUpdate)
	// Seed seeds the backoff jitter; 0 means time-seeded.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = len(c.Workers)
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 30 * time.Second
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 200 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.DeathThreshold <= 0 {
		c.DeathThreshold = 3
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ProgressUpdate is one campaign-level progress sample, aggregated
// across the fleet with campaign.FleetProgress's monotonicity and
// finite-ETA guarantees.
type ProgressUpdate struct {
	Done, Total        int
	ShardsDone, Shards int
	Rate               float64
	ETA                time.Duration
	ETAOK              bool
}

// WorkerStats is one worker's dispatch tally.
type WorkerStats struct {
	URL        string
	ShardsDone int
	Dead       bool
}

// Stats summarizes the dispatch.
type Stats struct {
	Shards      int
	Requeued    int // dispatches forfeited (lease expiry, worker death) and requeued
	Retries     int // transient retries (submit, stream, checkpoint fetch)
	WorkersDead int
	PerWorker   []WorkerStats
}

// Result is a completed distributed campaign.
type Result struct {
	Merged *campaign.Merged
	Report *campaign.Report
	Stats  Stats
}

// shardTicket is one unit of pending work.
type shardTicket struct {
	index    int
	attempts int
}

// workerState is one fleet member's live dispatch state.
type workerState struct {
	client     *client
	consecFail int
	dead       bool
	inflight   *metrics.Gauge
	shardsDone *metrics.Counter
}

type run struct {
	cfg      Config
	specJSON []byte
	shards   int

	pending chan shardTicket
	doneCh  chan struct{}

	mu       sync.Mutex
	workers  []*workerState
	results  map[int]*trace.CheckpointData
	fleet    campaign.FleetProgress
	stats    Stats
	fatalErr error
	finished bool
	live     int // workers not yet dead

	rng *rand.Rand

	reg                                     *metrics.Registry
	mShardsDone, mRequeues, mRetries, mDead *metrics.Counter
	gRunsDone, gRate                        *metrics.Gauge

	span *obs.Span
}

// Run dispatches spec across the fleet and returns the merged result.
// It blocks until the campaign completes, a shard exhausts its
// attempts, every worker is dead, or ctx is canceled.
func Run(ctx context.Context, spec campaign.Spec, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("coordinator: no workers configured")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("coordinator: invalid shard count %d", cfg.Shards)
	}
	// Normalize exactly like the workers will, so the planned totals
	// and the spec hash the dedupe keys on agree fleet-wide.
	spec = server.NormalizeSpec(spec)
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// Plan locally once: validates the shard count against the
	// universe and fixes the campaign-wide total.
	universe := spec.Universe()
	if cfg.Shards > len(universe) {
		return nil, fmt.Errorf("coordinator: %d shards for a %d-fault universe", cfg.Shards, len(universe))
	}
	specJSON, err := specPayload(spec)
	if err != nil {
		return nil, err
	}

	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	r := &run{
		cfg:      cfg,
		specJSON: specJSON,
		shards:   cfg.Shards,
		pending:  make(chan shardTicket, cfg.Shards),
		doneCh:   make(chan struct{}),
		results:  make(map[int]*trace.CheckpointData, cfg.Shards),
		live:     len(cfg.Workers),
		rng:      rand.New(rand.NewSource(seed)),
	}
	r.fleet.SetTotal(len(universe))
	r.stats.Shards = cfg.Shards
	r.stats.PerWorker = make([]WorkerStats, len(cfg.Workers))
	for i, u := range cfg.Workers {
		r.stats.PerWorker[i].URL = u
	}
	r.initMetrics()
	r.initWorkers()

	r.span = cfg.Tracer.Start(cfg.TraceParent, "coordinator", "dispatch")
	r.span.SetAttr("shards", cfg.Shards)
	r.span.SetAttr("workers", len(cfg.Workers))
	defer r.span.End()

	for i := 0; i < cfg.Shards; i++ {
		r.pending <- shardTicket{index: i}
	}

	var wg sync.WaitGroup
	for wi := range r.workers {
		for slot := 0; slot < cfg.MaxInFlight; slot++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				r.agent(ctx, wi)
			}(wi)
		}
	}

	select {
	case <-ctx.Done():
		r.fail(ctx.Err())
	case <-r.doneCh:
	}
	wg.Wait()

	r.mu.Lock()
	defer r.mu.Unlock()
	r.span.SetAttr("requeued", r.stats.Requeued)
	r.span.SetAttr("retries", r.stats.Retries)
	if r.fatalErr != nil {
		r.span.SetAttr("error", r.fatalErr.Error())
		return nil, r.fatalErr
	}

	ordered := make([]*trace.CheckpointData, 0, r.shards)
	for i := 0; i < r.shards; i++ {
		cd, ok := r.results[i]
		if !ok {
			return nil, fmt.Errorf("coordinator: shard %d missing after completion", i)
		}
		ordered = append(ordered, cd)
	}
	merged, err := campaign.MergeShards(ordered)
	if err != nil {
		return nil, fmt.Errorf("coordinator: merge gate refused the fleet's shards: %w", err)
	}
	report, err := merged.Report()
	if err != nil {
		return nil, err
	}
	stats := r.stats
	stats.PerWorker = append([]WorkerStats(nil), r.stats.PerWorker...)
	return &Result{Merged: merged, Report: report, Stats: stats}, nil
}

func (r *run) initMetrics() {
	reg := r.cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry() // throwaway: keeps call sites unconditional
	}
	reg.Gauge(MetricShards).Set(float64(r.shards))
	r.mShardsDone = reg.Counter(MetricShardsDone)
	r.mRequeues = reg.Counter(MetricRequeues)
	r.mRetries = reg.Counter(MetricRetries)
	r.mDead = reg.Counter(MetricWorkersDead)
	r.gRunsDone = reg.Gauge(MetricRunsDone)
	r.gRate = reg.Gauge(MetricFleetRate)
	r.reg = reg
}

func (r *run) initWorkers() {
	r.workers = make([]*workerState, len(r.cfg.Workers))
	for i, u := range r.cfg.Workers {
		r.workers[i] = &workerState{
			client:     &client{base: u, token: r.cfg.Token, hc: r.cfg.HTTPClient},
			inflight:   r.reg.Gauge(MetricWorkerPrefix + workerLabel(i) + "_inflight"),
			shardsDone: r.reg.Counter(MetricWorkerPrefix + workerLabel(i) + "_shards_done_total"),
		}
	}
}

// agent is one dispatch slot of one worker: it pulls pending shards
// and runs them against its worker until the run ends or the worker is
// declared dead.
func (r *run) agent(ctx context.Context, wi int) {
	w := r.workers[wi]
	for {
		if r.workerDead(wi) {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-r.doneCh:
			return
		case t := <-r.pending:
			w.inflight.Add(1)
			err := r.dispatch(ctx, wi, t)
			w.inflight.Add(-1)
			switch {
			case err == nil:
				r.workerOK(wi)
			case ctx.Err() != nil:
				r.requeue(t, "run canceled")
				return
			case isTransient(err):
				r.cfg.Logf("coordinator: shard %d on %s: %v (requeueing)", t.index, w.client.base, err)
				r.requeue(t, err.Error())
				r.workerFailed(ctx, wi)
			default:
				// The request itself is wrong (bad spec, auth). No
				// amount of retrying fixes it.
				r.fail(fmt.Errorf("coordinator: shard %d on %s: %w", t.index, w.client.base, err))
				return
			}
		}
	}
}

// dispatch runs one attempt of one shard on one worker: submit,
// stream events as the lease heartbeat, fetch the finalized
// checkpoint. Every error path returns a transient error (requeue) or
// a permanent one (fail the run).
func (r *run) dispatch(ctx context.Context, wi int, t shardTicket) error {
	w := r.workers[wi]
	span := r.span.Child("dispatch", fmt.Sprintf("shard-%d", t.index))
	span.SetAttr("worker", w.client.base)
	span.SetAttr("attempt", t.attempts+1)
	outcome := "requeued"
	defer func() {
		span.SetAttr("outcome", outcome)
		span.End()
	}()

	v, err := w.client.submitShard(ctx, r.specJSON, t.index, r.shards)
	if err != nil {
		return err
	}
	r.cfg.Logf("coordinator: shard %d/%d -> %s job %s (attempt %d)",
		t.index, r.shards, w.client.base, v.ID, t.attempts+1)
	span.SetAttr("job", v.ID)

	// A dedupe hit on an already-done shard job skips the stream.
	if v.Status != "done" {
		if err := r.watch(ctx, wi, t, v.ID); err != nil {
			return err
		}
	}
	cd, err := r.fetchCheckpoint(ctx, wi, v.ID)
	if err != nil {
		return err
	}
	if err := r.record(t.index, wi, cd); err != nil {
		return err
	}
	outcome = "done"
	return nil
}

// watch follows the job's event stream until it goes terminal. Every
// event renews the lease; LeaseTimeout of silence forfeits it. A
// broken stream falls back to a status probe: still-running jobs are
// requeued (the idempotent resubmit reattaches), dead workers surface
// as transient connection errors.
func (r *run) watch(ctx context.Context, wi int, t shardTicket, id string) error {
	w := r.workers[wi]
	streamCtx, cancelStream := context.WithCancel(ctx)
	defer cancelStream()
	events, err := w.client.events(streamCtx, id)
	if err != nil {
		return err
	}
	lease := time.NewTimer(r.cfg.LeaseTimeout)
	defer lease.Stop()
	for {
		select {
		case <-ctx.Done():
			return transient("run canceled")
		case <-lease.C:
			// Hung worker: best-effort cancel, then requeue.
			cancelCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			w.client.cancel(cancelCtx, id)
			cancel()
			return transient("lease expired: no progress from %s job %s in %s", w.client.base, id, r.cfg.LeaseTimeout)
		case ev, open := <-events:
			if !open {
				// Stream ended. Terminal is normal; anything else means
				// the connection broke — probe once to find out which.
				probeCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
				v, err := w.client.status(probeCtx, id)
				cancel()
				if err != nil {
					return err
				}
				switch v.Status {
				case "done":
					return nil
				case "failed", "canceled":
					return transient("job %s on %s ended %s: %s", id, w.client.base, v.Status, v.Error)
				default:
					return transient("event stream to %s broke with job %s still %s", w.client.base, id, v.Status)
				}
			}
			lease.Reset(r.cfg.LeaseTimeout)
			r.progress(t.index, ev.Done, ev.Total, ev.FaultsPerSec)
			if ev.Status == "done" {
				return nil
			}
			if ev.Status == "failed" || ev.Status == "canceled" {
				return transient("job %s on %s ended %s: %s", id, w.client.base, ev.Status, ev.Error)
			}
		}
	}
}

// fetchCheckpoint pulls the finalized shard checkpoint, retrying
// transient fetch failures in place with backoff.
func (r *run) fetchCheckpoint(ctx context.Context, wi int, id string) (*trace.CheckpointData, error) {
	w := r.workers[wi]
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			r.countRetry()
			if !r.sleep(ctx, r.backoff(attempt)) {
				return nil, transient("run canceled")
			}
		}
		cd, err := w.client.checkpoint(ctx, id)
		if err == nil {
			return cd, nil
		}
		if !isTransient(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// record stores a completed shard's checkpoint, guarding against the
// duplicate-completion race (two workers finishing the same requeued
// shard both produce identical records; first in wins).
func (r *run) record(index, wi int, cd *trace.CheckpointData) error {
	if cd.Manifest.Shard != index || cd.Manifest.Shards != r.shards {
		return fmt.Errorf("coordinator: worker returned shard %d/%d, expected %d/%d",
			cd.Manifest.Shard, cd.Manifest.Shards, index, r.shards)
	}
	w := r.workers[wi]
	r.mu.Lock()
	if _, dup := r.results[index]; !dup {
		r.results[index] = cd
		r.stats.PerWorker[wi].ShardsDone++
		r.fleet.Finish(index)
		r.mShardsDone.Inc()
		w.shardsDone.Inc()
		done := len(r.results) == r.shards
		r.publishProgressLocked()
		if done && !r.finished {
			r.finished = true
			close(r.doneCh)
		}
	}
	r.mu.Unlock()
	return nil
}

// progress folds one shard event into the fleet aggregate.
func (r *run) progress(shard, done, total int, rate float64) {
	r.mu.Lock()
	r.fleet.Update(shard, done, total, rate)
	r.publishProgressLocked()
	r.mu.Unlock()
}

// publishProgressLocked pushes the aggregate to gauges and the
// Progress callback. Caller holds r.mu.
func (r *run) publishProgressLocked() {
	done, total := r.fleet.Done(), r.fleet.Total()
	rate := r.fleet.Rate()
	r.gRunsDone.Set(float64(done))
	r.gRate.Set(rate)
	if r.cfg.Progress == nil {
		return
	}
	eta, ok := r.fleet.ETA()
	r.cfg.Progress(ProgressUpdate{
		Done: done, Total: total,
		ShardsDone: len(r.results), Shards: r.shards,
		Rate: rate, ETA: eta, ETAOK: ok,
	})
}

// requeue puts a forfeited shard back on the queue, or fails the run
// when the shard is out of attempts. The pending channel holds
// r.shards entries and a shard is never queued twice concurrently, so
// the send cannot block.
func (r *run) requeue(t shardTicket, why string) {
	r.mu.Lock()
	if _, alreadyDone := r.results[t.index]; alreadyDone || r.finished {
		r.mu.Unlock()
		return
	}
	t.attempts++
	r.stats.Requeued++
	r.mRequeues.Inc()
	out := t.attempts >= r.cfg.MaxAttempts
	r.mu.Unlock()
	if out {
		r.fail(fmt.Errorf("coordinator: shard %d failed %d dispatch attempts (last: %s)", t.index, t.attempts, why))
		return
	}
	r.pending <- t
}

// fail records the first fatal error and releases Run.
func (r *run) fail(err error) {
	r.mu.Lock()
	if !r.finished {
		r.finished = true
		if r.fatalErr == nil {
			r.fatalErr = err
		}
		close(r.doneCh)
	}
	r.mu.Unlock()
}

// workerOK resets the worker's consecutive-failure streak.
func (r *run) workerOK(wi int) {
	r.mu.Lock()
	r.workers[wi].consecFail = 0
	r.mu.Unlock()
}

// workerFailed counts a transient failure against the worker, sleeps
// the backoff, and declares the worker dead past DeathThreshold. When
// the last live worker dies the run fails — there is nobody left to
// requeue onto.
func (r *run) workerFailed(ctx context.Context, wi int) {
	r.mu.Lock()
	w := r.workers[wi]
	w.consecFail++
	fails := w.consecFail
	justDied := !w.dead && fails >= r.cfg.DeathThreshold
	if justDied {
		w.dead = true
		r.stats.WorkersDead++
		r.stats.PerWorker[wi].Dead = true
		r.live--
		noneLeft := r.live == 0
		r.mu.Unlock()
		r.mDead.Inc()
		r.cfg.Logf("coordinator: worker %s declared dead after %d consecutive failures", w.client.base, fails)
		r.span.SetAttr(fmt.Sprintf("%s_dead", workerLabel(wi)), true)
		if noneLeft {
			r.fail(fmt.Errorf("coordinator: all %d workers dead", len(r.workers)))
		}
		return
	}
	r.mu.Unlock()
	r.countRetry()
	r.sleep(ctx, r.backoff(fails))
}

func (r *run) workerDead(wi int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.workers[wi].dead
}

func (r *run) countRetry() {
	r.mu.Lock()
	r.stats.Retries++
	r.mu.Unlock()
	r.mRetries.Inc()
}

// backoff is the exponential retry delay with [0.5,1.5)× jitter, so a
// fleet of slots hammering one sick worker decorrelates.
func (r *run) backoff(attempt int) time.Duration {
	d := r.cfg.RetryBase << uint(attempt-1)
	if d > r.cfg.RetryMax || d <= 0 {
		d = r.cfg.RetryMax
	}
	r.mu.Lock()
	jitter := 0.5 + r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// sleep waits d or until ctx/run end; reports false when interrupted.
func (r *run) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-r.doneCh:
		return false
	}
}
