package coordinator

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"nocalert/internal/campaign"
	"nocalert/internal/metrics"
	"nocalert/internal/server"
	"nocalert/internal/trace"
)

// testSpec is the golden 4×4 workload with a reduced fault sample.
func testSpec(faults int) campaign.Spec {
	return campaign.Spec{
		MeshW: 4, MeshH: 4, VCs: 4,
		InjectionRate: 0.12,
		Seed:          3,
		InjectCycle:   300,
		PostInjectRun: 400,
		DrainDeadline: 5000,
		Epoch:         400,
		HopLatency:    1,
		NumFaults:     faults,
	}
}

// referenceReport runs the campaign unsharded on this machine and
// renders its report JSON — the bytes a distributed dispatch must
// reproduce exactly.
func referenceReport(t *testing.T, spec campaign.Spec) []byte {
	t.Helper()
	spec = server.NormalizeSpec(spec)
	sh, err := campaign.PlanShard(spec, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sh.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ref.ckpt.ndjson")
	cp, err := trace.CreateCheckpoint(path, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.RunShard(sh, cp, nil, campaign.ShardRunOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	cd, err := trace.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := campaign.MergeShards([]*trace.CheckpointData{cd})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := merged.Report()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fleetMember is one in-process worker: a real server.Server behind a
// real HTTP listener.
type fleetMember struct {
	srv *server.Server
	ts  *httptest.Server
}

func startFleet(t *testing.T, n int, cfg server.Config) []fleetMember {
	t.Helper()
	fleet := make([]fleetMember, n)
	for i := range fleet {
		c := cfg
		c.Dir = t.TempDir()
		s, err := server.New(c)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		fleet[i] = fleetMember{srv: s, ts: ts}
		t.Cleanup(func() {
			ts.CloseClientConnections()
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			s.Stop(ctx)
		})
	}
	return fleet
}

func urls(fleet []fleetMember) []string {
	u := make([]string, len(fleet))
	for i := range fleet {
		u[i] = fleet[i].ts.URL
	}
	return u
}

// TestDispatchMatchesSingleMachine is the happy path: a 3-worker fleet
// runs a 6-shard campaign and the merged report is byte-identical to
// the unsharded local run.
func TestDispatchMatchesSingleMachine(t *testing.T) {
	spec := testSpec(24)
	want := referenceReport(t, spec)

	fleet := startFleet(t, 3, server.Config{Concurrency: 1})
	reg := metrics.NewRegistry()
	res, err := Run(context.Background(), spec, Config{
		Workers: urls(fleet),
		Shards:  6,
		Metrics: reg,
		Seed:    1,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	if err := res.Report.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("distributed report differs from single-machine run (%d vs %d bytes)", got.Len(), len(want))
	}
	if res.Stats.Requeued != 0 || res.Stats.WorkersDead != 0 {
		t.Fatalf("healthy fleet reported requeues/deaths: %+v", res.Stats)
	}
	if n := reg.Counter(MetricShardsDone).Value(); n != 6 {
		t.Fatalf("%s = %d, want 6", MetricShardsDone, n)
	}
	total := 0
	for _, w := range res.Stats.PerWorker {
		total += w.ShardsDone
	}
	if total != 6 {
		t.Fatalf("per-worker shard tallies sum to %d, want 6", total)
	}
}

// TestDispatchSurvivesWorkerDeath kills one worker mid-campaign — its
// connections severed, its listener gone — and requires the
// coordinator to requeue the forfeited shards onto the survivors and
// still produce the byte-identical report.
func TestDispatchSurvivesWorkerDeath(t *testing.T) {
	spec := testSpec(48)
	want := referenceReport(t, spec)

	fleet := startFleet(t, 3, server.Config{Concurrency: 1})
	victim := fleet[1]

	// Sever the victim the moment it starts running its first shard:
	// the coordinator's event stream to it breaks mid-job and every
	// reconnect is refused, exactly like a machine lost to SIGKILL (the
	// in-process campaign may finish, but its results are unreachable).
	go func() {
		for {
			for _, v := range victim.srv.JobViews() {
				if v.Status == server.StatusRunning {
					victim.ts.CloseClientConnections()
					victim.ts.Close()
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	reg := metrics.NewRegistry()
	res, err := Run(context.Background(), spec, Config{
		Workers:        urls(fleet),
		Shards:         8,
		MaxInFlight:    2,
		RetryBase:      10 * time.Millisecond,
		RetryMax:       100 * time.Millisecond,
		DeathThreshold: 2,
		MaxAttempts:    8,
		Metrics:        reg,
		Seed:           1,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	if err := res.Report.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("distributed report differs from single-machine run after worker death")
	}
	if res.Stats.Requeued < 1 {
		t.Fatalf("worker died mid-flight but nothing was requeued: %+v", res.Stats)
	}
	if res.Stats.WorkersDead != 1 || !res.Stats.PerWorker[1].Dead {
		t.Fatalf("victim not recorded dead: %+v", res.Stats)
	}
	if n := reg.Counter(MetricRequeues).Value(); n < 1 {
		t.Fatalf("%s = %d, want >= 1", MetricRequeues, n)
	}
	if n := reg.Counter(MetricShardsDone).Value(); n != 8 {
		t.Fatalf("%s = %d, want 8", MetricShardsDone, n)
	}
	// The survivors must have absorbed the victim's forfeited work.
	if res.Stats.PerWorker[0].ShardsDone+res.Stats.PerWorker[2].ShardsDone != 8-res.Stats.PerWorker[1].ShardsDone {
		t.Fatalf("shard tally does not cover the campaign: %+v", res.Stats.PerWorker)
	}
}
