package forever

import (
	"testing"

	"nocalert/internal/fault"
	"nocalert/internal/flit"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

func netWithForever(t *testing.T, rate float64, opts Options, plane *fault.Plane) (*sim.Network, *Monitor) {
	t.Helper()
	rc := router.Default(topology.NewMesh(4, 4))
	n := sim.MustNew(sim.Config{Router: rc, InjectionRate: rate, Seed: 23}, plane)
	m := NewMonitor(n.RouterConfig(), opts)
	n.AttachMonitor(m)
	return n, m
}

// TestFaultFreeSilence: a well-tuned epoch never flags a healthy
// network.
func TestFaultFreeSilence(t *testing.T) {
	n, m := netWithForever(t, 0.12, Options{Epoch: 400, HopLatency: 1}, nil)
	n.Run(4000)
	n.Drain(8000)
	if m.Detected() {
		t.Fatalf("ForEVeR flagged a healthy network at cycle %d", m.FirstDetection())
	}
}

// TestShortEpochFalsePositive: the paper's tuning argument — too short
// an epoch flags healthy congestion.
func TestShortEpochFalsePositive(t *testing.T) {
	n, m := netWithForever(t, 0.35, Options{Epoch: 20, HopLatency: 1}, nil)
	n.Run(3000)
	if !m.Detected() {
		t.Fatal("a 20-cycle epoch should false-positive under load")
	}
}

// TestDropDetectedAtEpochBoundary: a dropped flit leaves a counter
// stuck nonzero; the flag arrives at an epoch boundary, quantizing the
// latency — the Figure 7 contrast.
func TestDropDetectedAtEpochBoundary(t *testing.T) {
	const epoch = 300
	// A permanent grant suppression starves a port: flits never arrive.
	s := fault.Site{Router: 5, Kind: fault.SA1Gnt, Port: int(topology.Local), VC: -1, Width: 4}
	f := fault.Fault{Site: s, Bit: 0, Cycle: 500, Type: fault.Permanent}
	n, m := netWithForever(t, 0.12, Options{Epoch: epoch, HopLatency: 1, DisableAC: true}, fault.NewPlane(f))
	n.Run(3000)
	if !m.Detected() {
		t.Fatal("stuck traffic not detected")
	}
	d := m.FirstDetectionAfter(500)
	if d < 0 {
		t.Fatal("no post-injection detection")
	}
	if (d+1)%epoch != 0 {
		t.Fatalf("detection at cycle %d is not an epoch boundary", d)
	}
}

// TestAllocationComparatorInstant: with the AC on, an arbiter fault is
// flagged in the same cycle, independent of epochs.
func TestAllocationComparatorInstant(t *testing.T) {
	s := fault.Site{Router: 5, Kind: fault.SA1Gnt, Port: int(topology.Local), VC: -1, Width: 4}
	f := fault.Fault{Site: s, Bit: 3, Cycle: 500, Type: fault.Transient}
	n, m := netWithForever(t, 0.12, Options{Epoch: 10000, HopLatency: 1}, fault.NewPlane(f))
	n.Run(600)
	d := m.FirstDetectionAfter(500)
	if d != 500 {
		t.Fatalf("AC detection at %d, want 500", d)
	}
}

// TestEndToEndChecks: misdelivered, corrupted and out-of-order flits
// are flagged at ejection.
func TestEndToEndChecks(t *testing.T) {
	rc := router.Default(topology.NewMesh(4, 4))
	m := NewMonitor(&rc, Options{Epoch: 1000})
	p := &flit.Packet{ID: 1, Src: 0, Dest: 5, Length: 5, Payload: 7}
	fl := p.Flits(1, 1)

	// Wrong node.
	m.FlitEjected(10, 3, fl[0])
	if !m.Detected() {
		t.Fatal("misdelivery not flagged")
	}

	m2 := NewMonitor(&rc, Options{Epoch: 1000})
	bad := fl[1].Clone()
	bad.Payload ^= 2
	m2.FlitEjected(10, 5, fl[0])
	m2.FlitEjected(11, 5, bad)
	if !m2.Detected() {
		t.Fatal("EDC failure not flagged")
	}

	m3 := NewMonitor(&rc, Options{Epoch: 1000})
	m3.FlitEjected(10, 5, fl[0])
	m3.FlitEjected(11, 5, fl[2]) // skipped seq 1
	if !m3.Detected() {
		t.Fatal("order violation not flagged")
	}

	m4 := NewMonitor(&rc, Options{Epoch: 1000})
	m4.FlitEjected(10, 5, fl[1]) // body without header
	if !m4.Detected() {
		t.Fatal("headerless packet not flagged")
	}

	// Healthy sequence: silent.
	m5 := NewMonitor(&rc, Options{Epoch: 1000})
	for i, f := range fl {
		m5.FlitEjected(int64(10+i), 5, f)
	}
	if m5.Detected() {
		t.Fatal("healthy delivery flagged")
	}
}

// TestCloneMonitorIndependence: campaign forks must not share counter
// state.
func TestCloneMonitorIndependence(t *testing.T) {
	rc := router.Default(topology.NewMesh(4, 4))
	m := NewMonitor(&rc, Options{Epoch: 100})
	p := &flit.Packet{ID: 1, Src: 0, Dest: 5, Length: 5}
	m.PacketInjected(0, 0, p)
	m.EndCycle(10) // notification delivered: counter[5] = 5

	c := m.CloneMonitor().(*Monitor)
	c.ClearDetections()
	// Starve the clone: the counter was zero at the first epoch's start
	// (satisfying that epoch), so the stuck counter flags at the end of
	// the second epoch.
	c.EndCycle(99)
	c.EndCycle(199)
	if !c.Detected() {
		t.Fatal("clone lost the warm counter state")
	}
	if m.Detected() {
		t.Fatal("original shares detection state with clone")
	}
}

// TestClearDetections: only detection bookkeeping resets.
func TestClearDetections(t *testing.T) {
	rc := router.Default(topology.NewMesh(4, 4))
	m := NewMonitor(&rc, Options{Epoch: 100})
	p := &flit.Packet{ID: 1, Src: 0, Dest: 2, Length: 5}
	m.PacketInjected(0, 0, p)
	m.EndCycle(10)
	m.EndCycle(99)
	m.EndCycle(199) // second epoch boundary: stuck counter flags
	if !m.Detected() {
		t.Fatal("setup: no detection")
	}
	m.ClearDetections()
	if m.Detected() || m.FirstDetection() != -1 || len(m.Detections()) != 0 {
		t.Fatal("ClearDetections incomplete")
	}
}

// TestDefaultsApplied: zero options resolve to the paper's tuning.
func TestDefaultsApplied(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Epoch != 1500 || o.HopLatency != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	d := DefaultOptions()
	if d.Epoch != 1500 {
		t.Fatalf("DefaultOptions = %+v", d)
	}
}
