// Package forever implements the ForEVeR fault-detection baseline
// (Parikh & Bertacco, MICRO 2011) the paper compares NoCAlert against
// (§5). ForEVeR detects faults with three cooperating techniques:
//
//  1. A lightweight checker network, assumed 100% reliable, that
//     notifies each destination ahead of time of incoming flits. The
//     destination increments a counter per notified flit and decrements
//     it per received flit.
//  2. Epoch timers: time is cut into fixed epochs (1,500 cycles in the
//     paper's tuning); at each epoch boundary, every destination whose
//     counter never touched zero during the epoch raises a flag.
//  3. The Allocation Comparator (Shamshiri et al., ITC 2011): a small
//     real-time monitor of the router allocators that flags a subset of
//     invalid arbiter operations immediately.
//
// The epoch mechanism quantizes detection latency to thousands of
// cycles — the property Figure 7 contrasts with NoCAlert's same-cycle
// assertions — and its tuning trades false positives against latency.
package forever

import (
	"nocalert/internal/flit"
	"nocalert/internal/router"
	"nocalert/internal/sim"
)

// Options configures the ForEVeR monitor.
type Options struct {
	// Epoch is the epoch length in cycles. The paper sets 1,500 for its
	// 8×8 mesh — "the shortest period that did not yield excessive
	// false positives".
	Epoch int64
	// HopLatency is the per-hop latency of the checker network in
	// cycles. The checker network is much faster than the data network
	// (single-flit messages, no VC allocation).
	HopLatency int64
	// DisableAC turns off the Allocation Comparator, leaving only the
	// end-to-end epoch mechanism.
	DisableAC bool
}

// DefaultOptions returns the paper's tuning.
func DefaultOptions() Options { return Options{Epoch: 1500, HopLatency: 1} }

func (o Options) withDefaults() Options {
	if o.Epoch <= 0 {
		o.Epoch = 1500
	}
	if o.HopLatency <= 0 {
		o.HopLatency = 1
	}
	return o
}

// notif is an in-flight checker-network notification.
type notif struct {
	dest   int
	amount int
	at     int64
}

// Monitor is the ForEVeR detection fabric. It attaches to a network as
// a sim.Monitor and implements sim.CloneableMonitor so campaign forks
// preserve its in-flight notifications and counters.
type Monitor struct {
	sim.BaseMonitor
	opts Options
	cfg  *router.Config

	counters []int64
	zeroSeen []bool
	pending  []notif // unordered; matured entries are consumed each cycle
	// lastSeq tracks in-progress packet reassembly per destination for
	// the end-to-end order check (packet id → last seen sequence).
	lastSeq map[uint64]int

	detections []int64 // epoch-boundary or AC detection cycles (capped)
	first      int64
}

// NewMonitor returns a ForEVeR monitor for networks built on cfg.
func NewMonitor(cfg *router.Config, opts Options) *Monitor {
	nodes := cfg.Mesh.Nodes()
	m := &Monitor{
		opts:     opts.withDefaults(),
		cfg:      cfg,
		counters: make([]int64, nodes),
		zeroSeen: make([]bool, nodes),
		first:    -1,
	}
	for i := range m.zeroSeen {
		m.zeroSeen[i] = true // counters start at zero
	}
	return m
}

// PacketInjected implements sim.Monitor: the source's checker-network
// interface sends a notification carrying the packet's flit count to
// the destination, arriving after the checker network's hop latency.
func (m *Monitor) PacketInjected(cycle int64, node int, p *flit.Packet) {
	hops := int64(m.cfg.Mesh.HopDistance(node, p.Dest)) + 1
	m.pending = append(m.pending, notif{
		dest:   p.Dest,
		amount: p.Length,
		at:     cycle + hops*m.opts.HopLatency,
	})
}

// FlitEjected implements sim.Monitor: the destination decrements its
// expectation counter — misdelivered flits decrement the wrong node's
// counter, driving it negative, which the epoch check catches — and
// runs ForEVeR's end-to-end checker: a reassembly check at the
// destination that flags wrong-destination flits, EDC failures and
// intra-packet order violations immediately.
func (m *Monitor) FlitEjected(cycle int64, node int, f *flit.Flit) {
	m.counters[node]--
	if f.Dest != node || !f.EDCOK() {
		m.flag(cycle)
		return
	}
	// Reassembly order check: flits of a packet must arrive in
	// sequence at their destination.
	if m.lastSeq == nil {
		m.lastSeq = make(map[uint64]int)
	}
	if prev, ok := m.lastSeq[f.PacketID]; ok {
		if f.Seq != prev+1 {
			m.flag(cycle)
		}
	} else if f.Seq != 0 {
		// A packet must begin with its header flit.
		m.flag(cycle)
	}
	m.lastSeq[f.PacketID] = f.Seq
	if f.Kind.IsTail() {
		delete(m.lastSeq, f.PacketID)
	}
}

// RouterCycle implements sim.Monitor: the Allocation Comparator watches
// the allocators' request/grant interfaces for a grant without a
// request or a multi-hot grant — the invalid operations it was designed
// to flag.
func (m *Monitor) RouterCycle(r *router.Router, s *router.Signals) {
	if m.opts.DisableAC {
		return
	}
	banks := [...]*[router.P]router.ReqGnt{&s.VA1, &s.SA1, &s.VA2, &s.SA2}
	for _, b := range banks {
		for p := 0; p < router.P; p++ {
			rg := b[p]
			if !(rg.Gnt &^ rg.Req).IsZero() || !rg.Gnt.AtMostOneHot() {
				m.flag(s.Cycle)
				return
			}
		}
	}
}

// EndCycle implements sim.Monitor: deliver matured notifications,
// track zero crossings, and run the epoch-boundary check.
func (m *Monitor) EndCycle(cycle int64) {
	if len(m.pending) > 0 {
		kept := m.pending[:0]
		for _, n := range m.pending {
			if n.at > cycle {
				kept = append(kept, n)
				continue
			}
			m.counters[n.dest] += int64(n.amount)
		}
		m.pending = kept
	}
	for i, c := range m.counters {
		if c == 0 {
			m.zeroSeen[i] = true
		}
	}
	if (cycle+1)%m.opts.Epoch == 0 {
		for i := range m.counters {
			if !m.zeroSeen[i] {
				m.flag(cycle)
			}
			m.zeroSeen[i] = m.counters[i] == 0
		}
	}
}

// DetectionCap bounds the recorded detection list. FirstDetection is
// exact regardless; only consumers walking Detections for later entries
// (e.g. the campaign's reconvergence tail lookup) must check the list
// stayed under the cap before trusting its completeness.
const DetectionCap = 64

func (m *Monitor) flag(cycle int64) {
	if m.first < 0 {
		m.first = cycle
	}
	if len(m.detections) < DetectionCap {
		m.detections = append(m.detections, cycle)
	}
}

// PendingEmpty reports whether no checker-network notification is in
// flight. With injection stopped this is monotone once true; campaign
// fast-forward requires it before trusting a frozen network state,
// since a matured notification would bump a counter the epoch check
// reads.
func (m *Monitor) PendingEmpty() bool { return len(m.pending) == 0 }

// ProjectFrozenDetection computes when the epoch mechanism would first
// flag, given that from cycle `from` onward EndCycle runs with no
// pending notifications and counters that never change (a frozen
// network). It returns the first epoch-boundary detection cycle in
// [from, until), or -1 if none would fire — without mutating the
// monitor. Derivation against EndCycle: at the first boundary b1 the
// zero-crossing sweep has already ORed counters[i]==0 into zeroSeen, so
// a node flags iff its counter is nonzero and it never saw zero; the
// boundary then resets zeroSeen to counters[i]==0, so at b1+epoch (and
// every boundary after) a node flags iff its counter is nonzero. The
// caller passes `until` = the run's ForEVeR horizon (exclusive: the
// last simulated EndCycle is for cycle until-1).
func (m *Monitor) ProjectFrozenDetection(from, until int64) int64 {
	e := m.opts.Epoch
	// First boundary cycle b >= from, i.e. smallest b with (b+1)%e == 0.
	b1 := (from+e)/e*e - 1
	if b1 >= until {
		return -1
	}
	for i, c := range m.counters {
		if c != 0 && !m.zeroSeen[i] {
			return b1
		}
	}
	b2 := b1 + e
	if b2 >= until {
		return -1
	}
	for _, c := range m.counters {
		if c != 0 {
			return b2
		}
	}
	return -1
}

// FirstDetection returns the first detection cycle, or -1.
func (m *Monitor) FirstDetection() int64 { return m.first }

// FirstDetectionAfter returns the first detection at or after cycle,
// or -1. (Epoch checks may legitimately fire before a campaign's
// injection point when the epoch is mistuned; campaigns key off the
// injection cycle.)
func (m *Monitor) FirstDetectionAfter(cycle int64) int64 {
	for _, d := range m.detections {
		if d >= cycle {
			return d
		}
	}
	return -1
}

// Detected reports whether any detection has fired.
func (m *Monitor) Detected() bool { return m.first >= 0 }

// Detections returns the recorded detection cycles (capped at
// DetectionCap).
func (m *Monitor) Detections() []int64 { return m.detections }

// ClearDetections forgets past detections (campaigns call this right
// after forking so only post-injection flags count) while keeping the
// counter state.
func (m *Monitor) ClearDetections() {
	m.detections = m.detections[:0]
	m.first = -1
}

// CloneMonitor implements sim.CloneableMonitor.
func (m *Monitor) CloneMonitor() sim.Monitor {
	c := &Monitor{
		opts:  m.opts,
		cfg:   m.cfg,
		first: m.first,
	}
	c.counters = append([]int64(nil), m.counters...)
	c.zeroSeen = append([]bool(nil), m.zeroSeen...)
	c.pending = append([]notif(nil), m.pending...)
	c.detections = append([]int64(nil), m.detections...)
	if m.lastSeq != nil {
		c.lastSeq = make(map[uint64]int, len(m.lastSeq))
		for k, v := range m.lastSeq {
			c.lastSeq[k] = v
		}
	}
	return c
}
