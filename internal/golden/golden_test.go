package golden

import (
	"testing"

	"nocalert/internal/flit"
	"nocalert/internal/sim"
)

// mkEjections builds a well-formed ejection log: packets of the given
// length delivered in order to their destinations.
func mkEjections(pkts int, length int) []sim.Ejection {
	var out []sim.Ejection
	cycle := int64(10)
	for p := 1; p <= pkts; p++ {
		pk := &flit.Packet{ID: uint64(p), Src: 0, Dest: p % 4, Class: 0, Length: length, Payload: uint64(p) * 977}
		for _, f := range pk.Flits(p%4, 0) {
			out = append(out, sim.Ejection{Node: pk.Dest, Cycle: cycle, Flit: f})
			cycle++
		}
	}
	return out
}

func TestIdenticalLogsAreBenign(t *testing.T) {
	g := FromEjections(mkEjections(5, 5), 0)
	f := FromEjections(mkEjections(5, 5), 0)
	v := Compare(g, f, true)
	if !v.OK() {
		t.Fatalf("identical logs judged %s", v.String())
	}
	if v.String() != "benign" {
		t.Fatalf("String() = %q", v.String())
	}
}

func TestSinceFiltersWarmup(t *testing.T) {
	ej := mkEjections(5, 5)
	full := FromEjections(ej, 0)
	late := FromEjections(ej, ej[len(ej)/2].Cycle)
	if late.Total() >= full.Total() || late.Total() == 0 {
		t.Fatalf("since filter broken: %d vs %d", late.Total(), full.Total())
	}
}

func TestDropDetected(t *testing.T) {
	g := FromEjections(mkEjections(5, 5), 0)
	ej := mkEjections(5, 5)
	f := FromEjections(ej[:len(ej)-2], 0) // last two flits never delivered
	v := Compare(g, f, true)
	if v.Dropped != 2 || v.OK() {
		t.Fatalf("verdict %s, want 2 drops", v.String())
	}
}

func TestDuplicateDetected(t *testing.T) {
	g := FromEjections(mkEjections(3, 5), 0)
	ej := mkEjections(3, 5)
	ej = append(ej, ej[4]) // one flit delivered twice
	v := Compare(g, FromEjections(ej, 0), true)
	if v.Generated != 1 || v.OK() {
		t.Fatalf("verdict %s, want 1 generated", v.String())
	}
}

func TestUnknownFlitDetected(t *testing.T) {
	g := FromEjections(mkEjections(3, 5), 0)
	ej := mkEjections(3, 5)
	stray := &flit.Packet{ID: 99, Src: 0, Dest: 1, Length: 1, Payload: 5}
	ej = append(ej, sim.Ejection{Node: 1, Cycle: 999, Flit: stray.Flits(1, 0)[0]})
	v := Compare(g, FromEjections(ej, 0), true)
	if v.Generated != 1 {
		t.Fatalf("verdict %s, want 1 generated", v.String())
	}
}

func TestMisdeliveryDetected(t *testing.T) {
	g := FromEjections(mkEjections(3, 5), 0)
	ej := mkEjections(3, 5)
	ej[7].Node = (ej[7].Flit.Dest + 1) % 4 // delivered to the wrong node
	v := Compare(g, FromEjections(ej, 0), true)
	if v.Misdelivered == 0 {
		t.Fatalf("verdict %s, want misdelivery", v.String())
	}
}

func TestCorruptionDetected(t *testing.T) {
	g := FromEjections(mkEjections(3, 5), 0)
	ej := mkEjections(3, 5)
	ej[3].Flit = ej[3].Flit.Clone()
	ej[3].Flit.Payload ^= 1 // EDC now fails
	v := Compare(g, FromEjections(ej, 0), true)
	if v.Corrupted == 0 {
		t.Fatalf("verdict %s, want corruption", v.String())
	}
}

func TestKindCorruptionDetected(t *testing.T) {
	g := FromEjections(mkEjections(3, 5), 0)
	ej := mkEjections(3, 5)
	ej[3].Flit = ej[3].Flit.Clone()
	ej[3].Flit.Kind = flit.Head // was a body flit
	v := Compare(g, FromEjections(ej, 0), true)
	if v.Corrupted == 0 {
		t.Fatalf("verdict %s, want kind corruption", v.String())
	}
}

func TestOrderViolationDetected(t *testing.T) {
	g := FromEjections(mkEjections(3, 5), 0)
	ej := mkEjections(3, 5)
	// Swap two flits of the same packet at the destination.
	ej[1], ej[2] = ej[2], ej[1]
	v := Compare(g, FromEjections(ej, 0), true)
	if v.Misordered == 0 {
		t.Fatalf("verdict %s, want order violation", v.String())
	}
}

func TestUnboundedDetected(t *testing.T) {
	g := FromEjections(mkEjections(3, 5), 0)
	f := FromEjections(mkEjections(3, 5), 0)
	v := Compare(g, f, false)
	if !v.Unbounded || v.OK() {
		t.Fatalf("verdict %s, want unbounded", v.String())
	}
}

func TestReasonsCapped(t *testing.T) {
	g := FromEjections(mkEjections(10, 5), 0)
	f := FromEjections(mkEjections(10, 5)[:5], 0)
	v := Compare(g, f, true)
	if len(v.Reasons) > 8 {
		t.Fatalf("%d reasons retained", len(v.Reasons))
	}
	if v.Dropped != 45 {
		t.Fatalf("dropped = %d, want 45", v.Dropped)
	}
}

func TestAccessors(t *testing.T) {
	l := FromEjections(mkEjections(4, 5), 0)
	if l.Total() != 20 {
		t.Fatalf("Total = %d", l.Total())
	}
	if l.PacketsDelivered() != 4 {
		t.Fatalf("PacketsDelivered = %d", l.PacketsDelivered())
	}
	keys := l.Keys()
	if len(keys) != 20 {
		t.Fatalf("Keys = %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		a, b := keys[i-1], keys[i]
		if a.Pkt > b.Pkt || (a.Pkt == b.Pkt && a.Seq >= b.Seq) {
			t.Fatal("Keys not ordered")
		}
	}
	if len(l.Entries(keys[0])) != 1 {
		t.Fatal("Entries broken")
	}
}
