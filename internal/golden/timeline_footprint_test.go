package golden

import "testing"

// TestTimelineFootprintPinned pins Timeline.ApproxFootprintBytes to
// its documented arithmetic: 48 bytes per point at capacity plus the
// fixed header. Report.TimelineBytes folds this in, so the estimate
// must track TimelinePoint's actual field set.
func TestTimelineFootprintPinned(t *testing.T) {
	var nilTL *Timeline
	if got := nilTL.ApproxFootprintBytes(); got != 0 {
		t.Fatalf("nil Timeline footprint = %d, want 0", got)
	}

	tl := NewTimeline(500)
	if got, want := tl.ApproxFootprintBytes(), int64(cap(tl.points))*48+48; got != want {
		t.Fatalf("Timeline.ApproxFootprintBytes() = %d, want %d", got, want)
	}
	if got := tl.ApproxFootprintBytes(); got < 500*48 {
		t.Fatalf("Timeline.ApproxFootprintBytes() = %d, want >= %d for 500 requested points", got, 500*48)
	}
}
