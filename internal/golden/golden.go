// Package golden implements the paper's Golden Reference methodology
// (§5.2–5.3): the ejection log of a fault-free run is compared against
// the log of a fault-injected run to decide whether the fault caused an
// actual network-correctness violation — the ground truth behind the
// true/false positive/negative classification.
//
// The four correctness conditions (no flit drop, bounded delivery, no
// data corruption / packet mixing, no new flit generation) are applied
// at flit granularity, plus the intra-packet ordering rule the paper
// adds when moving from packets to flits.
package golden

import (
	"fmt"
	"sort"

	"nocalert/internal/flit"
	"nocalert/internal/sim"
)

// Key identifies one flit: the packet it belongs to and its index.
type Key struct {
	Pkt uint64
	Seq int
}

// Entry is one observed ejection of a flit.
type Entry struct {
	Node  int
	Cycle int64
	Kind  flit.Kind
	Dest  int
	EDCOK bool
}

// Log is an indexed ejection log.
type Log struct {
	entries map[Key][]Entry
	// perNode preserves per-node ejection order for the intra-packet
	// ordering rule.
	perNode map[int][]Key
	total   int
}

// FromEjections indexes a simulation's ejection log. Only ejections at
// or after the `since` cycle are considered (campaigns pass the warmup
// boundary so that forked runs compare only their divergent suffix;
// pass 0 to index everything).
func FromEjections(ejs []sim.Ejection, since int64) *Log {
	return FromEjectionsInto(nil, ejs, since)
}

// Reset empties the log while keeping its maps and per-node key slices
// for reuse, so campaign workers can index one faulty run after another
// without reallocating.
func (l *Log) Reset() {
	clear(l.entries)
	for n, keys := range l.perNode {
		l.perNode[n] = keys[:0]
	}
	l.total = 0
}

// FromEjectionsInto is FromEjections indexing into an existing log
// (which it Resets first); a nil log allocates a fresh one. Returns the
// log indexed into.
func FromEjectionsInto(l *Log, ejs []sim.Ejection, since int64) *Log {
	if l == nil {
		l = &Log{
			entries: make(map[Key][]Entry, len(ejs)),
			perNode: make(map[int][]Key),
		}
	} else {
		l.Reset()
	}
	for _, e := range ejs {
		if e.Cycle < since {
			continue
		}
		k := Key{Pkt: e.Flit.PacketID, Seq: e.Flit.Seq}
		l.entries[k] = append(l.entries[k], Entry{
			Node:  e.Node,
			Cycle: e.Cycle,
			Kind:  e.Flit.Kind,
			Dest:  e.Flit.Dest,
			EDCOK: e.Flit.EDCOK(),
		})
		l.perNode[e.Node] = append(l.perNode[e.Node], k)
		l.total++
	}
	return l
}

// Total returns the number of indexed ejections.
func (l *Log) Total() int { return l.total }

// Verdict is the network-correctness judgment for one faulty run.
type Verdict struct {
	// Dropped counts golden flits missing from the faulty log.
	Dropped int
	// Generated counts flits in the faulty log beyond the golden
	// multiset (duplicates and spontaneous flits).
	Generated int
	// Misdelivered counts flits ejected at a node other than their
	// destination.
	Misdelivered int
	// Corrupted counts flits whose EDC failed or whose kind no longer
	// matches their position in the packet.
	Corrupted int
	// Misordered counts intra-packet order inversions at a destination.
	Misordered int
	// Unbounded reports that the faulty run failed to drain before its
	// deadline (deadlock, livelock, or stuck flits).
	Unbounded bool
	// Reasons holds up to a few human-readable findings. Their order
	// (and, past the cap, the captured subset) follows map iteration
	// and is not deterministic across runs; every counter above is.
	Reasons []string
}

// OK reports whether the run satisfied all network-correctness rules —
// i.e. the injected fault was benign.
func (v *Verdict) OK() bool {
	return v.Dropped == 0 && v.Generated == 0 && v.Misdelivered == 0 &&
		v.Corrupted == 0 && v.Misordered == 0 && !v.Unbounded
}

func (v *Verdict) addReason(format string, args ...any) {
	if len(v.Reasons) < 8 {
		v.Reasons = append(v.Reasons, fmt.Sprintf(format, args...))
	}
}

// String summarizes the verdict.
func (v *Verdict) String() string {
	if v.OK() {
		return "benign"
	}
	return fmt.Sprintf("violation{drop:%d gen:%d misdeliver:%d corrupt:%d misorder:%d unbounded:%v}",
		v.Dropped, v.Generated, v.Misdelivered, v.Corrupted, v.Misordered, v.Unbounded)
}

// Compare judges a faulty run against the golden reference.
// faultyDrained reports whether the faulty network emptied before its
// drain deadline (bounded delivery).
func Compare(goldenLog, faulty *Log, faultyDrained bool) Verdict {
	var v Verdict
	if !faultyDrained {
		v.Unbounded = true
		v.addReason("network failed to drain (bounded-delivery violation)")
	}

	// Flit conservation: golden multiset vs faulty multiset.
	for k, ge := range goldenLog.entries {
		fe := faulty.entries[k]
		if len(fe) < len(ge) {
			v.Dropped += len(ge) - len(fe)
			v.addReason("flit p%d.%d missing (%d of %d delivered)", k.Pkt, k.Seq, len(fe), len(ge))
		}
	}
	for k, fe := range faulty.entries {
		ge := goldenLog.entries[k]
		if len(fe) > len(ge) {
			v.Generated += len(fe) - len(ge)
			v.addReason("flit p%d.%d appeared %d times (golden: %d)", k.Pkt, k.Seq, len(fe), len(ge))
		}
		for _, e := range fe {
			if e.Node != e.Dest {
				v.Misdelivered++
				v.addReason("flit p%d.%d for node %d ejected at %d", k.Pkt, k.Seq, e.Dest, e.Node)
			}
			if !e.EDCOK {
				v.Corrupted++
				v.addReason("flit p%d.%d failed its EDC", k.Pkt, k.Seq)
			}
			if len(ge) > 0 && e.Kind != ge[0].Kind {
				v.Corrupted++
				v.addReason("flit p%d.%d kind %s, golden %s", k.Pkt, k.Seq, e.Kind, ge[0].Kind)
			}
		}
	}

	// Intra-packet ordering at each destination: for every packet, the
	// sequence numbers ejected at a node must be non-decreasing by
	// position (flits of a packet are delivered in order).
	v.Misordered += countOrderViolations(faulty)
	if v.Misordered > 0 {
		v.addReason("%d intra-packet order inversions", v.Misordered)
	}
	return v
}

func countOrderViolations(l *Log) int {
	bad := 0
	for _, seq := range l.perNode {
		last := make(map[uint64]int)
		for _, k := range seq {
			if prev, ok := last[k.Pkt]; ok && k.Seq < prev {
				bad++
			}
			last[k.Pkt] = k.Seq
		}
	}
	return bad
}

// PacketsDelivered returns the number of packets with at least one
// flit in the log, a convenience for reports.
func (l *Log) PacketsDelivered() int {
	seen := make(map[uint64]bool)
	for k := range l.entries {
		seen[k.Pkt] = true
	}
	return len(seen)
}

// Keys returns the flit keys in a stable order (tests).
func (l *Log) Keys() []Key {
	out := make([]Key, 0, len(l.entries))
	for k := range l.entries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkt != out[j].Pkt {
			return out[i].Pkt < out[j].Pkt
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Entries returns the ejections recorded for a key.
func (l *Log) Entries(k Key) []Entry { return l.entries[k] }
