package golden

import (
	"nocalert/internal/sim"
	"nocalert/internal/statehash"
)

// TimelinePoint is the golden run's recorded summary of one cycle
// boundary: the full network state fingerprint plus the cheap counters
// a faulty run compares first (the precheck rejects almost every
// non-matching cycle for the cost of three integer compares) and the
// hash of the post-fork ejection history up to the boundary.
type TimelinePoint struct {
	// State is the network's full state fingerprint (sim.Network
	// Fingerprint) at the boundary.
	State uint64
	// EjectHash folds the post-fork ejection history observed by the
	// boundary (EjectionsHash over the post-fork prefix).
	EjectHash uint64
	// Ejections is the number of post-fork ejections by the boundary.
	Ejections int
	// FlitsInjected and FlitsEjected are the network's cumulative flit
	// counters at the boundary.
	FlitsInjected, FlitsEjected int64
	// NextPkt is the id the next generated packet would take.
	NextPkt uint64
}

// Timeline is the golden run's per-cycle state record, stored alongside
// the ejection Log. A faulty run whose fault plane has gone quiescent
// compares its own fingerprint against the recorded point for the same
// cycle; a match (state hash, ejection count and ejection-prefix hash)
// proves — up to hash collision — that the remainder of the faulty run
// is identical to the golden continuation, so the campaign can stop
// simulating it.
type Timeline struct {
	start  int64 // cycle of points[0]
	points []TimelinePoint
	ejHash uint64 // incremental EjectionsHash of the folded prefix
	ejSeen int    // post-fork ejections folded so far
}

// NewTimeline returns a timeline with room for n points.
func NewTimeline(n int) *Timeline {
	return &Timeline{points: make([]TimelinePoint, 0, n), ejHash: statehash.Seed}
}

// Observe records the network's state at its current cycle boundary.
// postFork must be the network's post-fork ejection history (the full
// ejection log sliced at the fork index); Observe folds only the
// entries that appeared since the previous call.
func (t *Timeline) Observe(n *sim.Network, postFork []sim.Ejection) {
	if len(t.points) == 0 {
		t.start = n.Cycle()
	}
	for ; t.ejSeen < len(postFork); t.ejSeen++ {
		t.ejHash = foldEjection(t.ejHash, &postFork[t.ejSeen])
	}
	t.points = append(t.points, TimelinePoint{
		State:         n.Fingerprint(),
		EjectHash:     t.ejHash,
		Ejections:     t.ejSeen,
		FlitsInjected: n.FlitsInjected(),
		FlitsEjected:  n.FlitsEjected(),
		NextPkt:       n.NextPacketID(),
	})
}

// ApproxFootprintBytes estimates the memory the timeline retains: the
// point array at capacity plus the fixed header. Like the other
// Approx* footprints it is a deliberate estimate (capacities, not a
// heap walk) so campaign memory reporting stays O(1).
func (t *Timeline) ApproxFootprintBytes() int64 {
	if t == nil {
		return 0
	}
	const pointBytes = 48 // 6 × 8-byte fields per TimelinePoint
	const headerBytes = 48
	return int64(cap(t.points))*pointBytes + headerBytes
}

// At returns the point recorded for the given cycle boundary.
func (t *Timeline) At(cycle int64) (TimelinePoint, bool) {
	if t == nil {
		return TimelinePoint{}, false
	}
	i := cycle - t.start
	if i < 0 || i >= int64(len(t.points)) {
		return TimelinePoint{}, false
	}
	return t.points[i], true
}

// Len returns the number of recorded points.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	return len(t.points)
}

func foldEjection(h uint64, e *sim.Ejection) uint64 {
	h = statehash.FoldInt(h, e.Node)
	h = statehash.Fold(h, uint64(e.Cycle))
	return e.Flit.FoldState(h)
}

// EjectionsHash hashes an ejection history (order-sensitive, contents
// included). A faulty run computes this over its own post-fork log at a
// candidate reconvergence cycle and requires equality with the recorded
// EjectHash: matching state alone proves the futures coincide, matching
// ejection prefixes proves the pasts already delivered the same flits —
// together they make the faulty log equal to golden's, flit for flit.
func EjectionsHash(ejs []sim.Ejection) uint64 {
	h := statehash.Seed
	for i := range ejs {
		h = foldEjection(h, &ejs[i])
	}
	return h
}
