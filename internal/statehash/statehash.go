// Package statehash provides the fold primitive behind the simulator's
// incremental state fingerprints. Every piece of mutable network state
// (router pipeline registers, buffered flits, NI queues, RNG streams)
// folds itself into a running 64-bit accumulator; two networks whose
// accumulators match after folding identical state enumerations are —
// up to a 2^-64 collision — in the same architectural state, which is
// the reconvergence test fault campaigns use to end masked-fault runs
// early.
//
// The fold is a multiply–xorshift step (one multiply per word, Murmur3
// finalizer constant), chosen because fingerprints are recomputed every
// cycle over the whole network: it must cost as little as possible per
// word while still avalanching every input bit across the accumulator.
// It is not cryptographic and does not need to be — both sides of the
// comparison are produced by this simulator, never by an adversary.
package statehash

// Seed is the canonical initial accumulator (the golden-ratio constant,
// so an empty enumeration does not hash to zero).
const Seed uint64 = 0x9e3779b97f4a7c15

// Fold mixes one 64-bit word of state into the accumulator.
func Fold(h, v uint64) uint64 {
	h ^= v
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return h
}

// FoldInt folds a signed integer (sign-extended, so -1 and ^0 collide
// deliberately — both mean "no value" in the simulator's encodings).
func FoldInt(h uint64, v int) uint64 { return Fold(h, uint64(int64(v))) }

// FoldBool folds a boolean as 0/1.
func FoldBool(h uint64, b bool) uint64 {
	if b {
		return Fold(h, 1)
	}
	return Fold(h, 0)
}
