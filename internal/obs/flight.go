package obs

import (
	"encoding/json"
	"io"
	"sync"

	"nocalert/internal/trace"
)

// Event is one flight-recorder entry: a cycle-stamped observation from
// the campaign's hot path (a fork verification, a full fingerprint
// probe, a detection or assertion summary, a fast-forward freeze).
type Event struct {
	// Seq is the recorder-assigned sequence number, monotonically
	// increasing across the whole campaign, so a dump shows how much
	// history the ring evicted.
	Seq uint64 `json:"seq"`
	// Run is the run's index in the fault universe; -1 for
	// campaign-level events (the golden template run, merge checks).
	Run int `json:"run"`
	// Cycle is the simulation cycle the event is about.
	Cycle int64 `json:"cycle"`
	// Kind classifies the event: "fork_verify", "fp_probe",
	// "detection", "assertion", "ff_freeze", "shard_manifest", ...
	Kind   string         `json:"kind"`
	Detail string         `json:"detail,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// Dump is the JSON object a flight-recorder dump emits: the anomaly
// that triggered it plus the ring's surviving history, oldest first.
type Dump struct {
	Reason string  `json:"reason"`
	Events []Event `json:"events"`
}

// DefaultFlightCapacity is the ring size NewFlightRecorder uses for
// capacity <= 0.
const DefaultFlightCapacity = 256

// FlightRecorder is a bounded ring of recent Events that dumps its
// history when an anomaly fires — the campaign's black box. Recording
// is mutex-protected but events arrive at run-boundary rate (a handful
// per run), far off the per-cycle hot path. All methods are nil-safe.
type FlightRecorder struct {
	mu    sync.Mutex
	sink  io.Writer
	buf   []Event
	start int // index of the oldest event
	n     int // live events in buf
	seq   uint64
	dumps int
	err   error
}

// NewFlightRecorder returns a recorder holding the last capacity events
// (DefaultFlightCapacity when <= 0). sink receives anomaly dumps as
// NDJSON — one Dump object per line — and may be nil (dumps are still
// counted, for tests and exit-code decisions).
func NewFlightRecorder(capacity int, sink io.Writer) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{sink: sink, buf: make([]Event, capacity)}
}

// Record appends one event, evicting the oldest when the ring is full.
func (fr *FlightRecorder) Record(ev Event) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.recordLocked(ev)
}

func (fr *FlightRecorder) recordLocked(ev Event) {
	fr.seq++
	ev.Seq = fr.seq
	i := (fr.start + fr.n) % len(fr.buf)
	fr.buf[i] = ev
	if fr.n < len(fr.buf) {
		fr.n++
	} else {
		fr.start = (fr.start + 1) % len(fr.buf)
	}
}

// Events returns the ring's contents, oldest first.
func (fr *FlightRecorder) Events() []Event {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.eventsLocked()
}

func (fr *FlightRecorder) eventsLocked() []Event {
	out := make([]Event, 0, fr.n)
	for i := 0; i < fr.n; i++ {
		out = append(out, fr.buf[(fr.start+i)%len(fr.buf)])
	}
	return out
}

// Anomaly records ev and immediately dumps the ring under reason: the
// auto-dump path for fork-verify mismatches, merge fingerprint
// divergence and missed-detection verdicts.
func (fr *FlightRecorder) Anomaly(reason string, ev Event) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.recordLocked(ev)
	fr.dumpLocked(reason)
}

// Dump writes the ring's history under reason without an anomaly event
// — the campaign-end dump that makes the black box inspectable even
// for clean runs.
func (fr *FlightRecorder) Dump(reason string) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.dumpLocked(reason)
}

func (fr *FlightRecorder) dumpLocked(reason string) {
	fr.dumps++
	if fr.sink == nil {
		return
	}
	d := Dump{Reason: reason, Events: fr.eventsLocked()}
	if err := json.NewEncoder(fr.sink).Encode(&d); err != nil && fr.err == nil {
		fr.err = err
	}
}

// Dumps returns how many dumps (anomalies plus explicit Dump calls)
// have fired.
func (fr *FlightRecorder) Dumps() int {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.dumps
}

// Err returns the first sink write error, if any.
func (fr *FlightRecorder) Err() error {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.err
}

// ReadDumps parses a dump sink's NDJSON stream (torn-tail tolerant,
// like every other NDJSON reader in the repository).
func ReadDumps(r io.Reader) ([]Dump, error) {
	return trace.DecodeTolerant[Dump](r)
}
