// Package obs is the campaign stack's observability layer: a
// hierarchical span tracer (campaign → shard → run → phase, with the
// daemon's job span on top) and a bounded flight recorder that
// auto-dumps on anomalies.
//
// Spans carry the cycle-accurate accounting the engine already tracks —
// injection cycle, fork source snapshot, cycles simulated versus
// synthesized, verdicts and checker IDs — and a shared trace ID that
// threads from a nocalertd job down to every run it executes, so one
// grep over the span stream reconstructs why any single run took the
// exit path it did. The NDJSON stream is append-only and
// truncation-tolerant (ReadSpans reuses the checkpoint reader's
// torn-tail handling); WriteOTLP re-exports retained spans as an
// OTLP/JSON dump any OpenTelemetry-compatible backend ingests.
//
// Design constraints mirror internal/metrics: a nil *Tracer (and a nil
// *Span) is "tracing off" and every method is nil-safe, so call sites
// thread spans unconditionally and the disabled path costs one branch.
// Run spans are sampling-capable (Options.SampleEvery) for campaigns
// large enough that per-run spans would dominate the run itself.
package obs

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nocalert/internal/metrics"
	"nocalert/internal/trace"
)

// SpanRecord is one NDJSON line of a span stream: a completed span with
// its identity, hierarchy and attributes. Records are written at span
// end, so the stream is ordered by completion, not by start.
type SpanRecord struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// Kind is the hierarchy level: "job", "campaign", "shard", "run" or
	// "phase".
	Kind      string         `json:"kind"`
	Name      string         `json:"name"`
	StartNano int64          `json:"start_unix_nano"`
	EndNano   int64          `json:"end_unix_nano"`
	Attrs     map[string]any `json:"attrs,omitempty"`
}

// Duration returns the span's wall-clock duration.
func (r SpanRecord) Duration() time.Duration {
	return time.Duration(r.EndNano - r.StartNano)
}

// Int returns attribute key as an int64 (JSON numbers decode as
// float64; spans written in-process hold native ints). ok is false when
// the attribute is absent or not numeric.
func (r SpanRecord) Int(key string) (int64, bool) {
	switch v := r.Attrs[key].(type) {
	case int64:
		return v, true
	case int:
		return int64(v), true
	case float64:
		return int64(v), true
	}
	return 0, false
}

// Options configures a Tracer.
type Options struct {
	// Writer receives the NDJSON span stream, one record per completed
	// span, flushed per record so a killed process loses at most one
	// torn line. Nil is valid when Retain is set (OTLP-dump-only use).
	Writer io.Writer
	// SampleEvery records the spans of one in every n runs (run index
	// i is sampled when i%n == 0, so sampling is deterministic and
	// resume-stable). Values < 1 mean 1: every run. Campaign, shard,
	// job and golden-phase spans are never sampled out.
	SampleEvery int
	// Retain keeps every completed span in memory for WriteOTLP.
	Retain bool
	// Service names the emitting process in the OTLP resource
	// (service.name); defaults to "nocalert".
	Service string
	// Metrics, when non-nil, receives one phase-duration histogram per
	// phase name (campaign_phase_<name>_seconds), fed at phase-span end.
	Metrics *metrics.Registry
}

// phaseBounds is the phase-duration histogram layout: 1 µs … ~17 min.
var phaseBounds = metrics.ExponentialBounds(1e-6, 4, 16)

// Tracer emits spans for one process-wide trace. All methods are safe
// for concurrent use and nil-safe: a nil *Tracer records nothing.
type Tracer struct {
	opts    Options
	traceID string
	nextID  atomic.Uint64

	mu       sync.Mutex
	bw       *bufio.Writer
	enc      *json.Encoder
	retained []SpanRecord
	phaseHis map[string]*metrics.Histogram
	spans    int
	err      error
}

// New returns a Tracer with a fresh random trace ID.
func New(o Options) *Tracer {
	if o.SampleEvery < 1 {
		o.SampleEvery = 1
	}
	if o.Service == "" {
		o.Service = "nocalert"
	}
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("obs: crypto/rand unavailable: " + err.Error())
	}
	t := &Tracer{opts: o, traceID: hex.EncodeToString(b[:])}
	if o.Writer != nil {
		t.bw = bufio.NewWriter(o.Writer)
		t.enc = json.NewEncoder(t.bw)
	}
	if o.Metrics != nil {
		t.phaseHis = make(map[string]*metrics.Histogram)
	}
	return t
}

// TraceID returns the trace correlation ID ("" on a nil tracer).
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// Sampled reports whether run index i's spans are recorded under the
// tracer's sampling rate. Negative indices (internal template runs) are
// never sampled.
func (t *Tracer) Sampled(i int) bool {
	if t == nil || i < 0 {
		return false
	}
	return i%t.opts.SampleEvery == 0
}

// Start opens a span. parent may be nil (a root span) and t may be nil
// (returns nil, and every Span method on nil is a no-op).
func (t *Tracer) Start(parent *Span, kind, name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		t: t,
		rec: SpanRecord{
			TraceID:   t.traceID,
			SpanID:    fmt.Sprintf("%016x", t.nextID.Add(1)),
			Kind:      kind,
			Name:      name,
			StartNano: time.Now().UnixNano(),
		},
	}
	if parent != nil {
		s.rec.ParentID = parent.rec.SpanID
	}
	return s
}

// Spans returns how many spans have completed.
func (t *Tracer) Spans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// Close flushes the NDJSON stream and returns the first write error
// encountered over the tracer's lifetime.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.bw != nil {
		if err := t.bw.Flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// end records a completed span: stream it, retain it, and feed the
// phase-duration histogram when it is a phase span.
func (t *Tracer) end(rec *SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans++
	if t.enc != nil {
		if err := t.enc.Encode(rec); err != nil {
			if t.err == nil {
				t.err = err
			}
		} else if err := t.bw.Flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	if t.opts.Retain {
		t.retained = append(t.retained, *rec)
	}
	if t.phaseHis != nil && rec.Kind == "phase" {
		h, ok := t.phaseHis[rec.Name]
		if !ok {
			h = t.opts.Metrics.Histogram(PhaseMetricName(rec.Name), phaseBounds)
			t.phaseHis[rec.Name] = h
		}
		h.Observe(float64(rec.EndNano-rec.StartNano) / 1e9)
	}
}

// PhaseMetricName returns the phase-duration histogram name for a phase
// span name, e.g. "warm-start" → "campaign_phase_warm_start_seconds".
func PhaseMetricName(phase string) string {
	sanitized := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, phase)
	return "campaign_phase_" + sanitized + "_seconds"
}

// Span is one in-flight span. A span is owned by one goroutine until
// End; a nil *Span ignores every call.
type Span struct {
	t   *Tracer
	rec SpanRecord
}

// ID returns the span's ID ("" on nil).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.rec.SpanID
}

// SetAttr records one attribute (int-like values are normalized to
// int64 so in-process readers and JSON round-trips agree on Int()).
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	switch n := v.(type) {
	case int:
		v = int64(n)
	case int32:
		v = int64(n)
	}
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]any, 8)
	}
	s.rec.Attrs[key] = v
}

// Child opens a sub-span (nil-safe on both the span and its tracer).
func (s *Span) Child(kind, name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.Start(s, kind, name)
}

// End completes the span and emits it. End is idempotent only in the
// trivial sense that callers must call it exactly once; phase helpers
// in the campaign guarantee that.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.EndNano = time.Now().UnixNano()
	s.t.end(&s.rec)
}

// ReadSpans parses an NDJSON span stream, tolerating the torn trailing
// line a killed process leaves behind (same contract as the checkpoint
// and run-trace readers).
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	return trace.DecodeTolerant[SpanRecord](r)
}

// otlp* mirror the OTLP/JSON wire shape (trace service ExportRequest):
// resourceSpans → scopeSpans → spans, 32-hex trace IDs, 16-hex span
// IDs, stringified unix-nano timestamps and typed attribute values.
type otlpExport struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"` // 1 = SPAN_KIND_INTERNAL
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpKeyValue struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	String *string  `json:"stringValue,omitempty"`
	Int    *string  `json:"intValue,omitempty"` // int64 as string, per OTLP/JSON
	Double *float64 `json:"doubleValue,omitempty"`
	Bool   *bool    `json:"boolValue,omitempty"`
}

func otlpVal(v any) otlpValue {
	switch n := v.(type) {
	case string:
		return otlpValue{String: &n}
	case bool:
		return otlpValue{Bool: &n}
	case int64:
		s := fmt.Sprintf("%d", n)
		return otlpValue{Int: &s}
	case float64:
		return otlpValue{Double: &n}
	default:
		s := fmt.Sprintf("%v", v)
		return otlpValue{String: &s}
	}
}

func otlpAttrs(attrs map[string]any) []otlpKeyValue {
	if len(attrs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]otlpKeyValue, 0, len(keys))
	for _, k := range keys {
		out = append(out, otlpKeyValue{Key: k, Value: otlpVal(attrs[k])})
	}
	return out
}

// WriteOTLP dumps every retained span as one OTLP/JSON export object.
// Requires Options.Retain; without it the dump is empty.
func (t *Tracer) WriteOTLP(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	recs := append([]SpanRecord(nil), t.retained...)
	t.mu.Unlock()

	svc := t.opts.Service
	spans := make([]otlpSpan, 0, len(recs))
	for i := range recs {
		r := &recs[i]
		attrs := make(map[string]any, len(r.Attrs)+1)
		for k, v := range r.Attrs {
			attrs[k] = v
		}
		attrs["nocalert.kind"] = r.Kind
		spans = append(spans, otlpSpan{
			TraceID:           r.TraceID,
			SpanID:            r.SpanID,
			ParentSpanID:      r.ParentID,
			Name:              r.Name,
			Kind:              1,
			StartTimeUnixNano: fmt.Sprintf("%d", r.StartNano),
			EndTimeUnixNano:   fmt.Sprintf("%d", r.EndNano),
			Attributes:        otlpAttrs(attrs),
		})
	}
	exp := otlpExport{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKeyValue{
			{Key: "service.name", Value: otlpVal(svc)},
		}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "nocalert/internal/obs"},
			Spans: spans,
		}},
	}}}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&exp)
}
