package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"nocalert/internal/metrics"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	if tr.TraceID() != "" {
		t.Error("nil tracer has a trace ID")
	}
	if tr.Sampled(0) {
		t.Error("nil tracer samples runs")
	}
	s := tr.Start(nil, "campaign", "x")
	if s != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	// Every Span method must tolerate nil.
	s.SetAttr("k", 1)
	s.End()
	if s.ID() != "" {
		t.Error("nil span has an ID")
	}
	c := s.Child("phase", "y")
	if c != nil {
		t.Error("nil span produced a non-nil child")
	}
	if tr.Spans() != 0 {
		t.Error("nil tracer counted spans")
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if err := tr.WriteOTLP(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteOTLP: %v", err)
	}
}

func TestSpanStreamHierarchyAndAttrs(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{Writer: &buf})
	if len(tr.TraceID()) != 32 {
		t.Fatalf("trace ID %q, want 32 hex chars", tr.TraceID())
	}

	root := tr.Start(nil, "campaign", "campaign")
	run := root.Child("run", "run[3]")
	run.SetAttr("inject_cycle", 300)
	run.SetAttr("cycles_simulated", int64(120))
	run.SetAttr("verdict", "TP")
	phase := run.Child("phase", "drain")
	phase.End()
	run.End()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if tr.Spans() != 3 {
		t.Errorf("Spans() = %d, want 3", tr.Spans())
	}

	recs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Completion order: phase, run, campaign.
	byKind := map[string]SpanRecord{}
	for _, r := range recs {
		byKind[r.Kind] = r
		if r.TraceID != tr.TraceID() {
			t.Errorf("span %s carries trace ID %q, want %q", r.SpanID, r.TraceID, tr.TraceID())
		}
		if r.EndNano < r.StartNano {
			t.Errorf("span %s ends before it starts", r.SpanID)
		}
	}
	if byKind["run"].ParentID != byKind["campaign"].SpanID {
		t.Error("run span is not parented to the campaign span")
	}
	if byKind["phase"].ParentID != byKind["run"].SpanID {
		t.Error("phase span is not parented to the run span")
	}
	if v, ok := byKind["run"].Int("inject_cycle"); !ok || v != 300 {
		t.Errorf("inject_cycle = %d,%v, want 300,true", v, ok)
	}
	if v, ok := byKind["run"].Int("cycles_simulated"); !ok || v != 120 {
		t.Errorf("cycles_simulated = %d,%v, want 120,true", v, ok)
	}
	if byKind["run"].Attrs["verdict"] != "TP" {
		t.Errorf("verdict = %v, want TP", byKind["run"].Attrs["verdict"])
	}
	if byKind["run"].Duration() < 0 {
		t.Error("negative run duration")
	}
}

func TestSampling(t *testing.T) {
	tr := New(Options{SampleEvery: 4, Retain: true})
	wantSampled := map[int]bool{0: true, 1: false, 3: false, 4: true, 8: true, 9: false}
	for i, want := range wantSampled {
		if got := tr.Sampled(i); got != want {
			t.Errorf("Sampled(%d) = %v, want %v", i, got, want)
		}
	}
	if tr.Sampled(-1) {
		t.Error("negative run index sampled")
	}
	one := New(Options{Retain: true}) // SampleEvery < 1 → every run
	for i := 0; i < 5; i++ {
		if !one.Sampled(i) {
			t.Errorf("default tracer dropped run %d", i)
		}
	}
}

func TestPhaseDurationHistogram(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := New(Options{Metrics: reg, Retain: true})
	root := tr.Start(nil, "run", "run[0]")
	for _, name := range []string{"warm-start", "drain", "warm-start"} {
		p := root.Child("phase", name)
		p.End()
	}
	root.End()

	s := reg.Snapshot()
	byName := map[string]int64{}
	for _, h := range s.Histograms {
		byName[h.Name] = h.Count
	}
	if byName["campaign_phase_warm_start_seconds"] != 2 {
		t.Errorf("warm_start count = %d, want 2", byName["campaign_phase_warm_start_seconds"])
	}
	if byName["campaign_phase_drain_seconds"] != 1 {
		t.Errorf("drain count = %d, want 1", byName["campaign_phase_drain_seconds"])
	}
	if got := PhaseMetricName("fault-armed"); got != "campaign_phase_fault_armed_seconds" {
		t.Errorf("PhaseMetricName = %q", got)
	}
}

func TestReadSpansToleratesTornTail(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{Writer: &buf})
	for i := 0; i < 3; i++ {
		tr.Start(nil, "run", "run").End()
	}
	tr.Close()
	whole := buf.String()
	torn := whole[:len(whole)-25] // cut mid-record, no trailing newline
	recs, err := ReadSpans(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("ReadSpans on torn stream: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records from torn stream, want 2", len(recs))
	}
}

func TestWriteOTLPShape(t *testing.T) {
	tr := New(Options{Retain: true, Service: "nocalertd"})
	s := tr.Start(nil, "job", "job")
	s.SetAttr("faults", 96)
	s.SetAttr("rate", 0.12)
	s.SetAttr("drained", true)
	s.SetAttr("spec", "4x4")
	s.End()

	var buf bytes.Buffer
	if err := tr.WriteOTLP(&buf); err != nil {
		t.Fatalf("WriteOTLP: %v", err)
	}
	var exp struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []struct {
					Key   string `json:"key"`
					Value struct {
						StringValue string `json:"stringValue"`
					} `json:"value"`
				} `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Scope struct {
					Name string `json:"name"`
				} `json:"scope"`
				Spans []struct {
					TraceID           string `json:"traceId"`
					SpanID            string `json:"spanId"`
					Name              string `json:"name"`
					Kind              int    `json:"kind"`
					StartTimeUnixNano string `json:"startTimeUnixNano"`
					Attributes        []struct {
						Key   string         `json:"key"`
						Value map[string]any `json:"value"`
					} `json:"attributes"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &exp); err != nil {
		t.Fatalf("OTLP dump is not valid JSON: %v", err)
	}
	if len(exp.ResourceSpans) != 1 {
		t.Fatalf("resourceSpans = %d, want 1", len(exp.ResourceSpans))
	}
	rs := exp.ResourceSpans[0]
	if rs.Resource.Attributes[0].Key != "service.name" ||
		rs.Resource.Attributes[0].Value.StringValue != "nocalertd" {
		t.Errorf("resource attrs = %+v, want service.name=nocalertd", rs.Resource.Attributes)
	}
	if len(rs.ScopeSpans) != 1 || len(rs.ScopeSpans[0].Spans) != 1 {
		t.Fatalf("want one scope with one span, got %+v", rs.ScopeSpans)
	}
	sp := rs.ScopeSpans[0].Spans[0]
	if len(sp.TraceID) != 32 || len(sp.SpanID) != 16 {
		t.Errorf("ID lengths: trace %d span %d, want 32/16", len(sp.TraceID), len(sp.SpanID))
	}
	if sp.Kind != 1 {
		t.Errorf("span kind = %d, want 1 (INTERNAL)", sp.Kind)
	}
	if sp.StartTimeUnixNano == "" {
		t.Error("startTimeUnixNano empty — must be a stringified nano timestamp")
	}
	// Attributes sorted by key; intValue stringified; nocalert.kind added.
	want := map[string]string{
		"drained": "boolValue", "faults": "intValue", "nocalert.kind": "stringValue",
		"rate": "doubleValue", "spec": "stringValue",
	}
	if len(sp.Attributes) != len(want) {
		t.Fatalf("attrs = %d, want %d", len(sp.Attributes), len(want))
	}
	var prev string
	for _, a := range sp.Attributes {
		if a.Key < prev {
			t.Errorf("attributes not sorted: %q after %q", a.Key, prev)
		}
		prev = a.Key
		if _, ok := a.Value[want[a.Key]]; !ok {
			t.Errorf("attr %q missing %s: %v", a.Key, want[a.Key], a.Value)
		}
	}
	for _, a := range sp.Attributes {
		if a.Key == "faults" {
			if v, ok := a.Value["intValue"].(string); !ok || v != "96" {
				t.Errorf("intValue = %v, want the string \"96\"", a.Value["intValue"])
			}
		}
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Options{Writer: &buf, Retain: true})
	root := tr.Start(nil, "campaign", "campaign")
	var wg sync.WaitGroup
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := root.Child("run", "run")
			s.SetAttr("index", i)
			s.Child("phase", "drain").End()
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	if len(recs) != 2*n+1 {
		t.Fatalf("got %d spans, want %d", len(recs), 2*n+1)
	}
	ids := map[string]bool{}
	for _, r := range recs {
		if ids[r.SpanID] {
			t.Fatalf("duplicate span ID %s", r.SpanID)
		}
		ids[r.SpanID] = true
	}
}
