package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilFlightRecorderIsNoOp(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(Event{Kind: "detection"})
	fr.Anomaly("x", Event{})
	fr.Dump("x")
	if fr.Events() != nil {
		t.Error("nil recorder returned events")
	}
	if fr.Dumps() != 0 {
		t.Error("nil recorder counted dumps")
	}
	if fr.Err() != nil {
		t.Error("nil recorder has an error")
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	fr := NewFlightRecorder(4, nil)
	for i := 0; i < 10; i++ {
		fr.Record(Event{Run: i, Cycle: int64(100 * i), Kind: "assertion"})
	}
	evs := fr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantRun := 6 + i
		if ev.Run != wantRun {
			t.Errorf("event %d: run %d, want %d (oldest-first)", i, ev.Run, wantRun)
		}
		if ev.Seq != uint64(wantRun+1) {
			t.Errorf("event %d: seq %d, want %d", i, ev.Seq, wantRun+1)
		}
	}
}

func TestAnomalyDumpsRingAsNDJSON(t *testing.T) {
	var sink bytes.Buffer
	fr := NewFlightRecorder(8, &sink)
	fr.Record(Event{Run: 0, Cycle: 300, Kind: "fork_verify", Detail: "ok"})
	fr.Record(Event{Run: 1, Cycle: 500, Kind: "detection",
		Attrs: map[string]any{"checker": 12}})
	fr.Anomaly("fork fingerprint mismatch", Event{
		Run: 2, Cycle: 300, Kind: "fork_verify", Detail: "diverged",
	})
	fr.Dump("campaign end")
	if fr.Dumps() != 2 {
		t.Fatalf("dumps = %d, want 2", fr.Dumps())
	}
	if fr.Err() != nil {
		t.Fatalf("sink error: %v", fr.Err())
	}

	dumps, err := ReadDumps(&sink)
	if err != nil {
		t.Fatalf("ReadDumps: %v", err)
	}
	if len(dumps) != 2 {
		t.Fatalf("got %d dumps, want 2", len(dumps))
	}
	d := dumps[0]
	if d.Reason != "fork fingerprint mismatch" {
		t.Errorf("reason = %q", d.Reason)
	}
	if len(d.Events) != 3 {
		t.Fatalf("dump carries %d events, want 3 (the anomaly event is included)", len(d.Events))
	}
	if last := d.Events[2]; last.Kind != "fork_verify" || last.Detail != "diverged" {
		t.Errorf("last event = %+v, want the anomaly itself", last)
	}
	if d.Events[0].Seq >= d.Events[1].Seq {
		t.Error("dump events not in sequence order")
	}
	if dumps[1].Reason != "campaign end" || len(dumps[1].Events) != 3 {
		t.Errorf("second dump = %q/%d events, want campaign end/3", dumps[1].Reason, len(dumps[1].Events))
	}
}

func TestDumpWithNilSinkStillCounts(t *testing.T) {
	fr := NewFlightRecorder(0, nil) // default capacity
	fr.Anomaly("missed detection", Event{Kind: "assertion"})
	if fr.Dumps() != 1 {
		t.Errorf("dumps = %d, want 1", fr.Dumps())
	}
	if len(fr.Events()) != 1 {
		t.Errorf("anomaly event not recorded")
	}
}

func TestReadDumpsToleratesTornTail(t *testing.T) {
	var sink bytes.Buffer
	fr := NewFlightRecorder(4, &sink)
	fr.Record(Event{Run: 0, Kind: "fp_probe"})
	fr.Dump("one")
	fr.Dump("two")
	whole := sink.String()
	torn := whole[:len(whole)-10]
	dumps, err := ReadDumps(strings.NewReader(torn))
	if err != nil {
		t.Fatalf("ReadDumps on torn stream: %v", err)
	}
	if len(dumps) != 1 || dumps[0].Reason != "one" {
		t.Fatalf("torn stream yielded %d dumps, want just the first", len(dumps))
	}
}
