package recovery

import (
	"testing"

	"nocalert/internal/core"
	"nocalert/internal/fault"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// dropFault returns a transient write-strobe suppression — the fault
// class that silently destroys one flit in transit.
func dropFault(routerID, port int, cycle int64) fault.Fault {
	return fault.Fault{
		Site: fault.Site{Router: routerID, Kind: fault.BufWrite, Port: port, VC: -1, Width: 4},
		Bit:  0, Cycle: cycle, Type: fault.Transient,
	}
}

// buildRun wires a network with the NoCAlert engine and optionally the
// recovery controller, runs past the fault, and drains.
func buildRun(t *testing.T, f fault.Fault, withRecovery bool) (*sim.Network, *core.Engine, *Controller) {
	t.Helper()
	rc := router.Default(topology.NewMesh(4, 4))
	n := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.15, Seed: 31}, fault.NewPlane(f))
	eng := core.NewEngine(n.RouterConfig(), core.Options{})
	n.AttachMonitor(eng)
	var ctl *Controller
	if withRecovery {
		ctl = NewController(n, eng, Options{Timeout: 300, MaxRetries: 3})
		n.AttachMonitor(ctl)
	}
	n.Run(f.Cycle + 400)
	n.StopInjection()
	// Keep stepping so retransmissions (injected after the drain
	// started) can flow; InFlight alone is not a stop condition here.
	for i := 0; i < 4000; i++ {
		n.Step()
	}
	return n, eng, ctl
}

// findDroppingFault scans candidate write-strobe faults for one that
// destroys a flit *cleanly*: a logical packet ends up incomplete while
// the fabric still drains. (A dropped tail instead wedges its wormhole
// — the unrecoverable-by-retransmission case the package doc covers —
// so undrainable candidates are skipped.)
func findDroppingFault(t *testing.T) fault.Fault {
	t.Helper()
	for _, cand := range []fault.Fault{
		dropFault(5, 0, 300), dropFault(5, 2, 320), dropFault(9, 3, 340),
		dropFault(10, 1, 360), dropFault(6, 2, 380), dropFault(5, 0, 400),
		dropFault(9, 0, 420), dropFault(10, 4, 440), dropFault(6, 1, 460),
		dropFault(5, 4, 480), dropFault(9, 2, 500), dropFault(10, 0, 520),
	} {
		rc := router.Default(topology.NewMesh(4, 4))
		n := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.15, Seed: 31}, fault.NewPlane(cand))
		eng := core.NewEngine(n.RouterConfig(), core.Options{})
		n.AttachMonitor(eng)
		ctl := NewController(n, eng, Options{Timeout: 1 << 60}) // observe only
		n.AttachMonitor(ctl)
		n.Run(cand.Cycle + 400)
		drained := n.Drain(4000)
		if s := ctl.Stats(); drained && s.Unrecovered > 0 {
			return cand
		}
	}
	t.Skip("no candidate fault produced a clean drop under this seed")
	return fault.Fault{}
}

// TestRetransmissionRecoversDroppedFlits is the end-to-end story: a
// transient fault destroys flits; without recovery the affected
// packets stay incomplete forever; with the NoCAlert-armed controller
// the sources retransmit and delivery strictly improves — completely,
// except when the drop wedges a wormhole (a dropped tail leaves the
// source NI blocked mid-stream), which retransmission alone cannot fix
// and the package documentation calls out as reconfiguration's job.
func TestRetransmissionRecoversDroppedFlits(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery sweep in -short mode")
	}
	f := findDroppingFault(t)

	// Baseline: observe-only controller (infinite timeout).
	rc := router.Default(topology.NewMesh(4, 4))
	base := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.15, Seed: 31}, fault.NewPlane(f))
	engB := core.NewEngine(base.RouterConfig(), core.Options{})
	base.AttachMonitor(engB)
	ctlB := NewController(base, engB, Options{Timeout: 1 << 60})
	base.AttachMonitor(ctlB)
	base.Run(f.Cycle + 400)
	base.StopInjection()
	for i := 0; i < 4000; i++ {
		base.Step()
	}
	baseline := ctlB.Stats()
	if baseline.Unrecovered == 0 {
		t.Fatal("setup: fault did no damage")
	}
	if !base.Drain(4000) {
		t.Fatal("setup: candidate was supposed to drain")
	}

	// Active recovery.
	_, engA, ctlA := buildRun(t, f, true)
	active := ctlA.Stats()
	if !engA.Detected() {
		t.Fatal("recovery ran without a detection to arm it")
	}
	if active.Retransmissions == 0 {
		t.Fatalf("nothing was retransmitted: %+v", active)
	}
	if active.Unrecovered != 0 {
		t.Fatalf("clean drops must be fully recovered: active %+v vs baseline %+v", active, baseline)
	}
	t.Logf("baseline unrecovered=%d, with recovery=%d (retransmissions=%d)",
		baseline.Unrecovered, active.Unrecovered, active.Retransmissions)
}

// TestControllerIdleOnHealthyNetwork: without an alarm, the controller
// must never inject anything.
func TestControllerIdleOnHealthyNetwork(t *testing.T) {
	rc := router.Default(topology.NewMesh(4, 4))
	n := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.15, Seed: 31}, nil)
	eng := core.NewEngine(n.RouterConfig(), core.Options{})
	n.AttachMonitor(eng)
	ctl := NewController(n, eng, Options{Timeout: 10, MaxRetries: 5})
	n.AttachMonitor(ctl)
	n.Run(1500)
	n.Drain(8000)
	s := ctl.Stats()
	if s.Retransmissions != 0 {
		t.Fatalf("controller retransmitted %d packets on a healthy network", s.Retransmissions)
	}
	if s.Unrecovered != 0 {
		t.Fatalf("healthy network left %d logical packets unconfirmed", s.Unrecovered)
	}
}

// TestRetryBudgetRespected: retries stop at MaxRetries even when the
// packet can never complete (permanent port starvation).
func TestRetryBudgetRespected(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery sweep in -short mode")
	}
	rc := router.Default(topology.NewMesh(4, 4))
	// Permanently suppress SA1 grants at node 5's local input: traffic
	// from node 5 starves, and retransmissions starve with it.
	f := fault.Fault{
		Site: fault.Site{Router: 5, Kind: fault.SA1Gnt, Port: int(topology.Local), VC: -1, Width: 4},
		Bit:  0, Cycle: 300, Type: fault.Permanent,
	}
	n := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.15, Seed: 31}, fault.NewPlane(f))
	eng := core.NewEngine(n.RouterConfig(), core.Options{})
	n.AttachMonitor(eng)
	ctl := NewController(n, eng, Options{Timeout: 200, MaxRetries: 2})
	n.AttachMonitor(ctl)
	n.Run(700)
	n.StopInjection()
	for i := 0; i < 4000; i++ {
		n.Step()
	}
	s := ctl.Stats()
	if s.Unrecovered == 0 {
		t.Skip("permanent starvation did not strand any packet under this seed")
	}
	if s.Retransmissions > s.Unrecovered*2+s.Logical {
		t.Fatalf("retry budget blown: %+v", s)
	}
}

// TestOptionsDefaults pins the zero-value behaviour.
func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Timeout != 500 || o.MaxRetries != 3 {
		t.Fatalf("defaults = %+v", o)
	}
}
