// Package recovery closes the loop the paper leaves to future systems:
// "NoCAlert is intended to be used in conjunction with fault recovery
// techniques." It implements the simplest recovery back-end that
// NoCAlert's instantaneous detection enables — source retransmission of
// end-to-end-unconfirmed packets, armed by the checker fabric's alarm.
//
// The controller supervises logical packets: every offered packet must
// eventually deliver all of its flits, uncorrupted, at its destination.
// While the network is healthy (no assertion has ever fired) it does
// nothing. Once NoCAlert raises an alarm, packets that remain
// unconfirmed past a timeout are retransmitted from the source NI (a
// fresh physical packet carrying the same logical identity), up to a
// retry budget. Because detection is same-cycle, the timeout can be
// tight — the recovery-exposure tables in the campaign reports quantify
// how much looser an epoch-based detector forces it to be.
//
// This recovers traffic lost to transient faults (dropped or corrupted
// flits). It cannot, by itself, recover from a permanently deadlocked
// region — retransmissions would follow the same deterministic route —
// which is exactly why the paper pairs detection with reconfiguration
// for permanent faults.
package recovery

import (
	"nocalert/internal/core"
	"nocalert/internal/flit"
	"nocalert/internal/sim"
)

// Options tunes the controller.
type Options struct {
	// Timeout is the age (in cycles) past which an unconfirmed packet
	// becomes eligible for retransmission, counted from its most recent
	// attempt. Must comfortably exceed the network's worst-case
	// delivery latency to avoid spurious duplicates.
	Timeout int64
	// MaxRetries bounds retransmissions per logical packet.
	MaxRetries int
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 500
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 3
	}
	return o
}

// logical tracks one logical packet across its physical attempts.
type logical struct {
	id               uint64 // original packet id (the logical identity)
	src, dest, class int
	length           int
	lastAttemptAt    int64
	retries          int
	delivered        bool
	// got[attempt][seq] marks flits confirmed at the destination.
	got map[uint64]map[int]bool
}

// Controller is the recovery back-end; attach it to the same network as
// the NoCAlert engine whose alarm arms it.
type Controller struct {
	sim.BaseMonitor
	net  *sim.Network
	eng  *core.Engine
	opts Options

	// reinjecting suppresses PacketInjected while the controller's own
	// InjectPacket call is on the stack (the network announces it
	// synchronously).
	reinjecting bool

	logicals  map[uint64]*logical // by original packet id
	order     []uint64            // original ids in creation order (deterministic retransmission)
	byAttempt map[uint64]uint64   // physical attempt id → original id

	retransmissions int
}

// NewController builds a controller for net, armed by eng's detections.
// Attach it to net with AttachMonitor after constructing it.
func NewController(net *sim.Network, eng *core.Engine, opts Options) *Controller {
	return &Controller{
		net:       net,
		eng:       eng,
		opts:      opts.withDefaults(),
		logicals:  make(map[uint64]*logical),
		byAttempt: make(map[uint64]uint64),
	}
}

// PacketInjected implements sim.Monitor: unknown packets open a new
// logical record; packets the controller reinjected are attempts of an
// existing one (registered in EndCycle before injection).
func (c *Controller) PacketInjected(cycle int64, node int, p *flit.Packet) {
	if c.reinjecting {
		return
	}
	if _, ours := c.byAttempt[p.ID]; ours {
		return
	}
	c.byAttempt[p.ID] = p.ID
	c.order = append(c.order, p.ID)
	c.logicals[p.ID] = &logical{
		id:  p.ID,
		src: p.Src, dest: p.Dest, class: p.Class, length: p.Length,
		lastAttemptAt: cycle,
		got:           map[uint64]map[int]bool{p.ID: make(map[int]bool)},
	}
}

// FlitEjected implements sim.Monitor: flits arriving intact at the
// right node confirm their attempt; a fully confirmed attempt delivers
// the logical packet.
func (c *Controller) FlitEjected(cycle int64, node int, f *flit.Flit) {
	orig, ok := c.byAttempt[f.PacketID]
	if !ok {
		return
	}
	l := c.logicals[orig]
	if l == nil || l.delivered {
		return
	}
	if node != l.dest || !f.EDCOK() {
		return
	}
	seqs := l.got[f.PacketID]
	if seqs == nil {
		return
	}
	if f.Seq >= 0 && f.Seq < l.length {
		seqs[f.Seq] = true
	}
	if len(seqs) == l.length {
		l.delivered = true
	}
}

// EndCycle implements sim.Monitor: once the alarm is armed, timed-out
// logical packets are retransmitted from their sources.
func (c *Controller) EndCycle(cycle int64) {
	if !c.eng.Detected() {
		return
	}
	for _, id := range c.order {
		l := c.logicals[id]
		if l.delivered || l.retries >= c.opts.MaxRetries {
			continue
		}
		if cycle-l.lastAttemptAt < c.opts.Timeout {
			continue
		}
		c.reinjecting = true
		id := c.net.InjectPacket(l.src, l.dest, l.class)
		c.reinjecting = false
		c.byAttempt[id] = l.id
		l.got[id] = make(map[int]bool)
		l.lastAttemptAt = cycle
		l.retries++
		c.retransmissions++
	}
}

// Stats summarizes the controller's view.
type Stats struct {
	// Logical is the number of logical packets supervised.
	Logical int
	// Delivered counts logical packets fully confirmed at their
	// destination.
	Delivered int
	// Unrecovered counts logical packets still unconfirmed.
	Unrecovered int
	// Retransmissions counts physical reinjections performed.
	Retransmissions int
}

// Stats returns the current recovery accounting.
func (c *Controller) Stats() Stats {
	s := Stats{Retransmissions: c.retransmissions}
	for _, l := range c.logicals {
		s.Logical++
		if l.delivered {
			s.Delivered++
		} else {
			s.Unrecovered++
		}
	}
	return s
}
