package server

import (
	"context"
	"crypto/subtle"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Multi-tenant hardening for the job API's mutating endpoints (POST
// /v1/jobs, DELETE /v1/jobs/{id}):
//
//   - bearer-token auth: every configured token names a tenant; a
//     missing or unknown token is a 401. Read-only endpoints (status,
//     events, reports, metrics) stay open — they are the monitoring
//     surface.
//   - token-bucket rate limiting per tenant: RateLimit mutating
//     requests/second with RateBurst of headroom; an exhausted bucket
//     is a 429 with a Retry-After telling the client exactly when a
//     token will be available.
//   - per-tenant quotas on active (queued + running) jobs, enforced at
//     submit: a tenant at its quota gets a 429 and retries after its
//     own jobs finish, instead of filling the shared queue.
//
// With no tokens configured every request is the anonymous "" tenant,
// which keeps single-user/local deployments working untouched (and
// still rate-limitable).

// Metric names for the hardening layer.
const (
	MetricAuthFailures = "nocalertd_auth_failures_total"
	MetricRateLimited  = "nocalertd_rate_limited_total"
	MetricQuotaDenied  = "nocalertd_quota_denied_total"
)

// ErrQuotaExceeded is returned (and mapped to 429) when a tenant is at
// its active-job quota.
var ErrQuotaExceeded = fmt.Errorf("server: tenant is at its active-job quota")

// tenantKey is the context key the auth middleware stores the resolved
// tenant under.
type tenantKey struct{}

// tenantFrom returns the tenant the auth middleware resolved for the
// request ("" when auth is off or the middleware did not run).
func tenantFrom(r *http.Request) string {
	t, _ := r.Context().Value(tenantKey{}).(string)
	return t
}

// bearerToken extracts the Authorization: Bearer credential.
func bearerToken(r *http.Request) (string, bool) {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) <= len(prefix) || !strings.EqualFold(h[:len(prefix)], prefix) {
		return "", false
	}
	return h[len(prefix):], true
}

// lookupTenant resolves a presented token against the configured table
// in constant time per entry, so timing does not leak how much of a
// token matched.
func (s *Server) lookupTenant(token string) (string, bool) {
	for tok, tenant := range s.cfg.AuthTokens {
		if subtle.ConstantTimeCompare([]byte(tok), []byte(token)) == 1 {
			return tenant, true
		}
	}
	return "", false
}

// requireAuth wraps a mutating handler with the auth → rate-limit
// chain. The quota check lives in SubmitJob (it needs the job table
// lock), not here.
func (s *Server) requireAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := ""
		if len(s.cfg.AuthTokens) > 0 {
			token, ok := bearerToken(r)
			if !ok {
				s.mAuthFail.Inc()
				w.Header().Set("WWW-Authenticate", `Bearer realm="nocalertd"`)
				httpError(w, http.StatusUnauthorized, "missing bearer token")
				return
			}
			tenant, ok = s.lookupTenant(token)
			if !ok {
				s.mAuthFail.Inc()
				w.Header().Set("WWW-Authenticate", `Bearer realm="nocalertd", error="invalid_token"`)
				httpError(w, http.StatusUnauthorized, "unknown bearer token")
				return
			}
		}
		if s.limiter != nil {
			if retryAfter, ok := s.limiter.allow(tenant); !ok {
				s.mRateLimited.Inc()
				w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
				httpError(w, http.StatusTooManyRequests, "rate limit exceeded for tenant %q; retry after %s", tenant, retryAfter.Round(time.Millisecond))
				return
			}
		}
		h(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, tenant)))
	}
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (the header does not do fractions).
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// rateLimiter is a per-tenant token bucket: rate tokens/second refill
// up to burst. Buckets are created full on first use.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     now,
	}
}

// allow takes one token from tenant's bucket. When the bucket is
// empty it reports ok=false and how long until a token accrues.
func (l *rateLimiter) allow(tenant string) (retryAfter time.Duration, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.now()
	b, found := l.buckets[tenant]
	if !found {
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[tenant] = b
	}
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
		b.last = t
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / l.rate * float64(time.Second)), false
}

// activeJobsLocked counts tenant's queued + running jobs. Caller holds
// s.mu.
func (s *Server) activeJobsLocked(tenant string) int {
	n := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.Tenant == tenant && !j.status.Terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}
