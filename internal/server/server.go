package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"nocalert/internal/campaign"
	"nocalert/internal/metrics"
	"nocalert/internal/obs"
	"nocalert/internal/trace"
)

// Server metric names, published into the same registry the campaign
// engine instruments, so one /metricsz scrape covers queue health and
// live campaign throughput alike.
const (
	MetricJobsSubmitted = "nocalertd_jobs_submitted_total"
	MetricJobsRejected  = "nocalertd_jobs_rejected_total"
	MetricJobsDone      = "nocalertd_jobs_done_total"
	MetricJobsFailed    = "nocalertd_jobs_failed_total"
	MetricJobsCanceled  = "nocalertd_jobs_canceled_total"
	MetricJobsRecovered = "nocalertd_jobs_recovered_total"
	MetricJobsQueued    = "nocalertd_jobs_queued"
	MetricJobsRunning   = "nocalertd_jobs_running"
	MetricHTTPRequests  = "nocalertd_http_requests_total"
)

// Config tunes a Server. Zero values get serviceable defaults.
type Config struct {
	// Dir is the state directory: job manifests, shard checkpoints and
	// final reports all live here (see trace.JobStatePath and friends).
	// Required.
	Dir string
	// QueueSize bounds the submission queue; a submit beyond it is
	// rejected with 429 rather than buffered without bound. Default 16.
	QueueSize int
	// Concurrency is how many jobs run at once. The default of 1 gives
	// each campaign the whole worker pool — jobs are internally
	// parallel, so stacking them oversubscribes the CPU.
	Concurrency int
	// CampaignWorkers is each campaign's worker-pool size; 0 means
	// GOMAXPROCS.
	CampaignWorkers int
	// VerifyResumed is passed through to RunShard when a job resumes a
	// non-empty checkpoint (0 = default sample, -1 = none).
	VerifyResumed int
	// EventBuffer is each progress stream's channel depth; a consumer
	// that falls further behind has events dropped (and counted) rather
	// than stalling the campaign. Default 64.
	EventBuffer int
	// Registry receives job-queue and campaign telemetry; one is
	// created when nil.
	Registry *metrics.Registry
	// Logger receives one structured record per job transition, every
	// record carrying the job ID (and, when tracing is on, the trace ID)
	// so daemon logs correlate with span streams. Nil discards.
	Logger *slog.Logger
	// Tracer, when non-nil, wraps every job execution in a job span and
	// threads the job → shard → run span hierarchy through RunShard.
	Tracer *obs.Tracer
	// FlightRecorder, when non-nil, receives the campaigns' black-box
	// events; anomalies (fork-verify mismatch, checkpoint divergence,
	// missed detections) auto-dump the ring to its sink.
	FlightRecorder *obs.FlightRecorder
	// AuthTokens maps bearer tokens to tenant names. When non-empty,
	// the mutating endpoints (submit, cancel) require a configured
	// token and the request runs as its tenant; when empty, auth is
	// off and every request is the anonymous "" tenant.
	AuthTokens map[string]string
	// TenantQuota caps each tenant's active (queued + running) jobs;
	// 0 means unlimited. A tenant at quota gets 429 at submit.
	TenantQuota int
	// RateLimit throttles mutating requests per tenant to this many
	// per second (token bucket with RateBurst headroom); 0 disables
	// rate limiting. Exhaustion is a 429 with Retry-After.
	RateLimit float64
	// RateBurst is the token bucket's capacity; default 5 when
	// RateLimit is set.
	RateBurst int
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 16
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 64
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.RateLimit > 0 && c.RateBurst <= 0 {
		c.RateBurst = 5
	}
	return c
}

// Server owns the job table, the bounded queue and the worker pool.
type Server struct {
	cfg Config
	reg *metrics.Registry

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for listings

	queue *fairQueue
	// limiter throttles mutating requests per tenant (nil = off).
	limiter *rateLimiter
	// baseCtx parents every job run; stop cancels it on drain.
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	// draining refuses new submissions during shutdown.
	draining bool

	mSubmitted, mRejected     *metrics.Counter
	mDone, mFailed, mCanceled *metrics.Counter
	mRecovered                *metrics.Counter
	mAuthFail, mRateLimited   *metrics.Counter
	mQuotaDenied              *metrics.Counter
	gQueued, gRunning         *metrics.Gauge
}

// New builds a Server over the state directory, rebuilds the job table
// from the manifests found there, re-enqueues every unfinished job
// (oldest first) and starts the worker pool. A job whose manifest says
// "done" but whose report file is missing — a crash between finalizing
// the checkpoint and writing the report — is re-enqueued too; its
// finalized checkpoint makes the re-run a pure report rebuild.
func New(cfg Config) (*Server, error) {
	s, err := build(cfg)
	if err != nil {
		return nil, err
	}
	s.startWorkers()
	return s, nil
}

// build is New without the worker pool — the seam tests use to hold
// submitted jobs in the queued state deterministically.
func build(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("server: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:          cfg,
		reg:          cfg.Registry,
		jobs:         make(map[string]*Job),
		queue:        newFairQueue(cfg.QueueSize),
		baseCtx:      ctx,
		stop:         cancel,
		mSubmitted:   cfg.Registry.Counter(MetricJobsSubmitted),
		mRejected:    cfg.Registry.Counter(MetricJobsRejected),
		mDone:        cfg.Registry.Counter(MetricJobsDone),
		mFailed:      cfg.Registry.Counter(MetricJobsFailed),
		mCanceled:    cfg.Registry.Counter(MetricJobsCanceled),
		mRecovered:   cfg.Registry.Counter(MetricJobsRecovered),
		mAuthFail:    cfg.Registry.Counter(MetricAuthFailures),
		mRateLimited: cfg.Registry.Counter(MetricRateLimited),
		mQuotaDenied: cfg.Registry.Counter(MetricQuotaDenied),
		gQueued:      cfg.Registry.Gauge(MetricJobsQueued),
		gRunning:     cfg.Registry.Gauge(MetricJobsRunning),
	}
	if cfg.RateLimit > 0 {
		s.limiter = newRateLimiter(cfg.RateLimit, cfg.RateBurst, nil)
	}
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

func (s *Server) startWorkers() {
	for i := 0; i < s.cfg.Concurrency; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// jobLog returns the configured logger bound to one job's correlation
// attributes: the job ID always, and the trace ID when tracing is on —
// the same ID every span of the job's campaign carries, so a log line
// and a span stream join on it.
func (s *Server) jobLog(id string) *slog.Logger {
	l := s.cfg.Logger.With("job", id)
	if s.cfg.Tracer != nil {
		l = l.With("trace_id", s.cfg.Tracer.TraceID())
	}
	return l
}

// recover rebuilds the job table from the state directory.
func (s *Server) recover() error {
	states, err := trace.ListJobStates(s.cfg.Dir)
	if err != nil {
		return err
	}
	var requeue []*Job
	for _, js := range states {
		var spec campaign.Spec
		if err := json.Unmarshal(js.Spec, &spec); err != nil {
			return fmt.Errorf("server: job %s: bad spec: %v", js.ID, err)
		}
		if h := spec.Hash(); h != js.SpecHash {
			return fmt.Errorf("server: job %s: spec hash %s does not match its spec (%s)", js.ID, js.SpecHash, h)
		}
		j := newJob(js.ID, spec, parseRFC3339(js.SubmittedAt))
		j.Tenant = js.Tenant
		if js.Shards > 1 {
			j.ShardIndex, j.ShardCount = js.Shard, js.Shards
		}
		j.status = Status(js.Status)
		j.errMsg = js.Error
		j.finished = parseRFC3339(js.FinishedAt)
		if js.Status == trace.JobDone {
			// A done job's product must still exist: the aggregated
			// report for a whole-campaign job, the finalized checkpoint
			// for a coordinator-dispatched shard. A crash between
			// checkpoint finalize and product write re-enqueues the job;
			// its checkpoint makes the re-run a pure rebuild.
			product := trace.JobReportPath(s.cfg.Dir, js.ID)
			if j.ShardCount > 1 {
				product = s.checkpointPath(j)
			}
			if _, err := os.Stat(product); err != nil {
				j.status = StatusQueued
				j.finished = time.Time{}
			} else if js.Total > 0 {
				j.done, j.total = js.Done, js.Total
			} else {
				j.done, j.total = spec.NumFaults, spec.NumFaults
			}
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if j.status == StatusQueued {
			requeue = append(requeue, j)
		}
	}
	if len(requeue) > s.queue.cap() {
		return fmt.Errorf("server: %d unfinished jobs to recover, queue holds %d — raise QueueSize", len(requeue), s.queue.cap())
	}
	for _, j := range requeue {
		s.queue.push(j)
		s.gQueued.Add(1)
		s.mRecovered.Inc()
		s.jobLog(j.ID).Info("job recovered as queued", "spec", j.SpecHash)
	}
	return nil
}

// checkpointPath returns the job's shard-checkpoint location: keyed by
// job ID for whole-campaign jobs (the PR-4 layout), and by campaign
// identity + shard coordinates for coordinator-dispatched shards, so a
// re-submitted shard resumes the partial checkpoint an earlier attempt
// left behind (RunShard's skip-and-verify path proves it first).
func (s *Server) checkpointPath(j *Job) string {
	if j.ShardCount > 1 {
		return trace.ShardCheckpointPath(s.cfg.Dir, j.SpecHash, j.ShardIndex, j.ShardCount)
	}
	return trace.JobCheckpointPath(s.cfg.Dir, j.ID)
}

func parseRFC3339(s string) time.Time {
	if s == "" {
		return time.Time{}
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}
	}
	return t
}

// NormalizeSpec applies the service's submission defaults — the same
// values the faultcampaign CLI defaults its flags to — before the spec
// is hashed or persisted, so the job's durable identity is the
// effective spec, never an ambiguous zero. Exported so a coordinator
// dispatching shards normalizes identically and its planned totals and
// dedupe keys agree with the fleet's.
func NormalizeSpec(spec campaign.Spec) campaign.Spec {
	if spec.VCs == 0 {
		spec.VCs = 4
	}
	if spec.PostInjectRun <= 0 {
		spec.PostInjectRun = 500
	}
	if spec.DrainDeadline <= 0 {
		spec.DrainDeadline = 10000
	}
	if spec.Epoch <= 0 {
		spec.Epoch = 1500
	}
	if spec.HopLatency <= 0 {
		spec.HopLatency = 1
	}
	return spec
}

// ErrQueueFull is returned (and mapped to 429) when the submission
// queue is at capacity.
var ErrQueueFull = errors.New("server: job queue is full")

// errDraining is returned when the daemon is shutting down.
var errDraining = errors.New("server: draining, not accepting jobs")

// SubmitOptions carries a submission's multi-tenant and shard
// context. The zero value is an anonymous whole-campaign job.
type SubmitOptions struct {
	// Tenant is the submitting tenant (resolved by the auth layer).
	Tenant string
	// Shard/Shards submit one slice of a larger campaign: the job runs
	// PlanShard(spec, Shard, Shards) and its product is the finalized
	// shard checkpoint rather than an aggregated report. Shards <= 1
	// means a whole-campaign job.
	Shard  int
	Shards int
}

// Submit validates, persists and enqueues a new anonymous
// whole-campaign job (the pre-multi-tenant API).
func (s *Server) Submit(spec campaign.Spec) (*Job, error) {
	j, _, err := s.SubmitJob(spec, SubmitOptions{})
	return j, err
}

// SubmitJob validates, persists and enqueues a new job. Sharded
// submissions are idempotent on (spec, shard): when an active or done
// job for the same shard of the same campaign already exists, that job
// is returned with existing=true instead of queueing a duplicate —
// which is what lets a coordinator retry a submit over a flaky link
// (or re-dispatch after its own restart) without doubling work.
func (s *Server) SubmitJob(spec campaign.Spec, o SubmitOptions) (j *Job, existing bool, err error) {
	spec = NormalizeSpec(spec)
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	if o.Shards <= 1 {
		o.Shard, o.Shards = 0, 1
	} else if o.Shard < 0 || o.Shard >= o.Shards {
		return nil, false, fmt.Errorf("server: shard index %d outside [0,%d)", o.Shard, o.Shards)
	}
	specJSON, err := json.Marshal(&spec)
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false, errDraining
	}
	specHash := spec.Hash()
	if o.Shards > 1 {
		for _, id := range s.order {
			cand := s.jobs[id]
			if cand.SpecHash != specHash || cand.ShardIndex != o.Shard || cand.ShardCount != o.Shards {
				continue
			}
			cand.mu.Lock()
			st := cand.status
			cand.mu.Unlock()
			// Failed and canceled attempts do not block a retry; their
			// partial checkpoint is resumed by the new job.
			if st == StatusFailed || st == StatusCanceled {
				continue
			}
			s.mu.Unlock()
			s.jobLog(cand.ID).Info("shard submit deduplicated onto existing job",
				"spec", specHash, "shard", o.Shard, "shards", o.Shards, "status", st)
			return cand, true, nil
		}
	}
	if s.cfg.TenantQuota > 0 && s.activeJobsLocked(o.Tenant) >= s.cfg.TenantQuota {
		s.mu.Unlock()
		s.mQuotaDenied.Inc()
		return nil, false, ErrQuotaExceeded
	}
	j = newJob(newJobID(), spec, time.Now())
	j.Tenant = o.Tenant
	j.ShardIndex, j.ShardCount = o.Shard, o.Shards
	if o.Shards > 1 {
		// A shard job's run count is its slice of the universe, not the
		// whole campaign's (exact once planned; 0 when NumFaults means
		// "every location" and the universe size is not yet known).
		lo, hi := campaign.ShardRange(spec.NumFaults, o.Shard, o.Shards)
		j.total = hi - lo
	}
	// The manifest must be durable before the job is visible or
	// runnable: a daemon killed right after the 201 response still
	// knows the job on restart.
	js := &trace.JobState{
		ID:          j.ID,
		Spec:        specJSON,
		SpecHash:    j.SpecHash,
		Tenant:      j.Tenant,
		Status:      trace.JobQueued,
		SubmittedAt: rfc3339(j.submitted),
	}
	if o.Shards > 1 {
		js.Shard, js.Shards = o.Shard, o.Shards
	}
	if err := trace.WriteJobState(s.cfg.Dir, js); err != nil {
		s.mu.Unlock()
		return nil, false, err
	}
	if !s.queue.push(j) {
		s.mu.Unlock()
		os.Remove(trace.JobStatePath(s.cfg.Dir, j.ID))
		s.mRejected.Inc()
		return nil, false, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	s.mSubmitted.Inc()
	s.gQueued.Add(1)
	s.jobLog(j.ID).Info("job queued", "spec", j.SpecHash, "faults", spec.NumFaults,
		"tenant", j.Tenant, "shard", j.ShardIndex, "shards", j.ShardCount)
	return j, false, nil
}

// Job returns the job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// JobViews lists every known job in submission order.
func (s *Server) JobViews() []View {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]View, len(jobs))
	for i, j := range jobs {
		out[i] = j.view()
	}
	return out
}

// Cancel requests cancellation. A queued job goes terminal
// immediately; a running one is canceled cooperatively (its completed
// runs stay durable in the checkpoint). Terminal jobs return an error.
func (s *Server) Cancel(id string) error {
	j, ok := s.Job(id)
	if !ok {
		return fmt.Errorf("server: no job %s", id)
	}
	j.mu.Lock()
	switch {
	case j.status.Terminal():
		st := j.status
		j.mu.Unlock()
		return fmt.Errorf("server: job %s is already %s", id, st)
	case j.status == StatusRunning:
		j.canceled = true
		cancel := j.cancelRun
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default: // queued: terminal now; the worker skips it on dequeue
		j.canceled = true
		j.status = StatusCanceled
		j.finished = time.Now()
		j.publishLocked(Event{Type: "status", Job: j.ID, Status: StatusCanceled, Done: j.done, Total: j.total})
		j.closeHubLocked()
		j.mu.Unlock()
		s.gQueued.Add(-1)
		s.mCanceled.Inc()
		s.persistTerminal(j)
		s.jobLog(id).Info("job canceled while queued")
		return nil
	}
}

// ReportPath returns the final report location for a done job.
func (s *Server) ReportPath(id string) string { return trace.JobReportPath(s.cfg.Dir, id) }

// Stop drains the server: no new submissions, running campaigns are
// canceled cooperatively (every completed run is already durable in
// its checkpoint, so nothing is lost), and the worker pool exits. The
// ctx bounds how long Stop waits for in-flight runs to finish their
// current faults.
func (s *Server) Stop(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stop()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain timed out: %w", ctx.Err())
	}
}

// worker pulls jobs off the queue until drain, parking on the queue's
// notify channel when it is empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		if j := s.queue.pop(); j != nil {
			s.runJob(j)
			continue
		}
		select {
		case <-s.baseCtx.Done():
			return
		case <-s.queue.notify:
		}
	}
}

// runJob executes one job end to end against its durable checkpoint.
func (s *Server) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	j.mu.Lock()
	if j.canceled || j.status.Terminal() {
		// Canceled while queued; Cancel already persisted the state.
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.cancelRun = cancel
	j.publishLocked(Event{Type: "snapshot", Job: j.ID, Status: StatusRunning, Done: j.done, Total: j.total})
	j.mu.Unlock()
	s.gQueued.Add(-1)
	s.gRunning.Add(1)
	defer s.gRunning.Add(-1)

	err := s.execute(ctx, j)

	j.mu.Lock()
	canceled := j.canceled
	j.cancelRun = nil
	switch {
	case err == nil:
		j.status = StatusDone
		j.finished = time.Now()
		j.errMsg = ""
	case canceled && errors.Is(err, context.Canceled):
		j.status = StatusCanceled
		j.finished = time.Now()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Daemon drain, not a user cancel: the job stays durable as
		// queued and resumes on the next start. In-memory it goes back
		// to queued too, for a truthful /v1/jobs during shutdown.
		j.status = StatusQueued
		j.mu.Unlock()
		s.jobLog(j.ID).Info("job interrupted by drain; checkpoint keeps completed runs", "done", j.done)
		return
	default:
		j.status = StatusFailed
		j.finished = time.Now()
		j.errMsg = err.Error()
	}
	j.faultsPerSec = 0 // terminal: the live throughput gauge is over
	final := Event{Type: "status", Job: j.ID, Status: j.status, Done: j.done, Total: j.total, Resumed: j.resumed,
		FastPathHits: j.fastPath, Reconverged: j.reconverged, FullSim: j.fullSim, Forked: j.forked, Error: j.errMsg}
	j.publishLocked(final)
	j.closeHubLocked()
	st := j.status
	j.mu.Unlock()

	switch st {
	case StatusDone:
		s.mDone.Inc()
	case StatusFailed:
		s.mFailed.Inc()
	case StatusCanceled:
		s.mCanceled.Inc()
	}
	s.persistTerminal(j)
	if st == StatusFailed {
		s.jobLog(j.ID).Error("job failed", "error", j.view().Error)
	} else {
		s.jobLog(j.ID).Info("job finished", "status", st)
	}
}

// execute plans the job as shard 0/1, resumes its checkpoint, runs the
// remainder and writes the final report. Any error leaves the
// checkpoint consistent for the next attempt. When tracing is on the
// whole execution runs under a job span, the root of the job → shard →
// run hierarchy RunShard and the campaign extend.
func (s *Server) execute(ctx context.Context, j *Job) error {
	jspan := s.cfg.Tracer.Start(nil, "job", "job["+j.ID+"]")
	jspan.SetAttr("job_id", j.ID)
	jspan.SetAttr("spec_hash", j.SpecHash)
	err := s.executeShard(ctx, j, jspan)
	if err != nil {
		jspan.SetAttr("error", err.Error())
	}
	jspan.End()
	return err
}

// executeShard is execute's body, split out so the job span brackets
// every exit path.
func (s *Server) executeShard(ctx context.Context, j *Job, jspan *obs.Span) error {
	sh, err := campaign.PlanShard(j.Spec, j.ShardIndex, j.ShardCount)
	if err != nil {
		return err
	}
	m, err := sh.Manifest()
	if err != nil {
		return err
	}
	ckptPath := s.checkpointPath(j)
	cp, completed, err := trace.ResumeCheckpoint(ckptPath, m)
	if err != nil {
		return err
	}
	defer cp.Close()

	total := sh.End - sh.Start
	j.mu.Lock()
	j.total = total
	j.resumed = len(completed)
	j.done = len(completed)
	if len(completed) > 0 {
		// The resume jump: subscribers see the checkpoint's progress
		// restored before any new run executes. No throughput fields —
		// nothing has been measured yet (see campaign.EstimateETA).
		j.publishLocked(Event{Type: "snapshot", Job: j.ID, Status: StatusRunning,
			Done: j.done, Total: total, Resumed: j.resumed})
	}
	j.mu.Unlock()
	if len(completed) > 0 {
		s.jobLog(j.ID).Info("resuming checkpoint", "recorded", len(completed), "total", total)
	}

	stats, err := campaign.RunShard(sh, cp, completed, campaign.ShardRunOptions{
		Workers:        s.cfg.CampaignWorkers,
		Metrics:        s.reg,
		Context:        ctx,
		VerifyResumed:  s.cfg.VerifyResumed,
		Tracer:         s.cfg.Tracer,
		TraceParent:    jspan,
		FlightRecorder: s.cfg.FlightRecorder,
		Progress: func(done, total int, st campaign.ShardRunStats) {
			fps := s.reg.Gauge(campaign.MetricFaultsPerSec).Value()
			ev := Event{Type: "progress", Job: j.ID, Status: StatusRunning, Done: done, Total: total,
				FastPathHits: st.FastPathHits, Reconverged: st.Reconverged, FullSim: st.FullSim}
			if eta, ok := campaign.EstimateETA(total-done, fps); ok {
				ev.FaultsPerSec = fps
				ev.ETASeconds = eta.Seconds()
			}
			j.mu.Lock()
			j.done = done
			j.fastPath = st.FastPathHits
			j.reconverged = st.Reconverged
			j.fullSim = st.FullSim
			j.faultsPerSec = fps
			ev.Resumed = j.resumed
			j.publishLocked(ev)
			j.mu.Unlock()
		},
	})
	if stats != nil {
		j.mu.Lock()
		j.executed = stats.Executed
		j.verified = stats.Verified
		j.fastPath = stats.FastPathHits
		j.reconverged = stats.Reconverged
		j.fullSim = stats.FullSim
		j.forked = stats.Forked
		j.mu.Unlock()
	}
	if err != nil {
		return err
	}
	if !stats.Complete {
		return fmt.Errorf("server: job %s checkpoint is incomplete after a clean run", j.ID)
	}
	if err := cp.Close(); err != nil {
		return err
	}
	if j.ShardCount > 1 {
		// A shard job's product is its finalized checkpoint; the
		// aggregated report only exists once a coordinator folds every
		// shard through the merge gate.
		return nil
	}
	return s.writeReport(j, ckptPath)
}

// writeReport rebuilds the aggregated report from the finalized
// checkpoint — the exact path a shard merge takes, which is what makes
// the report byte-identical to an uninterrupted (or unsharded CLI)
// run's WriteJSON output — and lands it atomically.
func (s *Server) writeReport(j *Job, ckptPath string) error {
	cd, err := trace.ReadCheckpointFile(ckptPath)
	if err != nil {
		return err
	}
	rep, err := campaign.ReportFromRecords(j.Spec, cd.Records)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		return err
	}
	return trace.AtomicWriteFile(trace.JobReportPath(s.cfg.Dir, j.ID), buf.Bytes())
}

// persistTerminal rewrites the job manifest with its terminal state.
func (s *Server) persistTerminal(j *Job) {
	v := j.view()
	specJSON, err := json.Marshal(&v.Spec)
	if err != nil {
		s.jobLog(j.ID).Error("job state persist failed", "error", err)
		return
	}
	if err := trace.WriteJobState(s.cfg.Dir, &trace.JobState{
		ID:          j.ID,
		Spec:        specJSON,
		SpecHash:    v.SpecHash,
		Tenant:      v.Tenant,
		Shard:       v.Shard,
		Shards:      v.Shards,
		Done:        v.Done,
		Total:       v.Total,
		Status:      string(v.Status),
		Error:       v.Error,
		SubmittedAt: v.SubmittedAt,
		FinishedAt:  v.FinishedAt,
	}); err != nil {
		s.jobLog(j.ID).Error("job state persist failed", "error", err)
	}
}
