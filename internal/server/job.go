// Package server is the long-running campaign service behind
// cmd/nocalertd: an HTTP job API (submit a campaign.Spec, watch its
// progress as an NDJSON/SSE event stream, fetch the final aggregated
// report) layered over a bounded in-process queue and the existing
// campaign engine.
//
// Durability is the point. Every job is persisted in the state
// directory as a PR-3 shard checkpoint (the whole campaign planned as
// shard 0/1) plus a job-state manifest, so a daemon killed at any
// instant — SIGKILL included — restarts with its full job table and
// resumes every unfinished campaign through RunShard's skip-and-verify
// path. The resumed job's final report is byte-identical to an
// uninterrupted run's, because completed runs are replayed from the
// checkpoint rather than re-executed, and the report is rebuilt from
// the full record set exactly like a shard merge.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"nocalert/internal/campaign"
	"nocalert/internal/trace"
)

// Status is a job's lifecycle state. The durable subset (everything
// except "running") mirrors the trace.Job* constants; "running" is
// in-memory only, so a killed daemon restarts the job as queued.
type Status string

const (
	StatusQueued   Status = trace.JobQueued
	StatusRunning  Status = "running"
	StatusDone     Status = trace.JobDone
	StatusFailed   Status = trace.JobFailed
	StatusCanceled Status = trace.JobCanceled
)

// Terminal reports whether the status can never change again.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Event is one line of a job's progress stream.
type Event struct {
	// Type is "snapshot" (stream opening and resume jumps), "progress"
	// (one newly executed run) or "status" (terminal transition).
	Type   string `json:"type"`
	Job    string `json:"job"`
	Status Status `json:"status"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	// Resumed counts runs recovered from the checkpoint rather than
	// executed by this process.
	Resumed int `json:"resumed,omitempty"`
	// FaultsPerSec/ETASeconds appear on progress events once the
	// campaign has a live throughput sample (see campaign.EstimateETA).
	FaultsPerSec float64 `json:"faults_per_sec,omitempty"`
	ETASeconds   float64 `json:"eta_seconds,omitempty"`
	// FastPathHits/Reconverged/FullSim are the running exit-path counts
	// among the newly executed runs (progress events only). Forked
	// counts warm-started runs; the campaign reports it when it
	// finishes, so it appears on the final event.
	FastPathHits int    `json:"fast_path_hits,omitempty"`
	Reconverged  int    `json:"reconverged,omitempty"`
	FullSim      int    `json:"full_sim,omitempty"`
	Forked       int    `json:"forked,omitempty"`
	Error        string `json:"error,omitempty"`
	// Dropped counts events this subscriber missed immediately before
	// this one because it consumed too slowly (the stream truncates
	// rather than stall the campaign).
	Dropped int `json:"dropped,omitempty"`
}

// subscriber is one attached event stream. Its channel is buffered;
// when full, publishes are counted into dropped instead of blocking
// the campaign's progress callback.
type subscriber struct {
	ch      chan Event
	dropped int
}

// Job is one submitted campaign.
type Job struct {
	ID string
	// Spec is the normalized campaign spec the job runs (defaults
	// applied at submit time, before hashing or persisting).
	Spec     campaign.Spec
	SpecHash string
	// Tenant names the submitter (resolved from the auth table); ""
	// for anonymous/local submissions.
	Tenant string
	// ShardIndex/ShardCount are the job's shard coordinates: a
	// coordinator-dispatched slice of a larger campaign runs shard
	// ShardIndex of ShardCount; a whole-campaign job runs 0 of 1.
	ShardIndex int
	ShardCount int

	mu          sync.Mutex
	status      Status
	done        int // completed runs, resumed included
	total       int // planned run count (spec.NumFaults until planned)
	resumed     int
	executed    int
	verified    int
	fastPath    int
	reconverged int
	fullSim     int
	forked      int
	// faultsPerSec is the campaign's live throughput gauge at the last
	// progress callback; droppedEvents counts events any subscriber
	// missed because its stream buffer was full. Both surface in View.
	faultsPerSec  float64
	droppedEvents int
	errMsg        string
	submitted     time.Time
	started       time.Time
	finished      time.Time
	// cancelRun cancels the running campaign's context; canceled marks
	// a user cancellation (as opposed to a daemon drain).
	cancelRun context.CancelFunc
	canceled  bool
	subs      map[*subscriber]struct{}
	closed    bool // terminal: hub closed, no further events
}

func newJob(id string, spec campaign.Spec, submitted time.Time) *Job {
	return &Job{
		ID:         id,
		Spec:       spec,
		SpecHash:   spec.Hash(),
		ShardCount: 1,
		status:     StatusQueued,
		total:      spec.NumFaults,
		submitted:  submitted,
		subs:       make(map[*subscriber]struct{}),
	}
}

// newJobID returns a fresh random job ID ("j" + 12 hex digits).
func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: crypto/rand unavailable: " + err.Error())
	}
	return "j" + hex.EncodeToString(b[:])
}

// View is the JSON shape of a job in API responses.
type View struct {
	ID       string        `json:"id"`
	Status   Status        `json:"status"`
	Spec     campaign.Spec `json:"spec"`
	SpecHash string        `json:"spec_hash"`
	// Tenant is the submitting tenant (empty for anonymous/local).
	Tenant string `json:"tenant,omitempty"`
	// Shard/Shards are the job's shard coordinates when it runs one
	// slice of a coordinator-dispatched campaign (Shards > 1); both
	// absent for whole-campaign jobs.
	Shard           int `json:"shard,omitempty"`
	Shards          int `json:"shards,omitempty"`
	Done            int `json:"done"`
	Total           int `json:"total"`
	Resumed         int `json:"resumed,omitempty"`
	Executed        int `json:"executed,omitempty"`
	Verified        int `json:"verified,omitempty"`
	FastPathHits    int `json:"fast_path_hits,omitempty"`
	ReconvergedHits int `json:"reconverged_hits,omitempty"`
	FullSimRuns     int `json:"full_sim_runs,omitempty"`
	ForkedRuns      int `json:"forked_runs,omitempty"`
	// FaultsPerSec is the live campaign throughput while the job runs
	// (zero until the first progress sample, and after terminal states).
	FaultsPerSec float64 `json:"faults_per_sec,omitempty"`
	// DroppedEvents counts progress events slow subscribers missed —
	// the event hub truncates rather than stall the campaign, and this
	// total makes that loss observable.
	DroppedEvents int    `json:"dropped_events,omitempty"`
	Error         string `json:"error,omitempty"`
	SubmittedAt   string `json:"submitted_at"`
	StartedAt     string `json:"started_at,omitempty"`
	FinishedAt    string `json:"finished_at,omitempty"`
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// view snapshots the job for an API response.
func (j *Job) view() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:              j.ID,
		Status:          j.status,
		Spec:            j.Spec,
		SpecHash:        j.SpecHash,
		Tenant:          j.Tenant,
		Done:            j.done,
		Total:           j.total,
		Resumed:         j.resumed,
		Executed:        j.executed,
		Verified:        j.verified,
		FastPathHits:    j.fastPath,
		ReconvergedHits: j.reconverged,
		FullSimRuns:     j.fullSim,
		ForkedRuns:      j.forked,
		FaultsPerSec:    j.faultsPerSec,
		DroppedEvents:   j.droppedEvents,
		Error:           j.errMsg,
		SubmittedAt:     rfc3339(j.submitted),
		StartedAt:       rfc3339(j.started),
		FinishedAt:      rfc3339(j.finished),
	}
	if j.ShardCount > 1 {
		v.Shard, v.Shards = j.ShardIndex, j.ShardCount
	}
	return v
}

// snapshotEvent renders the job's current state as a stream event.
func (j *Job) snapshotEvent() Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Event{
		Type:         "snapshot",
		Job:          j.ID,
		Status:       j.status,
		Done:         j.done,
		Total:        j.total,
		Resumed:      j.resumed,
		FastPathHits: j.fastPath,
		Reconverged:  j.reconverged,
		FullSim:      j.fullSim,
		Forked:       j.forked,
		Error:        j.errMsg,
	}
}

// subscribe attaches an event stream. The returned cancel function
// detaches it; the channel is closed when the job reaches a terminal
// state (or was already terminal at subscribe time).
func (j *Job) subscribe(buffer int) (<-chan Event, func()) {
	sub := &subscriber{ch: make(chan Event, buffer)}
	j.mu.Lock()
	closed := j.closed
	if !closed {
		j.subs[sub] = struct{}{}
	}
	j.mu.Unlock()
	if closed {
		close(sub.ch)
		return sub.ch, func() {}
	}
	return sub.ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[sub]; ok {
			delete(j.subs, sub)
			close(sub.ch)
		}
	}
}

// publish fans ev out to every subscriber without blocking: a full
// subscriber buffer drops the event and surfaces the gap in the next
// delivered event's Dropped count. Called with j.mu held.
func (j *Job) publishLocked(ev Event) {
	for sub := range j.subs {
		if sub.dropped > 0 {
			ev.Dropped = sub.dropped
		} else {
			ev.Dropped = 0
		}
		select {
		case sub.ch <- ev:
			sub.dropped = 0
		default:
			sub.dropped++
			j.droppedEvents++
		}
	}
}

// closeHubLocked ends every subscriber stream. Called with j.mu held,
// after the terminal state is set.
func (j *Job) closeHubLocked() {
	if j.closed {
		return
	}
	j.closed = true
	for sub := range j.subs {
		delete(j.subs, sub)
		close(sub.ch)
	}
}
