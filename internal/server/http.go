package server

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"nocalert/internal/campaign"
	"nocalert/internal/metrics"
)

// API surface:
//
//	POST   /v1/jobs             submit a campaign.Spec; 201 + job view,
//	                            429 when the queue is full
//	GET    /v1/jobs             list jobs in submission order
//	GET    /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}        cancel (202 running, 200 queued,
//	                            409 terminal)
//	GET    /v1/jobs/{id}/events progress stream: NDJSON by default,
//	                            SSE framing with Accept: text/event-stream
//	GET    /v1/jobs/{id}/report final aggregated report JSON (409 until
//	                            done — byte-identical to the equivalent
//	                            unsharded faultcampaign -json output)
//	GET    /healthz             liveness + queue summary
//	GET    /metricsz            metrics registry (?format=text for plain)
//	GET    /metrics             OpenMetrics/Prometheus text exposition
//	GET    /debug/pprof/        live profiling
//	GET    /debug/vars          expvar
//
// Every non-streaming handler runs under RequestTimeout; the events
// stream is bounded by StreamTimeout instead, because a legitimate
// subscriber holds its connection for the whole campaign.

// DefaultRequestTimeout bounds non-streaming handlers.
const DefaultRequestTimeout = 30 * time.Second

// DefaultStreamTimeout bounds one events-stream connection.
const DefaultStreamTimeout = 4 * time.Hour

// httpError is the JSON error body every failure path returns.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Handler returns the service mux: the job API, health, metrics and
// the pprof/expvar telemetry pages, all on one listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	timeout := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, DefaultRequestTimeout, `{"error":"request timed out"}`)
	}
	mux.Handle("POST /v1/jobs", timeout(s.requireAuth(s.handleSubmit)))
	mux.Handle("GET /v1/jobs", timeout(s.handleList))
	mux.Handle("GET /v1/jobs/{id}", timeout(s.handleStatus))
	mux.Handle("DELETE /v1/jobs/{id}", timeout(s.requireAuth(s.handleCancel)))
	mux.Handle("GET /v1/jobs/{id}/report", timeout(s.handleReport))
	mux.Handle("GET /v1/jobs/{id}/checkpoint", timeout(s.handleCheckpoint))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents) // streaming: no TimeoutHandler
	mux.Handle("GET /healthz", timeout(s.handleHealth))
	mux.Handle("GET /metricsz", timeout(s.handleMetrics))
	mux.Handle("GET /metrics", timeout(s.handleOpenMetrics))
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	requests := s.reg.Counter(MetricHTTPRequests)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		mux.ServeHTTP(w, r)
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad campaign spec: %v", err)
		return
	}
	opts := SubmitOptions{Tenant: tenantFrom(r)}
	q := r.URL.Query()
	if q.Get("shard") != "" || q.Get("shards") != "" {
		var err error
		if opts.Shard, err = strconv.Atoi(q.Get("shard")); err != nil {
			httpError(w, http.StatusBadRequest, "bad shard parameter: %v", err)
			return
		}
		if opts.Shards, err = strconv.Atoi(q.Get("shards")); err != nil {
			httpError(w, http.StatusBadRequest, "bad shards parameter: %v", err)
			return
		}
	}
	j, existing, err := s.SubmitJob(spec, opts)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusTooManyRequests, "job queue is full (%d queued); retry later", s.queue.cap())
		return
	case errors.Is(err, ErrQuotaExceeded):
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusTooManyRequests, "tenant %q is at its active-job quota (%d); retry when a job finishes", opts.Tenant, s.cfg.TenantQuota)
		return
	case errors.Is(err, errDraining):
		httpError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	code := http.StatusCreated
	if existing {
		// Idempotent shard re-submission: same spec hash and shard
		// coordinates as a live or completed job.
		code = http.StatusOK
	}
	writeJSON(w, code, j.view())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.JobViews()})
}

func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobOr404(w, r); ok {
		writeJSON(w, http.StatusOK, j.view())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	wasRunning := j.view().Status == StatusRunning
	if err := s.Cancel(j.ID); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	code := http.StatusOK
	if wasRunning {
		code = http.StatusAccepted // cooperative: in-flight runs finish first
	}
	writeJSON(w, code, j.view())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	v := j.view()
	if v.Shards > 1 {
		httpError(w, http.StatusConflict, "job %s is shard %d/%d of a larger campaign; fetch its checkpoint and merge instead", j.ID, v.Shard, v.Shards)
		return
	}
	if v.Status != StatusDone {
		httpError(w, http.StatusConflict, "job %s is %s; the report exists once it is done", j.ID, v.Status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	http.ServeFile(w, r, s.ReportPath(j.ID))
}

// handleCheckpoint serves a done job's finalized shard checkpoint —
// the NDJSON artifact a coordinator feeds through MergeShards. Like
// the report it exists only once the job is done.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	if v := j.view(); v.Status != StatusDone {
		httpError(w, http.StatusConflict, "job %s is %s; the checkpoint is final once it is done", j.ID, v.Status)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	http.ServeFile(w, r, s.checkpointPath(j))
}

// handleEvents streams the job's progress until the job goes terminal,
// the client disconnects, or StreamTimeout elapses. The first line is
// always a snapshot of the current state; the last line (when the job
// ends during the stream) is the terminal status — delivered even if
// intermediate progress events were dropped on a slow consumer.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(ev Event) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", b)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", b)
		}
		if err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	// Subscribe before the snapshot so no transition between the two is
	// lost; the snapshot then establishes the baseline.
	events, unsubscribe := j.subscribe(s.cfg.EventBuffer)
	defer unsubscribe()
	if !writeEvent(j.snapshotEvent()) {
		return
	}
	deadline := time.NewTimer(DefaultStreamTimeout)
	defer deadline.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-deadline.C:
			return
		case ev, open := <-events:
			if !open {
				// Terminal: the hub closed. Emit the final state so the
				// client always sees it, even after dropped events.
				writeEvent(func() Event {
					ev := j.snapshotEvent()
					ev.Type = "status"
					return ev
				}())
				return
			}
			if !writeEvent(ev) {
				return
			}
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": draining,
		"jobs":     jobs,
		"queued":   s.gQueued.Value(),
		"running":  s.gRunning.Value(),
	})
}

// handleOpenMetrics is the Prometheus/OpenMetrics exposition of the
// whole registry — queue gauges, campaign counters and the span-fed
// phase-duration histograms alike — for standard scrapers.
func (s *Server) handleOpenMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.OpenMetricsContentType)
	s.reg.WriteOpenMetrics(w)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.reg.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}
