package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// authedServer builds a queued (worker-less) server with two tenants
// configured and wraps it in a test listener.
func authedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.AuthTokens == nil {
		cfg.AuthTokens = map[string]string{
			"tok-alpha": "alpha",
			"tok-beta":  "beta",
		}
	}
	s := queuedServer(t, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func authedPost(t *testing.T, url, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", specBody(t, testSpec(24)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAuthRequired checks the 401 paths on the mutating endpoints:
// no token, malformed header, unknown token — and that read-only
// endpoints stay open without credentials.
func TestAuthRequired(t *testing.T) {
	s, ts := authedServer(t, Config{QueueSize: 4})

	cases := []struct {
		name  string
		token string
	}{
		{"missing token", ""},
		{"unknown token", "tok-wrong"},
		{"empty bearer", " "},
	}
	for _, c := range cases {
		resp := authedPost(t, ts.URL, c.token)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s: status %d, want 401", c.name, resp.StatusCode)
		}
		if got := resp.Header.Get("WWW-Authenticate"); got == "" {
			t.Errorf("%s: missing WWW-Authenticate challenge", c.name)
		}
		resp.Body.Close()
	}
	if n := s.reg.Counter(MetricAuthFailures).Value(); n != int64(len(cases)) {
		t.Errorf("%s = %d, want %d", MetricAuthFailures, n, len(cases))
	}

	// A valid token submits fine and the job records its tenant.
	resp := authedPost(t, ts.URL, "tok-alpha")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("valid token: status %d, want 201", resp.StatusCode)
	}
	v := decodeView(t, resp.Body)
	resp.Body.Close()
	if v.Tenant != "alpha" {
		t.Fatalf("job tenant %q, want alpha", v.Tenant)
	}

	// DELETE requires auth too…
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if del.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated cancel: status %d, want 401", del.StatusCode)
	}
	del.Body.Close()

	// …while reads stay open.
	st, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.StatusCode != http.StatusOK {
		t.Fatalf("unauthenticated status read: %d, want 200", st.StatusCode)
	}
	st.Body.Close()
}

// TestRateLimit429 drains one tenant's token bucket on a frozen clock
// and requires 429 + a sane Retry-After, then verifies the bucket
// refills when the clock advances — and that the other tenant's
// bucket is untouched throughout.
func TestRateLimit429(t *testing.T) {
	s, ts := authedServer(t, Config{QueueSize: 32, RateLimit: 2, RateBurst: 3})

	// Replace the limiter's clock before any traffic.
	now := time.Unix(1000, 0)
	s.limiter.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		resp := authedPost(t, ts.URL, "tok-alpha")
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("burst request %d: status %d, want 201", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := authedPost(t, ts.URL, "tok-alpha")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted bucket: status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	resp.Body.Close()
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a positive integer of seconds", ra)
	}
	if n := s.reg.Counter(MetricRateLimited).Value(); n != 1 {
		t.Fatalf("%s = %d, want 1", MetricRateLimited, n)
	}

	// The other tenant still has its full burst.
	respB := authedPost(t, ts.URL, "tok-beta")
	if respB.StatusCode != http.StatusCreated {
		t.Fatalf("other tenant caught in alpha's limit: status %d", respB.StatusCode)
	}
	respB.Body.Close()

	// At 2 tokens/sec, one second buys two more requests.
	now = now.Add(time.Second)
	for i := 0; i < 2; i++ {
		resp := authedPost(t, ts.URL, "tok-alpha")
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("post-refill request %d: status %d, want 201", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp = authedPost(t, ts.URL, "tok-alpha")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("refilled exactly 2 tokens, third request: status %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestTenantQuota429 caps a tenant at one active job and checks the
// quota 429 (with Retry-After) clears once the job goes terminal.
func TestTenantQuota429(t *testing.T) {
	s, ts := authedServer(t, Config{QueueSize: 8, TenantQuota: 1})

	resp := authedPost(t, ts.URL, "tok-alpha")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first job: status %d", resp.StatusCode)
	}
	v := decodeView(t, resp.Body)
	resp.Body.Close()

	resp = authedPost(t, ts.URL, "tok-alpha")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("at quota: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 without Retry-After")
	}
	resp.Body.Close()
	if n := s.reg.Counter(MetricQuotaDenied).Value(); n != 1 {
		t.Fatalf("%s = %d, want 1", MetricQuotaDenied, n)
	}

	// Beta has its own quota.
	respB := authedPost(t, ts.URL, "tok-beta")
	if respB.StatusCode != http.StatusCreated {
		t.Fatalf("other tenant blocked by alpha's quota: status %d", respB.StatusCode)
	}
	respB.Body.Close()

	// Cancel alpha's job; the quota slot frees up.
	if err := s.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	resp = authedPost(t, ts.URL, "tok-alpha")
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("after cancel: status %d, want 201", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestFairQueueRoundRobin submits a burst from one tenant and a single
// job from another, simultaneously-ish, and requires the dequeue order
// to interleave tenants instead of serving the bulk submitter first.
func TestFairQueueRoundRobin(t *testing.T) {
	s := queuedServer(t, Config{QueueSize: 8})

	submit := func(tenant string) *Job {
		t.Helper()
		j, _, err := s.SubmitJob(testSpec(24), SubmitOptions{Tenant: tenant})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a1, a2, a3 := submit("alpha"), submit("alpha"), submit("alpha")
	b1 := submit("beta")

	got := []string{}
	for j := s.queue.pop(); j != nil; j = s.queue.pop() {
		got = append(got, j.ID)
	}
	// Round-robin: alpha, beta, alpha, alpha — beta's single job does
	// not wait behind alpha's whole burst.
	want := []string{a1.ID, b1.ID, a2.ID, a3.ID}
	if len(got) != len(want) {
		t.Fatalf("popped %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want [a1 b1 a2 a3] = %v", got, want)
		}
	}

	// Single-tenant traffic stays strictly FIFO (the pre-multi-tenant
	// behaviour).
	c1, c2 := submit(""), submit("")
	if s.queue.pop().ID != c1.ID || s.queue.pop().ID != c2.ID {
		t.Fatal("single-tenant FIFO order violated")
	}
}

// TestShardSubmitIdempotent re-submits the same shard and expects the
// same job back instead of a duplicate.
func TestShardSubmitIdempotent(t *testing.T) {
	s := queuedServer(t, Config{QueueSize: 8})

	j1, existing, err := s.SubmitJob(testSpec(24), SubmitOptions{Shard: 1, Shards: 4})
	if err != nil || existing {
		t.Fatalf("first submit: existing=%v err=%v", existing, err)
	}
	j2, existing, err := s.SubmitJob(testSpec(24), SubmitOptions{Shard: 1, Shards: 4})
	if err != nil || !existing || j2.ID != j1.ID {
		t.Fatalf("resubmit: job %s existing=%v err=%v, want dedupe onto %s", j2.ID, existing, err, j1.ID)
	}
	// A different shard of the same campaign is its own job.
	j3, existing, err := s.SubmitJob(testSpec(24), SubmitOptions{Shard: 2, Shards: 4})
	if err != nil || existing || j3.ID == j1.ID {
		t.Fatalf("different shard: job %s existing=%v err=%v", j3.ID, existing, err)
	}
	// Shard jobs report their coordinates and sliced totals.
	v := j1.view()
	if v.Shard != 1 || v.Shards != 4 || v.Total != 6 {
		t.Fatalf("shard view %+v, want shard 1/4 of 24 faults (total 6)", v)
	}
}
