package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"nocalert/internal/campaign"
)

// testSpec is a small but real campaign: the golden 4×4 workload with
// a reduced fault sample so API tests stay fast.
func testSpec(faults int) campaign.Spec {
	return campaign.Spec{
		MeshW: 4, MeshH: 4, VCs: 4,
		InjectionRate: 0.12,
		Seed:          3,
		InjectCycle:   300,
		PostInjectRun: 400,
		DrainDeadline: 5000,
		Epoch:         400,
		HopLatency:    1,
		NumFaults:     faults,
	}
}

func specBody(t *testing.T, spec campaign.Spec) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

// queuedServer builds a server whose worker pool is NOT started, so
// submitted jobs stay queued deterministically.
func queuedServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func decodeView(t *testing.T, r io.Reader) View {
	t.Helper()
	var v View
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestJobAPI is the table-driven surface check: submission validation,
// status, cancellation, backpressure and not-found behaviour, all
// against a server whose queue never drains.
func TestJobAPI(t *testing.T) {
	s := queuedServer(t, Config{QueueSize: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body io.Reader) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Fill the queue: two accepted submissions.
	var ids []string
	for i := 0; i < 2; i++ {
		resp := post(specBody(t, testSpec(24)))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/j") {
			t.Fatalf("submit %d: Location %q", i, loc)
		}
		v := decodeView(t, resp.Body)
		resp.Body.Close()
		if v.Status != StatusQueued || v.ID == "" {
			t.Fatalf("submit %d: view %+v", i, v)
		}
		ids = append(ids, v.ID)
	}

	t.Run("rejections", func(t *testing.T) {
		cases := []struct {
			name string
			body string
			want int
		}{
			{"queue full", mustJSON(t, testSpec(24)), http.StatusTooManyRequests},
			{"invalid mesh", `{"mesh_w":0,"mesh_h":4,"vcs":4}`, http.StatusBadRequest},
			{"negative faults", mustJSON(t, func() campaign.Spec { s := testSpec(24); s.NumFaults = -1; return s }()), http.StatusBadRequest},
			{"unknown field", `{"mesh_w":4,"mesh_h":4,"vcs":4,"typo_field":1}`, http.StatusBadRequest},
			{"not JSON", `mesh=4x4`, http.StatusBadRequest},
		}
		for _, c := range cases {
			resp := post(strings.NewReader(c.body))
			if resp.StatusCode != c.want {
				t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
			}
			if c.want == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Errorf("%s: error body missing (%v)", c.name, err)
			}
			resp.Body.Close()
		}
		// A rejected submission must leave no state residue.
		if rej := s.reg.Counter(MetricJobsRejected).Value(); rej != 1 {
			t.Errorf("rejected counter = %d, want 1", rej)
		}
	})

	t.Run("status and list", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0])
		if err != nil {
			t.Fatal(err)
		}
		v := decodeView(t, resp.Body)
		resp.Body.Close()
		if v.ID != ids[0] || v.Status != StatusQueued || v.Total != 24 {
			t.Fatalf("status view %+v", v)
		}
		resp, err = http.Get(ts.URL + "/v1/jobs")
		if err != nil {
			t.Fatal(err)
		}
		var list struct {
			Jobs []View `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(list.Jobs) != 2 || list.Jobs[0].ID != ids[0] || list.Jobs[1].ID != ids[1] {
			t.Fatalf("list = %+v, want submission order %v", list.Jobs, ids)
		}
	})

	t.Run("not found", func(t *testing.T) {
		for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/report", "/v1/jobs/nope/events"} {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
			}
		}
	})

	t.Run("report gated until done", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0] + "/report")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("report on queued job: status %d, want 409", resp.StatusCode)
		}
	})

	t.Run("cancel queued then conflict", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+ids[0], nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		v := decodeView(t, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || v.Status != StatusCanceled {
			t.Fatalf("cancel: status %d view %+v", resp.StatusCode, v)
		}
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("double cancel: status %d, want 409", resp.StatusCode)
		}
	})

	t.Run("terminal job events stream closes after final status", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0] + "/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("Content-Type %q", ct)
		}
		sc := bufio.NewScanner(resp.Body)
		var events []Event
		for sc.Scan() {
			var ev Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("bad event line %q: %v", sc.Text(), err)
			}
			events = append(events, ev)
		}
		// Canceled job: one snapshot, one terminal status, then EOF.
		if len(events) != 2 || events[0].Type != "snapshot" || events[1].Type != "status" ||
			events[1].Status != StatusCanceled {
			t.Fatalf("terminal stream = %+v", events)
		}
	})

	t.Run("sse framing", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+ids[0]+"/events", nil)
		req.Header.Set("Accept", "text/event-stream")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("Content-Type %q", ct)
		}
		if !bytes.HasPrefix(body, []byte("data: {")) {
			t.Fatalf("SSE body %q", body)
		}
	})

	t.Run("health and metrics", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h map[string]any
		json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if h["status"] != "ok" {
			t.Fatalf("healthz %v", h)
		}
		resp, err = http.Get(ts.URL + "/metricsz?format=text")
		if err != nil {
			t.Fatal(err)
		}
		text, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(text), MetricJobsSubmitted) {
			t.Fatalf("metricsz missing %s:\n%s", MetricJobsSubmitted, text)
		}
	})
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestStreamTruncation pins the slow-consumer contract: the hub drops
// events rather than stalling the campaign, and the gap surfaces in
// the next delivered event's Dropped count.
func TestStreamTruncation(t *testing.T) {
	j := newJob("jtest", testSpec(8), time.Now())
	ch, unsubscribe := j.subscribe(1)
	defer unsubscribe()

	j.mu.Lock()
	for i := 1; i <= 10; i++ {
		j.publishLocked(Event{Type: "progress", Job: j.ID, Done: i, Total: 10})
	}
	j.mu.Unlock()

	first := <-ch
	if first.Done != 1 || first.Dropped != 0 {
		t.Fatalf("first event = %+v, want done=1 dropped=0", first)
	}
	// Events 2..10 overflowed the buffer while it was full.
	j.mu.Lock()
	j.publishLocked(Event{Type: "progress", Job: j.ID, Done: 11, Total: 12})
	j.mu.Unlock()
	next := <-ch
	if next.Done != 11 || next.Dropped != 9 {
		t.Fatalf("post-truncation event = %+v, want done=11 dropped=9", next)
	}
	// A delivered event resets the gap counter.
	j.mu.Lock()
	j.publishLocked(Event{Type: "progress", Job: j.ID, Done: 12, Total: 12})
	j.mu.Unlock()
	if ev := <-ch; ev.Dropped != 0 {
		t.Fatalf("gap counter not reset: %+v", ev)
	}
}

// TestSubmitPersistsBeforeResponse: the job manifest is durable by the
// time Submit returns, which is what lets a daemon killed right after
// the 201 still know the job on restart.
func TestSubmitPersistsBeforeResponse(t *testing.T) {
	dir := t.TempDir()
	s := queuedServer(t, Config{Dir: dir, QueueSize: 4})
	j, err := s.Submit(testSpec(24))
	if err != nil {
		t.Fatal(err)
	}
	// A second server over the same dir sees the queued job.
	s2 := queuedServer(t, Config{Dir: dir, QueueSize: 4})
	j2, ok := s2.Job(j.ID)
	if !ok {
		t.Fatalf("job %s not recovered from disk", j.ID)
	}
	if v := j2.view(); v.Status != StatusQueued || v.SpecHash != j.SpecHash {
		t.Fatalf("recovered view %+v", v)
	}
	if rec := s2.reg.Counter(MetricJobsRecovered).Value(); rec != 1 {
		t.Fatalf("recovered counter = %d, want 1", rec)
	}
}

// TestRequestTimeoutApplied: non-streaming handlers are wrapped in a
// TimeoutHandler (probed structurally: the handler responds within the
// budget and the events endpoint stays streamable).
func TestRequestTimeoutApplied(t *testing.T) {
	s := queuedServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
}

// waitJob polls until the job reaches a terminal state.
func waitJob(t *testing.T, s *Server, id string, timeout time.Duration) View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if v := j.view(); v.Status.Terminal() {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v", id, timeout)
	panic("unreachable")
}

// TestRunToCompletion drives one job end to end through the public
// handler and checks the report is exactly the unsharded engine's
// WriteJSON bytes for the same spec.
func TestRunToCompletion(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := testSpec(24)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", specBody(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	v := decodeView(t, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	final := waitJob(t, s, v.ID, 2*time.Minute)
	if final.Status != StatusDone {
		t.Fatalf("job finished as %s (%s)", final.Status, final.Error)
	}
	if final.Done != final.Total || final.Executed != final.Total {
		t.Fatalf("progress accounting off: %+v", final)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + v.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d", resp.StatusCode)
	}

	opts := spec.Options()
	opts.Faults = spec.Universe()
	rep, err := campaign.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := rep.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("daemon report (%d bytes) differs from unsharded engine output (%d bytes)", len(got), want.Len())
	}
	if done := s.reg.Counter(MetricJobsDone).Value(); done != 1 {
		t.Fatalf("done counter = %d", done)
	}
}

// TestRestartResume is the in-process half of the durability contract
// (the e2e suite does it again with a real SIGKILL): interrupt a
// running campaign by draining the daemon, restart over the same state
// dir, and require the resumed job's final report to be byte-identical
// to an uninterrupted run's — with the checkpoint actually resumed,
// not re-executed from scratch.
func TestRestartResume(t *testing.T) {
	spec := testSpec(32)

	// Uninterrupted reference over its own state dir.
	refDir := t.TempDir()
	ref, err := New(Config{Dir: refDir, QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	rj, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v := waitJob(t, ref, rj.ID, 2*time.Minute); v.Status != StatusDone {
		t.Fatalf("reference job: %s (%s)", v.Status, v.Error)
	}
	wantReport := readFileT(t, ref.ReportPath(rj.ID))
	ref.Stop(context.Background())

	// Interrupted run: single campaign worker for a long kill window,
	// drained as soon as progress shows completed runs.
	dir := t.TempDir()
	s1, err := New(Config{Dir: dir, QueueSize: 4, CampaignWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no progress before deadline")
		}
		v := j.view()
		if v.Status.Terminal() {
			t.Fatalf("job finished before it could be interrupted (%s); shrink the interrupt window", v.Status)
		}
		if v.Done >= 3 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	if err := s1.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	interrupted := j.view()
	if interrupted.Status != StatusQueued {
		t.Fatalf("drained job is %s, want queued for resume", interrupted.Status)
	}
	if interrupted.Done == 0 || interrupted.Done >= interrupted.Total {
		t.Fatalf("interrupt window missed: %d/%d", interrupted.Done, interrupted.Total)
	}

	// Restart over the same dir: the job must be recovered, resumed
	// from its checkpoint and completed.
	s2, err := New(Config{Dir: dir, QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop(context.Background())
	final := waitJob(t, s2, j.ID, 2*time.Minute)
	if final.Status != StatusDone {
		t.Fatalf("resumed job: %s (%s)", final.Status, final.Error)
	}
	if final.Resumed == 0 {
		t.Fatal("resumed counter is 0 — the checkpoint was not used")
	}
	if final.Resumed+final.Executed != final.Total {
		t.Fatalf("resumed %d + executed %d != total %d", final.Resumed, final.Executed, final.Total)
	}
	if final.Verified == 0 {
		t.Fatal("no resumed runs were re-executed for verification")
	}
	got := readFileT(t, s2.ReportPath(j.ID))
	if !bytes.Equal(got, wantReport) {
		t.Fatalf("resumed report differs from uninterrupted run (%d vs %d bytes)", len(got), len(wantReport))
	}
}

// TestRecoverRebuildsMissingReport covers the crash window between
// checkpoint finalize and report write: a manifest saying done with no
// report on disk re-enqueues, and the rebuild is pure resume.
func TestRecoverRebuildsMissingReport(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Dir: dir, QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s1.Submit(testSpec(16))
	if err != nil {
		t.Fatal(err)
	}
	if v := waitJob(t, s1, j.ID, 2*time.Minute); v.Status != StatusDone {
		t.Fatalf("job: %s (%s)", v.Status, v.Error)
	}
	want := readFileT(t, s1.ReportPath(j.ID))
	s1.Stop(context.Background())

	if err := os.Remove(s1.ReportPath(j.ID)); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Dir: dir, QueueSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Stop(context.Background())
	final := waitJob(t, s2, j.ID, 2*time.Minute)
	if final.Status != StatusDone {
		t.Fatalf("rebuild: %s (%s)", final.Status, final.Error)
	}
	if final.Resumed != final.Total {
		t.Fatalf("rebuild re-executed runs: resumed %d of %d", final.Resumed, final.Total)
	}
	if got := readFileT(t, s2.ReportPath(j.ID)); !bytes.Equal(got, want) {
		t.Fatal("rebuilt report differs")
	}
}

func TestCancelRunningJob(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Dir: dir, QueueSize: 4, CampaignWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop(context.Background())
	j, err := s.Submit(testSpec(32))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for j.view().Done < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no progress")
		}
		if v := j.view(); v.Status.Terminal() {
			t.Fatalf("finished before cancel: %s", v.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	final := waitJob(t, s, j.ID, time.Minute)
	if final.Status != StatusCanceled {
		t.Fatalf("canceled job ended as %s", final.Status)
	}
	// The durable state must be canceled too: a restart must not
	// resurrect the job.
	s2 := queuedServer(t, Config{Dir: dir, QueueSize: 4})
	j2, ok := s2.Job(j.ID)
	if !ok {
		t.Fatal("canceled job lost")
	}
	if v := j2.view(); v.Status != StatusCanceled {
		t.Fatalf("restart sees %s, want canceled", v.Status)
	}
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
