package server

import "sync"

// fairQueue is the submission queue behind the job API: a bounded
// multi-tenant queue that dequeues round-robin across tenants instead
// of strictly FIFO, so one tenant bulk-submitting a campaign cannot
// starve another's single job behind it. Within a tenant, order stays
// FIFO — which also preserves the exact pre-multi-tenant behaviour
// when every job belongs to the same (possibly anonymous "") tenant.
//
// The queue is a passive data structure plus a wake-up channel; the
// worker pool polls pop and parks on notify when the queue is empty.
type fairQueue struct {
	mu       sync.Mutex
	limit    int
	size     int
	byTenant map[string][]*Job
	// ring holds the tenants that currently have queued jobs, in
	// round-robin order; next indexes the tenant to serve first.
	ring []string
	next int
	// notify wakes one parked worker after a push. Buffered so a push
	// with no parked worker does not block; workers re-poll pop until
	// it returns nil, so a single token is enough.
	notify chan struct{}
}

func newFairQueue(limit int) *fairQueue {
	return &fairQueue{
		limit:    limit,
		byTenant: make(map[string][]*Job),
		notify:   make(chan struct{}, 1),
	}
}

// cap returns the queue bound.
func (q *fairQueue) cap() int { return q.limit }

// len returns the number of queued jobs.
func (q *fairQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// push enqueues j under its tenant, reporting false when the queue is
// at capacity.
func (q *fairQueue) push(j *Job) bool {
	q.mu.Lock()
	if q.size >= q.limit {
		q.mu.Unlock()
		return false
	}
	if _, ok := q.byTenant[j.Tenant]; !ok {
		q.ring = append(q.ring, j.Tenant)
	}
	q.byTenant[j.Tenant] = append(q.byTenant[j.Tenant], j)
	q.size++
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
	return true
}

// pop dequeues the next job round-robin across tenants, or nil when
// the queue is empty.
func (q *fairQueue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.size == 0 {
		return nil
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
	tenant := q.ring[q.next]
	jobs := q.byTenant[tenant]
	j := jobs[0]
	if len(jobs) == 1 {
		delete(q.byTenant, tenant)
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		// q.next now points at the following tenant already.
	} else {
		q.byTenant[tenant] = jobs[1:]
		q.next++
	}
	q.size--
	return j
}
