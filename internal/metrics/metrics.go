// Package metrics is a lightweight, dependency-free, concurrency-safe
// telemetry registry for the simulator, the campaign engine and the
// command-line drivers: named counters, gauges and fixed-bucket
// histograms with deterministic snapshot and text/JSON export.
//
// Design constraints, in order:
//
//   - Zero cost when unused. Every layer that accepts a *Registry
//     treats nil as "telemetry off" and the hot paths pay one branch.
//   - Lock-free updates. Counter, Gauge and Histogram are updated with
//     atomics only; the registry mutex guards instrument creation and
//     snapshotting, never the per-event path.
//   - Deterministic snapshots. Snapshot output is sorted by name, so
//     two snapshots taken with no intervening writes are deeply equal
//     and byte-identical once encoded — the property the campaign's
//     /metricsz endpoint and the regression tests rely on.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The zero value is ready
// to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotone; this is
// not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down. The zero value reads 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d atomically (CAS loop; Set is cheaper when the old value
// does not matter).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with bounds[i-1] < v <= bounds[i]; one extra overflow
// bucket counts v > bounds[len-1]. Buckets are non-cumulative.
//
// The bucket/count/sum triple is updated with atomics so concurrent
// observers never contend on a lock; the RWMutex exists only so
// Registry.Snapshot can take the write side and read a coherent triple
// (count == Σ buckets, sum covering exactly those observations) while
// observers briefly queue behind it.
type Histogram struct {
	mu      sync.RWMutex
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// SearchFloat64s returns the smallest i with bounds[i] >= v, which
	// is exactly the "v <= upper bound" bucket; v above every bound
	// lands on len(bounds), the overflow bucket.
	h.mu.RLock()
	defer h.mu.RUnlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a copy of the per-bucket counts; the last entry
// is the overflow bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// LinearBounds returns count upper bounds start, start+width, ...
func LinearBounds(start, width float64, count int) []float64 {
	if count < 1 || width <= 0 {
		panic("metrics: LinearBounds needs count >= 1 and width > 0")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBounds returns count upper bounds start, start*factor, ...
func ExponentialBounds(start, factor float64, count int) []float64 {
	if count < 1 || start <= 0 || factor <= 1 {
		panic("metrics: ExponentialBounds needs count >= 1, start > 0, factor > 1")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry is a named collection of instruments. Instruments are
// created on first use and shared thereafter; using one name for two
// different instrument kinds (or two different histogram layouts)
// panics, since it is a programming error no caller can recover from.
//
// A nil *Registry is the "telemetry off" convention used throughout the
// repository; packages accepting a registry must nil-check before
// resolving instruments.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

func (r *Registry) checkName(name, want string) {
	if _, ok := r.counters[name]; ok && want != "counter" {
		panic(fmt.Sprintf("metrics: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && want != "gauge" {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge", name))
	}
	if _, ok := r.histograms[name]; ok && want != "histogram" {
		panic(fmt.Sprintf("metrics: %q already registered as a histogram", name))
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkName(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkName(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds (which must be strictly
// increasing) on first use. Re-registering with different bounds
// panics.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		if len(bounds) != len(h.bounds) {
			panic(fmt.Sprintf("metrics: histogram %q re-registered with different bounds", name))
		}
		for i := range bounds {
			if bounds[i] != h.bounds[i] {
				panic(fmt.Sprintf("metrics: histogram %q re-registered with different bounds", name))
			}
		}
		return h
	}
	r.checkName(name, "histogram")
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not strictly increasing", name))
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.histograms[name] = h
	return h
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue is one histogram in a snapshot; Counts has one entry
// per bound plus the trailing overflow bucket.
type HistogramValue struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every instrument, sorted by name
// within each kind.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot captures every instrument. Counters and gauges are single
// atomics, so each value is exact at some instant. Histograms are
// multi-word: Snapshot is the single lock-ordered path that takes each
// histogram's write lock — in sorted-name order, while holding the
// registry mutex — so every HistogramValue is internally consistent
// (Count == Σ Counts, Sum covering exactly those observations) even
// under concurrent observers. No other code path takes more than one
// instrument lock, so the ordering cannot deadlock.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	hnames := make([]string, 0, len(r.histograms))
	for name := range r.histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := r.histograms[name]
		h.mu.Lock()
		hv := HistogramValue{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: h.BucketCounts(),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		h.mu.Unlock()
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText writes the snapshot in a flat `name value` text form
// (histograms expand to _count, _sum and one `_bucket{le=...}` line per
// bound, in the spirit of the Prometheus exposition format).
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%s %g\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%g} %d\n", h.Name, b, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=+Inf} %d\n", h.Name, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", h.Name, h.Sum, h.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}
