package metrics

import (
	"nocalert/internal/flit"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

// Metric names published by Monitor. Exported so dashboards and tests
// address instruments without stringly-typed duplication.
const (
	MetricSimCycles           = "sim_cycles_total"
	MetricSimLinkFlits        = "sim_link_flits_total"
	MetricSimFlitsEjected     = "sim_flits_ejected_total"
	MetricSimPacketsInjected  = "sim_packets_injected_total"
	MetricSimVAStalls         = "sim_va_stalls_total"
	MetricSimSAStalls         = "sim_sa_stalls_total"
	MetricSimBufOccupancy     = "sim_buffer_occupancy_flits"
	MetricSimLinkUtilization  = "sim_link_utilization"
	MetricSimBufOccupancyHist = "sim_buffer_occupancy_hist"
	MetricNoCAssertions       = "noc_assertions_total"
)

// AssertionSource is the slice of the NoCAlert engine the monitor
// polls: a monotone total of checker assertions. *core.Engine satisfies
// it; declaring the interface here keeps metrics from importing the
// checker fabric.
type AssertionSource interface {
	AssertionCount() int64
}

// Monitor is a sim.Monitor that aggregates the simulator's per-cycle
// health signals into a Registry: link utilization, buffer occupancy,
// VC- and switch-allocation stall counts, injection/ejection volume
// and (when an AssertionSource is attached) NoCAlert checker-assertion
// counts. It observes the network without perturbing it, like every
// monitor in this repository.
//
// The monitor implements sim.CloneableMonitor by sharing its registry:
// a forked network keeps feeding the same instruments, so campaign-style
// forks aggregate rather than silently go dark. The assertion source is
// NOT carried across a clone (each fork attaches its own engine);
// re-attach with ObserveAssertions on the clone when needed.
type Monitor struct {
	reg   *Registry
	links float64 // directed inter-router links in the mesh

	cycles     *Counter
	linkFlits  *Counter
	ejected    *Counter
	injected   *Counter
	vaStalls   *Counter
	saStalls   *Counter
	assertions *Counter
	occupancy  *Gauge
	linkUtil   *Gauge
	occHist    *Histogram

	src         AssertionSource
	lastAsserts int64

	// per-cycle accumulators, reset in EndCycle
	curOcc  int64
	curLink int64
}

// NewMonitor returns a monitor publishing into reg. cfg supplies the
// mesh (for the link-utilization denominator) and buffer dimensions
// (for the occupancy histogram layout).
func NewMonitor(reg *Registry, cfg *router.Config) *Monitor {
	links := 0
	for id := 0; id < cfg.Mesh.Nodes(); id++ {
		for d := topology.North; d < topology.NumPorts; d++ {
			if d != topology.Local && cfg.Mesh.HasPort(id, d) {
				links++
			}
		}
	}
	if links == 0 {
		links = 1 // 1×1 mesh: avoid dividing by zero
	}
	// Occupancy buckets: ten linear slices of the fabric's total buffer
	// capacity, so the histogram reads as "how full was the network".
	capacity := cfg.Mesh.Nodes() * router.P * cfg.VCs * cfg.BufDepth
	width := float64(capacity) / 10
	if width < 1 {
		width = 1
	}
	m := &Monitor{
		reg:        reg,
		links:      float64(links),
		cycles:     reg.Counter(MetricSimCycles),
		linkFlits:  reg.Counter(MetricSimLinkFlits),
		ejected:    reg.Counter(MetricSimFlitsEjected),
		injected:   reg.Counter(MetricSimPacketsInjected),
		vaStalls:   reg.Counter(MetricSimVAStalls),
		saStalls:   reg.Counter(MetricSimSAStalls),
		assertions: reg.Counter(MetricNoCAssertions),
		occupancy:  reg.Gauge(MetricSimBufOccupancy),
		linkUtil:   reg.Gauge(MetricSimLinkUtilization),
		occHist:    reg.Histogram(MetricSimBufOccupancyHist, LinearBounds(width, width, 10)),
	}
	return m
}

// Registry returns the registry the monitor publishes into.
func (m *Monitor) Registry() *Registry { return m.reg }

// ObserveAssertions attaches the NoCAlert engine (or any assertion
// source) so checker assertions flow into noc_assertions_total. The
// source must be attached to the same network and must only grow its
// count.
func (m *Monitor) ObserveAssertions(src AssertionSource) {
	m.src = src
	if src != nil {
		m.lastAsserts = src.AssertionCount()
	}
}

// RouterCycle implements sim.Monitor.
func (m *Monitor) RouterCycle(r *router.Router, s *router.Signals) {
	m.curOcc += int64(s.BufferOccupancy())
	m.curLink += int64(s.LinkFlits())
	if n := s.VAStalls(); n > 0 {
		m.vaStalls.Add(int64(n))
	}
	if n := s.SAStalls(); n > 0 {
		m.saStalls.Add(int64(n))
	}
}

// PacketInjected implements sim.Monitor.
func (m *Monitor) PacketInjected(cycle int64, node int, p *flit.Packet) {
	m.injected.Inc()
}

// FlitEjected implements sim.Monitor.
func (m *Monitor) FlitEjected(cycle int64, node int, f *flit.Flit) {
	m.ejected.Inc()
}

// EndCycle implements sim.Monitor: it closes the cycle's aggregates.
func (m *Monitor) EndCycle(cycle int64) {
	m.cycles.Inc()
	m.linkFlits.Add(m.curLink)
	m.occupancy.Set(float64(m.curOcc))
	m.occHist.Observe(float64(m.curOcc))
	m.linkUtil.Set(float64(m.curLink) / m.links)
	if m.src != nil {
		if now := m.src.AssertionCount(); now > m.lastAsserts {
			m.assertions.Add(now - m.lastAsserts)
			m.lastAsserts = now
		}
	}
	m.curOcc, m.curLink = 0, 0
}

// CloneMonitor implements sim.CloneableMonitor: the clone shares the
// registry and instruments (forked networks aggregate into the same
// counters) but starts with fresh per-cycle accumulators and no
// assertion source.
func (m *Monitor) CloneMonitor() sim.Monitor {
	c := *m
	c.src = nil
	c.lastAsserts = 0
	c.curOcc, c.curLink = 0, 0
	return &c
}
