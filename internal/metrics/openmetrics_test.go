package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteOpenMetricsValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign_runs_total").Add(42)
	r.Counter("plain_counter").Add(7) // no _total suffix registered
	r.Gauge("campaign_faults_per_sec").Set(123.5)
	h := r.Histogram("campaign_run_wall_seconds", ExponentialBounds(0.001, 4, 8))
	for _, v := range []float64{0.002, 0.01, 0.5, 3, 1000} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	out := buf.String()

	st, err := ValidateOpenMetrics(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition failed validation: %v\n%s", err, out)
	}
	if st.Families != 4 {
		t.Errorf("families = %d, want 4", st.Families)
	}
	// 2 counter samples + 1 gauge + (8 bounds + Inf + sum + count) = 14.
	if st.Samples != 14 {
		t.Errorf("samples = %d, want 14", st.Samples)
	}

	for _, want := range []string{
		"# TYPE campaign_runs counter\n",
		"campaign_runs_total 42\n",
		"# TYPE plain_counter counter\n",
		"plain_counter_total 7\n",
		"campaign_faults_per_sec 123.5\n",
		"campaign_run_wall_seconds_bucket{le=\"+Inf\"} 5\n",
		"campaign_run_wall_seconds_count 5\n",
		"# EOF\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("exposition does not end with # EOF:\n%s", out)
	}
}

func TestWriteOpenMetricsEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	if got := buf.String(); got != "# EOF\n" {
		t.Fatalf("empty registry exposition = %q, want %q", got, "# EOF\n")
	}
	if _, err := ValidateOpenMetrics(&buf); err != nil {
		t.Fatalf("empty exposition failed validation: %v", err)
	}
}

func TestValidateOpenMetricsRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"missing EOF", "# TYPE a counter\na_total 1\n", "end with # EOF"},
		{"content after EOF", "# EOF\n# TYPE a counter\n", "after # EOF"},
		{"empty line", "# TYPE a counter\n\na_total 1\n# EOF\n", "empty line"},
		{"sample before TYPE", "a_total 1\n# EOF\n", "before any # TYPE"},
		{"counter without _total", "# TYPE a counter\na 1\n# EOF\n", "does not belong"},
		{"foreign sample", "# TYPE a counter\nb_total 1\n# EOF\n", "does not belong"},
		{"interleaved families", "# TYPE a counter\na_total 1\n# TYPE b gauge\nb 1\n# TYPE a counter\n# EOF\n", "declared twice"},
		{"bad family name", "# TYPE 9a counter\n# EOF\n", "invalid metric family name"},
		{"unknown type", "# TYPE a sparkline\n# EOF\n", "unknown metric type"},
		{"bad value", "# TYPE a gauge\na forty\n# EOF\n", "unparseable sample value"},
		{"negative counter", "# TYPE a counter\na_total -3\n# EOF\n", "negative value"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\n# EOF\n", "without an le label"},
		{"bad le bound", "# TYPE h histogram\nh_bucket{le=\"wide\"} 1\n# EOF\n", "unparseable le bound"},
		{"non-cumulative buckets", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n# EOF\n", "not cumulative"},
		{"missing Inf bucket", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 2\nh_count 2\n# EOF\n", "no le=\"+Inf\""},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 2\nh_count 3\n# EOF\n", "_count 3 != +Inf bucket 2"},
		{"unterminated labels", "# TYPE a gauge\na{x=\"1 2\n# EOF\n", "unterminated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ValidateOpenMetrics(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("validator accepted invalid exposition:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateOpenMetricsAcceptsLabelsAndEscapes(t *testing.T) {
	in := "# TYPE h histogram\n" +
		"# HELP h latency\n" +
		"# UNIT h seconds\n" +
		"h_bucket{le=\"0.5\",shard=\"a\\\"b\\\\c\\n\"} 1\n" +
		"h_bucket{le=\"+Inf\"} 2\n" +
		"h_sum 1.5\n" +
		"h_count 2\n" +
		"# EOF\n"
	st, err := ValidateOpenMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatalf("validator rejected valid exposition: %v", err)
	}
	if st.Families != 1 || st.Samples != 4 {
		t.Fatalf("stats = %+v, want 1 family / 4 samples", st)
	}
}

func TestValidateOpenMetricsTrailingHistogram(t *testing.T) {
	// A histogram family last in the exposition must still have its
	// +Inf/_count invariants checked at EOF.
	in := "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 2\nh_count 2\n# EOF\n"
	if _, err := ValidateOpenMetrics(strings.NewReader(in)); err == nil {
		t.Fatal("validator missed a trailing histogram with no +Inf bucket")
	}
}
