package metrics

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// OpenMetricsContentType is the content type of a WriteOpenMetrics
// exposition, per the OpenMetrics 1.0 spec.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// WriteOpenMetrics writes the registry snapshot in OpenMetrics text
// exposition format: one `# TYPE` line per metric family, counter
// samples with the mandatory `_total` suffix, histograms expanded into
// cumulative `_bucket{le="..."}` series plus `_sum`/`_count`, and the
// terminal `# EOF`. The output is what Prometheus scrapes from
// /metrics (and what ValidateOpenMetrics lints in CI).
//
// Family naming: a counter registered as "foo_total" is the family
// "foo" with sample "foo_total"; a counter without the suffix becomes
// the family as-is with "_total" appended to its sample, so every
// counter exposition is spec-clean either way.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	s := r.Snapshot()
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		family := strings.TrimSuffix(c.Name, "_total")
		fmt.Fprintf(bw, "# TYPE %s counter\n", family)
		fmt.Fprintf(bw, "%s_total %d\n", family, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(bw, "# TYPE %s gauge\n", g.Name)
		fmt.Fprintf(bw, "%s %s\n", g.Name, formatOMValue(g.Value))
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(bw, "# TYPE %s histogram\n", h.Name)
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", h.Name, formatOMValue(b), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", h.Name, formatOMValue(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", h.Name, h.Count)
	}
	fmt.Fprintf(bw, "# EOF\n")
	return bw.Flush()
}

// formatOMValue renders a float in OpenMetrics' number syntax (shortest
// round-trip form; exponents are permitted by the ABNF).
func formatOMValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// OMStats summarizes a validated exposition.
type OMStats struct {
	Families int
	Samples  int
}

var omNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// omSuffixes lists the sample-name suffixes each family type permits.
var omSuffixes = map[string][]string{
	"counter":   {"_total", "_created"},
	"gauge":     {""},
	"histogram": {"_bucket", "_sum", "_count", "_created"},
	"summary":   {"", "_sum", "_count", "_created"},
	"unknown":   {""},
	"info":      {"_info"},
	"stateset":  {""},
}

// ValidateOpenMetrics is a promtool-style lint over an OpenMetrics text
// exposition, strict enough to catch the mistakes that break real
// scrapers: missing or non-final `# EOF`, samples not belonging to the
// preceding TYPE family, interleaved or repeated families, counter
// samples without `_total`, histograms without a `+Inf` bucket or with
// non-cumulative bucket counts, and unparseable values.
func ValidateOpenMetrics(r io.Reader) (OMStats, error) {
	var st OMStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	seen := make(map[string]bool)
	var family, ftype string
	sawEOF := false
	lineNo := 0

	type histState struct {
		lastBucket int64
		haveBucket bool
		haveInf    bool
		infValue   int64
		count      int64
		haveCount  bool
	}
	var hist histState
	finishHistogram := func() error {
		if ftype != "histogram" || !hist.haveBucket {
			return nil
		}
		if !hist.haveInf {
			return fmt.Errorf("histogram %q has buckets but no le=\"+Inf\" bucket", family)
		}
		if hist.haveCount && hist.count != hist.infValue {
			return fmt.Errorf("histogram %q: _count %d != +Inf bucket %d", family, hist.count, hist.infValue)
		}
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if sawEOF {
			return st, fmt.Errorf("line %d: content after # EOF", lineNo)
		}
		if line == "" {
			return st, fmt.Errorf("line %d: empty line (not allowed by OpenMetrics)", lineNo)
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || parts[0] != "#" {
				return st, fmt.Errorf("line %d: malformed comment line %q", lineNo, line)
			}
			switch parts[1] {
			case "TYPE":
				if err := finishHistogram(); err != nil {
					return st, fmt.Errorf("line %d: %v", lineNo, err)
				}
				if len(parts) != 4 {
					return st, fmt.Errorf("line %d: TYPE needs a family name and a type", lineNo)
				}
				name, typ := parts[2], parts[3]
				if !omNameRe.MatchString(name) {
					return st, fmt.Errorf("line %d: invalid metric family name %q", lineNo, name)
				}
				if _, ok := omSuffixes[typ]; !ok {
					return st, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if seen[name] {
					return st, fmt.Errorf("line %d: metric family %q declared twice (interleaved families)", lineNo, name)
				}
				seen[name] = true
				family, ftype = name, typ
				hist = histState{}
				st.Families++
			case "HELP", "UNIT":
				if len(parts) < 3 || !omNameRe.MatchString(parts[2]) {
					return st, fmt.Errorf("line %d: malformed %s line", lineNo, parts[1])
				}
			default:
				return st, fmt.Errorf("line %d: unknown comment keyword %q", lineNo, parts[1])
			}
			continue
		}

		// Sample line: name[{labels}] value [timestamp].
		name, labels, rest, err := splitOMSample(line)
		if err != nil {
			return st, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !omNameRe.MatchString(name) {
			return st, fmt.Errorf("line %d: invalid sample name %q", lineNo, name)
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return st, fmt.Errorf("line %d: want `name value [timestamp]`, got %q", lineNo, line)
		}
		val, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return st, fmt.Errorf("line %d: unparseable sample value %q", lineNo, fields[0])
		}
		if family == "" {
			return st, fmt.Errorf("line %d: sample %q before any # TYPE line", lineNo, name)
		}
		suffix, ok := omSampleSuffix(name, family, ftype)
		if !ok {
			return st, fmt.Errorf("line %d: sample %q does not belong to %s family %q", lineNo, name, ftype, family)
		}
		st.Samples++

		if ftype == "histogram" && suffix == "_bucket" {
			le, ok := labels["le"]
			if !ok {
				return st, fmt.Errorf("line %d: histogram bucket %q without an le label", lineNo, name)
			}
			iv := int64(val)
			if le == "+Inf" {
				hist.haveInf = true
				hist.infValue = iv
			} else if _, err := strconv.ParseFloat(le, 64); err != nil {
				return st, fmt.Errorf("line %d: unparseable le bound %q", lineNo, le)
			}
			if hist.haveBucket && iv < hist.lastBucket {
				return st, fmt.Errorf("line %d: histogram %q bucket counts not cumulative (%d after %d)",
					lineNo, family, iv, hist.lastBucket)
			}
			hist.haveBucket = true
			hist.lastBucket = iv
		}
		if ftype == "histogram" && suffix == "_count" {
			hist.count = int64(val)
			hist.haveCount = true
		}
		if ftype == "counter" && val < 0 {
			return st, fmt.Errorf("line %d: counter %q has negative value %g", lineNo, name, val)
		}
	}
	if err := sc.Err(); err != nil {
		return st, err
	}
	if err := finishHistogram(); err != nil {
		return st, err
	}
	if !sawEOF {
		return st, fmt.Errorf("exposition does not end with # EOF")
	}
	return st, nil
}

// omSampleSuffix reports whether sample name belongs to family of the
// given type, returning the suffix it matched.
func omSampleSuffix(name, family, ftype string) (string, bool) {
	if !strings.HasPrefix(name, family) {
		return "", false
	}
	got := name[len(family):]
	for _, s := range omSuffixes[ftype] {
		if got == s {
			return s, true
		}
	}
	return "", false
}

// splitOMSample splits a sample line into name, parsed labels and the
// remainder (value and optional timestamp).
func splitOMSample(line string) (name string, labels map[string]string, rest string, err error) {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		end := strings.IndexByte(line, '}')
		if end < brace {
			return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
		}
		name = line[:brace]
		labels, err = parseOMLabels(line[brace+1 : end])
		if err != nil {
			return "", nil, "", err
		}
		rest = strings.TrimPrefix(line[end+1:], " ")
		return name, labels, rest, nil
	}
	if space < 0 {
		return "", nil, "", fmt.Errorf("sample line %q has no value", line)
	}
	return line[:space], nil, line[space+1:], nil
}

// parseOMLabels parses `k="v",k2="v2"`. Escapes inside values are
// limited to \\, \" and \n — all this repository emits and all the
// lint needs.
func parseOMLabels(s string) (map[string]string, error) {
	out := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label %q missing =", s)
		}
		key := s[:eq]
		if !omNameRe.MatchString(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case '\\', '"':
					val.WriteByte(s[i])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("unsupported escape \\%c in label %q", s[i], key)
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %q", key)
		}
		out[key] = val.String()
		s = strings.TrimPrefix(s, ",")
	}
	return out, nil
}
