package metrics

import (
	"testing"

	"nocalert/internal/core"
	"nocalert/internal/fault"
	"nocalert/internal/router"
	"nocalert/internal/sim"
	"nocalert/internal/topology"
)

var _ sim.CloneableMonitor = (*Monitor)(nil)

// TestMonitorCountsTraffic attaches the monitor to a loaded 4×4 mesh
// and checks every instrument moves in the right direction.
func TestMonitorCountsTraffic(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	rc := router.Default(mesh)
	n := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.2, Seed: 1}, nil)
	reg := NewRegistry()
	m := NewMonitor(reg, &rc)
	eng := core.NewEngine(&rc, core.Options{})
	n.AttachMonitor(eng)
	n.AttachMonitor(m)
	m.ObserveAssertions(eng)

	const cycles = 300
	n.Run(cycles)

	if got := reg.Counter(MetricSimCycles).Value(); got != cycles {
		t.Fatalf("%s = %d, want %d", MetricSimCycles, got, cycles)
	}
	if got := reg.Counter(MetricSimLinkFlits).Value(); got <= 0 {
		t.Fatalf("%s = %d, want > 0 under load", MetricSimLinkFlits, got)
	}
	if got := reg.Counter(MetricSimPacketsInjected).Value(); got != n.PacketsOffered() {
		t.Fatalf("%s = %d, want %d (network's own count)", MetricSimPacketsInjected, got, n.PacketsOffered())
	}
	if got := reg.Counter(MetricSimFlitsEjected).Value(); got != n.FlitsEjected() {
		t.Fatalf("%s = %d, want %d (network's own count)", MetricSimFlitsEjected, got, n.FlitsEjected())
	}
	snap := reg.Snapshot()
	foundHist := false
	for _, h := range snap.Histograms {
		if h.Name == MetricSimBufOccupancyHist {
			foundHist = true
			if h.Count != cycles {
				t.Fatalf("%s count = %d, want %d", MetricSimBufOccupancyHist, h.Count, cycles)
			}
		}
	}
	if !foundHist {
		t.Fatalf("snapshot is missing %s", MetricSimBufOccupancyHist)
	}
	if util := reg.Gauge(MetricSimLinkUtilization).Value(); util < 0 || util > 1 {
		t.Fatalf("%s = %g, want within [0,1]", MetricSimLinkUtilization, util)
	}
	// A fault-free network must raise zero assertions.
	if got := reg.Counter(MetricNoCAssertions).Value(); got != 0 {
		t.Fatalf("%s = %d on a fault-free run, want 0", MetricNoCAssertions, got)
	}
}

// TestMonitorSeesAssertions injects a permanent arbiter fault and
// checks the assertion counter mirrors the engine's total.
func TestMonitorSeesAssertions(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	rc := router.Default(mesh)
	params := fault.Params{Mesh: mesh, VCs: rc.VCs, BufDepth: rc.BufDepth}
	var f fault.Fault
	found := false
	for _, s := range params.EnumerateSites() {
		if s.Kind == fault.SA1Gnt {
			f = fault.Fault{Site: s, Bit: 0, Cycle: 50, Type: fault.Permanent}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no SA1Gnt site")
	}
	plane := fault.NewPlane(f)
	n := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.2, Seed: 2}, plane)
	reg := NewRegistry()
	m := NewMonitor(reg, &rc)
	eng := core.NewEngine(&rc, core.Options{})
	n.AttachMonitor(eng)
	n.AttachMonitor(m)
	m.ObserveAssertions(eng)
	n.Run(400)

	if eng.AssertionCount() == 0 {
		t.Fatal("permanent SA1 grant fault raised no assertions; test premise broken")
	}
	if got := reg.Counter(MetricNoCAssertions).Value(); got != eng.AssertionCount() {
		t.Fatalf("%s = %d, want engine total %d", MetricNoCAssertions, got, eng.AssertionCount())
	}
}

// TestMonitorSurvivesClone: the monitor must be carried across
// Network.Clone (it implements CloneableMonitor) and keep feeding the
// shared registry from the fork.
func TestMonitorSurvivesClone(t *testing.T) {
	mesh := topology.NewMesh(3, 3)
	rc := router.Default(mesh)
	n := sim.MustNew(sim.Config{Router: rc, InjectionRate: 0.15, Seed: 3}, nil)
	reg := NewRegistry()
	n.AttachMonitor(NewMonitor(reg, &rc))
	n.Run(100)

	c := n.Clone(nil)
	if len(c.Monitors()) != 1 {
		t.Fatalf("clone carried %d monitors, want 1", len(c.Monitors()))
	}
	before := reg.Counter(MetricSimCycles).Value()
	c.Run(50)
	if got := reg.Counter(MetricSimCycles).Value(); got != before+50 {
		t.Fatalf("clone's monitor advanced %s to %d, want %d", MetricSimCycles, got, before+50)
	}
}
